package speakup

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSimulatePublicAPI(t *testing.T) {
	res := Simulate(Scenario{
		Seed:     1,
		Duration: 30 * time.Second,
		Capacity: 20,
		Mode:     ModeAuction,
		Groups: []ClientGroup{
			{Count: 5, Good: true},
			{Count: 5, Good: false},
		},
	})
	if res.GoodAllocation < 0.3 || res.GoodAllocation > 0.7 {
		t.Fatalf("good allocation = %.3f, want ~0.5", res.GoodAllocation)
	}
	if res.ServedGood == 0 || res.ServedBad == 0 {
		t.Fatal("nothing served")
	}
}

func TestSimulateModesDiffer(t *testing.T) {
	base := Scenario{
		Seed: 2, Duration: 20 * time.Second, Capacity: 20,
		Groups: []ClientGroup{{Count: 3, Good: true}, {Count: 3, Good: false}},
	}
	on := base
	on.Mode = ModeAuction
	off := base
	off.Mode = ModeOff
	if Simulate(on).GoodAllocation <= Simulate(off).GoodAllocation {
		t.Fatal("speak-up did not improve the good clients' share")
	}
}

func TestSweepPublicAPI(t *testing.T) {
	var g SweepGrid
	for _, seed := range []int64{1, 2, 3, 4} {
		g.Add("seed", Scenario{
			Seed: seed, Duration: 5 * time.Second, Capacity: 20,
			Mode:   ModeAuction,
			Groups: []ClientGroup{{Count: 2, Good: true}, {Count: 2, Good: false}},
		})
	}
	rs := SweepEngine{Workers: 4}.Sweep(g.Runs())
	if len(rs) != 4 {
		t.Fatalf("got %d results", len(rs))
	}
	for i, r := range rs {
		if r.Index != i || r.Result == nil || r.Result.Events == 0 {
			t.Fatalf("cell %d malformed: %+v", i, r)
		}
	}
	if SweepSummary("t", rs).String() == "" {
		t.Fatal("empty summary")
	}
}

func TestLiveFrontPublicAPI(t *testing.T) {
	served := 0
	origin := OriginFunc(func(id RequestID) ([]byte, error) {
		served++
		return []byte("hello"), nil
	})
	front := NewFront(origin, FrontConfig{})
	defer front.Close()
	srv := httptest.NewServer(front)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/request?id=7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello" || served != 1 {
		t.Fatalf("origin not reached: %q served=%d", body, served)
	}
}

func TestCoreBuildingBlocksPublicAPI(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 100, 0)
	l.MarkEligible(1, 0)
	if id, paid, ok := l.Winner(); !ok || id != 1 || paid != 100 {
		t.Fatalf("ledger via public API broken: %v %v %v", id, paid, ok)
	}
	pt := NewPassThrough()
	admitted := false
	pt.Admit = func(id RequestID) { admitted = true }
	pt.RequestArrived(9)
	if !admitted {
		t.Fatal("pass-through did not admit")
	}
}
