// Package configs ships the versioned scenario files (schema:
// internal/config) that declare every deployment this repository
// runs. The figure drivers in internal/exp load their base scenarios
// from here and apply only their grid's axis overrides (counts,
// capacities, modes); cmd/repro -scenario, cmd/thinnerd -scenario,
// and cmd/loadgen -scenario accept any of these files — or any
// user-written file in the same schema — so a new workload is a
// config diff, not a code change.
//
// Every file must decode strictly, validate, and re-encode
// byte-stably; internal/config's round-trip test enforces that, and
// internal/exp's base-equivalence test pins each driver base against
// the Go literal it replaced (regenerate with
// `go test ./internal/exp -run TestDriverBases -update-configs`).
package configs

import "embed"

// FS holds every shipped scenario file.
//
//go:embed *.json
var FS embed.FS
