package speakup

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/faults"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/trace"
)

// The golden files under testdata/golden were generated from the
// original container/heap + closure-based event engine. They pin the
// engine's observable behaviour bit-for-bit: any change to event
// ordering, RNG consumption, or packet accounting shows up as a diff.
// Regenerate (only when an intentional model change lands) with:
//
//	go test -run TestGoldenScenarios -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden files")

// goldenConfigs cover the hot paths the zero-allocation engine
// rebuilt: plain auction topology, OFF mode, shared bottlenecks,
// bystander HTTP transfers, and heterogeneous work with suspends.
func goldenConfigs() map[string]scenario.Config {
	return map[string]scenario.Config{
		"auction_basic": {
			Seed: 1, Duration: 8 * time.Second, Capacity: 50,
			Mode: appsim.ModeAuction,
			Groups: []scenario.ClientGroup{
				{Count: 5, Good: true},
				{Count: 5, Good: false},
			},
		},
		"auction_seed42": {
			Seed: 42, Duration: 6 * time.Second, Capacity: 30,
			Mode: appsim.ModeAuction,
			Groups: []scenario.ClientGroup{
				{Count: 4, Good: true},
				{Count: 6, Good: false},
			},
		},
		"off_mode": {
			Seed: 7, Duration: 6 * time.Second, Capacity: 40,
			Mode: appsim.ModeOff,
			Groups: []scenario.ClientGroup{
				{Count: 4, Good: true},
				{Count: 4, Good: false},
			},
		},
		"shared_bottleneck": {
			Seed: 3, Duration: 8 * time.Second, Capacity: 25,
			Mode:        appsim.ModeAuction,
			Bottlenecks: []scenario.Bottleneck{{Rate: 5e6, Delay: time.Millisecond}},
			Groups: []scenario.ClientGroup{
				{Count: 3, Good: true, Bottleneck: 1},
				{Count: 3, Good: false, Bottleneck: 1},
			},
		},
		"bystander": {
			Seed: 9, Duration: 8 * time.Second, Capacity: 25,
			Mode:        appsim.ModeAuction,
			Bottlenecks: []scenario.Bottleneck{{Rate: 5e6, Delay: time.Millisecond}},
			BystanderH:  &scenario.Bystander{FileSize: 64_000},
			Groups: []scenario.ClientGroup{
				{Count: 2, Good: true, Bottleneck: 1},
				{Count: 4, Good: false, Bottleneck: 1},
			},
		},
		"parallel_payments": {
			Seed: 11, Duration: 6 * time.Second, Capacity: 30,
			Mode: appsim.ModeAuction,
			Groups: []scenario.ClientGroup{
				{Count: 3, Good: true},
				{Count: 3, Good: false, PayConns: 4},
			},
		},
	}
}

// hexF formats a float64 losslessly (hexadecimal mantissa), so golden
// comparisons are exact to the last bit rather than to a print width.
func hexF(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

func digestSample(b *strings.Builder, name string, s *metrics.Sample) {
	fmt.Fprintf(b, "%s: n=%d sum=%s min=%s max=%s\n",
		name, s.N(), hexF(s.Sum()), hexF(s.Min()), hexF(s.Max()))
}

// digest renders every figure-relevant output of a run with full
// precision. If two engines produce identical digests for these
// configs, they produce identical figures.
func digest(r *scenario.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d\n", r.Events)
	fmt.Fprintf(&b, "servedGood=%d servedBad=%d\n", r.ServedGood, r.ServedBad)
	fmt.Fprintf(&b, "goodAllocation=%s fractionGoodServed=%s\n",
		hexF(r.GoodAllocation), hexF(r.FractionGoodServed))
	for i := range r.Groups {
		g := &r.Groups[i]
		fmt.Fprintf(&b, "group %s good=%v clients=%d gen=%d issued=%d served=%d failed=%d denied=%d paidBytes=%d servedWork=%v\n",
			g.Name, g.Good, g.Clients, g.Generated, g.Issued, g.Served, g.Failed, g.Denied, g.PaidBytes, g.ServedWork)
		digestSample(&b, "  latencies", &g.Latencies)
		digestSample(&b, "  payTimes", &g.PayTimes)
		digestSample(&b, "  prices", &g.Prices)
	}
	t := r.ThinnerStats
	fmt.Fprintf(&b, "thinner: admitted=%d direct=%d auctions=%d evicted=%d wasted=%d paid=%d\n",
		t.Admitted, t.AdmittedDirect, t.Auctions, t.Evicted, t.WastedBytes, t.PaidBytes)
	s := r.ServerStats
	fmt.Fprintf(&b, "server: served=%d aborted=%d suspends=%d resumes=%d busy=%v work=%v\n",
		s.Served, s.Aborted, s.Suspends, s.Resumes, s.BusyTime, s.TotalWork)
	if r.BystanderLatencies != nil {
		digestSample(&b, "bystander", r.BystanderLatencies)
	}
	return b.String()
}

func TestGoldenScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenarios take a few seconds; skipped with -short")
	}
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := digest(scenario.Run(cfg))
			path := filepath.Join("testdata", "golden", name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("digest diverged from golden engine output\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenNoopFaultPlan pins the fault subsystem's zero-cost
// contract: a configured-but-empty fault plan must leave every figure
// golden byte-identical to the no-plan engine. The fault machinery
// (link fault pointers, brownout ladder, retry hooks) may only change
// behaviour when a plan actually schedules events.
func TestGoldenNoopFaultPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenarios take a few seconds; skipped with -short")
	}
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.Faults = faults.Plan{}
			got := digest(scenario.Run(cfg))
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
			if err != nil {
				t.Fatalf("missing golden file (run TestGoldenScenarios with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("empty fault plan changed the model\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenTracingNoop pins the tracer's pure-observation contract:
// running every golden config with lifecycle tracing armed at the
// maximum rate (every id sampled) must leave every figure golden
// byte-identical. The tracer may read the clock and copy ids, but it
// must never consume RNG, reorder events, or alter accounting — if it
// did, live fronts running -trace-sample would serve different
// traffic than the untraced model predicts.
func TestGoldenTracingNoop(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenarios take a few seconds; skipped with -short")
	}
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := trace.New(trace.Config{Sample: 1})
			cfg.Trace = tr
			got := digest(scenario.Run(cfg))
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
			if err != nil {
				t.Fatalf("missing golden file (run TestGoldenScenarios with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("tracing changed the model\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			// ModeOff runs no thinner, so only auction configs can
			// prove the tracer actually observed traffic.
			if cfg.Mode == appsim.ModeAuction && tr.Completed() == 0 {
				t.Error("tracer saw no settled requests; the noop assertion tested nothing")
			}
		})
	}
}

// TestGoldenDeterminism verifies the engine is a pure function of the
// seed: two fresh runs of the same config produce identical digests.
func TestGoldenDeterminism(t *testing.T) {
	cfg := goldenConfigs()["auction_basic"]
	cfg.Duration = 4 * time.Second
	a := digest(scenario.Run(cfg))
	b := digest(scenario.Run(cfg))
	if a != b {
		t.Fatalf("same seed, different runs:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
