// Command fleetctl rolls one scenario file's thinner section out
// across a fleet of thinnerd fronts — the write half of fleet
// control, pairing cmd/fleetwatch's read half. The rollout is staged
// and health-gated: a canary wave first, then expanding batches, each
// wave verified to converge by config hash and then soaked while the
// controller watches every patched front's /healthz and telemetry. If
// a patched front browns out, sheds past the guardrail, or the
// fleet's admission rate collapses during a soak, the rollout halts
// and every patched front is automatically rolled back to the config
// captured before the first push.
//
// Usage:
//
//	fleetctl -fronts http://h1:8080,http://h2:8080,... -scenario live_default
//	         [-canary 1] [-wave-factor 2] [-max-wave 0]
//	         [-soak 5s] [-probe 0] [-push-timeout 5s] [-retries 4]
//	         [-policy abort|quorum] [-quorum 0.8]
//	         [-shed-guardrail 0] [-min-admit-rate 0]
//	         [-journal path|-] [-dry-run]
//
// The patch is the scenario's thinner section (a disk path wins over
// the embedded configs/ set). Pushes are idempotent — fronts already
// at their target hash are skipped, so re-running a converged rollout
// is a no-op. -journal streams every decision (captures, pushes,
// retries, soak verdicts, breaches, rollbacks) as NDJSON; "-" means
// stdout. -dry-run prints the wave plan and patch without touching
// the fleet.
//
// Exit status: 0 when the fleet converged (quorum included), 2 when a
// guardrail breached and the rollback restored every patched front
// (the controller did its job; the config change itself is what
// failed), 1 when the protocol could not complete and the fleet may
// be in a mixed state.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"speakup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetctl: ")
	fronts := flag.String("fronts", "", "comma-separated front base URLs, in rollout order (the first -canary fronts form the canary wave)")
	scenarioName := flag.String("scenario", "", "scenario file whose thinner section is the rollout patch (path or embedded name)")
	canary := flag.Int("canary", 1, "canary wave size")
	waveFactor := flag.Int("wave-factor", 2, "wave growth factor after the canary")
	maxWave := flag.Int("max-wave", 0, "cap on any single wave's size (0: uncapped)")
	soak := flag.Duration("soak", 5*time.Second, "observation window after each wave")
	probe := flag.Duration("probe", 0, "health-probe cadence within a soak (0: soak/5)")
	pushTimeout := flag.Duration("push-timeout", 5*time.Second, "per-call timeout for config pushes and health probes")
	retries := flag.Int("retries", 4, "per-front retry budget for captures and pushes (rollbacks get double)")
	policy := flag.String("policy", "abort", "partial-failure policy: abort (halt and roll back on any exhausted front) or quorum")
	quorum := flag.Float64("quorum", 0.8, "minimum convergeable fraction under -policy quorum")
	shed := flag.Int64("shed-guardrail", 0, "max arrivals a patched front may shed during a soak (0: any shed breaches; -1: disable)")
	minAdmit := flag.Float64("min-admit-rate", 0, "fleet admissions/sec floor judged at each soak's end (0: disabled)")
	journalPath := flag.String("journal", "", "write the NDJSON decision journal to this file (\"-\": stdout)")
	dryRun := flag.Bool("dry-run", false, "print the wave plan and patch, touch nothing")
	flag.Parse()

	urls := splitFronts(*fronts)
	if len(urls) == 0 {
		log.Fatal("no fronts: pass -fronts http://host:port[,http://host:port...]")
	}
	if *scenarioName == "" {
		log.Fatal("no -scenario: the rollout patch is a scenario file's thinner section")
	}
	doc, err := speakup.LoadScenarioFile(*scenarioName)
	if err != nil {
		log.Fatal(err)
	}
	if doc.Thinner == nil {
		log.Fatalf("scenario %q has no thinner section to roll out", *scenarioName)
	}
	patch := *doc.Thinner

	var journal io.Writer
	switch *journalPath {
	case "":
	case "-":
		journal = os.Stdout
	default:
		f, err := os.Create(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		journal = f
	}

	ctrl, err := speakup.NewFleetController(speakup.FleetRolloutConfig{
		Fronts:        urls,
		Patch:         patch,
		CanarySize:    *canary,
		WaveFactor:    *waveFactor,
		MaxWaveSize:   *maxWave,
		Soak:          *soak,
		Probe:         *probe,
		PushTimeout:   *pushTimeout,
		RetryBudget:   *retries,
		Policy:        speakup.FleetRolloutPolicy(*policy),
		Quorum:        *quorum,
		ShedGuardrail: *shed,
		MinAdmitRate:  *minAdmit,
		Journal:       journal,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *dryRun {
		b, _ := json.Marshal(patch)
		fmt.Printf("patch %s (scenario %s): %s\n", *scenarioName, speakup.ScenarioFileHash(doc), b)
		for i, wave := range ctrl.Plan() {
			fmt.Printf("  wave %d: %s\n", i+1, strings.Join(wave, ", "))
		}
		fmt.Printf("soak %s per wave, policy %s; nothing pushed (dry run)\n", *soak, *policy)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, runErr := ctrl.Run(ctx)
	fmt.Print(rep.Summary())
	if runErr != nil {
		log.Print(runErr)
		os.Exit(1)
	}
	if rep.Outcome == speakup.FleetOutcomeRolledBack {
		os.Exit(2)
	}
}

func splitFronts(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}
