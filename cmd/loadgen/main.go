// Command loadgen drives a thinnerd instance with the paper's client
// workloads over real sockets: good clients (low rate, one
// outstanding request) and bad clients (high rate, many outstanding),
// each shaped to an access-link bandwidth by a token bucket.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-good 3] [-bad 3]
//	        [-bw 2e6] [-post 1048576] [-duration 30s]
//
// It prints per-second progress and a final summary comparing the good
// and bad clients' service rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"speakup/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "thinner base URL")
	nGood := flag.Int("good", 3, "number of good clients (λ=2, w=1)")
	nBad := flag.Int("bad", 3, "number of bad clients (λ=40, w=20)")
	bw := flag.Float64("bw", 2e6, "per-client upload bandwidth (bits/s)")
	post := flag.Int("post", 1<<20, "payment POST size (bytes)")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	flag.Parse()

	var ids atomic.Uint64
	var good, bad []*loadgen.Client
	for i := 0; i < *nGood; i++ {
		c := loadgen.NewClient(loadgen.Config{
			BaseURL: *url, Lambda: 2, Window: 1, Good: true,
			UploadBits: *bw, PostBytes: *post, Seed: int64(i + 1),
		}, &ids)
		good = append(good, c)
		c.Run()
	}
	for i := 0; i < *nBad; i++ {
		c := loadgen.NewClient(loadgen.Config{
			BaseURL: *url, Lambda: 40, Window: 20, Good: false,
			UploadBits: *bw, PostBytes: *post, Seed: int64(1000 + i),
		}, &ids)
		bad = append(bad, c)
		c.Run()
	}
	log.Printf("load: %d good + %d bad clients at %.1f Mbit/s each against %s",
		*nGood, *nBad, *bw/1e6, *url)

	tally := func(cs []*loadgen.Client) (issued, served uint64, paid int64) {
		for _, c := range cs {
			issued += c.Stats.Issued.Load()
			served += c.Stats.Served.Load()
			paid += c.Stats.PaidBytes.Load()
		}
		return
	}
	start := time.Now()
	for time.Since(start) < *duration {
		time.Sleep(time.Second)
		gi, gs, _ := tally(good)
		bi, bs, _ := tally(bad)
		fmt.Printf("t=%3.0fs  good %d/%d served   bad %d/%d served\n",
			time.Since(start).Seconds(), gs, gi, bs, bi)
	}
	for _, c := range append(good, bad...) {
		c.Stop()
	}
	gi, gs, gp := tally(good)
	bi, bs, bp := tally(bad)
	fmt.Printf("\nfinal: good served %d/%d (paid %.1f MB)   bad served %d/%d (paid %.1f MB)\n",
		gs, gi, float64(gp)/1e6, bs, bi, float64(bp)/1e6)
	if gi > 0 && bi > 0 {
		fmt.Printf("per-request success: good %.2f vs bad %.2f\n",
			float64(gs)/float64(gi), float64(bs)/float64(bi))
	}
}
