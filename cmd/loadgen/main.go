// Command loadgen drives a thinnerd instance with the paper's client
// workloads over real sockets: good clients (low rate, one
// outstanding request) and bad clients (high rate, many outstanding),
// each shaped to an access-link bandwidth by a token bucket.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-good 3] [-bad 3]
//	        [-bw 2e6] [-post 1048576] [-duration 30s] [-json]
//	        [-attack <profile>] [-aggro 1.5] [-scenario <file>]
//	        [-retry-budget 3] [-retry-base 200ms] [-retry-cap 5s]
//	        [-req-timeout 30s] [-transport http|wire]
//	        [-wire-addr localhost:8081]
//
// -transport selects which front the clients drive: "http" (the
// default GET /request + POST /pay exchange) or "wire", the binary
// framed payment transport served by thinnerd's -wire-addr listener
// (OPEN/CREDIT frames multiplexed over persistent TCP). Scenario
// files may set a transport; the flag overrides. The /healthz
// reachability probe always goes over HTTP.
//
// At startup the generator probes the front's /healthz once and exits
// non-zero with a one-line error if the front is unreachable (any HTTP
// response, even a degraded 503, counts as reachable). -retry-budget
// lets clients re-issue requests after retryable failures (transport
// errors, 502/503/504, evictions) with bounded jittered exponential
// backoff, honoring Retry-After; -req-timeout bounds each request's
// whole speak-up exchange.
//
// With -attack, the bad clients run the named adversary strategy
// (onoff, mimic, defector, flood, adaptive, poisson — the same
// implementations that drive the simulator; see internal/adversary)
// instead of the default fixed Poisson flood, sharing one cohort so
// coordinated strategies coordinate for real. -attack list prints the
// registry and exits.
//
// With -scenario, the client workload comes from a declarative
// scenario file (the internal/config schema shared with cmd/repro and
// cmd/thinnerd; a disk path, or an embedded configs/ name): good
// groups set the good class's count, rate, window, and bandwidth; the
// first bad group sets the bad class's — including its adversary
// strategy — and sizes.post sets the payment POST size. Explicit
// flags override the file.
//
// Per-second progress goes to stderr. The final summary — per-class
// service rates, admissions/sec, payment-ingest bits/sec, and latency
// percentiles — prints human-readable to stdout, or as one JSON
// object with -json (the shape cmd/benchjson and dashboards consume).
// The JSON carries the attack profile and a config_hash: the short
// canonical hash of the resolved workload (scenario file or synthetic
// flag-built document), so results are attributable to one exact
// configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"slices"
	"sync/atomic"
	"time"

	"speakup"
	"speakup/configs"
	"speakup/internal/adversary"
	"speakup/internal/config"
	"speakup/internal/loadgen"
)

// classJSON summarizes one client class.
type classJSON struct {
	Clients       int     `json:"clients"`
	Issued        uint64  `json:"issued"`
	Offered       uint64  `json:"offered"`
	Served        uint64  `json:"served"`
	Failed        uint64  `json:"failed"`
	Retried       uint64  `json:"retried"`
	SuccessRate   float64 `json:"success_rate"`
	PaidBytes     int64   `json:"paid_bytes"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyP999Ms float64 `json:"latency_p999_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	// Per-class rates so one attack profile's admission/ingest numbers
	// can be compared across runs without re-deriving them.
	AdmissionsPerSec  float64 `json:"admissions_per_sec"`
	PaymentBitsPerSec float64 `json:"payment_ingest_bits_per_sec"`
}

// summaryJSON is the -json output shape.
type summaryJSON struct {
	URL string `json:"url"`
	// Scenario names the file the workload came from ("" = built from
	// flags); ConfigHash is the short canonical hash of the resolved
	// workload document, the identity telemetry and BENCH entries use.
	Scenario   string `json:"scenario,omitempty"`
	ConfigHash string `json:"config_hash"`
	// Attack names the adversary profile the bad clients ran ("" =
	// the default fixed Poisson flood); Aggressiveness is its scale.
	Attack            string    `json:"attack,omitempty"`
	Aggressiveness    float64   `json:"aggressiveness,omitempty"`
	DurationSec       float64   `json:"duration_sec"`
	Good              classJSON `json:"good"`
	Bad               classJSON `json:"bad"`
	AdmissionsPerSec  float64   `json:"admissions_per_sec"`
	PaymentBitsPerSec float64   `json:"payment_ingest_bits_per_sec"`
	// Transport names the front the clients drove ("http" or "wire");
	// IngestByTransport splits the payment ingest rate by transport so
	// mixed dashboards can attribute bytes to the right listener (one
	// loadgen run drives a single transport, so the other key is 0).
	Transport         string             `json:"transport"`
	IngestByTransport map[string]float64 `json:"payment_ingest_bits_per_sec_by_transport"`
	// TraceSample echoes -trace-sample; SampledRequestIDs are the
	// issued ids the server's tracer co-sampled at that rate (the
	// predicate is shared), so each is joinable against the server's
	// /trace?id=N record. Absent when sampling is off.
	TraceSample       int      `json:"trace_sample,omitempty"`
	SampledRequestIDs []uint64 `json:"sampled_request_ids,omitempty"`
}

func tally(cs []*loadgen.Client) (issued, served uint64, paid int64) {
	for _, c := range cs {
		issued += c.Stats.Issued.Load()
		served += c.Stats.Served.Load()
		paid += c.Stats.PaidBytes.Load()
	}
	return
}

func classSummary(cs []*loadgen.Client, elapsed time.Duration) classJSON {
	var out classJSON
	out.Clients = len(cs)
	// Percentiles are per-client histograms merged by worst-case: with
	// identical configs inside a class the spread is small; report the
	// max so regressions cannot hide behind a lucky client.
	for _, c := range cs {
		out.Issued += c.Stats.Issued.Load()
		out.Offered += c.Stats.Offered()
		out.Served += c.Stats.Served.Load()
		out.Failed += c.Stats.Failed.Load()
		out.Retried += c.Stats.Retried.Load()
		out.PaidBytes += c.Stats.PaidBytes.Load()
		out.LatencyP50Ms = max(out.LatencyP50Ms, ms(c.Stats.Latency.Quantile(0.50)))
		out.LatencyP90Ms = max(out.LatencyP90Ms, ms(c.Stats.Latency.Quantile(0.90)))
		out.LatencyP99Ms = max(out.LatencyP99Ms, ms(c.Stats.Latency.Quantile(0.99)))
		out.LatencyP999Ms = max(out.LatencyP999Ms, ms(c.Stats.Latency.Quantile(0.999)))
		out.LatencyMaxMs = max(out.LatencyMaxMs, ms(c.Stats.Latency.Max()))
		out.LatencyMeanMs = max(out.LatencyMeanMs, ms(c.Stats.Latency.Mean()))
	}
	if out.Issued > 0 {
		out.SuccessRate = float64(out.Served) / float64(out.Issued)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		out.AdmissionsPerSec = float64(out.Served) / sec
		out.PaymentBitsPerSec = float64(out.PaidBytes) * 8 / sec
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func main() {
	url := flag.String("url", "http://localhost:8080", "thinner base URL")
	nGood := flag.Int("good", 3, "number of good clients (λ=2, w=1)")
	nBad := flag.Int("bad", 3, "number of bad clients (λ=40, w=20)")
	bw := flag.Float64("bw", 2e6, "per-client upload bandwidth (bits/s)")
	post := flag.Int("post", 1<<20, "payment POST size (bytes)")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	jsonOut := flag.Bool("json", false, "emit the final summary as JSON on stdout")
	attack := flag.String("attack", "", "adversary profile for the bad clients (see -attack list)")
	aggro := flag.Float64("aggro", 1, "attack aggressiveness scale (with -attack)")
	scenarioFile := flag.String("scenario", "", "scenario file supplying the client workload (disk path or embedded configs/ name); explicit flags override")
	retryBudget := flag.Int("retry-budget", 0, "max re-issues per request after a retryable failure (transport error, 502/503/504, eviction)")
	retryBase := flag.Duration("retry-base", 0, "backoff base between retries (default 200ms)")
	retryCap := flag.Duration("retry-cap", 0, "backoff cap between retries (default 5s)")
	reqTimeout := flag.Duration("req-timeout", 0, "per-request deadline covering the whole speak-up exchange (0 = none)")
	transport := flag.String("transport", "http", "front to drive: http (GET/POST) or wire (binary framed payment transport)")
	wireAddr := flag.String("wire-addr", "localhost:8081", "wire listener host:port (with -transport wire)")
	traceSample := flag.Int("trace-sample", 0, "mirror the server's -trace-sample rate to report which issued ids its tracer sampled (-json: sampled_request_ids)")
	flag.Parse()

	if *attack == "list" {
		for _, name := range adversary.Names() {
			fmt.Printf("%-10s %s\n", name, adversary.Doc(name))
		}
		return
	}

	// Resolved workload: flag defaults, overridden by a scenario file,
	// overridden by explicitly-set flags.
	nG, nB := *nGood, *nBad
	goodLambda, goodWindow, goodBW := 2.0, 1, *bw
	badLambda, badWindow, badBW := 40.0, 20, *bw
	postBytes, dur := *post, *duration
	atk, scale := *attack, *aggro
	trans := *transport
	scenarioName := ""
	if *scenarioFile != "" {
		doc, err := config.Resolve(configs.FS, *scenarioFile)
		if err != nil {
			log.Fatalf("scenario: %v", err)
		}
		scenarioName = doc.Name
		if scenarioName == "" {
			scenarioName = *scenarioFile
		}
		nG, nB = 0, 0
		var g, b *config.ClientGroup
		for i := range doc.Groups {
			grp := &doc.Groups[i]
			if grp.Good {
				nG += grp.Count
				if g == nil {
					g = grp
				}
			} else {
				nB += grp.Count
				if b == nil {
					b = grp
				}
			}
		}
		if g != nil {
			if g.Lambda != 0 {
				goodLambda = g.Lambda
			}
			if g.Window != 0 {
				goodWindow = g.Window
			}
			if g.Bandwidth != 0 {
				goodBW = g.Bandwidth
			}
		}
		if b != nil {
			if b.Lambda != 0 {
				badLambda = b.Lambda
			}
			if b.Window != 0 {
				badWindow = b.Window
			}
			if b.Bandwidth != 0 {
				badBW = b.Bandwidth
			}
			if b.Strategy != "" {
				atk = b.Strategy
				if b.Aggressiveness != 0 {
					scale = b.Aggressiveness
				}
			}
		}
		if doc.Sizes != nil && doc.Sizes.Post != 0 {
			postBytes = doc.Sizes.Post
		}
		if doc.Duration != 0 {
			dur = doc.Duration.D()
		}
		if doc.Transport != "" {
			trans = doc.Transport
		}
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["good"] {
			nG = *nGood
		}
		if explicit["bad"] {
			nB = *nBad
		}
		if explicit["bw"] {
			goodBW, badBW = *bw, *bw
		}
		if explicit["post"] {
			postBytes = *post
		}
		if explicit["duration"] {
			dur = *duration
		}
		if explicit["attack"] {
			atk = *attack
		}
		if explicit["aggro"] {
			scale = *aggro
		}
		if explicit["transport"] {
			trans = *transport
		}
	}
	if trans != "http" && trans != "wire" {
		log.Fatalf("-transport must be http or wire, got %q", trans)
	}
	if atk == "" && scale != 1 {
		log.Fatalf("-aggro %g has no effect without an attack profile (the default bad clients are fixed Poisson λ=%g, w=%d)", scale, badLambda, badWindow)
	}
	var spec adversary.Spec
	var cohort *adversary.Cohort
	if atk != "" {
		spec = adversary.Spec{Name: atk, Aggressiveness: scale}
		if err := spec.Validate(); err != nil {
			log.Fatal(err)
		}
		cohort = adversary.NewCohort(spec, nB)
	}

	// The run's identity: the canonical hash of the resolved workload as
	// one scenario document. Built the same way whether the workload came
	// from a file or from flags, so identical effective runs hash alike.
	effective := config.Scenario{
		Version:  config.Version,
		Name:     scenarioName,
		Duration: config.Duration(dur),
		Mode:     "auction",
		Groups: []config.ClientGroup{
			{Name: "good", Count: nG, Good: true, Lambda: goodLambda, Window: goodWindow, Bandwidth: goodBW},
			{Name: "bad", Count: nB, Lambda: badLambda, Window: badWindow, Bandwidth: badBW, Strategy: atk, Aggressiveness: scale},
		},
		Sizes: &config.Sizes{Post: postBytes},
	}
	if atk == "" {
		effective.Groups[1].Strategy = ""
		effective.Groups[1].Aggressiveness = 0
	}
	if trans == "wire" {
		// "http" stays the schema's empty default so pre-wire runs keep
		// their hashes.
		effective.Transport = trans
	}
	configHash := config.ShortHash(effective)

	// Fail fast if the front is not there at all: a generator pointed at
	// nothing would otherwise run the full duration reporting 0/0. Any
	// HTTP response — even a brownout 503 — counts as reachable; only a
	// transport-level failure aborts.
	probe := &http.Client{Timeout: 5 * time.Second}
	if resp, err := probe.Get(*url + "/healthz"); err != nil {
		log.Fatalf("front unreachable: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if trans == "wire" {
		wc, err := speakup.DialWire(*wireAddr)
		if err != nil {
			log.Fatalf("wire front unreachable at %s: %v (is thinnerd running with -wire-addr?)", *wireAddr, err)
		}
		wc.Close()
	}

	var ids atomic.Uint64
	var good, bad []*loadgen.Client
	for i := 0; i < nG; i++ {
		c := loadgen.NewClient(loadgen.Config{
			BaseURL: *url, Lambda: goodLambda, Window: goodWindow, Good: true,
			UploadBits: goodBW, PostBytes: postBytes, Seed: int64(i + 1),
			RetryBudget: *retryBudget, RetryBase: *retryBase, RetryCap: *retryCap,
			RequestTimeout: *reqTimeout,
			Transport:      trans, WireAddr: *wireAddr,
			TraceSample: *traceSample,
		}, &ids)
		good = append(good, c)
		c.Run()
	}
	for i := 0; i < nB; i++ {
		cfg := loadgen.Config{
			BaseURL: *url, Lambda: badLambda, Window: badWindow, Good: false,
			UploadBits: badBW, PostBytes: postBytes, Seed: int64(1000 + i),
			RetryBudget: *retryBudget, RetryBase: *retryBase, RetryCap: *retryCap,
			RequestTimeout: *reqTimeout,
			Transport:      trans, WireAddr: *wireAddr,
			TraceSample: *traceSample,
		}
		if atk != "" {
			cfg.Strategy = spec.New(cohort)
		}
		c := loadgen.NewClient(cfg, &ids)
		bad = append(bad, c)
		c.Run()
	}
	profile := "poisson flood (default)"
	if atk != "" {
		profile = fmt.Sprintf("%s x%.2g", atk, scale)
	}
	frontDesc := *url
	if trans == "wire" {
		frontDesc = fmt.Sprintf("wire front %s (healthz via %s)", *wireAddr, *url)
	}
	log.Printf("load: %d good + %d bad clients [%s] at %.1f/%.1f Mbit/s against %s over %s (config %s)",
		nG, nB, profile, goodBW/1e6, badBW/1e6, frontDesc, trans, configHash)

	start := time.Now()
	for time.Since(start) < dur {
		time.Sleep(time.Second)
		gi, gs, _ := tally(good)
		bi, bs, _ := tally(bad)
		fmt.Fprintf(os.Stderr, "t=%3.0fs  good %d/%d served   bad %d/%d served\n",
			time.Since(start).Seconds(), gs, gi, bs, bi)
	}
	for _, c := range append(append([]*loadgen.Client{}, good...), bad...) {
		c.Stop()
	}
	elapsed := time.Since(start)

	sum := summaryJSON{
		URL:         *url,
		Scenario:    scenarioName,
		ConfigHash:  configHash,
		Attack:      atk,
		DurationSec: elapsed.Seconds(),
		Good:        classSummary(good, elapsed),
		Bad:         classSummary(bad, elapsed),
	}
	if atk != "" {
		sum.Aggressiveness = scale
	}
	served := sum.Good.Served + sum.Bad.Served
	paid := sum.Good.PaidBytes + sum.Bad.PaidBytes
	sum.AdmissionsPerSec = float64(served) / elapsed.Seconds()
	sum.PaymentBitsPerSec = float64(paid) * 8 / elapsed.Seconds()
	sum.Transport = trans
	sum.IngestByTransport = map[string]float64{"http": 0, "wire": 0}
	sum.IngestByTransport[trans] = sum.PaymentBitsPerSec
	if *traceSample > 0 {
		sum.TraceSample = *traceSample
		for _, c := range append(append([]*loadgen.Client{}, good...), bad...) {
			sum.SampledRequestIDs = append(sum.SampledRequestIDs, c.SampledIDs()...)
		}
		slices.Sort(sum.SampledRequestIDs)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("\nfinal: good served %d/%d (paid %.1f MB)   bad served %d/%d (paid %.1f MB)\n",
		sum.Good.Served, sum.Good.Issued, float64(sum.Good.PaidBytes)/1e6,
		sum.Bad.Served, sum.Bad.Issued, float64(sum.Bad.PaidBytes)/1e6)
	if sum.Good.Issued > 0 && sum.Bad.Issued > 0 {
		fmt.Printf("per-request success: good %.2f vs bad %.2f\n",
			sum.Good.SuccessRate, sum.Bad.SuccessRate)
	}
	if sum.Good.Retried+sum.Bad.Retried > 0 {
		fmt.Printf("retries: good %d, bad %d (budget %d)\n",
			sum.Good.Retried, sum.Bad.Retried, *retryBudget)
	}
	fmt.Printf("throughput: %.1f admissions/sec, payment ingest %.1f Mbit/s over the %s front\n",
		sum.AdmissionsPerSec, sum.PaymentBitsPerSec/1e6, trans)
	fmt.Printf("latency (ms): good p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f   bad p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f\n",
		sum.Good.LatencyP50Ms, sum.Good.LatencyP90Ms, sum.Good.LatencyP99Ms,
		sum.Good.LatencyP999Ms, sum.Good.LatencyMaxMs,
		sum.Bad.LatencyP50Ms, sum.Bad.LatencyP90Ms, sum.Bad.LatencyP99Ms,
		sum.Bad.LatencyP999Ms, sum.Bad.LatencyMaxMs)
}
