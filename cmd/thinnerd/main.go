// Command thinnerd serves the speak-up thinner over HTTP, protecting
// an emulated origin — the live counterpart of the paper's §6
// prototype.
//
// Usage:
//
//	thinnerd [-addr :8080] [-capacity 10] [-orphan 10s]
//
// Endpoints: /request?id=N (the request; 402 + Speakup-Action: pay
// when the origin is busy), /pay?id=N (payment channel: stream dummy
// POST bodies), /stats (JSON counters). Drive it with cmd/loadgen or
// curl:
//
//	curl 'http://localhost:8080/request?id=1'
//	curl -X POST --data-binary @bigfile 'http://localhost:8080/pay?id=2'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"speakup"
	"speakup/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	capacity := flag.Float64("capacity", 10, "origin capacity in requests/second")
	orphan := flag.Duration("orphan", 10*time.Second, "evict request-less payment channels after this long")
	flag.Parse()

	origin := speakup.NewEmulatedOrigin(*capacity)
	front := speakup.NewFront(origin, speakup.FrontConfig{
		Thinner: core.Config{OrphanTimeout: *orphan},
	})
	defer front.Close()

	log.Printf("speak-up thinner on %s (origin capacity %.1f req/s)", *addr, *capacity)
	log.Printf("endpoints: /request?id=N  /pay?id=N  /stats")
	if err := http.ListenAndServe(*addr, front); err != nil {
		log.Fatal(err)
	}
}
