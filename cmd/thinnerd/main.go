// Command thinnerd serves the speak-up thinner over HTTP, protecting
// an emulated origin — the live counterpart of the paper's §6
// prototype, hardened into a real daemon.
//
// Usage:
//
//	thinnerd [-addr :8080] [-wire-addr :8081] [-capacity 10]
//	         [-orphan 10s] [-scenario live_default] [-shards 0]
//	         [-drain 15s] [-pprof localhost:6060]
//	         [-fault-drop 0.1] [-fault-delay 50ms] [-fault-reset 0.01]
//	         [-fault-seed 1] [-trace-sample 1024]
//
// -trace-sample enables sampled request-lifecycle tracing: one in N
// request ids (hash-based, so the HTTP and wire events of one id land
// in one record) is traced arrive→wait→auction→settle. Read traces
// back at GET /trace (NDJSON, ?n=&id=) and the derived latency
// histograms at GET /metrics (Prometheus text format). Off by
// default; when off, /trace answers 404 and the hot paths pay zero.
//
// -wire-addr adds a second listener speaking the binary framed
// payment transport (internal/wire): persistent TCP connections
// multiplexing OPEN/CREDIT/CLOSE frames against the same bid table,
// auction, brownout ladder, and fault injector as the HTTP front.
// Drive it with cmd/loadgen -transport wire.
//
// The -fault-* flags wrap the listener in a fault injector for
// resilience testing: accepted connections are dropped outright with
// probability -fault-drop, reads are delayed by up to -fault-delay,
// and connections are reset mid-stream (payment POSTs included) with
// per-read probability -fault-reset — all deterministic in
// -fault-seed. /healthz reports readiness (listener up, sweep chain
// alive, origin reachable) for probes and orchestration.
//
// -scenario loads capacity and the thinner knobs from a declarative
// scenario file (the internal/config schema shared with cmd/repro and
// the simulator; a disk path, or an embedded configs/ name). The file
// must declare mode "auction" — that is the only policy the live
// front serves. Explicit flags override the file's values.
//
// Endpoints: /request?id=N (the request; 402 + Speakup-Action: pay
// when the origin is busy), /pay?id=N (payment channel: stream dummy
// POST bodies), /stats (JSON counters), /telemetry (NDJSON metrics
// stream, ?interval=1s), /control/config (GET the live thinner
// config; POST a partial config to reconfigure safely under load —
// shard changes are rejected, and a mid-brownout POST is refused with
// 503 + Retry-After until the origin recovers). Config responses and
// /stats carry a canonical config_hash — the convergence identity
// cmd/fleetctl verifies staged rollouts against; the daemon logs it
// at startup. Drive it with cmd/loadgen or curl:
//
//	curl 'http://localhost:8080/request?id=1'
//	curl -X POST --data-binary @bigfile 'http://localhost:8080/pay?id=2'
//	curl 'http://localhost:8080/telemetry?interval=500ms'
//	curl -X POST -d '{"sweep_interval":"200ms"}' 'http://localhost:8080/control/config'
//
// Payment ingest is sharded (-shards, rounded up to a power of two,
// default GOMAXPROCS-scaled): every /pay stream credits its channel's
// atomics without locks, so ingest scales with cores. SIGINT/SIGTERM
// drains gracefully: the listener closes, in-flight requests get
// -drain to finish, then the front's timers stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"speakup"
	"speakup/configs"
	"speakup/internal/config"
	"speakup/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	wireAddr := flag.String("wire-addr", "", "optional binary payment-transport listen address (e.g. :8081)")
	capacity := flag.Float64("capacity", 10, "origin capacity in requests/second")
	orphan := flag.Duration("orphan", 10*time.Second, "evict request-less payment channels after this long")
	scenarioFile := flag.String("scenario", "", "scenario file supplying capacity and thinner knobs (disk path or embedded configs/ name); explicit flags override")
	shards := flag.Int("shards", 0, "bid-table shard count, rounded up to a power of two (0 = GOMAXPROCS-scaled)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	pprofAddr := flag.String("pprof", "", "optional net/http/pprof listen address (e.g. localhost:6060)")
	faultDrop := flag.Float64("fault-drop", 0, "probability an accepted connection is dropped immediately")
	faultDelay := flag.Duration("fault-delay", 0, "max random extra delay injected per read")
	faultReset := flag.Float64("fault-reset", 0, "per-read probability a connection is reset mid-stream")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the listener fault injector")
	traceSample := flag.Int("trace-sample", 0, "trace one in this many request ids (rounded up to a power of two; 0 disables tracing and /trace)")
	flag.Parse()

	capRPS := *capacity
	thcfg := core.Config{OrphanTimeout: *orphan, Shards: *shards}
	if *scenarioFile != "" {
		doc, err := config.Resolve(configs.FS, *scenarioFile)
		if err != nil {
			log.Fatalf("scenario: %v", err)
		}
		if doc.Mode != "auction" {
			log.Fatalf("scenario %s: mode %q cannot drive the live thinner (only \"auction\" is served over HTTP)", *scenarioFile, doc.Mode)
		}
		capRPS = doc.Capacity
		if doc.Thinner != nil {
			// Zero file fields keep the flag defaults, same as
			// /control/config's "zero means unchanged".
			fc := doc.Thinner.Core()
			if fc.OrphanTimeout != 0 {
				thcfg.OrphanTimeout = fc.OrphanTimeout
			}
			if fc.InactivityTimeout != 0 {
				thcfg.InactivityTimeout = fc.InactivityTimeout
			}
			if fc.SweepInterval != 0 {
				thcfg.SweepInterval = fc.SweepInterval
			}
			if fc.Shards != 0 {
				thcfg.Shards = fc.Shards
			}
		}
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["capacity"] {
			capRPS = *capacity
		}
		if explicit["orphan"] {
			thcfg.OrphanTimeout = *orphan
		}
		if explicit["shards"] {
			thcfg.Shards = *shards
		}
		log.Printf("scenario %s (config %s): capacity %.1f req/s, thinner %+v",
			*scenarioFile, config.ShortHash(doc), capRPS, thcfg)
	}

	origin := speakup.NewEmulatedOrigin(capRPS)
	front := speakup.NewFront(origin, speakup.FrontConfig{
		Thinner: thcfg,
		Trace:   speakup.TraceConfig{Sample: *traceSample},
	})
	if *traceSample > 0 {
		log.Printf("request-lifecycle tracing on: 1 in %d ids (GET /trace?n=&id=, histograms on /metrics)",
			front.Tracer().SampleN())
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: front,
		// Bound header reads so a header-slowloris cannot pin
		// connections; body reads stay unbounded — /pay streams long
		// payment bodies by design, and /request holds its response
		// until the auction is won.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	cf := speakup.ConnFaults{
		DropProb: *faultDrop, Delay: *faultDelay, ResetProb: *faultReset, Seed: *faultSeed,
	}
	if cf.Enabled() {
		ln = speakup.WrapFaultListener(ln, cf)
		log.Printf("fault injection armed: drop=%.3g delay<=%s reset=%.3g seed=%d",
			cf.DropProb, cf.Delay, cf.ResetProb, cf.Seed)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var wireSrv *speakup.WireServer
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatal(err)
		}
		if cf.Enabled() {
			// The same injector seed wraps both listeners, so chaos
			// runs stress the binary transport too.
			wln = speakup.WrapFaultListener(wln, cf)
		}
		wireSrv = speakup.NewWireServer(front, speakup.WireServerConfig{
			Registry: front.Registry(),
			Tracer:   front.Tracer(),
		})
		go func() {
			if err := wireSrv.Serve(wln); err != nil {
				errc <- fmt.Errorf("wire listener: %w", err)
			}
		}()
		log.Printf("binary payment transport on %s (frames: OPEN/CREDIT/CLOSE)", *wireAddr)
	}
	log.Printf("speak-up thinner on %s (origin capacity %.1f req/s, %d ingest shards)",
		*addr, capRPS, front.Table().Shards())
	// The effective config's canonical hash — what /control/config and
	// /stats report, and what fleetctl verifies convergence against.
	log.Printf("config hash %s (thinner %+v)",
		speakup.ThinnerConfigHash(front.ThinnerConfig()), front.ThinnerConfig())
	log.Printf("endpoints: /request?id=N  /pay?id=N  /stats  /metrics  /trace  /healthz  /telemetry  /control/config")

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard

	log.Printf("shutdown: draining in-flight requests for up to %s", *drain)
	if wireSrv != nil {
		// Wire connections are long-lived by design; close them
		// outright (their waiters release) and let HTTP drain.
		wireSrv.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete (%v); closing remaining connections", err)
		srv.Close()
	}
	front.Close()
	st := front.Snapshot()
	log.Printf("final: served=%d payment=%0.1f MB (%.1f Mbit/s) auctions=%d evicted=%d",
		st.Served, float64(st.PaymentBytes)/1e6, st.PaymentMbps,
		st.ThinnerTotals.Auctions, st.ThinnerTotals.Evicted)
}
