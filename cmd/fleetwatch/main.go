// Command fleetwatch watches a fleet of thinner fronts: it subscribes
// to every front's /telemetry NDJSON stream concurrently, merges the
// snapshots, and renders a periodic terminal dashboard — per-front
// rows plus a fleet-aggregate line. The read-only half of fleet
// control: what an operator stares at during an attack.
//
// Usage:
//
//	fleetwatch -fronts http://h1:8080,http://h2:8080 [-interval 1s]
//	           [-refresh 2s] [-duration 0] [-json]
//
// -interval is the telemetry cadence requested from each front;
// -refresh is how often the dashboard redraws. -json replaces the
// dashboard with one NDJSON object per refresh ({"aggregate":...,
// "fronts":[...]}) for piping into jq or a recorder. -duration 0
// watches until interrupted.
//
// A front disconnecting mid-watch is routine: its row flips to DOWN,
// its last numbers stay in the aggregate, and a bounded jittered
// backoff redials until the front returns.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"speakup"
)

func main() {
	fronts := flag.String("fronts", "", "comma-separated front base URLs (e.g. http://127.0.0.1:8080,http://127.0.0.1:8090)")
	interval := flag.Duration("interval", time.Second, "telemetry cadence requested from each front")
	refresh := flag.Duration("refresh", 2*time.Second, "dashboard redraw cadence")
	duration := flag.Duration("duration", 0, "watch for this long, then exit (0: until interrupted)")
	jsonOut := flag.Bool("json", false, "emit NDJSON observations instead of the terminal dashboard")
	flag.Parse()

	urls := splitFronts(*fronts)
	if len(urls) == 0 {
		log.Fatal("no fronts: pass -fronts http://host:port[,http://host:port...]")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	w := speakup.NewFleetWatcher(speakup.FleetWatchConfig{
		Fronts:   urls,
		Interval: *interval,
	})
	w.Start(ctx)
	defer w.Stop()

	enc := json.NewEncoder(os.Stdout)
	ticker := time.NewTicker(*refresh)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// One final observation so short -duration runs always emit.
			emit(w, enc, *jsonOut)
			return
		case <-ticker.C:
			emit(w, enc, *jsonOut)
		}
	}
}

func splitFronts(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// observation is the -json line shape.
type observation struct {
	TS        time.Time                 `json:"ts"`
	Aggregate speakup.FleetAggregate    `json:"aggregate"`
	Fronts    []speakup.FleetFrontState `json:"fronts"`
}

func emit(w *speakup.FleetWatcher, enc *json.Encoder, jsonOut bool) {
	agg := w.Aggregate()
	states := w.States()
	if jsonOut {
		enc.Encode(observation{TS: time.Now(), Aggregate: agg, Fronts: states})
		return
	}
	fmt.Printf("\n=== fleet %s — %d/%d fronts up, %d ok / %d stalled / %d recovering ===\n",
		time.Now().Format("15:04:05"), agg.Connected, agg.Fronts,
		agg.Healthy, agg.Stalled, agg.Recovering)
	fmt.Printf("%-28s %-5s %9s %8s %7s %6s %6s %10s %9s %10s\n",
		"front", "state", "ingestMB", "mbps", "admit", "evict", "shed", "contenders", "price", "health")
	for _, st := range states {
		state := "UP"
		if !st.Connected {
			state = "DOWN"
		}
		s := st.Snapshot
		note := ""
		if !st.Connected && st.LastErr != "" {
			note = "  # " + st.LastErr
		}
		health := st.Health
		if health == "" {
			health = "-" // never reported
		}
		fmt.Printf("%-28s %-5s %9.1f %8.1f %7d %6d %6d %10d %9d %10s%s\n",
			trimURL(st.URL), state, float64(s.IngestBytes)/1e6, s.IngestMbps,
			s.Admitted, s.Evicted, s.Shed, s.Contenders, s.GoingPrice, health, note)
	}
	fmt.Printf("%-28s %-5s %9.1f %8.1f %7d %6d %6d %10d %9d\n",
		"TOTAL", "", float64(agg.IngestBytes)/1e6, agg.IngestMbps,
		agg.Admitted, agg.Evicted, agg.Shed, agg.Contenders, agg.GoingPriceMax)
}

func trimURL(u string) string {
	u = strings.TrimPrefix(u, "http://")
	if len(u) > 28 {
		u = u[:25] + "..."
	}
	return u
}
