// Command repro regenerates every table and figure from the paper's
// evaluation (§7) at configurable scale and prints the series each
// figure plots.
//
// Usage:
//
//	repro                        # all experiments at 60s virtual time
//	repro -duration 600s         # paper scale (600s runs; takes minutes)
//	repro -experiment fig2,fig9  # a subset
//	repro -scenario my.json      # run declared scenario files instead
//	repro -scenario fig8,fig9    # embedded driver bases work by name
//	repro -parallel 8            # 8 concurrent scenario runs per sweep
//	repro -cpuprofile cpu.prof   # profile the hot path under real load
//	repro -memprofile mem.prof   # heap profile at exit (after GC)
//
// -scenario takes comma-separated scenario files in the versioned
// schema of internal/config (see configs/ for examples): paths are
// tried on disk first, then against the embedded configs/ set (the
// ".json" suffix is optional there). A file's own seed and duration
// win; explicit -seed/-duration flags override both.
//
// Each experiment's figure sweep fans out across -parallel workers
// (default GOMAXPROCS) via internal/sweep; results are bit-for-bit
// identical to a serial run. Per-run progress goes to stderr; silence
// it with -progress=false.
//
// Experiments: fig2 fig3 fig4 fig5 sec74 window fig6 fig7 fig8 fig9
// variants theorem hetero postsize parconns sec81 flashcrowd
// adversary faults. See EXPERIMENTS.md for the paper-vs-measured
// record.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"speakup/configs"
	"speakup/internal/config"
	"speakup/internal/exp"
	"speakup/internal/sweep"
)

func main() { os.Exit(run()) }

func run() int {
	duration := flag.Duration("duration", 60*time.Second, "virtual time per run (paper: 600s)")
	seed := flag.Int64("seed", 1, "simulation seed")
	which := flag.String("experiment", "all", "comma-separated experiment list (or 'all')")
	scenarios := flag.String("scenario", "", "comma-separated scenario files (disk paths or embedded configs/ names); replaces -experiment")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent scenario runs per sweep")
	progress := flag.Bool("progress", true, "print per-run progress to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	o := exp.Opts{Duration: *duration, Seed: *seed, Workers: *parallel}
	if *progress {
		o.Progress = func(done, total int, r sweep.Result) {
			fmt.Fprintf(os.Stderr, "  [%2d/%2d] %-28s %7.2fs wall %10d events\n",
				done, total, r.Name, r.Elapsed.Seconds(), r.Result.Events)
		}
	}
	if *scenarios != "" {
		// Explicit flags beat a file's own seed/duration; otherwise the
		// file wins and zero file fields fall back to the flag defaults.
		explicit := map[string]bool{}
		flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
		var docs []config.Scenario
		for _, name := range strings.Split(*scenarios, ",") {
			doc, err := config.Resolve(configs.FS, strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
				return 2
			}
			if explicit["duration"] {
				doc.Duration = config.Duration(*duration)
			}
			if explicit["seed"] {
				doc.Seed = *seed
			}
			docs = append(docs, doc)
		}
		res, err := exp.Scenarios(o, docs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			return 2
		}
		for _, t := range res.Tables() {
			fmt.Println(t)
		}
		return 0
	}

	sel := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		sel[strings.TrimSpace(w)] = true
	}
	all := sel["all"]
	want := func(name string) bool { return all || sel[name] }

	type job struct {
		name string
		run  func()
	}
	var fig345 *exp.Fig345Result
	get345 := func() *exp.Fig345Result {
		if fig345 == nil {
			fig345 = exp.Fig345(o)
		}
		return fig345
	}
	jobs := []job{
		{"fig2", func() { fmt.Println(exp.Fig2(o).Table()) }},
		{"fig3", func() { fmt.Println(get345().Fig3Table()) }},
		{"fig4", func() { fmt.Println(get345().Fig4Table()) }},
		{"fig5", func() { fmt.Println(get345().Fig5Table()) }},
		{"sec74", func() { fmt.Println(exp.Sec74MinCapacity(o).Table()) }},
		{"window", func() { fmt.Println(exp.Sec74WindowSweep(o).Table()) }},
		{"fig6", func() { fmt.Println(exp.Fig6(o).Table()) }},
		{"fig7", func() { fmt.Println(exp.Fig7(o).Table()) }},
		{"fig8", func() { fmt.Println(exp.Fig8(o).Table()) }},
		{"fig9", func() { fmt.Println(exp.Fig9(o).Table()) }},
		{"variants", func() { fmt.Println(exp.Variants(o).Table()) }},
		{"theorem", func() { fmt.Println(exp.Theorem31(o).Table()) }},
		{"hetero", func() { fmt.Println(exp.Hetero(o).Table()) }},
		{"postsize", func() { fmt.Println(exp.POSTSize(o).Table()) }},
		{"parconns", func() { fmt.Println(exp.ParallelConns(o).Table()) }},
		{"sec81", func() { fmt.Println(exp.Sec81SmartBots(o).Table()) }},
		{"flashcrowd", func() { fmt.Println(exp.FlashCrowd(o).Table()) }},
		{"adversary", func() {
			r := exp.Adversary(o)
			fmt.Println(r.Table())
			fmt.Println(r.FrontierTable())
		}},
		{"faults", func() {
			r := exp.Faults(o)
			fmt.Println(r.Table())
			fmt.Println(r.FrontierTable())
		}},
	}
	ran := 0
	for _, j := range jobs {
		if !want(j.name) {
			continue
		}
		fmt.Printf("=== %s (duration %v, seed %d) ===\n", j.name, *duration, *seed)
		start := time.Now()
		j.run()
		fmt.Println()
		// Stderr, not stdout: table output stays byte-identical across
		// runs (the determinism CI job diffs it), wall time never is.
		fmt.Fprintf(os.Stderr, "(%s in %.1fs wall)\n", j.name, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; see -h\n", *which)
		return 2
	}
	return 0
}
