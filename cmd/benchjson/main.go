// Command benchjson measures the repo's headline performance numbers
// and writes them to a machine-readable JSON file, the per-PR
// benchmark trajectory (BENCH_PR2.json, BENCH_PR3.json, ...).
//
// PR 5 (the default) benchmarks the auction and eviction paths under
// flood — the regime the PR 4 flood strategy creates, tens of
// thousands of concurrent payment channels:
//
//   - winner_indexed vs winner_scan: winner selection over >=64k
//     eligible channels with GOMAXPROCS concurrent payers. The indexed
//     path (per-shard price heaps repaired from a lock-free dirty
//     stack, tournament over shard maxima) is compared against the
//     retained pre-PR5 full-scan reference (WinnerByScan), whose cost
//     grows linearly with attack size.
//   - sweep_tick_indexed vs sweep_tick_scan: one timeout-sweep tick
//     (orphan-prefix pop + timing-wheel advance) vs the old full-table
//     Orphans+Inactive walk.
//
// PR 3 benchmarks the LIVE thinner's payment hot path:
//
//   - concurrent_ingest: N loopback POST /pay streams write 16 KB
//     chunks for a fixed window; the result is server-side credited
//     bytes/sec — speak-up's defining capacity, how much attacker
//     bandwidth one front can absorb. The baseline is the pre-refactor
//     global-lock front measured on the same harness (it collapses:
//     one read-deadline poll mid-chunk permanently poisons net/http's
//     chunked reader, so every stream stops crediting within ~1 s).
//   - bidtable_credit: per-chunk credit on the sharded BidTable
//     (cached channel, atomic add) via testing.Benchmark RunParallel.
//   - ledger_credit_global_lock: the pre-refactor per-chunk model —
//     one global mutex around the heap-backed ledger — measured live
//     (the Ledger still serves the §5 quantum scheduler).
//
// PR 4 benchmarks the adversary subsystem: the robustness-frontier
// sweep (internal/exp.Adversary — every attacker strategy x
// aggressiveness x bandwidth ratio through the full simulator) run
// serially and across a worker pool, reported as events/sec against
// the PR 2 sweep_serial baseline for trajectory continuity.
//
// PR 7 reports robustness rather than speed: the fault frontier
// (internal/exp.Faults) run at bench scale, with good-service
// retention per fault kind — the worst fault cell's good-service
// fraction over the fault-free baseline at the same bandwidth ratio.
// Every file says which it is in metric_kind: "speedup" files carry
// speedup_vs_baseline (bigger-is-better performance ratio);
// "retention" files carry retention_vs_baseline (a fraction of
// fault-free service kept — 0.59 there is graceful degradation, not a
// slowdown).
//
// PR 8 compares the two payment transports on CPU efficiency: the
// same 32-stream loopback ingest harness run once over HTTP POST /pay
// (the PR 3 harness, now also metered in CPU time) and once over the
// binary framed wire transport (internal/wire), reported as
// bytes-of-goodput credited per CPU-second. Wall-clock ingest on
// loopback saturates memory bandwidth either way; the CPU-second
// denominator is what predicts how much attacker bandwidth one core
// can absorb — speak-up's defining capacity.
//
// PR 9 prices the observability layer: the PR 8 wire-ingest harness
// run with lifecycle tracing off, at the production sampling rate
// (1 in 1024 ids), and at an aggressive 1 in 16, reported as goodput
// retention versus tracing-off. The tracer's contract is that a
// sampled-out id pays one hash on the credit path and a sampled-in id
// pays a handful of atomic adds, so retention should sit at ~1.0.
//
// -pr 2 re-emits the PR 2 simulator measurements (sweep_serial,
// event_loop) for trajectory continuity.
//
// Usage:
//
//	go run ./cmd/benchjson                  # writes BENCH_PR5.json
//	go run ./cmd/benchjson -pr 5 -flood 131072
//	go run ./cmd/benchjson -pr 3 -streams 64 -window 10s
//	go run ./cmd/benchjson -pr 2 -out BENCH_PR2.json
//	go run ./cmd/benchjson -pr 4 -dur 10s   # adversary sweep events/sec
//	go run ./cmd/benchjson -pr 7 -dur 25s   # fault-frontier retention
//	go run ./cmd/benchjson -pr 8 -window 8s # wire vs HTTP goodput/CPU-sec
//	go run ./cmd/benchjson -pr 9 -window 8s # goodput retention under tracing
package main

import (
	"cmp"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/core"
	"speakup/internal/exp"
	"speakup/internal/scenario"
	"speakup/internal/sim"
	"speakup/internal/sweep"
	"speakup/internal/trace"
	"speakup/internal/web"
	"speakup/internal/wire"
)

// pr2Baseline is the pre-PR2 measurement of the identical sweep_serial
// workload (commit 57671a7: container/heap event queue, two closures
// per packet hop, append/reslice link queues, per-event heap nodes),
// captured with go test -bench BenchmarkSweepSerial -benchmem.
var pr2Baseline = metricsJSON{
	Name:        "sweep_serial",
	NsPerOp:     1331848517,
	EventsPerOp: 2525243,
	EventsPerSec: func() float64 {
		return 2525243 / (1331848517 * 1e-9)
	}(),
	BytesPerOp:  326552000,
	AllocsPerOp: 7450748,
	Note:        "pre-PR2 engine (container/heap + closures), same workload and host class",
}

// pr3Baseline is the pre-refactor live front measured on the same
// concurrent-ingest harness (32 streams, 8 s window, GOMAXPROCS=1
// host): 78.7 MB credited in 8.1 s. Ingest flatlined at zero after
// ~1 s — every stream's first read-deadline poll poisoned its chunked
// reader — so the average flatters the old front; its steady state is
// 0. At GOMAXPROCS>1 the old front GC-livelocks on this workload
// (per-poll-tick allocations under the global lock) and completes no
// window at all.
var pr3Baseline = metricsJSON{
	Name:        "concurrent_ingest",
	BytesPerSec: 9687031,
	MbitPerSec:  77.5,
	Note:        "pre-refactor global-lock front (commit 7159e88), 32 streams x 8s, same host; steady-state ingest 0 after ~1s",
}

type metricsJSON struct {
	Name         string  `json:"name"`
	NsPerOp      int64   `json:"ns_per_op,omitempty"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp  int64   `json:"allocs_per_op,omitempty"`
	BytesPerSec  float64 `json:"bytes_per_sec,omitempty"`
	MbitPerSec   float64 `json:"mbit_per_sec,omitempty"`
	// BytesPerCPUSec is the -pr 8 headline: credited payment bytes per
	// CPU-second of process time (user+system, both sides of loopback).
	BytesPerCPUSec float64 `json:"bytes_per_cpu_sec,omitempty"`
	// Retention is the -pr 7 headline: fraction of the fault-free
	// good-service level retained under a fault (1 = unharmed).
	Retention float64 `json:"retention,omitempty"`
	Note      string  `json:"note,omitempty"`
}

type fileJSON struct {
	PR        int    `json:"pr"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the parallelism the measurements actually ran
	// with — on a single-CPU host "parallel" rows are degenerate, so
	// they are omitted (see the -pr 4 path).
	GOMAXPROCS int           `json:"gomaxprocs"`
	Baseline   metricsJSON   `json:"baseline"`
	Current    []metricsJSON `json:"current"`
	// MetricKind says what the headline ratio below measures:
	// "speedup" files carry Speedup (bigger-is-better performance vs
	// the baseline row); "retention" files carry Retention (fraction of
	// fault-free good service kept at the worst fault cell — graceful
	// degradation, not a slowdown). Exactly one of the two is set.
	MetricKind string  `json:"metric_kind"`
	Speedup    float64 `json:"speedup_vs_baseline,omitempty"`
	Retention  float64 `json:"retention_vs_baseline,omitempty"`
}

// cpuSeconds reads the process's consumed CPU time (user + system).
// Both ends of the loopback harness live in this process, so the
// delta across a window prices the whole transport stack — client
// framing, kernel copies, server decode, and the credit itself.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
}

// ---- PR 3: live payment hot path ----

// measureConcurrentIngest runs the fixed-window loopback harness: the
// same workload the pr3Baseline was captured with.
func measureConcurrentIngest(streams int, window time.Duration) metricsJSON {
	block := make(chan struct{})
	origin := web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		<-block
		return []byte{}, nil
	})
	front := web.NewFront(origin, web.Config{
		Thinner: core.Config{
			OrphanTimeout:     time.Hour,
			InactivityTimeout: time.Hour,
			SweepInterval:     time.Hour,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: front}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	go http.Get(base + "/request?id=1") // occupy the origin
	time.Sleep(50 * time.Millisecond)

	payload := make([]byte, 16<<10)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2 * streams}}
	for i := 0; i < streams; i++ {
		id := 1000 + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pr, pw := io.Pipe()
				req, _ := http.NewRequest(http.MethodPost,
					fmt.Sprintf("%s/pay?id=%d", base, id), pr)
				done := make(chan struct{})
				go func() {
					defer close(done)
					resp, err := client.Do(req)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			write:
				for {
					select {
					case <-stop:
						break write
					case <-done:
						break write
					default:
					}
					if _, err := pw.Write(payload); err != nil {
						break
					}
				}
				pw.Close()
				<-done
			}
		}()
	}

	start, cpu0 := time.Now(), cpuSeconds()
	time.Sleep(window)
	elapsed := time.Since(start)
	credited := front.Table().TotalCredited()
	cpu := cpuSeconds() - cpu0
	close(stop)
	wg.Wait()
	close(block)
	srv.Close()
	front.Close()

	bps := float64(credited) / elapsed.Seconds()
	m := metricsJSON{
		Name:        "concurrent_ingest",
		BytesPerSec: bps,
		MbitPerSec:  bps * 8 / 1e6,
		Note:        fmt.Sprintf("%d loopback POST /pay streams, %.1fs window, server-side credited bytes", streams, elapsed.Seconds()),
	}
	if cpu > 0 {
		m.BytesPerCPUSec = float64(credited) / cpu
	}
	return m
}

// ---- PR 8: binary framed wire transport vs HTTP, per CPU-second ----

// measureWireIngest is the wire-transport twin of the PR 3 ingest
// harness: the same blocked-origin front, the same stream count, but
// the payment bytes arrive as CREDIT frames multiplexed over a few
// persistent TCP connections (streams/4 conns, like a real botnet
// client pool) instead of one chunked POST per stream. sample > 0
// additionally arms request-lifecycle tracing at one-in-sample ids —
// the -pr 9 goodput-retention axis; 0 runs with tracing off.
func measureWireIngest(streams int, window time.Duration, sample int) metricsJSON {
	block := make(chan struct{})
	origin := web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		<-block
		return []byte{}, nil
	})
	front := web.NewFront(origin, web.Config{
		Thinner: core.Config{
			OrphanTimeout:     time.Hour,
			InactivityTimeout: time.Hour,
			SweepInterval:     time.Hour,
		},
		Trace: trace.Config{Sample: sample},
	})
	wsrv := wire.NewServer(front, wire.ServerConfig{Tracer: front.Tracer()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go wsrv.Serve(ln)
	addr := ln.Addr().String()

	// Occupy the origin through the same arrival path the HTTP harness
	// uses its GET /request for: the OPEN dispatches id 1 into the
	// blocked origin, so every later channel is a pure contender.
	occ, err := wire.Dial(addr)
	if err != nil {
		panic(err)
	}
	if _, err := occ.Open(1); err != nil {
		panic(err)
	}
	time.Sleep(50 * time.Millisecond)

	nConns := max(1, streams/4)
	conns := make([]*wire.Client, nConns)
	for i := range conns {
		if conns[i], err = wire.Dial(addr); err != nil {
			panic(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		id := core.RequestID(1000 + i)
		cl := conns[i%nConns]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := cl.Credit(id, 1<<20); err != nil {
					return
				}
			}
		}()
	}

	start, cpu0 := time.Now(), cpuSeconds()
	time.Sleep(window)
	elapsed := time.Since(start)
	credited := front.Table().TotalCredited()
	cpu := cpuSeconds() - cpu0
	close(stop)
	for _, cl := range conns {
		cl.Close()
	}
	wg.Wait()
	occ.Close()
	close(block)
	wsrv.Close()
	front.Close()

	bps := float64(credited) / elapsed.Seconds()
	m := metricsJSON{
		Name:        "wire_ingest_goodput",
		BytesPerSec: bps,
		MbitPerSec:  bps * 8 / 1e6,
		Note: fmt.Sprintf("%d payment channels as CREDIT frames over %d persistent conns, %.1fs window, server-side credited bytes",
			streams, nConns, elapsed.Seconds()),
	}
	if sample > 0 {
		n := front.Tracer().SampleN()
		m.Name = fmt.Sprintf("wire_ingest_sample_%d", n)
		m.Note += fmt.Sprintf("; lifecycle tracing armed at 1 in %d ids", n)
	}
	if cpu > 0 {
		m.BytesPerCPUSec = float64(credited) / cpu
	}
	return m
}

// measureCreditPaths benchmarks the per-chunk credit operation on the
// sharded table vs the pre-refactor global-lock ledger model, each
// against a 4096-contender population (the paper's attack regime),
// with procs-way parallel crediting. On a host with fewer hardware
// CPUs than procs this exercises goroutine-level contention only; on
// real multicore hardware the same run shows the global lock's
// cross-core collapse, so re-generate this file there to record it.
func measureCreditPaths(procs int) (bidtable, locked metricsJSON) {
	const pop = 4096
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	hw := ""
	if runtime.NumCPU() < procs {
		hw = fmt.Sprintf(" (host has %d hardware CPU(s): goroutine contention only)", runtime.NumCPU())
	}
	{
		bt := core.NewBidTable(0)
		for i := 0; i < pop; i++ {
			id := core.RequestID(1_000_000 + i)
			bt.Credit(id, int64(i), 0)
			bt.MarkEligible(id, 0)
		}
		var mu sync.Mutex
		next := core.RequestID(0)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				next++
				id := next
				mu.Unlock()
				pc := bt.Channel(id, 0)
				bt.MarkEligible(id, 0)
				now := time.Duration(0)
				for pb.Next() {
					now += time.Microsecond
					pc.Credit(16384, now)
					if pc.State() != core.ChanActive {
						b.Error("settled")
						return
					}
				}
			})
		})
		bidtable = metricsJSON{
			Name: fmt.Sprintf("bidtable_credit_p%d", procs), NsPerOp: r.NsPerOp(),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
			Note: fmt.Sprintf("sharded atomic credit, %d contenders, GOMAXPROCS=%d%s", pop, procs, hw),
		}
	}
	{
		l := core.NewLedger()
		for i := 0; i < pop; i++ {
			id := core.RequestID(1_000_000 + i)
			l.Credit(id, int64(i), 0)
			l.MarkEligible(id, 0)
		}
		var mu sync.Mutex
		var next core.RequestID
		states := make(map[core.RequestID]int)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				next++
				id := next
				l.MarkEligible(id, 0)
				states[id] = 0
				mu.Unlock()
				now := time.Duration(0)
				for pb.Next() {
					now += time.Microsecond
					mu.Lock()
					l.Credit(id, 16384, now)
					st := states[id]
					mu.Unlock()
					if st != 0 {
						b.Error("settled")
						return
					}
				}
			})
		})
		locked = metricsJSON{
			Name: fmt.Sprintf("ledger_credit_global_lock_p%d", procs), NsPerOp: r.NsPerOp(),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
			Note: fmt.Sprintf("pre-refactor model: global mutex + heap ledger, %d contenders, GOMAXPROCS=%d%s", pop, procs, hw),
		}
	}
	return bidtable, locked
}

// ---- PR 4: adversary robustness-frontier sweep ----

// measureAdversarySweep runs the full strategy x aggressiveness x
// bandwidth-ratio grid (internal/exp.Adversary) at the given virtual
// duration per cell and reports simulator events/sec. workers <= 1 is
// the serial number comparable to the PR 2 sweep_serial trajectory;
// workers = GOMAXPROCS shows the worker-pool scaling on the same
// grid. Results are asserted bit-identical across worker counts by
// the determinism tests, so both rows measure the same computation.
func measureAdversarySweep(dur time.Duration, workers int) metricsJSON {
	var events uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := exp.Adversary(exp.Opts{Duration: dur, Seed: 1, Workers: workers})
			events = res.Events
		}
	})
	name := "adversary_sweep_serial"
	note := fmt.Sprintf("24-cell robustness frontier (6 strategies x 2 aggro x 2 bw), %s virtual/cell, 1 worker", dur)
	if workers != 1 {
		name = "adversary_sweep_parallel"
		note = fmt.Sprintf("same grid across %d workers (GOMAXPROCS)", runtime.GOMAXPROCS(0))
	}
	m := metricsJSON{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		EventsPerOp: float64(events),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Note:        note,
	}
	m.EventsPerSec = float64(events) / (float64(r.NsPerOp()) * 1e-9)
	return m
}

// ---- PR 5: indexed auctions and eviction under flood ----

// floodBidTable builds the attack regime for the PR 5 measurements:
// pop eligible channels with spread balances, plus one payer goroutine
// per GOMAXPROCS crediting continuously through cached channels (the
// exact hot path /pay handlers use). stop joins the payers.
func floodBidTable(pop int) (bt *core.BidTable, pcs []*core.PayChan, stop func()) {
	bt = core.NewBidTable(0)
	pcs = make([]*core.PayChan, pop)
	for i := 0; i < pop; i++ {
		id := core.RequestID(i + 1)
		pcs[i] = bt.Channel(id, 0)
		pcs[i].Credit(int64(i), 0)
		bt.MarkEligible(id, 0)
	}
	var halt atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		rng := uint64(w)*2654435761 + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			now := time.Duration(0)
			for i := 0; !halt.Load(); i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				now += time.Microsecond
				pcs[rng%uint64(pop)].Credit(16384, now)
				if i%256 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	return bt, pcs, func() { halt.Store(true); wg.Wait() }
}

// measureWinnerFlood times winner selection over the flood table.
// indexed=false runs WinnerByScan, the pre-PR 5 selection path kept as
// the baseline reference.
func measureWinnerFlood(pop int, indexed bool) metricsJSON {
	r := testing.Benchmark(func(b *testing.B) {
		bt, pcs, stop := floodBidTable(pop)
		defer stop()
		now := time.Duration(0)
		b.ReportAllocs()
		b.ResetTimer()
		// Credit a channel per iteration so every auction observes
		// fresh payment — the indexed path pays for a real drain and
		// tournament update on every call, never a cached root.
		for i := 0; i < b.N; i++ {
			now += time.Microsecond
			pcs[i%pop].Credit(16384, now)
			if indexed {
				bt.Winner()
			} else {
				bt.WinnerByScan()
			}
		}
		b.StopTimer()
	})
	name, note := "winner_indexed", "dirty-stack drain + per-shard heap + shard tournament"
	if !indexed {
		name, note = "winner_scan", "pre-PR5 full scan over every channel (WinnerByScan)"
	}
	return metricsJSON{
		Name: name, NsPerOp: r.NsPerOp(),
		BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		Note: fmt.Sprintf("%s; %d eligible channels, %d concurrent payers",
			note, pop, runtime.GOMAXPROCS(0)),
	}
}

// measureSweepFlood times one timeout-sweep tick (nothing due) over a
// pop-channel table: the indexed path walks only due wheel slots and
// the orphan prefix; the scan path is the pre-PR 5 full-table walk.
func measureSweepFlood(pop int, indexed bool) metricsJSON {
	bt := core.NewBidTable(0)
	bt.SetInactivityTimeout(time.Hour)
	// lastPay sits ~146 years out so no channel ever comes due no
	// matter how far b.N advances the clock; the indexed wheel still
	// pays its honest lazy re-check churn on horizon wraps, and the
	// scan keeps walking the full (never-shrinking) population.
	const farFuture = time.Duration(1 << 62)
	for i := 0; i < pop; i++ {
		id := core.RequestID(i + 1)
		bt.Credit(id, int64(i), 0)
		bt.MarkEligible(id, 0)
		bt.Credit(id, 0, farFuture)
	}
	buf := make([]core.RequestID, 0, 64)
	now := time.Duration(0)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now += time.Second
			if indexed {
				buf = bt.DueOrphans(buf[:0], now-10*time.Second)
				buf = bt.DueInactive(buf, now, now-time.Hour)
			} else {
				buf = bt.Orphans(buf[:0], now-10*time.Second)
				buf = bt.Inactive(buf, now-time.Hour)
			}
		}
	})
	name, note := "sweep_tick_indexed", "orphan-prefix pop + timing-wheel advance, due channels only"
	if !indexed {
		name, note = "sweep_tick_scan", "pre-PR5 full-table Orphans+Inactive scan per tick"
	}
	return metricsJSON{
		Name: name, NsPerOp: r.NsPerOp(),
		BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		Note: fmt.Sprintf("%s; %d eligible channels", note, pop),
	}
}

// ---- PR 7: fault injection and graceful degradation ----

// measureFaults runs the fault frontier (internal/exp.Faults — fault
// kind x intensity x bandwidth ratio through the full simulator with
// retrying clients and the brownout thinner) and reports good-service
// retention per fault kind: the worst cell against the fault-free
// baseline at the same bandwidth ratio.
func measureFaults(dur time.Duration) (baseline metricsJSON, rows []metricsJSON, worst float64) {
	r := exp.Faults(exp.Opts{Duration: dur, Seed: 1, Workers: 0})
	var baseFrac float64
	nBase := 0
	for _, p := range r.Points {
		if p.Kind == "none" {
			baseFrac += p.FracGoodServed
			nBase++
		}
	}
	baseline = metricsJSON{
		Name:      "fault_free_good_service",
		Retention: 1,
		Note: fmt.Sprintf("mean good-service fraction with no faults: %.3f (%d bw ratios, %s/cell)",
			baseFrac/float64(nBase), nBase, dur),
	}
	worst = 1
	for _, fr := range r.Frontier {
		rows = append(rows, metricsJSON{
			Name:      "retention_" + fr.Kind,
			Retention: fr.Worst,
			Note: fmt.Sprintf("worst cell: %s intensity at bw ratio %g; mean retention %.3f",
				fr.WorstIntensity, fr.WorstBWRatio, fr.MeanRetention),
		})
		if fr.Worst < worst {
			worst = fr.Worst
		}
	}
	return baseline, rows, worst
}

// ---- PR 2: simulator measurements (kept for trajectory re-runs) ----

// sweepGrid mirrors sweepBenchGrid in bench_test.go: the §7.4 capacity
// axis at reduced duration.
func sweepGrid() []sweep.Run {
	var g sweep.Grid
	for _, c := range []float64{50, 75, 100, 125, 150, 200} {
		g.Add(fmt.Sprintf("bench/c=%g", c), scenario.Config{
			Seed: 1, Duration: 20 * time.Second, Capacity: c,
			Mode: appsim.ModeAuction,
			Groups: []scenario.ClientGroup{
				{Count: 10, Good: true},
				{Count: 10, Good: false},
			},
		})
	}
	return g.Runs()
}

func measureSweepSerial() metricsJSON {
	grid := sweepGrid()
	var events uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			events = 0
			for _, run := range (sweep.Engine{Workers: 1}).Sweep(grid) {
				events += run.Result.Events
			}
		}
	})
	m := metricsJSON{
		Name:        "sweep_serial",
		NsPerOp:     r.NsPerOp(),
		EventsPerOp: float64(events),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	m.EventsPerSec = float64(events) / (float64(r.NsPerOp()) * 1e-9)
	return m
}

type chainState struct {
	loop *sim.Loop
	left int
}

func chainTick(env, _ any) {
	c := env.(*chainState)
	if c.left--; c.left > 0 {
		c.loop.AfterTimer(time.Microsecond, chainTick, c, nil)
	}
}

func measureEventLoop() metricsJSON {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		loop := sim.NewLoop(1)
		loop.Grow(256)
		const fanout = 64
		chains := make([]chainState, fanout)
		b.ResetTimer()
		for i := range chains {
			chains[i] = chainState{loop: loop, left: b.N / fanout}
			loop.AfterTimer(time.Duration(i), chainTick, &chains[i], nil)
		}
		loop.RunAll()
	})
	m := metricsJSON{
		Name:        "event_loop",
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Note:        "per-event cost of the bare scheduler (typed timer chains)",
	}
	if r.NsPerOp() > 0 {
		m.EventsPerSec = 1e9 / float64(r.NsPerOp())
	}
	return m
}

func main() {
	pr := flag.Int("pr", 5, "which PR's benchmark set to run (2, 3, 4, 5, 7, 8, or 9)")
	out := flag.String("out", "", "output file (default BENCH_PR<n>.json)")
	streams := flag.Int("streams", 32, "concurrent payment streams for the ingest window")
	window := flag.Duration("window", 8*time.Second, "ingest measurement window")
	dur := flag.Duration("dur", 10*time.Second, "virtual duration per sweep cell (-pr 4 adversary, -pr 7 faults)")
	flood := flag.Int("flood", 65536, "eligible channels for the flood winner benchmark (-pr 5)")
	flag.Parse()
	if *flood <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: -flood must be positive (got %d)\n", *flood)
		os.Exit(2)
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_PR%d.json", *pr)
	}

	f := fileJSON{
		PR:         *pr,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MetricKind: "speedup",
	}

	switch *pr {
	case 2:
		fmt.Fprintln(os.Stderr, "benchjson: measuring sweep_serial ...")
		sweepM := measureSweepSerial()
		fmt.Fprintf(os.Stderr, "  %.0f events/sec, %d allocs/op\n", sweepM.EventsPerSec, sweepM.AllocsPerOp)
		fmt.Fprintln(os.Stderr, "benchjson: measuring event_loop ...")
		loopM := measureEventLoop()
		fmt.Fprintf(os.Stderr, "  %.1f ns/event, %d allocs/op\n", float64(loopM.NsPerOp), loopM.AllocsPerOp)
		f.Baseline = pr2Baseline
		f.Current = []metricsJSON{sweepM, loopM}
		f.Speedup = sweepM.EventsPerSec / pr2Baseline.EventsPerSec
	case 3:
		fmt.Fprintf(os.Stderr, "benchjson: measuring concurrent_ingest (%d streams, %s) ...\n", *streams, *window)
		ingest := measureConcurrentIngest(*streams, *window)
		fmt.Fprintf(os.Stderr, "  %.1f Mbit/s credited\n", ingest.MbitPerSec)
		f.Current = []metricsJSON{ingest}
		for _, procs := range []int{1, 8} {
			fmt.Fprintf(os.Stderr, "benchjson: measuring per-chunk credit paths at GOMAXPROCS=%d ...\n", procs)
			bidtable, locked := measureCreditPaths(procs)
			fmt.Fprintf(os.Stderr, "  bidtable %d ns/op (%d allocs)   global-lock ledger %d ns/op\n",
				bidtable.NsPerOp, bidtable.AllocsPerOp, locked.NsPerOp)
			f.Current = append(f.Current, bidtable, locked)
		}
		f.Baseline = pr3Baseline
		f.Speedup = ingest.BytesPerSec / pr3Baseline.BytesPerSec
	case 4:
		fmt.Fprintf(os.Stderr, "benchjson: measuring adversary_sweep_serial (%s/cell) ...\n", *dur)
		serial := measureAdversarySweep(*dur, 1)
		fmt.Fprintf(os.Stderr, "  %.0f events/sec serial\n", serial.EventsPerSec)
		f.Current = []metricsJSON{serial}
		// A "parallel" row on a host with one CPU would measure the
		// same serial computation plus scheduler overhead and read as
		// a regression ("same grid across 1 workers"), so omit it.
		if runtime.NumCPU() > 1 && runtime.GOMAXPROCS(0) > 1 {
			fmt.Fprintf(os.Stderr, "benchjson: measuring adversary_sweep_parallel ...\n")
			par := measureAdversarySweep(*dur, 0)
			fmt.Fprintf(os.Stderr, "  %.0f events/sec across %d workers\n", par.EventsPerSec, runtime.GOMAXPROCS(0))
			f.Current = append(f.Current, par)
		} else {
			fmt.Fprintln(os.Stderr, "benchjson: single-CPU host; omitting the parallel sweep row")
		}
		// The trajectory baseline: the PR 2 engine's serial events/sec
		// on its figure sweep. The adversary grid is a different (new)
		// workload, so the ratio tracks engine throughput continuity,
		// not a like-for-like speedup.
		f.Baseline = pr2Baseline
		f.Speedup = serial.EventsPerSec / pr2Baseline.EventsPerSec
	case 5:
		fmt.Fprintf(os.Stderr, "benchjson: measuring winner_scan under flood (%d channels) ...\n", *flood)
		scan := measureWinnerFlood(*flood, false)
		fmt.Fprintf(os.Stderr, "  %d ns/op\n", scan.NsPerOp)
		fmt.Fprintf(os.Stderr, "benchjson: measuring winner_indexed under the same flood ...\n")
		indexed := measureWinnerFlood(*flood, true)
		fmt.Fprintf(os.Stderr, "  %d ns/op (%d allocs)\n", indexed.NsPerOp, indexed.AllocsPerOp)
		fmt.Fprintf(os.Stderr, "benchjson: measuring sweep tick, indexed vs scan ...\n")
		sweepIdx := measureSweepFlood(*flood, true)
		sweepScan := measureSweepFlood(*flood, false)
		fmt.Fprintf(os.Stderr, "  indexed %d ns/tick   scan %d ns/tick\n", sweepIdx.NsPerOp, sweepScan.NsPerOp)
		f.Baseline = scan
		f.Current = []metricsJSON{indexed, sweepIdx, sweepScan}
		f.Speedup = float64(scan.NsPerOp) / float64(indexed.NsPerOp)
	case 7:
		fmt.Fprintf(os.Stderr, "benchjson: measuring the fault frontier (%s/cell) ...\n", *dur)
		base, rows, worst := measureFaults(*dur)
		for _, row := range rows {
			fmt.Fprintf(os.Stderr, "  %-24s %.3f\n", row.Name, row.Retention)
		}
		f.Baseline = base
		f.Current = rows
		// The headline is a retention ratio, not a speedup: good service
		// at the worst fault cell over the fault-free level.
		f.MetricKind = "retention"
		f.Retention = worst
	case 8:
		fmt.Fprintf(os.Stderr, "benchjson: measuring http ingest goodput (%d streams, %s) ...\n", *streams, *window)
		httpRow := measureConcurrentIngest(*streams, *window)
		httpRow.Name = "http_ingest_goodput"
		httpRow.Note += "; the PR 3 harness, CPU-metered"
		fmt.Fprintf(os.Stderr, "  %.1f Mbit/s, %.1f MB per CPU-second\n",
			httpRow.MbitPerSec, httpRow.BytesPerCPUSec/1e6)
		fmt.Fprintf(os.Stderr, "benchjson: measuring wire ingest goodput (%d channels, %s) ...\n", *streams, *window)
		wireRow := measureWireIngest(*streams, *window, 0)
		fmt.Fprintf(os.Stderr, "  %.1f Mbit/s, %.1f MB per CPU-second\n",
			wireRow.MbitPerSec, wireRow.BytesPerCPUSec/1e6)
		f.Baseline = httpRow
		f.Current = []metricsJSON{wireRow}
		// The headline: payment bytes credited per CPU-second, wire over
		// HTTP, same front, same stream count, same loopback host.
		if httpRow.BytesPerCPUSec > 0 {
			f.Speedup = wireRow.BytesPerCPUSec / httpRow.BytesPerCPUSec
		}
	case 9:
		// Loopback ingest on a small host swings tens of percent run to
		// run (scheduler placement, frequency scaling, container CPU
		// burst that favors whatever runs first) — far more than any
		// tracing cost. So: one discarded warm-up to burn the burst,
		// then interleaved rounds so slow drift hits every sampling
		// rate equally, and the per-rate median as the row.
		const rounds = 3
		sampleRates := []int{0, 1024, 16}
		fmt.Fprintf(os.Stderr, "benchjson: warm-up wire ingest run (discarded) ...\n")
		measureWireIngest(*streams, *window, 0)
		runs := make(map[int][]metricsJSON)
		for r := 0; r < rounds; r++ {
			for _, sample := range sampleRates {
				row := measureWireIngest(*streams, *window, sample)
				fmt.Fprintf(os.Stderr, "  round %d/%d sample %-4d: %.1f Mbit/s\n", r+1, rounds, sample, row.MbitPerSec)
				runs[sample] = append(runs[sample], row)
			}
		}
		median := func(rows []metricsJSON) metricsJSON {
			sorted := append([]metricsJSON(nil), rows...)
			slices.SortFunc(sorted, func(a, b metricsJSON) int {
				return cmp.Compare(a.BytesPerSec, b.BytesPerSec)
			})
			m := sorted[len(sorted)/2]
			m.Note += fmt.Sprintf("; median of %d interleaved rounds", len(sorted))
			return m
		}
		off := median(runs[0])
		off.Name = "wire_ingest_trace_off"
		var rows []metricsJSON
		for _, sample := range sampleRates[1:] {
			row := median(runs[sample])
			fmt.Fprintf(os.Stderr, "benchjson: sample 1-in-%d median: %.3f of trace-off\n", sample, row.BytesPerSec/off.BytesPerSec)
			rows = append(rows, row)
		}
		f.Baseline = off
		f.Current = rows
		// The headline is a retention ratio, not a speedup: goodput with
		// tracing armed at the production rate (1 in 1024) over goodput
		// with tracing off. ~1.0 is the design goal — sampled-out ids pay
		// one hash on the credit path and nothing else.
		f.MetricKind = "retention"
		f.Retention = rows[0].BytesPerSec / off.BytesPerSec
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -pr %d\n", *pr)
		os.Exit(2)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if f.MetricKind == "retention" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%.2f retention vs baseline)\n", *out, f.Retention)
	} else {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%.2fx vs baseline)\n", *out, f.Speedup)
	}
}
