// Command benchjson measures the repo's headline performance numbers
// and writes them to a machine-readable JSON file, seeding the
// per-PR benchmark trajectory (BENCH_PR2.json, BENCH_PR3.json, ...).
//
// Two benchmarks are recorded:
//
//   - sweep_serial: the §7.4-style capacity sweep on one worker — the
//     same workload as BenchmarkSweepSerial in bench_test.go. Its
//     events/sec is the throughput ceiling for every figure
//     reproduction.
//   - event_loop: a microbenchmark of the event core alone
//     (self-rescheduling typed timers), isolating scheduler overhead
//     from model code.
//
// The emitted file also carries the pre-change baseline for this PR
// (measured on the same workload with the previous container/heap +
// closure engine) so the speedup is auditable without checking out old
// commits.
//
// Usage:
//
//	go run ./cmd/benchjson                 # writes BENCH_PR2.json
//	go run ./cmd/benchjson -out bench.json -benchtime 5x
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/scenario"
	"speakup/internal/sim"
	"speakup/internal/sweep"
)

// baseline is the pre-PR2 measurement of the identical sweep_serial
// workload (commit 57671a7: container/heap event queue, two closures
// per packet hop, append/reslice link queues, per-event heap nodes),
// captured with go test -bench BenchmarkSweepSerial -benchmem.
var baseline = metricsJSON{
	Name:        "sweep_serial",
	NsPerOp:     1331848517,
	EventsPerOp: 2525243,
	EventsPerSec: func() float64 {
		return 2525243 / (1331848517 * 1e-9)
	}(),
	BytesPerOp:  326552000,
	AllocsPerOp: 7450748,
	Note:        "pre-PR2 engine (container/heap + closures), same workload and host class",
}

type metricsJSON struct {
	Name         string  `json:"name"`
	NsPerOp      int64   `json:"ns_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Note         string  `json:"note,omitempty"`
}

type fileJSON struct {
	PR        int           `json:"pr"`
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Baseline  metricsJSON   `json:"baseline"`
	Current   []metricsJSON `json:"current"`
	Speedup   float64       `json:"speedup_events_per_sec_vs_baseline"`
}

// sweepGrid mirrors sweepBenchGrid in bench_test.go: the §7.4 capacity
// axis at reduced duration.
func sweepGrid() []sweep.Run {
	var g sweep.Grid
	for _, c := range []float64{50, 75, 100, 125, 150, 200} {
		g.Add(fmt.Sprintf("bench/c=%g", c), scenario.Config{
			Seed: 1, Duration: 20 * time.Second, Capacity: c,
			Mode: appsim.ModeAuction,
			Groups: []scenario.ClientGroup{
				{Count: 10, Good: true},
				{Count: 10, Good: false},
			},
		})
	}
	return g.Runs()
}

func measureSweepSerial() metricsJSON {
	grid := sweepGrid()
	var events uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			events = 0
			for _, run := range (sweep.Engine{Workers: 1}).Sweep(grid) {
				events += run.Result.Events
			}
		}
	})
	m := metricsJSON{
		Name:        "sweep_serial",
		NsPerOp:     r.NsPerOp(),
		EventsPerOp: float64(events),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	m.EventsPerSec = float64(events) / (float64(r.NsPerOp()) * 1e-9)
	return m
}

type chainState struct {
	loop *sim.Loop
	left int
}

func chainTick(env, _ any) {
	c := env.(*chainState)
	if c.left--; c.left > 0 {
		c.loop.AfterTimer(time.Microsecond, chainTick, c, nil)
	}
}

func measureEventLoop() metricsJSON {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		loop := sim.NewLoop(1)
		loop.Grow(256)
		const fanout = 64
		chains := make([]chainState, fanout)
		b.ResetTimer()
		for i := range chains {
			chains[i] = chainState{loop: loop, left: b.N / fanout}
			loop.AfterTimer(time.Duration(i), chainTick, &chains[i], nil)
		}
		loop.RunAll()
	})
	m := metricsJSON{
		Name:        "event_loop",
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Note:        "per-event cost of the bare scheduler (typed timer chains)",
	}
	if r.NsPerOp() > 0 {
		m.EventsPerSec = 1e9 / float64(r.NsPerOp())
	}
	return m
}

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output file")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "benchjson: measuring sweep_serial ...")
	sweepM := measureSweepSerial()
	fmt.Fprintf(os.Stderr, "  %.0f events/sec, %d allocs/op\n", sweepM.EventsPerSec, sweepM.AllocsPerOp)
	fmt.Fprintln(os.Stderr, "benchjson: measuring event_loop ...")
	loopM := measureEventLoop()
	fmt.Fprintf(os.Stderr, "  %.1f ns/event, %d allocs/op\n", float64(loopM.NsPerOp), loopM.AllocsPerOp)

	f := fileJSON{
		PR:        2,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Baseline:  baseline,
		Current:   []metricsJSON{sweepM, loopM},
	}
	f.Speedup = sweepM.EventsPerSec / baseline.EventsPerSec

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%.2fx events/sec vs baseline)\n", *out, f.Speedup)
}
