module speakup

go 1.24
