// Scenario as config: run a declarative scenario file through the
// simulator.
//
// Every workload in this repo — the figure sweeps, cmd/repro runs, and
// the live thinnerd/loadgen pair — is declared in one versioned JSON
// schema (files under configs/). This example loads one document (the
// first argument: a disk path, or an embedded configs/ name; default
// "example"), prints its identity hash, runs it, and reports the
// per-group allocation. Copy configs/example.json, edit the groups,
// and point this (or `cmd/repro -scenario`) at your file: a new
// workload is a config diff, not a code change.
//
// Run with: go run ./examples/scenariofile [file]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"speakup"
)

func main() {
	name := "example"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	doc, err := speakup.LoadScenarioFile(name)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := doc.Config()
	if err != nil {
		log.Fatal(err)
	}
	// Files may leave seed and duration unset (the figure bases do, so
	// one file serves every -duration); pick run values here.
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 20 * time.Second
	}

	fmt.Printf("scenario %q (config %s): capacity %.0f req/s, %d groups, %v of virtual time\n",
		doc.Name, speakup.ScenarioFileHash(doc), cfg.Capacity, len(cfg.Groups), cfg.Duration)
	res := speakup.Simulate(cfg)
	for i := range res.Groups {
		g := &res.Groups[i]
		fmt.Printf("  %-12s %3d clients  served %4d/%4d (%.2f of offered)\n",
			g.Name, g.Clients, g.Served, g.Offered(), g.FractionServed())
	}
	fmt.Printf("good allocation %.2f, fraction of good demand served %.2f\n",
		res.GoodAllocation, res.FractionGoodServed)
}
