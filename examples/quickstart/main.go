// Quickstart: simulate an application-level DDoS with and without
// speak-up and print the server allocation.
//
// Ten clients with identical 2 Mbit/s uplinks hit a server that can
// handle 20 requests/s. Five are legitimate (λ=2 requests/s each,
// window 1); five are attackers saturating their uplinks (λ=40,
// window 20). Without a defense, the attackers' request volume buys
// them almost the whole server. With speak-up, the thinner auctions
// each service slot for dummy bytes, and the split tracks bandwidth:
// roughly half the server goes to the good clients.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"speakup"
)

func main() {
	groups := []speakup.ClientGroup{
		{Name: "good", Count: 5, Good: true},
		{Name: "bad", Count: 5, Good: false},
	}
	base := speakup.Scenario{
		Seed:     42,
		Duration: 60 * time.Second,
		Capacity: 20, // requests/second
		Groups:   groups,
	}

	fmt.Println("speak-up quickstart: 5 good + 5 bad clients, equal bandwidth, c=20 req/s")
	fmt.Println()
	for _, mode := range []speakup.Mode{speakup.ModeOff, speakup.ModeAuction} {
		cfg := base
		cfg.Mode = mode
		res := speakup.Simulate(cfg)
		fmt.Printf("%-12s good allocation %.2f  (good served %4d, bad served %4d, frac good demand met %.2f)\n",
			mode.String()+":", res.GoodAllocation, res.ServedGood, res.ServedBad, res.FractionGoodServed)
	}
	fmt.Println()
	fmt.Println("The good clients' bandwidth share is 0.5, so speak-up's allocation")
	fmt.Println("should sit near 0.5 while the undefended server gives them almost nothing.")
}
