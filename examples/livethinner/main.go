// Live thinner: the real-socket speak-up front-end on loopback.
//
// This example starts the HTTP thinner (paper §6) in front of an
// emulated origin that serves 5 requests/s, then runs one good and one
// bad load-generating client against it over real TCP for a few
// seconds, printing the live auction state once per second. It is the
// same front-end cmd/thinnerd serves; point a browser (or curl) at
// /request?id=123 while it runs to join the auction yourself.
//
// Run with: go run ./examples/livethinner
package main

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"speakup"
	"speakup/internal/loadgen"
)

func main() {
	origin := speakup.NewEmulatedOrigin(5)
	// Shards sets the payment table's concurrency (rounded to a power
	// of two; 0 would pick a GOMAXPROCS-scaled default). Payment chunks
	// credit their channel's atomics without locks, so ingest scales
	// with cores while the auction stays single-threaded.
	front := speakup.NewFront(origin, speakup.FrontConfig{
		Thinner: speakup.ThinnerConfig{Shards: 8},
	})
	defer front.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: front}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("thinner listening on %s (origin capacity: 5 req/s)\n\n", base)

	var ids atomic.Uint64
	good := loadgen.NewClient(loadgen.Config{
		BaseURL: base, Lambda: 3, Window: 2, Good: true,
		UploadBits: 8e6, PostBytes: 128 << 10, Seed: 1,
	}, &ids)
	bad := loadgen.NewClient(loadgen.Config{
		BaseURL: base, Lambda: 30, Window: 8, Good: false,
		UploadBits: 8e6, PostBytes: 128 << 10, Seed: 2,
	}, &ids)
	good.Run()
	bad.Run()

	for i := 0; i < 6; i++ {
		time.Sleep(time.Second)
		st := front.Snapshot()
		fmt.Printf("t=%ds  served=%-4d contenders=%-3d going-rate=%6.1fKB  payment sunk=%5.1fMbit/s  (%d shards)\n",
			i+1, st.Served, st.Contenders, float64(st.GoingRate)/1000, st.PaymentMbps, st.Shards)
	}
	good.Stop()
	bad.Stop()

	fmt.Printf("\ngood client: served %d of %d issued (p50 %s)\n",
		good.Stats.Served.Load(), good.Stats.Issued.Load(), good.Stats.Latency.Quantile(0.5))
	fmt.Printf("bad client:  served %d of %d issued (p50 %s)\n",
		bad.Stats.Served.Load(), bad.Stats.Issued.Load(), bad.Stats.Latency.Quantile(0.5))
	fmt.Println("\nWith equal uplinks the good client holds a far larger per-request")
	fmt.Println("success rate: its rare requests outbid the attacker's flood.")
}
