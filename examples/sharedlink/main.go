// Shared bottleneck: what speak-up costs clients stuck behind one link
// with attackers (paper §4.2 and Figure 8).
//
// Thirty clients reach the thinner through a shared 40 Mbit/s link l;
// twenty more (half good, half bad) connect directly. Because the bad
// clients behind l blast payment traffic through it, the good clients
// behind l cannot reveal their fair bandwidth share — they are crowded
// out before the thinner ever sees their bytes. The run prints, for
// three good/bad splits behind l, how the "bottleneck service" (the
// server share captured by everyone behind l) divides, against the
// per-capita ideal.
//
// Run with: go run ./examples/sharedlink
package main

import (
	"fmt"
	"time"

	"speakup"
)

func main() {
	fmt.Println("good and bad clients behind a shared 40 Mbit/s bottleneck (c=50)")
	fmt.Println()
	fmt.Printf("%-10s  %-22s  %-22s\n", "split", "good share (ideal)", "bad share (ideal)")
	for _, split := range [][2]int{{5, 25}, {15, 15}, {25, 5}} {
		ng, nb := split[0], split[1]
		res := speakup.Simulate(speakup.Scenario{
			Seed:     11,
			Duration: 60 * time.Second,
			Capacity: 50,
			Mode:     speakup.ModeAuction,
			Bottlenecks: []speakup.Bottleneck{
				{Rate: 40e6, Delay: time.Millisecond},
			},
			Groups: []speakup.ClientGroup{
				{Name: "bn-good", Count: ng, Good: true, Bottleneck: 1},
				{Name: "bn-bad", Count: nb, Good: false, Bottleneck: 1},
				{Name: "direct-good", Count: 10, Good: true},
				{Name: "direct-bad", Count: 10, Good: false},
			},
		})
		g, b := res.Groups[0].Served, res.Groups[1].Served
		tot := g + b
		if tot == 0 {
			continue
		}
		fmt.Printf("%2dg/%2db     %.2f (%.2f)            %.2f (%.2f)\n",
			ng, nb,
			float64(g)/float64(tot), float64(ng)/30.0,
			float64(b)/float64(tot), float64(nb)/30.0)
	}
	fmt.Println()
	fmt.Println("The bad clients 'hog' l (paper §4.2): the good clients behind it get")
	fmt.Println("less than their per-capita ideal, though the server itself stays protected.")
}
