// Search-engine attack: heterogeneous request difficulty (paper §5),
// with the attackers declared through the adversary suite.
//
// The paper's intro motivates speak-up with attacks that issue
// computationally expensive requests — e.g. bots sending search
// queries that hammer the back-end. Here good clients send cheap
// queries (50 ms of server time) while the bots run the "mimic"
// adversary strategy: good-client impersonation (the §8.1 smart bots
// that fly under rate-profiling radar) at 3x aggressiveness, each
// query intentionally 10x-hard (Work). A thinner that charges per
// *request* still loses most of the server's time to them; the §5
// quantum scheduler charges per 50 ms *quantum* of service —
// suspending the active request whenever a contender outbids it — so
// hard requests cost ten times as much and the bots' time share
// collapses to (at most) their bandwidth share.
//
// Swap the Strategy name to explore the rest of the registry —
// "defector" bots additionally refuse to pay full price, "onoff" bots
// pulse — the frontier across all of them is `go run ./cmd/repro
// -experiment adversary`.
//
// Run with: go run ./examples/searchattack
package main

import (
	"fmt"
	"time"

	"speakup"
)

func main() {
	easy := 50 * time.Millisecond
	groups := []speakup.ClientGroup{
		{Name: "searchers", Count: 10, Good: true, Work: easy},
		// Mimic at 3x: λ=6, w=3 — looks like an eager human, burns 500ms
		// of server time per query.
		{Name: "bots", Count: 10, Strategy: "mimic", Aggressiveness: 3, Work: 10 * easy},
	}
	fmt.Printf("search-engine attack: %s\n", speakup.AdversaryDoc("mimic"))
	fmt.Println("bots send 10x-expensive queries at equal bandwidth")
	fmt.Println()
	for _, tc := range []struct {
		label string
		mode  speakup.Mode
	}{
		{"per-request auction (§3.3)", speakup.ModeAuction},
		{"per-quantum auction (§5)  ", speakup.ModeHetero},
	} {
		res := speakup.Simulate(speakup.Scenario{
			Seed:     7,
			Duration: 60 * time.Second,
			Capacity: 20, // easy requests per second
			Mode:     tc.mode,
			Hetero:   speakup.HeteroConfig{Tau: easy},
			Groups:   groups,
		})
		good, bad := res.Groups[0], res.Groups[1]
		total := good.ServedWork + bad.ServedWork
		share := 0.0
		if total > 0 {
			share = float64(good.ServedWork) / float64(total)
		}
		fmt.Printf("%s  good share of server TIME %.2f  (queries served: %d good / %d bot)\n",
			tc.label, share, good.Served, bad.Served)
	}
	fmt.Println()
	fmt.Println("Charging per quantum makes each hard query win ~10 auctions, so the")
	fmt.Println("bots' expensive requests no longer buy a disproportionate time share.")
}
