// Search-engine attack: heterogeneous request difficulty (paper §5).
//
// The paper's intro motivates speak-up with attacks that issue
// computationally expensive requests — e.g. bots sending search
// queries that hammer the back-end. Here good clients send cheap
// queries (50 ms of server time) while attackers intentionally send
// 10x-hard ones (500 ms). A thinner that charges per *request* still
// loses most of the server's time to attackers; the §5 quantum
// scheduler charges per 50 ms *quantum* of service — suspending the
// active request whenever a contender outbids it — so hard requests
// cost ten times as much and the attackers' time share collapses to
// (at most) their bandwidth share. Attackers who also spread their
// bandwidth across many concurrent hard requests fare even worse:
// each request bids slowly, keeps getting suspended, and is aborted
// after 30 s (the paper's timeout), paying for service it never gets.
//
// Run with: go run ./examples/searchattack
package main

import (
	"fmt"
	"time"

	"speakup"
)

func main() {
	easy := 50 * time.Millisecond
	groups := []speakup.ClientGroup{
		{Name: "searchers", Count: 10, Good: true, Work: easy},
		{Name: "bots", Count: 10, Good: false, Work: 10 * easy},
	}

	fmt.Println("search-engine attack: bots send 10x-expensive queries, equal bandwidth")
	fmt.Println()
	for _, tc := range []struct {
		label string
		mode  speakup.Mode
	}{
		{"per-request auction (§3.3)", speakup.ModeAuction},
		{"per-quantum auction (§5)  ", speakup.ModeHetero},
	} {
		res := speakup.Simulate(speakup.Scenario{
			Seed:     7,
			Duration: 60 * time.Second,
			Capacity: 20, // easy requests per second
			Mode:     tc.mode,
			Hetero:   speakup.HeteroConfig{Tau: easy},
			Groups:   groups,
		})
		good, bad := res.Groups[0], res.Groups[1]
		total := good.ServedWork + bad.ServedWork
		share := 0.0
		if total > 0 {
			share = float64(good.ServedWork) / float64(total)
		}
		fmt.Printf("%s  good share of server TIME %.2f  (queries served: %d good / %d bot)\n",
			tc.label, share, good.Served, bad.Served)
	}
	fmt.Println()
	fmt.Println("Charging per quantum makes each hard query win ~10 auctions, so the")
	fmt.Println("bots' expensive requests no longer buy a disproportionate time share.")
}
