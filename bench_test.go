// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (§7), plus the ablations from DESIGN.md. Each benchmark
// runs the experiment at reduced virtual duration (the shapes are
// duration-stable; cmd/repro reruns them at the paper's 600 s) and
// prints the same rows/series the paper reports. Headline values are
// also exposed as benchmark metrics.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package speakup

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/exp"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sim"
	"speakup/internal/sweep"
	"speakup/internal/web"
)

// benchOpts is the scaled-down experiment configuration. 60 s of
// virtual time keeps every figure's shape; see EXPERIMENTS.md.
var benchOpts = exp.Opts{Duration: 60 * time.Second, Seed: 1}

// printOnce gates table output so repeated bench iterations (b.N > 1)
// do not spam.
var printedMu sync.Mutex
var printed = map[string]bool{}

func printOnce(key string, table *metrics.Table) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if !printed[key] {
		printed[key] = true
		fmt.Printf("\n%s\n", table)
	}
}

func BenchmarkFig2Allocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig2(benchOpts)
		printOnce("fig2", r.Table())
		mid := r.Points[2] // f = 0.5
		b.ReportMetric(mid.With, "goodAlloc(f=0.5)")
		b.ReportMetric(mid.Without, "goodAllocOff(f=0.5)")
	}
}

func BenchmarkFig3Provisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig345(benchOpts)
		printOnce("fig3", r.Fig3Table())
		b.ReportMetric(r.Points[2].FracGoodServedOn, "fracGoodServed(c=200)")
	}
}

func BenchmarkFig4PaymentTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig345(benchOpts)
		printOnce("fig4", r.Fig4Table())
		b.ReportMetric(r.Points[0].PayTimeMean, "payTimeMeanSec(c=50)")
	}
}

func BenchmarkFig5Price(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig345(benchOpts)
		printOnce("fig5", r.Fig5Table())
		b.ReportMetric(r.Points[0].PriceGood/1000, "priceGoodKB(c=50)")
		b.ReportMetric(r.Points[0].PriceUpperBound/1000, "priceBoundKB(c=50)")
	}
}

func BenchmarkSec74AdversarialAdvantage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Sec74MinCapacity(benchOpts)
		printOnce("sec74", r.Table())
		b.ReportMetric(r.MinCapacity/r.IdealCapacity, "provisioningVsIdeal")
	}
}

func BenchmarkSec74WindowSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Sec74WindowSweep(benchOpts)
		printOnce("window", r.Table())
		b.ReportMetric(r.Points[3].BadAllocation, "badAlloc(w=20)")
	}
}

func BenchmarkFig6HeterogeneousBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig6(benchOpts)
		printOnce("fig6", r.Table())
		b.ReportMetric(r.Points[4].Observed, "topCategoryShare")
	}
}

func BenchmarkFig7HeterogeneousRTT(b *testing.B) {
	// RTTs reach 500 ms; use a longer run so slow-start transients
	// do not dominate (see exp tests).
	o := exp.Opts{Duration: 100 * time.Second, Seed: benchOpts.Seed}
	for i := 0; i < b.N; i++ {
		r := exp.Fig7(o)
		printOnce("fig7", r.Table())
		b.ReportMetric(r.Points[0].AllGood-r.Points[4].AllGood, "goodSpread")
		b.ReportMetric(r.Points[0].AllBad-r.Points[4].AllBad, "badSpread")
	}
}

func BenchmarkFig8SharedBottleneck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig8(benchOpts)
		printOnce("fig8", r.Table())
		b.ReportMetric(r.Points[1].GoodShare, "goodShare(15g/15b)")
	}
}

func BenchmarkFig9BystanderHTTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig9(benchOpts)
		printOnce("fig9", r.Table())
		b.ReportMetric(r.Points[0].InflationFactor, "inflation(1KB)")
		b.ReportMetric(r.Points[3].InflationFactor, "inflation(64KB)")
	}
}

func BenchmarkAblationVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Variants(benchOpts)
		printOnce("variants", r.Table())
		b.ReportMetric(r.Points[2].GoodAllocation, "auctionGoodAlloc")
	}
}

func BenchmarkAblationTheorem31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Theorem31(benchOpts)
		printOnce("theorem", r.Table())
		worst := 1.0
		for _, p := range r.Points {
			if p.Bound > 0 && p.Share/p.Bound/2 < worst {
				worst = p.Share / (2 * p.Bound)
			}
		}
		b.ReportMetric(worst, "minShareVsEps") // 0.5 = exactly the eps/2 floor
	}
}

func BenchmarkAblationHeterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Hetero(benchOpts)
		printOnce("hetero", r.Table())
		b.ReportMetric(r.Points[0].GoodWorkShare, "naiveGoodTimeShare")
		b.ReportMetric(r.Points[1].GoodWorkShare, "quantumGoodTimeShare")
	}
}

func BenchmarkAblationPOSTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.POSTSize(benchOpts)
		printOnce("postsize", r.Table())
		b.ReportMetric(r.Points[0].GoodAllocation, "goodAlloc(64KB)")
		b.ReportMetric(r.Points[2].GoodAllocation, "goodAlloc(1MB)")
	}
}

func BenchmarkAblationParallelConns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.ParallelConns(benchOpts)
		printOnce("parconns", r.Table())
		b.ReportMetric(r.Points[3].SustainedShare, "sustainedShare(n=10)")
	}
}

// --- sweep engine: serial vs parallel figure grids ---

// sweepBenchGrid is a representative figure sweep: the §7.4 capacity
// axis at reduced duration.
func sweepBenchGrid() []sweep.Run {
	var g sweep.Grid
	for _, c := range []float64{50, 75, 100, 125, 150, 200} {
		g.Add(fmt.Sprintf("bench/c=%g", c), scenario.Config{
			Seed: 1, Duration: 20 * time.Second, Capacity: c,
			Mode: ModeAuction,
			Groups: []scenario.ClientGroup{
				{Count: 10, Good: true},
				{Count: 10, Good: false},
			},
		})
	}
	return g.Runs()
}

func benchmarkSweep(b *testing.B, workers int) {
	grid := sweepBenchGrid()
	for i := 0; i < b.N; i++ {
		rs := sweep.Engine{Workers: workers}.Sweep(grid)
		var events uint64
		for _, r := range rs {
			events += r.Result.Events
		}
		b.ReportMetric(float64(events), "events/op")
	}
}

// BenchmarkSweepSerial is the baseline: one worker, like the
// hand-rolled loops the experiments used before the sweep engine.
func BenchmarkSweepSerial(b *testing.B) { benchmarkSweep(b, 1) }

// BenchmarkSweepParallel fans the same grid across GOMAXPROCS workers;
// on an N-core machine wall time drops roughly N-fold.
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }

// --- event core microbenchmarks ---

type eventChain struct {
	loop *sim.Loop
	left int
}

func eventChainTick(env, _ any) {
	c := env.(*eventChain)
	if c.left--; c.left > 0 {
		c.loop.AfterTimer(time.Microsecond, eventChainTick, c, nil)
	}
}

// BenchmarkEventLoop measures the bare scheduler: 64 interleaved
// self-rescheduling typed-timer chains, one event per op. The headline
// claims are ns/op (pure per-event cost, no model code) and allocs/op,
// which must stay at zero — the zero-allocation invariant the rebuilt
// engine exists for, also enforced by tests in internal/sim.
func BenchmarkEventLoop(b *testing.B) {
	loop := sim.NewLoop(1)
	loop.Grow(256)
	const fanout = 64
	chains := make([]eventChain, fanout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := range chains {
		chains[i] = eventChain{loop: loop, left: b.N / fanout}
		loop.AfterTimer(time.Duration(i), eventChainTick, &chains[i], nil)
	}
	loop.RunAll()
}

// BenchmarkEventScheduleCancel measures the re-armed-timer pattern
// (TCP RTO resets fire it once per ACK): schedule far in the future,
// cancel immediately. Also 0 allocs/op.
func BenchmarkEventScheduleCancel(b *testing.B) {
	loop := sim.NewLoop(1)
	loop.Grow(256)
	var h sim.Handler = func(env, arg any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.Cancel(loop.AfterTimer(time.Hour, h, nil, nil))
	}
}

// --- §7.1: thinner payment-sink capacity (real sockets) ---

// sinkBody feeds n chunks of the given size to an HTTP POST.
type sinkBody struct {
	chunk []byte
	left  int
}

func (s *sinkBody) Read(p []byte) (int, error) {
	if s.left == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.chunk)
	if n == len(s.chunk) {
		s.left--
	}
	return n, nil
}

// benchSink measures how fast the live thinner sinks payment bytes
// arriving in units of chunkSize — the §7.1 experiment (the paper
// reports 1451 Mbit/s at 1500 B and 379 Mbit/s at 120 B on a 2006
// Xeon; absolute numbers differ on this hardware, the 1500-vs-120
// shape is what matters).
func benchSink(b *testing.B, chunkSize int) {
	origin := web.NewEmulatedOrigin(1000)
	front := web.NewFront(origin, web.Config{
		PayPollInterval: time.Second, // no poll churn during the bench
		Thinner:         core.Config{OrphanTimeout: time.Hour},
	})
	defer front.Close()
	srv := httptest.NewServer(front)
	defer srv.Close()

	b.SetBytes(int64(chunkSize))
	b.ResetTimer()
	body := &sinkBody{chunk: make([]byte, chunkSize), left: b.N}
	resp, err := http.Post(srv.URL+"/pay?id=1", "application/octet-stream", io.NopCloser(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	b.StopTimer()
	st := front.Snapshot()
	if st.PaymentBytes < int64(b.N)*int64(chunkSize) {
		b.Fatalf("sank %d bytes, want >= %d", st.PaymentBytes, int64(b.N)*int64(chunkSize))
	}
}

func BenchmarkThinnerSink1500(b *testing.B) { benchSink(b, 1500) }
func BenchmarkThinnerSink120(b *testing.B)  { benchSink(b, 120) }

// BenchmarkTable1Summary regenerates the paper's Table 1 (summary of
// main evaluation results) from quick versions of the underlying runs.
func BenchmarkTable1Summary(b *testing.B) {
	o := exp.Opts{Duration: 30 * time.Second, Seed: 1}
	for i := 0; i < b.N; i++ {
		fig2 := exp.Fig2(o)
		sec74 := exp.Sec74MinCapacity(o)
		fig9 := exp.Fig9(o)

		mid := fig2.Points[2]
		t := metrics.NewTable("Table 1: summary of main evaluation results (measured at reduced scale)",
			"result", "paper", "measured")
		t.AddRow("allocation ~ bandwidth-proportional (f=0.5)", "~ideal", fmt.Sprintf("%.2f vs ideal 0.50", mid.With))
		t.AddRow("provisioning beyond ideal to serve all good", "15%",
			fmt.Sprintf("%.0f%%", 100*(sec74.MinCapacity/sec74.IdealCapacity-1)))
		t.AddRow("thinner sinks payment traffic", "1.5 Gbit/s @1500B",
			"see BenchmarkThinnerSink1500/120")
		t.AddRow("speak-up crowds out bottleneck bystanders", "up to ~6x",
			fmt.Sprintf("%.1fx @1KB", fig9.Points[0].InflationFactor))
		printOnce("table1", t)
		b.ReportMetric(mid.With, "allocAtHalf")
	}
}

func BenchmarkSec81ProfilingVsSpeakup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Sec81SmartBots(benchOpts)
		printOnce("sec81", r.Table())
		for _, p := range r.Points {
			if p.Defense == "speak-up" && p.Bots == "smart (λ=6)" {
				b.ReportMetric(p.GoodAllocation, "speakupVsSmartBots")
			}
			if p.Defense == "profiling" && p.Bots == "smart (λ=6)" {
				b.ReportMetric(p.GoodAllocation, "profilingVsSmartBots")
			}
		}
	}
}

func BenchmarkSec9FlashCrowd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.FlashCrowd(benchOpts)
		printOnce("flashcrowd", r.Table())
		b.ReportMetric(r.Points[1].MeanPriceKB, "crowdPriceKB")
	}
}
