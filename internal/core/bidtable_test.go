package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBidTableCreditAndWinner(t *testing.T) {
	bt := NewBidTable(8)
	bt.Credit(1, 100, 0)
	bt.Credit(2, 500, 0)
	bt.Credit(3, 500, 0)
	if _, _, ok := bt.Winner(); ok {
		t.Fatal("no eligible channels, yet a winner")
	}
	bt.MarkEligible(2, 0)
	bt.MarkEligible(3, 0)
	id, paid, ok := bt.Winner()
	if !ok || id != 2 || paid != 500 {
		t.Fatalf("winner = %d/%d/%v, want 2/500 (tie to lowest id)", id, paid, ok)
	}
	bt.Credit(3, 1, 0)
	if id, paid, _ = bt.Winner(); id != 3 || paid != 501 {
		t.Fatalf("winner after top-up = %d/%d, want 3/501", id, paid)
	}
	if bt.Balance(1) != 100 || !bt.Contains(1) {
		t.Fatal("orphan channel lost")
	}
	if bt.Eligible() != 2 || bt.Size() != 3 {
		t.Fatalf("eligible=%d size=%d, want 2/3", bt.Eligible(), bt.Size())
	}
}

func TestBidTableRemoveSettlesState(t *testing.T) {
	bt := NewBidTable(4)
	c := bt.Channel(7, 0)
	c.Credit(250, 0)
	bt.MarkEligible(7, 0)
	if c.State() != ChanActive {
		t.Fatal("fresh channel not active")
	}
	if paid := bt.Remove(7, ChanAdmitted); paid != 250 {
		t.Fatalf("removed paid = %d, want 250", paid)
	}
	if c.State() != ChanAdmitted {
		t.Fatalf("state = %v, want admitted", c.State())
	}
	if bt.Contains(7) || bt.Eligible() != 0 {
		t.Fatal("channel not removed")
	}
	// Credits after settle are dropped, and a second settle cannot
	// overwrite the verdict.
	c.Credit(1000, 0)
	if c.Paid() != 250 {
		t.Fatalf("post-settle credit accepted: %d", c.Paid())
	}
	if bt.Remove(7, ChanEvicted); c.State() != ChanAdmitted {
		t.Fatal("second settle overwrote the verdict")
	}
	// A new POST for the same id opens a fresh, active channel.
	c2 := bt.Channel(7, 0)
	if c2 == c || c2.State() != ChanActive || c2.Paid() != 0 {
		t.Fatal("stale channel resurrected")
	}
}

func TestBidTableWinnerAcrossShards(t *testing.T) {
	// One channel per shard, so the auction must compare shard maxima.
	bt := NewBidTable(16)
	for i := 1; i <= 64; i++ {
		bt.Credit(RequestID(i), int64(i), 0)
		bt.MarkEligible(RequestID(i), 0)
	}
	id, paid, ok := bt.Winner()
	if !ok || id != 64 || paid != 64 {
		t.Fatalf("winner = %d/%d, want 64/64", id, paid)
	}
	// Remove the top repeatedly: the table must always surface the
	// next-highest, exercising stale-hint refresh on dirty shards.
	for want := int64(64); want >= 1; want-- {
		id, paid, ok := bt.Winner()
		if !ok || paid != want || id != RequestID(want) {
			t.Fatalf("winner = %d/%d/%v, want %d", id, paid, ok, want)
		}
		bt.Remove(id, ChanAdmitted)
	}
	if _, _, ok := bt.Winner(); ok {
		t.Fatal("drained table still has a winner")
	}
}

func TestBidTableOrphansAndInactive(t *testing.T) {
	bt := NewBidTable(4)
	bt.Credit(1, 10, 1*time.Second) // orphan, created t=1s
	bt.Credit(2, 10, 5*time.Second) // orphan, created t=5s
	bt.Credit(3, 10, 1*time.Second)
	bt.MarkEligible(3, 1*time.Second) // eligible, last pay t=1s
	bt.MarkEligible(4, 8*time.Second) // eligible, created/last pay t=8s

	var ids []RequestID
	ids = bt.Orphans(ids, 2*time.Second)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("orphans = %v, want [1]", ids)
	}
	ids = bt.Inactive(ids[:0], 2*time.Second)
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("inactive = %v, want [3]", ids)
	}
	// Paying refreshes activity.
	bt.Credit(3, 1, 9*time.Second)
	if ids = bt.Inactive(ids[:0], 2*time.Second); len(ids) != 0 {
		t.Fatalf("paying contender still inactive: %v", ids)
	}
}

func TestBidTableTotals(t *testing.T) {
	bt := NewBidTable(2)
	bt.Credit(1, 100, 0)
	bt.Credit(2, 300, 0)
	if bt.TotalCredited() != 400 || bt.OutstandingBytes() != 400 {
		t.Fatalf("credited=%d outstanding=%d", bt.TotalCredited(), bt.OutstandingBytes())
	}
	bt.Remove(1, ChanEvicted)
	if bt.TotalRemoved() != 100 || bt.OutstandingBytes() != 300 {
		t.Fatalf("removed=%d outstanding=%d", bt.TotalRemoved(), bt.OutstandingBytes())
	}
}

func TestBidTableWaiters(t *testing.T) {
	bt := NewBidTable(4)
	w1, w2 := make(chan []byte, 1), make(chan []byte, 1)
	if !bt.SetWaiter(5, w1) {
		t.Fatal("first registration refused")
	}
	if bt.SetWaiter(5, w2) {
		t.Fatal("duplicate registration accepted")
	}
	// DropWaiter only removes the caller's own registration.
	bt.DropWaiter(5, w2)
	if bt.Waiters() != 1 {
		t.Fatal("foreign drop removed the waiter")
	}
	if got := bt.TakeWaiter(5); got != any(w1) {
		t.Fatalf("took %v, want w1", got)
	}
	if bt.TakeWaiter(5) != nil || bt.Waiters() != 0 {
		t.Fatal("waiter not consumed")
	}
	bt.SetWaiter(5, w1)
	bt.DropWaiter(5, w1)
	if bt.Waiters() != 0 {
		t.Fatal("own drop did not remove the waiter")
	}
}

func TestBidTableNegativeCreditPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative payment did not panic")
		}
	}()
	NewBidTable(1).Credit(1, -5, 0)
}

func TestBidTableShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := NewBidTable(tc.in).Shards(); got != tc.want {
			t.Fatalf("NewBidTable(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewBidTable(0).Shards(); got < 1 {
		t.Fatalf("default shards = %d", got)
	}
}

// TestBidTableMatchesLedger cross-checks the concurrent table against
// the single-threaded ledger on a deterministic op mix: same credits,
// same eligibility, same winners, same totals — the property the
// simulator's byte-identical goldens rest on.
func TestBidTableMatchesLedger(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		bt := NewBidTable(shards)
		l := NewLedger()
		rng := uint64(12345)
		next := func(n uint64) uint64 { // xorshift
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % n
		}
		now := time.Duration(0)
		for step := 0; step < 5000; step++ {
			now += time.Millisecond
			id := RequestID(next(40))
			switch next(4) {
			case 0, 1:
				amt := int64(next(1000))
				bt.Credit(id, amt, now)
				l.Credit(id, amt, now)
			case 2:
				bt.MarkEligible(id, now)
				l.MarkEligible(id, now)
			case 3:
				bi, bp, bok := bt.Winner()
				li, lp, lok := l.Winner()
				if bi != li || bp != lp || bok != lok {
					t.Fatalf("shards=%d step %d: winner %d/%d/%v vs ledger %d/%d/%v",
						shards, step, bi, bp, bok, li, lp, lok)
				}
				if bok {
					bt.Remove(bi, ChanAdmitted)
					l.Remove(li)
				}
			}
		}
		if bt.Eligible() != l.Eligible() || bt.Size() != l.Size() ||
			bt.OutstandingBytes() != l.OutstandingBytes() ||
			bt.TotalCredited() != l.TotalCredited ||
			bt.TotalRemoved() != l.TotalRemoved {
			t.Fatalf("shards=%d: totals diverged: table(e=%d n=%d out=%d cr=%d rm=%d) ledger(e=%d n=%d out=%d cr=%d rm=%d)",
				shards,
				bt.Eligible(), bt.Size(), bt.OutstandingBytes(), bt.TotalCredited(), bt.TotalRemoved(),
				l.Eligible(), l.Size(), l.OutstandingBytes(), l.TotalCredited, l.TotalRemoved)
		}
	}
}

// TestBidTableConcurrentCredit hammers credits from many goroutines
// while an auctioneer runs winners/removals — run under -race in CI's
// live-race job.
func TestBidTableConcurrentCredit(t *testing.T) {
	bt := NewBidTable(8)
	const payers = 32
	const credits = 2000
	var wg sync.WaitGroup
	for p := 0; p < payers; p++ {
		id := RequestID(p)
		bt.MarkEligible(id, 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			pc := bt.Channel(id, 0)
			for i := 0; i < credits; i++ {
				pc.Credit(10, time.Duration(i))
			}
		}()
	}
	// Concurrent auctioneer: winners must always be live channels.
	stop := make(chan struct{})
	var auctions sync.WaitGroup
	auctions.Add(1)
	go func() {
		defer auctions.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			bt.Winner()
			bt.Orphans(nil, time.Hour)
			bt.Inactive(nil, -time.Hour)
		}
	}()
	wg.Wait()
	close(stop)
	auctions.Wait()
	if got, want := bt.TotalCredited(), int64(payers*credits*10); got != want {
		t.Fatalf("credited = %d, want %d (lost updates)", got, want)
	}
	id, paid, ok := bt.Winner()
	if !ok || paid != credits*10 {
		t.Fatalf("final winner %d/%d/%v, want full balance %d", id, paid, ok, credits*10)
	}
}

// TestPayChanCreditAllocs is the PR 3 analog of the simulator's
// zero-alloc invariant: crediting a payment chunk — the operation the
// live front performs for every 16 KB of attacker traffic — must not
// allocate.
func TestPayChanCreditAllocs(t *testing.T) {
	bt := NewBidTable(8)
	pc := bt.Channel(42, 0)
	bt.MarkEligible(42, 0)
	if avg := testing.AllocsPerRun(1000, func() {
		pc.Credit(16384, 5*time.Millisecond)
		if pc.State() != ChanActive {
			t.Fatal("channel settled mid-test")
		}
	}); avg != 0 {
		t.Fatalf("credit path allocates %.1f/op, want 0", avg)
	}
}

// Contender populations for the credit benchmarks: a small auction
// and the paper's regime — thousands of concurrent payment channels
// during an attack.
var creditPopulations = []int{8, 4096}

// BenchmarkBidTableCredit measures the sharded per-chunk credit path
// against a populated table: each goroutine owns one payment channel
// and credits through its atomics, the way /pay handlers do. Cost is
// O(1) and lock-free regardless of how many channels contend.
func BenchmarkBidTableCredit(b *testing.B) {
	for _, pop := range creditPopulations {
		b.Run(fmt.Sprintf("contenders=%d", pop), func(b *testing.B) {
			bt := NewBidTable(0)
			for i := 0; i < pop; i++ {
				id := RequestID(1_000_000 + i)
				bt.Credit(id, int64(i), 0)
				bt.MarkEligible(id, 0)
			}
			var mu sync.Mutex
			nextID := RequestID(0)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				nextID++
				id := nextID
				mu.Unlock()
				pc := bt.Channel(id, 0)
				bt.MarkEligible(id, 0)
				now := time.Duration(0)
				for pb.Next() {
					now += time.Microsecond
					pc.Credit(16384, now)
					if pc.State() != ChanActive {
						b.Error("settled")
						return
					}
				}
			})
		})
	}
}

// BenchmarkLedgerCreditGlobalLock is the pre-refactor model: every
// credit takes one global mutex around the heap-backed ledger, exactly
// as internal/web did before the BidTable (mutex + Ledger.Credit with
// its O(log n) heap fix + pay-state map read). Compare against
// BenchmarkBidTableCredit for the sharding win; benchjson records both
// in BENCH_PR3.json.
func BenchmarkLedgerCreditGlobalLock(b *testing.B) {
	for _, pop := range creditPopulations {
		b.Run(fmt.Sprintf("contenders=%d", pop), func(b *testing.B) {
			l := NewLedger()
			for i := 0; i < pop; i++ {
				id := RequestID(1_000_000 + i)
				l.Credit(id, int64(i), 0)
				l.MarkEligible(id, 0)
			}
			var mu sync.Mutex
			var nextID RequestID
			states := make(map[RequestID]int)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				nextID++
				id := nextID
				l.MarkEligible(id, 0)
				states[id] = 0
				mu.Unlock()
				now := time.Duration(0)
				for pb.Next() {
					now += time.Microsecond
					mu.Lock()
					l.Credit(id, 16384, now)
					st := states[id]
					mu.Unlock()
					if st != 0 {
						b.Error("settled")
						return
					}
				}
			})
		})
	}
}

// BenchmarkBidTableWinner measures the auction scan against a
// populated table, with and without dirty shards.
func BenchmarkBidTableWinner(b *testing.B) {
	for _, contenders := range []int{16, 1024} {
		b.Run(fmt.Sprintf("contenders=%d", contenders), func(b *testing.B) {
			bt := NewBidTable(0)
			for i := 1; i <= contenders; i++ {
				bt.Credit(RequestID(i), int64(i), 0)
				bt.MarkEligible(RequestID(i), 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Credit to dirty one shard, then scan.
				bt.Credit(RequestID(i%contenders+1), 1, 0)
				if _, _, ok := bt.Winner(); !ok {
					b.Fatal("no winner")
				}
			}
		})
	}
}
