package core

import (
	"sort"
	"time"
)

// fakeClock is a manually-advanced Clock for unit tests.
type fakeClock struct {
	now    time.Duration
	timers []*fakeTimer
	nextID int
}

type fakeTimer struct {
	id   int
	at   time.Duration
	fn   func()
	dead bool
}

func (c *fakeClock) Now() time.Duration { return c.now }

func (c *fakeClock) After(d time.Duration, fn func()) func() {
	c.nextID++
	t := &fakeTimer{id: c.nextID, at: c.now + d, fn: fn}
	c.timers = append(c.timers, t)
	return func() { t.dead = true }
}

// Advance moves time forward, firing due timers in order.
func (c *fakeClock) Advance(d time.Duration) {
	target := c.now + d
	for {
		// Find the earliest pending timer at or before target.
		var next *fakeTimer
		for _, t := range c.timers {
			if t.dead {
				continue
			}
			if t.at <= target && (next == nil || t.at < next.at || (t.at == next.at && t.id < next.id)) {
				next = t
			}
		}
		if next == nil {
			break
		}
		c.now = next.at
		next.dead = true
		next.fn()
	}
	c.now = target
	// Compact dead timers.
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.dead {
			live = append(live, t)
		}
	}
	c.timers = live
	sort.Slice(c.timers, func(i, j int) bool { return c.timers[i].at < c.timers[j].at })
}
