// Package core implements speak-up's central mechanism: the thinner.
//
// The thinner is the front-end the paper places before a protected
// server (§3). It performs *encouragement* — causing clients to send
// payment bytes when the server is overloaded — and *proportional
// allocation* — admitting, each time the server frees up, the
// contending request that has paid the most (the virtual auction of
// §3.3). The package also implements the random-drop/aggressive-retry
// variant of §3.2, the no-defense pass-through baseline used by the
// paper's "OFF" experiments, and the heterogeneous-request quantum
// scheduler of §5.
//
// Everything here is transport-independent and single-threaded: the
// same state machines drive the discrete-event simulation
// (internal/scenario) and the real-socket web front-end (internal/web,
// which serializes calls with a mutex).
package core

import (
	"container/heap"
	"time"
)

// RequestID identifies one client request. The request message and its
// payment channel carry the same ID so the thinner can correlate them
// (the paper's prototype uses an id field in both HTTP requests).
type RequestID uint64

// entry is one contending request in the ledger.
type entry struct {
	id       RequestID
	paid     int64 // bytes credited since entry creation (or last Charge)
	eligible bool  // request message has arrived; may win auctions
	heapIdx  int   // index in the eligible heap, -1 if not eligible
	created  time.Duration
	lastPay  time.Duration
}

// Ledger tracks contending requests and their payment balances and
// answers "who paid most" in O(log n). Only eligible entries — those
// whose request message has arrived — participate in winner selection;
// payment may precede eligibility (bytes arrive before the request
// does, as happens for bandwidth-saturated attackers).
type Ledger struct {
	entries map[RequestID]*entry
	heap    payHeap // eligible entries, max-ordered by (paid, -id)

	// Totals for reporting.
	TotalCredited int64
	TotalRemoved  int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: make(map[RequestID]*entry)}
}

type payHeap []*entry

func (h payHeap) Len() int { return len(h) }
func (h payHeap) Less(i, j int) bool {
	if h[i].paid != h[j].paid {
		return h[i].paid > h[j].paid
	}
	return h[i].id < h[j].id // deterministic tie-break: older request wins
}
func (h payHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *payHeap) Push(x any) {
	e := x.(*entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *payHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heapIdx = -1
	*h = old[:n-1]
	return e
}

// Credit adds bytes to id's balance, creating the entry (ineligible)
// if absent. now is the caller's clock reading, used for orphan and
// inactivity accounting. It returns true if the entry was created.
func (l *Ledger) Credit(id RequestID, bytes int64, now time.Duration) bool {
	if bytes < 0 {
		panic("core: negative payment")
	}
	e, ok := l.entries[id]
	if !ok {
		e = &entry{id: id, heapIdx: -1, created: now}
		l.entries[id] = e
	}
	e.paid += bytes
	e.lastPay = now
	l.TotalCredited += bytes
	if e.eligible && bytes > 0 {
		heap.Fix(&l.heap, e.heapIdx)
	}
	return !ok
}

// MarkEligible records that id's request message has arrived, creating
// the entry if needed. Eligible entries participate in auctions.
func (l *Ledger) MarkEligible(id RequestID, now time.Duration) {
	e, ok := l.entries[id]
	if !ok {
		e = &entry{id: id, heapIdx: -1, created: now, lastPay: now}
		l.entries[id] = e
	}
	if !e.eligible {
		e.eligible = true
		heap.Push(&l.heap, e)
	}
}

// Balance returns id's current balance (0 if unknown).
func (l *Ledger) Balance(id RequestID) int64 {
	if e, ok := l.entries[id]; ok {
		return e.paid
	}
	return 0
}

// Contains reports whether id has an entry (eligible or not).
func (l *Ledger) Contains(id RequestID) bool {
	_, ok := l.entries[id]
	return ok
}

// Eligible returns the number of entries eligible to win an auction.
func (l *Ledger) Eligible() int { return len(l.heap) }

// Size returns the total number of entries, including orphans.
func (l *Ledger) Size() int { return len(l.entries) }

// Winner returns the eligible entry with the highest balance (ties to
// the lowest id). ok is false when no entry is eligible.
func (l *Ledger) Winner() (id RequestID, paid int64, ok bool) {
	if len(l.heap) == 0 {
		return 0, 0, false
	}
	top := l.heap[0]
	return top.id, top.paid, true
}

// RunnerUp returns the second-ranked eligible entry under the auction
// total order (paid desc, id asc). In a binary max-heap the second
// maximum is always one of the root's children, so this is O(1) — the
// §5 quantum scheduler uses it every tick when the active request
// tops the heap, instead of scanning the whole ledger.
func (l *Ledger) RunnerUp() (id RequestID, paid int64, ok bool) {
	switch len(l.heap) {
	case 0, 1:
		return 0, 0, false
	case 2:
		return l.heap[1].id, l.heap[1].paid, true
	}
	best := l.heap[1]
	if l.heap.Less(2, 1) {
		best = l.heap[2]
	}
	return best.id, best.paid, true
}

// Charge zeroes id's balance without removing it (the §5 quantum
// scheduler charges the winner one quantum and keeps it contending).
// It returns the amount charged.
func (l *Ledger) Charge(id RequestID) int64 {
	e, ok := l.entries[id]
	if !ok {
		return 0
	}
	paid := e.paid
	e.paid = 0
	l.TotalRemoved += paid
	if e.eligible {
		heap.Fix(&l.heap, e.heapIdx)
	}
	return paid
}

// Remove deletes id and returns its final balance.
func (l *Ledger) Remove(id RequestID) int64 {
	e, ok := l.entries[id]
	if !ok {
		return 0
	}
	if e.eligible {
		heap.Remove(&l.heap, e.heapIdx)
	}
	delete(l.entries, id)
	l.TotalRemoved += e.paid
	return e.paid
}

// Orphans appends to dst the ids of ineligible entries created at or
// before cutoff (payment channels whose request never arrived) and
// returns it.
func (l *Ledger) Orphans(dst []RequestID, cutoff time.Duration) []RequestID {
	for id, e := range l.entries {
		if !e.eligible && e.created <= cutoff {
			dst = append(dst, id)
		}
	}
	return dst
}

// Inactive appends to dst the ids of eligible entries with no payment
// activity since cutoff and returns it.
func (l *Ledger) Inactive(dst []RequestID, cutoff time.Duration) []RequestID {
	for _, e := range l.heap {
		if e.lastPay <= cutoff {
			dst = append(dst, e.id)
		}
	}
	return dst
}

// OutstandingBytes returns the sum of all current balances.
func (l *Ledger) OutstandingBytes() int64 {
	var sum int64
	for _, e := range l.entries {
		sum += e.paid
	}
	return sum
}
