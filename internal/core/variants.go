package core

import (
	"math/rand"
	"time"
)

// PassThrough is the no-defense baseline the paper's "OFF" experiments
// use (§3 illustration, §7.2): when the server is free, the next
// arriving request is served; requests arriving while it is busy are
// dropped. Over Poisson arrivals this allocates the server in
// proportion to request rates — which is exactly why attackers win
// without speak-up.
type PassThrough struct {
	busy  bool
	stats Stats

	// Admit delivers a request to the server.
	Admit func(id RequestID)
	// Drop rejects a request (the thinner replies "busy" immediately).
	Drop func(id RequestID)
}

// NewPassThrough returns the OFF-mode front-end.
func NewPassThrough() *PassThrough { return &PassThrough{} }

// Stats returns a copy of the activity counters.
func (p *PassThrough) Stats() Stats { return p.stats }

// Busy reports whether the server is occupied.
func (p *PassThrough) Busy() bool { return p.busy }

// RequestArrived admits the request if the server is free, else drops it.
func (p *PassThrough) RequestArrived(id RequestID) {
	if p.busy {
		p.stats.Evicted++
		if p.Drop != nil {
			p.Drop(id)
		}
		return
	}
	p.busy = true
	p.stats.Admitted++
	p.stats.AdmittedDirect++
	if p.Admit != nil {
		p.Admit(id)
	}
}

// ServerDone signals that the server finished a request.
func (p *PassThrough) ServerDone() { p.busy = false }

// RandomDrop is the §3.2 speak-up variant: the thinner admits each
// incoming request with probability prob and asks the client to retry
// otherwise; clients pipeline congestion-controlled retries. The
// admission probability adapts so the admitted rate tracks the
// server's capacity c: each adaptation interval it sets
// prob = c / (measured arrival rate).
//
// The price (retries per service) emerges as 1/prob = (B+G)/c, giving
// the same bandwidth-proportional allocation as the auction (§3.2).
type RandomDrop struct {
	clock Clock
	rng   *rand.Rand
	cfg   RandomDropConfig

	prob     float64
	arrived  int // requests in the current adaptation interval
	stats    Stats
	stopTick func()

	queue []RequestID // admitted, waiting for the server
	busy  bool

	// Admit delivers a request to the server.
	Admit func(id RequestID)
	// Retry asks the client to retry now (the synchronous please-retry
	// signal; with pipelined clients it is informational).
	Retry func(id RequestID)
}

// RandomDropConfig tunes a RandomDrop front-end.
type RandomDropConfig struct {
	// Capacity is the server's rate c in requests/second. Required.
	Capacity float64
	// AdaptEvery is the probability-adaptation interval. Default 1s.
	AdaptEvery time.Duration
	// MaxQueue bounds the admitted-but-unserved queue; beyond it,
	// admitted requests are dropped (the server is strictly paced).
	// Default 2.
	MaxQueue int
	// Seed seeds the drop coin. The simulation passes a fixed seed for
	// reproducibility.
	Seed int64
}

func (c RandomDropConfig) withDefaults() RandomDropConfig {
	if c.AdaptEvery == 0 {
		c.AdaptEvery = time.Second
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2
	}
	return c
}

// NewRandomDrop creates the §3.2 front-end and starts its adaptation
// timer on the given clock.
func NewRandomDrop(clock Clock, cfg RandomDropConfig) *RandomDrop {
	if cfg.Capacity <= 0 {
		panic("core: RandomDrop requires Capacity > 0")
	}
	r := &RandomDrop{
		clock: clock,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg.withDefaults(),
		prob:  1,
	}
	r.scheduleTick()
	return r
}

// Stats returns a copy of the activity counters.
func (r *RandomDrop) Stats() Stats { return r.stats }

// Prob returns the current admission probability (the price is 1/Prob).
func (r *RandomDrop) Prob() float64 { return r.prob }

// Stop cancels the adaptation timer.
func (r *RandomDrop) Stop() {
	if r.stopTick != nil {
		r.stopTick()
		r.stopTick = nil
	}
}

func (r *RandomDrop) scheduleTick() {
	r.stopTick = r.clock.After(r.cfg.AdaptEvery, func() {
		rate := float64(r.arrived) / r.cfg.AdaptEvery.Seconds()
		r.arrived = 0
		if rate <= r.cfg.Capacity {
			r.prob = 1
		} else {
			r.prob = r.cfg.Capacity / rate
		}
		r.scheduleTick()
	})
}

// RequestArrived applies the drop coin. Admitted requests go to the
// server (or its short queue); dropped ones trigger a retry signal.
func (r *RandomDrop) RequestArrived(id RequestID) {
	r.arrived++
	if r.rng.Float64() >= r.prob || len(r.queue) >= r.cfg.MaxQueue {
		r.stats.Evicted++
		if r.Retry != nil {
			r.Retry(id)
		}
		return
	}
	if r.busy {
		r.queue = append(r.queue, id)
		return
	}
	r.busy = true
	r.stats.Admitted++
	if r.Admit != nil {
		r.Admit(id)
	}
}

// ServerDone signals request completion; the next queued admitted
// request (if any) starts.
func (r *RandomDrop) ServerDone() {
	r.busy = false
	if len(r.queue) == 0 {
		return
	}
	id := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	r.stats.Admitted++
	if r.Admit != nil {
		r.Admit(id)
	}
}
