package core

// Waiter is a transport-side sink for a held request's outcome. The
// HTTP front parks each held request in a buffered channel; other
// transports (the binary wire front) register a Waiter instead, and
// the front's admit/evict callbacks deliver through it.
type Waiter interface {
	// Deliver hands the waiter its outcome: the origin's response body
	// on admission, or nil on eviction. Called from the front's
	// dispatch paths — possibly with the control mutex held — so
	// implementations must not block.
	Deliver(body []byte)
}

// ArriveVerdict is a front's answer to one transport-level request
// arrival. Each verdict maps onto the HTTP front's pinned status
// codes, so every transport surfaces identical semantics.
type ArriveVerdict int

const (
	// ArriveOK: the request is registered and contending (HTTP: the
	// held 200-to-be).
	ArriveOK ArriveVerdict = iota
	// ArriveDuplicate: a request with this id is already waiting
	// (HTTP 409 Conflict).
	ArriveDuplicate
	// ArriveShed: origin brownout — auctions are paused and the
	// arrival is refused with a retry hint (HTTP 503 + Retry-After).
	ArriveShed
)
