package core

import (
	"time"
)

// HeteroThinner generalizes the virtual auction to unequal requests
// (§5). Time is broken into quanta of length Tau; a request of x
// quanta must win x auctions. Instead of terminating the winner's
// payment channel, the thinner keeps charging it: every quantum it
// compares the payment (since last charge) of the currently-active
// request v against the top contender u and
//
//  1. if u outbid v: SUSPEND v, admit/RESUME u, zero u's payment;
//  2. otherwise: let v continue and zero v's payment (it just paid for
//     the next quantum);
//  3. requests SUSPENDed longer than AbortAfter are ABORTed.
//
// The server must export SUSPEND/RESUME/ABORT (internal/server does).
type HeteroThinner struct {
	clock  Clock
	cfg    HeteroConfig
	ledger *Ledger
	stats  Stats

	active    RequestID
	hasActive bool
	started   map[RequestID]bool          // requests already begun (RESUME vs Start)
	suspended map[RequestID]time.Duration // id -> when suspended
	charged   map[RequestID]int64         // bytes charged across quanta so far

	stopTick func()

	// Start begins serving a fresh request.
	Start func(id RequestID)
	// Suspend pauses the active request, preserving its progress.
	Suspend func(id RequestID)
	// Resume continues a previously suspended request.
	Resume func(id RequestID)
	// Abort cancels a suspended request that timed out.
	Abort func(id RequestID)
	// Encourage tells a client to start (or keep) paying.
	Encourage func(id RequestID)
	// Done reports a request that finished service (its channel may be
	// closed); paid is the total charged over its lifetime.
	Done func(id RequestID, paid int64)
}

// HeteroConfig tunes a HeteroThinner.
type HeteroConfig struct {
	// Tau is the quantum length (the paper's τ). Required.
	Tau time.Duration
	// AbortAfter aborts requests suspended this long (paper: 30s).
	AbortAfter time.Duration
	// OrphanTimeout evicts request-less payment channels. Default 10s.
	OrphanTimeout time.Duration
}

func (c HeteroConfig) withDefaults() HeteroConfig {
	if c.AbortAfter == 0 {
		c.AbortAfter = 30 * time.Second
	}
	if c.OrphanTimeout == 0 {
		c.OrphanTimeout = 10 * time.Second
	}
	return c
}

// NewHeteroThinner creates the §5 scheduler and starts its quantum
// timer on the given clock.
func NewHeteroThinner(clock Clock, cfg HeteroConfig) *HeteroThinner {
	if cfg.Tau <= 0 {
		panic("core: HeteroThinner requires Tau > 0")
	}
	h := &HeteroThinner{
		clock:     clock,
		cfg:       cfg.withDefaults(),
		ledger:    NewLedger(),
		started:   make(map[RequestID]bool),
		suspended: make(map[RequestID]time.Duration),
		charged:   make(map[RequestID]int64),
	}
	h.scheduleTick()
	return h
}

// Ledger exposes the payment ledger.
func (h *HeteroThinner) Ledger() *Ledger { return h.ledger }

// Stats returns a copy of the activity counters.
func (h *HeteroThinner) Stats() Stats { return h.stats }

// Active returns the currently-served request, if any.
func (h *HeteroThinner) Active() (RequestID, bool) { return h.active, h.hasActive }

// Stop cancels the quantum timer.
func (h *HeteroThinner) Stop() {
	if h.stopTick != nil {
		h.stopTick()
		h.stopTick = nil
	}
}

// RequestArrived registers a request; it contends for quanta from now
// on. Unlike the homogeneous thinner there is no free-server fast
// path bypassing the ledger: every request is admitted via the quantum
// procedure so that attackers cannot sneak hard requests in for free.
// When the server is idle the next tick admits the top contender, so
// idle-server latency is bounded by Tau.
func (h *HeteroThinner) RequestArrived(id RequestID) {
	h.ledger.MarkEligible(id, h.clock.Now())
	if h.Encourage != nil {
		h.Encourage(id)
	}
}

// PaymentReceived credits bytes to id's channel.
func (h *HeteroThinner) PaymentReceived(id RequestID, bytes int64) {
	h.ledger.Credit(id, bytes, h.clock.Now())
}

// ServerDone reports that the active request completed.
func (h *HeteroThinner) ServerDone(id RequestID) {
	if !h.hasActive || h.active != id {
		return
	}
	h.hasActive = false
	paid := h.charged[id] + h.ledger.Remove(id)
	delete(h.charged, id)
	delete(h.started, id)
	h.stats.Admitted++
	h.stats.PaidBytes += paid
	if h.Done != nil {
		h.Done(id, paid)
	}
	// Don't wait a full quantum with an idle server: run the
	// procedure immediately to admit the next contender.
	h.tick()
}

func (h *HeteroThinner) scheduleTick() {
	h.stopTick = h.clock.After(h.cfg.Tau, func() {
		h.tick()
		h.scheduleTick()
	})
}

// tick is the every-τ procedure from §5.
func (h *HeteroThinner) tick() {
	now := h.clock.Now()

	// Abort requests suspended too long.
	for id, since := range h.suspended {
		if now-since >= h.cfg.AbortAfter {
			delete(h.suspended, id)
			delete(h.started, id)
			paid := h.charged[id] + h.ledger.Remove(id)
			delete(h.charged, id)
			h.stats.Evicted++
			h.stats.WastedBytes += paid
			if h.Abort != nil {
				h.Abort(id)
			}
		}
	}
	// Evict orphaned payment channels.
	var orphans []RequestID
	for _, id := range h.ledger.Orphans(orphans, now-h.cfg.OrphanTimeout) {
		paid := h.ledger.Remove(id)
		h.stats.Evicted++
		h.stats.WastedBytes += paid
	}

	u, uPaid, ok := h.topContender()
	if !ok {
		return // nobody waiting; v (if any) keeps running for free
	}
	if !h.hasActive {
		h.admit(u, uPaid)
		return
	}
	vPaid := h.ledger.Balance(h.active)
	if uPaid > vPaid {
		// u outbids v: suspend v, start/resume u.
		v := h.active
		h.suspended[v] = now
		h.hasActive = false
		if h.Suspend != nil {
			h.Suspend(v)
		}
		h.admit(u, uPaid)
		return
	}
	// v holds the server: charge it for the next quantum.
	h.charged[h.active] += h.ledger.Charge(h.active)
}

// topContender returns the highest-paid eligible request that is not
// the active one.
func (h *HeteroThinner) topContender() (RequestID, int64, bool) {
	id, paid, ok := h.ledger.Winner()
	if !ok {
		return 0, 0, false
	}
	if h.hasActive && id == h.active {
		// The active request tops the heap; the runner-up is one of
		// the root's children, which the ledger answers in O(1) — no
		// scan over the contender population.
		return h.ledger.RunnerUp()
	}
	return id, paid, ok
}

func (h *HeteroThinner) admit(id RequestID, paid int64) {
	h.stats.Auctions++
	h.charged[id] += h.ledger.Charge(id)
	h.active = id
	h.hasActive = true
	delete(h.suspended, id)
	if h.started[id] {
		if h.Resume != nil {
			h.Resume(id)
		}
		return
	}
	h.started[id] = true
	if h.Start != nil {
		h.Start(id)
	}
}
