package core

import (
	"testing"
)

// TestBrownoutLadder walks the full health ladder: OK -> Stalled
// (arrivals shed, auctions deferred, evictions held) -> Recovering
// (deferred auction settles, grace hold) -> OK at the first sweep past
// the hold.
func TestBrownoutLadder(t *testing.T) {
	h := newHarness(Config{})
	cfg := h.th.Config()
	var shed []RequestID
	h.th.Shed = func(id RequestID) { shed = append(shed, id) }

	h.th.RequestArrived(1) // occupies the server
	h.th.RequestArrived(2) // contender
	h.th.PaymentReceived(2, 4000)

	h.th.SetOriginStalled(true)
	if h.th.Health() != HealthStalled {
		t.Fatalf("health = %v, want stalled", h.th.Health())
	}
	if h.th.Stats().Brownouts != 1 {
		t.Fatalf("brownouts = %d, want 1", h.th.Stats().Brownouts)
	}
	h.th.SetOriginStalled(true) // idempotent: still one brownout
	if h.th.Stats().Brownouts != 1 {
		t.Fatalf("re-stall double-counted: brownouts = %d", h.th.Stats().Brownouts)
	}

	// Arrivals during the brownout are shed, not stranded.
	h.th.RequestArrived(3)
	if len(shed) != 1 || shed[0] != 3 || h.th.Stats().Shed != 1 {
		t.Fatalf("shed = %v (stats %d), want [3]", shed, h.th.Stats().Shed)
	}

	// The origin failing its request mid-stall must not trigger an
	// auction: the floor is closed.
	h.th.ServerDone()
	if len(h.admitted) != 1 {
		t.Fatalf("auction ran during brownout: admitted = %v", h.admitted)
	}
	if h.th.Busy() {
		t.Fatal("thinner busy with a closed floor")
	}

	// Evictions are held: advance far past every timeout while stalled.
	h.clock.Advance(cfg.InactivityTimeout + cfg.OrphanTimeout + 5*cfg.SweepInterval)
	if len(h.evicted) != 0 {
		t.Fatalf("sweep evicted %v during brownout", h.evicted)
	}

	// Recovery settles the deferred auction immediately.
	h.th.SetOriginStalled(false)
	if h.th.Health() != HealthRecovering {
		t.Fatalf("health = %v, want recovering", h.th.Health())
	}
	if len(h.admitted) != 2 || h.admitted[1] != 2 {
		t.Fatalf("deferred auction: admitted = %v, want [1 2]", h.admitted)
	}
	if h.prices[1] != 4000 {
		t.Fatalf("held balance lost: price = %d, want 4000", h.prices[1])
	}

	// Inside the grace hold the sweep still refuses to evict...
	h.clock.Advance(cfg.SweepInterval)
	if len(h.evicted) != 0 {
		t.Fatalf("sweep evicted %v inside the recovery grace", h.evicted)
	}
	// ...and once the hold passes, the ladder returns to OK.
	h.clock.Advance(cfg.OrphanTimeout + 2*cfg.SweepInterval)
	if h.th.Health() != HealthOK {
		t.Fatalf("health = %v after grace, want ok", h.th.Health())
	}
}

// TestBrownoutRecoveryNoAuctionWhileBusy checks that recovering while
// the origin is mid-request does not double-admit: the deferred
// settle waits for ServerDone.
func TestBrownoutRecoveryNoAuctionWhileBusy(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1) // busy
	h.th.RequestArrived(2)
	h.th.PaymentReceived(2, 100)
	h.th.SetOriginStalled(true)
	h.th.SetOriginStalled(false) // origin still serving request 1
	if len(h.admitted) != 1 {
		t.Fatalf("recovery auctioned while busy: admitted = %v", h.admitted)
	}
	h.th.ServerDone()
	if len(h.admitted) != 2 || h.admitted[1] != 2 {
		t.Fatalf("admitted = %v, want [1 2]", h.admitted)
	}
}

// TestSetOriginStalledFalseFromOKIsNoop guards the live watchdog
// pattern: recovery is called unconditionally after every origin
// round-trip, so it must be a no-op unless a stall was armed.
func TestSetOriginStalledFalseFromOKIsNoop(t *testing.T) {
	h := newHarness(Config{})
	h.th.SetOriginStalled(false)
	if h.th.Health() != HealthOK {
		t.Fatalf("health = %v, want ok", h.th.Health())
	}
	if h.th.Stats().Brownouts != 0 {
		t.Fatalf("brownouts = %d, want 0", h.th.Stats().Brownouts)
	}
}

// TestHealthStateString pins the /healthz and /stats vocabulary.
func TestHealthStateString(t *testing.T) {
	want := map[HealthState]string{
		HealthOK: "ok", HealthStalled: "stalled", HealthRecovering: "recovering",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("HealthState(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
}

// TestLastSweepAge checks the sweep-liveness signal advances with the
// clock and resets on each tick.
func TestLastSweepAge(t *testing.T) {
	h := newHarness(Config{})
	cfg := h.th.Config()
	if h.th.LastSweepAge() != 0 {
		t.Fatalf("initial sweep age = %v, want 0", h.th.LastSweepAge())
	}
	h.clock.Advance(cfg.SweepInterval / 2)
	if got := h.th.LastSweepAge(); got != cfg.SweepInterval/2 {
		t.Fatalf("sweep age = %v, want %v", got, cfg.SweepInterval/2)
	}
	h.clock.Advance(cfg.SweepInterval) // tick fires, resetting the age
	if got := h.th.LastSweepAge(); got >= cfg.SweepInterval {
		t.Fatalf("sweep age = %v after a tick, want < %v", got, cfg.SweepInterval)
	}
}
