package core

import (
	"testing"
	"time"
)

// These tests pin how Reconfigure interleaves with the brownout
// ladder — the exact race a fleet rollout creates when a config push
// lands while (or just after) an origin stalls. The contract:
//
//   - A stalled thinner holds every eviction, even when a reconfigure
//     shrinks the timeouts far below the channels' ages.
//   - Reconfigure's sweep-chain restart never doubles the chain,
//     stalled or not (the sweepGen guard).
//   - The recovery grace window (holdUntil) is fixed when recovery
//     begins; a later reconfigure does not shorten it retroactively.
//   - Once the ladder returns to OK, the new timeouts govern.

func liveTimers(c *fakeClock) int {
	n := 0
	for _, tm := range c.timers {
		if !tm.dead {
			n++
		}
	}
	return n
}

func TestReconfigureDuringStallHoldsEvictions(t *testing.T) {
	h := newHarness(Config{}) // defaults: orphan 10s, inactivity 30s, sweep 1s
	h.th.RequestArrived(1)    // busy
	h.th.PaymentReceived(42, 500) // orphan candidate: bytes, no request
	h.th.RequestArrived(2)        // inactivity candidate: request, no bytes
	h.th.SetOriginStalled(true)

	// Mid-brownout, a rollout shrinks every timeout far below the
	// channels' eventual ages.
	if err := h.th.Reconfigure(Config{
		OrphanTimeout:     time.Second,
		InactivityTimeout: 2 * time.Second,
		SweepInterval:     500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(time.Minute)

	if len(h.evicted) != 0 {
		t.Fatalf("evicted %v during a stall: the hold must outrank shrunken timeouts", h.evicted)
	}
	if h.th.Health() != HealthStalled {
		t.Fatalf("health = %v, want stalled", h.th.Health())
	}
	if h.th.Table().Balance(42) != 500 {
		t.Fatal("held orphan lost its balance")
	}
	// Arrivals keep being shed under the new config.
	h.th.RequestArrived(3)
	if got := h.th.Stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if len(h.admitted) != 1 || len(h.encourage) != 1 {
		t.Fatalf("mid-stall arrival reached the auction: admitted=%v encourage=%v", h.admitted, h.encourage)
	}
}

func TestReconfigureDuringStallKeepsSingleSweepChain(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	h.th.SetOriginStalled(true)

	// Repeated reconfigures must each replace — never duplicate — the
	// pending sweep timer, including while the sweep body is a held
	// no-op.
	for i := 0; i < 3; i++ {
		if err := h.th.Reconfigure(Config{SweepInterval: 250 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	h.clock.Advance(0) // compact cancelled timers
	if n := liveTimers(h.clock); n != 1 {
		t.Fatalf("%d live sweep timers after reconfigures, want 1", n)
	}
	h.clock.Advance(10 * time.Second)
	if n := liveTimers(h.clock); n != 1 {
		t.Fatalf("%d live sweep timers after sweeping while stalled, want 1", n)
	}
}

func TestReconfigureDuringRecoveryRespectsHold(t *testing.T) {
	h := newHarness(Config{})      // orphan timeout 10s
	h.th.RequestArrived(1)         // busy
	h.th.PaymentReceived(42, 500)  // orphan candidate
	h.th.SetOriginStalled(true)
	h.clock.Advance(3 * time.Second)

	// Recovery fixes the grace window at now + the OLD orphan timeout.
	h.th.SetOriginStalled(false)
	if h.th.Health() != HealthRecovering {
		t.Fatalf("health = %v, want recovering", h.th.Health())
	}
	// A rollout now shrinks the orphan timeout. The already-granted
	// grace must not shrink with it: contenders were promised the time
	// to re-establish their payment streams.
	if err := h.th.Reconfigure(Config{OrphanTimeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(5 * time.Second) // inside the original 10s hold
	if len(h.evicted) != 0 {
		t.Fatalf("evicted %v inside the recovery grace window", h.evicted)
	}
	if h.th.Health() != HealthRecovering {
		t.Fatalf("health = %v, want still recovering", h.th.Health())
	}

	// Past the hold the ladder returns to OK and the NEW timeout
	// governs: 42 is long overdue at 1s.
	h.clock.Advance(6 * time.Second)
	if h.th.Health() != HealthOK {
		t.Fatalf("health = %v, want ok past the hold", h.th.Health())
	}
	if len(h.evicted) != 1 || h.evicted[0] != 42 {
		t.Fatalf("evicted = %v, want [42] under the shrunken timeout", h.evicted)
	}
}

func TestReconfigureBeforeRecoverySetsNewGrace(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	h.th.PaymentReceived(42, 500)
	h.th.SetOriginStalled(true)

	// The push lands during the stall; recovery afterwards grants grace
	// from the NEW orphan timeout.
	if err := h.th.Reconfigure(Config{OrphanTimeout: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(time.Second)
	h.th.SetOriginStalled(false)

	h.clock.Advance(1500 * time.Millisecond) // inside the 2s grace
	if len(h.evicted) != 0 || h.th.Health() != HealthRecovering {
		t.Fatalf("grace cut short: evicted=%v health=%v", h.evicted, h.th.Health())
	}
	h.clock.Advance(time.Second) // past it
	if h.th.Health() != HealthOK {
		t.Fatalf("health = %v, want ok", h.th.Health())
	}
	if len(h.evicted) != 1 || h.evicted[0] != 42 {
		t.Fatalf("evicted = %v, want [42]", h.evicted)
	}
}
