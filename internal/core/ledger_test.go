package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLedgerCreditCreatesOrphan(t *testing.T) {
	l := NewLedger()
	created := l.Credit(7, 100, 0)
	if !created {
		t.Fatal("first credit must create the entry")
	}
	if l.Credit(7, 50, time.Second) {
		t.Fatal("second credit must not report creation")
	}
	if l.Balance(7) != 150 {
		t.Fatalf("balance = %d, want 150", l.Balance(7))
	}
	if l.Eligible() != 0 {
		t.Fatal("orphan must not be eligible")
	}
	if _, _, ok := l.Winner(); ok {
		t.Fatal("winner must not exist among orphans")
	}
}

func TestLedgerEligibilityAndWinner(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 100, 0)
	l.Credit(2, 300, 0)
	l.Credit(3, 200, 0)
	l.MarkEligible(1, 0)
	l.MarkEligible(3, 0)
	id, paid, ok := l.Winner()
	if !ok || id != 3 || paid != 200 {
		t.Fatalf("winner = %d/%d/%v, want 3/200 (2 is ineligible)", id, paid, ok)
	}
	l.MarkEligible(2, 0)
	if id, paid, _ := l.Winner(); id != 2 || paid != 300 {
		t.Fatalf("winner = %d/%d, want 2/300", id, paid)
	}
}

func TestLedgerWinnerTieBreaksLowID(t *testing.T) {
	l := NewLedger()
	for _, id := range []RequestID{9, 4, 6} {
		l.Credit(id, 500, 0)
		l.MarkEligible(id, 0)
	}
	if id, _, _ := l.Winner(); id != 4 {
		t.Fatalf("tie-break winner = %d, want 4", id)
	}
}

func TestLedgerRemove(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 100, 0)
	l.MarkEligible(1, 0)
	l.Credit(2, 50, 0)
	l.MarkEligible(2, 0)
	if got := l.Remove(1); got != 100 {
		t.Fatalf("removed balance = %d, want 100", got)
	}
	if id, _, _ := l.Winner(); id != 2 {
		t.Fatalf("winner after remove = %d, want 2", id)
	}
	if l.Remove(99) != 0 {
		t.Fatal("removing unknown id must return 0")
	}
	if l.Size() != 1 || l.Eligible() != 1 {
		t.Fatalf("size/eligible = %d/%d", l.Size(), l.Eligible())
	}
}

func TestLedgerChargeKeepsEntry(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 400, 0)
	l.MarkEligible(1, 0)
	if got := l.Charge(1); got != 400 {
		t.Fatalf("charged %d, want 400", got)
	}
	if l.Balance(1) != 0 || !l.Contains(1) {
		t.Fatal("charge must zero balance but keep the entry")
	}
	l.Credit(2, 10, 0)
	l.MarkEligible(2, 0)
	if id, _, _ := l.Winner(); id != 2 {
		t.Fatal("charged entry must drop in the auction order")
	}
}

func TestLedgerMarkEligibleWithoutCredit(t *testing.T) {
	l := NewLedger()
	l.MarkEligible(5, time.Second)
	if l.Balance(5) != 0 || l.Eligible() != 1 {
		t.Fatal("request-before-payment entry broken")
	}
	if id, paid, ok := l.Winner(); !ok || id != 5 || paid != 0 {
		t.Fatal("zero-balance eligible entry must be able to win")
	}
}

func TestLedgerOrphans(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 10, 0)             // orphan from t=0
	l.Credit(2, 10, 5*time.Second) // orphan from t=5s
	l.Credit(3, 10, 0)             // becomes eligible
	l.MarkEligible(3, time.Second)
	got := l.Orphans(nil, 2*time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("orphans(cutoff=2s) = %v, want [1]", got)
	}
	got = l.Orphans(nil, 10*time.Second)
	if len(got) != 2 {
		t.Fatalf("orphans(cutoff=10s) = %v, want both", got)
	}
}

func TestLedgerInactive(t *testing.T) {
	l := NewLedger()
	l.MarkEligible(1, 0)
	l.MarkEligible(2, 0)
	l.Credit(2, 5, 40*time.Second)
	got := l.Inactive(nil, 30*time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("inactive = %v, want [1]", got)
	}
}

func TestLedgerNegativeCreditPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative credit did not panic")
		}
	}()
	NewLedger().Credit(1, -5, 0)
}

func TestLedgerTotals(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 100, 0)
	l.Credit(2, 200, 0)
	l.MarkEligible(1, 0)
	l.Remove(1)
	if l.TotalCredited != 300 || l.TotalRemoved != 100 {
		t.Fatalf("totals = %d/%d, want 300/100", l.TotalCredited, l.TotalRemoved)
	}
	if l.OutstandingBytes() != 200 {
		t.Fatalf("outstanding = %d, want 200", l.OutstandingBytes())
	}
}

// Property: under random credit/eligible/remove/charge sequences, the
// winner is always the max-balance eligible entry, and conservation
// holds: TotalCredited == TotalRemoved + OutstandingBytes.
func TestQuickLedgerInvariants(t *testing.T) {
	type op struct {
		Kind  uint8
		ID    uint8
		Bytes uint16
	}
	f := func(ops []op) bool {
		l := NewLedger()
		now := time.Duration(0)
		for _, o := range ops {
			id := RequestID(o.ID % 16)
			now += time.Millisecond
			switch o.Kind % 4 {
			case 0:
				l.Credit(id, int64(o.Bytes), now)
			case 1:
				l.MarkEligible(id, now)
			case 2:
				l.Remove(id)
			case 3:
				l.Charge(id)
			}
			// Invariant: winner equals brute-force max over eligible.
			wid, wpaid, ok := l.Winner()
			var bid RequestID
			var bpaid int64 = -1
			found := false
			for cid, e := range l.entries {
				if !e.eligible {
					continue
				}
				if e.paid > bpaid || (e.paid == bpaid && cid < bid) || !found {
					if !found || e.paid > bpaid || (e.paid == bpaid && cid < bid) {
						bid, bpaid = cid, e.paid
					}
					found = true
				}
			}
			if ok != found {
				return false
			}
			if ok && (wid != bid || wpaid != bpaid) {
				return false
			}
			if l.TotalCredited != l.TotalRemoved+l.OutstandingBytes() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: heap indices stay consistent (every eligible entry's
// heapIdx points back at itself).
func TestQuickLedgerHeapConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger()
		for i := 0; i < 200; i++ {
			id := RequestID(rng.Intn(24))
			switch rng.Intn(4) {
			case 0:
				l.Credit(id, int64(rng.Intn(1000)), 0)
			case 1:
				l.MarkEligible(id, 0)
			case 2:
				l.Remove(id)
			case 3:
				l.Charge(id)
			}
			for idx, e := range l.heap {
				if e.heapIdx != idx || !e.eligible {
					return false
				}
			}
			for _, e := range l.entries {
				if !e.eligible && e.heapIdx != -1 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(52))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerRunnerUp cross-checks the O(1) second-best (one of the
// heap root's children) against a brute-force scan over a randomized
// op mix — the §5 scheduler admits by it every quantum.
func TestLedgerRunnerUp(t *testing.T) {
	l := NewLedger()
	rng := uint64(777)
	next := func(n uint64) uint64 { // xorshift
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	bruteSecond := func() (RequestID, int64, bool) {
		wi, _, wok := l.Winner()
		if !wok {
			return 0, 0, false
		}
		var id RequestID
		var paid int64
		ok := false
		for cid, e := range l.entries {
			if !e.eligible || cid == wi {
				continue
			}
			if !ok || e.paid > paid || (e.paid == paid && cid < id) {
				id, paid, ok = cid, e.paid, true
			}
		}
		return id, paid, ok
	}
	for step := 0; step < 5000; step++ {
		id := RequestID(next(30))
		switch next(5) {
		case 0, 1:
			l.Credit(id, int64(next(500)), 0)
		case 2:
			l.MarkEligible(id, 0)
		case 3:
			l.Remove(id)
		case 4:
			gi, gp, gok := l.RunnerUp()
			wi, wp, wok := bruteSecond()
			if gi != wi || gp != wp || gok != wok {
				t.Fatalf("step %d: RunnerUp %d/%d/%v, brute force %d/%d/%v",
					step, gi, gp, gok, wi, wp, wok)
			}
		}
	}
}
