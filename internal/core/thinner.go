package core

import (
	"fmt"
	"slices"
	"time"

	"speakup/internal/metrics"
	"speakup/internal/trace"
)

// Clock abstracts time so the thinner runs unchanged over virtual time
// (simulation) and wall-clock time (real sockets).
type Clock interface {
	// Now returns the elapsed time since an arbitrary epoch.
	Now() time.Duration
	// After schedules fn after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
}

// Config tunes a Thinner. The zero value selects the paper's settings.
type Config struct {
	// OrphanTimeout evicts payment channels whose request message has
	// not arrived (§7.3: "the thinner accepts payment for 10 seconds,
	// at which point it times out the payment channel"). Default 10s.
	OrphanTimeout time.Duration
	// InactivityTimeout evicts contenders that stopped paying entirely
	// (e.g. their client vanished). Default 30s.
	InactivityTimeout time.Duration
	// SweepInterval is how often timeouts are checked. Default 1s.
	SweepInterval time.Duration
	// Shards sets the bid table's shard count (rounded up to a power
	// of two); 0 selects a GOMAXPROCS-scaled default. Shard count
	// tunes live-path concurrency only — auction outcomes, and hence
	// the deterministic simulation, are identical for any setting.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.OrphanTimeout == 0 {
		c.OrphanTimeout = 10 * time.Second
	}
	if c.InactivityTimeout == 0 {
		c.InactivityTimeout = 30 * time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Second
	}
	return c
}

// Stats counts thinner activity for the evaluation harness.
type Stats struct {
	Admitted       uint64 // requests handed to the server
	AdmittedDirect uint64 // of those, admitted with no auction (server free)
	Auctions       uint64 // auctions held
	Evicted        uint64 // payment channels terminated by timeout
	Shed           uint64 // arrivals refused during an origin brownout
	Brownouts      uint64 // times the origin-health ladder left HealthOK
	WastedBytes    int64  // payment bytes of evicted channels
	PaidBytes      int64  // payment bytes of auction winners (the prices)
}

// HealthState is the origin-health brownout ladder. The thinner's job
// during an origin outage is to keep its constituency intact: paying
// contenders keep their accumulated balances, admitted-but-unserved
// work is not abandoned, and new arrivals are shed fast with a
// retry-later signal instead of being stranded as waiters.
type HealthState int32

const (
	// HealthOK: the origin is answering; normal auction operation.
	HealthOK HealthState = iota
	// HealthStalled: the origin is unresponsive. Auctions pause (no
	// point admitting into a black hole), timeout evictions are held
	// (the outage is not the contenders' fault), and new arrivals are
	// shed with a retry signal.
	HealthStalled
	// HealthRecovering: the origin is back. Admissions and auctions
	// flow again, but evictions stay held for one OrphanTimeout of
	// grace so channels whose payment streams died during the outage
	// can re-establish before the sweep judges them.
	HealthRecovering
)

func (h HealthState) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthStalled:
		return "stalled"
	case HealthRecovering:
		return "recovering"
	}
	return fmt.Sprintf("HealthState(%d)", int32(h))
}

// Thinner is the virtual-auction front-end of §3.3.
//
// Wiring: the application layer calls RequestArrived, PaymentReceived,
// and ServerDone; the thinner invokes the callbacks to act. Control
// methods (RequestArrived, ServerDone, Stop, and the sweep timer) must
// be called from one goroutine (or under one lock); PaymentReceived —
// and crediting directly through the bid table's channels — is safe
// from any goroutine, which is what lets the live front sink payment
// bytes on every core while the auction stays single-threaded.
type Thinner struct {
	clock      Clock
	cfg        Config
	table      *BidTable
	busy       bool
	stats      Stats
	goingRate  int64     // winning bid of the most recent auction
	lastWinner RequestID // id of the most recent auction winner

	health    HealthState
	holdUntil time.Duration // HealthRecovering: evictions held until here
	lastSweep time.Duration // when the sweep chain last ticked (liveness probe)

	stopSweep func()
	sweepGen  uint64      // invalidates fired-but-unrun sweep timers on Reconfigure
	sweepIDs  []RequestID // reused eviction buffer; sweep is single-goroutine

	// Metrics, if non-nil, receives every admission and eviction for
	// telemetry. Set it before traffic, from the thinner's control
	// goroutine. Nil skips all recording.
	Metrics *metrics.Registry

	// Trace, if non-nil, receives sampled request-lifecycle events
	// (arrive, auction rounds, settle). Set it like Metrics: before
	// traffic, from the control goroutine. Nil — the default — skips
	// everything, including the clock reads the hooks would need.
	Trace *trace.Tracer

	// Admit delivers a request to the server; paid is the winning bid
	// in bytes (0 when the server was free — no auction needed).
	Admit func(id RequestID, paid int64)
	// Encourage tells a client to start (or keep) paying; sent when a
	// request arrives and the server is busy.
	Encourage func(id RequestID)
	// Evict terminates a payment channel: the client should stop
	// sending. Called for auction winners (stop paying, you're in) and
	// for timed-out channels. wasted is true for timeouts.
	Evict func(id RequestID, paid int64, wasted bool)
	// Shed, if set, is told about requests refused during an origin
	// brownout (HealthStalled) so the application can answer
	// retry-later instead of leaving the client waiting.
	Shed func(id RequestID)
}

// NewThinner creates a virtual-auction thinner and starts its timeout
// sweeper on the given clock.
func NewThinner(clock Clock, cfg Config) *Thinner {
	cfg = cfg.withDefaults()
	t := &Thinner{clock: clock, cfg: cfg, table: NewBidTable(cfg.Shards)}
	t.lastSweep = clock.Now()
	// Align the table's inactivity wheel with the sweep's cutoff so
	// deadline checks fire exactly when channels come due.
	t.table.SetInactivityTimeout(cfg.InactivityTimeout)
	t.scheduleSweep()
	return t
}

// Table exposes the concurrent bid table (read-mostly; used by tests,
// the live-status endpoints, and the live front's payment hot path).
func (t *Thinner) Table() *BidTable { return t.table }

// Stats returns a copy of the activity counters.
func (t *Thinner) Stats() Stats { return t.stats }

// Busy reports whether the server is occupied.
func (t *Thinner) Busy() bool { return t.busy }

// GoingRate returns the price of the most recent auction in bytes
// (§3.3: "the going rate for access is the winning bid from the most
// recent auction"). It is 0 before any auction.
func (t *Thinner) GoingRate() int64 { return t.goingRate }

// LastWinner returns the id of the most recent auction winner (0
// before any auction), read like GoingRate from the control path.
func (t *Thinner) LastWinner() RequestID { return t.lastWinner }

// Config returns the thinner's effective configuration (defaults
// applied, later Reconfigure calls included).
func (t *Thinner) Config() Config { return t.cfg }

// Reconfigure applies safe live configuration changes from the
// control goroutine: the two eviction timeouts and the sweep cadence.
// Zero fields keep their current value; negative ones are rejected. A
// Shards change is rejected — the bid table's shard count is fixed at
// construction (restart to change it) — except as a no-op restating
// the current count. The call is atomic: on error nothing changes.
//
// A shrunk InactivityTimeout takes full effect lazily: channels
// already scheduled on the inactivity wheel fire at their old
// deadline, where the sweep re-checks them against the new timeout —
// so an eviction can run late by at most the old timeout, never early.
func (t *Thinner) Reconfigure(cfg Config) error {
	next := t.cfg
	if cfg.OrphanTimeout < 0 || cfg.InactivityTimeout < 0 || cfg.SweepInterval < 0 {
		return fmt.Errorf("core: negative timeouts are invalid: %+v", cfg)
	}
	if cfg.Shards != 0 && cfg.Shards != t.table.Shards() {
		return fmt.Errorf("core: shard count is fixed at construction (have %d, asked %d); restart the thinner to resize the bid table",
			t.table.Shards(), cfg.Shards)
	}
	if cfg.OrphanTimeout != 0 {
		next.OrphanTimeout = cfg.OrphanTimeout
	}
	if cfg.InactivityTimeout != 0 {
		next.InactivityTimeout = cfg.InactivityTimeout
	}
	if cfg.SweepInterval != 0 {
		next.SweepInterval = cfg.SweepInterval
	}
	t.cfg = next
	t.table.UpdateInactivityTimeout(next.InactivityTimeout)
	if t.stopSweep != nil {
		// Restart the sweep chain at the new cadence. The old timer may
		// already have fired and be blocked on the control mutex we hold;
		// bumping the generation makes that stale callback a no-op
		// instead of a second concurrent chain.
		t.stopSweep()
		t.sweepGen++
		t.scheduleSweep()
	}
	return nil
}

// Stop cancels the timeout sweeper.
func (t *Thinner) Stop() {
	if t.stopSweep != nil {
		t.stopSweep()
		t.stopSweep = nil
	}
}

// Health returns the origin-health brownout state. Read it, like the
// other control-path accessors, from the control goroutine (or under
// the control lock).
func (t *Thinner) Health() HealthState { return t.health }

// LastSweepAge returns how long ago the timeout sweeper last ticked —
// the /healthz liveness signal for the sweep chain.
func (t *Thinner) LastSweepAge() time.Duration { return t.clock.Now() - t.lastSweep }

// SetOriginStalled moves the brownout ladder: true enters
// HealthStalled (auctions pause, arrivals shed, evictions held);
// false begins HealthRecovering — a deferred auction runs immediately
// if the origin is free, and evictions stay held for one
// OrphanTimeout of grace before the sweep returns to HealthOK.
// Call it from the control path, like RequestArrived.
func (t *Thinner) SetOriginStalled(stalled bool) {
	if stalled {
		if t.health == HealthStalled {
			return
		}
		t.health = HealthStalled
		t.stats.Brownouts++
		if t.Metrics != nil {
			t.Metrics.RecordBrownout(int32(HealthStalled))
		}
		return
	}
	if t.health != HealthStalled {
		return
	}
	t.health = HealthRecovering
	t.holdUntil = t.clock.Now() + t.cfg.OrphanTimeout
	if t.Metrics != nil {
		t.Metrics.RecordHealth(int32(HealthRecovering))
	}
	if !t.busy {
		// The auction the brownout deferred: contenders kept paying
		// into the held table; settle the backlog now.
		t.auctionNext()
	}
}

// ShedArrival records one refused-during-brownout arrival. The live
// front calls it directly (it answers the HTTP side itself);
// RequestArrived uses it for the simulator path.
func (t *Thinner) ShedArrival(id RequestID) {
	t.stats.Shed++
	if t.Metrics != nil {
		t.Metrics.RecordShed(uint64(id))
	}
	if t.Trace != nil {
		t.Trace.OnShed(uint64(id), t.clock.Now())
	}
}

// RequestArrived processes a client request message. If the server is
// free it is admitted immediately; otherwise the client becomes an
// eligible contender and is encouraged to pay. During an origin
// brownout the request is shed instead: stranding it as a waiter
// would just grow a queue the origin cannot drain.
func (t *Thinner) RequestArrived(id RequestID) {
	if t.health == HealthStalled {
		t.ShedArrival(id)
		if t.Shed != nil {
			t.Shed(id)
		}
		return
	}
	if t.Trace != nil {
		t.Trace.OnArrive(uint64(id), t.clock.Now())
	}
	if !t.busy {
		t.busy = true
		// Any pre-paid bytes count as its price.
		paid := t.table.Remove(id, ChanAdmitted)
		t.stats.Admitted++
		t.stats.AdmittedDirect++
		t.stats.PaidBytes += paid
		if t.Metrics != nil {
			t.Metrics.RecordAdmit(uint64(id), paid, false)
		}
		if t.Trace != nil {
			t.Trace.OnAdmit(uint64(id), paid, t.clock.Now(), false)
		}
		if t.Admit != nil {
			t.Admit(id, paid)
		}
		return
	}
	t.table.MarkEligible(id, t.clock.Now())
	if t.Encourage != nil {
		t.Encourage(id)
	}
}

// PaymentReceived credits bytes to id. Payment may arrive before the
// request message; such entries are orphans until the request shows up
// and are evicted after OrphanTimeout.
func (t *Thinner) PaymentReceived(id RequestID, bytes int64) {
	now := t.clock.Now()
	t.table.Credit(id, bytes, now)
	t.Trace.OnCredit(uint64(id), bytes, now, trace.TransportSim)
}

// ServerDone signals that the server finished a request. The thinner
// holds the virtual auction: the highest-paid eligible contender is
// admitted and its payment channel terminated. During an origin
// brownout the auction is deferred — contenders keep their balances
// and the settle runs when SetOriginStalled(false) reopens the floor.
func (t *Thinner) ServerDone() {
	t.busy = false
	if t.health == HealthStalled {
		return
	}
	t.auctionNext()
}

func (t *Thinner) auctionNext() {
	var start time.Duration
	if t.Metrics != nil {
		start = t.clock.Now()
	}
	id, _, ok := t.table.Winner()
	if !ok {
		return // no contenders; server idles until the next request
	}
	t.stats.Auctions++
	// Remove's balance is the authoritative price: in live mode,
	// payment chunks may land between the scan and the settle. (In the
	// single-threaded simulator the two are always equal.)
	paid := t.table.Remove(id, ChanAdmitted)
	t.busy = true
	t.goingRate = paid
	t.lastWinner = id
	t.stats.Admitted++
	t.stats.PaidBytes += paid
	if t.Metrics != nil {
		t.Metrics.RecordAdmit(uint64(id), paid, true)
	}
	if t.Trace != nil {
		now := t.clock.Now()
		t.Trace.OnAuction(uint64(id), now) // losers accrue a lost round
		t.Trace.OnAdmit(uint64(id), paid, now, true)
	}
	if t.Evict != nil {
		t.Evict(id, paid, false)
	}
	if t.Admit != nil {
		t.Admit(id, paid)
	}
	if t.Metrics != nil {
		// Full settle cost: winner selection through the callbacks that
		// release the admitted waiter.
		t.Metrics.Latency().AuctionLatency.Observe(t.clock.Now() - start)
	}
}

func (t *Thinner) scheduleSweep() {
	gen := t.sweepGen
	t.stopSweep = t.clock.After(t.cfg.SweepInterval, func() {
		if t.sweepGen != gen {
			return // Reconfigure restarted the chain after this timer fired
		}
		t.sweep()
		t.scheduleSweep()
	})
}

// sweep evicts orphaned payment channels and inactive contenders. The
// table's expiry indexes (creation-ordered orphan lists, inactivity
// timing wheel) surface only the channels actually due, so a tick
// costs O(due), not O(table). The shard collection order is
// arbitrary, so each class is sorted by id to keep eviction order —
// and everything the Evict callbacks schedule — deterministic across
// runs. The id buffer is reused tick to tick: steady-state sweeps
// allocate nothing.
func (t *Thinner) sweep() {
	now := t.clock.Now()
	t.lastSweep = now
	switch t.health {
	case HealthStalled:
		// Hold everything: the outage is the origin's fault, not the
		// contenders'. Balances and waiters survive untouched.
		return
	case HealthRecovering:
		if now < t.holdUntil {
			return // grace window: let payment streams re-establish
		}
		t.health = HealthOK
		if t.Metrics != nil {
			t.Metrics.RecordHealth(int32(HealthOK))
		}
	}
	ids := t.sweepIDs[:0]
	ids = t.table.DueOrphans(ids, now-t.cfg.OrphanTimeout)
	n := len(ids)
	slices.Sort(ids[:n])
	ids = t.table.DueInactive(ids, now, now-t.cfg.InactivityTimeout)
	slices.Sort(ids[n:])
	for _, id := range ids {
		paid := t.table.Remove(id, ChanEvicted)
		t.stats.Evicted++
		t.stats.WastedBytes += paid
		if t.Metrics != nil {
			t.Metrics.RecordEvict(uint64(id), paid)
		}
		if t.Trace != nil {
			t.Trace.OnEvict(uint64(id), paid, now)
		}
		if t.Evict != nil {
			t.Evict(id, paid, true)
		}
	}
	t.sweepIDs = ids[:0]
}
