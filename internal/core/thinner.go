package core

import (
	"fmt"
	"slices"
	"time"

	"speakup/internal/metrics"
)

// Clock abstracts time so the thinner runs unchanged over virtual time
// (simulation) and wall-clock time (real sockets).
type Clock interface {
	// Now returns the elapsed time since an arbitrary epoch.
	Now() time.Duration
	// After schedules fn after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
}

// Config tunes a Thinner. The zero value selects the paper's settings.
type Config struct {
	// OrphanTimeout evicts payment channels whose request message has
	// not arrived (§7.3: "the thinner accepts payment for 10 seconds,
	// at which point it times out the payment channel"). Default 10s.
	OrphanTimeout time.Duration
	// InactivityTimeout evicts contenders that stopped paying entirely
	// (e.g. their client vanished). Default 30s.
	InactivityTimeout time.Duration
	// SweepInterval is how often timeouts are checked. Default 1s.
	SweepInterval time.Duration
	// Shards sets the bid table's shard count (rounded up to a power
	// of two); 0 selects a GOMAXPROCS-scaled default. Shard count
	// tunes live-path concurrency only — auction outcomes, and hence
	// the deterministic simulation, are identical for any setting.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.OrphanTimeout == 0 {
		c.OrphanTimeout = 10 * time.Second
	}
	if c.InactivityTimeout == 0 {
		c.InactivityTimeout = 30 * time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Second
	}
	return c
}

// Stats counts thinner activity for the evaluation harness.
type Stats struct {
	Admitted       uint64 // requests handed to the server
	AdmittedDirect uint64 // of those, admitted with no auction (server free)
	Auctions       uint64 // auctions held
	Evicted        uint64 // payment channels terminated by timeout
	WastedBytes    int64  // payment bytes of evicted channels
	PaidBytes      int64  // payment bytes of auction winners (the prices)
}

// Thinner is the virtual-auction front-end of §3.3.
//
// Wiring: the application layer calls RequestArrived, PaymentReceived,
// and ServerDone; the thinner invokes the callbacks to act. Control
// methods (RequestArrived, ServerDone, Stop, and the sweep timer) must
// be called from one goroutine (or under one lock); PaymentReceived —
// and crediting directly through the bid table's channels — is safe
// from any goroutine, which is what lets the live front sink payment
// bytes on every core while the auction stays single-threaded.
type Thinner struct {
	clock      Clock
	cfg        Config
	table      *BidTable
	busy       bool
	stats      Stats
	goingRate  int64     // winning bid of the most recent auction
	lastWinner RequestID // id of the most recent auction winner

	stopSweep func()
	sweepGen  uint64      // invalidates fired-but-unrun sweep timers on Reconfigure
	sweepIDs  []RequestID // reused eviction buffer; sweep is single-goroutine

	// Metrics, if non-nil, receives every admission and eviction for
	// telemetry. Set it before traffic, from the thinner's control
	// goroutine. Nil skips all recording.
	Metrics *metrics.Registry

	// Admit delivers a request to the server; paid is the winning bid
	// in bytes (0 when the server was free — no auction needed).
	Admit func(id RequestID, paid int64)
	// Encourage tells a client to start (or keep) paying; sent when a
	// request arrives and the server is busy.
	Encourage func(id RequestID)
	// Evict terminates a payment channel: the client should stop
	// sending. Called for auction winners (stop paying, you're in) and
	// for timed-out channels. wasted is true for timeouts.
	Evict func(id RequestID, paid int64, wasted bool)
}

// NewThinner creates a virtual-auction thinner and starts its timeout
// sweeper on the given clock.
func NewThinner(clock Clock, cfg Config) *Thinner {
	cfg = cfg.withDefaults()
	t := &Thinner{clock: clock, cfg: cfg, table: NewBidTable(cfg.Shards)}
	// Align the table's inactivity wheel with the sweep's cutoff so
	// deadline checks fire exactly when channels come due.
	t.table.SetInactivityTimeout(cfg.InactivityTimeout)
	t.scheduleSweep()
	return t
}

// Table exposes the concurrent bid table (read-mostly; used by tests,
// the live-status endpoints, and the live front's payment hot path).
func (t *Thinner) Table() *BidTable { return t.table }

// Stats returns a copy of the activity counters.
func (t *Thinner) Stats() Stats { return t.stats }

// Busy reports whether the server is occupied.
func (t *Thinner) Busy() bool { return t.busy }

// GoingRate returns the price of the most recent auction in bytes
// (§3.3: "the going rate for access is the winning bid from the most
// recent auction"). It is 0 before any auction.
func (t *Thinner) GoingRate() int64 { return t.goingRate }

// LastWinner returns the id of the most recent auction winner (0
// before any auction), read like GoingRate from the control path.
func (t *Thinner) LastWinner() RequestID { return t.lastWinner }

// Config returns the thinner's effective configuration (defaults
// applied, later Reconfigure calls included).
func (t *Thinner) Config() Config { return t.cfg }

// Reconfigure applies safe live configuration changes from the
// control goroutine: the two eviction timeouts and the sweep cadence.
// Zero fields keep their current value; negative ones are rejected. A
// Shards change is rejected — the bid table's shard count is fixed at
// construction (restart to change it) — except as a no-op restating
// the current count. The call is atomic: on error nothing changes.
//
// A shrunk InactivityTimeout takes full effect lazily: channels
// already scheduled on the inactivity wheel fire at their old
// deadline, where the sweep re-checks them against the new timeout —
// so an eviction can run late by at most the old timeout, never early.
func (t *Thinner) Reconfigure(cfg Config) error {
	next := t.cfg
	if cfg.OrphanTimeout < 0 || cfg.InactivityTimeout < 0 || cfg.SweepInterval < 0 {
		return fmt.Errorf("core: negative timeouts are invalid: %+v", cfg)
	}
	if cfg.Shards != 0 && cfg.Shards != t.table.Shards() {
		return fmt.Errorf("core: shard count is fixed at construction (have %d, asked %d); restart the thinner to resize the bid table",
			t.table.Shards(), cfg.Shards)
	}
	if cfg.OrphanTimeout != 0 {
		next.OrphanTimeout = cfg.OrphanTimeout
	}
	if cfg.InactivityTimeout != 0 {
		next.InactivityTimeout = cfg.InactivityTimeout
	}
	if cfg.SweepInterval != 0 {
		next.SweepInterval = cfg.SweepInterval
	}
	t.cfg = next
	t.table.UpdateInactivityTimeout(next.InactivityTimeout)
	if t.stopSweep != nil {
		// Restart the sweep chain at the new cadence. The old timer may
		// already have fired and be blocked on the control mutex we hold;
		// bumping the generation makes that stale callback a no-op
		// instead of a second concurrent chain.
		t.stopSweep()
		t.sweepGen++
		t.scheduleSweep()
	}
	return nil
}

// Stop cancels the timeout sweeper.
func (t *Thinner) Stop() {
	if t.stopSweep != nil {
		t.stopSweep()
		t.stopSweep = nil
	}
}

// RequestArrived processes a client request message. If the server is
// free it is admitted immediately; otherwise the client becomes an
// eligible contender and is encouraged to pay.
func (t *Thinner) RequestArrived(id RequestID) {
	if !t.busy {
		t.busy = true
		// Any pre-paid bytes count as its price.
		paid := t.table.Remove(id, ChanAdmitted)
		t.stats.Admitted++
		t.stats.AdmittedDirect++
		t.stats.PaidBytes += paid
		if t.Metrics != nil {
			t.Metrics.RecordAdmit(uint64(id), paid, false)
		}
		if t.Admit != nil {
			t.Admit(id, paid)
		}
		return
	}
	t.table.MarkEligible(id, t.clock.Now())
	if t.Encourage != nil {
		t.Encourage(id)
	}
}

// PaymentReceived credits bytes to id. Payment may arrive before the
// request message; such entries are orphans until the request shows up
// and are evicted after OrphanTimeout.
func (t *Thinner) PaymentReceived(id RequestID, bytes int64) {
	t.table.Credit(id, bytes, t.clock.Now())
}

// ServerDone signals that the server finished a request. The thinner
// holds the virtual auction: the highest-paid eligible contender is
// admitted and its payment channel terminated.
func (t *Thinner) ServerDone() {
	t.busy = false
	id, _, ok := t.table.Winner()
	if !ok {
		return // no contenders; server idles until the next request
	}
	t.stats.Auctions++
	// Remove's balance is the authoritative price: in live mode,
	// payment chunks may land between the scan and the settle. (In the
	// single-threaded simulator the two are always equal.)
	paid := t.table.Remove(id, ChanAdmitted)
	t.busy = true
	t.goingRate = paid
	t.lastWinner = id
	t.stats.Admitted++
	t.stats.PaidBytes += paid
	if t.Metrics != nil {
		t.Metrics.RecordAdmit(uint64(id), paid, true)
	}
	if t.Evict != nil {
		t.Evict(id, paid, false)
	}
	if t.Admit != nil {
		t.Admit(id, paid)
	}
}

func (t *Thinner) scheduleSweep() {
	gen := t.sweepGen
	t.stopSweep = t.clock.After(t.cfg.SweepInterval, func() {
		if t.sweepGen != gen {
			return // Reconfigure restarted the chain after this timer fired
		}
		t.sweep()
		t.scheduleSweep()
	})
}

// sweep evicts orphaned payment channels and inactive contenders. The
// table's expiry indexes (creation-ordered orphan lists, inactivity
// timing wheel) surface only the channels actually due, so a tick
// costs O(due), not O(table). The shard collection order is
// arbitrary, so each class is sorted by id to keep eviction order —
// and everything the Evict callbacks schedule — deterministic across
// runs. The id buffer is reused tick to tick: steady-state sweeps
// allocate nothing.
func (t *Thinner) sweep() {
	now := t.clock.Now()
	ids := t.sweepIDs[:0]
	ids = t.table.DueOrphans(ids, now-t.cfg.OrphanTimeout)
	n := len(ids)
	slices.Sort(ids[:n])
	ids = t.table.DueInactive(ids, now, now-t.cfg.InactivityTimeout)
	slices.Sort(ids[n:])
	for _, id := range ids {
		paid := t.table.Remove(id, ChanEvicted)
		t.stats.Evicted++
		t.stats.WastedBytes += paid
		if t.Metrics != nil {
			t.Metrics.RecordEvict(uint64(id), paid)
		}
		if t.Evict != nil {
			t.Evict(id, paid, true)
		}
	}
	t.sweepIDs = ids[:0]
}
