package core

import (
	"testing"
	"time"
)

// harness records thinner callback activity.
type harness struct {
	clock     *fakeClock
	th        *Thinner
	admitted  []RequestID
	prices    []int64
	encourage []RequestID
	evicted   []RequestID
	wasted    map[RequestID]int64
}

func newHarness(cfg Config) *harness {
	h := &harness{clock: &fakeClock{}, wasted: make(map[RequestID]int64)}
	h.th = NewThinner(h.clock, cfg)
	h.th.Admit = func(id RequestID, paid int64) {
		h.admitted = append(h.admitted, id)
		h.prices = append(h.prices, paid)
	}
	h.th.Encourage = func(id RequestID) { h.encourage = append(h.encourage, id) }
	h.th.Evict = func(id RequestID, paid int64, wasted bool) {
		if wasted {
			h.evicted = append(h.evicted, id)
			h.wasted[id] = paid
		}
	}
	return h
}

func TestThinnerFreeServerAdmitsImmediately(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	if len(h.admitted) != 1 || h.admitted[0] != 1 {
		t.Fatalf("admitted = %v, want [1]", h.admitted)
	}
	if len(h.encourage) != 0 {
		t.Fatal("free server must not encourage")
	}
	if !h.th.Busy() {
		t.Fatal("thinner must be busy after admit")
	}
	if h.prices[0] != 0 {
		t.Fatalf("direct admit price = %d, want 0", h.prices[0])
	}
}

func TestThinnerBusyServerEncourages(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	h.th.RequestArrived(2)
	if len(h.admitted) != 1 {
		t.Fatalf("admitted = %v, want only [1]", h.admitted)
	}
	if len(h.encourage) != 1 || h.encourage[0] != 2 {
		t.Fatalf("encourage = %v, want [2]", h.encourage)
	}
	if h.th.Table().Eligible() != 1 {
		t.Fatal("request 2 must be an eligible contender")
	}
}

func TestThinnerAuctionPicksTopPayer(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1) // occupies server
	h.th.RequestArrived(2)
	h.th.RequestArrived(3)
	h.th.PaymentReceived(2, 1000)
	h.th.PaymentReceived(3, 5000)
	h.th.ServerDone()
	if len(h.admitted) != 2 || h.admitted[1] != 3 {
		t.Fatalf("admitted = %v, want [1 3]", h.admitted)
	}
	if h.prices[1] != 5000 {
		t.Fatalf("price = %d, want 5000", h.prices[1])
	}
	if h.th.GoingRate() != 5000 {
		t.Fatalf("going rate = %d", h.th.GoingRate())
	}
	// 2 remains contending with its balance intact.
	if h.th.Table().Balance(2) != 1000 {
		t.Fatal("loser's balance must persist")
	}
}

func TestThinnerServerIdlesWithNoContenders(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	h.th.ServerDone()
	if h.th.Busy() {
		t.Fatal("server must be free with no contenders")
	}
	h.th.RequestArrived(2)
	if len(h.admitted) != 2 || h.admitted[1] != 2 {
		t.Fatalf("admitted = %v, want [1 2]", h.admitted)
	}
}

func TestThinnerPaymentBeforeRequest(t *testing.T) {
	// Bytes may arrive before the request message (saturated uplink).
	h := newHarness(Config{})
	h.th.RequestArrived(1) // busy
	h.th.PaymentReceived(2, 9000)
	h.th.ServerDone()
	if h.th.Busy() {
		t.Fatal("payment-only entry must not win (not eligible)")
	}
	h.th.RequestArrived(2) // now the request arrives; server is free
	if len(h.admitted) != 2 || h.admitted[1] != 2 {
		t.Fatalf("admitted = %v", h.admitted)
	}
	// Its accumulated payment counts as the price (overpayment).
	if h.prices[1] != 9000 {
		t.Fatalf("price = %d, want 9000 (pre-paid)", h.prices[1])
	}
}

func TestThinnerOrphanEviction(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1) // busy
	h.th.PaymentReceived(42, 12345)
	h.clock.Advance(11 * time.Second) // sweeps run every 1s; orphan timeout 10s
	if len(h.evicted) != 1 || h.evicted[0] != 42 {
		t.Fatalf("evicted = %v, want [42]", h.evicted)
	}
	if h.wasted[42] != 12345 {
		t.Fatalf("wasted bytes = %d", h.wasted[42])
	}
	if h.th.Stats().WastedBytes != 12345 {
		t.Fatalf("stats wasted = %d", h.th.Stats().WastedBytes)
	}
	// A late-arriving request for the evicted id starts from scratch.
	h.th.RequestArrived(42)
	if h.th.Table().Balance(42) != 0 {
		t.Fatal("evicted balance must not survive")
	}
}

func TestThinnerOrphanSurvivesIfRequestArrives(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1) // busy
	h.th.PaymentReceived(2, 100)
	h.clock.Advance(5 * time.Second)
	h.th.RequestArrived(2) // becomes eligible before the 10s timeout
	h.clock.Advance(20 * time.Second)
	if len(h.evicted) != 0 {
		t.Fatalf("eligible entry evicted: %v", h.evicted)
	}
	if h.th.Table().Balance(2) != 100 {
		t.Fatal("balance lost")
	}
}

func TestThinnerInactiveContenderEviction(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1) // busy
	h.th.RequestArrived(2) // contender that never pays
	h.clock.Advance(31 * time.Second)
	if len(h.evicted) != 1 || h.evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", h.evicted)
	}
}

func TestThinnerActiveContenderNotEvicted(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1) // busy
	h.th.RequestArrived(2)
	// Keep paying a trickle: must never be evicted.
	for i := 0; i < 40; i++ {
		h.clock.Advance(time.Second)
		h.th.PaymentReceived(2, 10)
	}
	if len(h.evicted) != 0 {
		t.Fatalf("paying contender evicted: %v", h.evicted)
	}
}

func TestThinnerWinnerChannelTerminated(t *testing.T) {
	h := newHarness(Config{})
	var stopped []RequestID
	h.th.Evict = func(id RequestID, paid int64, wasted bool) {
		if !wasted {
			stopped = append(stopped, id)
		}
	}
	h.th.RequestArrived(1)
	h.th.RequestArrived(2)
	h.th.PaymentReceived(2, 100)
	h.th.ServerDone()
	if len(stopped) != 1 || stopped[0] != 2 {
		t.Fatalf("winner channel not terminated: %v", stopped)
	}
}

func TestThinnerStatsAccounting(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	h.th.RequestArrived(2)
	h.th.PaymentReceived(2, 500)
	h.th.ServerDone()
	s := h.th.Stats()
	if s.Admitted != 2 || s.AdmittedDirect != 1 || s.Auctions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PaidBytes != 500 {
		t.Fatalf("paid bytes = %d", s.PaidBytes)
	}
}

func TestThinnerStopCancelsSweeper(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	h.th.PaymentReceived(9, 100)
	h.th.Stop()
	h.clock.Advance(time.Minute)
	if len(h.evicted) != 0 {
		t.Fatal("sweeper ran after Stop")
	}
}

func TestThinnerGoingRateTracksLastAuction(t *testing.T) {
	h := newHarness(Config{})
	h.th.RequestArrived(1)
	h.th.RequestArrived(2)
	h.th.PaymentReceived(2, 100)
	h.th.ServerDone() // 2 wins at 100
	h.th.RequestArrived(3)
	h.th.PaymentReceived(3, 700)
	h.th.ServerDone() // 3 wins at 700
	if h.th.GoingRate() != 700 {
		t.Fatalf("going rate = %d, want 700", h.th.GoingRate())
	}
}

func TestPassThroughDropsWhenBusy(t *testing.T) {
	p := NewPassThrough()
	var admitted, dropped []RequestID
	p.Admit = func(id RequestID) { admitted = append(admitted, id) }
	p.Drop = func(id RequestID) { dropped = append(dropped, id) }
	p.RequestArrived(1)
	p.RequestArrived(2)
	p.RequestArrived(3)
	p.ServerDone()
	p.RequestArrived(4)
	if len(admitted) != 2 || admitted[0] != 1 || admitted[1] != 4 {
		t.Fatalf("admitted = %v, want [1 4]", admitted)
	}
	if len(dropped) != 2 {
		t.Fatalf("dropped = %v, want [2 3]", dropped)
	}
}

func TestRandomDropAdaptsProbability(t *testing.T) {
	clock := &fakeClock{}
	rd := NewRandomDrop(clock, RandomDropConfig{Capacity: 10, Seed: 1})
	rd.Admit = func(id RequestID) {}
	rd.Retry = func(id RequestID) {}
	// 100 requests in 1s against capacity 10 -> p should become 0.1.
	for i := 0; i < 100; i++ {
		rd.RequestArrived(RequestID(i))
		if rd.busy {
			rd.ServerDone()
		}
	}
	clock.Advance(time.Second)
	if got := rd.Prob(); got != 0.1 {
		t.Fatalf("prob = %v, want 0.1", got)
	}
	// Light load: p recovers to 1.
	rd.RequestArrived(1000)
	clock.Advance(time.Second)
	if got := rd.Prob(); got != 1 {
		t.Fatalf("prob after light interval = %v, want 1", got)
	}
}

func TestRandomDropAdmissionRateTracksCapacity(t *testing.T) {
	clock := &fakeClock{}
	rd := NewRandomDrop(clock, RandomDropConfig{Capacity: 10, Seed: 7})
	served := 0
	rd.Admit = func(id RequestID) { served++ }
	rd.Retry = func(id RequestID) {}
	// Steady overload: 200 req/s for 20 simulated seconds.
	id := RequestID(0)
	for sec := 0; sec < 20; sec++ {
		for i := 0; i < 200; i++ {
			rd.RequestArrived(id)
			id++
			if rd.busy {
				rd.ServerDone() // server keeps pace in this test
			}
		}
		clock.Advance(time.Second)
	}
	rate := float64(served) / 20
	// First interval runs at p=1; afterwards ~capacity. Allow slack.
	if rate < 8 || rate > 25 {
		t.Fatalf("admission rate = %.1f/s, want ~10/s", rate)
	}
}

func TestRandomDropQueueBound(t *testing.T) {
	clock := &fakeClock{}
	rd := NewRandomDrop(clock, RandomDropConfig{Capacity: 1000, MaxQueue: 2, Seed: 1})
	var admitted, retried int
	rd.Admit = func(id RequestID) { admitted++ }
	rd.Retry = func(id RequestID) { retried++ }
	// p=1: everything admitted until the queue fills (1 busy + 2 queued).
	for i := 0; i < 10; i++ {
		rd.RequestArrived(RequestID(i))
	}
	if admitted != 1 || retried != 7 {
		t.Fatalf("admitted=%d retried=%d, want 1/7", admitted, retried)
	}
	rd.ServerDone()
	rd.ServerDone()
	rd.ServerDone()
	if admitted != 3 {
		t.Fatalf("queued requests not drained: admitted=%d", admitted)
	}
}
