package core

import (
	"testing"
	"time"
)

// hetHarness wires a HeteroThinner to a scripted fake server.
type hetHarness struct {
	clock     *fakeClock
	th        *HeteroThinner
	starts    []RequestID
	suspends  []RequestID
	resumes   []RequestID
	aborts    []RequestID
	done      []RequestID
	donePaid  map[RequestID]int64
	encourage map[RequestID]int
}

func newHetHarness(tau time.Duration) *hetHarness {
	h := &hetHarness{
		clock:     &fakeClock{},
		donePaid:  make(map[RequestID]int64),
		encourage: make(map[RequestID]int),
	}
	h.th = NewHeteroThinner(h.clock, HeteroConfig{Tau: tau})
	h.th.Start = func(id RequestID) { h.starts = append(h.starts, id) }
	h.th.Suspend = func(id RequestID) { h.suspends = append(h.suspends, id) }
	h.th.Resume = func(id RequestID) { h.resumes = append(h.resumes, id) }
	h.th.Abort = func(id RequestID) { h.aborts = append(h.aborts, id) }
	h.th.Done = func(id RequestID, paid int64) {
		h.done = append(h.done, id)
		h.donePaid[id] = paid
	}
	h.th.Encourage = func(id RequestID) { h.encourage[id]++ }
	return h
}

func TestHeteroAdmitsTopPayerOnTick(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.th.RequestArrived(1)
	h.th.RequestArrived(2)
	h.th.PaymentReceived(1, 100)
	h.th.PaymentReceived(2, 900)
	h.clock.Advance(100 * time.Millisecond)
	if len(h.starts) != 1 || h.starts[0] != 2 {
		t.Fatalf("starts = %v, want [2]", h.starts)
	}
	// Winner's payment was charged (zeroed).
	if h.th.Ledger().Balance(2) != 0 {
		t.Fatal("winner's quantum payment not charged")
	}
	// Loser's balance persists.
	if h.th.Ledger().Balance(1) != 100 {
		t.Fatal("loser's balance lost")
	}
}

func TestHeteroActiveKeepsServerWhilePayingMore(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.th.RequestArrived(1)
	h.th.PaymentReceived(1, 500)
	h.clock.Advance(100 * time.Millisecond) // 1 admitted
	// Each quantum 1 pays 300 while challenger 2 trickles 50; the
	// challenger's accumulated bid (max 250 over 5 quanta) never
	// exceeds the active request's per-quantum payment.
	h.th.RequestArrived(2)
	for i := 0; i < 5; i++ {
		h.th.PaymentReceived(1, 300)
		h.th.PaymentReceived(2, 50)
		h.clock.Advance(100 * time.Millisecond)
	}
	if len(h.suspends) != 0 {
		t.Fatalf("active request suspended despite outbidding: %v", h.suspends)
	}
	// 2's payments accumulate across lost quanta (the paper's rule:
	// only the *winner's* payment is zeroed).
	if h.th.Ledger().Balance(2) != 250 {
		t.Fatalf("challenger balance = %d, want 250", h.th.Ledger().Balance(2))
	}
}

func TestHeteroSuspendAndResume(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.th.RequestArrived(1)
	h.th.PaymentReceived(1, 100)
	h.clock.Advance(100 * time.Millisecond) // 1 active
	h.th.RequestArrived(2)
	h.th.PaymentReceived(2, 1000) // outbids 1 (who pays nothing more)
	h.clock.Advance(100 * time.Millisecond)
	if len(h.suspends) != 1 || h.suspends[0] != 1 {
		t.Fatalf("suspends = %v, want [1]", h.suspends)
	}
	if len(h.starts) != 2 || h.starts[1] != 2 {
		t.Fatalf("starts = %v, want [1 2]", h.starts)
	}
	// Now 1 outbids 2.
	h.th.PaymentReceived(1, 2000)
	h.clock.Advance(100 * time.Millisecond)
	if len(h.suspends) != 2 || h.suspends[1] != 2 {
		t.Fatalf("suspends = %v, want [1 2]", h.suspends)
	}
	if len(h.resumes) != 1 || h.resumes[0] != 1 {
		t.Fatalf("resumes = %v, want [1] (RESUME, not Start)", h.resumes)
	}
}

func TestHeteroAbortAfterLongSuspension(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.th.RequestArrived(1)
	h.th.PaymentReceived(1, 100)
	h.clock.Advance(100 * time.Millisecond) // 1 active
	h.th.RequestArrived(2)
	h.th.PaymentReceived(2, 1000)
	h.clock.Advance(100 * time.Millisecond) // 1 suspended, 2 active
	// 2 keeps outbidding for >30s; 1 stays suspended and gets aborted.
	for i := 0; i < 310; i++ {
		h.th.PaymentReceived(2, 1000)
		h.clock.Advance(100 * time.Millisecond)
	}
	found := false
	for _, id := range h.aborts {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("request 1 not aborted after 30s suspension; aborts=%v", h.aborts)
	}
}

func TestHeteroServerDoneFreesAndAdmitsNext(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.th.RequestArrived(1)
	h.th.PaymentReceived(1, 100)
	h.clock.Advance(100 * time.Millisecond)
	h.th.RequestArrived(2)
	h.th.PaymentReceived(2, 50)
	h.th.ServerDone(1)
	if len(h.done) != 1 || h.done[0] != 1 {
		t.Fatalf("done = %v", h.done)
	}
	// ServerDone triggers an immediate tick: 2 admitted without
	// waiting for the next quantum boundary.
	if len(h.starts) != 2 || h.starts[1] != 2 {
		t.Fatalf("starts = %v, want [1 2]", h.starts)
	}
	if h.donePaid[1] != 100 {
		t.Fatalf("total charged to 1 = %d, want 100", h.donePaid[1])
	}
}

func TestHeteroChargesAccumulateAcrossQuanta(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.th.RequestArrived(1)
	h.th.PaymentReceived(1, 100)
	h.clock.Advance(100 * time.Millisecond) // charged 100
	for i := 0; i < 3; i++ {
		h.th.PaymentReceived(1, 100)
		h.clock.Advance(100 * time.Millisecond) // charged 100 each tick
	}
	h.th.ServerDone(1)
	if h.donePaid[1] != 400 {
		t.Fatalf("lifetime charge = %d, want 400", h.donePaid[1])
	}
}

func TestHeteroHardRequestsPayProportionally(t *testing.T) {
	// Two clients with equal bandwidth; client 2's request takes 5x as
	// many quanta. Over the run, each quantum of service costs one
	// auction win, so 2 pays ~5x what 1 pays in total.
	h := newHetHarness(100 * time.Millisecond)
	h.th.RequestArrived(1)
	h.th.RequestArrived(2)
	quanta1, quanta2 := 2, 10
	var served1, served2 int
	h.th.Start = func(id RequestID) {}
	h.th.Resume = func(id RequestID) {}
	// Both pay the same rate every quantum.
	for i := 0; i < 60; i++ {
		h.th.PaymentReceived(1, 100)
		h.th.PaymentReceived(2, 100)
		h.clock.Advance(100 * time.Millisecond)
		if id, ok := h.th.Active(); ok {
			switch id {
			case 1:
				served1++
				if served1 == quanta1 {
					h.th.ServerDone(1)
				}
			case 2:
				served2++
				if served2 == quanta2 {
					h.th.ServerDone(2)
				}
			}
		}
	}
	if h.donePaid[1] == 0 || h.donePaid[2] == 0 {
		t.Fatalf("both must finish: paid=%v servedQuanta=%d/%d", h.donePaid, served1, served2)
	}
	ratio := float64(h.donePaid[2]) / float64(h.donePaid[1])
	if ratio < 3 || ratio > 7 {
		t.Fatalf("hard request paid %.1fx the easy one, want ~5x", ratio)
	}
}

func TestHeteroOrphanPaymentEvicted(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.th.PaymentReceived(9, 500) // no request ever follows
	h.clock.Advance(15 * time.Second)
	if h.th.Ledger().Contains(9) {
		t.Fatal("orphan payment channel not evicted")
	}
	if h.th.Stats().WastedBytes != 500 {
		t.Fatalf("wasted = %d, want 500", h.th.Stats().WastedBytes)
	}
}

func TestHeteroIdleServerAdmitsWithinTau(t *testing.T) {
	h := newHetHarness(100 * time.Millisecond)
	h.clock.Advance(time.Second) // idle ticks with no contenders
	h.th.RequestArrived(1)
	h.clock.Advance(100 * time.Millisecond)
	if len(h.starts) != 1 {
		t.Fatalf("idle-server admission failed: %v", h.starts)
	}
}
