package core

import (
	"strings"
	"testing"
	"time"

	"speakup/internal/metrics"
)

// TestReconfigureSweepCadence checks a live SweepInterval change
// restarts the sweep chain at the new cadence without doubling it.
func TestReconfigureSweepCadence(t *testing.T) {
	clock := &fakeClock{}
	th := NewThinner(clock, Config{SweepInterval: time.Second, OrphanTimeout: 2 * time.Second})
	defer th.Stop()

	// An orphan channel due at t=2s under the original cadence.
	th.PaymentReceived(1, 100)
	clock.Advance(1500 * time.Millisecond) // one sweep at 1s: nothing due

	if err := th.Reconfigure(Config{SweepInterval: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if got := th.Config().SweepInterval; got != 100*time.Millisecond {
		t.Fatalf("SweepInterval = %v after reconfigure", got)
	}
	// The next sweeps run every 100ms; the orphan dies at the first
	// tick past 2s.
	clock.Advance(450 * time.Millisecond)
	if th.Stats().Evicted != 0 {
		t.Fatalf("evicted before the orphan deadline")
	}
	clock.Advance(200 * time.Millisecond)
	if th.Stats().Evicted != 1 {
		t.Fatalf("orphan not evicted at the new cadence: %+v", th.Stats())
	}
	// Exactly one chain is running: advancing 1s fires ~10 sweeps, and
	// each schedules exactly one successor.
	before := len(clock.timers)
	clock.Advance(time.Second)
	if after := len(clock.timers); after != before {
		t.Fatalf("sweep chain count changed: %d -> %d timers", before, after)
	}
}

// TestReconfigureRejectsShardChange checks shard resizes fail loudly
// and atomically (nothing else applies).
func TestReconfigureRejectsShardChange(t *testing.T) {
	clock := &fakeClock{}
	th := NewThinner(clock, Config{Shards: 4, SweepInterval: time.Second})
	defer th.Stop()

	err := th.Reconfigure(Config{Shards: 8, SweepInterval: time.Minute})
	if err == nil || !strings.Contains(err.Error(), "shard count is fixed") {
		t.Fatalf("shard change not rejected: %v", err)
	}
	if got := th.Config().SweepInterval; got != time.Second {
		t.Fatalf("rejected reconfigure leaked SweepInterval=%v", got)
	}
	// Restating the current count is a no-op, not an error.
	if err := th.Reconfigure(Config{Shards: th.Table().Shards()}); err != nil {
		t.Fatalf("no-op shard restatement rejected: %v", err)
	}
	if err := th.Reconfigure(Config{OrphanTimeout: -time.Second}); err == nil {
		t.Fatal("negative timeout accepted")
	}
}

// TestReconfigureInactivityTimeout checks a shrunk timeout evicts
// idle contenders without touching the wheel's granularity, late by
// at most the old timeout.
func TestReconfigureInactivityTimeout(t *testing.T) {
	clock := &fakeClock{}
	th := NewThinner(clock, Config{
		SweepInterval:     10 * time.Second,
		InactivityTimeout: time.Hour,
		OrphanTimeout:     time.Hour,
	})
	defer th.Stop()

	th.RequestArrived(1) // admitted directly: origin busy from here on
	th.PaymentReceived(2, 10)
	th.RequestArrived(2) // eligible contender, then silent
	if err := th.Reconfigure(Config{InactivityTimeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	// Old deadline was lastPay+1h; the re-check at each due fire uses
	// the sweeping timeout, so the eviction lands once the wheel
	// surfaces the channel — and the new-timeout deadline has passed.
	clock.Advance(2 * time.Hour)
	if th.Stats().Evicted != 1 {
		t.Fatalf("idle contender survived the shrunk timeout: %+v", th.Stats())
	}
}

// TestThinnerFeedsRegistry drives the thinner over virtual time — the
// simulator configuration — and checks the metrics registry tracks
// Stats exactly.
func TestThinnerFeedsRegistry(t *testing.T) {
	clock := &fakeClock{}
	reg := &metrics.Registry{}
	th := NewThinner(clock, Config{OrphanTimeout: time.Second, SweepInterval: time.Second})
	th.Metrics = reg
	defer th.Stop()

	th.RequestArrived(1) // direct admission
	th.PaymentReceived(2, 500)
	th.RequestArrived(2)
	th.PaymentReceived(3, 200)
	th.RequestArrived(3)
	th.ServerDone() // auction: 2 wins at 500
	th.PaymentReceived(4, 50)
	clock.Advance(5 * time.Second) // orphan 4 and idle 3 time out

	snap := reg.Snapshot()
	stats := th.Stats()
	if snap.Admitted != stats.Admitted || snap.AdmittedDirect != stats.AdmittedDirect ||
		snap.Auctions != stats.Auctions || snap.Evicted != stats.Evicted ||
		snap.PaidBytes != stats.PaidBytes || snap.WastedBytes != stats.WastedBytes {
		t.Fatalf("registry diverged from stats:\nsnap  %+v\nstats %+v", snap, stats)
	}
	if snap.GoingPrice != 500 || snap.LastWinner != 2 {
		t.Fatalf("auction gauges wrong: price=%d winner=%d", snap.GoingPrice, snap.LastWinner)
	}
	if th.LastWinner() != 2 {
		t.Fatalf("LastWinner = %d", th.LastWinner())
	}
	if snap.Evicted == 0 {
		t.Fatal("expected timeouts to feed the registry")
	}
}
