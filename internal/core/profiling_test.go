package core

import (
	"testing"
	"time"
)

func newProfiler(cfg ProfilerConfig) (*fakeClock, *Profiler, *[]RequestID, *[]RequestID) {
	clock := &fakeClock{}
	p := NewProfiler(clock, cfg)
	var admitted, dropped []RequestID
	p.Admit = func(id RequestID) { admitted = append(admitted, id) }
	p.Drop = func(id RequestID) { dropped = append(dropped, id) }
	return clock, p, &admitted, &dropped
}

func TestProfilerAllowsBaselineRate(t *testing.T) {
	clock, p, admitted, _ := newProfiler(ProfilerConfig{BaselineRate: 2, Slack: 3, Burst: 5})
	// One request every 500ms (the baseline) stays well within 3x slack.
	var id RequestID
	for i := 0; i < 40; i++ {
		id++
		p.RequestArrived(id, 1)
		p.ServerDone()
		clock.Advance(500 * time.Millisecond)
	}
	if len(*admitted) != 40 {
		t.Fatalf("baseline traffic blocked: admitted %d/40", len(*admitted))
	}
	if p.Blocked() != 0 {
		t.Fatalf("blocked = %d", p.Blocked())
	}
}

func TestProfilerBlocksFlooding(t *testing.T) {
	clock, p, admitted, _ := newProfiler(ProfilerConfig{BaselineRate: 2, Slack: 3, Burst: 5})
	// 40 requests/second for 10 seconds: only ~6/s (plus burst) pass.
	var id RequestID
	for tick := 0; tick < 400; tick++ {
		id++
		p.RequestArrived(id, 7)
		p.ServerDone()
		clock.Advance(25 * time.Millisecond)
	}
	passed := len(*admitted)
	if passed > 70+10 { // 6/s * 10s + burst, generous slack
		t.Fatalf("flood passed %d requests, want <= ~70", passed)
	}
	if p.Blocked() < 300 {
		t.Fatalf("blocked only %d of a 400-request flood", p.Blocked())
	}
}

func TestProfilerSmartBotFliesUnderRadar(t *testing.T) {
	clock, p, admitted, _ := newProfiler(ProfilerConfig{BaselineRate: 2, Slack: 3, Burst: 5})
	// Exactly the allowed 6/s: never blocked — profiling can only
	// limit, not block, a bot that mimics the profile (§8.1).
	var id RequestID
	for i := 0; i < 120; i++ {
		id++
		p.RequestArrived(id, 9)
		p.ServerDone()
		clock.Advance(time.Second / 6)
	}
	if p.Blocked() > 2 {
		t.Fatalf("smart bot blocked %d times", p.Blocked())
	}
	if len(*admitted) < 115 {
		t.Fatalf("smart bot admitted only %d/120", len(*admitted))
	}
}

func TestProfilerPerAddressIsolation(t *testing.T) {
	clock, p, _, _ := newProfiler(ProfilerConfig{BaselineRate: 2, Slack: 3, Burst: 2})
	// Address 1 floods and exhausts its bucket; address 2 must be
	// unaffected.
	var id RequestID
	for i := 0; i < 20; i++ {
		id++
		p.RequestArrived(id, 1)
		p.ServerDone()
	}
	blockedBefore := p.Blocked()
	if blockedBefore == 0 {
		t.Fatal("flooder not blocked")
	}
	id++
	p.RequestArrived(id, 2)
	if p.Blocked() != blockedBefore {
		t.Fatal("well-behaved address punished for another's flood")
	}
	_ = clock
}

func TestProfilerBusyDropsLikePassThrough(t *testing.T) {
	_, p, admitted, dropped := newProfiler(ProfilerConfig{BaselineRate: 100})
	p.RequestArrived(1, 1)
	p.RequestArrived(2, 2) // within profile, but server busy
	if len(*admitted) != 1 || len(*dropped) != 1 {
		t.Fatalf("admitted=%v dropped=%v", *admitted, *dropped)
	}
	p.ServerDone()
	p.RequestArrived(3, 3)
	if len(*admitted) != 2 {
		t.Fatal("server-free admission failed")
	}
}

func TestProfilerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero baseline did not panic")
		}
	}()
	NewProfiler(&fakeClock{}, ProfilerConfig{})
}

func TestProfilerBlacklistsFlooders(t *testing.T) {
	clock, p, _, _ := newProfiler(ProfilerConfig{BaselineRate: 2, Slack: 3, Burst: 5, BlacklistAfter: 10})
	var id RequestID
	for i := 0; i < 50; i++ {
		id++
		p.RequestArrived(id, 4)
		p.ServerDone()
		clock.Advance(10 * time.Millisecond)
	}
	if !p.Blacklisted(4) {
		t.Fatal("flooder not blacklisted after sustained violations")
	}
	// Everything is now dropped, even at a polite rate.
	blockedBefore := p.Blocked()
	clock.Advance(time.Second)
	id++
	p.RequestArrived(id, 4)
	if p.Blocked() != blockedBefore+1 {
		t.Fatal("blacklisted address got through")
	}
}

func TestProfilerBlacklistExpires(t *testing.T) {
	clock, p, admitted, _ := newProfiler(ProfilerConfig{
		BaselineRate: 2, Slack: 3, Burst: 5, BlacklistAfter: 5, BlacklistFor: 10 * time.Second,
	})
	var id RequestID
	for i := 0; i < 30; i++ {
		id++
		p.RequestArrived(id, 8)
		p.ServerDone()
	}
	if !p.Blacklisted(8) {
		t.Fatal("not blacklisted")
	}
	clock.Advance(11 * time.Second)
	before := len(*admitted)
	id++
	p.RequestArrived(id, 8)
	if len(*admitted) != before+1 {
		t.Fatal("reformed address still blocked after expiry")
	}
}
