package core

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file tests the BidTable's incrementally maintained indexes —
// the per-shard price heap + dirty stack + tournament behind Winner,
// and the orphan lists + inactivity wheel behind DueOrphans /
// DueInactive — against brute-force references, plus the PR 5
// performance guards: the auction path must not allocate in steady
// state and must beat the scan path by a wide margin under flood.

// refTable is the brute-force reference model: a flat map with full
// scans for every query.
type refTable struct {
	chans map[RequestID]*refChan
}

type refChan struct {
	paid     int64
	created  time.Duration
	lastPay  time.Duration
	eligible bool
}

func newRefTable() *refTable { return &refTable{chans: make(map[RequestID]*refChan)} }

func (r *refTable) channel(id RequestID, now time.Duration) *refChan {
	c := r.chans[id]
	if c == nil {
		c = &refChan{created: now, lastPay: now}
		r.chans[id] = c
	}
	return c
}

func (r *refTable) credit(id RequestID, bytes int64, now time.Duration) {
	c := r.channel(id, now)
	c.paid += bytes
	c.lastPay = now
}

func (r *refTable) markEligible(id RequestID, now time.Duration) {
	r.channel(id, now).eligible = true
}

func (r *refTable) remove(id RequestID) { delete(r.chans, id) }

func (r *refTable) winner() (id RequestID, paid int64, ok bool) {
	for cid, c := range r.chans {
		if !c.eligible {
			continue
		}
		if !ok || c.paid > paid || (c.paid == paid && cid < id) {
			id, paid, ok = cid, c.paid, true
		}
	}
	return id, paid, ok
}

func (r *refTable) dueOrphans(cutoff time.Duration) []RequestID {
	var ids []RequestID
	for cid, c := range r.chans {
		if !c.eligible && c.created <= cutoff {
			ids = append(ids, cid)
		}
	}
	slices.Sort(ids)
	return ids
}

func (r *refTable) dueInactive(cutoff time.Duration) []RequestID {
	var ids []RequestID
	for cid, c := range r.chans {
		if c.eligible && c.lastPay <= cutoff {
			ids = append(ids, cid)
		}
	}
	slices.Sort(ids)
	return ids
}

// xorshift is the tests' tiny deterministic rng.
type xorshift uint64

func (x *xorshift) next(n uint64) uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v % n
}

// TestBidTableIndexModel drives a long randomized op mix —
// Credit/MarkEligible/Remove/Winner plus full timeout sweeps — through
// the indexed table and the brute-force reference in lockstep,
// cross-checking every Winner answer (against both the model and
// WinnerByScan) and every sweep's due set.
func TestBidTableIndexModel(t *testing.T) {
	const (
		orphanT = 10 * time.Second
		inactT  = 30 * time.Second
	)
	for _, shards := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			bt := NewBidTable(shards)
			ref := newRefTable()
			rng := xorshift(0xfeedface ^ shards)
			now := time.Duration(0)
			var due []RequestID
			for step := 0; step < 20000; step++ {
				now += time.Duration(rng.next(800)) * time.Millisecond
				id := RequestID(rng.next(200))
				switch rng.next(8) {
				case 0, 1, 2:
					amt := int64(rng.next(100000))
					bt.Credit(id, amt, now)
					ref.credit(id, amt, now)
				case 3, 4:
					bt.MarkEligible(id, now)
					ref.markEligible(id, now)
				case 5:
					bt.Remove(id, ChanAdmitted)
					ref.remove(id)
				case 6:
					bi, bp, bok := bt.Winner()
					si, sp, sok := bt.WinnerByScan()
					ri, rp, rok := ref.winner()
					if bi != ri || bp != rp || bok != rok {
						t.Fatalf("step %d: Winner %d/%d/%v, reference %d/%d/%v",
							step, bi, bp, bok, ri, rp, rok)
					}
					if bi != si || bp != sp || bok != sok {
						t.Fatalf("step %d: Winner %d/%d/%v, WinnerByScan %d/%d/%v",
							step, bi, bp, bok, si, sp, sok)
					}
					if bok && rng.next(2) == 0 {
						bt.Remove(bi, ChanAdmitted)
						ref.remove(ri)
					}
				case 7:
					// A full sweep tick: the due sets must match the
					// brute-force predicates exactly, and (mirroring the
					// thinner) every due id is removed.
					due = due[:0]
					due = bt.DueOrphans(due, now-orphanT)
					n := len(due)
					slices.Sort(due[:n])
					if want := ref.dueOrphans(now - orphanT); !slices.Equal(due[:n], want) {
						t.Fatalf("step %d: DueOrphans = %v, reference %v", step, due[:n], want)
					}
					due = bt.DueInactive(due, now, now-inactT)
					slices.Sort(due[n:])
					if want := ref.dueInactive(now - inactT); !slices.Equal(due[n:], want) {
						t.Fatalf("step %d: DueInactive = %v, reference %v", step, due[n:], want)
					}
					for _, id := range due {
						bt.Remove(id, ChanEvicted)
						ref.remove(id)
					}
				}
			}
			if bt.Size() != len(ref.chans) {
				t.Fatalf("size = %d, reference %d", bt.Size(), len(ref.chans))
			}
		})
	}
}

// TestBidTableIndexModelRace races the auctioneer's structural ops
// (MarkEligible/Remove/Winner/sweep, single goroutine per the table's
// contract) against concurrent lock-free crediting from many payer
// goroutines — run under -race in CI's live-race job. At quiesce
// barriers every Winner answer is cross-checked against a brute-force
// reference scan.
func TestBidTableIndexModelRace(t *testing.T) {
	bt := NewBidTable(8)
	rng := xorshift(0xabcdef99)
	now := time.Duration(0)
	const payers = 8
	const population = 64

	var pcs [population]atomic.Pointer[PayChan]
	for i := range pcs {
		pcs[i].Store(bt.Channel(RequestID(i), 0))
	}
	var due []RequestID
	for round := 0; round < 30; round++ {
		// Mutation phase: payers hammer credits while the auctioneer
		// (this goroutine) interleaves structural ops and unchecked
		// Winner calls.
		var wg sync.WaitGroup
		var stop atomic.Bool
		for p := 0; p < payers; p++ {
			seed := xorshift(uint64(round*payers+p) + 1)
			base := now // copy: the auctioneer advances now concurrently
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					pc := pcs[seed.next(population)].Load()
					pc.Credit(int64(seed.next(4096)), base+time.Duration(i))
					if i%64 == 0 {
						runtime.Gosched()
					}
				}
			}()
		}
		for op := 0; op < 200; op++ {
			now += time.Millisecond
			id := RequestID(rng.next(population))
			switch rng.next(4) {
			case 0:
				bt.MarkEligible(id, now)
			case 1:
				bt.Remove(id, ChanAdmitted)
				pcs[id].Store(bt.Channel(id, now)) // reopen so payers stay live
			case 2:
				bt.Winner() // racing: answer unchecked, must not crash or corrupt
			case 3:
				due = bt.DueOrphans(due[:0], now-5*time.Millisecond)
				due = bt.DueInactive(due, now, now-50*time.Millisecond)
				for _, d := range due {
					bt.Remove(d, ChanEvicted)
					pcs[d].Store(bt.Channel(d, now))
				}
			}
		}
		stop.Store(true)
		wg.Wait()

		// Quiesced: the index must answer exactly like a brute-force
		// scan over the settled state.
		bi, bp, bok := bt.Winner()
		si, sp, sok := bt.WinnerByScan()
		if bi != si || bp != sp || bok != sok {
			t.Fatalf("round %d: Winner %d/%d/%v, scan %d/%d/%v", round, bi, bp, bok, si, sp, sok)
		}
	}
	if credited, out, removed := bt.TotalCredited(), bt.OutstandingBytes(), bt.TotalRemoved(); credited != out+removed {
		t.Fatalf("conservation: credited %d != outstanding %d + removed %d", credited, out, removed)
	}
}

// TestAuctionPathAllocs is PR 5's zero-alloc invariant: the
// steady-state auction path — credit a chunk, hold the auction — must
// not allocate, no matter how many channels are outstanding.
func TestAuctionPathAllocs(t *testing.T) {
	bt := NewBidTable(8)
	const pop = 4096
	pcs := make([]*PayChan, pop)
	for i := 0; i < pop; i++ {
		id := RequestID(i + 1)
		pcs[i] = bt.Channel(id, 0)
		pcs[i].Credit(int64(i), 0)
		bt.MarkEligible(id, 0)
	}
	var i int
	now := time.Duration(0)
	if avg := testing.AllocsPerRun(2000, func() {
		now += time.Microsecond
		pcs[i%pop].Credit(16384, now)
		i++
		if _, _, ok := bt.Winner(); !ok {
			t.Fatal("no winner")
		}
	}); avg != 0 {
		t.Fatalf("auction path allocates %.1f/op, want 0", avg)
	}
}

// TestSweepPathAllocs: a steady-state sweep tick over a populated
// table — wheel advance, orphan-prefix peek, nothing due — must not
// allocate when the caller reuses its id buffer (as core.Thinner
// does).
func TestSweepPathAllocs(t *testing.T) {
	bt := NewBidTable(8)
	bt.SetInactivityTimeout(time.Hour)
	const pop = 4096
	for i := 0; i < pop; i++ {
		id := RequestID(i + 1)
		bt.Credit(id, int64(i), 0)
		bt.MarkEligible(id, 0)
	}
	buf := make([]RequestID, 0, 64)
	now := time.Duration(0)
	if avg := testing.AllocsPerRun(500, func() {
		now += time.Second
		buf = bt.DueOrphans(buf[:0], now-10*time.Second)
		buf = bt.DueInactive(buf, now, now-time.Hour)
		if len(buf) != 0 {
			t.Fatalf("unexpected evictions: %v", buf)
		}
	}); avg != 0 {
		t.Fatalf("sweep path allocates %.1f/op, want 0", avg)
	}
}

// floodTable builds the flood regime: pop eligible channels with
// spread balances, plus GOMAXPROCS payer goroutines crediting
// continuously. stop() joins the payers.
func floodTable(pop int) (bt *BidTable, pcs []*PayChan, stop func()) {
	bt = NewBidTable(0)
	pcs = make([]*PayChan, pop)
	for i := 0; i < pop; i++ {
		id := RequestID(i + 1)
		pcs[i] = bt.Channel(id, 0)
		pcs[i].Credit(int64(i), 0)
		bt.MarkEligible(id, 0)
	}
	var halt atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		seed := xorshift(uint64(w)*2654435761 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			now := time.Duration(0)
			for i := 0; !halt.Load(); i++ {
				now += time.Microsecond
				pcs[seed.next(uint64(pop))].Credit(16384, now)
				if i%256 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	return bt, pcs, func() { halt.Store(true); wg.Wait() }
}

// BenchmarkWinnerUnderFlood measures winner selection against >=64k
// eligible channels with concurrent credit traffic — the PR 4 flood
// strategy's regime. "indexed" is the shipped path (dirty-stack drain
// + heaps + tournament); "scan" is the pre-PR 5 full-scan reference
// (WinnerByScan), whose cost grows linearly with the population.
func BenchmarkWinnerUnderFlood(b *testing.B) {
	for _, pop := range []int{65536} {
		for _, mode := range []string{"indexed", "scan"} {
			b.Run(fmt.Sprintf("contenders=%d/%s", pop, mode), func(b *testing.B) {
				bt, pcs, stop := floodTable(pop)
				defer stop()
				now := time.Duration(0)
				b.ReportAllocs()
				b.ResetTimer()
				// Credit a channel per iteration so every auction
				// observes fresh payment (the indexed path can never
				// answer from an untouched cache).
				for i := 0; i < b.N; i++ {
					now += time.Microsecond
					pcs[i%pop].Credit(16384, now)
					var ok bool
					if mode == "indexed" {
						_, _, ok = bt.Winner()
					} else {
						_, _, ok = bt.WinnerByScan()
					}
					if !ok {
						b.Fatal("no winner")
					}
				}
			})
		}
	}
}

// TestWinnerIndexSpeedup pins the PR 5 acceptance bar in-tree: at 64k
// eligible channels under flood, the indexed Winner must beat the scan
// path by a wide margin. The bar here is deliberately far below the
// measured gap (>=100x on dev hardware, recorded in BENCH_PR5.json) so
// CI noise cannot flake it, while a regression back to linear scanning
// still fails fast.
func TestWinnerIndexSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	const pop = 65536
	measure := func(indexed bool) time.Duration {
		bt, pcs, stop := floodTable(pop)
		defer stop()
		const calls = 200
		now := time.Duration(0)
		start := time.Now()
		for i := 0; i < calls; i++ {
			now += time.Microsecond
			pcs[i%pop].Credit(16384, now)
			if indexed {
				bt.Winner()
			} else {
				bt.WinnerByScan()
			}
		}
		return time.Since(start) / calls
	}
	scan := measure(false)
	indexed := measure(true)
	t.Logf("winner under flood at %d contenders: indexed %v/op, scan %v/op (%.0fx)",
		pop, indexed, scan, float64(scan)/float64(indexed))
	if indexed*3 > scan {
		t.Fatalf("indexed winner %v/op is not >=3x faster than scan %v/op", indexed, scan)
	}
}

// BenchmarkSweepTick measures one sweep tick (orphan prefix + wheel
// advance, nothing due) against a large population — the cost the old
// full-table Orphans/Inactive scans paid on every tick.
func BenchmarkSweepTick(b *testing.B) {
	for _, pop := range []int{65536} {
		for _, mode := range []string{"indexed", "scan"} {
			b.Run(fmt.Sprintf("contenders=%d/%s", pop, mode), func(b *testing.B) {
				bt := NewBidTable(0)
				bt.SetInactivityTimeout(time.Hour)
				// lastPay sits ~146 years out so no channel ever comes
				// due no matter how far b.N advances the clock (b.N is
				// capped at 1e9 one-second ticks ~ 31 years); the wheel
				// still pays its honest lazy re-check churn every time
				// a slot wraps around the horizon.
				const farFuture = time.Duration(1 << 62)
				for i := 0; i < pop; i++ {
					id := RequestID(i + 1)
					bt.Credit(id, int64(i), 0)
					bt.MarkEligible(id, 0)
					bt.Credit(id, 0, farFuture)
				}
				buf := make([]RequestID, 0, 64)
				now := time.Duration(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					now += time.Second
					if mode == "indexed" {
						buf = bt.DueOrphans(buf[:0], now-10*time.Second)
						buf = bt.DueInactive(buf, now, now-time.Hour)
					} else {
						buf = bt.Orphans(buf[:0], now-10*time.Second)
						buf = bt.Inactive(buf, now-time.Hour)
					}
					if len(buf) != 0 {
						b.Fatal("unexpected evictions")
					}
				}
			})
		}
	}
}

// TestSweepDrainsDirtyStack pins the retention bound: a channel that
// credited (and so sits on its shard's dirty stack) must be released
// by the next sweep tick after Remove, even if no auction ever runs —
// the origin stalling must not let settled channels accumulate.
func TestSweepDrainsDirtyStack(t *testing.T) {
	bt := NewBidTable(1)
	for i := 1; i <= 100; i++ {
		id := RequestID(i)
		bt.MarkEligible(id, 0)
		bt.Credit(id, 10, 0) // pushes onto the dirty stack
	}
	for i := 1; i <= 100; i++ {
		bt.Remove(RequestID(i), ChanEvicted)
	}
	if bt.shards[0].dirtyHead.Load() == nil {
		t.Fatal("test vacuous: nothing on the dirty stack before the sweep")
	}
	if got := bt.DueInactive(nil, time.Second, -1); len(got) != 0 {
		t.Fatalf("unexpected due channels: %v", got)
	}
	if bt.shards[0].dirtyHead.Load() != nil {
		t.Fatal("sweep left settled channels rooted on the dirty stack")
	}
}

// TestChannelCreationClampsToOrphanTail pins the live-mode ordering
// fix: a creation timestamp older than the shard's orphan-list tail
// (possible when racing transports read their clocks before the lock)
// is clamped forward so the due-prefix walk can never evict late.
func TestChannelCreationClampsToOrphanTail(t *testing.T) {
	bt := NewBidTable(1)
	bt.Channel(1, 5*time.Second)
	c := bt.Channel(2, 3*time.Second) // inverted clock reading
	if c.created != 5*time.Second {
		t.Fatalf("created = %v, want clamped to 5s", c.created)
	}
	ids := bt.DueOrphans(nil, 4*time.Second)
	if len(ids) != 0 {
		t.Fatalf("clamped channel evicted early: %v", ids)
	}
	ids = bt.DueOrphans(nil, 5*time.Second)
	slices.Sort(ids)
	if len(ids) != 2 {
		t.Fatalf("due orphans = %v, want both", ids)
	}
}
