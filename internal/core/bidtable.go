package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the BidTable: the concurrent payment ledger
// behind the live thinner's hot path.
//
// Speak-up's defining asymmetry is that the thinner must *ingest* far
// more traffic than the origin ever serves — payment bytes dwarf
// request bytes (§3, §6) — so crediting a payment chunk must cost
// almost nothing and must never serialize behind other channels.
// The BidTable therefore shards payment channels across a power-of-two
// array by RequestID hash. Each channel (PayChan) carries an atomic
// byte counter, an atomic last-activity timestamp, and an atomic state
// word; crediting is a couple of atomic stores with no locks.
//
// Winner selection and timeout eviction are driven by incrementally
// maintained indexes, so their cost is independent of how many
// channels an attack keeps open:
//
//   - Each shard keeps its eligible channels in an intrusive max-heap
//     ordered by (paid desc, id asc). Credits do not touch the heap;
//     instead the first credit after each auction pushes the channel
//     onto a lock-free intrusive Treiber stack (the shard's "dirty
//     stack"). Winner drains the stack, re-sifts only the channels
//     that actually paid since the last auction (paid only grows, so
//     a sift-up suffices), and reads the heap root. A tournament tree
//     over the shard maxima then yields the global winner: O(shards)
//     worst-case, O(log shards) per touched shard amortized — never a
//     scan over the channel population.
//   - Orphan deadlines (payment with no request) live in a per-shard
//     creation-ordered intrusive list; the sweep pops only the due
//     prefix. Inactivity deadlines live in a per-shard timing wheel:
//     each eligible channel is scheduled at (lastPay + timeout), and a
//     channel that kept paying is lazily re-scheduled when its slot
//     fires, so each channel is touched at most ~once per timeout
//     period instead of once per sweep tick. Expiry predicates are
//     evaluated exactly at check time and slots always fire at or
//     before the deadline, so eviction outcomes — and the simulator's
//     goldens — are identical to the old full-table scans.
//
// Concurrency contract:
//
//   - Credit (via a cached *PayChan) is safe from any goroutine and is
//     lock-free.
//   - Channel/Lookup/waiter registration take one shard lock; they sit
//     on the once-per-request path, not the per-chunk path.
//   - MarkEligible, Remove, Winner, DueOrphans, and DueInactive are
//     the auctioneer's structural operations: they are individually
//     consistent, but the auction policy (core.Thinner) must run them
//     from one goroutine to keep its single-threaded semantics — in
//     particular, the tournament tree is owned by the Winner caller.
//     The deterministic simulator and the live front both obey this.
//
// Shard count never affects auction outcomes — the winner is the
// global (paid desc, id asc) maximum however channels are distributed
// — so the simulator stays bit-for-bit deterministic for any setting.

// ChanState is a payment channel's lifecycle word. A channel starts
// ChanActive; settling it (auction win or eviction) publishes exactly
// one of the final states via compare-and-swap, which in-flight
// payment POSTs observe between chunks.
type ChanState int32

const (
	// ChanActive: the channel is open and accepting payment.
	ChanActive ChanState = iota
	// ChanAdmitted: the request won an auction (or was admitted
	// directly); the client should stop paying and await service.
	ChanAdmitted
	// ChanEvicted: the channel timed out (orphaned or inactive); its
	// payment is wasted and the client should stop sending.
	ChanEvicted
)

// String implements fmt.Stringer.
func (s ChanState) String() string {
	switch s {
	case ChanActive:
		return "active"
	case ChanAdmitted:
		return "admitted"
	case ChanEvicted:
		return "evicted"
	}
	return "invalid"
}

// PayChan is one request's payment channel. Transports obtain it once
// per POST (Channel) and then credit every chunk through it without
// taking any lock.
type PayChan struct {
	id      RequestID
	shard   *bidShard
	created time.Duration // clock reading at creation; immutable

	paid     atomic.Int64 // bytes credited
	lastPay  atomic.Int64 // clock reading (ns) of the last credit
	state    atomic.Int32 // ChanState word
	eligible atomic.Bool  // request message has arrived

	// Price-index state, guarded by the shard mutex.
	heapIdx int32 // position in the shard's eligible heap; -1 if absent
	hkey    int64 // paid snapshot the heap position was last fixed at

	// Dirty-stack link: lock-free, synchronized through inDirty and
	// the shard's dirtyHead (see Credit / drainDirtyLocked).
	dirtyNext *PayChan
	inDirty   atomic.Bool

	// Expiry-index links (orphan list or timing-wheel slot), guarded
	// by the shard mutex. expList identifies the containing list so
	// unlink is O(1) from any position.
	expList *expiryList
	expPrev *PayChan
	expNext *PayChan
}

// ID returns the channel's request id.
func (c *PayChan) ID() RequestID { return c.id }

// Paid returns the bytes credited so far.
func (c *PayChan) Paid() int64 { return c.paid.Load() }

// State returns the channel's lifecycle word. Payment loops poll this
// between chunks; a non-active value means stop reading and report the
// verdict.
func (c *PayChan) State() ChanState { return ChanState(c.state.Load()) }

// Credit adds bytes to the channel's balance — the payment hot path:
// a handful of atomic operations, no locks, no allocation. Credits
// arriving after the channel settled are dropped and report false.
// now is the caller's clock reading, used for inactivity accounting.
func (c *PayChan) Credit(bytes int64, now time.Duration) bool {
	if bytes < 0 {
		panic("core: negative payment")
	}
	if ChanState(c.state.Load()) != ChanActive {
		return false
	}
	c.paid.Add(bytes)
	if ChanState(c.state.Load()) != ChanActive {
		// Settled between the check and the add: roll back so the
		// caller's tally, the shard totals, and the recorded admission
		// price stay aligned. (A settle racing the handful of
		// instructions between the add and this re-check can still
		// capture or miss one in-flight chunk in the price — bounded,
		// stats-only, and unavoidable without locking the hot path.)
		c.paid.Add(-bytes)
		return false
	}
	c.lastPay.Store(int64(now))
	s := c.shard
	s.credited.Add(bytes)
	// The paid update above must precede the dirty marking (all
	// seq-cst): a drain that clears inDirty before this add completes
	// will be re-triggered by the CAS below; one that clears it after
	// already observes the new balance (see drainDirtyLocked).
	if c.eligible.Load() && c.inDirty.CompareAndSwap(false, true) {
		for {
			head := s.dirtyHead.Load()
			c.dirtyNext = head
			if s.dirtyHead.CompareAndSwap(head, c) {
				break
			}
		}
		s.touched.Store(true)
	}
	return true
}

// expiryList is an intrusive doubly-linked list of channels awaiting a
// deadline check, guarded by the owning shard's mutex.
type expiryList struct {
	head *PayChan
	tail *PayChan
}

func (l *expiryList) pushBack(c *PayChan) {
	c.expList = l
	c.expPrev = l.tail
	c.expNext = nil
	if l.tail != nil {
		l.tail.expNext = c
	} else {
		l.head = c
	}
	l.tail = c
}

func (l *expiryList) unlink(c *PayChan) {
	if c.expPrev != nil {
		c.expPrev.expNext = c.expNext
	} else {
		l.head = c.expNext
	}
	if c.expNext != nil {
		c.expNext.expPrev = c.expPrev
	} else {
		l.tail = c.expPrev
	}
	c.expList, c.expPrev, c.expNext = nil, nil, nil
}

// wheelSlots sizes each shard's inactivity timing wheel. Deadlines
// beyond the horizon are clamped to the farthest slot and lazily
// re-scheduled when it fires — firing early is safe (the predicate is
// re-checked), firing late never happens.
const (
	wheelSlots = 256
	wheelMask  = wheelSlots - 1
)

// bidShard is one slot of the table. The mutex guards the maps and the
// index structures (heap, expiry lists, wheel); balances are read and
// written through the channels' atomics. The trailing pad keeps
// adjacent shards' hot counters off a shared cache line.
type bidShard struct {
	mu      sync.RWMutex
	chans   map[RequestID]*PayChan
	waiters map[RequestID]any

	// elig is the intrusive max-heap of eligible channels ordered by
	// (hkey desc, id asc); hkey is each channel's paid snapshot from
	// its last fix, repaired from the dirty stack at auction time.
	elig []*PayChan

	// orphans holds ineligible channels in creation order; the sweep
	// pops only the due prefix.
	orphans expiryList

	// wheel holds eligible channels bucketed by inactivity-deadline
	// tick; wheelTick is the last slot index processed by DueInactive.
	wheel     [wheelSlots]expiryList
	wheelTick int64

	dirtyHead atomic.Pointer[PayChan] // credited-since-last-drain stack
	touched   atomic.Bool             // winner index changed since last Winner
	nelig     atomic.Int64            // eligible channels in this shard
	credited  atomic.Int64            // bytes ever credited to this shard
	removed   atomic.Int64            // bytes settled out of this shard

	_ [40]byte
}

// chanBefore reports whether a outranks b in the auction total order
// (paid desc, id asc), comparing heap snapshots.
func chanBefore(a, b *PayChan) bool {
	if a.hkey != b.hkey {
		return a.hkey > b.hkey
	}
	return a.id < b.id
}

func (s *bidShard) heapPush(c *PayChan) {
	c.heapIdx = int32(len(s.elig))
	s.elig = append(s.elig, c)
	s.heapUp(int(c.heapIdx))
}

func (s *bidShard) heapUp(i int) {
	h := s.elig
	c := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !chanBefore(c, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].heapIdx = int32(i)
		i = p
	}
	h[i] = c
	c.heapIdx = int32(i)
}

func (s *bidShard) heapDown(i int) {
	h := s.elig
	n := len(h)
	c := h[i]
	for {
		best := i
		if l := 2*i + 1; l < n && chanBefore(h[l], h[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && chanBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i] = h[best]
		h[i].heapIdx = int32(i)
		h[best] = c
		c.heapIdx = int32(best)
		i = best
	}
}

func (s *bidShard) heapRemove(i int) {
	h := s.elig
	n := len(h) - 1
	c := h[i]
	if i != n {
		h[i] = h[n]
		h[i].heapIdx = int32(i)
	}
	h[n] = nil
	s.elig = h[:n]
	if i < n {
		if i > 0 && chanBefore(s.elig[i], s.elig[(i-1)/2]) {
			s.heapUp(i)
		} else {
			s.heapDown(i)
		}
	}
	c.heapIdx = -1
}

// drainDirtyLocked (shard mutex held) consumes the shard's dirty stack
// and re-sifts each credited channel with its fresh balance. Balances
// only grow, so a sift-up restores the heap order. Cost is
// proportional to the channels that actually paid since the last
// drain, not to the shard population.
func (s *bidShard) drainDirtyLocked() {
	c := s.dirtyHead.Swap(nil)
	for c != nil {
		next := c.dirtyNext
		c.dirtyNext = nil
		// The release below publishes the nil link; a concurrent
		// Credit can re-push only after its CAS observes false, which
		// orders its dirtyNext write after ours.
		c.inDirty.Store(false)
		if c.heapIdx >= 0 {
			if k := c.paid.Load(); k != c.hkey {
				c.hkey = k
				s.heapUp(int(c.heapIdx))
			}
		}
		c = next
	}
}

// tourEntry is one tournament-tree node: a shard's current maximum.
type tourEntry struct {
	paid int64
	id   RequestID
	ok   bool
}

// betterEntry picks the higher-ranked of two shard maxima under the
// auction total order.
func betterEntry(a, b tourEntry) tourEntry {
	if !a.ok {
		return b
	}
	if !b.ok {
		return a
	}
	if a.paid != b.paid {
		if a.paid > b.paid {
			return a
		}
		return b
	}
	if a.id <= b.id {
		return a
	}
	return b
}

// BidTable is the concurrent payment-accounting table: sharded
// channels, lock-free crediting, and incrementally maintained winner
// and expiry indexes (see the package comment at the top of this
// file). Create with NewBidTable.
type BidTable struct {
	shards []bidShard
	mask   uint64 // len(shards)-1; len is a power of two

	// tour is the tournament tree over shard maxima: leaves at
	// [len(shards), 2*len(shards)), root at 1. Owned by the Winner
	// caller (the auctioneer goroutine); no locks.
	tour []tourEntry

	// inactT and wheelShift configure the inactivity wheel: channels
	// are scheduled at lastPay+inactT, bucketed by ticks of 2^wheelShift
	// nanoseconds. Set via SetInactivityTimeout before first use.
	inactT     time.Duration
	wheelShift uint
}

// NewBidTable creates a table with the given shard count, rounded up
// to a power of two. shards <= 0 selects a GOMAXPROCS-scaled default.
// Shard count affects only contention, never auction outcomes.
func NewBidTable(shards int) *BidTable {
	if shards <= 0 {
		shards = 4 * runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards && n < 1<<14 {
		n <<= 1
	}
	t := &BidTable{
		shards: make([]bidShard, n),
		mask:   uint64(n - 1),
		tour:   make([]tourEntry, 2*n),
	}
	for i := range t.shards {
		t.shards[i].chans = make(map[RequestID]*PayChan)
		t.shards[i].waiters = make(map[RequestID]any)
	}
	t.SetInactivityTimeout(30 * time.Second)
	return t
}

// SetInactivityTimeout tells the wheel the deadline horizon the
// sweeper will use (DueInactive's cutoff is now-timeout), picking a
// slot granularity that covers it. Must be called before any channel
// becomes eligible; NewThinner does this with its configured
// InactivityTimeout. Larger sweeper timeouts than the configured one
// only cause earlier (re-checked) fires, never late ones.
func (t *BidTable) SetInactivityTimeout(d time.Duration) {
	if d <= 0 {
		d = 30 * time.Second
	}
	for i := range t.shards {
		if t.shards[i].nelig.Load() != 0 {
			panic("core: SetInactivityTimeout after channels became eligible")
		}
	}
	shift := uint(20) // ~1ms granularity floor
	for shift < 40 && time.Duration(wheelSlots-2)<<shift < d {
		shift++
	}
	t.inactT = d
	t.wheelShift = shift
}

// UpdateInactivityTimeout changes the deadline horizon while the
// table is live (Thinner.Reconfigure). Unlike SetInactivityTimeout it
// keeps the wheel's granularity: deadlines beyond the current horizon
// clamp to the farthest slot and are re-checked when they fire, so a
// grown timeout only causes early re-checks. Call from the control
// goroutine — the same one running MarkEligible and the sweep, which
// are the only readers.
func (t *BidTable) UpdateInactivityTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	t.inactT = d
}

// Shards returns the shard count (a power of two).
func (t *BidTable) Shards() int { return len(t.shards) }

func (t *BidTable) shard(id RequestID) *bidShard {
	// Fibonacci hashing: sequential ids (the common case — clients
	// draw from a shared counter) spread uniformly across shards. The
	// well-mixed high half selects the shard.
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &t.shards[(h>>32)&t.mask]
}

// Channel returns id's payment channel, creating it (active,
// ineligible) if absent. Transports call this once per POST and then
// credit chunks through the returned channel. New channels enter the
// shard's orphan expiry list until their request message arrives.
func (t *BidTable) Channel(id RequestID, now time.Duration) *PayChan {
	s := t.shard(id)
	s.mu.RLock()
	c := s.chans[id]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	if c = s.chans[id]; c == nil {
		// Clamp the creation stamp to the orphan list's tail: callers
		// read their clock before taking the shard lock, so two racing
		// creations can arrive with inverted timestamps. Keeping the
		// list monotone preserves DueOrphans' due-prefix invariant
		// (checks fire at or before the deadline, never late) at the
		// cost of aging a channel forward by the scheduling skew. The
		// simulator's clock is monotone, so this never fires there.
		if tail := s.orphans.tail; tail != nil && tail.created > now {
			now = tail.created
		}
		c = &PayChan{id: id, shard: s, created: now, heapIdx: -1}
		c.lastPay.Store(int64(now))
		s.chans[id] = c
		s.orphans.pushBack(c)
	}
	s.mu.Unlock()
	return c
}

// Lookup returns id's channel or nil.
func (t *BidTable) Lookup(id RequestID) *PayChan {
	s := t.shard(id)
	s.mu.RLock()
	c := s.chans[id]
	s.mu.RUnlock()
	return c
}

// Credit adds bytes to id's balance, creating the channel if absent —
// the single-goroutine (simulator) entry point. Concurrent transports
// should cache the *PayChan instead and credit through it.
func (t *BidTable) Credit(id RequestID, bytes int64, now time.Duration) {
	t.Channel(id, now).Credit(bytes, now)
}

// scheduleExpiryLocked (shard mutex held) buckets c by its inactivity
// deadline. Deadlines at or before the wheel's position land in the
// current slot — which DueInactive re-examines every call — and
// deadlines beyond the horizon clamp to the farthest slot; both only
// ever make the check fire early, never late.
func (t *BidTable) scheduleExpiryLocked(s *bidShard, c *PayChan, deadline time.Duration) {
	off := int64(deadline)>>t.wheelShift - s.wheelTick
	if off < 0 {
		off = 0
	} else if off > wheelSlots-1 {
		off = wheelSlots - 1
	}
	s.wheel[(s.wheelTick+off)&wheelMask].pushBack(c)
}

// MarkEligible records that id's request message has arrived, creating
// the channel if needed. Eligible channels participate in auctions:
// the channel leaves the orphan list, enters the shard's price heap at
// its current balance, and is scheduled on the inactivity wheel.
func (t *BidTable) MarkEligible(id RequestID, now time.Duration) {
	c := t.Channel(id, now)
	s := c.shard
	s.mu.Lock()
	if !c.eligible.Load() {
		if c.expList != nil {
			c.expList.unlink(c)
		}
		// Publish eligibility BEFORE snapshotting the balance: a credit
		// racing this call either lands before the snapshot (its
		// paid.Add precedes its eligible.Load()==false, which precedes
		// this store — all seq-cst) or observes eligible and pushes
		// onto the dirty stack, so no payment can be missing from both
		// the snapshot and the next drain.
		c.eligible.Store(true)
		c.hkey = c.paid.Load()
		s.heapPush(c)
		s.nelig.Add(1)
		t.scheduleExpiryLocked(s, c, time.Duration(c.lastPay.Load())+t.inactT)
		s.touched.Store(true)
	}
	s.mu.Unlock()
}

// Remove settles id's channel: deletes it from the table and all
// indexes, publishes final as its state word (the first settle wins;
// later ones are no-ops), and returns its final balance. Unknown ids
// return 0.
func (t *BidTable) Remove(id RequestID, final ChanState) int64 {
	s := t.shard(id)
	s.mu.Lock()
	c := s.chans[id]
	if c == nil {
		s.mu.Unlock()
		return 0
	}
	delete(s.chans, id)
	if c.expList != nil {
		c.expList.unlink(c)
	}
	if c.eligible.Load() {
		c.eligible.Store(false)
		s.nelig.Add(-1)
		s.heapRemove(int(c.heapIdx))
		s.touched.Store(true)
	}
	s.mu.Unlock()
	c.state.CompareAndSwap(int32(ChanActive), int32(final))
	paid := c.paid.Load()
	s.removed.Add(paid)
	return paid
}

// refreshLeaf drains shard i's dirty stack, repairs its heap, and
// propagates the shard maximum up the tournament tree. Auctioneer
// goroutine only.
func (t *BidTable) refreshLeaf(i int) {
	s := &t.shards[i]
	s.mu.Lock()
	s.drainDirtyLocked()
	var e tourEntry
	if len(s.elig) > 0 {
		top := s.elig[0]
		e = tourEntry{paid: top.hkey, id: top.id, ok: true}
	}
	s.mu.Unlock()
	idx := len(t.shards) + i
	if t.tour[idx] == e {
		return
	}
	t.tour[idx] = e
	for idx > 1 {
		idx >>= 1
		best := betterEntry(t.tour[2*idx], t.tour[2*idx+1])
		if t.tour[idx] == best {
			break
		}
		t.tour[idx] = best
	}
}

// Winner returns the eligible channel with the highest balance (ties
// to the lowest id, like the single-threaded ledger). ok is false when
// nothing is eligible. Only shards whose index changed since the last
// call — a credit, eligibility, or removal — are touched: each drains
// its dirty stack (work proportional to the channels that paid since
// the last auction) and updates its tournament leaf in O(log shards).
// Untouched shards cost one atomic load.
func (t *BidTable) Winner() (id RequestID, paid int64, ok bool) {
	for i := range t.shards {
		s := &t.shards[i]
		if !s.touched.Load() {
			continue
		}
		// Clear before draining: a credit racing the drain re-marks
		// the shard, so its update is seen now or next auction.
		s.touched.Store(false)
		t.refreshLeaf(i)
	}
	root := t.tour[1]
	return root.id, root.paid, root.ok
}

// WinnerByScan recomputes the winner by brute force over every channel
// in every shard — the pre-index selection path, retained as the
// reference for the model tests and the BENCH_PR5 flood benchmark.
// O(population); do not call on a hot path.
func (t *BidTable) WinnerByScan() (id RequestID, paid int64, ok bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for cid, c := range s.chans {
			if !c.eligible.Load() {
				continue
			}
			p := c.paid.Load()
			if !ok || p > paid || (p == paid && cid < id) {
				id, paid, ok = cid, p, true
			}
		}
		s.mu.RUnlock()
	}
	return id, paid, ok
}

// DueOrphans appends to dst the ids of ineligible channels created at
// or before cutoff, unlinking them from the orphan index. The caller
// (the auctioneer's sweep) must Remove each returned id. Cost is
// proportional to the due channels only: shards keep orphans in
// creation order, so collection stops at the first live one.
func (t *BidTable) DueOrphans(dst []RequestID, cutoff time.Duration) []RequestID {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for c := s.orphans.head; c != nil && c.created <= cutoff; c = s.orphans.head {
			s.orphans.unlink(c)
			dst = append(dst, c.id)
		}
		s.mu.Unlock()
	}
	return dst
}

// DueInactive advances each shard's timing wheel to now and appends to
// dst the ids of eligible channels with no payment since cutoff,
// unlinking them from the wheel; channels that paid are re-scheduled
// at lastPay+(now-cutoff). The caller (the auctioneer's sweep) must
// Remove each returned id. Only slots that came due are walked, so a
// channel that keeps paying is touched about once per timeout period,
// not once per sweep tick.
func (t *BidTable) DueInactive(dst []RequestID, now, cutoff time.Duration) []RequestID {
	timeout := now - cutoff
	newTick := int64(now) >> t.wheelShift
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		// Drain the dirty stack here too, not just at auctions: the
		// stack roots every channel pushed onto it, including ones
		// Remove has since settled, and Winner may not run for a long
		// time if the origin stalls. Draining each sweep tick bounds
		// that retention at one tick's worth of dirty channels (work
		// proportional to channels that paid, never to the
		// population). The touched flag is left alone, so the next
		// Winner still refreshes this shard's tournament leaf.
		s.drainDirtyLocked()
		from := s.wheelTick
		if newTick-from >= wheelSlots {
			from = newTick - wheelSlots + 1
		}
		s.wheelTick = newTick
		// The current slot (u == newTick) is processed on every call,
		// not just on tick advance: entries parked there may have a
		// deadline later in the same quantum.
		for u := from; u <= newTick; u++ {
			slot := &s.wheel[u&wheelMask]
			c := slot.head
			slot.head, slot.tail = nil, nil
			for c != nil {
				next := c.expNext
				c.expList, c.expPrev, c.expNext = nil, nil, nil
				last := time.Duration(c.lastPay.Load())
				if last <= cutoff {
					dst = append(dst, c.id)
				} else {
					t.scheduleExpiryLocked(s, c, last+timeout)
				}
				c = next
			}
		}
		s.mu.Unlock()
	}
	return dst
}

// Orphans appends to dst the ids of ineligible channels created at or
// before cutoff (payment arrived but the request never did). Full
// scan, any cutoff — a diagnostic; the sweep hot path uses DueOrphans.
func (t *BidTable) Orphans(dst []RequestID, cutoff time.Duration) []RequestID {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for id, c := range s.chans {
			if !c.eligible.Load() && c.created <= cutoff {
				dst = append(dst, id)
			}
		}
		s.mu.RUnlock()
	}
	return dst
}

// Inactive appends to dst the ids of eligible channels with no payment
// activity since cutoff. Full scan, any cutoff — a diagnostic; the
// sweep hot path uses DueInactive.
func (t *BidTable) Inactive(dst []RequestID, cutoff time.Duration) []RequestID {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for id, c := range s.chans {
			if c.eligible.Load() && time.Duration(c.lastPay.Load()) <= cutoff {
				dst = append(dst, id)
			}
		}
		s.mu.RUnlock()
	}
	return dst
}

// Balance returns id's current balance (0 if unknown).
func (t *BidTable) Balance(id RequestID) int64 {
	if c := t.Lookup(id); c != nil {
		return c.paid.Load()
	}
	return 0
}

// Contains reports whether id has a channel (eligible or not).
func (t *BidTable) Contains(id RequestID) bool { return t.Lookup(id) != nil }

// Eligible returns the number of channels eligible to win an auction.
func (t *BidTable) Eligible() int {
	var n int64
	for i := range t.shards {
		n += t.shards[i].nelig.Load()
	}
	return int(n)
}

// Size returns the total number of channels, including orphans.
func (t *BidTable) Size() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.chans)
		s.mu.RUnlock()
	}
	return n
}

// OutstandingBytes returns the sum of all open channels' balances.
func (t *BidTable) OutstandingBytes() int64 {
	var sum int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, c := range s.chans {
			sum += c.paid.Load()
		}
		s.mu.RUnlock()
	}
	return sum
}

// TotalCredited returns the bytes ever credited across all channels.
func (t *BidTable) TotalCredited() int64 {
	var sum int64
	for i := range t.shards {
		sum += t.shards[i].credited.Load()
	}
	return sum
}

// TotalRemoved returns the bytes settled out of the table (admitted
// prices plus evicted waste).
func (t *BidTable) TotalRemoved() int64 {
	var sum int64
	for i := range t.shards {
		sum += t.shards[i].removed.Load()
	}
	return sum
}

// Waiter registration. The live front parks each held request's
// response channel here, keyed by id in the same shards as the payment
// channels, so registration contends only within a shard. Waiters have
// their own lifecycle: settling a payment channel does not disturb the
// waiter (the origin response is delivered after service completes).

// SetWaiter registers w as id's transport waiter. It reports false —
// registering nothing — if a waiter is already present, which the
// front surfaces as a duplicate-request error.
func (t *BidTable) SetWaiter(id RequestID, w any) bool {
	s := t.shard(id)
	s.mu.Lock()
	if _, dup := s.waiters[id]; dup {
		s.mu.Unlock()
		return false
	}
	s.waiters[id] = w
	s.mu.Unlock()
	return true
}

// TakeWaiter removes and returns id's waiter, or nil if none.
func (t *BidTable) TakeWaiter(id RequestID) any {
	s := t.shard(id)
	s.mu.Lock()
	w, ok := s.waiters[id]
	if ok {
		delete(s.waiters, id)
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return w
}

// DropWaiter removes id's waiter only if it is still w (the caller's
// own registration) — the disconnect/timeout path, which must not
// clobber a successor's registration.
func (t *BidTable) DropWaiter(id RequestID, w any) {
	s := t.shard(id)
	s.mu.Lock()
	if cur, ok := s.waiters[id]; ok && cur == w {
		delete(s.waiters, id)
	}
	s.mu.Unlock()
}

// Waiters returns the number of registered waiters.
func (t *BidTable) Waiters() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.waiters)
		s.mu.RUnlock()
	}
	return n
}
