package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the BidTable: the concurrent payment ledger
// behind the live thinner's hot path.
//
// Speak-up's defining asymmetry is that the thinner must *ingest* far
// more traffic than the origin ever serves — payment bytes dwarf
// request bytes (§3, §6) — so crediting a payment chunk must cost
// almost nothing and must never serialize behind other channels.
// The BidTable therefore shards payment channels across a power-of-two
// array by RequestID hash. Each channel (PayChan) carries an atomic
// byte counter, an atomic last-activity timestamp, and an atomic state
// word; crediting is a couple of atomic stores with no locks. The
// auction — which runs only when the origin frees up, i.e. rarely —
// scans per-shard lazily-maintained maxima instead of a globally
// locked structure, so the rare reader pays and the constant writers
// don't.
//
// Concurrency contract:
//
//   - Credit (via a cached *PayChan) is safe from any goroutine and is
//     lock-free.
//   - Channel/Lookup/waiter registration take one shard lock; they sit
//     on the once-per-request path, not the per-chunk path.
//   - MarkEligible, Remove, Winner, Orphans, and Inactive are the
//     auctioneer's structural operations: they are individually
//     thread-safe, but the auction policy (core.Thinner) must run them
//     from one goroutine to keep its single-threaded semantics. The
//     deterministic simulator and the live front both obey this.
//
// Shard count never affects auction outcomes — the winner is the
// global (paid desc, id asc) maximum however channels are distributed
// — so the simulator stays bit-for-bit deterministic for any setting.

// ChanState is a payment channel's lifecycle word. A channel starts
// ChanActive; settling it (auction win or eviction) publishes exactly
// one of the final states via compare-and-swap, which in-flight
// payment POSTs observe between chunks.
type ChanState int32

const (
	// ChanActive: the channel is open and accepting payment.
	ChanActive ChanState = iota
	// ChanAdmitted: the request won an auction (or was admitted
	// directly); the client should stop paying and await service.
	ChanAdmitted
	// ChanEvicted: the channel timed out (orphaned or inactive); its
	// payment is wasted and the client should stop sending.
	ChanEvicted
)

// String implements fmt.Stringer.
func (s ChanState) String() string {
	switch s {
	case ChanActive:
		return "active"
	case ChanAdmitted:
		return "admitted"
	case ChanEvicted:
		return "evicted"
	}
	return "invalid"
}

// PayChan is one request's payment channel. Transports obtain it once
// per POST (Channel) and then credit every chunk through it without
// taking any lock.
type PayChan struct {
	id      RequestID
	shard   *bidShard
	created time.Duration // clock reading at creation; immutable

	paid     atomic.Int64 // bytes credited
	lastPay  atomic.Int64 // clock reading (ns) of the last credit
	state    atomic.Int32 // ChanState word
	eligible atomic.Bool  // request message has arrived
}

// ID returns the channel's request id.
func (c *PayChan) ID() RequestID { return c.id }

// Paid returns the bytes credited so far.
func (c *PayChan) Paid() int64 { return c.paid.Load() }

// State returns the channel's lifecycle word. Payment loops poll this
// between chunks; a non-active value means stop reading and report the
// verdict.
func (c *PayChan) State() ChanState { return ChanState(c.state.Load()) }

// Credit adds bytes to the channel's balance — the payment hot path:
// a handful of atomic operations, no locks, no allocation. Credits
// arriving after the channel settled are dropped and report false.
// now is the caller's clock reading, used for inactivity accounting.
func (c *PayChan) Credit(bytes int64, now time.Duration) bool {
	if bytes < 0 {
		panic("core: negative payment")
	}
	if ChanState(c.state.Load()) != ChanActive {
		return false
	}
	c.paid.Add(bytes)
	if ChanState(c.state.Load()) != ChanActive {
		// Settled between the check and the add: roll back so the
		// caller's tally, the shard totals, and the recorded admission
		// price stay aligned. (A settle racing the handful of
		// instructions between the add and this re-check can still
		// capture or miss one in-flight chunk in the price — bounded,
		// stats-only, and unavoidable without locking the hot path.)
		c.paid.Add(-bytes)
		return false
	}
	c.lastPay.Store(int64(now))
	s := c.shard
	s.credited.Add(bytes)
	// The paid update above must precede the dirty flag (both are
	// seq-cst): a concurrent maxima scan that clears dirty before this
	// store will rescan next auction; one that clears it after will
	// already observe the new balance.
	if c.eligible.Load() {
		s.dirty.Store(true)
	}
	return true
}

// bidShard is one slot of the table. The mutex guards the maps
// (structural changes and waiter registration); balances are read and
// written through the channels' atomics. The trailing pad keeps
// adjacent shards' hot counters off a shared cache line.
type bidShard struct {
	mu      sync.RWMutex
	chans   map[RequestID]*PayChan
	waiters map[RequestID]any

	nelig    atomic.Int64 // eligible channels in this shard
	dirty    atomic.Bool  // eligible balances changed since last scan
	hintPaid atomic.Int64 // cached shard maximum (valid while !dirty)
	hintID   atomic.Uint64
	credited atomic.Int64 // bytes ever credited to this shard
	removed  atomic.Int64 // bytes settled out of this shard

	_ [40]byte
}

// BidTable is the concurrent payment-accounting table: sharded
// channels, lock-free crediting, and a lazily-maintained per-shard
// maximum for the (rare) auction scan. Create with NewBidTable.
type BidTable struct {
	shards []bidShard
	mask   uint64 // len(shards)-1; len is a power of two
}

// NewBidTable creates a table with the given shard count, rounded up
// to a power of two. shards <= 0 selects a GOMAXPROCS-scaled default.
// Shard count affects only contention, never auction outcomes.
func NewBidTable(shards int) *BidTable {
	if shards <= 0 {
		shards = 4 * runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards && n < 1<<14 {
		n <<= 1
	}
	t := &BidTable{shards: make([]bidShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].chans = make(map[RequestID]*PayChan)
		t.shards[i].waiters = make(map[RequestID]any)
	}
	return t
}

// Shards returns the shard count (a power of two).
func (t *BidTable) Shards() int { return len(t.shards) }

func (t *BidTable) shard(id RequestID) *bidShard {
	// Fibonacci hashing: sequential ids (the common case — clients
	// draw from a shared counter) spread uniformly across shards. The
	// well-mixed high half selects the shard.
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &t.shards[(h>>32)&t.mask]
}

// Channel returns id's payment channel, creating it (active,
// ineligible) if absent. Transports call this once per POST and then
// credit chunks through the returned channel.
func (t *BidTable) Channel(id RequestID, now time.Duration) *PayChan {
	s := t.shard(id)
	s.mu.RLock()
	c := s.chans[id]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	if c = s.chans[id]; c == nil {
		c = &PayChan{id: id, shard: s, created: now}
		c.lastPay.Store(int64(now))
		s.chans[id] = c
	}
	s.mu.Unlock()
	return c
}

// Lookup returns id's channel or nil.
func (t *BidTable) Lookup(id RequestID) *PayChan {
	s := t.shard(id)
	s.mu.RLock()
	c := s.chans[id]
	s.mu.RUnlock()
	return c
}

// Credit adds bytes to id's balance, creating the channel if absent —
// the single-goroutine (simulator) entry point. Concurrent transports
// should cache the *PayChan instead and credit through it.
func (t *BidTable) Credit(id RequestID, bytes int64, now time.Duration) {
	t.Channel(id, now).Credit(bytes, now)
}

// MarkEligible records that id's request message has arrived, creating
// the channel if needed. Eligible channels participate in auctions.
func (t *BidTable) MarkEligible(id RequestID, now time.Duration) {
	c := t.Channel(id, now)
	s := c.shard
	s.mu.Lock()
	if !c.eligible.Load() {
		c.eligible.Store(true)
		s.nelig.Add(1)
		s.dirty.Store(true)
	}
	s.mu.Unlock()
}

// Remove settles id's channel: deletes it from the table, publishes
// final as its state word (the first settle wins; later ones are
// no-ops), and returns its final balance. Unknown ids return 0.
func (t *BidTable) Remove(id RequestID, final ChanState) int64 {
	s := t.shard(id)
	s.mu.Lock()
	c := s.chans[id]
	if c == nil {
		s.mu.Unlock()
		return 0
	}
	delete(s.chans, id)
	if c.eligible.Load() {
		c.eligible.Store(false)
		s.nelig.Add(-1)
		s.dirty.Store(true)
	}
	s.mu.Unlock()
	c.state.CompareAndSwap(int32(ChanActive), int32(final))
	paid := c.paid.Load()
	s.removed.Add(paid)
	return paid
}

// Winner returns the eligible channel with the highest balance (ties
// to the lowest id, like the single-threaded ledger). ok is false when
// nothing is eligible. Only shards whose balances changed since the
// last call are rescanned; clean shards answer from their cached
// maximum.
func (t *BidTable) Winner() (id RequestID, paid int64, ok bool) {
	var bestID RequestID
	var bestPaid int64
	for i := range t.shards {
		s := &t.shards[i]
		if s.nelig.Load() == 0 {
			continue
		}
		if s.dirty.Load() {
			// Clear before scanning: a credit racing the scan re-marks
			// the shard, so its update is seen now or next auction.
			s.dirty.Store(false)
			s.refreshHint()
		}
		p := s.hintPaid.Load()
		if p < 0 {
			continue // raced to empty between the count check and scan
		}
		sid := RequestID(s.hintID.Load())
		if !ok || p > bestPaid || (p == bestPaid && sid < bestID) {
			bestPaid, bestID, ok = p, sid, true
		}
	}
	return bestID, bestPaid, ok
}

// refreshHint recomputes the shard's cached (paid, id) maximum over
// its eligible channels. Selection by (paid desc, id asc) is a total
// order, so map iteration order never changes the result.
func (s *bidShard) refreshHint() {
	s.mu.RLock()
	var bestID RequestID
	bestPaid := int64(-1)
	for id, c := range s.chans {
		if !c.eligible.Load() {
			continue
		}
		p := c.paid.Load()
		if p > bestPaid || (p == bestPaid && id < bestID) {
			bestPaid, bestID = p, id
		}
	}
	s.mu.RUnlock()
	s.hintPaid.Store(bestPaid)
	s.hintID.Store(uint64(bestID))
}

// Orphans appends to dst the ids of ineligible channels created at or
// before cutoff (payment arrived but the request never did).
func (t *BidTable) Orphans(dst []RequestID, cutoff time.Duration) []RequestID {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for id, c := range s.chans {
			if !c.eligible.Load() && c.created <= cutoff {
				dst = append(dst, id)
			}
		}
		s.mu.RUnlock()
	}
	return dst
}

// Inactive appends to dst the ids of eligible channels with no payment
// activity since cutoff.
func (t *BidTable) Inactive(dst []RequestID, cutoff time.Duration) []RequestID {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for id, c := range s.chans {
			if c.eligible.Load() && time.Duration(c.lastPay.Load()) <= cutoff {
				dst = append(dst, id)
			}
		}
		s.mu.RUnlock()
	}
	return dst
}

// Balance returns id's current balance (0 if unknown).
func (t *BidTable) Balance(id RequestID) int64 {
	if c := t.Lookup(id); c != nil {
		return c.paid.Load()
	}
	return 0
}

// Contains reports whether id has a channel (eligible or not).
func (t *BidTable) Contains(id RequestID) bool { return t.Lookup(id) != nil }

// Eligible returns the number of channels eligible to win an auction.
func (t *BidTable) Eligible() int {
	var n int64
	for i := range t.shards {
		n += t.shards[i].nelig.Load()
	}
	return int(n)
}

// Size returns the total number of channels, including orphans.
func (t *BidTable) Size() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.chans)
		s.mu.RUnlock()
	}
	return n
}

// OutstandingBytes returns the sum of all open channels' balances.
func (t *BidTable) OutstandingBytes() int64 {
	var sum int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, c := range s.chans {
			sum += c.paid.Load()
		}
		s.mu.RUnlock()
	}
	return sum
}

// TotalCredited returns the bytes ever credited across all channels.
func (t *BidTable) TotalCredited() int64 {
	var sum int64
	for i := range t.shards {
		sum += t.shards[i].credited.Load()
	}
	return sum
}

// TotalRemoved returns the bytes settled out of the table (admitted
// prices plus evicted waste).
func (t *BidTable) TotalRemoved() int64 {
	var sum int64
	for i := range t.shards {
		sum += t.shards[i].removed.Load()
	}
	return sum
}

// Waiter registration. The live front parks each held request's
// response channel here, keyed by id in the same shards as the payment
// channels, so registration contends only within a shard. Waiters have
// their own lifecycle: settling a payment channel does not disturb the
// waiter (the origin response is delivered after service completes).

// SetWaiter registers w as id's transport waiter. It reports false —
// registering nothing — if a waiter is already present, which the
// front surfaces as a duplicate-request error.
func (t *BidTable) SetWaiter(id RequestID, w any) bool {
	s := t.shard(id)
	s.mu.Lock()
	if _, dup := s.waiters[id]; dup {
		s.mu.Unlock()
		return false
	}
	s.waiters[id] = w
	s.mu.Unlock()
	return true
}

// TakeWaiter removes and returns id's waiter, or nil if none.
func (t *BidTable) TakeWaiter(id RequestID) any {
	s := t.shard(id)
	s.mu.Lock()
	w, ok := s.waiters[id]
	if ok {
		delete(s.waiters, id)
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return w
}

// DropWaiter removes id's waiter only if it is still w (the caller's
// own registration) — the disconnect/timeout path, which must not
// clobber a successor's registration.
func (t *BidTable) DropWaiter(id RequestID, w any) {
	s := t.shard(id)
	s.mu.Lock()
	if cur, ok := s.waiters[id]; ok && cur == w {
		delete(s.waiters, id)
	}
	s.mu.Unlock()
}

// Waiters returns the number of registered waiters.
func (t *BidTable) Waiters() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.waiters)
		s.mu.RUnlock()
	}
	return n
}
