package core

import (
	"time"
)

// Address identifies a client for detect-and-block purposes (an IP
// address, in the paper's terms). Speak-up deliberately avoids relying
// on addresses (spoofing, NATs — §2.2); the Profiler exists as the
// paper's §8.1 comparison baseline.
type Address uint64

// ProfilerConfig tunes the Profiler.
type ProfilerConfig struct {
	// BaselineRate is the learned per-address request rate from the
	// historical profile (requests/second). The paper's profiling
	// products build this during peacetime; here it is handed in,
	// which is the best case for profiling. Required.
	BaselineRate float64
	// Slack is the multiple of the baseline an address may reach
	// before being blocked (profiles must tolerate variance).
	// Default 3.
	Slack float64
	// Burst is the per-address token-bucket depth in requests.
	// Default 5.
	Burst float64
	// BlacklistAfter is how many profile violations get an address
	// blacklisted outright (detection -> blocking). Default 10.
	BlacklistAfter int
	// BlacklistFor is how long a blacklisted address stays blocked.
	// Default 60s.
	BlacklistFor time.Duration
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.Slack == 0 {
		c.Slack = 3
	}
	if c.Burst == 0 {
		c.Burst = 5
	}
	if c.BlacklistAfter == 0 {
		c.BlacklistAfter = 10
	}
	if c.BlacklistFor == 0 {
		c.BlacklistFor = 60 * time.Second
	}
	return c
}

// Profiler is a detect-and-block front-end (paper §1 taxonomy, §8.1):
// it rate-limits each client address to Slack times its learned
// baseline and otherwise behaves like the no-defense pass-through.
// Requests over the profile are blocked outright.
//
// Against primitive bots (which must send fast to be effective) this
// works very well. Against "smart" bots that stay within the profile's
// slack, it can only limit, never block — the §8.1 argument for
// currency-based schemes like speak-up.
type Profiler struct {
	clock Clock
	cfg   ProfilerConfig

	busy    bool
	buckets map[Address]*profileBucket
	stats   Stats
	blocked uint64

	// Admit delivers a request to the server.
	Admit func(id RequestID)
	// Drop rejects a request: profile violation or busy server.
	Drop func(id RequestID)
}

type profileBucket struct {
	tokens      float64
	lastFill    time.Duration
	violations  int
	blockedTill time.Duration // 0 = not blacklisted
}

// NewProfiler creates the §8.1 baseline front-end.
func NewProfiler(clock Clock, cfg ProfilerConfig) *Profiler {
	if cfg.BaselineRate <= 0 {
		panic("core: Profiler requires BaselineRate > 0")
	}
	return &Profiler{
		clock:   clock,
		cfg:     cfg.withDefaults(),
		buckets: make(map[Address]*profileBucket),
	}
}

// Stats returns a copy of the activity counters.
func (p *Profiler) Stats() Stats { return p.stats }

// Blocked returns how many requests the profile rejected.
func (p *Profiler) Blocked() uint64 { return p.blocked }

// Busy reports whether the server is occupied.
func (p *Profiler) Busy() bool { return p.busy }

// allow charges one request against from's profile bucket; repeated
// violations blacklist the address (detection -> blocking).
func (p *Profiler) allow(from Address) bool {
	now := p.clock.Now()
	b, ok := p.buckets[from]
	if !ok {
		b = &profileBucket{tokens: p.cfg.Burst, lastFill: now}
		p.buckets[from] = b
	}
	if b.blockedTill > 0 {
		if now < b.blockedTill {
			return false
		}
		b.blockedTill = 0
		b.violations = 0
		b.tokens = p.cfg.Burst
		b.lastFill = now
	}
	rate := p.cfg.BaselineRate * p.cfg.Slack
	b.tokens += (now - b.lastFill).Seconds() * rate
	if b.tokens > p.cfg.Burst {
		b.tokens = p.cfg.Burst
	}
	b.lastFill = now
	if b.tokens < 1 {
		b.violations++
		if b.violations >= p.cfg.BlacklistAfter {
			b.blockedTill = now + p.cfg.BlacklistFor
		}
		return false
	}
	b.tokens--
	return true
}

// Blacklisted reports whether from is currently blacklisted.
func (p *Profiler) Blacklisted(from Address) bool {
	b, ok := p.buckets[from]
	return ok && b.blockedTill > 0 && p.clock.Now() < b.blockedTill
}

// RequestArrived applies the profile, then the pass-through rule.
func (p *Profiler) RequestArrived(id RequestID, from Address) {
	if !p.allow(from) {
		p.blocked++
		if p.Drop != nil {
			p.Drop(id)
		}
		return
	}
	if p.busy {
		p.stats.Evicted++
		if p.Drop != nil {
			p.Drop(id)
		}
		return
	}
	p.busy = true
	p.stats.Admitted++
	p.stats.AdmittedDirect++
	if p.Admit != nil {
		p.Admit(id)
	}
}

// ServerDone signals that the server finished a request.
func (p *Profiler) ServerDone() { p.busy = false }
