// Package clients models the request-generation behaviour of the
// paper's custom Python clients (§7.1).
//
// Each client generates requests from a Poisson process of rate λ but
// never keeps more than a window w outstanding; excess arrivals wait
// in a backlog queue and are logged as service denials after 10
// seconds. Good clients use λ=2, w=1; bad clients use λ=40, w=20. The
// package is transport-independent: the Issue callback starts the
// actual protocol exchange, and the transport reports completions back
// via RequestServed or RequestFailed.
package clients

import (
	"math/rand"
	"time"

	"speakup/internal/core"
	"speakup/internal/faults"
)

// Pacer drives arrival pacing and windowing dynamically; the
// adversary strategies (internal/adversary) implement it. Gap draws
// the next inter-arrival gap (all randomness must come from rng, so
// the client stays a pure function of its seed); Window returns the
// outstanding-request cap in force at now — it may change over time
// (e.g. collapse to 0 between bursts).
type Pacer interface {
	Gap(now time.Duration, rng *rand.Rand) time.Duration
	Window(now time.Duration) int
}

// Config parameterizes one client.
type Config struct {
	// Lambda is the Poisson request rate per second. Required unless
	// Pacer is set.
	Lambda float64
	// Window is the max outstanding requests w. Required unless Pacer
	// is set.
	Window int
	// Pacer, if non-nil, replaces the fixed Poisson(Lambda)/Window
	// process with strategy-driven pacing; Lambda and Window are then
	// ignored.
	Pacer Pacer
	// BacklogTimeout denies queued requests after this long. Default 10s.
	BacklogTimeout time.Duration
	// Good labels the client for reporting (it does not change behaviour;
	// behaviour differences come from Lambda and Window).
	Good bool
	// Seed seeds this client's arrival process.
	Seed int64

	// RetryBudget, when positive, re-issues a failed request up to
	// this many times with jittered exponential backoff before
	// counting it Failed — the hardened-client behaviour fault plans
	// assume. Zero (the default) fails immediately, preserving the
	// original model and its goldens.
	RetryBudget int
	// RetryBackoff tunes the retry pacing (zero fields take the
	// faults package defaults: 200ms base, 5s cap).
	RetryBackoff faults.Backoff
	// Deadline abandons a request still outstanding after this long:
	// the Abandon callback (or, absent one, the failure path) runs,
	// freeing the window slot instead of letting a stranded transport
	// pin it forever. Zero disables deadlines.
	Deadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.BacklogTimeout == 0 {
		c.BacklogTimeout = 10 * time.Second
	}
	return c
}

// Stats counts per-client workload outcomes.
type Stats struct {
	Generated uint64 // Poisson arrivals
	Issued    uint64 // handed to the transport (fresh requests)
	Served    uint64
	Failed    uint64 // explicit failures (e.g. OFF-mode busy replies)
	Denied    uint64 // backlog timeouts (the paper's "service denial")
	Retried   uint64 // failed attempts re-issued under the retry budget
	Abandoned uint64 // attempts that hit the per-request deadline
}

// Offered returns the demand the client actually presented: requests
// that were issued or died waiting.
func (s Stats) Offered() uint64 { return s.Issued + s.Denied }

type backlogEntry struct {
	id       core.RequestID
	enqueued time.Duration
}

// Client is one workload generator.
type Client struct {
	clock core.Clock
	cfg   Config
	rng   *rand.Rand

	outstanding int
	backlog     []backlogEntry
	nextID      func() core.RequestID
	stats       Stats
	stopped     bool
	stopArrival func()
	arrivalFn   func() // built once; rescheduled every arrival

	retries   map[core.RequestID]int    // attempts burned per in-flight id (retry mode only)
	deadlines map[core.RequestID]func() // pending deadline cancels (deadline mode only)

	// Issue starts the protocol exchange for a fresh request.
	Issue func(id core.RequestID)
	// OnDenial, if set, observes backlog timeouts.
	OnDenial func(id core.RequestID)
	// Abandon, if set, is called when a request hits its Deadline so
	// the transport can tear down its half-open exchange; the
	// transport must then report RequestFailed (which may retry).
	// Without it the deadline fails the request directly.
	Abandon func(id core.RequestID)
}

// New creates a client. nextID must return process-unique request IDs
// (the scenario shares one counter across all clients). Call Start to
// begin generating.
func New(clock core.Clock, cfg Config, nextID func() core.RequestID) *Client {
	if cfg.Pacer == nil && (cfg.Lambda <= 0 || cfg.Window <= 0) {
		panic("clients: Lambda and Window must be positive")
	}
	if nextID == nil {
		panic("clients: nextID required")
	}
	c := &Client{
		clock:  clock,
		cfg:    cfg.withDefaults(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nextID: nextID,
	}
	c.arrivalFn = func() {
		c.arrival()
		c.scheduleArrival()
	}
	return c
}

// Stats returns a copy of the workload counters.
func (c *Client) Stats() Stats { return c.stats }

// Good reports the client's label.
func (c *Client) Good() bool { return c.cfg.Good }

// Outstanding returns the number of requests in flight.
func (c *Client) Outstanding() int { return c.outstanding }

// BacklogLen returns the number of queued requests.
func (c *Client) BacklogLen() int { return len(c.backlog) }

// Start begins the Poisson arrival process.
func (c *Client) Start() {
	c.scheduleArrival()
}

// Stop halts request generation (outstanding requests may still
// complete and be counted).
func (c *Client) Stop() {
	c.stopped = true
	if c.stopArrival != nil {
		c.stopArrival()
		c.stopArrival = nil
	}
}

func (c *Client) scheduleArrival() {
	if c.stopped {
		return
	}
	var gap time.Duration
	if c.cfg.Pacer != nil {
		gap = c.cfg.Pacer.Gap(c.clock.Now(), c.rng)
	} else {
		gap = time.Duration(c.rng.ExpFloat64() / c.cfg.Lambda * float64(time.Second))
	}
	c.stopArrival = c.clock.After(gap, c.arrivalFn)
}

// window returns the cap in force now (dynamic under a Pacer).
func (c *Client) window() int {
	if c.cfg.Pacer != nil {
		return c.cfg.Pacer.Window(c.clock.Now())
	}
	return c.cfg.Window
}

func (c *Client) arrival() {
	c.stats.Generated++
	c.expireBacklog()
	id := c.nextID()
	if c.outstanding < c.window() {
		c.issue(id)
		return
	}
	c.backlog = append(c.backlog, backlogEntry{id: id, enqueued: c.clock.Now()})
}

func (c *Client) issue(id core.RequestID) {
	c.outstanding++
	c.stats.Issued++
	if c.Issue != nil {
		c.Issue(id)
	}
	c.armDeadline(id)
}

func (c *Client) armDeadline(id core.RequestID) {
	if c.cfg.Deadline <= 0 {
		return
	}
	if c.deadlines == nil {
		c.deadlines = make(map[core.RequestID]func())
	}
	c.deadlines[id] = c.clock.After(c.cfg.Deadline, func() {
		delete(c.deadlines, id)
		c.stats.Abandoned++
		if c.Abandon != nil {
			c.Abandon(id) // transport tears down, then reports RequestFailed
			return
		}
		c.RequestFailed(id)
	})
}

func (c *Client) disarmDeadline(id core.RequestID) {
	if cancel, ok := c.deadlines[id]; ok {
		cancel()
		delete(c.deadlines, id)
	}
}

// expireBacklog denies queue entries older than the timeout. Entries
// are appended in arrival order, so enqueue times are monotonic and
// the expired set is always a prefix: the scan stops at the first
// still-fresh entry instead of walking the whole backlog (bad clients
// run hundreds deep, and this runs on every arrival and completion).
func (c *Client) expireBacklog() {
	cutoff := c.clock.Now() - c.cfg.BacklogTimeout
	n := 0
	for n < len(c.backlog) && c.backlog[n].enqueued <= cutoff {
		c.stats.Denied++
		if c.OnDenial != nil {
			c.OnDenial(c.backlog[n].id)
		}
		n++
	}
	if n > 0 {
		rest := copy(c.backlog, c.backlog[n:])
		c.backlog = c.backlog[:rest]
	}
}

// RequestServed reports a completed request; a backlog entry (if any)
// is issued in its place.
func (c *Client) RequestServed(id core.RequestID) {
	c.disarmDeadline(id)
	if c.retries != nil {
		delete(c.retries, id)
	}
	c.stats.Served++
	c.completeOne()
}

// RequestFailed reports an explicitly failed request attempt (an
// OFF-mode drop, a crashed origin, an abandoned deadline). With a
// retry budget the request is re-issued after a jittered exponential
// backoff — its window slot stays held, so a retrying client offers
// no more concurrency than a healthy one. Budget exhausted (or no
// budget), the request is counted Failed and the slot freed.
func (c *Client) RequestFailed(id core.RequestID) {
	c.disarmDeadline(id)
	if c.cfg.RetryBudget > 0 && !c.stopped {
		if c.retries == nil {
			c.retries = make(map[core.RequestID]int)
		}
		attempt := c.retries[id]
		if attempt < c.cfg.RetryBudget {
			c.retries[id] = attempt + 1
			c.stats.Retried++
			c.clock.After(c.cfg.RetryBackoff.Delay(attempt, c.rng), func() {
				if c.stopped {
					// The run is winding down: release the slot
					// instead of re-entering the transport.
					c.stats.Failed++
					c.completeOne()
					return
				}
				if c.Issue != nil {
					c.Issue(id)
				}
				c.armDeadline(id)
			})
			return
		}
		delete(c.retries, id)
	}
	c.stats.Failed++
	c.completeOne()
}

func (c *Client) completeOne() {
	if c.outstanding > 0 {
		c.outstanding--
	}
	c.expireBacklog()
	for c.outstanding < c.window() && len(c.backlog) > 0 {
		e := c.backlog[0]
		c.backlog = c.backlog[1:]
		c.issue(e.id)
	}
}
