package clients

import (
	"math/rand"
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/sim"
	"speakup/internal/simclock"
)

// idGen returns a process-unique id counter.
func idGen() func() core.RequestID {
	var n uint64
	return func() core.RequestID {
		n++
		return core.RequestID(n)
	}
}

func TestPoissonRateApproximatesLambda(t *testing.T) {
	loop := sim.NewLoop(1)
	issued := 0
	c := New(simclock.New(loop), Config{Lambda: 2, Window: 1000, Seed: 3}, idGen())
	c.Issue = func(id core.RequestID) { issued++ }
	c.Start()
	loop.Run(300 * time.Second)
	// Expect ~600 arrivals; Poisson sd ~24.5.
	if issued < 500 || issued > 700 {
		t.Fatalf("issued %d in 300s at lambda=2, want ~600", issued)
	}
}

func TestWindowLimitsOutstanding(t *testing.T) {
	loop := sim.NewLoop(2)
	c := New(simclock.New(loop), Config{Lambda: 40, Window: 20, Seed: 4}, idGen())
	maxOut := 0
	c.Issue = func(id core.RequestID) {
		if c.Outstanding() > maxOut {
			maxOut = c.Outstanding()
		}
	}
	c.Start()
	loop.Run(30 * time.Second) // nothing ever completes
	if maxOut != 20 {
		t.Fatalf("max outstanding = %d, want 20", maxOut)
	}
	if c.Outstanding() != 20 {
		t.Fatalf("outstanding = %d, want pinned at window", c.Outstanding())
	}
}

func TestBacklogTimeoutLogsDenials(t *testing.T) {
	loop := sim.NewLoop(3)
	c := New(simclock.New(loop), Config{Lambda: 10, Window: 1, Seed: 5}, idGen())
	denied := 0
	c.OnDenial = func(id core.RequestID) { denied++ }
	c.Issue = func(id core.RequestID) {} // request never completes
	c.Start()
	loop.Run(60 * time.Second)
	st := c.Stats()
	if st.Denied == 0 || denied == 0 {
		t.Fatal("no denials despite a stuck window")
	}
	// All generated except the issued one and the fresh (<10s) backlog
	// should be denied.
	if st.Denied+uint64(c.BacklogLen())+st.Issued != st.Generated {
		t.Fatalf("accounting broken: %+v backlog=%d", st, c.BacklogLen())
	}
	if st.Issued != 1 {
		t.Fatalf("issued = %d, want 1 (window filled)", st.Issued)
	}
}

func TestServedFreesWindowAndDrainsBacklog(t *testing.T) {
	loop := sim.NewLoop(4)
	clock := simclock.New(loop)
	c := New(clock, Config{Lambda: 5, Window: 1, Seed: 6}, idGen())
	var inFlight []core.RequestID
	c.Issue = func(id core.RequestID) { inFlight = append(inFlight, id) }
	c.Start()
	// Serve every outstanding request 100ms after issue.
	var pump func()
	pump = func() {
		loop.After(100*time.Millisecond, func() {
			// Snapshot: serving refills the window, which appends new
			// ids to inFlight mid-loop; those belong to the next batch.
			batch := inFlight
			inFlight = nil
			for _, id := range batch {
				c.RequestServed(id)
			}
			pump()
		})
	}
	pump()
	loop.Run(120 * time.Second)
	st := c.Stats()
	if st.Served < 400 {
		t.Fatalf("served = %d, want most of ~600 offered", st.Served)
	}
	if st.Denied > st.Generated/10 {
		t.Fatalf("excessive denials with a fast server: %+v", st)
	}
}

func TestFailedAlsoFreesWindow(t *testing.T) {
	loop := sim.NewLoop(5)
	c := New(simclock.New(loop), Config{Lambda: 5, Window: 1, Seed: 7}, idGen())
	c.Issue = func(id core.RequestID) {
		// Fail instantly (OFF-mode busy reply).
		loop.After(time.Millisecond, func() { c.RequestFailed(id) })
	}
	c.Start()
	loop.Run(60 * time.Second)
	st := c.Stats()
	if st.Failed == 0 {
		t.Fatal("no failures recorded")
	}
	// With instant failures the window never clogs: no denials.
	if st.Denied != 0 {
		t.Fatalf("denials with instant turnaround: %+v", st)
	}
	if st.Issued != st.Generated {
		t.Fatalf("issued %d != generated %d", st.Issued, st.Generated)
	}
}

func TestStopHaltsGeneration(t *testing.T) {
	loop := sim.NewLoop(6)
	c := New(simclock.New(loop), Config{Lambda: 100, Window: 5, Seed: 8}, idGen())
	c.Issue = func(id core.RequestID) {}
	c.Start()
	loop.Run(time.Second)
	before := c.Stats().Generated
	c.Stop()
	loop.Run(10 * time.Second)
	if c.Stats().Generated != before {
		t.Fatal("generation continued after Stop")
	}
}

func TestOfferedCountsIssuedPlusDenied(t *testing.T) {
	s := Stats{Issued: 10, Denied: 3}
	if s.Offered() != 13 {
		t.Fatalf("offered = %d", s.Offered())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		loop := sim.NewLoop(7)
		c := New(simclock.New(loop), Config{Lambda: 7, Window: 2, Seed: 9}, idGen())
		c.Issue = func(id core.RequestID) {
			loop.After(50*time.Millisecond, func() { c.RequestServed(id) })
		}
		c.Start()
		loop.Run(60 * time.Second)
		return c.Stats().Served
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	loop := sim.NewLoop(1)
	for _, bad := range []Config{{Lambda: 0, Window: 1}, {Lambda: 1, Window: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", bad)
				}
			}()
			New(simclock.New(loop), bad, idGen())
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil nextID did not panic")
			}
		}()
		New(simclock.New(loop), Config{Lambda: 1, Window: 1}, nil)
	}()
}

// pulsePacer is a minimal Pacer: fixed 100ms gaps, window 3 for the
// first half of the run and 0 afterwards.
type pulsePacer struct{ cut time.Duration }

func (p *pulsePacer) Gap(now time.Duration, _ *rand.Rand) time.Duration {
	return 100 * time.Millisecond
}

func (p *pulsePacer) Window(now time.Duration) int {
	if now >= p.cut {
		return 0
	}
	return 3
}

// TestPacerDrivesTimingAndWindow: with a Pacer set, Lambda/Window are
// ignored, gaps come from the pacer, and a collapsed window stops
// issuing (arrivals pile into the backlog) and blocks backlog refill.
func TestPacerDrivesTimingAndWindow(t *testing.T) {
	loop := sim.NewLoop(11)
	p := &pulsePacer{cut: 5 * time.Second}
	// Lambda/Window zero: must not panic with a Pacer.
	c := New(simclock.New(loop), Config{Seed: 1, Pacer: p}, idGen())
	issuedBeforeCut := 0
	c.Issue = func(id core.RequestID) {
		if loop.Now() < p.cut {
			issuedBeforeCut++
		} else {
			t.Fatalf("issued at %v, after the window collapsed", loop.Now())
		}
		// Complete instantly: windows never bind before the cut.
		loop.After(time.Millisecond, func() { c.RequestServed(id) })
	}
	c.Start()
	loop.Run(8 * time.Second)
	// 10 arrivals/s for 5s, window never binding: ~50 issues.
	if issuedBeforeCut < 45 || issuedBeforeCut > 55 {
		t.Fatalf("issued %d before the cut, want ~50 (fixed 100ms gaps)", issuedBeforeCut)
	}
	// After the cut arrivals keep landing in the backlog.
	if c.BacklogLen() == 0 {
		t.Fatal("collapsed window should leave arrivals in the backlog")
	}
}
