package clients

import (
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/sim"
	"speakup/internal/simclock"
)

// TestRetryBudgetReissues fails every attempt: each request must be
// re-issued exactly RetryBudget times with growing backoff gaps, then
// counted Failed once.
func TestRetryBudgetReissues(t *testing.T) {
	loop := sim.NewLoop(1)
	clock := simclock.New(loop)
	c := New(clock, Config{
		Lambda: 0.099, Window: 1, Seed: 1, RetryBudget: 3,
	}, idGen())
	issues := map[core.RequestID][]time.Duration{}
	c.Issue = func(id core.RequestID) {
		issues[id] = append(issues[id], clock.Now())
		// Fail instantly: the transport bounced the request.
		loop.After(0, func() { c.RequestFailed(id) })
	}
	c.Start()
	loop.Run(100 * time.Second)
	st := c.Stats()
	if st.Issued == 0 {
		t.Fatal("no requests issued")
	}
	full := 0
	var reissues uint64
	for id, at := range issues {
		// A request caught mid-cycle at the 100s cutoff has fewer
		// attempts; completed cycles must show exactly 1 fresh + 3
		// retries, never more.
		if len(at) > 4 {
			t.Fatalf("request %d issued %d times, budget allows 4", id, len(at))
		}
		if len(at) == 4 {
			full++
		}
		reissues += uint64(len(at) - 1)
		// Equal-jitter backoff: attempt n sleeps in [d/2, d) for
		// d = 200ms * 2^n (the defaults).
		base := 200 * time.Millisecond
		for n := 0; n+1 < len(at); n++ {
			gap := at[n+1] - at[n]
			d := base << n
			if gap < d/2 || gap >= d {
				t.Fatalf("request %d retry %d gap %v outside [%v, %v)", id, n, gap, d/2, d)
			}
		}
	}
	if full == 0 {
		t.Fatal("no request completed its full retry cycle")
	}
	// Retried counts at scheduling time, so with window 1 at most one
	// backoff can still be pending at the cutoff.
	if st.Retried < reissues || st.Retried > reissues+1 {
		t.Fatalf("retried = %d, observed %d re-issues", st.Retried, reissues)
	}
	if st.Failed == 0 {
		t.Fatal("exhausted budgets never counted Failed")
	}
}

// TestRetryHoldsWindowSlot pins the no-extra-concurrency rule: during
// backoff the slot stays held, so outstanding never exceeds the
// window even though requests are failing fast.
func TestRetryHoldsWindowSlot(t *testing.T) {
	loop := sim.NewLoop(2)
	c := New(simclock.New(loop), Config{
		Lambda: 50, Window: 5, Seed: 2, RetryBudget: 2,
	}, idGen())
	maxOut := 0
	c.Issue = func(id core.RequestID) {
		if c.Outstanding() > maxOut {
			maxOut = c.Outstanding()
		}
		loop.After(time.Millisecond, func() { c.RequestFailed(id) })
	}
	c.Start()
	loop.Run(30 * time.Second)
	if maxOut > 5 {
		t.Fatalf("outstanding reached %d with window 5: retries added concurrency", maxOut)
	}
	if c.Stats().Retried == 0 {
		t.Fatal("no retries exercised")
	}
}

// TestDeadlineAbandons arms a per-request deadline with no responder:
// the Abandon callback must fire at the deadline, and with no budget
// the request must fail.
func TestDeadlineAbandons(t *testing.T) {
	loop := sim.NewLoop(3)
	clock := simclock.New(loop)
	c := New(clock, Config{
		Lambda: 0.099, Window: 1, Seed: 3, Deadline: 2 * time.Second,
	}, idGen())
	var issuedAt, abandonedAt []time.Duration
	c.Issue = func(id core.RequestID) { issuedAt = append(issuedAt, clock.Now()) }
	c.Abandon = func(id core.RequestID) {
		abandonedAt = append(abandonedAt, clock.Now())
		c.RequestFailed(id) // the transport's teardown reports failure
	}
	c.Start()
	loop.Run(60 * time.Second)
	st := c.Stats()
	if st.Abandoned == 0 || st.Abandoned != uint64(len(abandonedAt)) {
		t.Fatalf("abandoned = %d (callback %d), want equal and nonzero", st.Abandoned, len(abandonedAt))
	}
	if st.Failed != st.Abandoned {
		t.Fatalf("failed = %d, want %d (every abandon fails without a budget)", st.Failed, st.Abandoned)
	}
	for i := range abandonedAt {
		if got := abandonedAt[i] - issuedAt[i]; got != 2*time.Second {
			t.Fatalf("abandon %d fired %v after issue, want 2s", i, got)
		}
	}
}

// TestDeadlineDisarmedOnService serves every request quickly: the
// armed deadlines must never fire.
func TestDeadlineDisarmedOnService(t *testing.T) {
	loop := sim.NewLoop(4)
	c := New(simclock.New(loop), Config{
		Lambda: 2, Window: 4, Seed: 4, Deadline: time.Second,
	}, idGen())
	c.Abandon = func(id core.RequestID) { t.Fatalf("deadline fired for served request %d", id) }
	c.Issue = func(id core.RequestID) {
		loop.After(100*time.Millisecond, func() { c.RequestServed(id) })
	}
	c.Start()
	loop.Run(60 * time.Second)
	st := c.Stats()
	if st.Abandoned != 0 {
		t.Fatalf("abandoned = %d, want 0", st.Abandoned)
	}
	if st.Served == 0 {
		t.Fatal("nothing served")
	}
}

// TestDeadlineRearmsPerAttempt combines deadline and retry: each
// attempt gets its own full deadline window.
func TestDeadlineRearmsPerAttempt(t *testing.T) {
	loop := sim.NewLoop(5)
	clock := simclock.New(loop)
	c := New(clock, Config{
		Lambda: 0.0099, Window: 1, Seed: 5,
		Deadline: time.Second, RetryBudget: 2,
	}, idGen())
	attempts := map[core.RequestID]int{}
	c.Issue = func(id core.RequestID) { attempts[id]++ }
	c.Abandon = func(id core.RequestID) { c.RequestFailed(id) }
	c.Start()
	loop.Run(200 * time.Second)
	st := c.Stats()
	if st.Issued == 0 {
		t.Fatal("no requests issued")
	}
	if st.Abandoned != st.Issued+st.Retried {
		t.Fatalf("abandoned = %d, want one per attempt (%d)", st.Abandoned, st.Issued+st.Retried)
	}
	for id, n := range attempts {
		if n != 3 {
			t.Fatalf("request %d attempted %d times, want 3", id, n)
		}
	}
}
