// Package auction models the abstract bidding game behind speak-up's
// virtual auction and checks the robustness bound of Theorem 3.1.
//
// The game (paper §3.4): requests are served at (roughly) regular
// intervals; between consecutive auctions a distinguished good client X
// delivers payment at a fixed rate, while an adversary — who may time
// and divide its bytes arbitrarily, bank bandwidth, and always has a
// contending request — tries to win as many auctions as possible. The
// theorem says X still wins at least an ε/2 fraction of auctions,
// where ε is X's fraction of all bytes the thinner received. With
// service intervals fluctuating within ±δ, the bound degrades to
// (1−2δ)·ε/2.
//
// The simulation here is deliberately pessimistic for X: ties go to
// the adversary, and the adversary sees X's balance before deciding
// how much banked payment to reveal.
package auction

import (
	"math/rand"
)

// Strategy decides, before each auction, how much of the adversary's
// banked bytes to move onto its contending request. Implementations
// see the full state (round number, bank, X's current balance) —
// strictly more information than a real attacker has.
type Strategy interface {
	// Bid returns the bytes to transfer from bank to the adversary's
	// champion request for this auction. Returns in [0, bank].
	Bid(round int, bank, xBalance float64) float64
	// Name labels the strategy in reports.
	Name() string
}

// Result summarizes one simulated game.
type Result struct {
	Rounds        int
	XWins         int
	XDelivered    float64 // bytes X delivered
	AdvDelivered  float64 // bytes the adversary revealed to the thinner
	Epsilon       float64 // XDelivered / (XDelivered + AdvDelivered)
	XServiceShare float64 // XWins / Rounds
	Bound         float64 // the theorem's floor: (1-2δ)·ε/2
}

// Holds reports whether the observed share meets the theorem bound,
// with slack for integer-round effects on short games.
func (r Result) Holds() bool {
	slack := 1.0 / float64(r.Rounds+1)
	return r.XServiceShare >= r.Bound-slack
}

// Config parameterizes a game.
type Config struct {
	Rounds  int     // number of auctions
	XRate   float64 // X's delivery per unit time
	AdvRate float64 // adversary's budget accrual per unit time
	// Delta is the service-interval jitter δ in [0, 1): interval
	// lengths are drawn uniformly from [1-δ, 1+δ].
	Delta float64
	// Seed drives interval jitter and randomized strategies.
	Seed int64
}

// Run plays the game and returns the result.
func Run(cfg Config, s Strategy) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		xBal, advBal, bank       float64
		xDelivered, advDelivered float64
		xWins                    int
	)
	for round := 0; round < cfg.Rounds; round++ {
		dt := 1.0
		if cfg.Delta > 0 {
			dt = 1 - cfg.Delta + 2*cfg.Delta*rng.Float64()
		}
		xBal += cfg.XRate * dt
		xDelivered += cfg.XRate * dt
		bank += cfg.AdvRate * dt

		bid := s.Bid(round, bank, xBal)
		if bid < 0 {
			bid = 0
		}
		if bid > bank {
			bid = bank
		}
		bank -= bid
		advBal += bid
		advDelivered += bid

		// Auction: ties go to the adversary (pessimistic for X).
		if xBal > advBal {
			xWins++
			xBal = 0
		} else {
			advBal = 0
		}
	}
	total := xDelivered + advDelivered
	eps := 0.0
	if total > 0 {
		eps = xDelivered / total
	}
	return Result{
		Rounds:        cfg.Rounds,
		XWins:         xWins,
		XDelivered:    xDelivered,
		AdvDelivered:  advDelivered,
		Epsilon:       eps,
		XServiceShare: float64(xWins) / float64(max(cfg.Rounds, 1)),
		Bound:         (1 - 2*cfg.Delta) * eps / 2,
	}
}

// --- Strategies ---

// Constant reveals its accrual every round (a naive flooder).
type Constant struct{}

// Bid implements Strategy.
func (Constant) Bid(_ int, bank, _ float64) float64 { return bank }

// Name implements Strategy.
func (Constant) Name() string { return "constant" }

// Outbidder is the proof's worst-case adversary: it reveals exactly
// enough to beat X each auction and banks the rest, wasting nothing.
type Outbidder struct{}

// Bid implements Strategy.
func (Outbidder) Bid(_ int, bank, xBal float64) float64 {
	if bank >= xBal {
		return xBal // tie suffices: ties go to the adversary
	}
	return 0 // cannot win: reveal nothing, keep banking
}

// Name implements Strategy.
func (Outbidder) Name() string { return "outbidder" }

// Burst saves for Period rounds, then dumps the whole bank.
type Burst struct{ Period int }

// Bid implements Strategy.
func (b Burst) Bid(round int, bank, _ float64) float64 {
	p := b.Period
	if p <= 0 {
		p = 10
	}
	if (round+1)%p == 0 {
		return bank
	}
	return 0
}

// Name implements Strategy.
func (Burst) Name() string { return "burst" }

// Random reveals a uniformly random share of the bank each round.
type Random struct{ Rng *rand.Rand }

// Bid implements Strategy.
func (r Random) Bid(_ int, bank, _ float64) float64 {
	return bank * r.Rng.Float64()
}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Threshold reveals only when the bank exceeds k times X's balance —
// a "wait until overwhelming" attacker.
type Threshold struct{ K float64 }

// Bid implements Strategy.
func (th Threshold) Bid(_ int, bank, xBal float64) float64 {
	k := th.K
	if k <= 0 {
		k = 3
	}
	if bank >= k*xBal && xBal > 0 {
		return xBal
	}
	return 0
}

// Name implements Strategy.
func (Threshold) Name() string { return "threshold" }

// All returns the built-in strategies (Random uses the given seed).
func All(seed int64) []Strategy {
	return []Strategy{
		Constant{},
		Outbidder{},
		Burst{Period: 10},
		Burst{Period: 50},
		Random{Rng: rand.New(rand.NewSource(seed))},
		Threshold{K: 3},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
