package auction

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXAloneWinsEverything(t *testing.T) {
	r := Run(Config{Rounds: 100, XRate: 1, AdvRate: 0, Seed: 1}, Constant{})
	if r.XWins != 100 {
		t.Fatalf("unopposed X won %d/100", r.XWins)
	}
	if r.Epsilon != 1 {
		t.Fatalf("epsilon = %v, want 1", r.Epsilon)
	}
}

func TestEqualRatesConstantAdversary(t *testing.T) {
	// Equal bandwidth, naive adversary: X should win about half.
	r := Run(Config{Rounds: 10000, XRate: 1, AdvRate: 1, Seed: 2}, Constant{})
	if r.XServiceShare < 0.40 || r.XServiceShare > 0.60 {
		t.Fatalf("share = %v, want ~0.5", r.XServiceShare)
	}
	if !r.Holds() {
		t.Fatalf("bound violated: share %.3f < bound %.3f", r.XServiceShare, r.Bound)
	}
}

func TestOutbidderHoldsBoundButHurtsX(t *testing.T) {
	// The proof's adversary: X's share approaches eps/2, not eps.
	r := Run(Config{Rounds: 20000, XRate: 1, AdvRate: 1, Seed: 3}, Outbidder{})
	if !r.Holds() {
		t.Fatalf("bound violated: share %.3f < bound %.3f (eps %.3f)", r.XServiceShare, r.Bound, r.Epsilon)
	}
	// The outbidder should push X measurably below the naive 1/2 split
	// relative to epsilon.
	if r.XServiceShare > 0.9*r.Epsilon {
		t.Fatalf("outbidder ineffective: share %.3f vs eps %.3f", r.XServiceShare, r.Epsilon)
	}
}

func TestOutbidderNearTheoreticalLimit(t *testing.T) {
	// Against the outbidder, X's share should approach but not beat
	// the theorem's prediction territory: in [bound, ~2*bound+slack].
	r := Run(Config{Rounds: 50000, XRate: 1, AdvRate: 3, Seed: 4}, Outbidder{})
	if !r.Holds() {
		t.Fatalf("bound violated: share %.4f bound %.4f", r.XServiceShare, r.Bound)
	}
	if r.XServiceShare > 3*r.Bound {
		t.Fatalf("outbidder far from tight: share %.4f vs bound %.4f", r.XServiceShare, r.Bound)
	}
}

func TestAllStrategiesRespectBound(t *testing.T) {
	for _, s := range All(7) {
		for _, adv := range []float64{0.5, 1, 2, 5, 10} {
			r := Run(Config{Rounds: 20000, XRate: 1, AdvRate: adv, Seed: 11}, s)
			if !r.Holds() {
				t.Errorf("strategy %s adv=%v: share %.4f < bound %.4f",
					s.Name(), adv, r.XServiceShare, r.Bound)
			}
		}
	}
}

func TestJitterWeakensBoundButHolds(t *testing.T) {
	for _, delta := range []float64{0.1, 0.25, 0.4} {
		r := Run(Config{Rounds: 30000, XRate: 1, AdvRate: 2, Delta: delta, Seed: 13}, Outbidder{})
		if !r.Holds() {
			t.Errorf("delta=%v: share %.4f < bound %.4f", delta, r.XServiceShare, r.Bound)
		}
	}
}

func TestBidClamping(t *testing.T) {
	// A strategy returning nonsense must be clamped to [0, bank].
	evil := strategyFunc(func(_ int, bank, _ float64) float64 { return bank * 100 })
	r := Run(Config{Rounds: 1000, XRate: 1, AdvRate: 1, Seed: 5}, evil)
	if r.AdvDelivered > 1001 { // cannot deliver more than accrued
		t.Fatalf("adversary delivered %v with budget 1000", r.AdvDelivered)
	}
	neg := strategyFunc(func(int, float64, float64) float64 { return -5 })
	r = Run(Config{Rounds: 100, XRate: 1, AdvRate: 1, Seed: 6}, neg)
	if r.AdvDelivered != 0 {
		t.Fatalf("negative bids delivered %v", r.AdvDelivered)
	}
}

type strategyFunc func(int, float64, float64) float64

func (f strategyFunc) Bid(r int, b, x float64) float64 { return f(r, b, x) }
func (strategyFunc) Name() string                      { return "func" }

// Property: Theorem 3.1 holds for arbitrary adversary reveal schedules
// — random per-round reveal fractions, random rate ratios, random
// jitter. This is the paper's theorem under test.
func TestQuickTheorem31(t *testing.T) {
	f := func(seed int64, advRateRaw, deltaRaw uint8, reveals []uint8) bool {
		advRate := 0.25 + float64(advRateRaw%80)/4 // 0.25 .. 20
		delta := float64(deltaRaw%40) / 100        // 0 .. 0.39
		i := 0
		s := strategyFunc(func(_ int, bank, _ float64) float64 {
			if len(reveals) == 0 {
				return bank
			}
			frac := float64(reveals[i%len(reveals)]) / 255
			i++
			return bank * frac
		})
		r := Run(Config{Rounds: 5000, XRate: 1, AdvRate: advRate, Delta: delta, Seed: seed}, s)
		return r.Holds()
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the adaptive outbidder with full information never
// violates the bound across random rate ratios.
func TestQuickOutbidderBound(t *testing.T) {
	f := func(seed int64, advRateRaw uint8) bool {
		advRate := 0.1 + float64(advRateRaw)/16
		r := Run(Config{Rounds: 8000, XRate: 1, AdvRate: advRate, Seed: seed}, Outbidder{})
		return r.Holds()
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(62))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
