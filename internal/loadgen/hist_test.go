package loadgen

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantilesAndMax(t *testing.T) {
	var h Histogram
	if h.Max() != 0 || h.Quantile(0.999) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 500 fast samples and one disastrous outlier (rank 501 >
	// ceil(0.999*501) = 501): p50 stays in the fast bucket, p99.9 and
	// Max surface the outlier.
	for i := 0; i < 500; i++ {
		h.Observe(40 * time.Microsecond)
	}
	outlier := 3*time.Second + 7*time.Millisecond
	h.Observe(outlier)
	if got := h.Quantile(0.50); got != histBase {
		t.Fatalf("p50 = %v, want %v", got, histBase)
	}
	if got := h.Quantile(0.999); got < outlier {
		t.Fatalf("p99.9 = %v, must cover the outlier %v", got, outlier)
	}
	if got := h.Max(); got != outlier {
		t.Fatalf("max = %v, want the exact outlier %v", got, outlier)
	}
	// Max is exact, not bucketed: a slightly worse sample must move it.
	h.Observe(outlier + time.Millisecond)
	if got := h.Max(); got != outlier+time.Millisecond {
		t.Fatalf("max = %v, want %v", got, outlier+time.Millisecond)
	}
}

func TestHistogramConcurrentMax(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers = 16
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	want := time.Duration(workers*1000) * time.Microsecond
	if got := h.Max(); got != want {
		t.Fatalf("concurrent max = %v, want %v", got, want)
	}
	if h.Count() != workers*1000 {
		t.Fatalf("count = %d", h.Count())
	}
}
