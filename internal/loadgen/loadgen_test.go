package loadgen

import (
	"io"
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"speakup/internal/adversary"
	"speakup/internal/core"
	"speakup/internal/web"
)

func TestTokenBucketRate(t *testing.T) {
	// 8 Mbit/s = 1 MB/s; taking 200 KB beyond the 32 KB burst must
	// take roughly (200-32)/1000 ≈ 0.17s.
	b := NewTokenBucket(8e6, 32<<10)
	start := time.Now()
	total := 0
	for total < 200<<10 {
		b.Take(16 << 10)
		total += 16 << 10
	}
	took := time.Since(start)
	if took < 120*time.Millisecond || took > 400*time.Millisecond {
		t.Fatalf("200KB at 1MB/s took %v, want ~0.17s", took)
	}
}

func TestTokenBucketBurst(t *testing.T) {
	b := NewTokenBucket(1e6, 64<<10)
	start := time.Now()
	b.Take(64 << 10) // within burst: immediate
	if took := time.Since(start); took > 50*time.Millisecond {
		t.Fatalf("burst take took %v", took)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	NewTokenBucket(0, 0)
}

// Property: total time to take N bytes at rate R is at least
// (N-burst)/R — the shaper never exceeds the configured rate.
func TestQuickBucketNeverExceedsRate(t *testing.T) {
	f := func(chunks []uint16) bool {
		if len(chunks) == 0 || len(chunks) > 20 {
			return true
		}
		var virtual time.Duration
		b := NewTokenBucket(80e6, 16<<10) // 10 MB/s
		b.now = func() time.Time { return time.Unix(0, int64(virtual)) }
		b.sleep = func(d time.Duration) {
			if d <= 0 {
				d = time.Nanosecond // virtual clock must always advance
			}
			virtual += d
		}
		b.lastFill = b.now()
		total := 0
		for _, c := range chunks {
			n := int(c)%8192 + 1
			b.Take(n)
			total += n
		}
		minTime := float64(total-16<<10) / 10e6 // seconds
		if minTime < 0 {
			return true
		}
		return virtual.Seconds() >= minTime-1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestShapedReaderYieldsExactly(t *testing.T) {
	b := NewTokenBucket(800e6, 1<<20)
	r := &shapedReader{bucket: b, total: 100_000, chunk: 16 << 10}
	n, err := io.Copy(io.Discard, readerOnly{r})
	if err != nil || n != 100_000 {
		t.Fatalf("copied %d (%v), want 100000", n, err)
	}
}

func TestShapedReaderStops(t *testing.T) {
	b := NewTokenBucket(800e6, 1<<20)
	stop := false
	r := &shapedReader{bucket: b, total: 1 << 20, chunk: 4096, stopped: func() bool { return stop }}
	buf := make([]byte, 4096)
	r.Read(buf)
	stop = true
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("expected EOF after stop, got %v", err)
	}
}

type readerOnly struct{ r io.Reader }

func (r readerOnly) Read(p []byte) (int, error) { return r.r.Read(p) }

// TestEndToEndGoodVsBad runs a miniature live attack over loopback
// HTTP: one good and one bad client against an overloaded origin. The
// good client, with equal bandwidth, must get a decent share.
func TestEndToEndGoodVsBad(t *testing.T) {
	if testing.Short() {
		t.Skip("5s live-socket attack; skipped with -short")
	}
	origin := web.NewEmulatedOrigin(10)
	front := web.NewFront(origin, web.Config{
		PayPollInterval: 10 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout: 2 * time.Second,
			SweepInterval: 200 * time.Millisecond,
		},
	})
	srv := httptest.NewServer(front)
	defer srv.Close()
	defer front.Close()

	// The good client gets 4x the attacker's bandwidth so the expected
	// share (~0.8) leaves a wide margin: this is a real-time test on a
	// shared box and single runs are noisy. Exact proportionality is
	// verified deterministically in internal/scenario.
	var ids atomic.Uint64
	good := NewClient(Config{
		BaseURL: srv.URL, Lambda: 4, Window: 2, Good: true,
		UploadBits: 32e6, PostBytes: 64 << 10, Seed: 1,
	}, &ids)
	bad := NewClient(Config{
		BaseURL: srv.URL, Lambda: 40, Window: 10, Good: false,
		UploadBits: 8e6, PostBytes: 64 << 10, Seed: 2,
	}, &ids)
	good.Run()
	bad.Run()
	time.Sleep(4 * time.Second)
	good.Stop()
	bad.Stop()

	g, b := good.Stats.Served.Load(), bad.Stats.Served.Load()
	t.Logf("good served=%d/%d bad served=%d/%d goodPaid=%dB badPaid=%dB",
		g, good.Stats.Offered(), b, bad.Stats.Offered(),
		good.Stats.PaidBytes.Load(), bad.Stats.PaidBytes.Load())
	// This is a wall-clock test on a shared box, so it asserts only
	// liveness: the protocol completes end-to-end for both classes,
	// the attacker cannot shut the good client out entirely, and both
	// paid real bytes. The allocation-proportionality claims are
	// asserted in the deterministic simulator (internal/scenario) and
	// the auction ordering in internal/web's tests.
	if g == 0 {
		t.Fatal("good client starved under speak-up")
	}
	if b == 0 {
		t.Fatal("bad client served nothing; overload scenario broken")
	}
	if g+b < 10 {
		t.Fatalf("only %d requests served in 4s at c=10", g+b)
	}
	if good.Stats.PaidBytes.Load() == 0 || bad.Stats.PaidBytes.Load() == 0 {
		t.Fatal("payment channels never carried bytes")
	}
}

// TestEndToEndAdversaryStrategies drives every registered adversary
// strategy over real loopback HTTP against a live front. This is a
// liveness test: each strategy must issue requests, the protocol must
// terminate, and the front must survive (allocation claims are the
// simulator's job). The flood and defector paths exercise the waiter
// bookkeeping and the inactivity-eviction path respectively.
func TestEndToEndAdversaryStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-socket runs; skipped with -short")
	}
	for _, name := range adversary.Names() {
		t.Run(name, func(t *testing.T) {
			origin := web.NewEmulatedOrigin(20)
			front := web.NewFront(origin, web.Config{
				PayPollInterval: 5 * time.Millisecond,
				Thinner: core.Config{
					OrphanTimeout:     500 * time.Millisecond,
					InactivityTimeout: 500 * time.Millisecond,
					SweepInterval:     50 * time.Millisecond,
				},
			})
			srv := httptest.NewServer(front)
			defer srv.Close()
			defer front.Close()

			var ids atomic.Uint64
			good := NewClient(Config{
				BaseURL: srv.URL, Lambda: 4, Window: 2, Good: true,
				UploadBits: 16e6, PostBytes: 32 << 10, Seed: 1,
			}, &ids)
			spec := adversary.Spec{Name: name, Period: 2 * time.Second}
			atk := NewClient(Config{
				BaseURL:  srv.URL,
				Strategy: spec.New(adversary.NewCohort(spec, 1)),
				// Tiny POSTs keep per-request pay time well under the
				// run length at loopback speed.
				UploadBits: 16e6, PostBytes: 32 << 10, Seed: 2,
			}, &ids)
			good.Run()
			atk.Run()
			time.Sleep(2500 * time.Millisecond)
			good.Stop()
			atk.Stop()

			if atk.Stats.Issued.Load() == 0 {
				t.Fatalf("%s issued nothing in 2.5s", name)
			}
			if good.Stats.Served.Load() == 0 {
				t.Fatalf("good client starved under %s in a live run", name)
			}
			t.Logf("%s: issued=%d served=%d failed=%d dropped=%d paid=%dB",
				name, atk.Stats.Issued.Load(), atk.Stats.Served.Load(),
				atk.Stats.Failed.Load(), atk.Stats.Dropped.Load(), atk.Stats.PaidBytes.Load())
		})
	}
}
