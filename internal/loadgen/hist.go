package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers 50µs to ~30h (50µs·2³¹) in power-of-two steps.
const histBuckets = 32

// histBase is the upper bound of bucket 0.
const histBase = 50 * time.Microsecond

// Histogram is a lock-free log₂-bucketed latency recorder: Observe is
// two atomic adds, safe from any goroutine, so per-request recording
// never perturbs the load being generated. Quantiles are resolved to
// the upper bound of the matching bucket (factor-of-two resolution —
// plenty for "did p99 blow up" questions).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // ns
	maxNs   atomic.Int64 // exact worst sample
}

func histIndex(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	i := bits.Len64(uint64((d - 1) / histBase)) // ceil(log2(d/base))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[histIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Max returns the exact worst sample observed, or 0 with no samples —
// the tail beyond any bucketed quantile, which is what flood-mode
// admission-latency regressions show up in first.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile returns the upper bound of the bucket containing the p-th
// quantile (0 < p <= 1), or 0 with no samples.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	// Nearest-rank with ceiling: p=0.99 over 10 samples must look at
	// the 10th, not the 9th — truncating would hide the worst sample,
	// the one tail quantiles exist to catch.
	rank := uint64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return histBase << uint(i)
		}
	}
	return histBase << (histBuckets - 1)
}
