package loadgen

import (
	"speakup/internal/metrics"
)

// Histogram is the client-side latency recorder: a lock-free
// log₂-bucketed histogram whose Observe is two atomic adds, so
// per-request recording never perturbs the load being generated.
//
// The implementation lives in internal/metrics (metrics.Hist) — the
// same design serves the thinner's server-side lifecycle histograms
// (wait-to-admit, credit interarrival, ...) rendered by /metrics, so
// client- and server-side latency buckets line up exactly.
type Histogram = metrics.Hist

// histBase is the upper bound of bucket 0 (re-exported for tests).
const histBase = metrics.HistBase
