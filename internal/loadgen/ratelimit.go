package loadgen

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TokenBucket shapes a client's upload to an access-link rate, standing
// in for the paper's Emulab-shaped 2 Mbit/s links. It is safe for
// concurrent use: a bad client's parallel payment channels share one
// bucket, exactly like flows sharing one physical uplink.
type TokenBucket struct {
	mu       sync.Mutex
	rate     float64 // bytes per second
	burst    float64 // bucket depth in bytes
	tokens   float64
	lastFill time.Time
	now      func() time.Time // injectable for tests
	sleep    func(time.Duration)
}

// NewTokenBucket creates a bucket for rate bits/s with the given burst
// (bytes). Burst defaults to 32 KB when zero.
func NewTokenBucket(rateBits float64, burstBytes int) *TokenBucket {
	if rateBits <= 0 {
		panic("loadgen: rate must be positive")
	}
	if burstBytes <= 0 {
		burstBytes = 32 << 10
	}
	return &TokenBucket{
		rate:     rateBits / 8,
		burst:    float64(burstBytes),
		tokens:   float64(burstBytes),
		lastFill: time.Now(),
		now:      time.Now,
		sleep:    time.Sleep,
	}
}

func (b *TokenBucket) refillLocked() {
	now := b.now()
	if elapsed := now.Sub(b.lastFill); elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.lastFill = now
}

// Take blocks until n bytes of budget are available and consumes them.
func (b *TokenBucket) Take(n int) {
	for {
		b.mu.Lock()
		b.refillLocked()
		if b.tokens >= float64(n) {
			b.tokens -= float64(n)
			b.mu.Unlock()
			return
		}
		need := (float64(n) - b.tokens) / b.rate
		b.mu.Unlock()
		d := time.Duration(need * float64(time.Second))
		// Floor the wait: when concurrent takers race for the refill,
		// a near-zero deficit would otherwise degenerate into a
		// sub-microsecond-sleep busy loop that starves the whole
		// process (observed on single-CPU boxes).
		if d < 200*time.Microsecond {
			d = 200 * time.Microsecond
		}
		b.sleep(d)
	}
}

// shapedReader yields up to total bytes of dummy payload, pacing each
// chunk through the bucket. It implements io.Reader for POST bodies.
// Sent is safe to call while the transport is still draining the body
// — the thinner may answer a /pay before its body finishes (admission
// and eviction interrupt the stream), leaving the writeLoop running
// when the response arrives.
type shapedReader struct {
	bucket  *TokenBucket
	total   int
	sent    atomic.Int64
	chunk   int
	stopped func() bool // polled between chunks; true aborts the body
}

// Sent returns the payload bytes yielded so far.
func (r *shapedReader) Sent() int64 { return r.sent.Load() }

func (r *shapedReader) Read(p []byte) (int, error) {
	left := r.total - int(r.sent.Load())
	if left <= 0 || (r.stopped != nil && r.stopped()) {
		return 0, io.EOF
	}
	n := len(p)
	if n > r.chunk {
		n = r.chunk
	}
	if n > left {
		n = left
	}
	r.bucket.Take(n)
	for i := 0; i < n; i++ {
		p[i] = 'x'
	}
	r.sent.Add(int64(n))
	return n, nil
}
