package loadgen

import (
	"time"

	"speakup/internal/core"
	"speakup/internal/wire"
)

// wireClient returns the client's persistent wire connection, dialing
// (or re-dialing after a failure) on demand. All of one client's
// in-flight requests multiplex over the same connection, the way its
// HTTP requests share one http.Client.
func (c *Client) wireClient() (*wire.Client, error) {
	c.wireMu.Lock()
	defer c.wireMu.Unlock()
	if c.wire != nil && c.wire.Err() == nil {
		return c.wire, nil
	}
	wc, err := wire.Dial(c.cfg.WireAddr)
	if err != nil {
		return nil, err
	}
	c.wire = wc
	return wc, nil
}

// dropWire discards a failed connection so the next request re-dials.
func (c *Client) dropWire(wc *wire.Client) {
	wc.Close()
	c.wireMu.Lock()
	if c.wire == wc {
		c.wire = nil
	}
	c.wireMu.Unlock()
}

func (c *Client) closeWire() {
	c.wireMu.Lock()
	wc := c.wire
	c.wire = nil
	c.wireMu.Unlock()
	if wc != nil {
		wc.Close()
	}
}

// doRequestWire walks the speak-up protocol once over the binary
// transport, mirroring the HTTP path's semantics and classification:
// ADMIT is a 200, EVICT a retryable 503, SHED a retryable 503 with a
// 1s Retry-After, REJECT a non-retryable 409, and any connection
// failure a retryable transport error. Payment streams as CREDIT
// frames shaped by the same token bucket that paces HTTP POSTs, and a
// strategy's zero post size defects the same way: payment stops while
// the opened request camps on its bid.
func (c *Client) doRequestWire(id core.RequestID) (served bool, paid int64, retry bool, retryAfter time.Duration) {
	wc, err := c.wireClient()
	if err != nil {
		return false, 0, true, 0
	}
	// The OPEN costs a little upload budget, like the HTTP GETs.
	c.bucket.Take(200)
	res, err := wc.Open(id)
	if err != nil {
		c.dropWire(wc)
		return false, 0, true, 0
	}
	var deadline <-chan time.Time
	if c.cfg.RequestTimeout > 0 {
		t := time.NewTimer(c.cfg.RequestTimeout)
		defer t.Stop()
		deadline = t.C
	}
	var paidN int64
	finish := func(r wire.Result) (bool, int64, bool, time.Duration) {
		switch r.Status {
		case wire.StatusAdmitted:
			return true, paidN, false, 0
		case wire.StatusEvicted:
			return false, paidN, true, 0
		case wire.StatusShed:
			return false, paidN, true, time.Second
		case wire.StatusRejected:
			return false, paidN, false, 0
		default: // connection failure before a verdict
			c.dropWire(wc)
			return false, paidN, true, 0
		}
	}
	defect := false
	burstLeft := 0
	for {
		if defect {
			// Defected: no more payment, just await the verdict.
			select {
			case r := <-res:
				return finish(r)
			case <-c.stop:
				wc.CloseChannel(id)
				return false, paidN, false, 0
			case <-deadline:
				wc.CloseChannel(id)
				return false, paidN, true, 0
			}
		}
		select {
		case r := <-res:
			return finish(r)
		case <-c.stop:
			wc.CloseChannel(id)
			return false, paidN, false, 0
		case <-deadline:
			wc.CloseChannel(id)
			return false, paidN, true, 0
		default:
		}
		if burstLeft == 0 {
			// One burst is the analog of one payment POST: sized by the
			// strategy (zero defects) or the configured POST size.
			size := c.cfg.PostBytes
			if c.cfg.Strategy != nil {
				size = c.cfg.Strategy.PostSize(c.now(), paidN, c.cfg.PostBytes)
			}
			if size <= 0 {
				defect = true
				continue
			}
			burstLeft = size
		}
		chunk := min(burstLeft, 16<<10)
		c.bucket.Take(chunk)
		if err := wc.Credit(id, chunk); err != nil {
			c.dropWire(wc)
			return false, paidN, true, 0
		}
		paidN += int64(chunk)
		c.Stats.PaidBytes.Add(int64(chunk))
		burstLeft -= chunk
	}
}
