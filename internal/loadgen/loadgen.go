// Package loadgen reproduces the paper's client workloads (§7.1) over
// real sockets against the internal/web front-end: Poisson arrivals, a
// window of outstanding requests, an upload shaped by a token bucket
// (the Emulab 2 Mbit/s access link), and the speak-up protocol —
// re-issue the request and stream 1 MB payment POSTs when told to pay.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"speakup/internal/adversary"
	"speakup/internal/core"
	"speakup/internal/faults"
	"speakup/internal/trace"
	"speakup/internal/wire"
)

// Config tunes one load-generating client.
type Config struct {
	// BaseURL points at the thinner front-end, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Lambda is the Poisson request rate per second.
	Lambda float64
	// Window is the max outstanding requests.
	Window int
	// UploadBits shapes the client's total upload (bits/s). Default 2e6.
	UploadBits float64
	// PostBytes is the payment POST size. Default 1 MB.
	PostBytes int
	// Good labels the client in reports.
	Good bool
	// Strategy, if non-nil, drives arrival pacing, the outstanding
	// window, and payment sizing (see internal/adversary); Lambda and
	// Window are then ignored. The same strategy implementations that
	// drive the simulator drive real HTTP traffic here.
	Strategy adversary.Strategy
	// Seed seeds the arrival process.
	Seed int64
	// Client optionally overrides the HTTP client (tests inject
	// in-process transports).
	Client *http.Client
	// RetryBudget is the max re-issues per request after a retryable
	// failure (transport error, 502/503/504, eviction). 0 disables.
	RetryBudget int
	// RetryBase/RetryCap bound the jittered exponential backoff between
	// retries (defaults from faults.Backoff: 200ms base, 5s cap).
	RetryBase, RetryCap time.Duration
	// RequestTimeout is the per-request deadline covering the whole
	// speak-up exchange (initial GET through payment to response).
	// 0 means no deadline.
	RequestTimeout time.Duration
	// Transport selects how the client speaks to the front: "http"
	// (default) walks GET /request + POST /pay; "wire" multiplexes
	// OPEN/CREDIT frames over one persistent binary connection
	// (internal/wire). Both carry identical speak-up semantics.
	Transport string
	// WireAddr is the wire listener's host:port (required with
	// Transport "wire").
	WireAddr string
	// TraceSample mirrors the server's trace sampling rate (thinnerd
	// -trace-sample). When > 0, the client records which of its issued
	// ids the server traced — the sampling predicate is a shared pure
	// function of (id, rate) — so a client-side latency sample can be
	// joined against the server's /trace?id= record. 0 records nothing.
	TraceSample int
}

func (c Config) withDefaults() Config {
	if c.UploadBits == 0 {
		c.UploadBits = 2e6
	}
	if c.PostBytes == 0 {
		c.PostBytes = 1 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Transport == "" {
		c.Transport = "http"
	}
	return c
}

// Stats counts a client's outcomes. Fields are atomics: read with the
// corresponding Load methods or via Snapshot.
type Stats struct {
	Issued    atomic.Uint64
	Dropped   atomic.Uint64 // arrivals discarded because the window was full
	Served    atomic.Uint64
	Failed    atomic.Uint64
	Retried   atomic.Uint64 // re-issues after retryable failures
	PaidBytes atomic.Int64
	// Latency records issue-to-response time of served requests.
	Latency Histogram
}

// Offered returns the demand the client presented: issued plus
// window-overflow arrivals (the analog of the simulator's backlog
// denials at small scale).
func (s *Stats) Offered() uint64 { return s.Issued.Load() + s.Dropped.Load() }

// Client is one workload generator over real HTTP.
type Client struct {
	cfg    Config
	bucket *TokenBucket
	rng    *rand.Rand
	rngMu  sync.Mutex
	ids    *atomic.Uint64 // shared across clients for unique ids

	started     time.Time    // strategy clocks run on elapsed time
	outstanding atomic.Int64 // in-flight requests (strategy windowing)

	// wire is the lazily dialed persistent binary connection all of
	// this client's channels multiplex over (Transport "wire").
	wireMu sync.Mutex
	wire   *wire.Client

	// sampled collects the issued ids the server's tracer co-sampled
	// (Config.TraceSample > 0).
	sampledMu sync.Mutex
	sampled   []uint64

	Stats Stats

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewClient creates a client; ids must be shared by all clients of one
// run so request IDs are unique.
func NewClient(cfg Config, ids *atomic.Uint64) *Client {
	cfg = cfg.withDefaults()
	if cfg.Strategy == nil && (cfg.Lambda <= 0 || cfg.Window <= 0) {
		panic("loadgen: Lambda and Window must be positive")
	}
	switch cfg.Transport {
	case "http":
	case "wire":
		if cfg.WireAddr == "" {
			panic("loadgen: Transport \"wire\" requires WireAddr")
		}
	default:
		panic("loadgen: Transport must be \"http\" or \"wire\", got " + cfg.Transport)
	}
	return &Client{
		cfg:    cfg,
		bucket: NewTokenBucket(cfg.UploadBits, 32<<10),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ids:    ids,
		stop:   make(chan struct{}),
	}
}

// SampledIDs returns the issued request ids the server's tracer
// co-sampled (ascending — ids are issued monotonically). Empty unless
// Config.TraceSample was set. Each is fetchable server-side as
// /trace?id=N.
func (c *Client) SampledIDs() []uint64 {
	c.sampledMu.Lock()
	defer c.sampledMu.Unlock()
	out := make([]uint64, len(c.sampled))
	copy(out, c.sampled)
	return out
}

// Run generates load until Stop is called.
func (c *Client) Run() {
	c.started = time.Now()
	c.wg.Add(1)
	go c.arrivals()
}

// now is the strategy clock: elapsed time since Run.
func (c *Client) now() time.Duration { return time.Since(c.started) }

// Stop halts generation and waits for in-flight requests to wind down.
func (c *Client) Stop() {
	close(c.stop)
	c.wg.Wait()
	c.closeWire()
}

func (c *Client) arrivals() {
	defer c.wg.Done()
	// Strategy clients count in-flight requests against a dynamic cap
	// instead; the fixed semaphore exists only for the classic path.
	var sem chan struct{}
	if c.cfg.Strategy == nil {
		sem = make(chan struct{}, c.cfg.Window)
	}
	// One reusable timer for the whole arrival loop: time.After would
	// allocate a fresh runtime timer per gap, which at high lambda is
	// measurable garbage on the load-generation path.
	gapTimer := time.NewTimer(time.Hour)
	defer gapTimer.Stop()
	for {
		c.rngMu.Lock()
		var gap time.Duration
		if c.cfg.Strategy != nil {
			gap = c.cfg.Strategy.Gap(c.now(), c.rng)
		} else {
			gap = time.Duration(c.rng.ExpFloat64() / c.cfg.Lambda * float64(time.Second))
		}
		c.rngMu.Unlock()
		gapTimer.Reset(gap)
		select {
		case <-c.stop:
			return
		case <-gapTimer.C:
		}
		if c.cfg.Strategy != nil {
			// Strategy windows change over time, so a fixed-capacity
			// semaphore cannot model them; count in-flight requests
			// against the cap in force right now.
			if c.outstanding.Load() >= int64(c.cfg.Strategy.Window(c.now())) {
				c.Stats.Dropped.Add(1)
				c.cfg.Strategy.Observe(adversary.Outcome{Denied: true, Now: c.now()})
				continue
			}
			c.outstanding.Add(1)
			c.launch(func() { c.outstanding.Add(-1) })
			continue
		}
		select {
		case sem <- struct{}{}:
			c.launch(func() { <-sem })
		default:
			// Window full: the paper's client would queue in a backlog;
			// over real sockets we drop immediately (equivalent to an
			// instant backlog timeout at small scale) and count it.
			c.Stats.Dropped.Add(1)
		}
	}
}

// launch runs one request in its own goroutine; release frees the
// window slot when it completes. The window slot stays held across
// retries, so a retrying client offers no extra concurrency.
func (c *Client) launch(release func()) {
	id := core.RequestID(c.ids.Add(1))
	c.Stats.Issued.Add(1)
	if c.cfg.TraceSample > 0 && trace.Sampled(uint64(id), c.cfg.TraceSample) {
		c.sampledMu.Lock()
		c.sampled = append(c.sampled, uint64(id))
		c.sampledMu.Unlock()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer release()
		backoff := faults.Backoff{Base: c.cfg.RetryBase, Cap: c.cfg.RetryCap}.WithDefaults()
		start := time.Now()
		var served bool
		var paid int64
		for attempt := 0; ; attempt++ {
			var retry bool
			var retryAfter time.Duration
			served, paid, retry, retryAfter = c.doRequest(id)
			if served || !retry || attempt >= c.cfg.RetryBudget {
				break
			}
			c.rngMu.Lock()
			d := backoff.Delay(attempt, c.rng)
			c.rngMu.Unlock()
			if retryAfter > d {
				d = retryAfter
			}
			if !c.sleep(d) {
				break // shutting down
			}
			c.Stats.Retried.Add(1)
		}
		if served {
			c.Stats.Served.Add(1)
			c.Stats.Latency.Observe(time.Since(start))
		} else {
			c.Stats.Failed.Add(1)
		}
		if c.cfg.Strategy != nil {
			c.cfg.Strategy.Observe(adversary.Outcome{
				Served: served, Paid: paid, Now: c.now(),
			})
		}
	}()
}

// sleep waits for d or until Stop; it reports whether the client is
// still running.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.stop:
		return false
	case <-t.C:
		return true
	}
}

func (c *Client) url(path string, id core.RequestID, extra string) string {
	return fmt.Sprintf("%s%s?id=%d%s", c.cfg.BaseURL, path, uint64(id), extra)
}

// doRequest walks the speak-up protocol once; it reports success, the
// payment bytes this attempt pushed, whether a failure is worth
// retrying (transport error, brownout-style 5xx, eviction), and any
// server-suggested Retry-After delay.
func (c *Client) doRequest(id core.RequestID) (served bool, paid int64, retry bool, retryAfter time.Duration) {
	if c.cfg.Transport == "wire" {
		return c.doRequestWire(id)
	}
	ctx := context.Background()
	cancel := func() {}
	if c.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
	}
	defer cancel()
	// Requests cost a little upload budget, too.
	c.bucket.Take(200)
	resp, err := c.get(ctx, c.url("/request", id, ""))
	if err != nil {
		return false, 0, true, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, 0, false, 0
	case http.StatusPaymentRequired:
		ok, paid := c.payAndWait(ctx, id)
		// Not served after paying means evicted or deadline-expired:
		// both are transient, so the retry budget applies.
		return ok, paid, !ok, 0
	case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusGatewayTimeout:
		return false, 0, true, parseRetryAfter(resp)
	default:
		return false, 0, false, 0
	}
}

// parseRetryAfter reads a delay-seconds Retry-After header; 0 if absent
// or unparseable (HTTP-date forms are not worth handling here).
func parseRetryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

func (c *Client) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.cfg.Client.Do(req)
}

func (c *Client) post(ctx context.Context, url string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return c.cfg.Client.Do(req)
}

// payAndWait re-issues the actual request and streams payment POSTs
// until admitted (then collects the held response) or evicted. With a
// Strategy, each POST is sized by the strategy; a zero size defects —
// payment stops while the request stays open, camping on its bid.
func (c *Client) payAndWait(ctx context.Context, id core.RequestID) (bool, int64) {
	done := make(chan bool, 1)
	var stopped atomic.Bool
	var paid atomic.Int64
	// The actual request (1), held by the thinner until served.
	go func() {
		c.bucket.Take(200)
		resp, err := c.get(ctx, c.url("/request", id, "&wait=1"))
		if err != nil {
			done <- false
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode == http.StatusOK
	}()
	// The payment channel (2): POSTs until admitted/evicted/defected.
	go func() {
		for !stopped.Load() {
			size := c.cfg.PostBytes
			if c.cfg.Strategy != nil {
				size = c.cfg.Strategy.PostSize(c.now(), paid.Load(), c.cfg.PostBytes)
				if size <= 0 {
					return // defect: stop paying, keep the waiter open
				}
			}
			body := &shapedReader{
				bucket:  c.bucket,
				total:   size,
				chunk:   16 << 10,
				stopped: stopped.Load,
			}
			resp, err := c.post(ctx, c.url("/pay", id, ""), io.NopCloser(body))
			if err != nil {
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			paid.Add(body.Sent())
			c.Stats.PaidBytes.Add(body.Sent())
			if stopped.Load() || !isContinue(raw) {
				return
			}
		}
	}()
	select {
	case ok := <-done:
		stopped.Store(true)
		return ok, paid.Load()
	case <-c.stop:
		stopped.Store(true)
		return false, paid.Load()
	}
}

// isContinue reports whether a /pay reply asks for another POST.
func isContinue(raw []byte) bool {
	// Cheap check to avoid a JSON decode on the hot path.
	for i := 0; i+7 < len(raw); i++ {
		if string(raw[i:i+8]) == "continue" {
			return true
		}
	}
	return false
}
