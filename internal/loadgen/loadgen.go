// Package loadgen reproduces the paper's client workloads (§7.1) over
// real sockets against the internal/web front-end: Poisson arrivals, a
// window of outstanding requests, an upload shaped by a token bucket
// (the Emulab 2 Mbit/s access link), and the speak-up protocol —
// re-issue the request and stream 1 MB payment POSTs when told to pay.
package loadgen

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"speakup/internal/core"
)

// Config tunes one load-generating client.
type Config struct {
	// BaseURL points at the thinner front-end, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Lambda is the Poisson request rate per second.
	Lambda float64
	// Window is the max outstanding requests.
	Window int
	// UploadBits shapes the client's total upload (bits/s). Default 2e6.
	UploadBits float64
	// PostBytes is the payment POST size. Default 1 MB.
	PostBytes int
	// Good labels the client in reports.
	Good bool
	// Seed seeds the arrival process.
	Seed int64
	// Client optionally overrides the HTTP client (tests inject
	// in-process transports).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.UploadBits == 0 {
		c.UploadBits = 2e6
	}
	if c.PostBytes == 0 {
		c.PostBytes = 1 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Stats counts a client's outcomes. Fields are atomics: read with the
// corresponding Load methods or via Snapshot.
type Stats struct {
	Issued    atomic.Uint64
	Dropped   atomic.Uint64 // arrivals discarded because the window was full
	Served    atomic.Uint64
	Failed    atomic.Uint64
	PaidBytes atomic.Int64
	// Latency records issue-to-response time of served requests.
	Latency Histogram
}

// Offered returns the demand the client presented: issued plus
// window-overflow arrivals (the analog of the simulator's backlog
// denials at small scale).
func (s *Stats) Offered() uint64 { return s.Issued.Load() + s.Dropped.Load() }

// Client is one workload generator over real HTTP.
type Client struct {
	cfg    Config
	bucket *TokenBucket
	rng    *rand.Rand
	rngMu  sync.Mutex
	ids    *atomic.Uint64 // shared across clients for unique ids

	Stats Stats

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewClient creates a client; ids must be shared by all clients of one
// run so request IDs are unique.
func NewClient(cfg Config, ids *atomic.Uint64) *Client {
	cfg = cfg.withDefaults()
	if cfg.Lambda <= 0 || cfg.Window <= 0 {
		panic("loadgen: Lambda and Window must be positive")
	}
	return &Client{
		cfg:    cfg,
		bucket: NewTokenBucket(cfg.UploadBits, 32<<10),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ids:    ids,
		stop:   make(chan struct{}),
	}
}

// Run generates load until Stop is called.
func (c *Client) Run() {
	c.wg.Add(1)
	go c.arrivals()
}

// Stop halts generation and waits for in-flight requests to wind down.
func (c *Client) Stop() {
	close(c.stop)
	c.wg.Wait()
}

func (c *Client) arrivals() {
	defer c.wg.Done()
	sem := make(chan struct{}, c.cfg.Window)
	// One reusable timer for the whole arrival loop: time.After would
	// allocate a fresh runtime timer per gap, which at high lambda is
	// measurable garbage on the load-generation path.
	gapTimer := time.NewTimer(time.Hour)
	defer gapTimer.Stop()
	for {
		c.rngMu.Lock()
		gap := time.Duration(c.rng.ExpFloat64() / c.cfg.Lambda * float64(time.Second))
		c.rngMu.Unlock()
		gapTimer.Reset(gap)
		select {
		case <-c.stop:
			return
		case <-gapTimer.C:
		}
		select {
		case sem <- struct{}{}:
			id := core.RequestID(c.ids.Add(1))
			c.Stats.Issued.Add(1)
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				if c.doRequest(id) {
					c.Stats.Served.Add(1)
					c.Stats.Latency.Observe(time.Since(start))
				} else {
					c.Stats.Failed.Add(1)
				}
			}()
		default:
			// Window full: the paper's client would queue in a backlog;
			// over real sockets we drop immediately (equivalent to an
			// instant backlog timeout at small scale) and count it.
			c.Stats.Dropped.Add(1)
		}
	}
}

func (c *Client) url(path string, id core.RequestID, extra string) string {
	return fmt.Sprintf("%s%s?id=%d%s", c.cfg.BaseURL, path, uint64(id), extra)
}

// doRequest walks the speak-up protocol once; reports success.
func (c *Client) doRequest(id core.RequestID) bool {
	// Requests cost a little upload budget, too.
	c.bucket.Take(200)
	resp, err := c.cfg.Client.Get(c.url("/request", id, ""))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true
	case http.StatusPaymentRequired:
		return c.payAndWait(id)
	default:
		return false
	}
}

// payAndWait re-issues the actual request and streams payment POSTs
// until admitted (then collects the held response) or evicted.
func (c *Client) payAndWait(id core.RequestID) bool {
	done := make(chan bool, 1)
	var stopped atomic.Bool
	// The actual request (1), held by the thinner until served.
	go func() {
		c.bucket.Take(200)
		resp, err := c.cfg.Client.Get(c.url("/request", id, "&wait=1"))
		if err != nil {
			done <- false
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode == http.StatusOK
	}()
	// The payment channel (2): POSTs until admitted/evicted.
	go func() {
		for !stopped.Load() {
			body := &shapedReader{
				bucket:  c.bucket,
				total:   c.cfg.PostBytes,
				chunk:   16 << 10,
				stopped: stopped.Load,
			}
			resp, err := c.cfg.Client.Post(c.url("/pay", id, ""), "application/octet-stream", io.NopCloser(body))
			if err != nil {
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			c.Stats.PaidBytes.Add(body.Sent())
			if stopped.Load() || !isContinue(raw) {
				return
			}
		}
	}()
	select {
	case ok := <-done:
		stopped.Store(true)
		return ok
	case <-c.stop:
		stopped.Store(true)
		return false
	}
}

// isContinue reports whether a /pay reply asks for another POST.
func isContinue(raw []byte) bool {
	// Cheap check to avoid a JSON decode on the hot path.
	for i := 0; i+7 < len(raw); i++ {
		if string(raw[i:i+8]) == "continue" {
			return true
		}
	}
	return false
}
