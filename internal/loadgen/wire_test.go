package loadgen

import (
	"net"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/web"
	"speakup/internal/wire"
)

// TestEndToEndWireTransport runs the miniature live attack over the
// binary framed transport: good and bad clients multiplex OPEN/CREDIT
// frames on persistent connections against the same front the HTTP
// test uses. Liveness assertions only, like the HTTP end-to-end test;
// throughput comparison is cmd/benchjson -pr 8's job.
func TestEndToEndWireTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("4s live-socket attack; skipped with -short")
	}
	origin := web.NewEmulatedOrigin(10)
	front := web.NewFront(origin, web.Config{
		PayPollInterval: 10 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout: 2 * time.Second,
			SweepInterval: 200 * time.Millisecond,
		},
	})
	srv := httptest.NewServer(front)
	defer srv.Close()
	defer front.Close()

	wsrv := wire.NewServer(front, wire.ServerConfig{Registry: front.Registry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go wsrv.Serve(ln)
	defer wsrv.Close()

	var ids atomic.Uint64
	good := NewClient(Config{
		BaseURL: srv.URL, Lambda: 4, Window: 2, Good: true,
		UploadBits: 32e6, PostBytes: 64 << 10, Seed: 1,
		Transport: "wire", WireAddr: ln.Addr().String(),
	}, &ids)
	bad := NewClient(Config{
		BaseURL: srv.URL, Lambda: 40, Window: 10, Good: false,
		UploadBits: 8e6, PostBytes: 64 << 10, Seed: 2,
		Transport: "wire", WireAddr: ln.Addr().String(),
	}, &ids)
	good.Run()
	bad.Run()
	time.Sleep(3 * time.Second)
	good.Stop()
	bad.Stop()

	g, b := good.Stats.Served.Load(), bad.Stats.Served.Load()
	t.Logf("good served=%d/%d bad served=%d/%d goodPaid=%dB badPaid=%dB",
		g, good.Stats.Offered(), b, bad.Stats.Offered(),
		good.Stats.PaidBytes.Load(), bad.Stats.PaidBytes.Load())
	if g == 0 {
		t.Fatal("good client starved over the wire transport")
	}
	if g+b < 10 {
		t.Fatalf("only %d requests served in 3s at c=10", g+b)
	}
	if good.Stats.PaidBytes.Load() == 0 || bad.Stats.PaidBytes.Load() == 0 {
		t.Fatal("payment frames never carried bytes")
	}
	// The front's registry saw the wire traffic: frames decoded and
	// payment bytes credited through RecordWireRead.
	snap := front.Telemetry()
	if snap.WireFrames == 0 || snap.WireIngestBytes == 0 {
		t.Fatalf("wire telemetry empty: %+v", snap)
	}
}
