package trace

import (
	"sync"
	"testing"
	"time"

	"speakup/internal/metrics"
)

// sampledID returns an id the tracer samples; offset skips earlier
// matches so tests can get several distinct sampled ids.
func sampledID(t *testing.T, tr *Tracer, skip int) uint64 {
	t.Helper()
	for id := uint64(1); id < 1<<20; id++ {
		if tr.Sampled(id) {
			if skip == 0 {
				return id
			}
			skip--
		}
	}
	t.Fatal("no sampled id found in 2^20 probes")
	return 0
}

func TestNewDisabled(t *testing.T) {
	if tr := New(Config{}); tr != nil {
		t.Fatalf("Sample=0 must return a nil tracer, got %v", tr)
	}
	// Every hook and accessor must tolerate the nil tracer.
	var tr *Tracer
	tr.OnArrive(1, 0)
	tr.OnCredit(1, 10, 0, TransportHTTP)
	tr.OnAuction(1, 0)
	tr.OnAdmit(1, 10, 0, true)
	tr.OnEvict(1, 10, 0)
	tr.OnShed(1, 0)
	tr.OnDuplicate(1, 0)
	if tr.Sampled(1) || tr.SampleN() != 0 || tr.Drops() != 0 || tr.Completed() != 0 {
		t.Fatal("nil tracer accessors must report zero values")
	}
	if got := tr.Snapshot(10, 0); got != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", got)
	}
}

func TestSamplingDeterministicAndShared(t *testing.T) {
	tr := New(Config{Sample: 8})
	if tr.SampleN() != 8 {
		t.Fatalf("SampleN = %d, want 8", tr.SampleN())
	}
	// The tracer's decision must equal the static predicate the load
	// generator uses — co-sampling is a contract.
	n := 0
	for id := uint64(1); id <= 1<<14; id++ {
		a, b := tr.Sampled(id), Sampled(id, 8)
		if a != b {
			t.Fatalf("id %d: tracer.Sampled=%v but static Sampled=%v", id, a, b)
		}
		if a {
			n++
		}
	}
	// A 1-in-8 hash sample over 16384 ids should land near 2048.
	if n < 1500 || n > 2600 {
		t.Fatalf("sampled %d of 16384 ids at 1-in-8; hash looks biased", n)
	}
	// Non-power-of-two rates round up.
	if New(Config{Sample: 1000}).SampleN() != 1024 {
		t.Fatal("Sample=1000 must round up to 1024")
	}
	if Sampled(0, 1) {
		t.Fatal("id 0 is the free-slot sentinel and must never sample")
	}
}

func TestLifecycleAdmit(t *testing.T) {
	var lat metrics.LatencyHists
	tr := New(Config{Sample: 1, Slots: 8, Ring: 8, Hists: &lat})
	id := sampledID(t, tr, 0)
	other := sampledID(t, tr, 1)

	tr.OnArrive(id, 1000)
	tr.OnArrive(other, 1100)
	tr.OnCredit(id, 50, 2000, TransportHTTP)
	tr.OnCredit(id, 50, 3000, TransportWire)
	tr.OnAuction(other, 3500) // id contends, loses
	tr.OnAuction(id, 4000)    // id wins: not a loss
	tr.OnAdmit(id, 100, 4000, true)

	recs := tr.Snapshot(10, id)
	if len(recs) != 1 {
		t.Fatalf("got %d records for id %d, want 1", len(recs), id)
	}
	r := recs[0]
	if r.Verdict != VerdictAdmitAuction {
		t.Fatalf("verdict = %v, want admit_auction", r.Verdict)
	}
	if r.Transport != TransportWire {
		t.Fatalf("transport = %v, want wire (last credit's carrier)", r.Transport)
	}
	if r.ArriveNS != 1000 || r.FirstCreditNS != 2000 || r.LastCreditNS != 3000 || r.SettleNS != 4000 {
		t.Fatalf("span timestamps wrong: %+v", r)
	}
	if r.Credits != 2 || r.CreditBytes != 100 || r.AuctionsLost != 1 || r.Paid != 100 {
		t.Fatalf("tallies wrong: %+v", r)
	}
	if got := r.Wait(); got != 3000 {
		t.Fatalf("Wait = %v, want 3000ns", got)
	}
	if lat.WaitToAdmit.Count() != 1 || lat.WaitToAdmit.Max() != 3000 {
		t.Fatalf("WaitToAdmit hist: count=%d max=%v, want 1 sample of 3µs", lat.WaitToAdmit.Count(), lat.WaitToAdmit.Max())
	}
	if lat.CreditGap.Count() != 1 || lat.CreditGap.Max() != 1000 {
		t.Fatalf("CreditGap hist: count=%d max=%v, want 1 gap of 1µs", lat.CreditGap.Count(), lat.CreditGap.Max())
	}

	// The slot must be free again: a fresh lifecycle for the same id
	// starts clean.
	tr.OnArrive(id, 9000)
	tr.OnAdmit(id, 0, 9500, false)
	recs = tr.Snapshot(1, id)
	if len(recs) != 1 || recs[0].Verdict != VerdictAdmitDirect || recs[0].Credits != 0 {
		t.Fatalf("recycled slot carried stale state: %+v", recs)
	}
}

func TestLifecycleEvictShedDuplicate(t *testing.T) {
	var lat metrics.LatencyHists
	tr := New(Config{Sample: 1, Slots: 8, Ring: 8, Hists: &lat})
	id := sampledID(t, tr, 0)

	// Payment-only orphan: credits but never a request message.
	tr.OnCredit(id, 25, 1000, TransportWire)
	tr.OnEvict(id, 25, 5000)
	r := tr.Snapshot(1, id)[0]
	if r.Verdict != VerdictEvict || r.ArriveNS != 0 || r.Paid != 25 {
		t.Fatalf("orphan evict record wrong: %+v", r)
	}
	if lat.TimeToEvict.Count() != 1 || lat.TimeToEvict.Max() != 4000 {
		t.Fatalf("TimeToEvict must span first credit→evict for orphans: count=%d max=%v",
			lat.TimeToEvict.Count(), lat.TimeToEvict.Max())
	}

	tr.OnShed(id, 6000)
	r = tr.Snapshot(1, id)[0]
	if r.Verdict != VerdictShed || r.SettleNS != 6000 {
		t.Fatalf("shed record wrong: %+v", r)
	}

	// A duplicate settles standalone without disturbing the original's
	// in-flight slot.
	tr.OnArrive(id, 7000)
	tr.OnDuplicate(id, 7500)
	r = tr.Snapshot(1, id)[0]
	if r.Verdict != VerdictDuplicate || r.Credits != 0 {
		t.Fatalf("duplicate record wrong: %+v", r)
	}
	tr.OnAdmit(id, 10, 8000, true)
	r = tr.Snapshot(1, id)[0]
	if r.Verdict != VerdictAdmitAuction || r.ArriveNS != 7000 {
		t.Fatalf("duplicate clobbered the original in-flight trace: %+v", r)
	}
}

func TestRingWrapNewestFirst(t *testing.T) {
	tr := New(Config{Sample: 1, Slots: 64, Ring: 4})
	for i := 0; i < 10; i++ {
		id := sampledID(t, tr, i)
		tr.OnArrive(id, time.Duration(i+1))
		tr.OnAdmit(id, 0, time.Duration(100+i), false)
	}
	recs := tr.Snapshot(0, 0)
	if len(recs) != 4 {
		t.Fatalf("ring of 4 retained %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].SettleNS <= recs[i].SettleNS {
			t.Fatalf("Snapshot not newest-first: %+v", recs)
		}
	}
	if recs[0].SettleNS != 109 {
		t.Fatalf("newest record settled at %d, want 109", recs[0].SettleNS)
	}
	if tr.Completed() != 10 {
		t.Fatalf("Completed = %d, want 10", tr.Completed())
	}
	if got := tr.Snapshot(2, 0); len(got) != 2 {
		t.Fatalf("Snapshot(2) returned %d records", len(got))
	}
}

func TestSlotExhaustionDrops(t *testing.T) {
	tr := New(Config{Sample: 1, Slots: 1, Ring: 4}) // rounds to 1 slot
	ids := make([]uint64, 0, 40)
	for i := 0; len(ids) < 40; i++ {
		ids = append(ids, sampledID(t, tr, i))
	}
	for _, id := range ids {
		tr.OnArrive(id, 1)
	}
	if tr.Drops() == 0 {
		t.Fatal("40 in-flight ids over 1 slot must drop some traces")
	}
	// The table itself must never grow: exactly one id holds a slot.
	held := 0
	for i := range tr.slots {
		if tr.slots[i].id.Load() != 0 {
			held++
		}
	}
	if held != 1 {
		t.Fatalf("%d slots held, table has 1", held)
	}
}

// TestTracePathAllocs is the zero-steady-state-allocation fence for
// the hot-path hooks: both the sampling miss (the common case on
// every request) and the full sampled lifecycle must not allocate.
// Excluded from the -race CI job by name: race instrumentation
// allocates and would fail any alloc fence spuriously.
func TestTracePathAllocs(t *testing.T) {
	tr := New(Config{Sample: 2, Slots: 64, Ring: 64, Hists: &metrics.LatencyHists{}})
	hit := sampledID(t, tr, 0)
	miss := hit + 1
	for tr.Sampled(miss) {
		miss++
	}
	now := time.Duration(0)
	tick := func() time.Duration { now += 1000; return now }

	if n := testing.AllocsPerRun(200, func() {
		tr.OnArrive(miss, tick())
		tr.OnCredit(miss, 50, tick(), TransportHTTP)
		tr.OnAdmit(miss, 50, tick(), true)
	}); n != 0 {
		t.Fatalf("sampling-miss path allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tr.OnArrive(hit, tick())
		tr.OnCredit(hit, 50, tick(), TransportHTTP)
		tr.OnCredit(hit, 50, tick(), TransportWire)
		tr.OnAuction(hit+1, tick())
		tr.OnAdmit(hit, 100, tick(), true)
	}); n != 0 {
		t.Fatalf("sampled lifecycle allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tr.OnCredit(hit, 50, tick(), TransportWire)
		tr.OnEvict(hit, 50, tick())
	}); n != 0 {
		t.Fatalf("evict path allocates %.1f/op, want 0", n)
	}
}

// TestTraceConcurrentCredits drives credits from many goroutines while
// the control path settles and re-arrives the same ids — the shape the
// -race CI job exists to check.
func TestTraceConcurrentCredits(t *testing.T) {
	tr := New(Config{Sample: 1, Slots: 32, Ring: 128, Hists: &metrics.LatencyHists{}})
	ids := make([]uint64, 8)
	for i := range ids {
		ids[i] = sampledID(t, tr, i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Duration(g * 1000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					now += 100
					tr.OnCredit(id, 10, now, TransportWire)
				}
			}
		}(g)
	}
	now := time.Duration(0)
	for round := 0; round < 200; round++ {
		for i, id := range ids {
			now += 500
			tr.OnArrive(id, now)
			switch (round + i) % 3 {
			case 0:
				tr.OnAdmit(id, 10, now+100, true)
			case 1:
				tr.OnEvict(id, 10, now+100)
			default:
				tr.OnAuction(id, now+100)
			}
		}
		if round%10 == 0 {
			tr.Snapshot(16, 0)
		}
	}
	close(stop)
	wg.Wait()
	if tr.Completed() == 0 {
		t.Fatal("no records completed under concurrency")
	}
}

func BenchmarkOnCreditMiss(b *testing.B) {
	tr := New(Config{Sample: 1024})
	id := uint64(1)
	for !tr.Sampled(id) {
		id++
	}
	miss := id + 1
	for tr.Sampled(miss) {
		miss++
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.OnCredit(miss, 50, time.Duration(i), TransportWire)
	}
}

func BenchmarkOnCreditHit(b *testing.B) {
	tr := New(Config{Sample: 1, Slots: 4})
	tr.OnArrive(7, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.OnCredit(7, 50, time.Duration(i), TransportWire)
	}
}
