// Package trace is the thinner's sampled request-lifecycle tracer:
// the "why did THIS request wait, pay, and then get evicted" layer on
// top of the aggregate counters in internal/metrics.
//
// Design constraints, in order:
//
//  1. Off by default, free when off. Every hook is nil-safe (call it
//     on a nil *Tracer, like the metrics registry) and the enabled
//     fast path for an unsampled id is one hash and one mask — so the
//     payment hot path, which credits millions of chunks per second,
//     can carry the hooks unconditionally.
//  2. Zero steady-state allocation. In-flight traces live in a fixed
//     open-addressed slot table of all-atomic records; completed
//     traces are copied by value into a fixed-capacity ring. No
//     per-event allocation on any path, enforced by AllocsPerRun
//     fences.
//  3. Deterministic hash-based sampling by request id. Whether an id
//     is traced is a pure function of (id, sample rate) — not of
//     which transport carried it or when it arrived — so the HTTP
//     /pay stream and the wire CREDIT frames for one id always
//     co-sample into one record, and a load generator given the same
//     rate can predict exactly which of its ids the server traced.
//
// Lifecycle spans captured per sampled request: arrive → wait (credit
// progress: count, bytes, first/last timestamps) → auction rounds
// lost while contending → settle (admit / evict / shed / duplicate)
// with the final price. On settle the record moves to the completed
// ring (served by the front's /trace endpoint) and, when configured,
// feeds the server-side latency histograms (wait-to-admit, credit
// interarrival, time-to-evict) in internal/metrics.
//
// Concurrency: credit hooks run concurrently from every transport
// goroutine; arrival/auction/settle hooks run on the thinner's
// control path (one goroutine, or under the front's control mutex).
// Slot fields are individually atomic, so concurrent updates are
// race-free; a credit racing the settle of the same id can at worst
// smear one sampled record's tallies, never corrupt memory or block.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"speakup/internal/metrics"
)

// Transport tags which listener carried an event.
type Transport uint8

const (
	// TransportUnknown: no transport recorded (no credits seen).
	TransportUnknown Transport = iota
	// TransportSim: the simulator's message-level payment path.
	TransportSim
	// TransportHTTP: chunked POST /pay bodies.
	TransportHTTP
	// TransportWire: CREDIT frames over the binary framed transport.
	TransportWire
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TransportSim:
		return "sim"
	case TransportHTTP:
		return "http"
	case TransportWire:
		return "wire"
	}
	return "unknown"
}

// Verdict is how a traced request's lifecycle ended.
type Verdict uint8

const (
	// VerdictNone: still in flight (never appears in completed records).
	VerdictNone Verdict = iota
	// VerdictAdmitDirect: admitted with no auction (origin was free).
	VerdictAdmitDirect
	// VerdictAdmitAuction: won an auction.
	VerdictAdmitAuction
	// VerdictEvict: payment channel timed out (orphaned or inactive).
	VerdictEvict
	// VerdictShed: refused during an origin brownout.
	VerdictShed
	// VerdictDuplicate: rejected — the id was already waiting (HTTP 409).
	VerdictDuplicate
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmitDirect:
		return "admit_direct"
	case VerdictAdmitAuction:
		return "admit_auction"
	case VerdictEvict:
		return "evict"
	case VerdictShed:
		return "shed"
	case VerdictDuplicate:
		return "duplicate"
	}
	return "in_flight"
}

// Record is one completed request-lifecycle trace. Timestamps are the
// owning front's clock readings (time since its epoch) in
// nanoseconds; 0 means the span never happened.
type Record struct {
	ID uint64 `json:"id"`
	// Verdict is the terminal outcome (admit_direct, admit_auction,
	// evict, shed, duplicate).
	Verdict Verdict `json:"-"`
	// Transport is the listener that carried the last payment credit.
	Transport Transport `json:"-"`
	// ArriveNS: when the request message arrived (0: payment-only
	// orphan that never sent its request).
	ArriveNS int64 `json:"arrive_ns"`
	// FirstCreditNS/LastCreditNS bound the payment stream.
	FirstCreditNS int64 `json:"first_credit_ns,omitempty"`
	LastCreditNS  int64 `json:"last_credit_ns,omitempty"`
	// SettleNS: when the verdict landed.
	SettleNS int64 `json:"settle_ns"`
	// Credits / CreditBytes tally the payment stream.
	Credits     uint32 `json:"credits"`
	CreditBytes int64  `json:"credit_bytes"`
	// AuctionsLost counts auction rounds this request contended in and
	// lost before settling.
	AuctionsLost uint32 `json:"auctions_lost"`
	// Paid: the settle price — winning bid on admit, forfeited balance
	// on evict.
	Paid int64 `json:"paid"`
}

// Wait returns the arrive→settle latency, or 0 if the request never
// formally arrived (orphan channels).
func (r *Record) Wait() time.Duration {
	if r.ArriveNS == 0 || r.SettleNS < r.ArriveNS {
		return 0
	}
	return time.Duration(r.SettleNS - r.ArriveNS)
}

// Config tunes a Tracer.
type Config struct {
	// Sample enables tracing at one-in-Sample requests, rounded up to
	// a power of two (1 traces everything). 0 — the default — disables
	// tracing entirely: New returns nil and every hook is a no-op.
	Sample int
	// Slots bounds concurrently in-flight traced requests (rounded up
	// to a power of two, default 512). When full, new sampled requests
	// are dropped and counted in Drops.
	Slots int
	// Ring bounds retained completed traces (rounded up to a power of
	// two, default 1024); older records are overwritten.
	Ring int
	// Hists, if non-nil, receives wait-to-admit, credit-interarrival,
	// and time-to-evict observations from sampled records as they
	// settle — pass the front registry's Latency() so /metrics renders
	// them.
	Hists *metrics.LatencyHists
}

// slot is one in-flight traced request. All fields are atomics:
// credits land from any transport goroutine while the control path
// arrives/settles. id==0 marks a free slot (request id 0 is never
// issued by any client in this repo; a hostile id 0 is simply never
// traced).
type slot struct {
	id           atomic.Uint64
	arriveNS     atomic.Int64
	firstCredit  atomic.Int64
	lastCredit   atomic.Int64
	settleNS     atomic.Int64
	credits      atomic.Uint32
	auctionsLost atomic.Uint32
	creditBytes  atomic.Int64
	transport    atomic.Uint32
}

func (s *slot) reset() {
	s.arriveNS.Store(0)
	s.firstCredit.Store(0)
	s.lastCredit.Store(0)
	s.settleNS.Store(0)
	s.credits.Store(0)
	s.auctionsLost.Store(0)
	s.creditBytes.Store(0)
	s.transport.Store(0)
}

// Tracer records sampled request lifecycles. Create with New; a nil
// *Tracer is valid and every method on it is a cheap no-op.
type Tracer struct {
	sampleMask uint64 // sampled: hash(id)&sampleMask == 0
	sampleN    int
	slotMask   uint64
	slots      []slot
	hists      *metrics.LatencyHists

	drops     atomic.Uint64 // sampled requests lost to slot exhaustion
	completed atomic.Uint64 // records retired to the ring

	// The completed ring. Settles are control-path rare (per request,
	// not per chunk), so a plain mutex keeps Snapshot race-free without
	// seqlock subtlety; pushes copy by value and never allocate.
	mu   sync.Mutex
	ring []Record
	head uint64 // next ring write index (monotone)
}

func ceilPow2(n, def int) int {
	if n <= 0 {
		n = def
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a tracer, or returns nil — the disabled tracer every
// hook tolerates — when cfg.Sample is 0.
func New(cfg Config) *Tracer {
	if cfg.Sample <= 0 {
		return nil
	}
	n := ceilPow2(cfg.Sample, 1)
	slots := ceilPow2(cfg.Slots, 512)
	ring := ceilPow2(cfg.Ring, 1024)
	return &Tracer{
		sampleMask: uint64(n - 1),
		sampleN:    n,
		slotMask:   uint64(slots - 1),
		slots:      make([]slot, slots),
		ring:       make([]Record, 0, ring),
		hists:      cfg.Hists,
	}
}

// hash64 is a splitmix64-style finalizer: cheap, well-mixed, and the
// shared definition both server and load generator use so co-sampling
// is a protocol, not a coincidence.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Sampled reports whether id is traced at a one-in-sample rate
// (sample rounded up to a power of two; <=0 samples nothing). Load
// generators use this to predict the server's sampled id set.
func Sampled(id uint64, sample int) bool {
	if sample <= 0 || id == 0 {
		return false
	}
	return hash64(id)&uint64(ceilPow2(sample, 1)-1) == 0
}

// SampleN returns the effective one-in-N sampling rate (0 when nil).
func (t *Tracer) SampleN() int {
	if t == nil {
		return 0
	}
	return t.sampleN
}

// Sampled reports whether id would be traced. Nil-safe. Id 0 is the
// free-slot sentinel and never samples (no client in this repo issues
// it; hash64(0)=0 would otherwise always sample it).
func (t *Tracer) Sampled(id uint64) bool {
	return t != nil && id != 0 && hash64(id)&t.sampleMask == 0
}

// Drops returns how many sampled requests were lost to slot
// exhaustion (the fixed in-flight table was full). Nil-safe.
func (t *Tracer) Drops() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// Completed returns how many records have been retired to the ring
// (monotone; the ring retains the most recent capacity's worth).
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	return t.completed.Load()
}

// lookup finds id's in-flight slot, optionally acquiring a free one.
// Linear probing over a short window bounds the cost; a full window
// drops the trace (counted) rather than degrading the hot path.
func (t *Tracer) lookup(id uint64, acquire bool) *slot {
	h := hash64(id)
	for i := uint64(0); i < 16; i++ {
		s := &t.slots[(h+i)&t.slotMask]
		cur := s.id.Load()
		if cur == id {
			return s
		}
		if cur == 0 && acquire {
			if s.id.CompareAndSwap(0, id) {
				// Publish-then-reset: a concurrent same-id event between
				// the CAS and the reset can smear one record's tallies
				// (bounded, best-effort); all fields stay individually
				// atomic so there is no memory-model race.
				s.reset()
				return s
			}
			if s.id.Load() == id {
				return s // lost the CAS to the same id
			}
		}
	}
	if acquire {
		t.drops.Add(1)
	}
	return nil
}

// OnArrive records a sampled request's arrival (the thinner's
// RequestArrived / the front's Arrive seam). Nil-safe, zero-alloc.
func (t *Tracer) OnArrive(id uint64, now time.Duration) {
	if t == nil || id == 0 || hash64(id)&t.sampleMask != 0 {
		return
	}
	s := t.lookup(id, true)
	if s == nil {
		return
	}
	s.arriveNS.Store(int64(now))
}

// OnCredit records bytes of accepted payment for a sampled id — the
// per-chunk hot path. The unsampled exit is one hash and one branch;
// the sampled path is a probe plus a handful of atomic adds. tr tags
// which transport carried the credit.
func (t *Tracer) OnCredit(id uint64, bytes int64, now time.Duration, tr Transport) {
	if t == nil || id == 0 || hash64(id)&t.sampleMask != 0 {
		return
	}
	s := t.lookup(id, true)
	if s == nil {
		return
	}
	last := s.lastCredit.Load()
	s.lastCredit.Store(int64(now))
	if s.firstCredit.Load() == 0 {
		s.firstCredit.Store(int64(now))
	}
	s.credits.Add(1)
	s.creditBytes.Add(bytes)
	s.transport.Store(uint32(tr))
	if t.hists != nil && last != 0 && int64(now) >= last {
		t.hists.CreditGap.Observe(time.Duration(int64(now) - last))
	}
}

// OnAuction records one auction round's outcome against every
// in-flight traced contender: each sampled request that had arrived
// (was contending) and is not the winner loses a round. Control-path
// only; cost is O(slot table), which is fixed and small.
func (t *Tracer) OnAuction(winner uint64, now time.Duration) {
	if t == nil {
		return
	}
	for i := range t.slots {
		s := &t.slots[i]
		id := s.id.Load()
		if id != 0 && id != winner && s.arriveNS.Load() != 0 && s.settleNS.Load() == 0 {
			s.auctionsLost.Add(1)
		}
	}
}

// OnAdmit settles a sampled request as admitted: paid is the winning
// bid (auctioned) or the pre-paid balance (direct).
func (t *Tracer) OnAdmit(id uint64, paid int64, now time.Duration, auctioned bool) {
	v := VerdictAdmitDirect
	if auctioned {
		v = VerdictAdmitAuction
	}
	t.settle(id, paid, now, v)
}

// OnEvict settles a sampled request as timeout-evicted; paid is the
// forfeited balance.
func (t *Tracer) OnEvict(id uint64, paid int64, now time.Duration) {
	t.settle(id, paid, now, VerdictEvict)
}

// OnShed settles a sampled request as brownout-shed. Shed requests
// usually have no slot yet (they are refused at arrival); the settle
// acquires one so the refusal is still visible in /trace.
func (t *Tracer) OnShed(id uint64, now time.Duration) {
	t.settle(id, 0, now, VerdictShed)
}

// OnDuplicate settles a sampled arrival rejected as a duplicate id
// (HTTP 409). The original request's in-flight record must survive,
// so the duplicate is recorded as a standalone completed record
// without disturbing the slot.
func (t *Tracer) OnDuplicate(id uint64, now time.Duration) {
	if t == nil || id == 0 || hash64(id)&t.sampleMask != 0 {
		return
	}
	t.push(Record{
		ID:       id,
		Verdict:  VerdictDuplicate,
		ArriveNS: int64(now),
		SettleNS: int64(now),
	})
}

func (t *Tracer) settle(id uint64, paid int64, now time.Duration, v Verdict) {
	if t == nil || id == 0 || hash64(id)&t.sampleMask != 0 {
		return
	}
	s := t.lookup(id, v == VerdictShed)
	if s == nil {
		return
	}
	s.settleNS.Store(int64(now))
	rec := Record{
		ID:            id,
		Verdict:       v,
		Transport:     Transport(s.transport.Load()),
		ArriveNS:      s.arriveNS.Load(),
		FirstCreditNS: s.firstCredit.Load(),
		LastCreditNS:  s.lastCredit.Load(),
		SettleNS:      int64(now),
		Credits:       s.credits.Load(),
		CreditBytes:   s.creditBytes.Load(),
		AuctionsLost:  s.auctionsLost.Load(),
		Paid:          paid,
	}
	s.id.Store(0) // free the slot; stale same-id credits now miss
	t.push(rec)
	if t.hists == nil {
		return
	}
	switch v {
	case VerdictAdmitDirect, VerdictAdmitAuction:
		if d := rec.Wait(); d > 0 || rec.ArriveNS != 0 {
			t.hists.WaitToAdmit.Observe(d)
		}
	case VerdictEvict:
		born := rec.ArriveNS
		if born == 0 || (rec.FirstCreditNS != 0 && rec.FirstCreditNS < born) {
			born = rec.FirstCreditNS
		}
		if born != 0 && rec.SettleNS >= born {
			t.hists.TimeToEvict.Observe(time.Duration(rec.SettleNS - born))
		}
	}
}

// push retires one completed record into the ring. Zero-alloc: the
// backing array is pre-sized at New and records are copied by value.
func (t *Tracer) push(rec Record) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = t.ring[:len(t.ring)+1]
	}
	t.ring[t.head&uint64(cap(t.ring)-1)] = rec
	t.head++
	t.mu.Unlock()
	t.completed.Add(1)
}

// Snapshot returns up to max completed records, newest first. id
// filters to one request id (0: all). Nil-safe (returns nil). This is
// the cold /trace read path; it allocates the result.
func (t *Tracer) Snapshot(max int, id uint64) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]Record, 0, max)
	for i := 0; i < n && len(out) < max; i++ {
		rec := &t.ring[(t.head-1-uint64(i))&uint64(cap(t.ring)-1)]
		if id != 0 && rec.ID != id {
			continue
		}
		out = append(out, *rec)
	}
	return out
}
