package config

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sec(n int) Duration { return Duration(time.Duration(n) * time.Second) }

// TestMergeThinner pins the POST patch semantics the fleet controller
// relies on: non-zero patch fields win, zero fields keep base.
func TestMergeThinner(t *testing.T) {
	base := Thinner{OrphanTimeout: sec(10), InactivityTimeout: sec(30), SweepInterval: sec(1), Shards: 8}
	patch := Thinner{OrphanTimeout: sec(4), SweepInterval: sec(2)}
	got := MergeThinner(base, patch)
	want := Thinner{OrphanTimeout: sec(4), InactivityTimeout: sec(30), SweepInterval: sec(2), Shards: 8}
	if got != want {
		t.Fatalf("MergeThinner = %+v, want %+v", got, want)
	}
	if got := MergeThinner(base, Thinner{}); got != base {
		t.Fatalf("empty patch changed base: %+v", got)
	}
}

// TestDiffThinner checks diff produces the minimal patch and that
// merge(base, diff(base, target)) == target — the controller's
// push-then-verify identity.
func TestDiffThinner(t *testing.T) {
	base := Thinner{OrphanTimeout: sec(10), InactivityTimeout: sec(30), SweepInterval: sec(1), Shards: 8}
	target := Thinner{OrphanTimeout: sec(10), InactivityTimeout: sec(20), SweepInterval: sec(2), Shards: 8}
	d := DiffThinner(base, target)
	want := Thinner{InactivityTimeout: sec(20), SweepInterval: sec(2)}
	if d != want {
		t.Fatalf("DiffThinner = %+v, want %+v", d, want)
	}
	if got := MergeThinner(base, d); got != target {
		t.Fatalf("merge(base, diff) = %+v, want %+v", got, target)
	}
	// Identical configs diff to the zero patch — the idempotent skip.
	if d := DiffThinner(base, base); d != (Thinner{}) {
		t.Fatalf("self-diff = %+v, want zero", d)
	}
}

// TestHashThinner checks the hash is stable, order-free (it hashes a
// canonical encoding), and sensitive to every field.
func TestHashThinner(t *testing.T) {
	a := Thinner{OrphanTimeout: sec(10), InactivityTimeout: sec(30), SweepInterval: sec(1), Shards: 8}
	if HashThinner(a) != HashThinner(a) {
		t.Fatal("hash not deterministic")
	}
	if len(HashThinner(a)) != 64 || len(ShortHashThinner(a)) != 12 {
		t.Fatalf("hash lengths: %d / %d", len(HashThinner(a)), len(ShortHashThinner(a)))
	}
	mutations := []Thinner{
		{OrphanTimeout: sec(9), InactivityTimeout: sec(30), SweepInterval: sec(1), Shards: 8},
		{OrphanTimeout: sec(10), InactivityTimeout: sec(29), SweepInterval: sec(1), Shards: 8},
		{OrphanTimeout: sec(10), InactivityTimeout: sec(30), SweepInterval: sec(2), Shards: 8},
		{OrphanTimeout: sec(10), InactivityTimeout: sec(30), SweepInterval: sec(1), Shards: 16},
	}
	for i, m := range mutations {
		if HashThinner(m) == HashThinner(a) {
			t.Errorf("mutation %d did not move the hash", i)
		}
	}
}

// TestThinnerStatusRoundTrip checks the /control/config response shape:
// flattened thinner fields plus config_hash, decodable back into both
// the status struct and (via DecodeThinner) a plain patch.
func TestThinnerStatusRoundTrip(t *testing.T) {
	cfg := Thinner{OrphanTimeout: sec(10), InactivityTimeout: sec(30), SweepInterval: sec(1), Shards: 8}
	st := StatusOf(cfg)
	if st.ConfigHash != HashThinner(cfg) {
		t.Fatal("StatusOf hash mismatch")
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"config_hash"`) || !strings.Contains(string(b), `"orphan_timeout"`) {
		t.Fatalf("status encoding not flattened: %s", b)
	}
	var back ThinnerStatus
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Thinner != cfg || back.ConfigHash != st.ConfigHash {
		t.Fatalf("round trip: %+v", back)
	}
	// A captured GET body POSTs back as a restore: DecodeThinner
	// tolerates (and ignores) config_hash.
	patch, err := DecodeThinner(strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("DecodeThinner on a status body: %v", err)
	}
	if patch != cfg {
		t.Fatalf("restore patch = %+v, want %+v", patch, cfg)
	}
	// Strictness survives: a typoed knob still fails loudly.
	if _, err := DecodeThinner(strings.NewReader(`{"orphan_timeut":"1s"}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
}
