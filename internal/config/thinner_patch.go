package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// This file holds the patch/diff/hash helpers the fleet controller
// (internal/fleetctl) builds on. A rollout is expressed as a Thinner
// patch (zero fields mean "unchanged", exactly the /control/config
// POST contract); each front's convergence is verified by comparing
// the config_hash the front reports against the hash of the merged
// target computed client-side — both sides canonicalize with the same
// encoder, so the comparison is a pure string equality.

// HashThinner returns the hex SHA-256 of a thinner section's canonical
// encoding (the same two-space-indent, fixed-field-order, trailing-
// newline form Encode uses for whole scenarios). This is the
// config_hash /control/config and /stats report, and the identity the
// fleet controller converges on.
func HashThinner(t Thinner) string {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		// Only unsupported value kinds can fail, and Thinner has none.
		panic(err)
	}
	sum := sha256.Sum256(append(b, '\n'))
	return hex.EncodeToString(sum[:])
}

// ShortHashThinner is HashThinner truncated to 12 hex characters for
// journals and dashboards.
func ShortHashThinner(t Thinner) string { return HashThinner(t)[:12] }

// MergeThinner applies patch over base with /control/config POST
// semantics: non-zero patch fields win, zero fields keep base's value.
// The result is what a front running base reports after accepting
// patch — the fleet controller hashes it to know each front's target.
func MergeThinner(base, patch Thinner) Thinner {
	out := base
	if patch.OrphanTimeout != 0 {
		out.OrphanTimeout = patch.OrphanTimeout
	}
	if patch.InactivityTimeout != 0 {
		out.InactivityTimeout = patch.InactivityTimeout
	}
	if patch.SweepInterval != 0 {
		out.SweepInterval = patch.SweepInterval
	}
	if patch.Shards != 0 {
		out.Shards = patch.Shards
	}
	return out
}

// DiffThinner returns the minimal patch that takes base to target:
// fields already equal come back zero ("unchanged"). A zero return
// means base is already at target — the idempotent-push case the
// controller skips. Note the patch never asks to zero a field; the
// POST contract cannot express that, and effective configs (defaults
// applied) have no zero fields to begin with.
func DiffThinner(base, target Thinner) Thinner {
	var d Thinner
	if target.OrphanTimeout != 0 && target.OrphanTimeout != base.OrphanTimeout {
		d.OrphanTimeout = target.OrphanTimeout
	}
	if target.InactivityTimeout != 0 && target.InactivityTimeout != base.InactivityTimeout {
		d.InactivityTimeout = target.InactivityTimeout
	}
	if target.SweepInterval != 0 && target.SweepInterval != base.SweepInterval {
		d.SweepInterval = target.SweepInterval
	}
	if target.Shards != 0 && target.Shards != base.Shards {
		d.Shards = target.Shards
	}
	return d
}

// ThinnerStatus is the body of /control/config responses (GET and a
// successful POST): the effective thinner section flattened alongside
// its canonical hash, so controllers verify convergence by string
// comparison instead of re-canonicalizing the section client-side.
type ThinnerStatus struct {
	Thinner
	ConfigHash string `json:"config_hash"`
}

// StatusOf pairs a thinner section with its canonical hash.
func StatusOf(t Thinner) ThinnerStatus {
	return ThinnerStatus{Thinner: t, ConfigHash: HashThinner(t)}
}
