// Package config defines the versioned, declarative scenario schema
// that drives every speak-up deployment from one description: the
// simulator's figure sweeps (internal/exp loads its base scenarios
// from configs/), ad-hoc runs (cmd/repro -scenario), and the live
// stack (cmd/thinnerd and cmd/loadgen consume the same files, with
// command-line flags acting as overrides).
//
// The schema is a JSON mirror of scenario.Config. Conversion is
// lossless in both directions: FromScenario followed by Config returns
// the exact same scenario.Config value, and Encode produces one
// canonical byte encoding (two-space indent, fixed field order,
// durations as Go duration strings, trailing newline) so a decoded
// file re-encodes byte-stably and a scenario has exactly one Hash.
//
// Decoding is strict — unknown fields, trailing data, and unsupported
// versions are errors — so a typo in a knob name fails loudly instead
// of silently running the default.
package config

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/core"
	"speakup/internal/faults"
	"speakup/internal/scenario"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Duration marshals as a Go duration string ("250ms", "1m30s"). The
// zero value is omitted from encodings (omitempty applies).
type Duration time.Duration

// D returns the value as a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON encodes the duration as its canonical Go string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a Go duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Scenario is the root document: one experiment deployment.
type Scenario struct {
	// Version must be 1.
	Version int `json:"version"`
	// Name labels the scenario in reports and hashes (not part of the
	// simulation input).
	Name string `json:"name,omitempty"`
	// Notes is free-form documentation.
	Notes string `json:"notes,omitempty"`

	Seed     int64    `json:"seed,omitempty"`
	Duration Duration `json:"duration,omitempty"`
	Warmup   Duration `json:"warmup,omitempty"`
	// Capacity is the origin's service rate in requests/second.
	Capacity float64 `json:"capacity"`
	// Mode selects the front-end policy: "off", "auction",
	// "random-drop", "hetero", or "profiling". Empty means "off".
	Mode string `json:"mode"`
	// Transport selects the listener live load generators drive:
	// "http" (default when empty) or "wire", the binary framed payment
	// transport. The simulator ignores it.
	Transport string        `json:"transport,omitempty"`
	Groups    []ClientGroup `json:"groups"`

	Bottlenecks []Bottleneck `json:"bottlenecks,omitempty"`
	Bystander   *Bystander   `json:"bystander,omitempty"`

	TrunkRate   float64  `json:"trunk_rate,omitempty"`
	TrunkDelay  Duration `json:"trunk_delay,omitempty"`
	TrunkQueue  int      `json:"trunk_queue,omitempty"`
	AccessQueue int      `json:"access_queue,omitempty"`

	Sizes      *Sizes      `json:"sizes,omitempty"`
	Thinner    *Thinner    `json:"thinner,omitempty"`
	Hetero     *Hetero     `json:"hetero,omitempty"`
	RandomDrop *RandomDrop `json:"random_drop,omitempty"`
	Profiler   *Profiler   `json:"profiler,omitempty"`

	// Faults is the deterministic fault-injection plan (internal/faults):
	// each event is kind × target × window × magnitude. Absent means no
	// faults — the original model, byte for byte.
	Faults []Fault `json:"faults,omitempty"`
}

// ClientGroup mirrors scenario.ClientGroup.
type ClientGroup struct {
	Name           string   `json:"name,omitempty"`
	Count          int      `json:"count"`
	Good           bool     `json:"good,omitempty"`
	Strategy       string   `json:"strategy,omitempty"`
	Aggressiveness float64  `json:"aggressiveness,omitempty"`
	Bandwidth      float64  `json:"bandwidth,omitempty"`
	LinkDelay      Duration `json:"link_delay,omitempty"`
	Lambda         float64  `json:"lambda,omitempty"`
	Window         int      `json:"window,omitempty"`
	Bottleneck     int      `json:"bottleneck,omitempty"`
	PayConns       int      `json:"pay_conns,omitempty"`
	Work           Duration `json:"work,omitempty"`
	RetryBudget    int      `json:"retry_budget,omitempty"`
	RetryBase      Duration `json:"retry_base,omitempty"`
	RetryCap       Duration `json:"retry_cap,omitempty"`
	Deadline       Duration `json:"deadline,omitempty"`
}

// Fault mirrors faults.Event — one scheduled failure. Kinds:
// "link-loss" (magnitude = drop probability), "link-jitter"
// (magnitude = max extra delay in seconds), "partition", and the
// targetless "origin-stall" and "origin-crash". Link targets are
// "trunk", "access:<group>", or "bottleneck:<n>".
type Fault struct {
	Kind      string   `json:"kind"`
	Target    string   `json:"target,omitempty"`
	At        Duration `json:"at,omitempty"`
	Duration  Duration `json:"duration"`
	Magnitude float64  `json:"magnitude,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
}

// Bottleneck mirrors scenario.Bottleneck.
type Bottleneck struct {
	Rate       float64  `json:"rate"`
	Delay      Duration `json:"delay,omitempty"`
	QueueBytes int      `json:"queue_bytes,omitempty"`
}

// Bystander mirrors scenario.Bystander.
type Bystander struct {
	FileSize     int      `json:"file_size"`
	MaxDownloads int      `json:"max_downloads,omitempty"`
	Bandwidth    float64  `json:"bandwidth,omitempty"`
	LinkDelay    Duration `json:"link_delay,omitempty"`
}

// Sizes mirrors appsim.Sizes (protocol message sizes in bytes).
type Sizes struct {
	Initial  int `json:"initial,omitempty"`
	Please   int `json:"please,omitempty"`
	Request  int `json:"request,omitempty"`
	Post     int `json:"post,omitempty"`
	Continue int `json:"continue,omitempty"`
	Response int `json:"response,omitempty"`
	Busy     int `json:"busy,omitempty"`
	Retry    int `json:"retry,omitempty"`
}

// Thinner mirrors core.Config — the auction policy's knobs. It doubles
// as the body of thinnerd's /control/config endpoint, where zero
// fields mean "leave unchanged" and a Shards change is rejected (the
// bid table is built around its shard count at startup).
type Thinner struct {
	OrphanTimeout     Duration `json:"orphan_timeout,omitempty"`
	InactivityTimeout Duration `json:"inactivity_timeout,omitempty"`
	SweepInterval     Duration `json:"sweep_interval,omitempty"`
	Shards            int      `json:"shards,omitempty"`
}

// DecodeThinner strictly decodes one Thinner section — the body of
// thinnerd's /control/config endpoint. Unknown fields and trailing
// data are errors, so a typoed knob cannot silently no-op. The one
// tolerated extra is config_hash, so a captured GET response can be
// POSTed straight back as a restore; the hash value itself is ignored
// (the body is a patch — its identity is decided by the receiver).
func DecodeThinner(r io.Reader) (Thinner, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t ThinnerStatus
	if err := dec.Decode(&t); err != nil {
		return Thinner{}, fmt.Errorf("config: thinner section: %w", err)
	}
	if dec.More() {
		return Thinner{}, fmt.Errorf("config: trailing data after thinner section")
	}
	return t.Thinner, nil
}

// ThinnerFromCore converts a core config back to its schema section
// (the shape /control/config reports).
func ThinnerFromCore(c core.Config) Thinner {
	return Thinner{
		OrphanTimeout:     Duration(c.OrphanTimeout),
		InactivityTimeout: Duration(c.InactivityTimeout),
		SweepInterval:     Duration(c.SweepInterval),
		Shards:            c.Shards,
	}
}

// Core converts the section to the thinner core's config type.
func (t Thinner) Core() core.Config {
	return core.Config{
		OrphanTimeout:     t.OrphanTimeout.D(),
		InactivityTimeout: t.InactivityTimeout.D(),
		SweepInterval:     t.SweepInterval.D(),
		Shards:            t.Shards,
	}
}

// Hetero mirrors core.HeteroConfig.
type Hetero struct {
	Tau           Duration `json:"tau"`
	AbortAfter    Duration `json:"abort_after,omitempty"`
	OrphanTimeout Duration `json:"orphan_timeout,omitempty"`
}

// RandomDrop mirrors core.RandomDropConfig.
type RandomDrop struct {
	Capacity   float64  `json:"capacity,omitempty"`
	AdaptEvery Duration `json:"adapt_every,omitempty"`
	MaxQueue   int      `json:"max_queue,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
}

// Profiler mirrors core.ProfilerConfig.
type Profiler struct {
	BaselineRate   float64  `json:"baseline_rate"`
	Slack          float64  `json:"slack,omitempty"`
	Burst          float64  `json:"burst,omitempty"`
	BlacklistAfter int      `json:"blacklist_after,omitempty"`
	BlacklistFor   Duration `json:"blacklist_for,omitempty"`
}

// ParseMode maps a schema mode string to the front-end policy. The
// empty string selects ModeOff, matching scenario.Config's zero value.
func ParseMode(s string) (appsim.Mode, error) {
	switch s {
	case "", "off":
		return appsim.ModeOff, nil
	case "auction":
		return appsim.ModeAuction, nil
	case "random-drop":
		return appsim.ModeRandomDrop, nil
	case "hetero":
		return appsim.ModeHetero, nil
	case "profiling":
		return appsim.ModeProfiling, nil
	}
	return 0, fmt.Errorf("config: unknown mode %q (have off, auction, random-drop, hetero, profiling)", s)
}

// FromScenario converts a scenario.Config to its schema document.
// Sections that are entirely zero are omitted, so the round trip
// through Config is exact.
func FromScenario(sc scenario.Config) Scenario {
	s := Scenario{
		Version:     Version,
		Seed:        sc.Seed,
		Duration:    Duration(sc.Duration),
		Warmup:      Duration(sc.Warmup),
		Capacity:    sc.Capacity,
		Mode:        sc.Mode.String(),
		Transport:   sc.Transport,
		TrunkRate:   sc.TrunkRate,
		TrunkDelay:  Duration(sc.TrunkDelay),
		TrunkQueue:  sc.TrunkQueue,
		AccessQueue: sc.AccessQueue,
	}
	for _, g := range sc.Groups {
		s.Groups = append(s.Groups, ClientGroup{
			Name:           g.Name,
			Count:          g.Count,
			Good:           g.Good,
			Strategy:       g.Strategy,
			Aggressiveness: g.Aggressiveness,
			Bandwidth:      g.Bandwidth,
			LinkDelay:      Duration(g.LinkDelay),
			Lambda:         g.Lambda,
			Window:         g.Window,
			Bottleneck:     g.Bottleneck,
			PayConns:       g.PayConns,
			Work:           Duration(g.Work),
			RetryBudget:    g.RetryBudget,
			RetryBase:      Duration(g.RetryBase),
			RetryCap:       Duration(g.RetryCap),
			Deadline:       Duration(g.Deadline),
		})
	}
	for _, f := range sc.Faults {
		s.Faults = append(s.Faults, Fault{
			Kind:      string(f.Kind),
			Target:    f.Target,
			At:        Duration(f.At),
			Duration:  Duration(f.Duration),
			Magnitude: f.Magnitude,
			Seed:      f.Seed,
		})
	}
	for _, b := range sc.Bottlenecks {
		s.Bottlenecks = append(s.Bottlenecks, Bottleneck{
			Rate: b.Rate, Delay: Duration(b.Delay), QueueBytes: b.QueueBytes,
		})
	}
	if sc.BystanderH != nil {
		s.Bystander = &Bystander{
			FileSize:     sc.BystanderH.FileSize,
			MaxDownloads: sc.BystanderH.MaxDownloads,
			Bandwidth:    sc.BystanderH.Bandwidth,
			LinkDelay:    Duration(sc.BystanderH.LinkDelay),
		}
	}
	if sc.Sizes != (appsim.Sizes{}) {
		s.Sizes = &Sizes{
			Initial: sc.Sizes.Initial, Please: sc.Sizes.Please,
			Request: sc.Sizes.Request, Post: sc.Sizes.Post,
			Continue: sc.Sizes.Continue, Response: sc.Sizes.Response,
			Busy: sc.Sizes.Busy, Retry: sc.Sizes.Retry,
		}
	}
	if sc.Thinner != (core.Config{}) {
		s.Thinner = &Thinner{
			OrphanTimeout:     Duration(sc.Thinner.OrphanTimeout),
			InactivityTimeout: Duration(sc.Thinner.InactivityTimeout),
			SweepInterval:     Duration(sc.Thinner.SweepInterval),
			Shards:            sc.Thinner.Shards,
		}
	}
	if sc.Hetero != (core.HeteroConfig{}) {
		s.Hetero = &Hetero{
			Tau:           Duration(sc.Hetero.Tau),
			AbortAfter:    Duration(sc.Hetero.AbortAfter),
			OrphanTimeout: Duration(sc.Hetero.OrphanTimeout),
		}
	}
	if sc.RandomDrop != (core.RandomDropConfig{}) {
		s.RandomDrop = &RandomDrop{
			Capacity:   sc.RandomDrop.Capacity,
			AdaptEvery: Duration(sc.RandomDrop.AdaptEvery),
			MaxQueue:   sc.RandomDrop.MaxQueue,
			Seed:       sc.RandomDrop.Seed,
		}
	}
	if sc.Profiler != (core.ProfilerConfig{}) {
		s.Profiler = &Profiler{
			BaselineRate:   sc.Profiler.BaselineRate,
			Slack:          sc.Profiler.Slack,
			Burst:          sc.Profiler.Burst,
			BlacklistAfter: sc.Profiler.BlacklistAfter,
			BlacklistFor:   Duration(sc.Profiler.BlacklistFor),
		}
	}
	return s
}

// Config converts the document back to the simulator's configuration.
// It fails on an unsupported version or an unknown mode; deeper
// validation (group strategies, bottleneck references) is Validate's
// job, mirroring scenario.Config.Validate.
func (s Scenario) Config() (scenario.Config, error) {
	if s.Version != Version {
		return scenario.Config{}, fmt.Errorf("config: unsupported schema version %d (this build reads version %d)", s.Version, Version)
	}
	mode, err := ParseMode(s.Mode)
	if err != nil {
		return scenario.Config{}, err
	}
	sc := scenario.Config{
		Seed:        s.Seed,
		Duration:    s.Duration.D(),
		Warmup:      s.Warmup.D(),
		Capacity:    s.Capacity,
		Mode:        mode,
		Transport:   s.Transport,
		TrunkRate:   s.TrunkRate,
		TrunkDelay:  s.TrunkDelay.D(),
		TrunkQueue:  s.TrunkQueue,
		AccessQueue: s.AccessQueue,
	}
	for _, g := range s.Groups {
		sc.Groups = append(sc.Groups, scenario.ClientGroup{
			Name:           g.Name,
			Count:          g.Count,
			Good:           g.Good,
			Strategy:       g.Strategy,
			Aggressiveness: g.Aggressiveness,
			Bandwidth:      g.Bandwidth,
			LinkDelay:      g.LinkDelay.D(),
			Lambda:         g.Lambda,
			Window:         g.Window,
			Bottleneck:     g.Bottleneck,
			PayConns:       g.PayConns,
			Work:           g.Work.D(),
			RetryBudget:    g.RetryBudget,
			RetryBase:      g.RetryBase.D(),
			RetryCap:       g.RetryCap.D(),
			Deadline:       g.Deadline.D(),
		})
	}
	for _, f := range s.Faults {
		sc.Faults = append(sc.Faults, faults.Event{
			Kind:      faults.Kind(f.Kind),
			Target:    f.Target,
			At:        f.At.D(),
			Duration:  f.Duration.D(),
			Magnitude: f.Magnitude,
			Seed:      f.Seed,
		})
	}
	for _, b := range s.Bottlenecks {
		sc.Bottlenecks = append(sc.Bottlenecks, scenario.Bottleneck{
			Rate: b.Rate, Delay: b.Delay.D(), QueueBytes: b.QueueBytes,
		})
	}
	if s.Bystander != nil {
		sc.BystanderH = &scenario.Bystander{
			FileSize:     s.Bystander.FileSize,
			MaxDownloads: s.Bystander.MaxDownloads,
			Bandwidth:    s.Bystander.Bandwidth,
			LinkDelay:    s.Bystander.LinkDelay.D(),
		}
	}
	if s.Sizes != nil {
		sc.Sizes = appsim.Sizes{
			Initial: s.Sizes.Initial, Please: s.Sizes.Please,
			Request: s.Sizes.Request, Post: s.Sizes.Post,
			Continue: s.Sizes.Continue, Response: s.Sizes.Response,
			Busy: s.Sizes.Busy, Retry: s.Sizes.Retry,
		}
	}
	if s.Thinner != nil {
		sc.Thinner = s.Thinner.Core()
	}
	if s.Hetero != nil {
		sc.Hetero = core.HeteroConfig{
			Tau:           s.Hetero.Tau.D(),
			AbortAfter:    s.Hetero.AbortAfter.D(),
			OrphanTimeout: s.Hetero.OrphanTimeout.D(),
		}
	}
	if s.RandomDrop != nil {
		sc.RandomDrop = core.RandomDropConfig{
			Capacity:   s.RandomDrop.Capacity,
			AdaptEvery: s.RandomDrop.AdaptEvery.D(),
			MaxQueue:   s.RandomDrop.MaxQueue,
			Seed:       s.RandomDrop.Seed,
		}
	}
	if s.Profiler != nil {
		sc.Profiler = core.ProfilerConfig{
			BaselineRate:   s.Profiler.BaselineRate,
			Slack:          s.Profiler.Slack,
			Burst:          s.Profiler.Burst,
			BlacklistAfter: s.Profiler.BlacklistAfter,
			BlacklistFor:   s.Profiler.BlacklistFor.D(),
		}
	}
	return sc, nil
}

// Validate checks the document end to end: schema version, mode, and
// everything scenario.Config.Validate rejects (capacity, bottleneck
// references, adversary declarations).
func (s Scenario) Validate() error {
	sc, err := s.Config()
	if err != nil {
		return err
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("config: scenario %q declares no client groups", s.Name)
	}
	return sc.Validate()
}

// Decode reads one scenario document strictly: unknown fields,
// malformed durations, and trailing data are errors.
func Decode(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	if dec.More() {
		return Scenario{}, fmt.Errorf("config: trailing data after scenario document")
	}
	return s, nil
}

// Encode renders the canonical byte encoding: two-space indent, struct
// field order, trailing newline. Canonical files re-encode byte-stably
// (the round-trip test pins this for every shipped config).
func Encode(s Scenario) []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Only unsupported value kinds can fail here, and the schema has
		// none.
		panic(err)
	}
	return append(b, '\n')
}

// Hash returns the hex SHA-256 of the scenario's canonical encoding —
// the identity BENCH entries and telemetry use to attribute results to
// an exact configuration.
func Hash(s Scenario) string {
	sum := sha256.Sum256(Encode(s))
	return hex.EncodeToString(sum[:])
}

// ShortHash is Hash truncated to 12 hex characters for display.
func ShortHash(s Scenario) string { return Hash(s)[:12] }

// Load reads, strictly decodes, and validates a scenario file from
// disk.
func Load(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Resolve loads a scenario by name the way the commands do: a path
// that exists on disk wins; otherwise the name is looked up in fsys
// (the embedded configs/ set), where the ".json" suffix is optional.
func Resolve(fsys fs.FS, name string) (Scenario, error) {
	s, err := Load(name)
	if err == nil {
		return s, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return Scenario{}, fmt.Errorf("%s: %w", name, err)
	}
	embedded := name
	if !strings.HasSuffix(embedded, ".json") {
		embedded += ".json"
	}
	s, err = LoadFS(fsys, embedded)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: not a file on disk and not an embedded scenario: %w", name, err)
	}
	return s, nil
}

// LoadFS is Load over an fs.FS (the embedded configs/ file set).
func LoadFS(fsys fs.FS, name string) (Scenario, error) {
	b, err := fs.ReadFile(fsys, name)
	if err != nil {
		return Scenario{}, err
	}
	s, err := Decode(bytes.NewReader(b))
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", name, err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}
