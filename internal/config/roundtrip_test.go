package config_test

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"speakup/configs"
	"speakup/internal/config"
)

// TestShippedConfigsRoundTrip is the schema's property test over every
// shipped scenario file: each configs/*.json must decode strictly,
// re-encode byte-identically (the files are canonical), validate, and
// survive the document -> scenario.Config -> document round trip
// losslessly. Together with the figure goldens (which now run from
// these files) this pins that the config layer cannot drift the
// simulations.
func TestShippedConfigsRoundTrip(t *testing.T) {
	names, err := fs.Glob(configs.FS, "*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 14 {
		t.Fatalf("only %d embedded scenario files; the driver bases alone are 14", len(names))
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			raw, err := fs.ReadFile(configs.FS, name)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := config.Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("strict decode: %v", err)
			}
			if got := config.Encode(doc); !bytes.Equal(got, raw) {
				t.Errorf("file is not canonical: re-encoding differs\n--- on disk ---\n%s--- re-encoded ---\n%s", raw, got)
			}
			if err := doc.Validate(); err != nil {
				t.Errorf("validate: %v", err)
			}
			sc, err := doc.Config()
			if err != nil {
				t.Fatalf("to scenario.Config: %v", err)
			}
			back := config.FromScenario(sc)
			back.Name, back.Notes = doc.Name, doc.Notes
			if !reflect.DeepEqual(back, doc) {
				t.Errorf("lossy round trip:\ndecoded: %+v\nre-derived: %+v", doc, back)
			}
			// One canonical encoding means one stable identity.
			if h1, h2 := config.Hash(doc), config.Hash(back); h1 != h2 {
				t.Errorf("hash not stable across round trip: %s vs %s", h1, h2)
			}
			if sh := config.ShortHash(doc); len(sh) != 12 {
				t.Errorf("short hash %q is not 12 hex chars", sh)
			}
		})
	}
}

// TestDecodeRejects pins the strictness guarantees: typos and junk
// fail loudly instead of silently running defaults.
func TestDecodeRejects(t *testing.T) {
	for _, tc := range []struct{ name, in, wantErr string }{
		{"unknown field", `{"version":1,"capacty":5,"mode":"off","groups":[]}`, "unknown field"},
		{"trailing data", `{"version":1,"capacity":5,"mode":"off","groups":[]}{}`, "trailing data"},
		{"bad duration", `{"version":1,"duration":"fast","capacity":5,"mode":"off","groups":[]}`, "duration"},
		{"numeric duration", `{"version":1,"duration":30,"capacity":5,"mode":"off","groups":[]}`, "duration must be a string"},
	} {
		_, err := config.Decode(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestValidateRejects covers the version/mode/content gates above
// scenario.Config.Validate.
func TestValidateRejects(t *testing.T) {
	base := func() config.Scenario {
		return config.Scenario{
			Version:  config.Version,
			Capacity: 10,
			Mode:     "auction",
			Groups:   []config.ClientGroup{{Name: "g", Count: 1, Good: true}},
		}
	}
	for _, tc := range []struct {
		name    string
		mutate  func(*config.Scenario)
		wantErr string
	}{
		{"future version", func(s *config.Scenario) { s.Version = 2 }, "unsupported schema version"},
		{"unknown mode", func(s *config.Scenario) { s.Mode = "turbo" }, "unknown mode"},
		{"no groups", func(s *config.Scenario) { s.Groups = nil }, "no client groups"},
		{"zero capacity", func(s *config.Scenario) { s.Capacity = 0 }, "Capacity"},
		{"unknown strategy", func(s *config.Scenario) {
			s.Groups[0].Good = false
			s.Groups[0].Strategy = "shrew"
		}, "shrew"},
		{"bad bottleneck ref", func(s *config.Scenario) { s.Groups[0].Bottleneck = 3 }, "bottleneck"},
	} {
		s := base()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base scenario should validate: %v", err)
	}
}

// TestDecodeThinner covers the /control/config body decoder.
func TestDecodeThinner(t *testing.T) {
	th, err := config.DecodeThinner(strings.NewReader(`{"sweep_interval":"250ms","shards":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if th.SweepInterval.D() != 250*time.Millisecond || th.Shards != 4 {
		t.Fatalf("decoded %+v", th)
	}
	for _, tc := range []struct{ in, wantErr string }{
		{`{"sweep_intervl":"250ms"}`, "unknown field"},
		{`{"sweep_interval":"250ms"} extra`, "trailing data"},
		{`not json`, "invalid character"},
	} {
		if _, err := config.DecodeThinner(strings.NewReader(tc.in)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%q: err = %v, want substring %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestResolve checks command-style resolution: disk path first, then
// the embedded set with an optional .json suffix.
func TestResolve(t *testing.T) {
	if _, err := config.Resolve(configs.FS, "fig8"); err != nil {
		t.Fatalf("embedded by bare name: %v", err)
	}
	if _, err := config.Resolve(configs.FS, "fig8.json"); err != nil {
		t.Fatalf("embedded by file name: %v", err)
	}
	if _, err := config.Resolve(configs.FS, "no-such-scenario"); err == nil ||
		!strings.Contains(err.Error(), "not an embedded scenario") {
		t.Fatalf("missing name: err = %v", err)
	}

	dir := t.TempDir()
	doc, err := config.LoadFS(configs.FS, "example.json")
	if err != nil {
		t.Fatal(err)
	}
	doc.Name = "on-disk"
	path := filepath.Join(dir, "mine.json")
	if err := os.WriteFile(path, config.Encode(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := config.Resolve(configs.FS, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "on-disk" {
		t.Fatalf("disk file did not win: %+v", got.Name)
	}

	// A broken disk file is an error, not a silent fall-through to the
	// embedded set.
	bad := filepath.Join(dir, "fig8.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := config.Resolve(configs.FS, bad); err == nil {
		t.Fatal("corrupt disk file resolved anyway")
	}
}
