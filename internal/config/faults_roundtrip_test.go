package config_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"speakup/internal/config"
	"speakup/internal/faults"
)

// TestFaultsSectionRoundTrip exercises every fault kind and the client
// retry knobs through the full document <-> scenario.Config cycle:
// strict decode, canonical re-encode, validate, and lossless
// conversion both ways.
func TestFaultsSectionRoundTrip(t *testing.T) {
	src := `{
  "version": 1,
  "name": "faulty",
  "seed": 7,
  "duration": "30s",
  "capacity": 30,
  "mode": "auction",
  "groups": [
    {
      "name": "good",
      "count": 5,
      "good": true,
      "retry_budget": 3,
      "retry_base": "250ms",
      "retry_cap": "2s",
      "deadline": "10s"
    },
    {
      "name": "bad",
      "count": 5
    }
  ],
  "bottlenecks": [
    {
      "rate": 5000000,
      "delay": "1ms"
    }
  ],
  "faults": [
    {
      "kind": "link-loss",
      "target": "trunk",
      "at": "2s",
      "duration": "5s",
      "magnitude": 0.25
    },
    {
      "kind": "link-jitter",
      "target": "access:good",
      "at": "3s",
      "duration": "4s",
      "magnitude": 0.05,
      "seed": 9
    },
    {
      "kind": "partition",
      "target": "bottleneck:1",
      "at": "8s",
      "duration": "2s"
    },
    {
      "kind": "origin-stall",
      "at": "12s",
      "duration": "3s"
    },
    {
      "kind": "origin-crash",
      "at": "20s",
      "duration": "1s"
    }
  ]
}
`
	doc, err := config.Decode(strings.NewReader(src))
	if err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	if got := config.Encode(doc); string(got) != src {
		t.Errorf("not canonical:\n--- source ---\n%s--- re-encoded ---\n%s", src, got)
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	sc, err := doc.Config()
	if err != nil {
		t.Fatalf("to scenario.Config: %v", err)
	}
	wantPlan := faults.Plan{
		{Kind: faults.LinkLoss, Target: "trunk", At: 2 * time.Second, Duration: 5 * time.Second, Magnitude: 0.25},
		{Kind: faults.LinkJitter, Target: "access:good", At: 3 * time.Second, Duration: 4 * time.Second, Magnitude: 0.05, Seed: 9},
		{Kind: faults.Partition, Target: "bottleneck:1", At: 8 * time.Second, Duration: 2 * time.Second},
		{Kind: faults.OriginStall, At: 12 * time.Second, Duration: 3 * time.Second},
		{Kind: faults.OriginCrash, At: 20 * time.Second, Duration: time.Second},
	}
	if !reflect.DeepEqual(sc.Faults, wantPlan) {
		t.Errorf("plan mismatch:\ngot:  %+v\nwant: %+v", sc.Faults, wantPlan)
	}
	g := sc.Groups[0]
	if g.RetryBudget != 3 || g.RetryBase != 250*time.Millisecond ||
		g.RetryCap != 2*time.Second || g.Deadline != 10*time.Second {
		t.Errorf("retry knobs lost: %+v", g)
	}
	back := config.FromScenario(sc)
	back.Name = doc.Name
	if !reflect.DeepEqual(back, doc) {
		t.Errorf("lossy round trip:\ndecoded:    %+v\nre-derived: %+v", doc, back)
	}
	if h1, h2 := config.Hash(doc), config.Hash(back); h1 != h2 {
		t.Errorf("hash not stable: %s vs %s", h1, h2)
	}
}

// TestFaultsValidateRejects checks scenario-shape errors surface
// through the document layer: bad targets, bad magnitudes, and origin
// faults under the hetero mode (whose suspend accounting assumes an
// unfrozen origin).
func TestFaultsValidateRejects(t *testing.T) {
	base := `{
  "version": 1,
  "capacity": 30,
  "mode": "%s",
  "groups": [
    {
      "name": "good",
      "count": 5,
      "good": true
    }
  ],
  "faults": [
    %s
  ]
}
`
	cases := []struct {
		mode, fault, want string
	}{
		{"auction", `{"kind": "link-loss", "target": "access:nobody", "duration": "1s", "magnitude": 0.5}`, "no client group"},
		{"auction", `{"kind": "link-loss", "target": "trunk", "duration": "1s", "magnitude": 2}`, "drop probability"},
		{"auction", `{"kind": "sharknado", "duration": "1s"}`, "unknown kind"},
		{"hetero", `{"kind": "origin-stall", "duration": "1s"}`, "hetero"},
	}
	for i, tc := range cases {
		src := strings.NewReader(strings.ReplaceAll(
			strings.Replace(base, "%s", tc.mode, 1), "%s", tc.fault))
		doc, err := config.Decode(src)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		err = doc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: err = %v, want mention of %q", i, err, tc.want)
		}
	}
}
