package fleetwatch

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/faults"
	"speakup/internal/web"
)

// testFront runs a live web.Front on its own listener.
type testFront struct {
	front *web.Front
	srv   *http.Server
	ln    net.Listener
}

func startFront(t *testing.T, addr string) *testFront {
	t.Helper()
	front := web.NewFront(web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		return []byte("ok"), nil
	}), web.Config{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: front}
	go srv.Serve(ln)
	return &testFront{front: front, srv: srv, ln: ln}
}

func (f *testFront) url() string { return "http://" + f.ln.Addr().String() }

func (f *testFront) stop() {
	f.srv.Close()
	f.front.Close()
}

func serveOne(t *testing.T, base string, id int) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/request?id=%d", base, id))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request: status %d", resp.StatusCode)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWatcherAggregatesAndSurvivesDisconnect is the PR's acceptance
// scenario: a watcher over two live fronts aggregates both, keeps the
// fleet view (with stale numbers) when one front dies mid-run, and
// folds the front back in when it returns on the same address.
func TestWatcherAggregatesAndSurvivesDisconnect(t *testing.T) {
	f1 := startFront(t, "127.0.0.1:0")
	defer f1.stop()
	f2 := startFront(t, "127.0.0.1:0")
	addr2 := f2.ln.Addr().String()

	serveOne(t, f1.url(), 1)
	serveOne(t, f2.url(), 2)

	w := New(Config{
		Fronts:   []string{f1.url(), f2.url()},
		Interval: 20 * time.Millisecond,
		Backoff:  faults.Backoff{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond},
	})
	w.Start(context.Background())
	defer w.Stop()

	waitFor(t, "both fronts connected with their admissions visible", func() bool {
		a := w.Aggregate()
		return a.Connected == 2 && a.Admitted == 2
	})
	if a := w.Aggregate(); a.Fronts != 2 {
		t.Fatalf("Fronts = %d, want 2", a.Fronts)
	}

	// Kill front 2 mid-run. The watcher must notice, keep running, and
	// keep front 2's last snapshot in the fleet totals.
	f2.stop()
	waitFor(t, "front 2 marked disconnected", func() bool {
		a := w.Aggregate()
		return a.Connected == 1
	})
	if a := w.Aggregate(); a.Fronts != 2 || a.Admitted != 2 {
		t.Fatalf("after disconnect: %+v; want 2 fronts and the stale admission retained", a)
	}
	states := w.States()
	if states[1].Connected || states[1].Drops == 0 {
		t.Fatalf("front 2 state not marked dropped: %+v", states[1])
	}

	// Bring a front back on the same address; the watcher's backoff
	// loop must redial and fold it in without intervention.
	var f3 *testFront
	waitFor(t, "relisten on "+addr2, func() bool {
		ln, err := net.Listen("tcp", addr2)
		if err != nil {
			return false
		}
		ln.Close() // race-free enough for a test: immediately rebind below
		f3 = startFront(t, addr2)
		return true
	})
	defer f3.stop()
	waitFor(t, "front 2 reconnected", func() bool {
		return w.Aggregate().Connected == 2
	})
	// The reborn front starts from zero: fleet admissions now count
	// front 1's stale 1 plus the new front's 0.
	if a := w.Aggregate(); a.Admitted != 1 {
		t.Fatalf("after reconnect Admitted = %d, want 1 (fresh front replaced the stale snapshot)", a.Admitted)
	}
}

// TestWatcherSurfacesHealth walks one front down the brownout ladder
// and checks the watcher mirrors it: FrontState.Health carries the
// healthz vocabulary, the aggregate health rollup moves rung by rung,
// and shed arrivals land in the fleet totals — the signals the fleet
// dashboard and rollout soak guardrails both read.
func TestWatcherSurfacesHealth(t *testing.T) {
	var stallArmed atomic.Bool
	release := make(chan struct{})
	front := web.NewFront(web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		if stallArmed.CompareAndSwap(true, false) {
			<-release
		}
		return []byte("ok"), nil
	}), web.Config{
		OriginStallAfter: 80 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout: 200 * time.Millisecond,
			SweepInterval: 20 * time.Millisecond,
			Shards:        4,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: front}
	go srv.Serve(ln)
	defer front.Close()
	defer srv.Close()
	url := "http://" + ln.Addr().String()

	w := New(Config{
		Fronts:   []string{url},
		Interval: 20 * time.Millisecond,
		Backoff:  faults.Backoff{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond},
	})
	w.Start(context.Background())
	defer w.Stop()

	waitFor(t, "healthy front visible", func() bool {
		a := w.Aggregate()
		return a.Connected == 1 && a.Healthy == 1
	})
	if st := w.States()[0]; st.Health != "ok" {
		t.Fatalf("health = %q, want ok", st.Health)
	}

	// Hang the origin; the watchdog stalls the front and the watcher
	// must relay it.
	stallArmed.Store(true)
	reqDone := make(chan struct{})
	go func() {
		resp, err := http.Get(url + "/request?id=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(reqDone)
	}()
	waitFor(t, "stall relayed", func() bool {
		a := w.Aggregate()
		return a.Stalled == 1 && a.Healthy == 0
	})
	if st := w.States()[0]; st.Health != "stalled" {
		t.Fatalf("health = %q, want stalled", st.Health)
	}

	// An arrival during the stall is shed and the counter reaches the
	// fleet totals.
	resp, err := http.Get(url + "/request?id=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-stall arrival got %d, want 503", resp.StatusCode)
	}
	waitFor(t, "shed counted", func() bool {
		return w.Aggregate().Shed >= 1
	})

	// Thaw: the ladder climbs back (recovering, then ok) and the
	// watcher follows it all the way.
	close(release)
	<-reqDone
	waitFor(t, "recovery relayed", func() bool {
		return w.Aggregate().Healthy == 1 && w.Aggregate().Stalled == 0
	})
	if st := w.States()[0]; st.Health == "stalled" {
		t.Fatalf("health still %q after recovery", st.Health)
	}
}

func TestWatcherToleratesAbsentFront(t *testing.T) {
	// A watcher pointed at nothing must keep retrying without ever
	// reporting connected — and stop cleanly.
	w := New(Config{
		Fronts:   []string{"http://127.0.0.1:1"}, // reserved port: connection refused
		Interval: 20 * time.Millisecond,
		Backoff:  faults.Backoff{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	w.Start(context.Background())
	waitFor(t, "a few failed attempts", func() bool {
		st := w.States()[0]
		return st.Attempts >= 2 && st.LastErr != ""
	})
	if a := w.Aggregate(); a.Connected != 0 || a.Fronts != 1 {
		t.Fatalf("aggregate over an absent front: %+v", a)
	}
	w.Stop()
}
