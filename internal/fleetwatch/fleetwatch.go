// Package fleetwatch aggregates the telemetry of a fleet of thinner
// fronts — the read-only half of fleet control. It subscribes to each
// front's /telemetry NDJSON stream concurrently, keeps the latest
// snapshot per front, and folds them into a fleet-wide view: total
// ingest absorbed, admissions, evictions, going rates, and how many
// fronts are currently reporting.
//
// A front disconnecting is an expected event, not an error: the
// watcher marks it stale, keeps its last snapshot for the aggregate,
// and redials with the same bounded jittered backoff the payment
// clients use (faults.Backoff), so a front restart rejoins the view
// within a few seconds without operator action.
package fleetwatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"speakup/internal/core"
	"speakup/internal/faults"
	"speakup/internal/metrics"
)

// Config tunes a Watcher.
type Config struct {
	// Fronts are the base URLs to watch (e.g. http://127.0.0.1:8080).
	Fronts []string
	// Interval is the telemetry cadence requested from each front
	// (?interval=). Default 1s.
	Interval time.Duration
	// Backoff paces reconnection after a front disconnects.
	Backoff faults.Backoff
	// Client issues the streaming requests. Default: a client with no
	// overall timeout (the streams are long-lived).
	Client *http.Client
	// OnUpdate, if set, observes every state change: each decoded
	// snapshot line and each disconnect. Called from the per-front
	// stream goroutines; keep it fast.
	OnUpdate func(FrontState)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// FrontState is one front's latest observed state.
type FrontState struct {
	// URL is the front's base URL (the identity fleetwatch keys on).
	URL string `json:"url"`
	// Connected reports whether the telemetry stream is currently up.
	// A false with a non-zero Snapshot means the front reported once
	// and went away; its numbers are stale but still aggregated.
	Connected bool `json:"connected"`
	// Attempts counts connection attempts; Drops counts streams that
	// ended (EOF, reset, refused) after at least one snapshot.
	Attempts uint64 `json:"attempts"`
	Drops    uint64 `json:"drops"`
	// LastErr is the most recent connection/stream error, "" when the
	// stream is healthy.
	LastErr string `json:"last_err,omitempty"`
	// LastSeen is when the last snapshot line was decoded.
	LastSeen time.Time `json:"last_seen"`
	// Health is the front's brownout-ladder state rendered as the
	// /healthz vocabulary ("ok", "stalled", "recovering"; "" before the
	// first snapshot) — the signal rollout soak decisions and human
	// operators read alike.
	Health string `json:"health,omitempty"`
	// Snapshot is the front's latest telemetry line.
	Snapshot metrics.Snapshot `json:"snapshot"`
}

// Aggregate is the fleet-wide fold of every front's latest snapshot.
// Counters are sums; OpenChannels/Contenders are sums of gauges;
// GoingPriceMax is the highest current going rate anywhere (the
// fleet's price ceiling, which heterogeneous clients shop against).
type Aggregate struct {
	Fronts    int `json:"fronts"`
	Connected int `json:"connected"`
	// Health rollup: how many reporting fronts currently sit on each
	// rung of the brownout ladder. Healthy + Stalled + Recovering can
	// be less than Fronts (fronts that never reported count nowhere).
	Healthy    int `json:"healthy"`
	Stalled    int `json:"stalled"`
	Recovering int `json:"recovering"`

	Admitted        uint64  `json:"admitted"`
	AdmittedDirect  uint64  `json:"admitted_direct"`
	Auctions        uint64  `json:"auctions"`
	Evicted         uint64  `json:"evicted"`
	Shed            uint64  `json:"shed"`
	Brownouts       uint64  `json:"brownouts"`
	PaidBytes       int64   `json:"paid_bytes"`
	WastedBytes     int64   `json:"wasted_bytes"`
	IngestBytes     int64   `json:"ingest_bytes"`
	IngestMbps      float64 `json:"ingest_mbps"`
	OpenChannels    int     `json:"open_channels"`
	Contenders      int     `json:"contenders"`
	GoingPriceMax   int64   `json:"going_price_max_bytes"`
	WireConns       int64   `json:"wire_conns"`
	WireFrames      uint64  `json:"wire_frames"`
	WireIngestBytes int64   `json:"wire_ingest_bytes"`
}

// Watcher subscribes to a fleet of fronts. Create with New, call
// Start, read States/Aggregate at will, Stop when done.
type Watcher struct {
	cfg Config

	mu     sync.Mutex
	states []FrontState

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New creates a watcher for cfg.Fronts (it does not dial yet).
func New(cfg Config) *Watcher {
	cfg = cfg.withDefaults()
	w := &Watcher{cfg: cfg, states: make([]FrontState, len(cfg.Fronts))}
	for i, u := range cfg.Fronts {
		w.states[i].URL = u
	}
	return w
}

// Start launches one stream goroutine per front. ctx cancellation (or
// Stop) ends them.
func (w *Watcher) Start(ctx context.Context) {
	ctx, w.cancel = context.WithCancel(ctx)
	for i := range w.cfg.Fronts {
		w.wg.Add(1)
		go func(idx int) {
			defer w.wg.Done()
			w.watch(ctx, idx)
		}(i)
	}
}

// Stop cancels every stream and waits for the goroutines to exit.
func (w *Watcher) Stop() {
	if w.cancel != nil {
		w.cancel()
	}
	w.wg.Wait()
}

// States returns a copy of every front's latest state.
func (w *Watcher) States() []FrontState {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]FrontState, len(w.states))
	copy(out, w.states)
	return out
}

// Aggregate folds the latest snapshots into the fleet view. Fronts
// that have never reported contribute nothing; disconnected fronts
// contribute their last (stale) snapshot, which keeps fleet totals
// monotone across a front bounce.
func (w *Watcher) Aggregate() Aggregate {
	var a Aggregate
	for _, st := range w.States() {
		a.Fronts++
		if st.Connected {
			a.Connected++
		}
		if st.LastSeen.IsZero() {
			continue
		}
		s := st.Snapshot
		switch core.HealthState(s.Health) {
		case core.HealthStalled:
			a.Stalled++
		case core.HealthRecovering:
			a.Recovering++
		default:
			a.Healthy++
		}
		a.Admitted += s.Admitted
		a.AdmittedDirect += s.AdmittedDirect
		a.Auctions += s.Auctions
		a.Evicted += s.Evicted
		a.Shed += s.Shed
		a.Brownouts += s.Brownouts
		a.PaidBytes += s.PaidBytes
		a.WastedBytes += s.WastedBytes
		a.IngestBytes += s.IngestBytes
		a.IngestMbps += s.IngestMbps
		a.OpenChannels += s.OpenChannels
		a.Contenders += s.Contenders
		if s.GoingPrice > a.GoingPriceMax {
			a.GoingPriceMax = s.GoingPrice
		}
		a.WireConns += s.WireConns
		a.WireFrames += s.WireFrames
		a.WireIngestBytes += s.WireIngestBytes
	}
	return a
}

// update mutates front idx's state under the lock and fans the result
// out to OnUpdate.
func (w *Watcher) update(idx int, fn func(*FrontState)) {
	w.mu.Lock()
	fn(&w.states[idx])
	st := w.states[idx]
	w.mu.Unlock()
	if w.cfg.OnUpdate != nil {
		w.cfg.OnUpdate(st)
	}
}

// watch is one front's connect→stream→backoff loop.
func (w *Watcher) watch(ctx context.Context, idx int) {
	// Jitter is wall-clock-seeded: decorrelating a fleet of watchers is
	// the point, determinism is not needed here.
	rng := rand.New(rand.NewSource(time.Now().UnixNano() + int64(idx)))
	attempt := 0
	for ctx.Err() == nil {
		w.update(idx, func(st *FrontState) { st.Attempts++ })
		lines, err := w.streamOnce(ctx, idx)
		if ctx.Err() != nil {
			return
		}
		w.update(idx, func(st *FrontState) {
			st.Connected = false
			if lines > 0 {
				st.Drops++
			}
			if err != nil {
				st.LastErr = err.Error()
			}
		})
		if lines > 0 {
			attempt = 0 // the front was healthy; restart the backoff ladder
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(w.cfg.Backoff.Delay(attempt, rng)):
		}
		attempt++
	}
}

// streamOnce dials front idx's /telemetry and decodes snapshot lines
// until the stream ends. It returns how many lines landed.
func (w *Watcher) streamOnce(ctx context.Context, idx int) (lines int, err error) {
	url := fmt.Sprintf("%s/telemetry?interval=%s", w.cfg.Fronts[idx], w.cfg.Interval)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("telemetry: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var snap metrics.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			return lines, fmt.Errorf("telemetry decode: %w", err)
		}
		lines++
		w.update(idx, func(st *FrontState) {
			st.Connected = true
			st.LastErr = ""
			st.LastSeen = time.Now()
			st.Health = core.HealthState(snap.Health).String()
			st.Snapshot = snap
		})
	}
	return lines, sc.Err()
}
