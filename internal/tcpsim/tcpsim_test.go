package tcpsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"speakup/internal/netsim"
	"speakup/internal/sim"
)

// pair wires two hosts a <-> b with the given link parameters and
// returns their stacks.
type pair struct {
	loop *sim.Loop
	net  *netsim.Network
	a, b *Stack
	ab   *netsim.Link // a -> b direction
	ba   *netsim.Link
}

func newPair(seed int64, rate float64, oneWay time.Duration, qcap int) *pair {
	loop := sim.NewLoop(seed)
	n := netsim.New(loop)
	na := n.AddNode("a", nil)
	nb := n.AddNode("b", nil)
	ab, ba := n.Connect(na, nb, rate, oneWay, qcap)
	n.ComputeRoutes()
	return &pair{
		loop: loop, net: n,
		a: NewStack(n, na, Options{}), b: NewStack(n, nb, Options{}),
		ab: ab, ba: ba,
	}
}

func TestHandshake(t *testing.T) {
	p := newPair(1, 2e6, 10*time.Millisecond, 0)
	var clientOpen, serverOpen sim.Time = -1, -1
	p.b.Listen(func(c *Conn) {
		c.OnOpen = func() { serverOpen = p.loop.Now() }
	})
	p.a.Dial(p.b.Node(), func() { clientOpen = p.loop.Now() })
	p.loop.Run(time.Second)
	// SYN: 40B @2Mbit/s = 160us + 10ms; SYNACK same back.
	if serverOpen < 10*time.Millisecond || serverOpen > 11*time.Millisecond {
		t.Fatalf("server open at %v", serverOpen)
	}
	if clientOpen < 20*time.Millisecond || clientOpen > 21*time.Millisecond {
		t.Fatalf("client open at %v", clientOpen)
	}
}

func TestSmallTransferDelivery(t *testing.T) {
	p := newPair(1, 2e6, 10*time.Millisecond, 0)
	var gotBytes int
	var gotRecord any
	var at sim.Time
	p.b.Listen(func(c *Conn) {
		c.OnBytes = func(n int, meta any) { gotBytes += n }
		c.OnRecord = func(meta any) { gotRecord = meta; at = p.loop.Now() }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(1000, "req-1")
	p.loop.Run(time.Second)
	if gotBytes != 1000 {
		t.Fatalf("delivered %d bytes, want 1000", gotBytes)
	}
	if gotRecord != "req-1" {
		t.Fatalf("record meta = %v", gotRecord)
	}
	// Handshake ~20.3ms + data 1040B*8/2e6 = 4.16ms + 10ms prop.
	if at < 30*time.Millisecond || at > 40*time.Millisecond {
		t.Fatalf("record delivered at %v, want ~34ms", at)
	}
}

func TestRecordBoundariesAndOrder(t *testing.T) {
	p := newPair(2, 8e6, 5*time.Millisecond, 0)
	perMeta := map[string]int{}
	var order []string
	p.b.Listen(func(c *Conn) {
		c.OnBytes = func(n int, meta any) { perMeta[meta.(string)] += n }
		c.OnRecord = func(meta any) { order = append(order, meta.(string)) }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(100, "a")
	c.Write(5000, "b")
	c.Write(1, "c")
	p.loop.Run(5 * time.Second)
	if perMeta["a"] != 100 || perMeta["b"] != 5000 || perMeta["c"] != 1 {
		t.Fatalf("per-record bytes = %v", perMeta)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("record order = %v", order)
	}
}

func TestBulkThroughput(t *testing.T) {
	// 1 MB over a 2 Mbit/s, 10ms one-way link: ideal payload time is
	// ~4.2s (incl. header overhead); allow slow-start ramp slack.
	p := newPair(3, 2e6, 10*time.Millisecond, 20000)
	var done sim.Time = -1
	total := 1 << 20
	p.b.Listen(func(c *Conn) {
		c.OnRecord = func(meta any) { done = p.loop.Now() }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(total, "blob")
	p.loop.Run(30 * time.Second)
	if done < 0 {
		t.Fatal("transfer did not complete in 30s")
	}
	if done < 4*time.Second || done > 8*time.Second {
		t.Fatalf("1MB over 2Mbit/s took %v, want 4-8s", done)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	p := newPair(4, 8e6, 25*time.Millisecond, 0)
	var server *Conn
	p.b.Listen(func(c *Conn) { server = c })
	c := p.a.Dial(p.b.Node(), nil)
	if got, want := c.Cwnd(), float64(2*1460); got != want {
		t.Fatalf("initial cwnd = %v, want %v", got, want)
	}
	c.Write(200*1460, "blob")
	// After ~4 RTTs of slow start the window must have grown well
	// beyond the initial 2 MSS.
	p.loop.Run(260 * time.Millisecond)
	if c.Cwnd() < 8*1460 {
		t.Fatalf("cwnd after slow start = %.0f, want >= 8 MSS", c.Cwnd())
	}
	_ = server
}

func TestLossRecoveryCompletes(t *testing.T) {
	// Tiny queue forces drops; the transfer must still complete and
	// must have recorded retransmissions.
	p := newPair(5, 2e6, 10*time.Millisecond, 4000)
	var done bool
	total := 300 * 1460
	p.b.Listen(func(c *Conn) {
		c.OnRecord = func(meta any) { done = true }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(total, "blob")
	p.loop.Run(60 * time.Second)
	if !done {
		t.Fatalf("transfer did not complete; delivered=%d/%d outstanding=%d",
			c.BytesSent, total, c.Outstanding())
	}
	if c.Retransmits == 0 {
		t.Fatal("expected retransmissions with a 4000-byte queue")
	}
	if p.ab.Stats.PktsDropped == 0 {
		t.Fatal("expected drops at the bottleneck queue")
	}
}

func TestDeliveredBytesExactUnderLoss(t *testing.T) {
	p := newPair(6, 2e6, 5*time.Millisecond, 3000)
	var delivered int
	total := 100 * 1460
	p.b.Listen(func(c *Conn) {
		c.OnBytes = func(n int, meta any) { delivered += n }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(total, "x")
	p.loop.Run(120 * time.Second)
	if delivered != total {
		t.Fatalf("delivered %d, want %d (loss must not corrupt the stream)", delivered, total)
	}
	_ = c
}

func TestSYNLossRetransmission(t *testing.T) {
	// Fill the a->b queue with filler so the first SYN is dropped; the
	// retransmitted SYN (~1s later) must establish the connection.
	// Queue capacity 100B: one 50B filler serializes, two fill the
	// queue exactly, so the 40B SYN arriving next is tail-dropped.
	p := newPair(7, 1e5, 5*time.Millisecond, 100)
	filler := &segment{key: connKey{initiator: 999, n: 1}}
	for i := 0; i < 3; i++ {
		p.net.Send(&netsim.Packet{Size: 50, Src: p.a.Node(), Dst: p.b.Node(), Payload: filler})
	}
	p.b.Listen(func(c *Conn) {})
	var openAt sim.Time = -1
	p.a.Dial(p.b.Node(), func() { openAt = p.loop.Now() })
	p.loop.Run(5 * time.Second)
	if openAt < 0 {
		t.Fatal("connection never established after SYN loss")
	}
	if openAt < time.Second {
		t.Fatalf("established at %v; first SYN should have been dropped", openAt)
	}
	if p.ab.Stats.PktsDropped == 0 {
		t.Fatal("filler did not cause a drop; test setup broken")
	}
}

func TestAbortPendingTruncatesRecord(t *testing.T) {
	p := newPair(8, 2e6, 10*time.Millisecond, 0)
	var recordFired bool
	var delivered int
	p.b.Listen(func(c *Conn) {
		c.OnBytes = func(n int, meta any) { delivered += n }
		c.OnRecord = func(meta any) { recordFired = true }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(1<<20, "post")
	p.loop.Run(500 * time.Millisecond) // mid-transfer
	cut := c.AbortPending()
	if cut <= 0 {
		t.Fatal("nothing aborted mid-transfer")
	}
	p.loop.Run(10 * time.Second)
	if recordFired {
		t.Fatal("OnRecord fired for an aborted record")
	}
	want := 1<<20 - int(cut)
	if delivered != want {
		t.Fatalf("delivered %d, want %d (all sent bytes, nothing more)", delivered, want)
	}
}

func TestAbortPendingDropsWholeUnsentRecords(t *testing.T) {
	p := newPair(9, 2e6, 10*time.Millisecond, 0)
	var records []string
	p.b.Listen(func(c *Conn) {
		c.OnRecord = func(meta any) { records = append(records, meta.(string)) }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(100000, "first")
	c.Write(100000, "second") // entirely unsent at abort time
	p.loop.Run(150 * time.Millisecond)
	c.AbortPending()
	p.loop.Run(10 * time.Second)
	for _, r := range records {
		if r == "second" {
			t.Fatal("fully-unsent record was delivered")
		}
	}
}

func TestCloseSendsRSTAndPeerSeesIt(t *testing.T) {
	p := newPair(10, 2e6, 10*time.Millisecond, 0)
	var peerClosed bool
	var server *Conn
	p.b.Listen(func(c *Conn) {
		server = c
		c.OnClose = func() { peerClosed = true }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(1000, "x")
	p.loop.Run(100 * time.Millisecond)
	c.Close()
	p.loop.Run(time.Second)
	if !c.Closed() {
		t.Fatal("closer not closed")
	}
	if !peerClosed || !server.Closed() {
		t.Fatal("peer did not observe RST")
	}
	// Writing after close is a no-op, not a panic.
	c.Write(10, "y")
}

func TestServerSideClose(t *testing.T) {
	p := newPair(11, 2e6, 10*time.Millisecond, 0)
	var clientClosed bool
	p.b.Listen(func(c *Conn) {
		c.OnBytes = func(n int, meta any) { c.Close() } // evict on first payment bytes
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.OnClose = func() { clientClosed = true }
	c.Write(1<<20, "payment")
	p.loop.Run(5 * time.Second)
	if !clientClosed {
		t.Fatal("client did not observe server-side eviction")
	}
	if !c.Closed() {
		t.Fatal("client conn not torn down")
	}
}

func TestBidirectionalData(t *testing.T) {
	p := newPair(12, 8e6, 5*time.Millisecond, 0)
	var atServer, atClient int
	p.b.Listen(func(c *Conn) {
		c.OnBytes = func(n int, meta any) { atServer += n }
		c.OnRecord = func(meta any) { c.Write(5000, "resp") }
	})
	c := p.a.Dial(p.b.Node(), nil)
	c.OnBytes = func(n int, meta any) { atClient += n }
	c.Write(2000, "req")
	p.loop.Run(5 * time.Second)
	if atServer != 2000 || atClient != 5000 {
		t.Fatalf("server got %d (want 2000), client got %d (want 5000)", atServer, atClient)
	}
}

func TestSRTTTracksLinkRTT(t *testing.T) {
	p := newPair(13, 8e6, 50*time.Millisecond, 0)
	p.b.Listen(func(c *Conn) {})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(50*1460, "blob")
	p.loop.Run(10 * time.Second)
	// RTT is ~100ms + serialization+queueing; srtt must be in range.
	if c.SRTT() < 100*time.Millisecond || c.SRTT() > 200*time.Millisecond {
		t.Fatalf("srtt = %v, want ~100-200ms", c.SRTT())
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two same-RTT flows through one bottleneck: long-run Reno shares
	// should be roughly even.
	loop := sim.NewLoop(14)
	n := netsim.New(loop)
	c1 := n.AddNode("c1", nil)
	c2 := n.AddNode("c2", nil)
	sw := n.AddNode("sw", nil)
	srv := n.AddNode("srv", nil)
	n.Connect(c1, sw, 10e6, time.Millisecond, 0)
	n.Connect(c2, sw, 10e6, time.Millisecond, 0)
	n.Connect(sw, srv, 4e6, 10*time.Millisecond, 15000)
	n.ComputeRoutes()
	s1 := NewStack(n, c1, Options{})
	s2 := NewStack(n, c2, Options{})
	ss := NewStack(n, srv, Options{})
	got := map[*Stack]int{}
	var conns []*Conn
	ss.Listen(func(c *Conn) {
		conns = append(conns, c)
	})
	d1 := s1.Dial(srv, nil)
	d2 := s2.Dial(srv, nil)
	d1.Write(1<<30, "f1")
	d2.Write(1<<30, "f2")
	loop.Run(60 * time.Second)
	if len(conns) != 2 {
		t.Fatalf("server accepted %d conns", len(conns))
	}
	b1 := float64(conns[0].BytesDelivered)
	b2 := float64(conns[1].BytesDelivered)
	share := b1 / (b1 + b2)
	if share < 0.3 || share > 0.7 {
		t.Fatalf("unfair split: %.0f vs %.0f bytes (share %.2f)", b1, b2, share)
	}
	// Bottleneck must be well utilized: >=70% of 4 Mbit/s for 60s.
	if total := (b1 + b2) * 8 / 60; total < 0.7*4e6 {
		t.Fatalf("bottleneck underutilized: %.0f bits/s", total)
	}
	_ = got
}

func TestManyConnectionsOneHost(t *testing.T) {
	p := newPair(15, 10e6, 5*time.Millisecond, 50000)
	done := 0
	p.b.Listen(func(c *Conn) {
		c.OnRecord = func(meta any) { done++ }
	})
	for i := 0; i < 20; i++ {
		c := p.a.Dial(p.b.Node(), nil)
		c.Write(50000, i)
	}
	p.loop.Run(60 * time.Second)
	if done != 20 {
		t.Fatalf("completed %d/20 transfers", done)
	}
}

func TestDialNoListenerTimesOutSilently(t *testing.T) {
	p := newPair(16, 2e6, 5*time.Millisecond, 0)
	opened := false
	c := p.a.Dial(p.b.Node(), func() { opened = true })
	p.loop.Run(3 * time.Second)
	if opened || c.Established() {
		t.Fatal("connection established with no listener")
	}
}

func TestWriteZeroPanics(t *testing.T) {
	p := newPair(17, 2e6, 5*time.Millisecond, 0)
	p.b.Listen(func(c *Conn) {})
	c := p.a.Dial(p.b.Node(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Write(0) did not panic")
		}
	}()
	c.Write(0, nil)
}

func TestOutstandingAndPending(t *testing.T) {
	p := newPair(18, 2e6, 10*time.Millisecond, 0)
	p.b.Listen(func(c *Conn) {})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(100000, "x")
	if c.PendingBytes() != 100000 {
		t.Fatalf("pending before handshake = %d", c.PendingBytes())
	}
	p.loop.Run(25 * time.Millisecond) // handshake done, initial window sent
	if c.Outstanding() != 2*1460 {
		t.Fatalf("outstanding = %d, want 2 MSS", c.Outstanding())
	}
	p.loop.Run(20 * time.Second)
	if c.Outstanding() != 0 || c.PendingBytes() != 0 {
		t.Fatalf("transfer incomplete: out=%d pending=%d", c.Outstanding(), c.PendingBytes())
	}
}

// Property: for random transfer sizes and queue capacities, every
// stream is delivered exactly once, in order, with matching totals.
func TestQuickStreamIntegrity(t *testing.T) {
	f := func(sizes []uint16, qcap uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		p := newPair(19, 5e6, 2*time.Millisecond, int(qcap)%20000+2000)
		var delivered int
		var order []int
		p.b.Listen(func(c *Conn) {
			c.OnBytes = func(n int, meta any) { delivered += n }
			c.OnRecord = func(meta any) { order = append(order, meta.(int)) }
		})
		c := p.a.Dial(p.b.Node(), nil)
		total := 0
		for i, s := range sizes {
			n := int(s)%50000 + 1
			total += n
			c.Write(n, i)
		}
		p.loop.Run(240 * time.Second)
		if delivered != total {
			return false
		}
		if len(order) != len(sizes) {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: aborting at a random time never delivers more than was
// sent and never fires OnRecord for the truncated record.
func TestQuickAbortSafety(t *testing.T) {
	f := func(abortMs uint8) bool {
		p := newPair(20, 2e6, 5*time.Millisecond, 8000)
		var recordFired bool
		var delivered int64
		p.b.Listen(func(c *Conn) {
			c.OnBytes = func(n int, meta any) { delivered += int64(n) }
			c.OnRecord = func(meta any) { recordFired = true }
		})
		c := p.a.Dial(p.b.Node(), nil)
		c.Write(1<<20, "post")
		p.loop.Run(time.Duration(abortMs) * time.Millisecond)
		cut := c.AbortPending()
		p.loop.Run(120 * time.Second)
		want := int64(1<<20) - cut
		if cut == 0 {
			// Abort after full send: record must arrive whole.
			return recordFired && delivered == 1<<20
		}
		return !recordFired && delivered == want
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
