package tcpsim

import (
	"testing"
	"time"

	"speakup/internal/netsim"
	"speakup/internal/sim"
)

func TestLimitedTransmitKeepsAckClockAlive(t *testing.T) {
	// Small flight (4 segments), drop the first: without limited
	// transmit + early retransmit the sender would RTO (>=200ms);
	// with them, recovery happens within a few RTTs.
	p := newPair(31, 8e6, 10*time.Millisecond, 0)
	var done sim.Time = -1
	p.b.Listen(func(c *Conn) {
		c.OnRecord = func(meta any) { done = p.loop.Now() }
	})
	c := p.a.Dial(p.b.Node(), nil)

	// Drop exactly the first data segment at the receiving node by
	// swapping the handler once.
	droppedFirst := false
	orig := p.b
	handler := func(pkt *netsim.Packet) {
		seg := pkt.Payload.(*segment)
		if seg.length > 0 && !droppedFirst {
			droppedFirst = true
			return // lost
		}
		orig.handlePacket(pkt)
	}
	p.net.SetHandler(p.b.Node(), handler)

	c.Write(6*1460, "blob")
	p.loop.Run(5 * time.Second)
	if done < 0 {
		t.Fatal("transfer never completed after single loss")
	}
	if !droppedFirst {
		t.Fatal("test harness failed to drop a segment")
	}
	// Handshake ~20ms + a few RTTs of recovery; an RTO would push past
	// 1s (initial RTO) since no RTT sample precedes the loss.
	if done > 500*time.Millisecond {
		t.Fatalf("recovery took %v; dupACK-driven recovery expected, not RTO", done)
	}
	if c.Retransmits == 0 {
		t.Fatal("no retransmission recorded")
	}
}

func TestEarlyRetransmitTinyFlight(t *testing.T) {
	// Flight of 2 segments, first one lost, no new data to send: only
	// 1 dupACK can ever arrive, so classic Reno would wait for RTO.
	// Early retransmit must recover faster than the 1s initial RTO.
	p := newPair(33, 8e6, 10*time.Millisecond, 0)
	var done sim.Time = -1
	p.b.Listen(func(c *Conn) {
		c.OnRecord = func(meta any) { done = p.loop.Now() }
	})
	c := p.a.Dial(p.b.Node(), nil)
	droppedFirst := false
	orig := p.b
	p.net.SetHandler(p.b.Node(), func(pkt *netsim.Packet) {
		seg := pkt.Payload.(*segment)
		if seg.length > 0 && !droppedFirst {
			droppedFirst = true
			return
		}
		orig.handlePacket(pkt)
	})
	c.Write(2*1460, "blob")
	p.loop.Run(5 * time.Second)
	if done < 0 {
		t.Fatal("transfer never completed")
	}
	if done > 900*time.Millisecond {
		t.Fatalf("early retransmit did not engage: completed at %v (RTO path)", done)
	}
}

func TestRTOBackoffExponential(t *testing.T) {
	// Blackhole everything after the handshake: retransmissions must
	// space out exponentially and stay bounded by RTOMax.
	p := newPair(35, 8e6, 5*time.Millisecond, 0)
	p.b.Listen(func(c *Conn) {})
	c := p.a.Dial(p.b.Node(), nil)
	p.loop.Run(50 * time.Millisecond) // handshake completes
	blackhole := true
	orig := p.b
	var arrivals []sim.Time
	p.net.SetHandler(p.b.Node(), func(pkt *netsim.Packet) {
		seg := pkt.Payload.(*segment)
		if blackhole && seg.length > 0 {
			arrivals = append(arrivals, p.loop.Now())
			return
		}
		orig.handlePacket(pkt)
	})
	c.Write(1460, "blob")
	p.loop.Run(60 * time.Second)
	if len(arrivals) < 4 {
		t.Fatalf("only %d retransmission attempts", len(arrivals))
	}
	// Gaps grow (roughly doubling until the cap).
	g1 := arrivals[1].Nanoseconds() - arrivals[0].Nanoseconds()
	g2 := arrivals[2].Nanoseconds() - arrivals[1].Nanoseconds()
	g3 := arrivals[3].Nanoseconds() - arrivals[2].Nanoseconds()
	if !(g2 > g1 && g3 > g2) {
		t.Fatalf("gaps not growing: %v %v %v", g1, g2, g3)
	}
	if c.Timeouts < 3 {
		t.Fatalf("timeouts = %d", c.Timeouts)
	}
}

func TestNewRenoPartialAckRecovery(t *testing.T) {
	// Drop two separate segments in one window: NewReno must recover
	// both via partial ACKs without collapsing to repeated RTOs.
	p := newPair(37, 8e6, 10*time.Millisecond, 0)
	var done sim.Time = -1
	p.b.Listen(func(c *Conn) {
		c.OnRecord = func(meta any) { done = p.loop.Now() }
	})
	c := p.a.Dial(p.b.Node(), nil)
	toDrop := map[int]bool{3: true, 5: true}
	ordinal := 0
	orig := p.b
	p.net.SetHandler(p.b.Node(), func(pkt *netsim.Packet) {
		seg := pkt.Payload.(*segment)
		if seg.length > 0 {
			ordinal++
			if toDrop[ordinal] {
				delete(toDrop, ordinal)
				return
			}
		}
		orig.handlePacket(pkt)
	})
	c.Write(30*1460, "blob")
	p.loop.Run(10 * time.Second)
	if done < 0 {
		t.Fatal("transfer never completed with two losses")
	}
	if c.Timeouts > 1 {
		t.Fatalf("NewReno should avoid RTO storms: %d timeouts", c.Timeouts)
	}
}

func TestCwndFloorAfterRTO(t *testing.T) {
	p := newPair(39, 2e6, 10*time.Millisecond, 3000)
	p.b.Listen(func(c *Conn) {})
	c := p.a.Dial(p.b.Node(), nil)
	c.Write(1<<20, "blob")
	p.loop.Run(30 * time.Second)
	if c.Cwnd() < 1460 {
		t.Fatalf("cwnd fell below 1 MSS: %v", c.Cwnd())
	}
}
