package tcpsim

import (
	"testing"
	"time"

	"speakup/internal/netsim"
	"speakup/internal/sim"
)

// Steady-state regression fence for the TCP data path. An established
// connection moving data allocates no segments (pooled per stack), no
// packets (pooled per network), and no events (arena): without the
// pools this loop costs ~30 objects per iteration. The only residual
// allocation is the amortized record bookkeeping in Write/gcRecords
// (a slice compaction every few hundred records), hence the small
// threshold instead of a hard zero.
func TestEstablishedDataFlowNearZeroAlloc(t *testing.T) {
	loop := sim.NewLoop(1)
	loop.Grow(256)
	n := netsim.New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", nil)
	n.Connect(a, b, 10e6, time.Millisecond, 0)
	n.ComputeRoutes()
	sa := NewStack(n, a, Options{})
	sb := NewStack(n, b, Options{})
	sb.Listen(func(c *Conn) {})
	conn := sa.Dial(b, nil)
	conn.Write(100_000, "warm") // handshake + slow start + pool warm-up
	loop.RunAll()
	if !conn.Established() {
		t.Fatal("connection did not establish")
	}

	iter := func() {
		conn.Write(10 * sa.Options().MSS, "chunk")
		loop.RunAll()
	}
	iter()
	avg := testing.AllocsPerRun(500, iter)
	if avg > 0.1 {
		t.Fatalf("steady-state data flow allocates %.2f objects/op, want ~0 (record bookkeeping only)", avg)
	}
}
