// Package tcpsim implements a Reno/NewReno-style TCP on top of the
// netsim packet network.
//
// Speak-up's analysis leans on specific TCP mechanisms — slow-start
// ramp (§3.4), congestion-controlled payment channels (§4.1), the
// multi-connection advantage of bad clients on shared links (§4.2),
// and loss/queueing felt by bystander transfers (§7.7) — so this
// package models them per-packet: 1-RTT connection establishment with
// SYN retransmission, cumulative ACKs, duplicate-ACK fast retransmit
// with NewReno partial-ACK recovery, and an RFC 6298-style
// retransmission timer with exponential backoff.
//
// Applications write logical bytes annotated with metadata records
// rather than real buffers: the simulator transfers byte *counts*
// across the network and, because both endpoints live in one process,
// hands the receiver the sender's record metadata once the covering
// bytes have arrived in order. This keeps the hot path allocation-light
// without changing any on-the-wire behaviour.
package tcpsim

import (
	"fmt"
	"time"

	"speakup/internal/netsim"
	"speakup/internal/sim"
)

// Options configures a Stack. The zero value selects the defaults
// documented on each field.
type Options struct {
	// MSS is the maximum segment payload in bytes. Default 1460.
	MSS int
	// HeaderBytes is the per-segment header overhead. Default 40.
	HeaderBytes int
	// InitialCwndSegments is the initial congestion window. Default 2.
	InitialCwndSegments int
	// RTOMin clamps the retransmission timeout. Default 200ms.
	RTOMin time.Duration
	// RTOInit is the timeout before any RTT sample. Default 1s.
	RTOInit time.Duration
	// RTOMax caps exponential backoff. Default 60s.
	RTOMax time.Duration
}

func (o Options) withDefaults() Options {
	if o.MSS == 0 {
		o.MSS = 1460
	}
	if o.HeaderBytes == 0 {
		o.HeaderBytes = 40
	}
	if o.InitialCwndSegments == 0 {
		o.InitialCwndSegments = 2
	}
	if o.RTOMin == 0 {
		o.RTOMin = 200 * time.Millisecond
	}
	if o.RTOInit == 0 {
		o.RTOInit = time.Second
	}
	if o.RTOMax == 0 {
		o.RTOMax = 60 * time.Second
	}
	return o
}

type connKey struct {
	initiator netsim.NodeID
	n         uint64
}

type segment struct {
	key      connKey
	sender   *Conn // sending endpoint; receivers use it to link peers
	syn      bool
	synAck   bool
	rst      bool
	seq      int64 // offset of first payload byte
	ackNo    int64 // cumulative: next byte expected by the segment's sender
	length   int   // payload bytes (0 for pure ACK/SYN/RST)
	fromInit bool  // true if sent by the connection initiator
}

// Stack is a per-host TCP endpoint multiplexer bound to one netsim node.
type Stack struct {
	net    *netsim.Network
	loop   *sim.Loop
	node   netsim.NodeID
	opts   Options
	accept func(*Conn)
	conns  map[connKey]*Conn
	nextID uint64

	// segFree recycles segments: every received segment returns here
	// after dispatch, so steady-state traffic allocates none. Segments
	// lost to drops are simply collected by the GC.
	segFree []*segment
}

// newSegment returns a zeroed segment from the free list (or a fresh
// one).
func (s *Stack) newSegment() *segment {
	if k := len(s.segFree); k > 0 {
		seg := s.segFree[k-1]
		s.segFree = s.segFree[:k-1]
		return seg
	}
	return &segment{}
}

func (s *Stack) freeSegment(seg *segment) {
	*seg = segment{}
	s.segFree = append(s.segFree, seg)
}

// NewStack binds a TCP stack to node in net, replacing the node's
// packet handler.
func NewStack(net *netsim.Network, node netsim.NodeID, opts Options) *Stack {
	s := &Stack{
		net:   net,
		loop:  net.Loop(),
		node:  node,
		opts:  opts.withDefaults(),
		conns: make(map[connKey]*Conn),
	}
	net.SetHandler(node, s.handlePacket)
	return s
}

// Node returns the netsim node this stack is bound to.
func (s *Stack) Node() netsim.NodeID { return s.node }

// Net returns the network the stack is attached to.
func (s *Stack) Net() *netsim.Network { return s.net }

// Options returns the stack's effective options.
func (s *Stack) Options() Options { return s.opts }

// Listen installs the accept handler invoked for each inbound
// connection. The handler runs before the SYNACK is sent, so callbacks
// installed there observe all data.
func (s *Stack) Listen(accept func(*Conn)) { s.accept = accept }

// record is a run of application bytes sharing one metadata value.
type record struct {
	start, end int64 // [start, end) offsets in the stream
	meta       any
	aborted    bool // truncated by AbortPending: suppress OnRecord
}

// Conn is one endpoint of a TCP connection. A connection carries two
// independent byte streams (one per direction); each Conn owns the
// sender state for its outgoing stream and the receiver state for its
// incoming stream.
type Conn struct {
	stack     *Stack
	peer      *Conn // opposite endpoint; set when its first segment arrives
	key       connKey
	initiator bool
	remote    netsim.NodeID

	established bool
	closed      bool

	// OnOpen fires when the handshake completes (both sides). OnBytes
	// fires as in-order payload bytes arrive, tagged with the record
	// metadata they belong to. OnRecord fires when a record's last byte
	// arrives in order. OnClose fires on teardown caused by the peer.
	OnOpen   func()
	OnBytes  func(n int, meta any)
	OnRecord func(meta any)
	OnClose  func()

	// --- sender state ---
	records    []record
	recBase    int   // index of first record the receiver may still need
	writeEnd   int64 // total bytes written
	sndUna     int64
	sndNxt     int64
	cwnd       float64 // bytes
	ssthresh   float64 // bytes
	dupAcks    int
	inRecovery bool
	recoverSeq int64 // NewReno: sndNxt when loss was detected

	rtoTimer   sim.Event
	rto        time.Duration
	srtt       time.Duration
	rttvar     time.Duration
	haveSample bool
	backoff    int

	// RTT timing: one sample in flight at a time (Karn's algorithm).
	timedSeq     int64
	timedAt      sim.Time
	timing       bool
	timedRetrans bool

	synTimer sim.Event

	// --- receiver state ---
	rcvNxt int64
	ooo    map[int64]int64 // out-of-order runs: start offset -> end offset

	// Stats (payload bytes; headers excluded).
	BytesSent      int64 // handed to the network, including retransmissions
	BytesDelivered int64 // delivered in order to the app
	Retransmits    int
	Timeouts       int
}

// Dial opens a connection to the stack bound at the remote node. The
// returned Conn accepts writes immediately; data flows once the
// handshake completes. onOpen may be nil.
func (s *Stack) Dial(remote netsim.NodeID, onOpen func()) *Conn {
	s.nextID++
	key := connKey{initiator: s.node, n: s.nextID}
	c := s.newConn(key, true, remote)
	c.OnOpen = onOpen
	c.sendSYN()
	return c
}

func (s *Stack) newConn(key connKey, initiator bool, remote netsim.NodeID) *Conn {
	c := &Conn{
		stack:     s,
		key:       key,
		initiator: initiator,
		remote:    remote,
		cwnd:      float64(s.opts.InitialCwndSegments * s.opts.MSS),
		ssthresh:  1 << 30,
		rto:       s.opts.RTOInit,
		ooo:       make(map[int64]int64),
	}
	s.conns[key] = c
	return c
}

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.established }

// Closed reports whether the connection has been torn down.
func (c *Conn) Closed() bool { return c.closed }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() time.Duration { return c.rto }

// SRTT returns the smoothed RTT estimate, 0 before the first sample.
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Outstanding returns unacknowledged bytes in flight.
func (c *Conn) Outstanding() int64 { return c.sndNxt - c.sndUna }

// PendingBytes returns written-but-unsent bytes.
func (c *Conn) PendingBytes() int64 { return c.writeEnd - c.sndNxt }

// Remote returns the node at the other end of the connection.
func (c *Conn) Remote() netsim.NodeID { return c.remote }

// Write appends n logical bytes tagged with meta to the outgoing
// stream. Record boundaries are preserved: the receiving side's
// OnRecord fires once the record's final byte arrives in order.
func (c *Conn) Write(n int, meta any) {
	if n <= 0 {
		panic("tcpsim: Write of non-positive length")
	}
	if c.closed {
		return
	}
	c.records = append(c.records, record{start: c.writeEnd, end: c.writeEnd + int64(n), meta: meta})
	c.writeEnd += int64(n)
	c.trySend()
}

// AbortPending discards written-but-unsent bytes and returns how many
// were discarded. A record truncated mid-way is marked aborted so the
// receiver will not fire OnRecord for it; bytes of it already in
// flight still count toward OnBytes.
func (c *Conn) AbortPending() int64 {
	cut := c.writeEnd - c.sndNxt
	if cut <= 0 {
		return 0
	}
	c.writeEnd = c.sndNxt
	for i := len(c.records) - 1; i >= 0; i-- {
		r := &c.records[i]
		if r.start >= c.writeEnd {
			c.records = c.records[:i]
			continue
		}
		if r.end > c.writeEnd {
			r.end = c.writeEnd
			r.aborted = true
		}
		break
	}
	return cut
}

// Close tears the connection down abruptly (RST to the peer), like the
// thinner evicting a payment channel. In-flight packets are discarded
// on arrival. OnClose fires on the peer, not on the closing side.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	rst := c.stack.newSegment()
	rst.key, rst.rst, rst.fromInit = c.key, true, c.initiator
	c.fillAndSend(rst)
	c.teardown()
}

func (c *Conn) teardown() {
	c.closed = true
	c.established = false
	c.stack.loop.Cancel(c.rtoTimer)
	c.stack.loop.Cancel(c.synTimer)
	delete(c.stack.conns, c.key)
}

// connSYNTimeout and connRTO are the typed timer entry points: the
// loop dispatches them with the Conn as env, so (re)arming a timer
// allocates nothing.
func connSYNTimeout(env, _ any) {
	c := env.(*Conn)
	if !c.established && !c.closed {
		c.rto = minDur(c.rto*2, c.stack.opts.RTOMax)
		c.sendSYN()
	}
}

func connRTO(env, _ any) { env.(*Conn).onRTO() }

func (c *Conn) sendSYN() {
	if c.closed || c.established {
		return
	}
	syn := c.stack.newSegment()
	syn.key, syn.syn, syn.fromInit = c.key, true, true
	c.fillAndSend(syn)
	c.synTimer = c.stack.loop.AfterTimer(c.rto, connSYNTimeout, c, nil)
}

// fillAndSend stamps sender identity and piggybacked ACK, then hands
// the segment to the network in a pooled packet.
func (c *Conn) fillAndSend(seg *segment) {
	seg.sender = c
	seg.ackNo = c.rcvNxt
	pkt := c.stack.net.NewPacket()
	pkt.Size = c.stack.opts.HeaderBytes + seg.length
	pkt.Src = c.stack.node
	pkt.Dst = c.remote
	pkt.Payload = seg
	c.stack.net.Send(pkt)
}

// handlePacket dispatches one delivered segment, then recycles it.
// Nothing may retain the segment past dispatch (peer identity is the
// sender *Conn*, which outlives it).
func (s *Stack) handlePacket(pkt *netsim.Packet) {
	seg, ok := pkt.Payload.(*segment)
	if !ok {
		panic(fmt.Sprintf("tcpsim: non-TCP packet at node %d", s.node))
	}
	s.dispatch(seg, pkt.Src)
	s.freeSegment(seg)
}

func (s *Stack) dispatch(seg *segment, src netsim.NodeID) {
	if seg.syn {
		if c, exists := s.conns[seg.key]; exists {
			// Retransmitted SYN for an accepted connection: re-SYNACK.
			synAck := s.newSegment()
			synAck.key, synAck.synAck, synAck.fromInit = c.key, true, c.initiator
			c.fillAndSend(synAck)
			return
		}
		if s.accept == nil {
			return // no listener: silently drop
		}
		c := s.newConn(seg.key, false, src)
		c.peer = seg.sender
		c.established = true
		s.accept(c)
		synAck := s.newSegment()
		synAck.key, synAck.synAck = c.key, true
		c.fillAndSend(synAck)
		if c.OnOpen != nil {
			c.OnOpen()
		}
		return
	}
	c, exists := s.conns[seg.key]
	if !exists {
		return // stale packet for a closed connection
	}
	if c.peer == nil {
		c.peer = seg.sender
	}
	c.handleSegment(seg)
}

func (c *Conn) handleSegment(seg *segment) {
	if c.closed {
		return
	}
	if seg.rst {
		c.teardown()
		if c.OnClose != nil {
			c.OnClose()
		}
		return
	}
	if seg.synAck {
		if !c.established {
			c.established = true
			c.stack.loop.Cancel(c.synTimer)
			c.rto = c.stack.opts.RTOInit // discard handshake backoff
			if c.OnOpen != nil {
				c.OnOpen()
			}
			c.trySend()
		}
		return
	}
	if seg.length > 0 {
		c.receiveData(seg)
	}
	c.processAck(seg.ackNo, seg.length > 0)
}

// receiveData runs receiver-side reassembly and sends a cumulative ACK.
func (c *Conn) receiveData(seg *segment) {
	start, end := seg.seq, seg.seq+int64(seg.length)
	if end > c.rcvNxt {
		if start <= c.rcvNxt {
			c.advanceTo(end)
			c.drainOutOfOrder()
		} else if cur, dup := c.ooo[start]; !dup || end > cur {
			c.ooo[start] = end
		}
	}
	if c.closed {
		return // an application callback closed the connection
	}
	// Cumulative ACK for everything received in order so far.
	ack := c.stack.newSegment()
	ack.key, ack.fromInit = c.key, c.initiator
	c.fillAndSend(ack)
}

// drainOutOfOrder folds buffered runs that now overlap the in-order
// point. Multiple passes handle chains; overall coverage is
// deterministic regardless of map iteration order.
func (c *Conn) drainOutOfOrder() {
	for {
		advanced := false
		for start, end := range c.ooo {
			if start <= c.rcvNxt {
				delete(c.ooo, start)
				if end > c.rcvNxt {
					c.advanceTo(end)
				}
				advanced = true
			}
		}
		if !advanced {
			return
		}
	}
}

// advanceTo moves rcvNxt forward and fires application callbacks with
// the metadata attached by the peer's sender.
func (c *Conn) advanceTo(end int64) {
	from := c.rcvNxt
	c.rcvNxt = end
	c.BytesDelivered += end - from
	peer := c.peer
	if peer == nil {
		return
	}
	for i := peer.recBase; i < len(peer.records); i++ {
		r := peer.records[i]
		if r.end <= from {
			continue
		}
		if r.start >= end {
			break
		}
		lo, hi := maxI64(r.start, from), minI64(r.end, end)
		if hi > lo && c.OnBytes != nil {
			c.OnBytes(int(hi-lo), r.meta)
		}
		if r.end <= end && r.end > from && !r.aborted && c.OnRecord != nil {
			c.OnRecord(r.meta)
		}
	}
}

// processAck runs sender-side congestion control. withData suppresses
// duplicate-ACK counting for piggybacked ACKs on data segments.
func (c *Conn) processAck(ackNo int64, withData bool) {
	if c.closed {
		return // an OnBytes/OnRecord callback may have closed us
	}
	opts := &c.stack.opts
	mss := float64(opts.MSS)
	switch {
	case ackNo > c.sndUna:
		acked := ackNo - c.sndUna
		c.sndUna = ackNo
		c.gcRecords()
		// RTT sample (Karn: skip if the timed segment was retransmitted).
		if c.timing && ackNo > c.timedSeq {
			if !c.timedRetrans {
				c.updateRTT(c.stack.loop.Now() - c.timedAt)
			}
			c.timing = false
		}
		if c.inRecovery {
			if ackNo >= c.recoverSeq {
				c.inRecovery = false
				c.cwnd = c.ssthresh
				c.dupAcks = 0
			} else {
				// NewReno partial ACK: retransmit the next hole; deflate
				// the window by the amount acked, then inflate by one MSS.
				c.retransmit(c.sndUna)
				c.cwnd = maxF(c.cwnd-float64(acked)+mss, mss)
			}
		} else {
			c.dupAcks = 0
			if c.cwnd < c.ssthresh {
				// Slow start with appropriate byte counting (cap 2*MSS).
				c.cwnd += minF(float64(acked), 2*mss)
				if c.cwnd > c.ssthresh {
					c.cwnd = c.ssthresh
				}
			} else {
				c.cwnd += mss * mss / c.cwnd // congestion avoidance
			}
		}
		c.backoff = 0
		c.resetRTOTimer()
		c.trySend()
	case ackNo == c.sndUna && c.sndNxt > c.sndUna && !withData:
		c.dupAcks++
		if c.inRecovery {
			c.cwnd += mss
			c.trySend()
		} else if c.dupAcks >= 3 {
			c.enterRecovery()
		} else if c.writeEnd > c.sndNxt {
			// RFC 3042 limited transmit: send one new segment per early
			// duplicate ACK to keep the ACK clock alive; without it,
			// small-window tail loss degenerates into RTO stalls.
			c.limitedTransmit()
		} else if int64(c.dupAcks) >= maxI64(1, (c.sndNxt-c.sndUna)/int64(opts.MSS)-1) {
			// RFC 5827 early retransmit: with too little in flight to
			// ever produce three duplicate ACKs, lower the threshold.
			c.enterRecovery()
		}
	}
}

// limitedTransmit sends one segment of new data beyond cwnd.
func (c *Conn) limitedTransmit() {
	avail := c.writeEnd - c.sndNxt
	if avail <= 0 {
		return
	}
	length := int(minI64(int64(c.stack.opts.MSS), avail))
	seg := c.stack.newSegment()
	seg.key, seg.seq, seg.length, seg.fromInit = c.key, c.sndNxt, length, c.initiator
	c.sndNxt += int64(length)
	c.BytesSent += int64(length)
	c.fillAndSend(seg)
}

func (c *Conn) enterRecovery() {
	mss := float64(c.stack.opts.MSS)
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = maxF(flight/2, 2*mss)
	c.cwnd = c.ssthresh + 3*mss
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.retransmit(c.sndUna)
	c.resetRTOTimer()
}

// retransmit resends one segment starting at seq. The length never
// exceeds what was originally sent (no resegmentation past sndNxt).
func (c *Conn) retransmit(seq int64) {
	length := int(minI64(int64(c.stack.opts.MSS), c.sndNxt-seq))
	if length <= 0 {
		return
	}
	if c.timing && seq <= c.timedSeq && c.timedSeq < seq+int64(length) {
		c.timedRetrans = true
	}
	c.Retransmits++
	c.BytesSent += int64(length)
	seg := c.stack.newSegment()
	seg.key, seg.seq, seg.length, seg.fromInit = c.key, seq, length, c.initiator
	c.fillAndSend(seg)
}

func (c *Conn) updateRTT(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if !c.haveSample {
		c.srtt = sample
		c.rttvar = sample / 2
		c.haveSample = true
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = clampDur(c.srtt+4*c.rttvar, c.stack.opts.RTOMin, c.stack.opts.RTOMax)
}

func (c *Conn) resetRTOTimer() {
	c.stack.loop.Cancel(c.rtoTimer)
	c.rtoTimer = sim.Event{}
	if c.sndNxt == c.sndUna {
		return // nothing outstanding
	}
	rto := clampDur(c.rto<<uint(c.backoff), c.stack.opts.RTOMin, c.stack.opts.RTOMax)
	c.rtoTimer = c.stack.loop.AfterTimer(rto, connRTO, c, nil)
}

func (c *Conn) onRTO() {
	if c.closed || c.sndNxt == c.sndUna {
		return
	}
	c.Timeouts++
	mss := float64(c.stack.opts.MSS)
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = maxF(flight/2, 2*mss)
	c.cwnd = mss
	c.dupAcks = 0
	c.inRecovery = false
	c.timing = false // Karn: invalidate the outstanding sample
	if c.backoff < 12 {
		c.backoff++
	}
	c.retransmit(c.sndUna)
	c.resetRTOTimer()
}

// trySend pushes new segments while the congestion window allows.
func (c *Conn) trySend() {
	if !c.established || c.closed {
		return
	}
	opts := &c.stack.opts
	for {
		if float64(c.sndNxt-c.sndUna) >= c.cwnd {
			return
		}
		avail := c.writeEnd - c.sndNxt
		if avail <= 0 {
			return
		}
		length := int(minI64(int64(opts.MSS), avail))
		if !c.timing {
			c.timing = true
			c.timedSeq = c.sndNxt
			c.timedAt = c.stack.loop.Now()
			c.timedRetrans = false
		}
		seg := c.stack.newSegment()
		seg.key, seg.seq, seg.length, seg.fromInit = c.key, c.sndNxt, length, c.initiator
		c.sndNxt += int64(length)
		c.BytesSent += int64(length)
		c.fillAndSend(seg)
		if !c.stack.loop.Pending(c.rtoTimer) {
			c.resetRTOTimer()
		}
	}
}

// gcRecords forgets fully-acked record prefixes so long-lived
// connections (payment channels send tens of megabytes) do not grow
// without bound. Acked implies delivered, so the peer no longer needs
// those records.
func (c *Conn) gcRecords() {
	for c.recBase < len(c.records) && c.records[c.recBase].end <= c.sndUna {
		c.recBase++
	}
	if c.recBase > 256 && c.recBase*2 > len(c.records) {
		c.records = append([]record(nil), c.records[c.recBase:]...)
		c.recBase = 0
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
