// Package simclock adapts the discrete-event loop to the core.Clock
// interface, letting the thinner, server, and client models run over
// virtual time.
package simclock

import (
	"time"

	"speakup/internal/core"
	"speakup/internal/sim"
)

// Clock implements core.Clock on top of a sim.Loop.
type Clock struct{ Loop *sim.Loop }

var _ core.Clock = Clock{}

// New wraps loop.
func New(loop *sim.Loop) Clock { return Clock{Loop: loop} }

// Now returns the loop's virtual time.
func (c Clock) Now() time.Duration { return c.Loop.Now() }

// After schedules fn after d on the loop and returns a cancel func.
// The loop's event slots are arena-recycled; the only allocation here
// is the returned cancel closure (plus whatever fn captured), which is
// why per-packet work uses the loop's typed timers directly instead of
// going through the Clock interface.
func (c Clock) After(d time.Duration, fn func()) func() {
	loop := c.Loop
	ev := loop.After(d, fn)
	return func() { loop.Cancel(ev) }
}
