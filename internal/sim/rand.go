package sim

import (
	"math"
	"math/bits"
)

// Rand is the loop's deterministic pseudo-random generator: a PCG-64
// (XSL-RR output over a 128-bit LCG state), inlined here so the hot
// path has no heap-allocated generator object, no interface dispatch,
// and no lock (math/rand's global functions take one). The method set
// covers what Loop.Uniform/Loop.Exp and model code draw — grow it
// only when a caller appears.
//
// The zero Rand is valid but fixed at seed 0; NewLoop seeds it.
type Rand struct {
	hi, lo uint64 // 128-bit LCG state
}

// 128-bit LCG multiplier (PCG's default) and an odd increment.
const (
	pcgMulHi = 0x2360ed051fc65da4
	pcgMulLo = 0x4385df649fccf645
	pcgIncHi = 0x5851f42d4c957f2d
	pcgIncLo = 0x14057b7ef767814f
)

// Seed resets the generator to a state derived from seed via two
// rounds of splitmix64, then advances once so near-equal seeds do not
// produce near-equal first outputs.
func (r *Rand) Seed(seed int64) {
	s := uint64(seed)
	r.lo = splitmix64(&s)
	r.hi = splitmix64(&s)
	r.Uint64()
}

func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	// Advance the 128-bit LCG: state = state*mul + inc.
	hi, lo := bits.Mul64(r.lo, pcgMulLo)
	hi += r.hi*pcgMulLo + r.lo*pcgMulHi
	lo, carry := bits.Add64(lo, pcgIncLo, 0)
	hi, _ = bits.Add64(hi, pcgIncHi, carry)
	r.hi, r.lo = hi, lo
	// XSL-RR: xor-fold the halves, rotate by the top bits.
	return bits.RotateLeft64(hi^lo, -int(hi>>58))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	// Rejection sampling to avoid modulo bias.
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1
// (inverse-CDF method; 1-u keeps the argument of Log away from zero).
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}
