// Package sim provides a deterministic discrete-event simulation engine.
//
// A Loop owns a virtual clock and a priority queue of events. Events are
// closures scheduled at absolute virtual times; the loop runs them in
// timestamp order (FIFO among equal timestamps). The engine is
// single-goroutine by design: all model state mutated from event
// callbacks needs no locking, and a fixed RNG seed makes entire runs
// reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured from the start of the run.
// It is a time.Duration so arithmetic is exact (integer nanoseconds).
type Time = time.Duration

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at   Time
	seq  uint64 // tie-break: schedule order among equal timestamps
	fn   func()
	idx  int // heap index, -1 when not queued
	dead bool
}

// Cancel prevents a pending event from running. Canceling an event that
// already ran (or was canceled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Pending reports whether the event is still queued and not canceled.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.idx >= 0 }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Loop is the simulation event loop. Create one with NewLoop.
type Loop struct {
	now    Time
	seq    uint64
	queue  eventHeap
	rng    *rand.Rand
	nRun   uint64
	halted bool
}

// NewLoop returns a Loop whose RNG is seeded with seed. Two loops
// with equal seeds and equal schedules produce identical runs.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand returns the loop's deterministic RNG. Model code must draw all
// randomness from this generator to preserve reproducibility.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Processed returns the number of events executed so far.
func (l *Loop) Processed() uint64 { return l.nRun }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering
// events would corrupt causality.
func (l *Loop) Schedule(at Time, fn func()) *Event {
	if at < l.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, l.now))
	}
	l.seq++
	e := &Event{at: at, seq: l.seq, fn: fn, idx: -1}
	heap.Push(&l.queue, e)
	return e
}

// After runs fn after delay d (d < 0 is treated as 0).
func (l *Loop) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return l.Schedule(l.now+d, fn)
}

// Halt stops the loop after the current event returns. Pending events
// stay queued; Run can be called again to resume.
func (l *Loop) Halt() { l.halted = true }

// Run executes events until the queue empties or until the next event
// would run strictly after deadline. The clock finishes at the later of
// its current value and deadline (like real time passing with nothing
// to do). Run returns the number of events executed by this call.
func (l *Loop) Run(deadline Time) uint64 {
	l.halted = false
	start := l.nRun
	for len(l.queue) > 0 && !l.halted {
		next := l.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&l.queue)
		if next.dead {
			continue
		}
		l.now = next.at
		next.fn()
		l.nRun++
	}
	if l.now < deadline && !l.halted {
		l.now = deadline
	}
	return l.nRun - start
}

// RunAll executes events until none remain. It is intended for tests
// and small models; workloads with self-regenerating events (timers)
// must use Run with a deadline instead.
func (l *Loop) RunAll() uint64 {
	start := l.nRun
	l.halted = false
	for len(l.queue) > 0 && !l.halted {
		next := heap.Pop(&l.queue).(*Event)
		if next.dead {
			continue
		}
		l.now = next.at
		next.fn()
		l.nRun++
	}
	return l.nRun - start
}

// Pending returns the number of queued (possibly canceled) events.
func (l *Loop) Pending() int { return len(l.queue) }

// Uniform returns a duration drawn uniformly from [lo, hi].
func (l *Loop) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(l.rng.Int63n(int64(hi-lo)+1))
}

// Exp returns an exponentially distributed duration with the given
// mean, truncated at 1000x the mean to keep event horizons finite.
func (l *Loop) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(l.rng.ExpFloat64() * float64(mean))
	if max := 1000 * mean; d > max {
		d = max
	}
	return d
}
