// Package sim provides a deterministic discrete-event simulation engine.
//
// A Loop owns a virtual clock and a priority queue of events. Events
// run in timestamp order (FIFO among equal timestamps). The engine is
// single-goroutine by design: all model state mutated from event
// callbacks needs no locking, and a fixed RNG seed makes entire runs
// reproducible bit-for-bit.
//
// The implementation is built for zero steady-state allocation on the
// scheduling hot path. Events live in a slot arena recycled through a
// free list; the priority queue is a hand-rolled 4-ary min-heap of
// small value entries (no interface boxing, no virtual dispatch); and
// hot callers use ScheduleTimer with a typed Handler plus two untyped
// pointer arguments instead of closures, so scheduling a packet hop
// never touches the garbage collector. Schedule/After with ordinary
// closures remain available for cold paths and tests.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp measured from the start of the run.
// It is a time.Duration so arithmetic is exact (integer nanoseconds).
type Time = time.Duration

// Handler is a typed event callback. The loop dispatches it with the
// two values supplied to ScheduleTimer: env is conventionally the
// long-lived object the event belongs to (a link, a connection), arg
// the per-event payload (a packet). Passing pointers through env/arg
// does not allocate; that is the point of this API.
type Handler func(env, arg any)

// Event is a handle to a scheduled event. It is a small value (copy
// freely); the zero Event refers to nothing, and Cancel/Pending on it
// are safe no-ops. Handles are generation-checked: once the event has
// run or been canceled-and-collected, the handle goes stale and all
// operations on it are no-ops.
type Event struct {
	slot uint32 // index+1 into the loop's arena; 0 = none
	gen  uint32
}

// slot states. A slot is queued from Schedule until the heap pops it
// or Cancel removes it (eager deletion: canceled timers leave the heap
// immediately, so churny re-armed timers — TCP RTO resets fire one per
// ACK — never inflate the heap with corpses).
const (
	slotFree = iota
	slotQueued
)

// eventSlot is one arena cell. Callback state is cleared eagerly on
// cancel/run so the arena never retains dead closures or payloads.
type eventSlot struct {
	at    Time
	fn    func() // closure form (Schedule/After)
	h     Handler
	env   any
	arg   any
	gen   uint32
	state uint32
	pos   int32 // index of this slot's entry in the heap
}

// entry is one heap element. The ordering key (at, seq) is stored
// inline so sift operations compare without dereferencing the arena.
type entry struct {
	at   Time
	seq  uint64
	slot uint32
}

func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Loop is the simulation event loop. Create one with NewLoop.
type Loop struct {
	now    Time
	seq    uint64 // tie-break: schedule order among equal timestamps
	heap   []entry
	slots  []eventSlot
	free   []uint32 // recycled arena indices
	rng    Rand
	nRun   uint64
	halted bool
}

// NewLoop returns a Loop whose RNG is seeded with seed. Two loops
// with equal seeds and equal schedules produce identical runs.
func NewLoop(seed int64) *Loop {
	l := &Loop{}
	l.rng.Seed(seed)
	return l
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand returns the loop's deterministic RNG. Model code must draw all
// randomness from this generator to preserve reproducibility.
func (l *Loop) Rand() *Rand { return &l.rng }

// Processed returns the number of events executed so far.
func (l *Loop) Processed() uint64 { return l.nRun }

// Grow pre-sizes the arena and heap for n simultaneously pending
// events, so even the first packets of a run schedule without growing
// a slice.
func (l *Loop) Grow(n int) {
	if cap(l.heap) < n {
		h := make([]entry, len(l.heap), n)
		copy(h, l.heap)
		l.heap = h
	}
	if cap(l.slots) < n {
		s := make([]eventSlot, len(l.slots), n)
		copy(s, l.slots)
		l.slots = s
	}
	if cap(l.free) < n {
		f := make([]uint32, len(l.free), n)
		copy(f, l.free)
		l.free = f
	}
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering
// events would corrupt causality. In steady state (arena warm) the
// call does not allocate; the closure fn itself is the caller's.
func (l *Loop) Schedule(at Time, fn func()) Event {
	e := l.alloc(at)
	l.slots[e.slot-1].fn = fn
	return e
}

// After runs fn after delay d (d < 0 is treated as 0).
func (l *Loop) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return l.Schedule(l.now+d, fn)
}

// ScheduleTimer runs h(env, arg) at absolute virtual time at. This is
// the zero-allocation form: h should be a package-level function (not
// a method value or closure, which allocate at the call site), and
// env/arg should be pointers or nil.
func (l *Loop) ScheduleTimer(at Time, h Handler, env, arg any) Event {
	e := l.alloc(at)
	s := &l.slots[e.slot-1]
	s.h, s.env, s.arg = h, env, arg
	return e
}

// AfterTimer runs h(env, arg) after delay d (d < 0 is treated as 0).
func (l *Loop) AfterTimer(d time.Duration, h Handler, env, arg any) Event {
	if d < 0 {
		d = 0
	}
	return l.ScheduleTimer(l.now+d, h, env, arg)
}

// alloc reserves an arena slot and pushes it onto the heap.
func (l *Loop) alloc(at Time) Event {
	if at < l.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, l.now))
	}
	l.seq++
	var idx uint32
	if n := len(l.free); n > 0 {
		idx = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		l.slots = append(l.slots, eventSlot{})
		idx = uint32(len(l.slots) - 1)
	}
	s := &l.slots[idx]
	s.at = at
	s.state = slotQueued
	l.push(entry{at: at, seq: l.seq, slot: idx})
	return Event{slot: idx + 1, gen: s.gen}
}

// Cancel prevents a pending event from running. Canceling an event
// that already ran (or was canceled), or the zero Event, is a no-op.
// The heap entry is removed immediately and the slot recycled.
func (l *Loop) Cancel(e Event) {
	if e.slot == 0 {
		return
	}
	s := &l.slots[e.slot-1]
	if s.gen != e.gen || s.state != slotQueued {
		return
	}
	l.removeAt(int(s.pos))
	s.fn, s.h, s.env, s.arg = nil, nil, nil, nil
	s.state = slotFree
	s.gen++
	l.free = append(l.free, e.slot-1)
}

// Pending reports whether the event is still queued and not canceled.
func (l *Loop) Pending(e Event) bool {
	if e.slot == 0 {
		return false
	}
	s := &l.slots[e.slot-1]
	return s.gen == e.gen && s.state == slotQueued
}

// Halt stops the loop after the current event returns. Pending events
// stay queued; Run can be called again to resume.
func (l *Loop) Halt() { l.halted = true }

// Run executes events until the queue empties or until the next event
// would run strictly after deadline. The clock finishes at the later of
// its current value and deadline (like real time passing with nothing
// to do). Run returns the number of events executed by this call.
func (l *Loop) Run(deadline Time) uint64 {
	l.halted = false
	start := l.nRun
	for len(l.heap) > 0 && !l.halted {
		if l.heap[0].at > deadline {
			break
		}
		at, fn, h, env, arg := l.pop()
		l.now = at
		if h != nil {
			h(env, arg)
		} else {
			fn()
		}
		l.nRun++
	}
	if l.now < deadline && !l.halted {
		l.now = deadline
	}
	return l.nRun - start
}

// RunAll executes events until none remain. It is intended for tests
// and small models; workloads with self-regenerating events (timers)
// must use Run with a deadline instead.
func (l *Loop) RunAll() uint64 {
	l.halted = false
	start := l.nRun
	for len(l.heap) > 0 && !l.halted {
		at, fn, h, env, arg := l.pop()
		l.now = at
		if h != nil {
			h(env, arg)
		} else {
			fn()
		}
		l.nRun++
	}
	return l.nRun - start
}

// pop removes the earliest heap entry, retires its slot to the free
// list (bumping the generation so stale handles die), and returns the
// callback. The slot is recycled before the callback runs, so
// callbacks may reschedule freely.
func (l *Loop) pop() (at Time, fn func(), h Handler, env, arg any) {
	e := l.heap[0]
	l.popRoot()
	s := &l.slots[e.slot]
	at, fn, h, env, arg = s.at, s.fn, s.h, s.env, s.arg
	s.fn, s.h, s.env, s.arg = nil, nil, nil, nil
	s.state = slotFree
	s.gen++
	l.free = append(l.free, e.slot)
	return
}

// QueueLen returns the number of queued events.
func (l *Loop) QueueLen() int { return len(l.heap) }

// --- 4-ary min-heap over entry values ---
//
// A 4-ary layout halves tree depth versus binary, trading slightly
// more comparisons per level for fewer cache-missing levels — the
// right trade for entries this small. Sift loops hole-shift instead
// of swapping: the moving entry is written once at its final position.
// Each placement records the entry's index in its arena slot, which is
// what lets Cancel remove from the middle in O(depth).

func (l *Loop) place(h []entry, i int, e entry) {
	h[i] = e
	l.slots[e.slot].pos = int32(i)
}

func (l *Loop) push(e entry) {
	l.heap = append(l.heap, e)
	l.siftUp(len(l.heap)-1, e)
}

func (l *Loop) popRoot() {
	h := l.heap
	n := len(h) - 1
	e := h[n]
	h[n] = entry{}
	l.heap = h[:n]
	if n > 0 {
		l.siftDown(0, e)
	}
}

// removeAt deletes the entry at heap index i (used by Cancel).
func (l *Loop) removeAt(i int) {
	h := l.heap
	n := len(h) - 1
	e := h[n]
	h[n] = entry{}
	l.heap = h[:n]
	if i == n {
		return
	}
	l.siftDown(i, e)
	if l.slots[e.slot].pos == int32(i) {
		l.siftUp(i, e)
	}
}

func (l *Loop) siftUp(i int, e entry) {
	h := l.heap
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(h[p]) {
			break
		}
		l.place(h, i, h[p])
		i = p
	}
	l.place(h, i, e)
}

func (l *Loop) siftDown(i int, e entry) {
	h := l.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if h[j].less(h[m]) {
				m = j
			}
		}
		if !h[m].less(e) {
			break
		}
		l.place(h, i, h[m])
		i = m
	}
	l.place(h, i, e)
}

// Uniform returns a duration drawn uniformly from [lo, hi].
func (l *Loop) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(l.rng.Int63n(int64(hi-lo)+1))
}

// Exp returns an exponentially distributed duration with the given
// mean, truncated at 1000x the mean to keep event horizons finite.
func (l *Loop) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(l.rng.ExpFloat64() * float64(mean))
	if max := 1000 * mean; d > max {
		d = max
	}
	return d
}
