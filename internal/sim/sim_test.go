package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleRunsInOrder(t *testing.T) {
	l := NewLoop(1)
	var got []int
	l.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	l.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	l.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	l.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	l := NewLoop(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	l.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	l := NewLoop(1)
	var at Time
	l.Schedule(42*time.Millisecond, func() { at = l.Now() })
	l.RunAll()
	if at != 42*time.Millisecond {
		t.Fatalf("Now inside event = %v, want 42ms", at)
	}
	if l.Now() != 42*time.Millisecond {
		t.Fatalf("Now after run = %v", l.Now())
	}
}

func TestRunDeadlineStopsAndAdvancesClock(t *testing.T) {
	l := NewLoop(1)
	ran := 0
	l.Schedule(10*time.Millisecond, func() { ran++ })
	l.Schedule(30*time.Millisecond, func() { ran++ })
	n := l.Run(20 * time.Millisecond)
	if n != 1 || ran != 1 {
		t.Fatalf("ran %d events before deadline, want 1", ran)
	}
	if l.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want deadline 20ms", l.Now())
	}
	l.Run(time.Second)
	if ran != 2 {
		t.Fatalf("second Run did not resume: ran=%d", ran)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	l := NewLoop(1)
	ran := false
	e := l.Schedule(time.Millisecond, func() { ran = true })
	l.Cancel(e)
	l.RunAll()
	if ran {
		t.Fatal("canceled event ran")
	}
	if l.Pending(e) {
		t.Fatal("canceled event still pending")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	l := NewLoop(1)
	ran := false
	later := l.Schedule(20*time.Millisecond, func() { ran = true })
	l.Schedule(10*time.Millisecond, func() { l.Cancel(later) })
	l.RunAll()
	if ran {
		t.Fatal("event canceled mid-run still executed")
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	l := NewLoop(1)
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, l.Now())
		if len(ticks) < 5 {
			l.After(10*time.Millisecond, tick)
		}
	}
	l.After(0, tick)
	l.RunAll()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		if want := time.Duration(i) * 10 * time.Millisecond; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	l := NewLoop(1)
	l.Schedule(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		l.Schedule(5*time.Millisecond, func() {})
	})
	l.RunAll()
}

func TestAfterClampsNegative(t *testing.T) {
	l := NewLoop(1)
	l.Schedule(10*time.Millisecond, func() {
		l.After(-time.Second, func() {})
	})
	l.RunAll() // must not panic
}

func TestHaltStopsLoop(t *testing.T) {
	l := NewLoop(1)
	ran := 0
	l.Schedule(1*time.Millisecond, func() { ran++; l.Halt() })
	l.Schedule(2*time.Millisecond, func() { ran++ })
	l.Run(time.Second)
	if ran != 1 {
		t.Fatalf("halt did not stop loop, ran=%d", ran)
	}
	if l.QueueLen() != 1 {
		t.Fatalf("queued after halt = %d, want 1", l.QueueLen())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		l := NewLoop(99)
		var draws []int64
		var step func()
		n := 0
		step = func() {
			draws = append(draws, l.Rand().Int63n(1000))
			n++
			if n < 50 {
				l.After(l.Exp(time.Millisecond), step)
			}
		}
		l.After(0, step)
		l.RunAll()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestUniformBounds(t *testing.T) {
	l := NewLoop(7)
	lo, hi := 9*time.Millisecond, 11*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := l.Uniform(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	if got := l.Uniform(hi, lo); got != hi {
		t.Fatalf("degenerate Uniform = %v, want lo", got)
	}
}

func TestExpMeanRoughlyCorrect(t *testing.T) {
	l := NewLoop(3)
	mean := 100 * time.Millisecond
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += l.Exp(mean)
	}
	got := sum / n
	if got < 90*time.Millisecond || got > 110*time.Millisecond {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
	if l.Exp(0) != 0 {
		t.Fatal("Exp(0) != 0")
	}
}

func TestProcessedCounts(t *testing.T) {
	l := NewLoop(1)
	for i := 0; i < 7; i++ {
		l.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	l.RunAll()
	if l.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", l.Processed())
	}
}

// Property: for any batch of events with random times, execution order
// is sorted by (time, schedule order).
func TestQuickExecutionOrderSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		l := NewLoop(5)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			at := time.Duration(d) * time.Microsecond
			i := i
			l.Schedule(at, func() { got = append(got, rec{l.Now(), i}) })
		}
		l.RunAll()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling an arbitrary subset runs exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		l := NewLoop(5)
		ran := make(map[int]bool)
		events := make([]Event, len(delays))
		for i, d := range delays {
			i := i
			events[i] = l.Schedule(time.Duration(d)*time.Microsecond, func() { ran[i] = true })
		}
		canceled := make(map[int]bool)
		for i := range events {
			if i < len(mask) && mask[i] {
				l.Cancel(events[i])
				canceled[i] = true
			}
		}
		l.RunAll()
		for i := range events {
			if ran[i] == canceled[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- typed (zero-allocation) timer events ---

func TestScheduleTimerInterleavesWithClosures(t *testing.T) {
	l := NewLoop(1)
	var got []string
	h := func(env, arg any) { got = append(got, *arg.(*string)) }
	a, b := "timer-a", "timer-b"
	l.ScheduleTimer(20*time.Millisecond, h, nil, &a)
	l.Schedule(10*time.Millisecond, func() { got = append(got, "closure-1") })
	l.ScheduleTimer(10*time.Millisecond, h, nil, &b) // same time: FIFO after closure-1
	l.Schedule(30*time.Millisecond, func() { got = append(got, "closure-2") })
	l.RunAll()
	want := []string{"closure-1", "timer-b", "timer-a", "closure-2"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTimerEnvArgDelivered(t *testing.T) {
	l := NewLoop(1)
	type box struct{ n int }
	env, arg := &box{1}, &box{2}
	l.AfterTimer(time.Millisecond, func(e, a any) {
		if e.(*box) != env || a.(*box) != arg {
			t.Error("env/arg not delivered intact")
		}
	}, env, arg)
	l.RunAll()
}

// A handle must go stale once its event runs: canceling it afterwards
// must not kill an unrelated event that recycled the same arena slot.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	l := NewLoop(1)
	first := l.Schedule(time.Millisecond, func() {})
	l.RunAll() // first's slot returns to the free list
	ran := false
	second := l.Schedule(2*time.Millisecond, func() { ran = true })
	l.Cancel(first) // stale: must be a no-op
	if !l.Pending(second) {
		t.Fatal("stale Cancel killed a recycled slot's event")
	}
	l.RunAll()
	if !ran {
		t.Fatal("second event did not run")
	}
}

func TestZeroEventSafe(t *testing.T) {
	l := NewLoop(1)
	var e Event
	l.Cancel(e) // no-op, no panic
	if l.Pending(e) {
		t.Fatal("zero Event reported pending")
	}
}

func TestCancelReleasesReferencesEarly(t *testing.T) {
	l := NewLoop(1)
	e := l.Schedule(time.Millisecond, func() {})
	l.Cancel(e)
	if s := &l.slots[e.slot-1]; s.fn != nil || s.h != nil || s.env != nil || s.arg != nil {
		t.Fatal("canceled slot retains callback references")
	}
}

func TestGrowPreallocates(t *testing.T) {
	l := NewLoop(1)
	l.Grow(1024)
	if cap(l.heap) < 1024 || cap(l.slots) < 1024 || cap(l.free) < 1024 {
		t.Fatalf("Grow did not pre-size: heap=%d slots=%d free=%d",
			cap(l.heap), cap(l.slots), cap(l.free))
	}
	// Growing must preserve queued events.
	hits := 0
	l.Schedule(time.Millisecond, func() { hits++ })
	l.Grow(4096)
	l.RunAll()
	if hits != 1 {
		t.Fatalf("event lost across Grow: hits=%d", hits)
	}
}

// The PCG must be a pure function of the seed and must differ across
// seeds.
func TestRandSeedDeterminism(t *testing.T) {
	var a, b, c Rand
	a.Seed(123)
	b.Seed(123)
	c.Seed(124)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		x, y, z := a.Uint64(), b.Uint64(), c.Uint64()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandInt63nBounds(t *testing.T) {
	var r Rand
	r.Seed(9)
	for _, n := range []int64{1, 2, 3, 7, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Int63n(n); v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
	counts := make([]int, 5)
	for i := 0; i < 50_000; i++ {
		counts[r.Int63n(5)]++
	}
	for v, c := range counts {
		if c < 9_000 || c > 11_000 {
			t.Fatalf("Int63n(5) skewed: value %d seen %d/50000", v, c)
		}
	}
}

func TestRandFloat64HalfOpen(t *testing.T) {
	var r Rand
	r.Seed(4)
	for i := 0; i < 100_000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestRandExpFloat64Mean(t *testing.T) {
	var r Rand
	r.Seed(6)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; mean < 0.98 || mean > 1.02 {
		t.Fatalf("exponential mean = %g, want ~1", mean)
	}
}
