package sim

import (
	"testing"
	"time"
)

// The zero-allocation invariant: once the arena and heap have grown to
// the workload's high-water mark, scheduling, canceling, and running
// events must not allocate. These tests are the regression fence for
// the hand-rolled heap + arena engine; if a change reintroduces
// per-event garbage, they fail before any benchmark notices.

func TestScheduleCancelZeroAlloc(t *testing.T) {
	l := NewLoop(1)
	l.Grow(64)
	fn := func() {}
	if avg := testing.AllocsPerRun(1000, func() {
		e := l.Schedule(l.Now()+time.Millisecond, fn)
		l.Cancel(e)
	}); avg != 0 {
		t.Fatalf("Schedule+Cancel allocates %.1f objects/op, want 0", avg)
	}
}

func TestScheduleRunZeroAlloc(t *testing.T) {
	l := NewLoop(1)
	l.Grow(64)
	fn := func() {}
	if avg := testing.AllocsPerRun(1000, func() {
		l.Schedule(l.Now()+time.Millisecond, fn)
		l.RunAll()
	}); avg != 0 {
		t.Fatalf("Schedule+run allocates %.1f objects/op, want 0", avg)
	}
}

var nopHandler Handler = func(env, arg any) {}

func TestScheduleTimerZeroAlloc(t *testing.T) {
	l := NewLoop(1)
	l.Grow(64)
	env := &struct{ n int }{}
	if avg := testing.AllocsPerRun(1000, func() {
		l.AfterTimer(time.Millisecond, nopHandler, env, env)
		l.RunAll()
	}); avg != 0 {
		t.Fatalf("ScheduleTimer+run allocates %.1f objects/op, want 0", avg)
	}
}

// Self-rescheduling typed timers — the shape of every periodic model
// timer — must be allocation-free too.
func TestTimerChainZeroAlloc(t *testing.T) {
	l := NewLoop(1)
	l.Grow(64)
	type chain struct{ left int }
	var tick Handler
	tick = func(env, arg any) {
		c := env.(*chain)
		if c.left--; c.left > 0 {
			l.AfterTimer(time.Microsecond, tick, c, nil)
		}
	}
	c := &chain{}
	if avg := testing.AllocsPerRun(100, func() {
		c.left = 100
		l.AfterTimer(time.Microsecond, tick, c, nil)
		l.RunAll()
	}); avg != 0 {
		t.Fatalf("timer chain allocates %.1f objects/op, want 0", avg)
	}
}

func TestRandZeroAlloc(t *testing.T) {
	l := NewLoop(1)
	if avg := testing.AllocsPerRun(1000, func() {
		_ = l.Rand().Uint64()
		_ = l.Uniform(time.Millisecond, 2*time.Millisecond)
		_ = l.Exp(time.Millisecond)
	}); avg != 0 {
		t.Fatalf("RNG draws allocate %.1f objects/op, want 0", avg)
	}
}
