package exp

import (
	"fmt"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/auction"
	"speakup/internal/core"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// --- A1: §3.2 random-drop/retry variant vs §3.3 payment-channel auction ---

// VariantPoint compares front-end policies on the standard mix.
type VariantPoint struct {
	Mode           string
	GoodAllocation float64
	FracGoodServed float64
}

// VariantsResult holds the A1 comparison.
type VariantsResult struct{ Points []VariantPoint }

// Table renders the variant comparison.
func (r *VariantsResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Ablation A1: front-end variants (25 good / 25 bad, c=100)",
		"variant", "good allocation", "frac good served")
	for _, p := range r.Points {
		t.AddRow(p.Mode, p.GoodAllocation, p.FracGoodServed)
	}
	return t
}

// Variants compares no defense, the §3.2 random-drop/retry design, and
// the §3.3 virtual auction under the standard equal-bandwidth attack.
func Variants(o Opts) *VariantsResult {
	o = o.withDefaults()
	res := &VariantsResult{}
	base := o.base("variants.json")
	modes := []appsim.Mode{appsim.ModeOff, appsim.ModeRandomDrop, appsim.ModeAuction}
	var g sweep.Grid
	for _, mode := range modes {
		m := mode
		g.Add("variants/"+mode.String(), cell(base, func(c *scenario.Config) {
			c.Mode = m
		}))
	}
	for i, sr := range o.sweepGrid(&g) {
		res.Points = append(res.Points, VariantPoint{
			Mode:           modes[i].String(),
			GoodAllocation: sr.Result.GoodAllocation,
			FracGoodServed: sr.Result.FractionGoodServed,
		})
	}
	return res
}

// --- A2: Theorem 3.1 timing adversaries vs the ε/2 bound ---

// TheoremPoint is one adversary strategy's outcome.
type TheoremPoint struct {
	Strategy string
	Epsilon  float64
	Share    float64
	Bound    float64
	Holds    bool
}

// TheoremResult holds the A2 game outcomes.
type TheoremResult struct{ Points []TheoremPoint }

// Table renders the theorem check.
func (r *TheoremResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Ablation A2: Theorem 3.1 — X's service share vs the ε/2 bound under timing adversaries",
		"adversary", "epsilon", "share", "bound", "holds")
	for _, p := range r.Points {
		t.AddRow(p.Strategy, p.Epsilon, p.Share, p.Bound, p.Holds)
	}
	return t
}

// Theorem31 plays the abstract auction game against every built-in
// adversary strategy (X at 1/3 of total bandwidth, 20k auctions).
func Theorem31(o Opts) *TheoremResult {
	o = o.withDefaults()
	res := &TheoremResult{}
	for _, s := range auction.All(o.Seed) {
		r := auction.Run(auction.Config{
			Rounds: 20000, XRate: 1, AdvRate: 2, Seed: o.Seed,
		}, s)
		res.Points = append(res.Points, TheoremPoint{
			Strategy: s.Name(),
			Epsilon:  r.Epsilon,
			Share:    r.XServiceShare,
			Bound:    r.Bound,
			Holds:    r.Holds(),
		})
	}
	return res
}

// --- A3: heterogeneous requests — naive auction vs §5 quantum auction ---

// HeteroPoint compares schedulers under a hard-request attack.
type HeteroPoint struct {
	Scheduler     string
	GoodWorkShare float64 // fraction of server time spent on good requests
	GoodServed    uint64
	BadServed     uint64
}

// HeteroResult holds the A3 comparison.
type HeteroResult struct{ Points []HeteroPoint }

// Table renders the comparison.
func (r *HeteroResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Ablation A3: attackers send 10x-hard requests (10 good / 10 bad, c=20 easy-req/s)",
		"scheduler", "good share of server time", "good served", "bad served")
	for _, p := range r.Points {
		t.AddRow(p.Scheduler, p.GoodWorkShare, p.GoodServed, p.BadServed)
	}
	return t
}

// Hetero pits the homogeneous auction thinner against the §5 quantum
// scheduler when attackers send requests that take 10x the server time
// of good requests. Charging per quantum makes hard requests cost
// proportionally more, restoring the good clients' time share.
func Hetero(o Opts) *HeteroResult {
	o = o.withDefaults()
	easy := 50 * time.Millisecond // c = 20 easy requests/s
	res := &HeteroResult{}
	base := o.base("hetero.json")
	var g sweep.Grid
	g.Add("hetero/naive", base)
	g.Add("hetero/quantum", cell(base, func(c *scenario.Config) {
		c.Mode = appsim.ModeHetero
		c.Hetero = core.HeteroConfig{Tau: easy}
	}))
	rs := o.sweepGrid(&g)
	naive, quantum := rs[0].Result, rs[1].Result
	for _, c := range []struct {
		name string
		r    *scenario.Result
	}{{"naive auction (§3.3)", naive}, {"quantum auction (§5)", quantum}} {
		good, bad := &c.r.Groups[0], &c.r.Groups[1]
		total := good.ServedWork + bad.ServedWork
		share := 0.0
		if total > 0 {
			share = float64(good.ServedWork) / float64(total)
		}
		res.Points = append(res.Points, HeteroPoint{
			Scheduler:     c.name,
			GoodWorkShare: share,
			GoodServed:    good.Served,
			BadServed:     bad.Served,
		})
	}
	return res
}

// --- A4: payment POST size vs allocation (§3.4 quiescence analysis) ---

// POSTSizePoint is one POST size probe.
type POSTSizePoint struct {
	PostBytes      int
	GoodAllocation float64
}

// POSTSizeResult holds the A4 sweep.
type POSTSizeResult struct{ Points []POSTSizePoint }

// Table renders the sweep.
func (r *POSTSizeResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Ablation A4: payment POST size vs good allocation (25 good / 25 bad, c=100)",
		"POST size (KB)", "good allocation")
	for _, p := range r.Points {
		t.AddRow(p.PostBytes/1000, p.GoodAllocation)
	}
	return t
}

// POSTSize sweeps the payment POST size (§3.4 discusses POST size
// relative to the bandwidth-delay product). On LAN RTTs the quiescent
// gaps between POSTs are negligible and the allocation barely moves —
// which is itself the §3.4 conclusion: the POST must only be large
// compared to the BDP, and 64 KB already is here.
func POSTSize(o Opts) *POSTSizeResult {
	o = o.withDefaults()
	res := &POSTSizeResult{}
	base := o.base("postsize.json")
	posts := []int{64_000, 250_000, 1_000_000, 4_000_000}
	var g sweep.Grid
	for _, post := range posts {
		p := post
		g.Add(fmt.Sprintf("postsize/%dKB", post/1000), cell(base, func(c *scenario.Config) {
			c.Sizes = appsim.Sizes{Post: p}
		}))
	}
	for i, sr := range o.sweepGrid(&g) {
		res.Points = append(res.Points, POSTSizePoint{
			PostBytes:      posts[i],
			GoodAllocation: sr.Result.GoodAllocation,
		})
	}
	return res
}

// --- A5: bad client's parallel connections on a shared bottleneck (§4.2) ---

// ParallelConnsPoint is one probe of the §4.2 n-connection attack.
type ParallelConnsPoint struct {
	N int
	// EphemeralShare is the gamer's share of the bottlenecked pair's
	// service when it opens n parallel payment channels per request
	// (channels live ~1 price-payment each).
	EphemeralShare float64
	// SustainedShare is its share when it instead keeps n requests
	// outstanding, each with a long-lived payment channel — the real
	// bad-client pattern §4.2 analyzes.
	SustainedShare float64
	// Prediction is §4.2's n/(n+1) for sustained flows.
	Prediction float64
}

// ParallelConnsResult holds the A5 sweep.
type ParallelConnsResult struct{ Points []ParallelConnsPoint }

// Table renders the sweep.
func (r *ParallelConnsResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Ablation A5: n parallel flows vs a single-connection rival on a shared 2 Mbit/s link",
		"n", "ephemeral channels", "sustained flows", "n/(n+1)")
	for _, p := range r.Points {
		t.AddRow(p.N, p.EphemeralShare, p.SustainedShare, p.Prediction)
	}
	return t
}

// ParallelConns measures the §4.2 parallel-connection attack in two
// regimes. A gamer shares a 2 Mbit/s link with an identical
// single-connection rival. In the *ephemeral* regime the gamer opens n
// payment channels per request but keeps one request outstanding;
// channels live for about one payment cycle — too short for TCP's
// loss-driven fairness to transfer link share, so the extra
// connections buy almost nothing. In the *sustained* regime the gamer
// keeps n requests outstanding (each with its own long-lived channel),
// the pattern of real bad clients, and captures roughly n/(n+1) of the
// pair's service, as §4.2 predicts.
func ParallelConns(o Opts) *ParallelConnsResult {
	o = o.withDefaults()
	res := &ParallelConnsResult{}
	// The base declares the shared link and both rivals with fat access
	// links (the shared link, not the client's own uplink, must be the
	// binding constraint); each cell rewrites the gamer group.
	base := o.base("parconns.json")
	cfg := func(gamer scenario.ClientGroup) scenario.Config {
		return cell(base, func(c *scenario.Config) {
			c.Groups[1] = gamer
		})
	}
	share := func(r *scenario.Result) float64 {
		g, b := r.Groups[0].Served, r.Groups[1].Served
		if g+b == 0 {
			return 0
		}
		return float64(b) / float64(g+b)
	}
	ns := []int{1, 2, 5, 10}
	var grid sweep.Grid
	type pair struct{ ephemeral, sustained int }
	cells := make([]pair, len(ns))
	for i, n := range ns {
		cells[i].ephemeral = grid.Add(fmt.Sprintf("parconns/n=%d/ephemeral", n), cfg(scenario.ClientGroup{
			Name: "bn-gamer", Count: 1, Good: false, Bottleneck: 1,
			Lambda: 10, Window: 1, PayConns: n, Bandwidth: 10e6,
		}))
		cells[i].sustained = grid.Add(fmt.Sprintf("parconns/n=%d/sustained", n), cfg(scenario.ClientGroup{
			Name: "bn-gamer", Count: 1, Good: false, Bottleneck: 1,
			Lambda: 40, Window: n, Bandwidth: 10e6,
		}))
	}
	rs := o.sweepGrid(&grid)
	for i, n := range ns {
		res.Points = append(res.Points, ParallelConnsPoint{
			N:              n,
			EphemeralShare: share(rs[cells[i].ephemeral].Result),
			SustainedShare: share(rs[cells[i].sustained].Result),
			Prediction:     float64(n) / float64(n+1),
		})
	}
	return res
}
