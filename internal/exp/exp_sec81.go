package exp

import (
	"speakup/internal/appsim"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// Sec81Point is one (defense, bot type) cell of the §8.1 comparison.
type Sec81Point struct {
	Defense        string
	Bots           string
	GoodAllocation float64
	FracGoodServed float64
}

// Sec81Result holds the detect-and-block vs speak-up comparison.
type Sec81Result struct{ Points []Sec81Point }

// Table renders the comparison.
func (r *Sec81Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Sec 8.1: profiling (detect-and-block) vs speak-up, dumb and smart bots (25 good / 25 bots)",
		"defense", "bots", "good allocation", "frac good served")
	for _, p := range r.Points {
		t.AddRow(p.Defense, p.Bots, p.GoodAllocation, p.FracGoodServed)
	}
	return t
}

// Sec81SmartBots reproduces the paper's §8.1 argument as an
// experiment. Profiling rate-limits each address to Slack (3x) times
// the learned good-client baseline (λ=2), which is the best case for
// profiling: the profile is perfect. Against *dumb* bots (λ=40) it
// blocks almost everything and wins outright. Against *smart* bots
// that fly under the profiling radar (λ=6 = exactly the allowed
// slack), it "can only limit, not block" them: the bots triple the
// good clients' request rate and take most of the server. Speak-up
// doesn't care how clever the bots' request timing is — allocation
// follows bandwidth either way.
func Sec81SmartBots(o Opts) *Sec81Result {
	o = o.withDefaults()
	res := &Sec81Result{}
	// The base declares the dumb-bot population under profiling; smart
	// bots mimic good clients but exploit the profile's slack (3x the
	// baseline rate, modest window) via a per-cell override.
	base := o.base("sec81.json")
	smartBots := map[string]bool{"smart (λ=6)": true}
	defenses := []struct {
		name string
		mode appsim.Mode
	}{
		{"profiling", appsim.ModeProfiling},
		{"speak-up", appsim.ModeAuction},
		{"none", appsim.ModeOff},
	}
	type gridCell struct{ defense, bots string }
	var cells []gridCell
	var g sweep.Grid
	for _, bots := range []string{"dumb (λ=40)", "smart (λ=6)"} {
		for _, d := range defenses {
			mode, smart := d.mode, smartBots[bots]
			g.Add("sec81/"+d.name+"/"+bots, cell(base, func(c *scenario.Config) {
				c.Mode = mode
				if smart {
					c.Groups[1].Lambda = 6
					c.Groups[1].Window = 3
				}
			}))
			cells = append(cells, gridCell{defense: d.name, bots: bots})
		}
	}
	for i, sr := range o.sweepGrid(&g) {
		res.Points = append(res.Points, Sec81Point{
			Defense:        cells[i].defense,
			Bots:           cells[i].bots,
			GoodAllocation: sr.Result.GoodAllocation,
			FracGoodServed: sr.Result.FractionGoodServed,
		})
	}
	return res
}
