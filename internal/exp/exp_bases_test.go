package exp

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"speakup/configs"
	"speakup/internal/appsim"
	"speakup/internal/config"
	"speakup/internal/core"
	"speakup/internal/scenario"
)

// updateConfigs regenerates configs/*.json driver bases from the
// legacy literals below:
//
//	go test ./internal/exp -run TestDriverBases -update-configs
//
// then rebuild so the embedded file set picks the files up.
var updateConfigs = flag.Bool("update-configs", false, "rewrite configs/ driver bases from the legacy Go literals")

// driverBase pins one configs/ file to the Go literal it replaced in a
// figure driver. Cfg carries zero Seed and Duration: drivers stamp
// both from Opts after loading, so they are not part of the base.
type driverBase struct {
	Name  string
	Notes string
	Cfg   scenario.Config
}

// legacyBases is the pre-refactor scenario of every figure driver,
// verbatim. Grid axes the drivers still vary per cell (counts, modes,
// capacities, sizes) are pinned here at each driver's first cell or
// canonical operating point.
func legacyBases() map[string]driverBase {
	easy := 50 * time.Millisecond
	return map[string]driverBase{
		"fig2.json": {
			Name:  "fig2",
			Notes: "Figure 2 base: 50 clients x 2 Mbit/s at f=0.5, c=100. The driver sweeps the good count 5..45 and toggles mode off per cell.",
			Cfg: scenario.Config{
				Capacity: 100, Mode: appsim.ModeAuction, Groups: equalMix(25),
			},
		},
		"fig345.json": {
			Name:  "fig345",
			Notes: "Figures 3-5 base: 25 good / 25 bad (G=B=50 Mbit/s), c=100 (c_id). The driver sweeps c in {50,100,200} and toggles mode off per cell.",
			Cfg: scenario.Config{
				Capacity: 100, Mode: appsim.ModeAuction, Groups: equalMix(25),
			},
		},
		"sec74.json": {
			Name:  "sec74",
			Notes: "Sec 7.4 base: the standard G=B mix at c_id=100. The capacity sweep raises c; the window sweep sets the bad clients' w per cell.",
			Cfg: scenario.Config{
				Capacity: 100, Mode: appsim.ModeAuction, Groups: equalMix(25),
			},
		},
		"fig6.json": {
			Name:  "fig6",
			Notes: "Figure 6: 5 bandwidth categories of 10 good LAN clients (0.5i Mbit/s), c=10. Runs as-is; the driver adds no overrides.",
			Cfg: scenario.Config{
				Capacity: 10, Mode: appsim.ModeAuction,
				Groups: []scenario.ClientGroup{
					{Name: categoryName(1), Count: 10, Good: true, Bandwidth: 0.5e6},
					{Name: categoryName(2), Count: 10, Good: true, Bandwidth: 1.0e6},
					{Name: categoryName(3), Count: 10, Good: true, Bandwidth: 1.5e6},
					{Name: categoryName(4), Count: 10, Good: true, Bandwidth: 2.0e6},
					{Name: categoryName(5), Count: 10, Good: true, Bandwidth: 2.5e6},
				},
			},
		},
		"fig7.json": {
			Name:  "fig7",
			Notes: "Figure 7: 5 RTT categories (one-way access delay 50i ms), all good, c=10. The all-bad cell flips every group's Good flag.",
			Cfg: scenario.Config{
				Capacity: 10, Mode: appsim.ModeAuction,
				Groups: []scenario.ClientGroup{
					{Name: categoryName(1), Count: 10, Good: true, LinkDelay: 50 * time.Millisecond},
					{Name: categoryName(2), Count: 10, Good: true, LinkDelay: 100 * time.Millisecond},
					{Name: categoryName(3), Count: 10, Good: true, LinkDelay: 150 * time.Millisecond},
					{Name: categoryName(4), Count: 10, Good: true, LinkDelay: 200 * time.Millisecond},
					{Name: categoryName(5), Count: 10, Good: true, LinkDelay: 250 * time.Millisecond},
				},
			},
		},
		"fig8.json": {
			Name:  "fig8",
			Notes: "Figure 8: 30 clients behind a shared 40 Mbit/s bottleneck plus 10+10 direct, c=50, at the 5g/25b split. The driver sweeps the split counts.",
			Cfg: scenario.Config{
				Capacity: 50, Mode: appsim.ModeAuction,
				Bottlenecks: []scenario.Bottleneck{{Rate: 40e6, Delay: 250 * time.Microsecond}},
				Groups: []scenario.ClientGroup{
					{Name: "bn-good", Count: 5, Good: true, Bottleneck: 1},
					{Name: "bn-bad", Count: 25, Good: false, Bottleneck: 1},
					{Name: "direct-good", Count: 10, Good: true},
					{Name: "direct-bad", Count: 10, Good: false},
				},
			},
		},
		"fig9.json": {
			Name:  "fig9",
			Notes: "Figure 9: 10 good speak-up clients share a 1 Mbit/s, 100 ms bottleneck with bystander H downloading a 1 KB file, c=2. The driver sweeps the file size and toggles mode off.",
			Cfg: scenario.Config{
				Capacity: 2, Mode: appsim.ModeAuction,
				Bottlenecks: []scenario.Bottleneck{{Rate: 1e6, Delay: 100 * time.Millisecond}},
				Groups: []scenario.ClientGroup{
					{Name: "bn-good", Count: 10, Good: true, Bottleneck: 1},
				},
				BystanderH: &scenario.Bystander{FileSize: 1000, MaxDownloads: 100},
			},
		},
		"variants.json": {
			Name:  "variants",
			Notes: "Ablation A1 base: the standard mix at c=100 under the auction. The driver compares modes off, random-drop, auction.",
			Cfg: scenario.Config{
				Capacity: 100, Mode: appsim.ModeAuction, Groups: equalMix(25),
			},
		},
		"hetero.json": {
			Name:  "hetero",
			Notes: "Ablation A3 base: attackers send 10x-hard requests (10 good / 10 bad, c=20 easy-req/s) under the naive auction. The quantum cell switches mode to hetero with tau=50ms.",
			Cfg: scenario.Config{
				Capacity: 20, Mode: appsim.ModeAuction,
				Groups: []scenario.ClientGroup{
					{Name: "good", Count: 10, Good: true, Work: easy},
					{Name: "bad", Count: 10, Good: false, Work: 10 * easy},
				},
			},
		},
		"postsize.json": {
			Name:  "postsize",
			Notes: "Ablation A4 base: the standard mix at c=100. The driver sweeps the payment POST size via the sizes section.",
			Cfg: scenario.Config{
				Capacity: 100, Mode: appsim.ModeAuction, Groups: equalMix(25),
			},
		},
		"parconns.json": {
			Name:  "parconns",
			Notes: "Ablation A5 base: a gamer and a fair single-connection rival share a 2 Mbit/s link, plus one direct good client, c=2, at n=1 ephemeral channels. The driver rewrites the gamer group per cell.",
			Cfg: scenario.Config{
				Capacity: 2, Mode: appsim.ModeAuction,
				Bottlenecks: []scenario.Bottleneck{{Rate: 2e6, Delay: time.Millisecond}},
				Groups: []scenario.ClientGroup{
					{Name: "bn-fair", Count: 1, Good: true, Bottleneck: 1, Lambda: 10, Window: 1, Bandwidth: 10e6},
					{Name: "bn-gamer", Count: 1, Good: false, Bottleneck: 1, Lambda: 10, Window: 1, PayConns: 1, Bandwidth: 10e6},
					{Name: "direct-good", Count: 1, Good: true, Lambda: 10, Window: 1},
				},
			},
		},
		"sec81.json": {
			Name:  "sec81",
			Notes: "Sec 8.1 base: 25 good / 25 dumb bots (λ=40) under profiling with a perfect profile (baseline 2, slack 3x), c=100. The driver swaps defenses and the smart-bot group per cell.",
			Cfg: scenario.Config{
				Capacity: 100, Mode: appsim.ModeProfiling,
				Groups: []scenario.ClientGroup{
					{Name: "good", Count: 25, Good: true},
					{Name: "bots", Count: 25, Good: false},
				},
				Profiler: core.ProfilerConfig{BaselineRate: 2, Slack: 3},
			},
		},
		"flashcrowd.json": {
			Name:  "flashcrowd",
			Notes: "Sec 9 flash crowd: 50 good clients at λ=10, w=2 against c=100 — a 5x all-good overload. The driver compares mode off vs auction.",
			Cfg: scenario.Config{
				Capacity: 100, Mode: appsim.ModeAuction,
				Groups: []scenario.ClientGroup{
					{Name: "crowd", Count: 50, Good: true, Lambda: 10, Window: 2},
				},
			},
		},
		"adversary.json": {
			Name:  "adversary",
			Notes: "Adversary-sweep base: 10 good clients vs 10 strategy-driven attackers at c=30, under the ideal provisioning c_id=40. The driver rewrites the attacker group per (strategy, aggressiveness, bandwidth-ratio) cell.",
			Cfg: scenario.Config{
				Capacity: 30, Mode: appsim.ModeAuction,
				Groups: []scenario.ClientGroup{
					{Name: "good", Count: 10, Good: true},
					{Name: "poisson", Count: 10, Strategy: "poisson", Aggressiveness: 1, Bandwidth: 2e6},
				},
			},
		},
	}
}

// TestDriverBases pins every driver base file against the legacy
// literal it replaced: the embedded file must decode to exactly the
// scenario.Config the pre-refactor driver built. With -update-configs
// it instead rewrites the files from the literals.
func TestDriverBases(t *testing.T) {
	for file, base := range legacyBases() {
		if *updateConfigs {
			doc := config.FromScenario(base.Cfg)
			doc.Name = base.Name
			doc.Notes = base.Notes
			path := filepath.Join("..", "..", "configs", file)
			if err := os.WriteFile(path, config.Encode(doc), 0o644); err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			t.Logf("wrote %s", path)
			continue
		}
		doc, err := config.LoadFS(configs.FS, file)
		if err != nil {
			t.Errorf("%s: %v (regenerate with -update-configs)", file, err)
			continue
		}
		if doc.Name != base.Name {
			t.Errorf("%s: name = %q, want %q", file, doc.Name, base.Name)
		}
		got, err := doc.Config()
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		if !reflect.DeepEqual(got, base.Cfg) {
			t.Errorf("%s: decoded config differs from the legacy driver literal\n got: %+v\nwant: %+v", file, got, base.Cfg)
		}
	}
}

// TestBaseStampsOpts checks Opts.base applies seed and duration over
// the loaded file.
func TestBaseStampsOpts(t *testing.T) {
	if *updateConfigs {
		t.Skip("regenerating configs")
	}
	o := Opts{Seed: 7, Duration: 5 * time.Second}
	cfg := o.base("fig345.json")
	if cfg.Seed != 7 || cfg.Duration != 5*time.Second {
		t.Fatalf("base did not stamp Opts: seed=%d duration=%v", cfg.Seed, cfg.Duration)
	}
	if cfg.Capacity != 100 || len(cfg.Groups) != 2 {
		t.Fatalf("unexpected base content: %+v", cfg)
	}
}

// TestCellIsolation checks cell's copies are deep enough that grid
// cells sharing a base never share mutable memory.
func TestCellIsolation(t *testing.T) {
	if *updateConfigs {
		t.Skip("regenerating configs")
	}
	base := scenario.Config{
		Capacity: 1,
		Groups:   []scenario.ClientGroup{{Name: "g", Count: 1, Good: true}},
		Bottlenecks: []scenario.Bottleneck{
			{Rate: 1e6},
		},
		BystanderH: &scenario.Bystander{FileSize: 10},
	}
	mutated := cell(base, func(c *scenario.Config) {
		c.Groups[0].Count = 99
		c.Bottlenecks[0].Rate = 5e6
		c.BystanderH.FileSize = 77
		c.Mode = appsim.ModeAuction
	})
	if base.Groups[0].Count != 1 || base.Bottlenecks[0].Rate != 1e6 || base.BystanderH.FileSize != 10 || base.Mode != appsim.ModeOff {
		t.Fatalf("cell mutated the shared base: %+v", base)
	}
	if mutated.Groups[0].Count != 99 || mutated.BystanderH.FileSize != 77 {
		t.Fatalf("cell dropped the override: %+v", mutated)
	}
}
