package exp

import (
	"fmt"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// --- Figure 6: heterogeneous client bandwidth ---

// Fig6Point is one bandwidth category.
type Fig6Point struct {
	Bandwidth float64 // bits/s
	Observed  float64 // fraction of server allocated to this category
	Ideal     float64 // bandwidth-proportional share
}

// Fig6Result holds the Figure 6 series.
type Fig6Result struct{ Points []Fig6Point }

// Table renders Figure 6.
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 6: allocation across 5 bandwidth categories, 50 good LAN clients, c=10",
		"bandwidth (Mbit/s)", "observed fraction", "ideal fraction")
	for _, p := range r.Points {
		t.AddRow(p.Bandwidth/1e6, p.Observed, p.Ideal)
	}
	return t
}

// Fig6 reproduces the heterogeneous-bandwidth experiment: 5 categories
// of 10 good clients with bandwidth 0.5·i Mbit/s, server capacity 10.
func Fig6(o Opts) *Fig6Result {
	o = o.withDefaults()
	base := o.base("fig6.json")
	var totalBW float64
	for _, g := range base.Groups {
		totalBW += g.Bandwidth * float64(g.Count)
	}
	var grid sweep.Grid
	grid.Add("fig6/heterogeneous-bw", base)
	r := o.sweepGrid(&grid)[0].Result
	var served uint64
	for _, g := range r.Groups {
		served += g.Served
	}
	res := &Fig6Result{}
	for i, g := range r.Groups {
		bw := 0.5e6 * float64(i+1)
		obs := 0.0
		if served > 0 {
			obs = float64(g.Served) / float64(served)
		}
		res.Points = append(res.Points, Fig6Point{
			Bandwidth: bw,
			Observed:  obs,
			Ideal:     bw * 10 / totalBW,
		})
	}
	return res
}

func categoryName(i int) string {
	return "cat-" + string(rune('0'+i))
}

// --- Figure 7: heterogeneous RTTs ---

// Fig7Point is one RTT category.
type Fig7Point struct {
	RTT     time.Duration
	AllGood float64 // fraction captured in the all-good experiment
	AllBad  float64 // fraction captured in the all-bad experiment
	Ideal   float64 // 0.2 (equal bandwidth)
}

// Fig7Result holds the Figure 7 series.
type Fig7Result struct{ Points []Fig7Point }

// Table renders Figure 7.
func (r *Fig7Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 7: allocation across 5 RTT categories (c=10): good clients suffer with RTT, bad don't",
		"RTT (ms)", "all-good expt", "all-bad expt", "ideal")
	for _, p := range r.Points {
		t.AddRow(p.RTT.Milliseconds(), p.AllGood, p.AllBad, p.Ideal)
	}
	return t
}

// Fig7 reproduces the RTT experiment: 5 categories of 10 clients with
// client-thinner RTT = 100·i ms, all-good and all-bad runs, c=10.
func Fig7(o Opts) *Fig7Result {
	o = o.withDefaults()
	// The base declares the all-good run: one-way access delay of 50·i
	// ms gives an RTT of ~100·i ms, and the good clients still use λ=2,
	// w=1 (demand must exceed c=10; 50 clients at λ=2 offer 100 req/s).
	// The all-bad run flips every category.
	base := o.base("fig7.json")
	var grid sweep.Grid
	grid.Add("fig7/all-good", base)
	grid.Add("fig7/all-bad", cell(base, func(c *scenario.Config) {
		for i := range c.Groups {
			c.Groups[i].Good = false
		}
	}))
	rs := o.sweepGrid(&grid)
	allGood, allBad := rs[0].Result, rs[1].Result
	res := &Fig7Result{}
	totalG, totalB := allGood.ServedGood, allBad.ServedBad
	for i := 0; i < 5; i++ {
		p := Fig7Point{RTT: time.Duration(i+1) * 100 * time.Millisecond, Ideal: 0.2}
		if totalG > 0 {
			p.AllGood = float64(allGood.Groups[i].Served) / float64(totalG)
		}
		if totalB > 0 {
			p.AllBad = float64(allBad.Groups[i].Served) / float64(totalB)
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// --- Figure 8: good and bad clients sharing a bottleneck ---

// Fig8Point is one split of clients behind the bottleneck.
type Fig8Point struct {
	GoodBehind, BadBehind int
	// Fractions of the "bottleneck service" (server share captured by
	// all clients behind l) going to good/bad, vs the per-capita ideal.
	GoodShare, BadShare           float64
	GoodShareIdeal, BadShareIdeal float64
	// Fraction of the bottlenecked good clients' requests served, vs
	// the bandwidth-proportional ideal.
	FracGoodServed, FracGoodServedIdeal float64
}

// Fig8Result holds the Figure 8 series.
type Fig8Result struct{ Points []Fig8Point }

// Table renders Figure 8.
func (r *Fig8Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 8: good and bad clients behind a shared 40 Mbit/s bottleneck (c=50)",
		"split (g/b)", "good share of bottleneck svc", "ideal", "bad share", "ideal ", "frac bn-good served", "ideal  ")
	for _, p := range r.Points {
		t.AddRow(
			formatSplit(p.GoodBehind, p.BadBehind),
			p.GoodShare, p.GoodShareIdeal,
			p.BadShare, p.BadShareIdeal,
			p.FracGoodServed, p.FracGoodServedIdeal,
		)
	}
	return t
}

func formatSplit(g, b int) string {
	return itoa(g) + "g/" + itoa(b) + "b"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Fig8 reproduces the shared-bottleneck experiment: 30 clients behind
// a 40 Mbit/s link l (splits 5g/25b, 15g/15b, 25g/5b), plus 10 good
// and 10 bad direct clients; c = 50.
func Fig8(o Opts) *Fig8Result {
	o = o.withDefaults()
	res := &Fig8Result{}
	base := o.base("fig8.json")
	splits := [][2]int{{5, 25}, {15, 15}, {25, 5}}
	var grid sweep.Grid
	for _, split := range splits {
		ng, nb := split[0], split[1]
		grid.Add("fig8/"+formatSplit(ng, nb), cell(base, func(c *scenario.Config) {
			c.Groups[0].Count = ng
			c.Groups[1].Count = nb
		}))
	}
	for i, sr := range o.sweepGrid(&grid) {
		ng, nb := splits[i][0], splits[i][1]
		r := sr.Result
		bnGood, bnBad := &r.Groups[0], &r.Groups[1]
		bnServed := bnGood.Served + bnBad.Served
		p := Fig8Point{
			GoodBehind: ng, BadBehind: nb,
			GoodShareIdeal: float64(ng) / 30,
			BadShareIdeal:  float64(nb) / 30,
		}
		if bnServed > 0 {
			p.GoodShare = float64(bnGood.Served) / float64(bnServed)
			p.BadShare = float64(bnBad.Served) / float64(bnServed)
		}
		p.FracGoodServed = bnGood.FractionServed()
		// Ideal (paper footnote 2): the bottlenecked clients would each
		// have 2·(40/60) Mbit/s; their server share would then be
		// bandwidth-proportional, divided by their demand.
		bnBW := 40e6 / 60e6 * 2e6 // per-client effective bandwidth
		totalBW := float64(ng+nb)*bnBW + 20*2e6
		serverShare := float64(ng) * bnBW / totalBW * 50 // req/s for bn-good
		demand := float64(ng) * 2                        // λ=2 each
		p.FracGoodServedIdeal = minF(1, serverShare/demand)
		res.Points = append(res.Points, p)
	}
	return res
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// --- Figure 9: impact on other traffic ---

// Fig9Point is one transfer size.
type Fig9Point struct {
	SizeKB          int
	WithSpeakup     float64 // mean download seconds
	WithoutSpeakup  float64
	WithStddev      float64
	WithoutStddev   float64
	InflationFactor float64
}

// Fig9Result holds the Figure 9 series.
type Fig9Result struct{ Points []Fig9Point }

// Table renders Figure 9.
func (r *Fig9Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 9: bystander HTTP download latency over a shared 1 Mbit/s, 100 ms bottleneck",
		"size (KB)", "with speak-up (s)", "sd", "without (s)", "sd ", "inflation")
	for _, p := range r.Points {
		t.AddRow(p.SizeKB, p.WithSpeakup, p.WithStddev, p.WithoutSpeakup, p.WithoutStddev, p.InflationFactor)
	}
	return t
}

// Fig9 reproduces the bystander experiment: 10 good speak-up clients
// share a 1 Mbit/s, 100 ms one-way bottleneck with a web host H that
// repeatedly downloads a file from a separate server S; c = 2.
func Fig9(o Opts) *Fig9Result {
	o = o.withDefaults()
	res := &Fig9Result{}
	base := o.base("fig9.json")
	sizes := []int{1, 4, 16, 64, 128}
	var grid sweep.Grid
	type pair struct{ with, without int }
	cells := make([]pair, len(sizes))
	for i, sizeKB := range sizes {
		kb := sizeKB
		cfg := func(mode appsim.Mode) scenario.Config {
			return cell(base, func(c *scenario.Config) {
				c.Mode = mode
				c.BystanderH.FileSize = kb * 1000
			})
		}
		cells[i].with = grid.Add(fmt.Sprintf("fig9/%dKB/on", sizeKB), cfg(appsim.ModeAuction))
		cells[i].without = grid.Add(fmt.Sprintf("fig9/%dKB/off", sizeKB), cfg(appsim.ModeOff))
	}
	rs := o.sweepGrid(&grid)
	for i, sizeKB := range sizes {
		with, without := rs[cells[i].with].Result, rs[cells[i].without].Result
		p := Fig9Point{
			SizeKB:         sizeKB,
			WithSpeakup:    with.BystanderLatencies.Mean(),
			WithStddev:     with.BystanderLatencies.Stddev(),
			WithoutSpeakup: without.BystanderLatencies.Mean(),
			WithoutStddev:  without.BystanderLatencies.Stddev(),
		}
		if p.WithoutSpeakup > 0 {
			p.InflationFactor = p.WithSpeakup / p.WithoutSpeakup
		}
		res.Points = append(res.Points, p)
	}
	return res
}
