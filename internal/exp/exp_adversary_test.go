package exp

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"speakup/internal/adversary"
)

// goldenOpts pins the adversary sweep at a short, fixed scale: the
// golden file and the determinism test both use it so the two checks
// guard the same bytes.
var goldenOpts = Opts{Duration: 6 * time.Second, Seed: 1}

var updateAdversaryGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden/adversary_frontier.txt")

// TestAdversarySweepDeterminism reruns the robustness-frontier sweep
// serially and with 8 workers: every point and frontier row must be
// bit-identical. This is the adversary counterpart of
// TestWorkersDoNotChangeResults, and it additionally covers the
// cohort state (shared budget, coupon slots) being per-run.
func TestAdversarySweepDeterminism(t *testing.T) {
	serialOpts, parallelOpts := goldenOpts, goldenOpts
	serialOpts.Workers = 1
	parallelOpts.Workers = 8
	serial := Adversary(serialOpts)
	parallel := Adversary(parallelOpts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("adversary sweep differs by worker count:\nserial:   %+v\nparallel: %+v",
			serial.Points, parallel.Points)
	}
}

// TestAdversaryFrontierGolden pins the rendered grid and frontier
// tables byte-for-byte. Regenerate (only when an intentional model
// change lands) with:
//
//	go test ./internal/exp -run TestAdversaryFrontierGolden -update-golden
func TestAdversaryFrontierGolden(t *testing.T) {
	skipIfShort(t)
	r := Adversary(goldenOpts)
	got := r.Table().String() + "\n" + r.FrontierTable().String()
	path := filepath.Join("testdata", "golden", "adversary_frontier.txt")
	if *updateAdversaryGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("robustness frontier diverged from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestAdversaryShape asserts the frontier's qualitative claims at a
// longer scale: every registered strategy is present, and no strategy
// at equal bandwidth (ratio 1, aggro 1) pushes the good clients far
// below their bandwidth-proportional half.
func TestAdversaryShape(t *testing.T) {
	skipIfShort(t)
	r := Adversary(short)
	names := adversary.Names()
	wantCells := len(names) * len(adversaryAggros) * len(adversaryRatios)
	if len(r.Points) != wantCells {
		t.Fatalf("points = %d, want %d", len(r.Points), wantCells)
	}
	if len(r.Frontier) != len(names) {
		t.Fatalf("frontier rows = %d, want %d", len(r.Frontier), len(names))
	}
	for _, p := range r.Points {
		if p.Aggro == 1 && p.BWRatio == 1 {
			if p.GoodAllocation < 0.3 {
				t.Errorf("%s at equal bandwidth: good allocation %.3f, want >= 0.3",
					p.Strategy, p.GoodAllocation)
			}
		}
	}
	for _, f := range r.Frontier {
		if f.Worst <= 0 || f.Worst > 1 {
			t.Errorf("%s: worst frac good served %.3f out of range", f.Strategy, f.Worst)
		}
		// Doubling the attackers' bandwidth can halve the good share,
		// but no strategy should collapse it entirely.
		if f.Worst < 0.15 {
			t.Errorf("%s: worst-case good service %.3f — robustness frontier broken", f.Strategy, f.Worst)
		}
	}
	// The defector must pay less than the honest flood at every cell.
	paid := map[string]float64{}
	for _, p := range r.Points {
		if p.Aggro == 1 && p.BWRatio == 1 {
			paid[p.Strategy] = p.BadPaidMB
		}
	}
	if paid["defector"] >= paid["poisson"] {
		t.Errorf("defector paid %.1f MB >= honest poisson %.1f MB", paid["defector"], paid["poisson"])
	}
}
