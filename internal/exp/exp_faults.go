package exp

import (
	"fmt"
	"time"

	"speakup/internal/faults"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// FaultsPoint is one cell of the fault-injection sweep: one fault
// kind at one intensity against one bad:good bandwidth ratio, plus
// the fault-free baseline rows (Kind "none").
type FaultsPoint struct {
	Kind string
	// Intensity labels the magnitude tier ("low"/"high"; "-" for the
	// baseline). Magnitude is the kind-specific number behind it (drop
	// probability, jitter seconds, or outage fraction of the run).
	Intensity string
	Magnitude float64
	// BWRatio is the attackers' per-client access bandwidth as a
	// multiple of the good clients' 2 Mbit/s.
	BWRatio float64

	FracGoodServed float64
	// Retention is FracGoodServed relative to the fault-free baseline
	// at the same bandwidth ratio (1 for the baseline rows themselves).
	Retention      float64
	GoodAllocation float64
	// GoodRetried / GoodAbandoned count the good clients' re-issues and
	// deadline expiries — the retry budget at work.
	GoodRetried   uint64
	GoodAbandoned uint64
	// Shed counts arrivals turned away while the thinner was browned
	// out (origin faults only).
	Shed uint64
}

// FaultsFrontierRow is one fault kind's worst case across the scanned
// grid — how much good service the hardened stack retains under its
// nastiest cell.
type FaultsFrontierRow struct {
	Kind string
	// Worst is the minimum retention across the kind's (intensity,
	// bandwidth-ratio) cells; WorstIntensity and WorstBWRatio locate
	// the minimizing cell.
	Worst          float64
	WorstIntensity string
	WorstBWRatio   float64
	// MeanRetention averages retention over the kind's cells.
	MeanRetention float64
}

// FaultsResult holds the full grid and its frontier.
type FaultsResult struct {
	Points   []FaultsPoint
	Frontier []FaultsFrontierRow
	// Events is the total simulator events across the sweep.
	Events uint64
}

// Table renders the full grid.
func (r *FaultsResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Fault sweep: good service vs fault kind x intensity x bandwidth ratio (10 retrying good / 10 attackers, c=30)",
		"fault", "intensity", "magnitude", "bw ratio", "frac good served", "retention", "good alloc", "retried", "abandoned", "shed")
	for _, p := range r.Points {
		t.AddRow(p.Kind, p.Intensity, p.Magnitude, p.BWRatio, p.FracGoodServed,
			p.Retention, p.GoodAllocation, p.GoodRetried, p.GoodAbandoned, p.Shed)
	}
	return t
}

// FrontierTable renders the per-kind worst case: the robustness claim
// under infrastructure failure — a browned-out thinner plus retrying
// clients should degrade good service gracefully, not collapse it.
func (r *FaultsResult) FrontierTable() *metrics.Table {
	t := metrics.NewTable(
		"Fault frontier: worst-case good-service retention per fault kind",
		"fault", "worst retention", "at intensity", "at bw ratio", "mean retention")
	for _, f := range r.Frontier {
		t.AddRow(f.Kind, f.Worst, f.WorstIntensity, f.WorstBWRatio, f.MeanRetention)
	}
	return t
}

// faultKinds are the scanned failure modes, in table order.
var faultKinds = []faults.Kind{
	faults.LinkLoss, faults.LinkJitter, faults.Partition,
	faults.OriginStall, faults.OriginCrash,
}

// faultEvent builds the one-event plan for a grid cell. The window
// opens a sixth of the way into the run; link-quality faults (loss,
// jitter) hold for half the run, while outage faults (partition,
// stall, crash) last mag·run — their magnitude IS the outage length,
// since a partition's only intensity is how long it lasts.
func faultEvent(kind faults.Kind, mag float64, run time.Duration) faults.Event {
	ev := faults.Event{Kind: kind, At: run / 6, Magnitude: mag}
	switch kind {
	case faults.LinkLoss, faults.LinkJitter:
		ev.Target = faults.TargetTrunk
		ev.Duration = run / 2
	case faults.Partition:
		ev.Target = "access:good"
		ev.Duration = time.Duration(mag * float64(run))
		ev.Magnitude = 0
	case faults.OriginStall, faults.OriginCrash:
		ev.Duration = time.Duration(mag * float64(run))
		ev.Magnitude = 0
	}
	return ev
}

// faultMagnitudes gives each kind its low/high intensity pair.
func faultMagnitudes(kind faults.Kind) [2]float64 {
	switch kind {
	case faults.LinkLoss:
		return [2]float64{0.05, 0.30} // drop probability
	case faults.LinkJitter:
		return [2]float64{0.05, 0.50} // max extra delay, seconds
	default:
		return [2]float64{1. / 6, 1. / 3} // outage as a fraction of the run
	}
}

// faultRatios is the scanned bandwidth-ratio axis.
var faultRatios = []float64{1, 2}

// Faults sweeps the fault-injection plan over every failure mode at
// two intensities and two bad:good bandwidth ratios, against the
// hardened population of configs/faults.json (good clients retry with
// bounded jittered backoff and carry per-request deadlines; the
// thinner browns out and recovers around origin faults). Each ratio
// also runs fault-free to anchor retention: the headline number is
// the fraction of baseline good service each fault cell keeps.
func Faults(o Opts) *FaultsResult {
	o = o.withDefaults()
	base := o.base("faults.json")
	intensities := []string{"low", "high"}
	var g sweep.Grid
	type gridCell struct {
		kind      string
		intensity string
		mag       float64
		ratio     float64
	}
	var cells []gridCell
	// Baselines first so retention is computable in one pass.
	baseIdx := make(map[float64]int)
	for _, r := range faultRatios {
		ratio := r
		baseIdx[r] = g.Add(fmt.Sprintf("faults/none/bw=%gx", r), cell(base, func(c *scenario.Config) {
			c.Groups[1].Bandwidth = 2e6 * ratio
		}))
		cells = append(cells, gridCell{kind: "none", intensity: "-", ratio: r})
	}
	for _, k := range faultKinds {
		mags := faultMagnitudes(k)
		for mi, label := range intensities {
			for _, r := range faultRatios {
				kind, mag, ratio := k, mags[mi], r
				g.Add(fmt.Sprintf("faults/%s/%s/bw=%gx", k, label, r), cell(base, func(c *scenario.Config) {
					c.Groups[1].Bandwidth = 2e6 * ratio
					c.Faults = faults.Plan{faultEvent(kind, mag, c.Duration)}
				}))
				cells = append(cells, gridCell{kind: string(k), intensity: label, mag: mag, ratio: r})
			}
		}
	}
	rs := o.sweepGrid(&g)
	baseline := make(map[float64]float64)
	for r, i := range baseIdx {
		baseline[r] = rs[i].Result.FractionGoodServed
	}
	res := &FaultsResult{}
	for i, sr := range rs {
		c, r := cells[i], sr.Result
		good := &r.Groups[0]
		p := FaultsPoint{
			Kind:           c.kind,
			Intensity:      c.intensity,
			Magnitude:      c.mag,
			BWRatio:        c.ratio,
			FracGoodServed: r.FractionGoodServed,
			Retention:      1,
			GoodAllocation: r.GoodAllocation,
			GoodRetried:    good.Retried,
			GoodAbandoned:  good.Abandoned,
			Shed:           r.ThinnerStats.Shed,
		}
		if b := baseline[c.ratio]; c.kind != "none" && b > 0 {
			p.Retention = r.FractionGoodServed / b
		}
		res.Points = append(res.Points, p)
		res.Events += r.Events
	}
	for _, k := range faultKinds {
		row := FaultsFrontierRow{Kind: string(k), Worst: 2}
		n := 0
		for _, p := range res.Points {
			if p.Kind != string(k) {
				continue
			}
			if p.Retention < row.Worst {
				row.Worst = p.Retention
				row.WorstIntensity = p.Intensity
				row.WorstBWRatio = p.BWRatio
			}
			row.MeanRetention += p.Retention
			n++
		}
		row.MeanRetention /= float64(n)
		res.Frontier = append(res.Frontier, row)
	}
	return res
}
