// Package exp defines one runnable experiment per table and figure in
// the paper's evaluation (§7), at configurable duration. The benchmark
// harness (bench_test.go) runs them at reduced duration; cmd/repro
// runs them at paper scale (600 virtual seconds). Each experiment
// returns typed data plus a rendered table whose rows match what the
// paper's figure reports.
//
// Every experiment declares its scenario runs as a sweep.Grid and
// executes them through the sweep engine, so a figure's independent
// runs fan out across Opts.Workers goroutines. Results are read back
// by grid index, which keeps every figure bit-for-bit identical to a
// serial execution.
package exp

import (
	"fmt"
	"time"

	"speakup/configs"
	"speakup/internal/appsim"
	"speakup/internal/config"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// Opts scales the experiments.
type Opts struct {
	// Duration is the virtual time per run. The paper uses 600s; the
	// default here is 60s, which preserves every qualitative shape.
	Duration time.Duration
	// Seed makes runs reproducible. Defaults to 1.
	Seed int64
	// Workers is the number of scenario runs executed concurrently
	// within each experiment (0 = GOMAXPROCS). Results do not depend
	// on it.
	Workers int
	// Progress, if non-nil, observes every completed scenario run.
	Progress sweep.Progress
}

func (o Opts) withDefaults() Opts {
	if o.Duration == 0 {
		o.Duration = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// sweepGrid executes a grid with this Opts' parallelism and progress.
func (o Opts) sweepGrid(g *sweep.Grid) []sweep.Result {
	return sweep.Engine{Workers: o.Workers, Progress: o.Progress}.Sweep(g.Runs())
}

// base loads a driver's base scenario from the embedded configs/ file
// set and stamps this Opts' seed and duration over it. Figure drivers
// declare topology, population, and policy in configs/<name>; only
// their grid axes remain code (applied per cell with cell). The file
// set ships inside the binary, so a driver base cannot fail to load
// except through a programming error — hence the panic.
func (o Opts) base(name string) scenario.Config {
	doc, err := config.LoadFS(configs.FS, name)
	if err != nil {
		panic(fmt.Errorf("exp: embedded base scenario: %w", err))
	}
	cfg, err := doc.Config()
	if err != nil {
		panic(fmt.Errorf("exp: embedded base scenario %s: %w", name, err))
	}
	cfg.Seed = o.Seed
	cfg.Duration = o.Duration
	return cfg
}

// cell copies a base scenario and applies one grid cell's axis
// overrides. Groups, Bottlenecks, and BystanderH are cloned first, so
// mutations never leak between cells of the same base (the sweep
// engine runs cells concurrently).
func cell(base scenario.Config, mut func(*scenario.Config)) scenario.Config {
	base.Groups = append([]scenario.ClientGroup(nil), base.Groups...)
	base.Bottlenecks = append([]scenario.Bottleneck(nil), base.Bottlenecks...)
	if base.BystanderH != nil {
		b := *base.BystanderH
		base.BystanderH = &b
	}
	mut(&base)
	return base
}

// equalMix returns the standard 50-client, 2 Mbit/s-per-client
// population with nGood good clients and 50-nGood bad ones.
func equalMix(nGood int) []scenario.ClientGroup {
	return []scenario.ClientGroup{
		{Name: "good", Count: nGood, Good: true},
		{Name: "bad", Count: 50 - nGood, Good: false},
	}
}

// --- Figure 2 ---

// Fig2Point is one x-position of Figure 2.
type Fig2Point struct {
	F       float64 // good fraction of total bandwidth (x axis)
	With    float64 // good allocation with speak-up
	Without float64 // good allocation without speak-up
	Ideal   float64 // = F
}

// Fig2Result holds the Figure 2 series.
type Fig2Result struct{ Points []Fig2Point }

// Table renders the paper's Figure 2 series.
func (r *Fig2Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 2: server allocation to good clients vs their bandwidth fraction (c=100)",
		"f=G/(G+B)", "with speak-up", "without", "ideal")
	for _, p := range r.Points {
		t.AddRow(p.F, p.With, p.Without, p.Ideal)
	}
	return t
}

// Fig2 reproduces Figure 2: 50 clients x 2 Mbit/s, c = 100 req/s,
// varying the fraction f of good clients; measured with and without
// speak-up against the ideal proportional line.
func Fig2(o Opts) *Fig2Result {
	o = o.withDefaults()
	base := o.base("fig2.json")
	tenths := []int{1, 3, 5, 7, 9}
	var g sweep.Grid
	type pair struct{ on, off int }
	cells := make([]pair, len(tenths))
	for i, t := range tenths {
		nGood := 5 * t // 50 clients: f=0.1 -> 5 good
		split := func(c *scenario.Config) {
			c.Groups[0].Count = nGood
			c.Groups[1].Count = 50 - nGood
		}
		cells[i].on = g.Add(fmt.Sprintf("fig2/f=0.%d/on", t), cell(base, split))
		cells[i].off = g.Add(fmt.Sprintf("fig2/f=0.%d/off", t), cell(base, func(c *scenario.Config) {
			split(c)
			c.Mode = appsim.ModeOff
		}))
	}
	rs := o.sweepGrid(&g)
	res := &Fig2Result{}
	for i, t := range tenths {
		f := float64(t) / 10
		on, off := rs[cells[i].on].Result, rs[cells[i].off].Result
		res.Points = append(res.Points, Fig2Point{
			F: f, With: on.GoodAllocation, Without: off.GoodAllocation, Ideal: f,
		})
	}
	return res
}

// --- Figures 3, 4, 5 (shared runs: G=B=50 Mbit/s, c in {50,100,200}) ---

// Fig345Point carries everything Figures 3-5 report for one capacity.
type Fig345Point struct {
	C float64 // server capacity (requests/s)

	// Figure 3: allocations and service fractions, OFF and ON.
	GoodAllocOff, BadAllocOff float64
	GoodAllocOn, BadAllocOn   float64
	FracGoodServedOff         float64
	FracGoodServedOn          float64

	// Figure 4 (ON runs): time uploading dummy bytes, served good reqs.
	PayTimeMean, PayTimeP90 float64 // seconds

	// Figure 5 (ON runs): average price of served requests, bytes.
	PriceGood, PriceBad, PriceUpperBound float64
}

// Fig345Result holds the shared series.
type Fig345Result struct{ Points []Fig345Point }

// Fig345 runs the provisioning experiments once for all three figures:
// 25 good + 25 bad clients (G = B = 50 Mbit/s), c in {50, 100, 200};
// c_id = 100.
func Fig345(o Opts) *Fig345Result {
	o = o.withDefaults()
	base := o.base("fig345.json")
	caps := []float64{50, 100, 200}
	var g sweep.Grid
	type pair struct{ on, off int }
	cells := make([]pair, len(caps))
	for i, c := range caps {
		capacity := c
		cells[i].on = g.Add(fmt.Sprintf("fig345/c=%g/on", c), cell(base, func(cfg *scenario.Config) {
			cfg.Capacity = capacity
		}))
		cells[i].off = g.Add(fmt.Sprintf("fig345/c=%g/off", c), cell(base, func(cfg *scenario.Config) {
			cfg.Capacity = capacity
			cfg.Mode = appsim.ModeOff
		}))
	}
	rs := o.sweepGrid(&g)
	res := &Fig345Result{}
	for i, c := range caps {
		on, off := rs[cells[i].on].Result, rs[cells[i].off].Result
		goodOn, badOn := &on.Groups[0], &on.Groups[1]
		p := Fig345Point{
			C:                 c,
			GoodAllocOff:      off.GoodAllocation,
			BadAllocOff:       1 - off.GoodAllocation,
			GoodAllocOn:       on.GoodAllocation,
			BadAllocOn:        1 - on.GoodAllocation,
			FracGoodServedOff: off.FractionGoodServed,
			FracGoodServedOn:  on.FractionGoodServed,
			PayTimeMean:       goodOn.PayTimes.Mean(),
			PayTimeP90:        goodOn.PayTimes.Percentile(90),
			PriceGood:         goodOn.Prices.Mean(),
			PriceBad:          badOn.Prices.Mean(),
			PriceUpperBound:   100e6 / 8 / c, // (G+B)/c in bytes
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// Fig3Table renders Figure 3.
func (r *Fig345Result) Fig3Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 3: allocation and good service vs capacity (G=B=50 Mbit/s, c_id=100)",
		"c", "mode", "alloc good", "alloc bad", "frac good served")
	for _, p := range r.Points {
		t.AddRow(p.C, "OFF", p.GoodAllocOff, p.BadAllocOff, p.FracGoodServedOff)
		t.AddRow(p.C, "ON", p.GoodAllocOn, p.BadAllocOn, p.FracGoodServedOn)
	}
	return t
}

// Fig4Table renders Figure 4.
func (r *Fig345Result) Fig4Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 4: time uploading dummy bytes for served good requests (seconds)",
		"c", "mean", "90th pct")
	for _, p := range r.Points {
		t.AddRow(p.C, p.PayTimeMean, p.PayTimeP90)
	}
	return t
}

// Fig5Table renders Figure 5 (KBytes, like the paper's axis).
func (r *Fig345Result) Fig5Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 5: average price of served requests (KBytes)",
		"c", "good", "bad", "upper bound (G+B)/c")
	for _, p := range r.Points {
		t.AddRow(p.C, p.PriceGood/1000, p.PriceBad/1000, p.PriceUpperBound/1000)
	}
	return t
}

// --- §7.4: empirical adversarial advantage ---

// Sec74Point is one capacity probe.
type Sec74Point struct {
	C              float64
	FracGoodServed float64
	GoodAllocation float64
}

// Sec74Result reports the minimum capacity satisfying the good demand.
type Sec74Result struct {
	Points []Sec74Point
	// MinCapacity is the smallest probed c with FracGoodServed >=
	// Threshold; 0 if none qualified.
	MinCapacity float64
	Threshold   float64
	// IdealCapacity is c_id = g(1+B/G) = 100 for this population.
	IdealCapacity float64
}

// Table renders the capacity sweep.
func (r *Sec74Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Sec 7.4: capacity sweep, G=B=50 Mbit/s (c_id=100); min c serving all good demand",
		"c", "frac good served", "good allocation")
	for _, p := range r.Points {
		t.AddRow(p.C, p.FracGoodServed, p.GoodAllocation)
	}
	t.AddRow("min c", r.MinCapacity, "")
	t.AddRow("overprovisioning vs ideal", r.MinCapacity/r.IdealCapacity, "")
	return t
}

// Sec74MinCapacity sweeps c upward from c_id to find the provisioning
// needed to satisfy (nearly) all good demand — the paper finds 115,
// i.e. 15% above the bandwidth-proportional ideal.
func Sec74MinCapacity(o Opts) *Sec74Result {
	o = o.withDefaults()
	res := &Sec74Result{Threshold: 0.95, IdealCapacity: 100}
	base := o.base("sec74.json")
	caps := []float64{100, 105, 110, 115, 120, 130, 140}
	var g sweep.Grid
	for _, c := range caps {
		capacity := c
		g.Add(fmt.Sprintf("sec74/c=%g", c), cell(base, func(cfg *scenario.Config) {
			cfg.Capacity = capacity
		}))
	}
	for i, sr := range o.sweepGrid(&g) {
		c, r := caps[i], sr.Result
		res.Points = append(res.Points, Sec74Point{
			C: c, FracGoodServed: r.FractionGoodServed, GoodAllocation: r.GoodAllocation,
		})
		if res.MinCapacity == 0 && r.FractionGoodServed >= res.Threshold {
			res.MinCapacity = c
		}
	}
	return res
}

// Sec74WindowPoint is one bad-client window probe.
type Sec74WindowPoint struct {
	W              int
	BadAllocation  float64
	GoodAllocation float64
}

// Sec74WindowResult reports bad-client capture vs their window w.
type Sec74WindowResult struct{ Points []Sec74WindowPoint }

// Table renders the window sweep.
func (r *Sec74WindowResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Sec 7.4: bad-client capture vs their window w (c=100, G=B)",
		"w", "bad allocation", "good allocation")
	for _, p := range r.Points {
		t.AddRow(p.W, p.BadAllocation, p.GoodAllocation)
	}
	return t
}

// Sec74WindowSweep varies the bad clients' window w at c=100 (the
// paper checked w in [1,60] and chose w=20 as conservative).
func Sec74WindowSweep(o Opts) *Sec74WindowResult {
	o = o.withDefaults()
	res := &Sec74WindowResult{}
	base := o.base("sec74.json")
	windows := []int{1, 5, 10, 20, 40, 60}
	var g sweep.Grid
	for _, w := range windows {
		window := w
		g.Add(fmt.Sprintf("window/w=%d", w), cell(base, func(cfg *scenario.Config) {
			cfg.Groups[1].Window = window
		}))
	}
	for i, sr := range o.sweepGrid(&g) {
		r := sr.Result
		res.Points = append(res.Points, Sec74WindowPoint{
			W: windows[i], BadAllocation: 1 - r.GoodAllocation, GoodAllocation: r.GoodAllocation,
		})
	}
	return res
}
