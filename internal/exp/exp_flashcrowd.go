package exp

import (
	"speakup/internal/appsim"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// FlashCrowdPoint is one defense's outcome under an all-good overload.
type FlashCrowdPoint struct {
	Mode           string
	FracServed     float64
	MeanLatencySec float64
	// MeanPriceKB is what each served request cost in dummy bytes —
	// the §9 objection: with speak-up, even an all-good flash crowd
	// bids bandwidth for access.
	MeanPriceKB float64
}

// FlashCrowdResult holds the §9 flash-crowd comparison.
type FlashCrowdResult struct{ Points []FlashCrowdPoint }

// Table renders the comparison.
func (r *FlashCrowdResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Sec 9: flash crowd (50 good clients, λ=10 each, c=100): speak-up treats it like an attack",
		"defense", "frac served", "mean latency (s)", "mean price (KB)")
	for _, p := range r.Points {
		t.AddRow(p.Mode, p.FracServed, p.MeanLatencySec, p.MeanPriceKB)
	}
	return t
}

// FlashCrowd runs the §9 thought experiment: a 5x overload made
// entirely of good clients. Speak-up cannot tell it from an attack, so
// clients bid bandwidth against each other; the crowd still shares the
// server evenly and the served fraction matches the no-defense
// baseline (capacity is capacity), but every request now carries a
// bandwidth price. This quantifies the paper's "not ideal, but the
// issues are the same as with speak-up in general".
func FlashCrowd(o Opts) *FlashCrowdResult {
	o = o.withDefaults()
	res := &FlashCrowdResult{}
	base := o.base("flashcrowd.json")
	modes := []appsim.Mode{appsim.ModeOff, appsim.ModeAuction}
	var grid sweep.Grid
	for _, mode := range modes {
		m := mode
		grid.Add("flashcrowd/"+mode.String(), cell(base, func(c *scenario.Config) {
			c.Mode = m
		}))
	}
	for i, sr := range o.sweepGrid(&grid) {
		g := &sr.Result.Groups[0]
		res.Points = append(res.Points, FlashCrowdPoint{
			Mode:           modes[i].String(),
			FracServed:     g.FractionServed(),
			MeanLatencySec: g.Latencies.Mean(),
			MeanPriceKB:    g.Prices.Mean() / 1000,
		})
	}
	return res
}
