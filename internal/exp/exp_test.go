package exp

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// short keeps unit-test runtime low while preserving shapes. The
// benchmarks and cmd/repro run longer versions.
var short = Opts{Duration: 25 * time.Second, Seed: 1}

// skipIfShort guards the full-figure experiments: each runs tens of
// virtual seconds across many scenario cells. `go test -short` keeps
// only the fast smoke tests below.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-figure experiment; skipped with -short")
	}
}

// TestSmokeVariants keeps the package exercised under -short: a tiny
// three-cell sweep through the engine must still rank the defenses.
func TestSmokeVariants(t *testing.T) {
	r := Variants(Opts{Duration: 5 * time.Second, Seed: 1})
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[2].GoodAllocation <= r.Points[0].GoodAllocation {
		t.Errorf("auction (%.3f) should beat OFF (%.3f) even in a smoke run",
			r.Points[2].GoodAllocation, r.Points[0].GoodAllocation)
	}
}

// TestWorkersDoNotChangeResults reruns an experiment serially and with
// 8 workers: the figure data must be identical. This is the
// experiment-level counterpart of the sweep engine's determinism test.
func TestWorkersDoNotChangeResults(t *testing.T) {
	o := Opts{Duration: 5 * time.Second, Seed: 3}
	serialOpts, parallelOpts := o, o
	serialOpts.Workers = 1
	parallelOpts.Workers = 8
	serial := Fig2(serialOpts)
	parallel := Fig2(parallelOpts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Fig2 differs by worker count:\nserial:   %+v\nparallel: %+v",
			serial.Points, parallel.Points)
	}
}

func TestFig2Shape(t *testing.T) {
	skipIfShort(t)
	r := Fig2(short)
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// With speak-up, the allocation tracks the ideal within a wide
		// tolerance; without, bad clients dominate.
		if p.With < p.Ideal-0.22 {
			t.Errorf("f=%.1f: with=%.3f far below ideal %.3f", p.F, p.With, p.Ideal)
		}
		if p.Without > p.With+0.05 {
			t.Errorf("f=%.1f: OFF (%.3f) should not beat ON (%.3f)", p.F, p.Without, p.With)
		}
	}
	// Monotone-ish: allocation grows with f.
	if r.Points[4].With <= r.Points[0].With {
		t.Errorf("allocation not increasing in f: %v vs %v", r.Points[0].With, r.Points[4].With)
	}
	if !strings.Contains(r.Table().String(), "Figure 2") {
		t.Error("table missing title")
	}
}

func TestFig345Shape(t *testing.T) {
	skipIfShort(t)
	r := Fig345(short)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.GoodAllocOn < p.GoodAllocOff {
			t.Errorf("c=%v: ON good alloc %.3f < OFF %.3f", p.C, p.GoodAllocOn, p.GoodAllocOff)
		}
		if p.PriceGood > p.PriceUpperBound*1.3 {
			t.Errorf("c=%v: good price %.0f far above upper bound %.0f", p.C, p.PriceGood, p.PriceUpperBound)
		}
	}
	// c=200 (> c_id): nearly all good served; prices low.
	last := r.Points[2]
	if last.FracGoodServedOn < 0.85 {
		t.Errorf("c=200: frac good served = %.3f, want ~1", last.FracGoodServedOn)
	}
	if last.PriceGood > r.Points[0].PriceGood {
		t.Errorf("price at c=200 (%.0f) should be below price at c=50 (%.0f)",
			last.PriceGood, r.Points[0].PriceGood)
	}
	// Payment time falls with capacity.
	if r.Points[2].PayTimeMean > r.Points[0].PayTimeMean {
		t.Errorf("pay time should drop with capacity: %v vs %v",
			r.Points[2].PayTimeMean, r.Points[0].PayTimeMean)
	}
	for _, tab := range []string{r.Fig3Table().String(), r.Fig4Table().String(), r.Fig5Table().String()} {
		if len(tab) == 0 {
			t.Error("empty table")
		}
	}
}

func TestSec74Shape(t *testing.T) {
	skipIfShort(t)
	r := Sec74MinCapacity(Opts{Duration: 20 * time.Second, Seed: 1})
	if len(r.Points) != 7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.MinCapacity == 0 {
		t.Fatal("no capacity satisfied the good demand by c=140")
	}
	// The paper found 115; accept anything within the sweep that is
	// meaningfully above the ideal but below 1.4x.
	if r.MinCapacity < 100 || r.MinCapacity > 140 {
		t.Fatalf("min capacity = %v", r.MinCapacity)
	}
	// Fraction served grows (weakly) with capacity overall.
	if r.Points[6].FracGoodServed < r.Points[0].FracGoodServed-0.05 {
		t.Error("fraction served should improve with capacity")
	}
}

func TestSec74WindowShape(t *testing.T) {
	skipIfShort(t)
	r := Sec74WindowSweep(Opts{Duration: 20 * time.Second, Seed: 1})
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// Bad clients can cheat a little but never dominate: the paper
		// sees bounded advantage across all w.
		if p.BadAllocation > 0.75 {
			t.Errorf("w=%d: bad allocation %.3f implausibly high", p.W, p.BadAllocation)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	skipIfShort(t)
	r := Fig6(short)
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Allocation increases with bandwidth and is near the ideal.
	for i := 1; i < 5; i++ {
		if r.Points[i].Observed < r.Points[i-1].Observed-0.05 {
			t.Errorf("allocation not increasing at category %d: %v", i, r.Points)
		}
	}
	for _, p := range r.Points {
		if p.Observed < p.Ideal-0.12 || p.Observed > p.Ideal+0.12 {
			t.Errorf("bw=%.1f Mbit/s: observed %.3f vs ideal %.3f", p.Bandwidth/1e6, p.Observed, p.Ideal)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	skipIfShort(t)
	// RTTs up to 500ms need a longer run than the other shapes: at ~1s
	// effective RTT a 25s run is all slow-start transient.
	r := Fig7(Opts{Duration: 100 * time.Second, Seed: 1})
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Good clients: low-RTT categories beat high-RTT ones.
	if r.Points[0].AllGood <= r.Points[4].AllGood {
		t.Errorf("good allocation should fall with RTT: %v", r.Points)
	}
	// Bad clients: RTT matters much less; spread stays narrow-ish.
	spreadBad := r.Points[0].AllBad - r.Points[4].AllBad
	spreadGood := r.Points[0].AllGood - r.Points[4].AllGood
	if spreadBad > spreadGood {
		t.Errorf("bad spread (%.3f) should be smaller than good spread (%.3f)", spreadBad, spreadGood)
	}
}

func TestFig8Shape(t *testing.T) {
	skipIfShort(t)
	r := Fig8(short)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// Bad clients hog the bottleneck: good share under-performs the
		// per-capita ideal whenever bad clients are present behind l.
		if p.BadBehind > 0 && p.GoodShare > p.GoodShareIdeal+0.05 {
			t.Errorf("split %dg/%db: good share %.3f above ideal %.3f",
				p.GoodBehind, p.BadBehind, p.GoodShare, p.GoodShareIdeal)
		}
	}
	// More good clients behind l -> more good share of bottleneck service.
	if !(r.Points[0].GoodShare < r.Points[2].GoodShare) {
		t.Errorf("good share should grow with the split: %v", r.Points)
	}
}

func TestFig9Shape(t *testing.T) {
	skipIfShort(t)
	r := Fig9(Opts{Duration: 30 * time.Second, Seed: 1})
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.WithoutSpeakup <= 0 {
			t.Fatalf("size %dKB: no baseline downloads", p.SizeKB)
		}
		if p.InflationFactor < 1.3 {
			t.Errorf("size %dKB: inflation %.2fx, want noticeable collateral damage", p.SizeKB, p.InflationFactor)
		}
		if p.InflationFactor > 40 {
			t.Errorf("size %dKB: inflation %.2fx implausibly high", p.SizeKB, p.InflationFactor)
		}
	}
}

func TestVariantsShape(t *testing.T) {
	skipIfShort(t)
	r := Variants(short)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	off, rdrop, auction := r.Points[0], r.Points[1], r.Points[2]
	if auction.GoodAllocation <= off.GoodAllocation {
		t.Errorf("auction (%.3f) must beat OFF (%.3f)", auction.GoodAllocation, off.GoodAllocation)
	}
	if rdrop.GoodAllocation <= off.GoodAllocation {
		t.Errorf("random-drop (%.3f) must beat OFF (%.3f)", rdrop.GoodAllocation, off.GoodAllocation)
	}
}

func TestTheorem31AllHold(t *testing.T) {
	skipIfShort(t)
	r := Theorem31(short)
	for _, p := range r.Points {
		if !p.Holds {
			t.Errorf("strategy %s violates the bound: share %.3f < %.3f", p.Strategy, p.Share, p.Bound)
		}
	}
}

func TestHeteroQuantumBeatsNaive(t *testing.T) {
	skipIfShort(t)
	r := Hetero(Opts{Duration: 40 * time.Second, Seed: 1})
	naive, quantum := r.Points[0], r.Points[1]
	if quantum.GoodWorkShare <= naive.GoodWorkShare {
		t.Fatalf("quantum scheduler (%.3f) must beat naive (%.3f) under hard-request attack",
			quantum.GoodWorkShare, naive.GoodWorkShare)
	}
}

func TestPOSTSizeSweepRuns(t *testing.T) {
	skipIfShort(t)
	r := POSTSize(Opts{Duration: 20 * time.Second, Seed: 1})
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.GoodAllocation < 0.2 || p.GoodAllocation > 0.8 {
			t.Errorf("POST=%d: allocation %.3f out of plausible band", p.PostBytes, p.GoodAllocation)
		}
	}
}

func TestParallelConnsShape(t *testing.T) {
	skipIfShort(t)
	r := ParallelConns(Opts{Duration: 30 * time.Second, Seed: 1})
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Sustained flows: more outstanding requests -> larger gamer share,
	// approaching n/(n+1); ephemeral channels buy much less.
	if r.Points[3].SustainedShare <= r.Points[0].SustainedShare {
		t.Errorf("sustained parallel flows did not help the gamer: %v", r.Points)
	}
	if r.Points[3].SustainedShare < 0.6 {
		t.Errorf("sustained n=10 share = %.3f, want hogging", r.Points[3].SustainedShare)
	}
}

func TestSec81ProfilingVsSpeakup(t *testing.T) {
	skipIfShort(t)
	r := Sec81SmartBots(short)
	if len(r.Points) != 6 {
		t.Fatalf("points = %d", len(r.Points))
	}
	byKey := map[string]Sec81Point{}
	for _, p := range r.Points {
		byKey[p.Defense+"/"+p.Bots] = p
	}
	// Dumb bots: profiling blocks them almost entirely; the good
	// clients should get nearly everything.
	if got := byKey["profiling/dumb (λ=40)"].GoodAllocation; got < 0.7 {
		t.Errorf("profiling vs dumb bots: good allocation %.3f, want ~1", got)
	}
	// Smart bots: profiling can only limit them to 3x the good rate, so
	// the good clients fall toward 2/(2+6) = 0.25.
	if got := byKey["profiling/smart (λ=6)"].GoodAllocation; got > 0.45 {
		t.Errorf("profiling vs smart bots: good allocation %.3f, want ~0.25-0.4", got)
	}
	// Speak-up is robust to bot smartness: allocation tracks bandwidth
	// (~0.4-0.5 measured) in both cases, and the two cases are close.
	on1 := byKey["speak-up/dumb (λ=40)"].GoodAllocation
	on2 := byKey["speak-up/smart (λ=6)"].GoodAllocation
	if on1 < 0.3 || on2 < 0.3 {
		t.Errorf("speak-up allocations too low: %.3f / %.3f", on1, on2)
	}
	if diff := on1 - on2; diff < -0.25 || diff > 0.25 {
		t.Errorf("speak-up not robust across bot types: %.3f vs %.3f", on1, on2)
	}
	// And speak-up must beat profiling in the smart-bot case.
	if on2 <= byKey["profiling/smart (λ=6)"].GoodAllocation {
		t.Errorf("speak-up (%.3f) should beat profiling (%.3f) against smart bots",
			on2, byKey["profiling/smart (λ=6)"].GoodAllocation)
	}
}

func TestFlashCrowdShape(t *testing.T) {
	skipIfShort(t)
	r := FlashCrowd(short)
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	off, on := r.Points[0], r.Points[1]
	// Capacity is capacity: both serve a similar fraction of the crowd.
	if diff := on.FracServed - off.FracServed; diff < -0.25 || diff > 0.25 {
		t.Errorf("served fractions diverge: off %.3f vs on %.3f", off.FracServed, on.FracServed)
	}
	// But speak-up charges the crowd for access; OFF does not.
	if on.MeanPriceKB <= 0 {
		t.Error("flash crowd paid nothing under speak-up")
	}
	if off.MeanPriceKB != 0 {
		t.Error("OFF mode charged a price")
	}
}
