package exp

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateFaultsGolden = flag.Bool("update-faults-golden", false,
	"rewrite testdata/golden/faults_frontier.txt")

// TestFaultsSweepDeterminism reruns the fault-injection sweep serially
// and with 8 workers: every point and frontier row must be
// bit-identical. Beyond the usual sweep-engine guarantee this covers
// the per-event fault RNG streams being derived purely from (scenario
// seed, event index, event seed) — never from worker scheduling.
func TestFaultsSweepDeterminism(t *testing.T) {
	serialOpts, parallelOpts := goldenOpts, goldenOpts
	serialOpts.Workers = 1
	parallelOpts.Workers = 8
	serial := Faults(serialOpts)
	parallel := Faults(parallelOpts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("faults sweep differs by worker count:\nserial:   %+v\nparallel: %+v",
			serial.Points, parallel.Points)
	}
}

// TestFaultsFrontierGolden pins the rendered grid and frontier tables
// byte-for-byte. Regenerate (only when an intentional model change
// lands) with:
//
//	go test ./internal/exp -run TestFaultsFrontierGolden -update-faults-golden
func TestFaultsFrontierGolden(t *testing.T) {
	skipIfShort(t)
	r := Faults(goldenOpts)
	got := r.Table().String() + "\n" + r.FrontierTable().String()
	path := filepath.Join("testdata", "golden", "faults_frontier.txt")
	if *updateFaultsGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-faults-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("fault frontier diverged from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFaultsShape asserts the sweep's qualitative claims: the grid is
// complete (baselines + every kind x intensity x ratio), baselines
// anchor retention at exactly 1, and no fault kind collapses good
// service outright — the hardened stack (retrying clients, brownout
// ladder) has to degrade gracefully, not fall over.
func TestFaultsShape(t *testing.T) {
	skipIfShort(t)
	r := Faults(short)
	wantCells := len(faultRatios) + len(faultKinds)*2*len(faultRatios)
	if len(r.Points) != wantCells {
		t.Fatalf("points = %d, want %d", len(r.Points), wantCells)
	}
	if len(r.Frontier) != len(faultKinds) {
		t.Fatalf("frontier rows = %d, want %d", len(r.Frontier), len(faultKinds))
	}
	for _, p := range r.Points {
		if p.Kind == "none" {
			if p.Retention != 1 {
				t.Errorf("baseline bw=%gx: retention %.3f, want 1", p.BWRatio, p.Retention)
			}
			if p.FracGoodServed <= 0.5 {
				t.Errorf("baseline bw=%gx: frac good served %.3f — the fault-free anchor itself is broken", p.BWRatio, p.FracGoodServed)
			}
		}
	}
	for _, f := range r.Frontier {
		if f.Worst <= 0 || f.Worst > 1.5 {
			t.Errorf("%s: worst retention %.3f out of range", f.Kind, f.Worst)
		}
		// A third-of-the-run outage can cost a third of the service (plus
		// collateral), but nothing should zero it.
		if f.Worst < 0.2 {
			t.Errorf("%s: worst-case retention %.3f — graceful degradation broken", f.Kind, f.Worst)
		}
	}
	// Origin faults must actually exercise the brownout ladder: with
	// arrivals flowing while auctions pause, shed must be nonzero.
	for _, p := range r.Points {
		if (p.Kind == string("origin-stall") || p.Kind == string("origin-crash")) && p.Shed == 0 {
			t.Errorf("%s %s bw=%gx: no arrivals shed during brownout", p.Kind, p.Intensity, p.BWRatio)
		}
	}
}
