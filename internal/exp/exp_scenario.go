package exp

import (
	"fmt"

	"speakup/internal/config"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// ScenarioRun is one declared scenario document executed through the
// sweep engine (cmd/repro -scenario).
type ScenarioRun struct {
	// Name is the document's name (or "scenario-<i>" when unnamed).
	Name string
	// Hash identifies the exact configuration that ran: the short
	// canonical hash of the document as executed — seed and duration
	// resolved — so output is attributable to one config.
	Hash   string
	Result *scenario.Result
}

// ScenariosResult holds the runs of one Scenarios call.
type ScenariosResult struct{ Runs []ScenarioRun }

// Tables renders one per-group table per run, with the headline
// aggregate rows the figure experiments report.
func (r *ScenariosResult) Tables() []*metrics.Table {
	var out []*metrics.Table
	for _, run := range r.Runs {
		res := run.Result
		t := metrics.NewTable(
			fmt.Sprintf("scenario %s (config %s, %v virtual seconds)",
				run.Name, run.Hash, res.Duration.Seconds()),
			"group", "clients", "offered", "served", "frac served",
			"mean latency (s)", "mean pay (s)", "mean price (KB)", "paid (MB)")
		for i := range res.Groups {
			g := &res.Groups[i]
			t.AddRow(g.Name, g.Clients, g.Offered(), g.Served, g.FractionServed(),
				g.Latencies.Mean(), g.PayTimes.Mean(), g.Prices.Mean()/1000,
				float64(g.PaidBytes)/1e6)
		}
		t.AddRow("good allocation", "", "", "", res.GoodAllocation, "", "", "", "")
		t.AddRow("frac good served", "", "", "", res.FractionGoodServed, "", "", "", "")
		out = append(out, t)
	}
	return out
}

// Scenarios runs user-declared scenario documents through the same
// parallel sweep engine the figure drivers use. A document's own seed
// and duration win; zero values fall back to Opts (so the usual
// -duration/-seed flags scale files that leave them unset). Every
// document is validated before any run starts.
func Scenarios(o Opts, docs []config.Scenario) (*ScenariosResult, error) {
	o = o.withDefaults()
	var g sweep.Grid
	res := &ScenariosResult{}
	for i, doc := range docs {
		if err := doc.Validate(); err != nil {
			return nil, err
		}
		cfg, err := doc.Config()
		if err != nil {
			return nil, err
		}
		if cfg.Seed == 0 {
			cfg.Seed = o.Seed
		}
		if cfg.Duration == 0 {
			cfg.Duration = o.Duration
		}
		name := doc.Name
		if name == "" {
			name = fmt.Sprintf("scenario-%d", i+1)
		}
		// Hash the document as executed: re-deriving it from the resolved
		// config pins seed and duration into the identity.
		resolved := config.FromScenario(cfg)
		resolved.Name = doc.Name
		resolved.Notes = doc.Notes
		g.Add("scenario/"+name, cfg)
		res.Runs = append(res.Runs, ScenarioRun{Name: name, Hash: config.ShortHash(resolved)})
	}
	for i, sr := range o.sweepGrid(&g) {
		res.Runs[i].Result = sr.Result
	}
	return res, nil
}
