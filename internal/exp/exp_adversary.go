package exp

import (
	"fmt"

	"speakup/internal/adversary"
	"speakup/internal/metrics"
	"speakup/internal/scenario"
	"speakup/internal/sweep"
)

// AdversaryPoint is one cell of the robustness-frontier sweep: one
// strategy at one aggressiveness against one bad:good bandwidth
// ratio.
type AdversaryPoint struct {
	Strategy string
	// Aggro scales the strategy's nominal demand (rate and window).
	Aggro float64
	// BWRatio is the attackers' per-client access bandwidth as a
	// multiple of the good clients' 2 Mbit/s.
	BWRatio float64

	FracGoodServed float64
	GoodAllocation float64
	BadServed      uint64
	// BadPaidMB is the payment the attack actually spent (client-side
	// pushed bytes) — how expensive speak-up made the strategy.
	BadPaidMB float64
	// BadDenied counts attacker arrivals that died in their backlog:
	// demand the strategy generated but could not present.
	BadDenied uint64
}

// FrontierRow is one strategy's worst case across the scanned grid —
// the robustness frontier speak-up has to hold.
type FrontierRow struct {
	Strategy string
	// Worst is the minimum fraction of good requests served across
	// all (aggro, bandwidth-ratio) cells of this strategy; WorstAggro
	// and WorstBWRatio locate the minimizing cell.
	Worst        float64
	WorstAggro   float64
	WorstBWRatio float64
	// MeanGoodAlloc averages the good allocation over the strategy's
	// cells (how far the auction stays from bandwidth-proportional).
	MeanGoodAlloc float64
}

// AdversaryResult holds the full grid and its frontier.
type AdversaryResult struct {
	Points   []AdversaryPoint
	Frontier []FrontierRow
	// Events is the total simulator events across the sweep (the
	// benchmark harness reports events/sec over it).
	Events uint64
}

// adversaryAggros and adversaryRatios are the scanned axes.
var (
	adversaryAggros = []float64{1, 2}
	adversaryRatios = []float64{1, 2}
)

// Table renders the full grid.
func (r *AdversaryResult) Table() *metrics.Table {
	t := metrics.NewTable(
		"Adversary sweep: good service vs strategy x aggressiveness x bandwidth ratio (10 good / 10 attackers, c=30)",
		"strategy", "aggro", "bw ratio", "frac good served", "good alloc", "bad served", "bad denied", "bad paid (MB)")
	for _, p := range r.Points {
		t.AddRow(p.Strategy, p.Aggro, p.BWRatio, p.FracGoodServed, p.GoodAllocation,
			p.BadServed, p.BadDenied, p.BadPaidMB)
	}
	return t
}

// FrontierTable renders the per-strategy worst case — the paper's
// robustness claim quantified: no strategy should push the worst-case
// good service far below the bandwidth-proportional share.
func (r *AdversaryResult) FrontierTable() *metrics.Table {
	t := metrics.NewTable(
		"Robustness frontier: worst-case good service per strategy",
		"strategy", "worst frac good served", "at aggro", "at bw ratio", "mean good alloc")
	for _, f := range r.Frontier {
		t.AddRow(f.Strategy, f.Worst, f.WorstAggro, f.WorstBWRatio, f.MeanGoodAlloc)
	}
	return t
}

// Adversary sweeps every registered attacker strategy (internal/
// adversary) over aggressiveness and bad:good bandwidth ratio: 10
// good clients against 10 attackers, c = 30 (well under the ideal
// provisioning c_id = 40, so good service genuinely contends with the
// attack). The frontier is the per-strategy minimum of
// the fraction of good requests served — speak-up's robustness claim
// (§6-§7) is that this floor stays near the good clients' bandwidth
// share no matter how the attackers time, mimic, cheat, or adapt.
func Adversary(o Opts) *AdversaryResult {
	o = o.withDefaults()
	base := o.base("adversary.json")
	var g sweep.Grid
	type gridCell struct {
		strategy     string
		aggro, ratio float64
	}
	var cells []gridCell
	for _, s := range adversary.Names() {
		for _, a := range adversaryAggros {
			for _, r := range adversaryRatios {
				name, aggro, ratio := s, a, r
				g.Add(fmt.Sprintf("adversary/%s/aggro=%g/bw=%gx", s, a, r), cell(base, func(c *scenario.Config) {
					c.Groups[1] = scenario.ClientGroup{
						Name: name, Count: 10, Strategy: name,
						Aggressiveness: aggro, Bandwidth: 2e6 * ratio,
					}
				}))
				cells = append(cells, gridCell{strategy: s, aggro: a, ratio: r})
			}
		}
	}
	res := &AdversaryResult{}
	for i, sr := range o.sweepGrid(&g) {
		c, r := cells[i], sr.Result
		bad := &r.Groups[1]
		res.Points = append(res.Points, AdversaryPoint{
			Strategy:       c.strategy,
			Aggro:          c.aggro,
			BWRatio:        c.ratio,
			FracGoodServed: r.FractionGoodServed,
			GoodAllocation: r.GoodAllocation,
			BadServed:      bad.Served,
			BadPaidMB:      float64(bad.PaidBytes) / 1e6,
			BadDenied:      bad.Denied,
		})
		res.Events += r.Events
	}
	for _, s := range adversary.Names() {
		row := FrontierRow{Strategy: s, Worst: 2}
		n := 0
		for _, p := range res.Points {
			if p.Strategy != s {
				continue
			}
			if p.FracGoodServed < row.Worst {
				row.Worst = p.FracGoodServed
				row.WorstAggro = p.Aggro
				row.WorstBWRatio = p.BWRatio
			}
			row.MeanGoodAlloc += p.GoodAllocation
			n++
		}
		row.MeanGoodAlloc /= float64(n)
		res.Frontier = append(res.Frontier, row)
	}
	return res
}
