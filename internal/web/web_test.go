package web

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"speakup/internal/core"
)

// slowOrigin serves with a fixed delay and records order.
type slowOrigin struct {
	mu    sync.Mutex
	delay time.Duration
	order []core.RequestID
}

func (o *slowOrigin) Serve(id core.RequestID) ([]byte, error) {
	time.Sleep(o.delay)
	o.mu.Lock()
	o.order = append(o.order, id)
	o.mu.Unlock()
	return []byte(fmt.Sprintf("served %d", id)), nil
}

func newTestFront(t *testing.T, delay time.Duration) (*Front, *httptest.Server, *slowOrigin) {
	t.Helper()
	origin := &slowOrigin{delay: delay}
	front := NewFront(origin, Config{
		PayPollInterval: 10 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout: 500 * time.Millisecond,
			SweepInterval: 100 * time.Millisecond,
		},
	})
	srv := httptest.NewServer(front)
	t.Cleanup(func() {
		srv.Close()
		front.Close()
	})
	return front, srv, origin
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	code, body, err := tryGet(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return code, body
}

// tryGet is the goroutine-safe variant (no testing.T calls).
func tryGet(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), nil
}

func TestFreeServerServesDirectly(t *testing.T) {
	_, srv, _ := newTestFront(t, 10*time.Millisecond)
	code, body := get(t, srv.URL+"/request?id=1")
	if code != http.StatusOK || !strings.Contains(body, "served 1") {
		t.Fatalf("got %d %q", code, body)
	}
}

func TestBusyServerDemandsPayment(t *testing.T) {
	_, srv, _ := newTestFront(t, 300*time.Millisecond)
	go http.Get(srv.URL + "/request?id=1")
	time.Sleep(50 * time.Millisecond) // let request 1 occupy the origin
	resp, err := http.Get(srv.URL + "/request?id=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("status = %d, want 402", resp.StatusCode)
	}
	if resp.Header.Get("Speakup-Action") != "pay" {
		t.Fatal("missing Speakup-Action header")
	}
}

func TestPaymentWinsAuction(t *testing.T) {
	_, srv, origin := newTestFront(t, 200*time.Millisecond)
	go http.Get(srv.URL + "/request?id=1") // occupies origin
	time.Sleep(30 * time.Millisecond)

	// Client 2 re-issues and pays; client 3 re-issues and pays less.
	results := make(chan core.RequestID, 2)
	waitReq := func(id int) {
		code, _, _ := tryGet(fmt.Sprintf("%s/request?id=%d&wait=1", srv.URL, id))
		if code == http.StatusOK {
			results <- core.RequestID(id)
		}
	}
	go waitReq(2)
	go waitReq(3)
	time.Sleep(20 * time.Millisecond)
	pay := func(id, n int) {
		body := strings.NewReader(strings.Repeat("x", n))
		resp, err := http.Post(fmt.Sprintf("%s/pay?id=%d", srv.URL, id), "application/octet-stream", body)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	go pay(2, 200_000)
	go pay(3, 10_000)

	first := <-results
	if first != 2 {
		t.Fatalf("first served waiter = %d, want 2 (the higher payer)", first)
	}
	<-results
	origin.mu.Lock()
	defer origin.mu.Unlock()
	if len(origin.order) != 3 {
		t.Fatalf("origin served %d, want 3", len(origin.order))
	}
}

func TestPayReplyAdmitted(t *testing.T) {
	_, srv, _ := newTestFront(t, 150*time.Millisecond)
	go http.Get(srv.URL + "/request?id=1")
	time.Sleep(30 * time.Millisecond)
	go tryGet(srv.URL + "/request?id=2&wait=1")
	time.Sleep(20 * time.Millisecond)

	// A long POST: the win must interrupt it and reply "admitted".
	pr, pw := io.Pipe()
	done := make(chan payReply, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/pay?id=2", "application/octet-stream", pr)
		if err != nil {
			done <- payReply{Status: "error"}
			return
		}
		var rep payReply
		json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		done <- rep
	}()
	pw.Write(make([]byte, 64_000))
	rep := <-done // origin frees at ~150ms; auction admits id=2
	pw.Close()
	if rep.Status != "admitted" {
		t.Fatalf("pay reply = %+v, want admitted", rep)
	}
	if rep.Paid < 64_000 {
		t.Fatalf("credited %d bytes, want >= 64000", rep.Paid)
	}
}

func TestCompletedPOSTGetsContinue(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time origin-busy wait; skipped with -short")
	}
	_, srv, _ := newTestFront(t, 800*time.Millisecond) // origin stays busy
	go http.Get(srv.URL + "/request?id=1")
	time.Sleep(30 * time.Millisecond)
	go tryGet(srv.URL + "/request?id=2&wait=1")
	time.Sleep(20 * time.Millisecond)
	resp, err := http.Post(srv.URL+"/pay?id=2", "application/octet-stream",
		strings.NewReader(strings.Repeat("x", 10_000)))
	if err != nil {
		t.Fatal(err)
	}
	var rep payReply
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if rep.Status != "continue" {
		t.Fatalf("status = %q, want continue", rep.Status)
	}
}

func TestOrphanPaymentEvicted(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the real-time orphan timeout; skipped with -short")
	}
	front, srv, _ := newTestFront(t, 1500*time.Millisecond) // busy past the orphan timeout
	go http.Get(srv.URL + "/request?id=1")
	time.Sleep(30 * time.Millisecond)
	// Pay for id 99 but never send its request: evicted after ~500ms.
	pr, pw := io.Pipe()
	done := make(chan payReply, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/pay?id=99", "application/octet-stream", pr)
		if err != nil {
			done <- payReply{Status: "error"}
			return
		}
		var rep payReply
		json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		done <- rep
	}()
	pw.Write(make([]byte, 10_000))
	select {
	case rep := <-done:
		if rep.Status != "evicted" {
			t.Fatalf("status = %q, want evicted", rep.Status)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("orphan payment not evicted")
	}
	pw.Close()
	st := front.Snapshot()
	if st.ThinnerTotals.Evicted == 0 || st.ThinnerTotals.WastedBytes == 0 {
		t.Fatalf("eviction not counted: %+v", st.ThinnerTotals)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, srv, _ := newTestFront(t, 5*time.Millisecond)
	get(t, srv.URL+"/request?id=1")
	code, body := get(t, srv.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, body)
	}
	if st.Served != 1 {
		t.Fatalf("served = %d, want 1", st.Served)
	}
}

func TestBadRequests(t *testing.T) {
	_, srv, _ := newTestFront(t, time.Millisecond)
	if code, _ := get(t, srv.URL+"/request"); code != http.StatusBadRequest {
		t.Fatalf("missing id -> %d", code)
	}
	if code, _ := get(t, srv.URL+"/request?id=abc"); code != http.StatusBadRequest {
		t.Fatalf("bad id -> %d", code)
	}
	if code, _ := get(t, srv.URL+"/nope?id=1"); code != http.StatusNotFound {
		t.Fatalf("unknown path -> %d", code)
	}
	resp, _ := http.Get(srv.URL + "/pay?id=1")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /pay -> %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestManyConcurrentRequests(t *testing.T) {
	_, srv, _ := newTestFront(t, 2*time.Millisecond)
	var wg sync.WaitGroup
	var served, busy int
	var mu sync.Mutex
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := get(t, fmt.Sprintf("%s/request?id=%d", srv.URL, i+1))
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusOK:
				served++
			case http.StatusPaymentRequired:
				busy++
			}
		}(i)
	}
	wg.Wait()
	if served == 0 {
		t.Fatal("nothing served")
	}
	if served+busy != 40 {
		t.Fatalf("served=%d busy=%d, want total 40", served, busy)
	}
}
