package web

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/core"
)

// TestFrontOriginStallBrownout hangs the origin mid-run under a
// payment storm and walks the live brownout ladder under -race: the
// watchdog must declare the stall, new arrivals must be shed with 503
// + Retry-After while held channels survive past every timeout, and
// once the origin thaws the auctions must resume and serve the storm
// with no stranded waiters.
func TestFrontOriginStallBrownout(t *testing.T) {
	payers := 24
	if testing.Short() {
		payers = 10
	}

	// Exactly one Serve call hangs (the CAS) until release is closed;
	// every other request is fast.
	var stallArmed atomic.Bool
	release := make(chan struct{})
	origin := OriginFunc(func(id core.RequestID) ([]byte, error) {
		if stallArmed.CompareAndSwap(true, false) {
			<-release
		}
		time.Sleep(time.Millisecond)
		return []byte("ok"), nil
	})
	front := NewFront(origin, Config{
		PayPollInterval:  5 * time.Millisecond,
		RequestTimeout:   30 * time.Second,
		OriginStallAfter: 150 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout:     300 * time.Millisecond,
			InactivityTimeout: 600 * time.Millisecond,
			SweepInterval:     25 * time.Millisecond,
			Shards:            8,
		},
	})
	srv := httptest.NewServer(front)
	defer front.Close()
	defer srv.Close()
	client := srv.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	// Before anything hangs the readiness probe must be green.
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz before run: %d %q", code, body)
	}

	// Arm the hang before the storm: the first dispatched Serve call
	// blocks, so the rest of the storm piles up as paying contenders.
	stallArmed.Store(true)

	var served, shedWaits atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < payers; i++ {
		id := 1000 + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(fmt.Sprintf("%s/request?id=%d", srv.URL, id))
			if err != nil {
				return
			}
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusOK {
				served.Add(1)
				return
			}
			if code != http.StatusPaymentRequired {
				return // e.g. shed: the initial request landed mid-brownout
			}
			// Hold the actual request open. A wait=1 re-issue that lands
			// during the brownout is shed with a retry hint: honor it.
			done := make(chan int, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					code, body, err := tryGet(fmt.Sprintf("%s/request?id=%d&wait=1", srv.URL, id))
					if err == nil && code == http.StatusServiceUnavailable && strings.Contains(body, "brownout") {
						shedWaits.Add(1)
						time.Sleep(100 * time.Millisecond)
						continue
					}
					if err != nil {
						code = 0
					}
					done <- code
					return
				}
			}()
			// Stop paying once the held request has its verdict: after
			// admission a further POST would just open a fresh orphan
			// channel for the same id.
			for paying := true; paying && len(done) == 0; {
				body := strings.NewReader(strings.Repeat("x", 32<<10))
				resp, err := client.Post(fmt.Sprintf("%s/pay?id=%d", srv.URL, id),
					"application/octet-stream", body)
				if err != nil {
					break
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				paying = strings.Contains(string(raw), "continue")
			}
			if code := <-done; code == http.StatusOK {
				served.Add(1)
			}
		}()
	}

	// The watchdog must brown the front out once the hung Serve call
	// exceeds OriginStallAfter.
	deadline := time.Now().Add(10 * time.Second)
	for front.Health().Origin != "stalled" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := front.Health().Origin; got != "stalled" {
		close(release)
		t.Fatalf("origin health = %q, want stalled (watchdog never fired)", got)
	}

	// Mid-brownout contract: /healthz degrades, /stats reports the
	// ladder state, and a fresh arrival is shed with a retry hint.
	resp, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable ||
		!strings.Contains(string(hzBody), `"degraded"`) || !strings.Contains(string(hzBody), `"stalled"`) {
		t.Fatalf("/healthz during stall: %d %s", resp.StatusCode, hzBody)
	}
	if st := front.Snapshot(); st.Health != "stalled" {
		t.Fatalf("/stats health = %q during stall, want stalled", st.Health)
	}
	resp, err = client.Get(srv.URL + "/request?id=7777")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("arrival during stall got %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed 503 carried no Retry-After header")
	}

	// Held channels must survive the outage even past every timeout:
	// evictions are held while stalled.
	time.Sleep(front.cfg.Thinner.OrphanTimeout + front.cfg.Thinner.InactivityTimeout)
	if front.Health().Origin != "stalled" {
		t.Fatal("stall cleared itself with the origin still hung")
	}
	if n := front.Table().Size(); n == 0 {
		t.Fatal("payment channels evicted during the brownout")
	}

	// Thaw. Recovery must settle the deferred auction and drain the
	// whole storm.
	close(release)
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(60 * time.Second):
		t.Fatal("waiters stranded after recovery: storm did not drain")
	}

	st := front.Snapshot()
	t.Logf("served=%d shedWaits=%d stats=%+v", served.Load(), shedWaits.Load(), st)
	if served.Load() < int64(payers/2) {
		t.Fatalf("served %d/%d after recovery: auctions did not resume", served.Load(), payers)
	}
	if st.ThinnerTotals.Brownouts == 0 {
		t.Fatal("brownout never counted")
	}
	if st.ThinnerTotals.Shed == 0 {
		t.Fatal("shed arrivals never counted")
	}
	if st.Health == "stalled" {
		t.Fatalf("health still %q after recovery", st.Health)
	}

	// Ladder returns to OK and the probe greens once the grace passes.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h := front.Health(); h.Origin == "ok" && h.Status == "ok" {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if h := front.Health(); h.Origin != "ok" || h.Status != "ok" {
		t.Fatalf("health after recovery = %+v, want ok", h)
	}

	// No stranded waiters, and the table drains.
	deadline = time.Now().Add(10 * time.Second)
	for (front.Table().Size() > 0 || front.Table().Waiters() > 0) && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := front.Table().Waiters(); n > 0 {
		t.Fatalf("%d waiters stranded", n)
	}
	if n := front.Table().Size(); n > 0 {
		t.Fatalf("%d channels leaked", n)
	}
}
