package web

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/adversary"
	"speakup/internal/core"
	"speakup/internal/loadgen"
)

// TestDuplicateRequestConflict is the regression test for the
// duplicate-waiter bug: a second /request with an id already held must
// be rejected with 409 instead of silently overwriting (and stranding)
// the first waiter.
func TestDuplicateRequestConflict(t *testing.T) {
	_, srv, _ := newTestFront(t, 250*time.Millisecond)
	go http.Get(srv.URL + "/request?id=1") // occupies the origin
	time.Sleep(30 * time.Millisecond)

	first := make(chan int, 1)
	go func() {
		code, _, _ := tryGet(srv.URL + "/request?id=2&wait=1")
		first <- code
	}()
	time.Sleep(30 * time.Millisecond)

	// The duplicate must bounce immediately.
	code, body := get(t, srv.URL+"/request?id=2&wait=1")
	if code != http.StatusConflict {
		t.Fatalf("duplicate request: got %d %q, want 409", code, body)
	}
	// The original waiter is untouched: id 2 is the only contender, so
	// it wins the auction when the origin frees up and gets served.
	select {
	case code := <-first:
		if code != http.StatusOK {
			t.Fatalf("original waiter got %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("original waiter stranded after duplicate was rejected")
	}
}

// TestFrontPayCreditAllocs anchors the zero-alloc invariant at the web
// layer: the work the front adds per payment chunk (credit + state
// poll on the request's cached channel) must not allocate.
func TestFrontPayCreditAllocs(t *testing.T) {
	front := NewFront(OriginFunc(func(core.RequestID) ([]byte, error) { return nil, nil }),
		Config{Thinner: core.Config{SweepInterval: time.Hour}})
	defer front.Close()
	pc := front.Table().Channel(99, 0)
	if avg := testing.AllocsPerRun(1000, func() {
		pc.Credit(16384, time.Millisecond)
		if pc.State() != core.ChanActive {
			t.Fatal("channel settled")
		}
	}); avg != 0 {
		t.Fatalf("per-chunk credit path allocates %.1f/op, want 0", avg)
	}
}

// TestFrontStress drives the full protocol with hundreds of concurrent
// actors against an in-process Front: paying waiters racing auctions,
// orphan payment channels being evicted, and clients disconnecting
// mid-POST. Run under -race in CI's live-race job. It asserts
// liveness (everything terminates), conservation of the headline
// counters, and that the table drains.
func TestFrontStress(t *testing.T) {
	payers, orphans, aborters := 60, 25, 25
	if testing.Short() {
		payers, orphans, aborters = 20, 8, 8
	}

	origin := OriginFunc(func(id core.RequestID) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return []byte("ok"), nil
	})
	front := NewFront(origin, Config{
		PayPollInterval: 5 * time.Millisecond,
		RequestTimeout:  10 * time.Second,
		Thinner: core.Config{
			OrphanTimeout:     200 * time.Millisecond,
			InactivityTimeout: 2 * time.Second,
			SweepInterval:     25 * time.Millisecond,
			Shards:            8,
		},
	})
	srv := httptest.NewServer(front)
	defer front.Close()
	defer srv.Close()
	client := srv.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	// Readiness gate: the probe must be green before the storm starts.
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before storm: %d %q", code, body)
	}

	var served, evicted, conflicts atomic.Int64
	var wg sync.WaitGroup

	// Protocol-following clients: request, then pay-and-wait if busy.
	for i := 0; i < payers; i++ {
		id := 1000 + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(fmt.Sprintf("%s/request?id=%d", srv.URL, id))
			if err != nil {
				return
			}
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusOK {
				served.Add(1)
				return
			}
			if code != http.StatusPaymentRequired {
				t.Errorf("id %d: unexpected /request status %d", id, code)
				return
			}
			// Re-issue and hold; stream payment until settled.
			done := make(chan int, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				code, _, err := tryGet(fmt.Sprintf("%s/request?id=%d&wait=1", srv.URL, id))
				if err != nil {
					code = 0
				}
				done <- code
			}()
			for paying := true; paying; {
				body := strings.NewReader(strings.Repeat("x", 32<<10))
				resp, err := client.Post(fmt.Sprintf("%s/pay?id=%d", srv.URL, id),
					"application/octet-stream", body)
				if err != nil {
					break
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				paying = strings.Contains(string(raw), "continue")
			}
			switch code := <-done; code {
			case http.StatusOK:
				served.Add(1)
			case http.StatusServiceUnavailable:
				evicted.Add(1)
			case http.StatusConflict:
				conflicts.Add(1)
			}
		}()
	}

	// Orphan payers: payment with no request message; must be evicted.
	for i := 0; i < orphans; i++ {
		id := 5000 + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, pw := io.Pipe()
			go func() {
				pw.Write(make([]byte, 48<<10))
				// Keep the stream open: eviction must cut it short.
				time.Sleep(5 * time.Second)
				pw.Close()
			}()
			resp, err := client.Post(fmt.Sprintf("%s/pay?id=%d", srv.URL, id),
				"application/octet-stream", pr)
			if err != nil {
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(raw), "evicted") {
				evicted.Add(1)
			}
		}()
	}

	// Aborters: disconnect mid-POST; the sink must unwind cleanly.
	for i := 0; i < aborters; i++ {
		id := 9000 + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			pr, pw := io.Pipe()
			go func() {
				for {
					if _, err := pw.Write(make([]byte, 16<<10)); err != nil {
						return
					}
				}
			}()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				fmt.Sprintf("%s/pay?id=%d", srv.URL, id), pr)
			resp, err := client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			pw.CloseWithError(context.Canceled)
		}()
	}

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged: actors did not terminate")
	}

	st := front.Snapshot()
	t.Logf("served=%d evicted=%d conflicts=%d snapshot=%+v",
		served.Load(), evicted.Load(), conflicts.Load(), st)
	if served.Load() == 0 {
		t.Fatal("no client was ever served")
	}
	if st.ThinnerTotals.Evicted == 0 {
		t.Fatal("orphan channels were never evicted")
	}
	if got := front.Table().TotalCredited(); got < st.ThinnerTotals.PaidBytes {
		t.Fatalf("credited %d < admitted prices %d", got, st.ThinnerTotals.PaidBytes)
	}
	// The table must drain: give the sweeper a few rounds to clear
	// leftover orphans from aborted streams, then check emptiness.
	deadline := time.Now().Add(5 * time.Second)
	for front.Table().Size() > 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := front.Table().Size(); n > 0 {
		t.Fatalf("%d channels leaked past all timeouts", n)
	}
	if n := front.Table().Waiters(); n > 0 {
		t.Fatalf("%d waiters leaked", n)
	}
	// After the storm the probe must still be green: listener up,
	// sweep chain alive, origin not browned out.
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"sweep_ok":true`) {
		t.Fatalf("/healthz after storm: %d %q", code, body)
	}
}

// TestFrontAdversarialStress turns the adversary suite loose on a
// live front under -race: flood clients pile tiny-payment waiters
// into the BidTable's waiter path while defectors stop paying
// mid-auction and camp until the inactivity sweep evicts them, with a
// pair of honest clients competing throughout. It asserts liveness
// (the run terminates), that the defense actually engaged (evictions
// happened, honest clients got served), and that the table and
// waiter registry drain afterwards.
func TestFrontAdversarialStress(t *testing.T) {
	floods, defectors := 4, 4
	if testing.Short() {
		floods, defectors = 2, 2
	}

	origin := OriginFunc(func(id core.RequestID) ([]byte, error) {
		time.Sleep(2 * time.Millisecond)
		return []byte("ok"), nil
	})
	front := NewFront(origin, Config{
		PayPollInterval: 5 * time.Millisecond,
		RequestTimeout:  10 * time.Second,
		Thinner: core.Config{
			OrphanTimeout:     250 * time.Millisecond,
			InactivityTimeout: 400 * time.Millisecond,
			SweepInterval:     25 * time.Millisecond,
			Shards:            8,
		},
	})
	srv := httptest.NewServer(front)
	defer front.Close()
	defer srv.Close()

	newAttacker := func(name string, n int, seed int64) []*loadgen.Client {
		spec := adversary.Spec{Name: name}
		cohort := adversary.NewCohort(spec, n)
		out := make([]*loadgen.Client, n)
		var ids atomic.Uint64
		ids.Store(uint64(seed) * 100_000)
		for i := range out {
			out[i] = loadgen.NewClient(loadgen.Config{
				BaseURL:  srv.URL,
				Strategy: spec.New(cohort),
				// Loopback-fast uploads and small POSTs: the stress is
				// concurrency, not bandwidth.
				UploadBits: 200e6, PostBytes: 32 << 10,
				Seed: seed + int64(i),
			}, &ids)
		}
		return out
	}
	var honestIDs atomic.Uint64
	honest := []*loadgen.Client{
		loadgen.NewClient(loadgen.Config{
			BaseURL: srv.URL, Lambda: 10, Window: 4, Good: true,
			UploadBits: 200e6, PostBytes: 32 << 10, Seed: 1,
		}, &honestIDs),
		loadgen.NewClient(loadgen.Config{
			BaseURL: srv.URL, Lambda: 10, Window: 4, Good: true,
			UploadBits: 200e6, PostBytes: 32 << 10, Seed: 2,
		}, &honestIDs),
	}
	honestIDs.Store(1_000_000_000)

	all := append(newAttacker("flood", floods, 2_000), newAttacker("defector", defectors, 3_000)...)
	all = append(all, honest...)
	for _, c := range all {
		c.Run()
	}
	runFor := 3 * time.Second
	if testing.Short() {
		runFor = 1500 * time.Millisecond
	}
	time.Sleep(runFor)

	stopped := make(chan struct{})
	go func() {
		for _, c := range all {
			c.Stop()
		}
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(30 * time.Second):
		t.Fatal("adversarial stress wedged: clients did not stop")
	}

	var honestServed uint64
	for _, c := range honest {
		honestServed += c.Stats.Served.Load()
	}
	st := front.Snapshot()
	t.Logf("honest served=%d thinner=%+v", honestServed, st.ThinnerTotals)
	if honestServed == 0 {
		t.Fatal("honest clients starved: flood+defector shut the front down")
	}
	if st.ThinnerTotals.Admitted == 0 {
		t.Fatal("nothing was ever admitted")
	}
	if st.ThinnerTotals.Evicted == 0 {
		t.Fatal("defectors camping on unpaid bids were never evicted")
	}
	// Everything must drain: camped defector waiters, flood ids, all
	// of it — give the sweeper a few rounds past the timeouts.
	deadline := time.Now().Add(10 * time.Second)
	for (front.Table().Size() > 0 || front.Table().Waiters() > 0) && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := front.Table().Size(); n > 0 {
		t.Fatalf("%d payment channels leaked past all timeouts", n)
	}
	if n := front.Table().Waiters(); n > 0 {
		t.Fatalf("%d waiters leaked", n)
	}
}

// TestFrontEvictionStorm is the PR 5 sweep-index stress: thousands of
// payment channels hit the timeout machinery at once — orphans (paid,
// never sent the request) through the creation-ordered orphan lists,
// and camping contenders (requested, never paid) through the
// inactivity timing wheel — under -race. Every channel must be
// evicted, every waiter released with 503, and the table must drain
// completely; the eviction stats must cover the whole storm.
func TestFrontEvictionStorm(t *testing.T) {
	orphans, campers := 400, 200
	if testing.Short() {
		orphans, campers = 150, 75
	}

	block := make(chan struct{})
	origin := OriginFunc(func(id core.RequestID) ([]byte, error) {
		<-block // keep the origin busy so campers stay contenders
		return []byte("ok"), nil
	})
	front := NewFront(origin, Config{
		PayPollInterval: 5 * time.Millisecond,
		RequestTimeout:  30 * time.Second,
		Thinner: core.Config{
			OrphanTimeout:     150 * time.Millisecond,
			InactivityTimeout: 400 * time.Millisecond,
			SweepInterval:     20 * time.Millisecond,
			Shards:            8,
		},
	})
	srv := httptest.NewServer(front)
	defer front.Close()
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}

	go http.Get(srv.URL + "/request?id=1") // occupy the origin
	time.Sleep(30 * time.Millisecond)

	var wg sync.WaitGroup
	var evictedPays, evictedWaits atomic.Uint64
	// Orphan payers: each streams an open-ended POST /pay and never
	// sends the request message. The sweep must time the channel out
	// via the creation-ordered orphan list, and the front must cut the
	// in-flight POST short with an "evicted" verdict (state-word
	// settle observed mid-stream).
	for i := 0; i < orphans; i++ {
		id := 10_000 + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, pw := io.Pipe()
			req, _ := http.NewRequest(http.MethodPost,
				fmt.Sprintf("%s/pay?id=%d", srv.URL, id), pr)
			done := make(chan struct{})
			go func() {
				defer close(done)
				resp, err := client.Do(req)
				if err != nil {
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if strings.Contains(string(raw), "evicted") {
					evictedPays.Add(1)
				}
			}()
			chunk := []byte(strings.Repeat("x", 2048))
			for {
				select {
				case <-done:
					pw.Close()
					return
				default:
				}
				if _, err := pw.Write(chunk); err != nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			pw.Close()
			<-done
		}()
	}
	// Campers: eligible contenders that never pay a byte. The wheel
	// must evict them and their held requests must get 503.
	for i := 0; i < campers; i++ {
		id := 50_000 + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, err := tryGet(fmt.Sprintf("%s/request?id=%d&wait=1", srv.URL, id))
			if err == nil && code == http.StatusServiceUnavailable {
				evictedWaits.Add(1)
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("eviction storm wedged: clients did not terminate")
	}

	st := front.Snapshot()
	t.Logf("storm: evicted pays=%d waits=%d open=%d thinner=%+v",
		evictedPays.Load(), evictedWaits.Load(), st.OpenChannels, st.ThinnerTotals)
	if got := evictedWaits.Load(); got != uint64(campers) {
		t.Fatalf("%d/%d camping waiters got 503", got, campers)
	}
	if st.ThinnerTotals.Evicted < uint64(orphans+campers) {
		t.Fatalf("thinner evicted %d, want >= %d (every orphan and camper)",
			st.ThinnerTotals.Evicted, orphans+campers)
	}
	// A healthy share of the in-flight POSTs must have learned their
	// verdict from the state word. The margin is loose: when the front
	// expires the read deadline to cut a stream short, the connection
	// is aborted, and under -race on a loaded host many clients lose
	// the reply to that teardown — the authoritative check is the
	// exact server-side eviction count above.
	if got := evictedPays.Load(); got < uint64(orphans/10) {
		t.Fatalf("only %d/%d orphan streams saw an evicted verdict", got, orphans)
	}
	// The held origin request (id=1) is still in flight; everything
	// else must drain once the timeouts lapse.
	deadline := time.Now().Add(10 * time.Second)
	for front.Table().Size() > 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := front.Table().Size(); n > 0 {
		t.Fatalf("%d payment channels survived the storm past all timeouts", n)
	}
	close(block)
}
