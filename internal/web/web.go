// Package web implements speak-up's thinner as a real network front-end
// over net/http — the production counterpart of the paper's OKWS
// prototype (§6).
//
// Protocol (mirroring the JavaScript flow the paper describes):
//
//	GET  /request?id=N            the client's request. If the origin is
//	                              free it is served directly. If busy,
//	                              the thinner replies 402 with
//	                              Speakup-Action: pay.
//	GET  /request?id=N&wait=1     the re-issued actual request; held open
//	                              until N wins an auction and the origin
//	                              responds.
//	POST /pay?id=N                the payment channel: the thinner sinks
//	                              and counts the dummy body bytes. The
//	                              response tells the client to continue
//	                              with another POST, that it was
//	                              admitted, or that it was evicted.
//	GET  /stats                   JSON counters.
//	GET  /telemetry               NDJSON stream of periodic snapshots
//	                              (?interval=500ms tunes the cadence).
//	GET  /control/config          the thinner's effective configuration
//	                              (the scenario schema's thinner section)
//	                              plus its canonical config_hash, the
//	                              identity fleet rollouts converge on.
//	POST /control/config          live reconfiguration: a thinner section
//	                              whose zero fields mean "unchanged".
//	                              Timeouts and the sweep cadence apply
//	                              atomically; a shard-count change is
//	                              rejected with 400, and any patch is
//	                              refused with 503 + Retry-After while
//	                              the origin is browned out (a patch
//	                              applied mid-brownout is indistinguishable
//	                              from the patch causing it).
//
// Ingest architecture: the whole point of speak-up is that the thinner
// absorbs far more traffic than the origin serves, so the payment path
// must scale with cores. Each /pay stream resolves its request's
// payment channel once in the sharded core.BidTable and then credits
// every chunk through that channel's atomics — no locks, no
// allocation, no sharing beyond its shard. Admission and eviction are
// published by compare-and-swapping the channel's state word, which
// in-flight POSTs observe between chunks. Only the rare control events
// — request arrival, the auction when the origin frees up, the timeout
// sweep — serialize on a small mutex, preserving the thinner core's
// single-threaded auction semantics.
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"speakup/internal/config"
	"speakup/internal/core"
	"speakup/internal/metrics"
	"speakup/internal/trace"
)

// Origin is the protected service behind the thinner.
type Origin interface {
	// Serve processes one request and returns the response body. Calls
	// are serialized by the Front (the emulated server model: one
	// request at a time).
	Serve(id core.RequestID) ([]byte, error)
}

// OriginFunc adapts a function to the Origin interface.
type OriginFunc func(id core.RequestID) ([]byte, error)

// Serve implements Origin.
func (f OriginFunc) Serve(id core.RequestID) ([]byte, error) { return f(id) }

// EmulatedOrigin reproduces the paper's emulated server: service time
// drawn uniformly from [0.9/c, 1.1/c] per request.
type EmulatedOrigin struct {
	mu       sync.Mutex
	capacity float64
	body     []byte
}

// NewEmulatedOrigin creates an origin with the given capacity
// (requests/second).
func NewEmulatedOrigin(capacity float64) *EmulatedOrigin {
	if capacity <= 0 {
		panic("web: origin capacity must be positive")
	}
	return &EmulatedOrigin{
		capacity: capacity,
		body:     []byte("ok: your request has been served by the protected origin\n"),
	}
}

// Serve sleeps for the drawn service time and returns a fixed body.
func (o *EmulatedOrigin) Serve(id core.RequestID) ([]byte, error) {
	mean := time.Duration(float64(time.Second) / o.capacity)
	lo := time.Duration(float64(mean) * 0.9)
	span := time.Duration(float64(mean) * 0.2)
	o.mu.Lock()
	jitter := time.Duration(int64(time.Now().UnixNano()) % int64(span+1))
	o.mu.Unlock()
	time.Sleep(lo + jitter)
	return o.body, nil
}

// Config tunes a Front.
type Config struct {
	// Thinner configures the auction core (timeouts, bid-table shard
	// count — Shards defaults to GOMAXPROCS-scaled).
	Thinner core.Config
	// PayChunk is the read-buffer size for payment bodies. Default 16 KB.
	PayChunk int
	// PayPollInterval bounds how quickly a winning/evicted payment
	// channel is released mid-POST. Default 50ms.
	PayPollInterval time.Duration
	// RequestTimeout bounds how long a held request waits for service.
	// Default 5 minutes.
	RequestTimeout time.Duration
	// OriginStallAfter declares the origin browned out when a single
	// Serve call exceeds it: auctions pause, held channels survive,
	// and new /request arrivals are shed with 503 + Retry-After until
	// the call returns. Default 30s.
	OriginStallAfter time.Duration
	// Trace configures request-lifecycle tracing (internal/trace).
	// Zero Sample — the default — disables it entirely: no tracer is
	// built, /trace answers 404, and the request and payment paths pay
	// nothing.
	Trace trace.Config
}

func (c Config) withDefaults() Config {
	if c.PayChunk == 0 {
		c.PayChunk = 16 << 10
	}
	if c.PayPollInterval == 0 {
		c.PayPollInterval = 50 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	if c.OriginStallAfter == 0 {
		c.OriginStallAfter = 30 * time.Second
	}
	return c
}

// Front is the speak-up HTTP front-end. Create with NewFront; it
// implements http.Handler.
type Front struct {
	cfg     Config
	origin  Origin
	started time.Time

	// ctl serializes the thinner's control path: request arrival, the
	// auction on server-free, and the timeout sweep. These are rare
	// (at most a few per served request). Payment crediting — the hot
	// path — never takes it.
	ctl   sync.Mutex
	th    *core.Thinner
	table *core.BidTable

	// reg receives every admission and eviction from the thinner core;
	// /telemetry streams snapshots of it without taking ctl.
	reg metrics.Registry

	// tracer is the sampled request-lifecycle tracer (nil when
	// disabled; every hook tolerates that). It is shared by the HTTP
	// handlers, the thinner core, and any wire listener attached via
	// Tracer(), which is what makes co-sampling across transports
	// automatic: one sampling decision per id, one record.
	tracer *trace.Tracer

	served atomic.Uint64
	bufs   sync.Pool // *[]byte of cfg.PayChunk, for /pay read loops

	// closed ends /telemetry streams when the front shuts down.
	closed    chan struct{}
	closeOnce sync.Once
}

// NewFront builds the front-end for an origin.
func NewFront(origin Origin, cfg Config) *Front {
	f := &Front{
		cfg:     cfg.withDefaults(),
		origin:  origin,
		started: time.Now(),
		closed:  make(chan struct{}),
	}
	f.bufs.New = func() any {
		b := make([]byte, f.cfg.PayChunk)
		return &b
	}
	// Construct and wire the thinner under ctl: its sweep timer runs
	// callbacks under the same mutex, so holding it here makes the
	// constructor's writes (timer handle, callbacks) visible to the
	// first sweep no matter how soon it fires.
	tc := f.cfg.Trace
	tc.Hists = f.reg.Latency()
	f.tracer = trace.New(tc)
	clock := &ctlClock{epoch: f.started, mu: &f.ctl}
	f.ctl.Lock()
	f.th = core.NewThinner(clock, f.cfg.Thinner)
	f.table = f.th.Table()
	f.th.Admit = f.admit
	f.th.Evict = f.evict
	f.th.Metrics = &f.reg
	f.th.Trace = f.tracer
	f.ctl.Unlock()
	return f
}

// ctlClock adapts wall-clock time to core.Clock, running timer
// callbacks (the timeout sweep) under the Front's control mutex so
// they serialize with arrivals and auctions.
type ctlClock struct {
	mu    *sync.Mutex
	epoch time.Time
}

func (c *ctlClock) Now() time.Duration { return time.Since(c.epoch) }

func (c *ctlClock) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})
	return func() { t.Stop() }
}

// Now reads the front's clock (the epoch its thinner, payment
// channels, and sweep share). Additional transports (internal/wire)
// stamp their credits with it so both listeners age channels alike.
func (f *Front) Now() time.Duration { return time.Since(f.started) }

// now is the Front's clock reading (same epoch the thinner sees).
func (f *Front) now() time.Duration { return f.Now() }

// deliver hands a taken waiter its outcome: the HTTP front parks
// waiters as buffered channels, other transports register a
// core.Waiter. A nil body means evicted.
func deliver(w any, body []byte) {
	switch w := w.(type) {
	case chan []byte:
		w <- body // buffered; the waiter may also have given up
	case core.Waiter:
		w.Deliver(body)
	}
}

// admit (called with ctl held, from the thinner core) collects the
// held request's waiter and dispatches the request to the origin on
// its own goroutine. The winner's payment POST learns of the admission
// from its channel's state word, which the core flipped on settle.
func (f *Front) admit(id core.RequestID, paid int64) {
	w := f.table.TakeWaiter(id)
	go func() {
		// Watchdog: a Serve call that exceeds OriginStallAfter browns
		// the thinner out. The done flag is flipped under ctl, so the
		// timer callback either observes it (Serve finished first) or
		// declares the stall strictly before the recovery below.
		var done atomic.Bool
		watchdog := time.AfterFunc(f.cfg.OriginStallAfter, func() {
			f.ctl.Lock()
			defer f.ctl.Unlock()
			if done.Load() {
				return
			}
			f.th.SetOriginStalled(true)
		})
		body, err := f.origin.Serve(id)
		if err != nil {
			body = []byte("origin error: " + err.Error())
		}
		if body == nil {
			body = []byte{}
		}
		f.served.Add(1)
		deliver(w, body)
		f.ctl.Lock()
		done.Store(true)
		watchdog.Stop()
		// No-op unless the watchdog fired: recovery re-opens the
		// auction floor (with an eviction grace window) before
		// ServerDone settles the next winner.
		f.th.SetOriginStalled(false)
		f.th.ServerDone()
		f.ctl.Unlock()
	}()
}

// evict (called with ctl held, from the sweep) releases a timed-out
// contender's held request, if any. A nil body tells the waiter it was
// evicted. The payment POST itself stops via the state word.
func (f *Front) evict(id core.RequestID, paid int64, wasted bool) {
	if !wasted {
		return // auction winner: admit delivers the response
	}
	deliver(f.table.TakeWaiter(id), nil)
}

// Arrive runs the front's pinned arrival protocol for a re-issued
// (waiting) request on behalf of any transport: under the control
// mutex it sheds during a brownout, rejects a duplicate id, and
// otherwise registers w as the id's waiter and announces the arrival
// to the thinner. The HTTP wait path and the wire front's OPEN both
// land here, so the 503/409/held semantics cannot drift apart.
func (f *Front) Arrive(id core.RequestID, w any) core.ArriveVerdict {
	f.ctl.Lock()
	defer f.ctl.Unlock()
	if f.th.Health() == core.HealthStalled {
		// Origin brownout: shed fast with a retry hint instead of
		// stranding this client as a waiter the origin cannot drain.
		// Contenders already holding channels keep their balances.
		f.th.ShedArrival(id)
		return core.ArriveShed
	}
	if !f.table.SetWaiter(id, w) {
		// A request with this id is already held. Overwriting would
		// strand the earlier waiter until RequestTimeout.
		f.tracer.OnDuplicate(uint64(id), f.now())
		return core.ArriveDuplicate
	}
	f.th.RequestArrived(id)
	return core.ArriveOK
}

// Channel resolves id's payment channel at the front's clock — the
// wire transport's credit path (the /pay handler resolves inline).
func (f *Front) Channel(id core.RequestID) *core.PayChan {
	return f.table.Channel(id, f.now())
}

// ReleaseWaiter drops w's registration for id if it is still the
// current waiter — a transport's client gave up (HTTP: request
// context canceled; wire: CLOSE frame or connection teardown).
func (f *Front) ReleaseWaiter(id core.RequestID, w any) {
	f.table.DropWaiter(id, w)
}

// Registry exposes the front's telemetry registry so additional
// transports record into the same /telemetry stream.
func (f *Front) Registry() *metrics.Registry { return &f.reg }

// Tracer exposes the front's request-lifecycle tracer (nil when
// tracing is disabled) so additional transports — the wire listener —
// credit into the same sampled records.
func (f *Front) Tracer() *trace.Tracer { return f.tracer }

// ServeHTTP implements http.Handler.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/request":
		f.handleRequest(w, r)
	case "/pay":
		f.handlePay(w, r)
	case "/stats":
		f.handleStats(w)
	case "/metrics":
		f.handleMetrics(w)
	case "/trace":
		f.handleTrace(w, r)
	case "/healthz":
		f.handleHealthz(w)
	case "/telemetry":
		f.handleTelemetry(w, r)
	case "/control/config":
		f.handleControlConfig(w, r)
	default:
		http.NotFound(w, r)
	}
}

func parseID(r *http.Request) (core.RequestID, error) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		return 0, errors.New("missing id")
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad id: %v", err)
	}
	return core.RequestID(n), nil
}

func (f *Front) handleRequest(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wait := r.URL.Query().Get("wait") != ""

	ch := make(chan []byte, 1)
	var verdict core.ArriveVerdict
	if wait {
		verdict = f.Arrive(id, ch)
	} else {
		// The initial (non-waiting) request additionally probes whether
		// the origin is busy — the 402 leg Arrive has no analog for —
		// under the same lock, between the brownout check and the
		// waiter registration.
		f.ctl.Lock()
		switch {
		case f.th.Health() == core.HealthStalled:
			f.th.ShedArrival(id)
			verdict = core.ArriveShed
		case f.th.Busy():
			f.ctl.Unlock()
			// The "JavaScript" reply: open a payment channel and re-issue.
			w.Header().Set("Speakup-Action", "pay")
			w.WriteHeader(http.StatusPaymentRequired)
			fmt.Fprintln(w, "server busy: stream dummy bytes to /pay and re-issue with &wait=1")
			return
		case !f.table.SetWaiter(id, ch):
			f.tracer.OnDuplicate(uint64(id), f.now())
			verdict = core.ArriveDuplicate
		default:
			f.th.RequestArrived(id)
			verdict = core.ArriveOK
		}
		f.ctl.Unlock()
	}
	switch verdict {
	case core.ArriveShed:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "origin brownout: auctions paused, retry shortly", http.StatusServiceUnavailable)
		return
	case core.ArriveDuplicate:
		http.Error(w, "duplicate request id: a request with this id is already waiting",
			http.StatusConflict)
		return
	}

	select {
	case body := <-ch:
		if body == nil {
			http.Error(w, "evicted: payment channel timed out", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(body)
	case <-r.Context().Done():
		f.table.DropWaiter(id, ch)
	case <-time.After(f.cfg.RequestTimeout):
		f.table.DropWaiter(id, ch)
		http.Error(w, "timed out waiting for service", http.StatusGatewayTimeout)
	}
}

// payReply is the JSON body of /pay responses.
type payReply struct {
	Status string `json:"status"` // "continue", "admitted", "evicted"
	Paid   int64  `json:"paid"`   // bytes credited on this channel call
}

func (f *Front) handlePay(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Resolve the payment channel once; every chunk below is credited
	// through its atomics without locks.
	pc := f.table.Channel(id, f.now())

	// The sink goroutine blocks in Read and credits chunks as they
	// land — the hot path: one Read, one atomic credit, one state load
	// per chunk, no locks, no deadlines. (Read deadlines are unusable
	// here: a deadline expiring mid-chunked-body poisons net/http's
	// chunked reader permanently, which would stop ingest cold.)
	var credited atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		bufp := f.bufs.Get().(*[]byte)
		buf := *bufp
		tr := f.tracer
		for {
			n, err := r.Body.Read(buf)
			if n > 0 {
				now := f.now()
				if pc.Credit(int64(n), now) {
					// Count only accepted bytes so the reply's paid tally
					// matches the table (a chunk racing the settle is
					// dropped by Credit).
					credited.Add(int64(n))
					tr.OnCredit(uint64(id), int64(n), now, trace.TransportHTTP)
				}
			}
			if err != nil || pc.State() != core.ChanActive {
				break // EOF, client gone, handler returned, or settled
			}
		}
		f.bufs.Put(bufp)
	}()

	// Wait for the POST to complete, polling the channel's state word
	// so a settle (auction win or eviction) interrupts the stream. The
	// sink may be parked inside Read holding net/http's body mutex —
	// which the response-write path also needs — so to cut a settled
	// stream short we expire the connection's read deadline, join the
	// sink, and only then respond. (The connection is not reused after
	// an aborted body; that's fine, the client was told to stop.)
	rc := http.NewResponseController(w)
	ticker := time.NewTicker(f.cfg.PayPollInterval)
	defer ticker.Stop()
	for waiting := true; waiting; {
		select {
		case <-done:
			waiting = false
		case <-ticker.C:
			if pc.State() != core.ChanActive {
				rc.SetReadDeadline(time.Now())
				<-done
				waiting = false
			}
		}
	}
	rc.SetReadDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payReply{Status: stateString(pc.State()), Paid: credited.Load()})
}

func stateString(st core.ChanState) string {
	switch st {
	case core.ChanAdmitted:
		return "admitted"
	case core.ChanEvicted:
		return "evicted"
	}
	return "continue"
}

// Stats is the JSON shape of /stats.
type Stats struct {
	Uptime string `json:"uptime"`
	// UptimeSeconds is the same span as a bare number, for consumers
	// that should not parse Go duration strings.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// GOMAXPROCS is the front's scheduler width — context for judging
	// the sharded ingest numbers below.
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Served       uint64  `json:"served"`
	PaymentBytes int64   `json:"payment_bytes"`
	PaymentMbps  float64 `json:"payment_mbps"`
	GoingRate    int64   `json:"going_rate_bytes"`
	// LastWinner is the id of the most recent auction winner (0 before
	// any auction) — with GoingRate, the public auction observables.
	LastWinner core.RequestID `json:"last_winner_id"`
	Contenders int            `json:"contenders"`
	// OpenChannels counts every open payment channel including
	// orphans (paid, request not yet arrived) — under flood this is
	// the population the PR 5 indexes keep auction and sweep cost
	// independent of.
	OpenChannels int `json:"open_channels"`
	Shards       int `json:"shards"`
	// Health is the origin-health brownout ladder state ("ok",
	// "stalled", "recovering").
	Health string `json:"health"`
	// ConfigHash is the canonical hash of the thinner's effective
	// configuration — the identity fleet rollouts converge on (the same
	// value /control/config reports).
	ConfigHash string `json:"config_hash"`
	// Wire-transport slice of the ingest (0s when no wire listener is
	// attached): open binary connections, frames decoded, and payment
	// bytes credited over internal/wire.
	WireConns       int64      `json:"wire_conns"`
	WireFrames      uint64     `json:"wire_frames"`
	WireIngestBytes int64      `json:"wire_ingest_bytes"`
	ThinnerTotals   core.Stats `json:"thinner"`
}

// Snapshot returns current counters. Payment totals come from the bid
// table's shard counters; only the thinner's own tallies are read
// under the control mutex.
func (f *Front) Snapshot() Stats {
	up := time.Since(f.started)
	f.ctl.Lock()
	going := f.th.GoingRate()
	winner := f.th.LastWinner()
	totals := f.th.Stats()
	health := f.th.Health()
	cfgHash := config.HashThinner(config.ThinnerFromCore(f.th.Config()))
	f.ctl.Unlock()
	pay := f.table.TotalCredited()
	snap := f.reg.Snapshot()
	return Stats{
		Uptime:          up.Truncate(time.Millisecond).String(),
		UptimeSeconds:   up.Seconds(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Served:          f.served.Load(),
		PaymentBytes:    pay,
		PaymentMbps:     float64(pay) * 8 / up.Seconds() / 1e6,
		GoingRate:       going,
		LastWinner:      winner,
		Contenders:      f.table.Eligible(),
		OpenChannels:    f.table.Size(),
		Shards:          f.table.Shards(),
		Health:          health.String(),
		ConfigHash:      cfgHash,
		WireConns:       snap.WireConns,
		WireFrames:      snap.WireFrames,
		WireIngestBytes: snap.WireIngestBytes,
		ThinnerTotals:   totals,
	}
}

func (f *Front) handleStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.Snapshot())
}

// handleMetrics renders GET /metrics: the registry's counters, gauges,
// and lifecycle histograms in Prometheus text exposition format, plus
// the deployment gauges only the front can see. Like /telemetry it
// never takes the control mutex.
func (f *Front) handleMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := f.reg.WritePrometheus(w); err != nil {
		return
	}
	up := time.Since(f.started)
	metrics.WritePrometheusGauge(w, "speakup_uptime_seconds",
		"Seconds since the front started.", up.Seconds())
	metrics.WritePrometheusCounter(w, "speakup_served_total",
		"Requests the origin completed.", float64(f.served.Load()))
	metrics.WritePrometheusCounter(w, "speakup_ingest_bytes_total",
		"Payment bytes credited across all transports.", float64(f.table.TotalCredited()))
	metrics.WritePrometheusGauge(w, "speakup_open_channels",
		"Open payment channels, orphans included.", float64(f.table.Size()))
	metrics.WritePrometheusGauge(w, "speakup_contenders",
		"Eligible auction contenders.", float64(f.table.Eligible()))
	metrics.WritePrometheusGauge(w, "speakup_gomaxprocs",
		"The front's scheduler width.", float64(runtime.GOMAXPROCS(0)))
	if f.tracer != nil {
		metrics.WritePrometheusGauge(w, "speakup_trace_sample_n",
			"Tracing samples one in this many request ids.", float64(f.tracer.SampleN()))
		metrics.WritePrometheusCounter(w, "speakup_trace_completed_total",
			"Request-lifecycle traces retired to the ring.", float64(f.tracer.Completed()))
		metrics.WritePrometheusCounter(w, "speakup_trace_drops_total",
			"Sampled requests untraced because the in-flight slot table was full.", float64(f.tracer.Drops()))
	}
}

// traceView is the NDJSON line shape of /trace: a trace.Record with
// the enums rendered as strings and the headline latency precomputed.
type traceView struct {
	trace.Record
	Verdict   string  `json:"verdict"`
	Transport string  `json:"transport"`
	WaitMS    float64 `json:"wait_ms"`
}

// handleTrace serves GET /trace?n=&id=: the most recent completed
// request-lifecycle traces, newest first, one JSON object per line.
// n bounds the count (default 100); id filters to one request id.
// With tracing disabled the endpoint answers 404 — the knob to flip is
// the front's trace sample rate, not a query parameter.
func (f *Front) handleTrace(w http.ResponseWriter, r *http.Request) {
	if f.tracer == nil {
		http.Error(w, "tracing disabled: start the front with a trace sample rate (thinnerd -trace-sample)",
			http.StatusNotFound)
		return
	}
	n := 100
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			http.Error(w, "bad n: want a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	var id uint64
	if raw := r.URL.Query().Get("id"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
			return
		}
		id = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, rec := range f.tracer.Snapshot(n, id) {
		enc.Encode(traceView{
			Record:    rec,
			Verdict:   rec.Verdict.String(),
			Transport: rec.Transport.String(),
			WaitMS:    float64(rec.Wait().Nanoseconds()) / 1e6,
		})
	}
}

// Healthz is the JSON shape of /healthz — the readiness probe fleet
// orchestration points at a front. Ready means: the listener answered
// (implicit), the timeout-sweep chain is alive, and the origin is not
// browned out.
type Healthz struct {
	Status      string `json:"status"` // "ok" or "degraded"
	Origin      string `json:"origin"` // brownout ladder: ok | stalled | recovering
	SweepOK     bool   `json:"sweep_ok"`
	LastSweepMS int64  `json:"last_sweep_ms"` // age of the last sweep tick
	UptimeMS    int64  `json:"uptime_ms"`
}

// Health returns the readiness view (the /healthz body).
func (f *Front) Health() Healthz {
	f.ctl.Lock()
	origin := f.th.Health()
	age := f.th.LastSweepAge()
	interval := f.th.Config().SweepInterval
	f.ctl.Unlock()
	h := Healthz{
		Origin:      origin.String(),
		SweepOK:     age <= 3*interval,
		LastSweepMS: age.Milliseconds(),
		UptimeMS:    time.Since(f.started).Milliseconds(),
	}
	if h.SweepOK && origin != core.HealthStalled {
		h.Status = "ok"
	} else {
		h.Status = "degraded"
	}
	return h
}

func (f *Front) handleHealthz(w http.ResponseWriter) {
	h := f.Health()
	w.Header().Set("Content-Type", "application/json")
	if h.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// ErrReconfigStalled rejects live reconfiguration during an origin
// brownout: a patch applied mid-brownout is indistinguishable from the
// patch causing the brownout, so the control plane refuses to move
// while the ladder reads HealthStalled. /control/config maps it to
// 503 + Retry-After; fleet controllers treat it as a retryable
// unhealthy signal, exactly like a shed arrival.
var ErrReconfigStalled = errors.New("origin browned out (health stalled): reconfiguration refused until the origin recovers")

// Reconfigure applies a thinner-section patch to the live auction
// core: zero fields keep their value, timeouts and the sweep cadence
// apply atomically under the control mutex, and a shard-count change
// is rejected (the bid table is sized at construction). While the
// origin is browned out (HealthStalled) every patch is refused with
// ErrReconfigStalled. Safe to call concurrently with traffic;
// /control/config POSTs land here.
func (f *Front) Reconfigure(patch config.Thinner) error {
	f.ctl.Lock()
	defer f.ctl.Unlock()
	if f.th.Health() == core.HealthStalled {
		return ErrReconfigStalled
	}
	return f.th.Reconfigure(patch.Core())
}

// ThinnerConfig returns the thinner's effective configuration as its
// scenario-schema section (what /control/config GET reports).
func (f *Front) ThinnerConfig() config.Thinner {
	f.ctl.Lock()
	defer f.ctl.Unlock()
	return config.ThinnerFromCore(f.th.Config())
}

func (f *Front) handleControlConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(config.StatusOf(f.ThinnerConfig()))
	case http.MethodPost:
		patch, err := config.DecodeThinner(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := f.Reconfigure(patch); err != nil {
			if errors.Is(err, ErrReconfigStalled) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(config.StatusOf(f.ThinnerConfig()))
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

// Telemetry returns one telemetry snapshot: the thinner registry's
// counters plus the deployment gauges only the front can see. It
// never takes the control mutex, so streaming cannot contend with
// auctions.
func (f *Front) Telemetry() metrics.Snapshot {
	s := f.reg.Snapshot()
	up := time.Since(f.started)
	s.UptimeMS = up.Milliseconds()
	s.IngestBytes = f.table.TotalCredited()
	s.IngestMbps = float64(s.IngestBytes) * 8 / up.Seconds() / 1e6
	s.OpenChannels = f.table.Size()
	s.Contenders = f.table.Eligible()
	return s
}

func (f *Front) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	interval := time.Second
	if raw := r.URL.Query().Get("interval"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad interval: want a positive Go duration like 500ms", http.StatusBadRequest)
			return
		}
		if d < 10*time.Millisecond {
			d = 10 * time.Millisecond // floor: keep a hostile ?interval=1ns from busy-looping
		}
		interval = d
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if err := enc.Encode(f.Telemetry()); err != nil {
			return
		}
		// Flush through the ResponseController and stop on its error:
		// a dead client surfaces here on the next tick instead of the
		// stream silently writing into a closed connection until the
		// server reaps it.
		if err := rc.Flush(); err != nil {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-f.closed:
			return
		case <-ticker.C:
		}
	}
}

// Table exposes the front's bid table (tests, stats integrations).
func (f *Front) Table() *core.BidTable { return f.table }

// Close stops the thinner's background timers and ends any open
// /telemetry streams.
func (f *Front) Close() {
	f.closeOnce.Do(func() { close(f.closed) })
	f.ctl.Lock()
	defer f.ctl.Unlock()
	f.th.Stop()
}
