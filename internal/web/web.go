// Package web implements speak-up's thinner as a real network front-end
// over net/http — the production counterpart of the paper's OKWS
// prototype (§6).
//
// Protocol (mirroring the JavaScript flow the paper describes):
//
//	GET  /request?id=N            the client's request. If the origin is
//	                              free it is served directly. If busy,
//	                              the thinner replies 402 with
//	                              Speakup-Action: pay.
//	GET  /request?id=N&wait=1     the re-issued actual request; held open
//	                              until N wins an auction and the origin
//	                              responds.
//	POST /pay?id=N                the payment channel: the thinner sinks
//	                              and counts the dummy body bytes. The
//	                              response tells the client to continue
//	                              with another POST, that it was
//	                              admitted, or that it was evicted.
//	GET  /stats                   JSON counters.
//
// The thinner core (internal/core) is single-threaded by design; Front
// serializes all core access behind one mutex, and the core's timers
// run through a clock adapter that takes the same mutex.
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"speakup/internal/core"
)

// Origin is the protected service behind the thinner.
type Origin interface {
	// Serve processes one request and returns the response body. Calls
	// are serialized by the Front (the emulated server model: one
	// request at a time).
	Serve(id core.RequestID) ([]byte, error)
}

// OriginFunc adapts a function to the Origin interface.
type OriginFunc func(id core.RequestID) ([]byte, error)

// Serve implements Origin.
func (f OriginFunc) Serve(id core.RequestID) ([]byte, error) { return f(id) }

// EmulatedOrigin reproduces the paper's emulated server: service time
// drawn uniformly from [0.9/c, 1.1/c] per request.
type EmulatedOrigin struct {
	mu       sync.Mutex
	capacity float64
	body     []byte
}

// NewEmulatedOrigin creates an origin with the given capacity
// (requests/second).
func NewEmulatedOrigin(capacity float64) *EmulatedOrigin {
	if capacity <= 0 {
		panic("web: origin capacity must be positive")
	}
	return &EmulatedOrigin{
		capacity: capacity,
		body:     []byte("ok: your request has been served by the protected origin\n"),
	}
}

// Serve sleeps for the drawn service time and returns a fixed body.
func (o *EmulatedOrigin) Serve(id core.RequestID) ([]byte, error) {
	mean := time.Duration(float64(time.Second) / o.capacity)
	lo := time.Duration(float64(mean) * 0.9)
	span := time.Duration(float64(mean) * 0.2)
	o.mu.Lock()
	jitter := time.Duration(int64(time.Now().UnixNano()) % int64(span+1))
	o.mu.Unlock()
	time.Sleep(lo + jitter)
	return o.body, nil
}

// Config tunes a Front.
type Config struct {
	// Thinner configures the auction core (timeouts).
	Thinner core.Config
	// PayChunk is the read-buffer size for payment bodies. Default 16 KB.
	PayChunk int
	// PayPollInterval bounds how quickly a winning/evicted payment
	// channel is released mid-POST. Default 50ms.
	PayPollInterval time.Duration
	// RequestTimeout bounds how long a held request waits for service.
	// Default 5 minutes.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.PayChunk == 0 {
		c.PayChunk = 16 << 10
	}
	if c.PayPollInterval == 0 {
		c.PayPollInterval = 50 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	return c
}

// payState tracks one payment channel's fate.
type payState int

const (
	payActive payState = iota
	payAdmitted
	payEvicted
)

// Front is the speak-up HTTP front-end. Create with NewFront; it
// implements http.Handler.
type Front struct {
	cfg    Config
	origin Origin

	mu      sync.Mutex
	th      *core.Thinner
	started time.Time
	waiters map[core.RequestID]chan []byte // held /request responses
	pays    map[core.RequestID]payState

	// Counters (also under mu).
	paymentBytes int64
	served       uint64
}

// NewFront builds the front-end for an origin.
func NewFront(origin Origin, cfg Config) *Front {
	f := &Front{
		cfg:     cfg.withDefaults(),
		origin:  origin,
		started: time.Now(),
		waiters: make(map[core.RequestID]chan []byte),
		pays:    make(map[core.RequestID]payState),
	}
	// The clock's mutex must be wired before NewThinner schedules its
	// first sweep timer on it.
	clock := &lockedClock{epoch: f.started, mu: &f.mu}
	f.th = core.NewThinner(clock, f.cfg.Thinner)
	f.th.Admit = f.admitLocked
	f.th.Evict = func(id core.RequestID, paid int64, wasted bool) {
		if st, ok := f.pays[id]; ok && st == payActive {
			if wasted {
				f.pays[id] = payEvicted
			} else {
				f.pays[id] = payAdmitted
			}
		}
	}
	return f
}

// lockedClock adapts wall-clock time to core.Clock, running callbacks
// under the Front's mutex.
type lockedClock struct {
	mu    *sync.Mutex
	epoch time.Time
}

func (c *lockedClock) Now() time.Duration { return time.Since(c.epoch) }

func (c *lockedClock) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})
	return func() { t.Stop() }
}

// admitLocked (called with mu held, from the thinner core) dispatches
// the request to the origin on its own goroutine.
func (f *Front) admitLocked(id core.RequestID, paid int64) {
	if st, ok := f.pays[id]; ok && st == payActive {
		f.pays[id] = payAdmitted
		// Janitor: if the client never comes back to collect the
		// admitted/evicted verdict, drop the entry.
		time.AfterFunc(30*time.Second, func() {
			f.mu.Lock()
			if st, ok := f.pays[id]; ok && st != payActive {
				delete(f.pays, id)
			}
			f.mu.Unlock()
		})
	}
	go func() {
		body, err := f.origin.Serve(id)
		if err != nil {
			body = []byte("origin error: " + err.Error())
		}
		f.mu.Lock()
		f.served++
		if ch, ok := f.waiters[id]; ok {
			delete(f.waiters, id)
			ch <- body
		}
		f.th.ServerDone()
		f.mu.Unlock()
	}()
}

// ServeHTTP implements http.Handler.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/request":
		f.handleRequest(w, r)
	case "/pay":
		f.handlePay(w, r)
	case "/stats":
		f.handleStats(w)
	default:
		http.NotFound(w, r)
	}
}

func parseID(r *http.Request) (core.RequestID, error) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		return 0, errors.New("missing id")
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad id: %v", err)
	}
	return core.RequestID(n), nil
}

func (f *Front) handleRequest(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wait := r.URL.Query().Get("wait") != ""

	f.mu.Lock()
	if !wait && f.th.Busy() {
		f.mu.Unlock()
		// The "JavaScript" reply: open a payment channel and re-issue.
		w.Header().Set("Speakup-Action", "pay")
		w.WriteHeader(http.StatusPaymentRequired)
		fmt.Fprintln(w, "server busy: stream dummy bytes to /pay and re-issue with &wait=1")
		return
	}
	ch := make(chan []byte, 1)
	f.waiters[id] = ch
	f.th.RequestArrived(id)
	f.mu.Unlock()

	select {
	case body := <-ch:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(body)
	case <-r.Context().Done():
		f.mu.Lock()
		delete(f.waiters, id)
		f.mu.Unlock()
	case <-time.After(f.cfg.RequestTimeout):
		f.mu.Lock()
		delete(f.waiters, id)
		f.mu.Unlock()
		http.Error(w, "timed out waiting for service", http.StatusGatewayTimeout)
	}
}

// payReply is the JSON body of /pay responses.
type payReply struct {
	Status string `json:"status"` // "continue", "admitted", "evicted"
	Paid   int64  `json:"paid"`   // bytes credited on this channel call
}

func (f *Front) handlePay(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	f.mu.Lock()
	if _, ok := f.pays[id]; !ok {
		f.pays[id] = payActive
	}
	f.mu.Unlock()

	rc := http.NewResponseController(w)
	canDeadline := rc.SetReadDeadline(time.Now().Add(f.cfg.PayPollInterval)) == nil
	buf := make([]byte, f.cfg.PayChunk)
	var credited int64
	status := "continue"
	for {
		// Bound each read so admission/eviction interrupts the POST.
		if canDeadline {
			rc.SetReadDeadline(time.Now().Add(f.cfg.PayPollInterval))
		}
		n, err := r.Body.Read(buf)
		if n > 0 {
			credited += int64(n)
			f.mu.Lock()
			f.th.PaymentReceived(id, int64(n))
			f.paymentBytes += int64(n)
			st := f.pays[id]
			f.mu.Unlock()
			if st != payActive {
				status = stateString(st)
				break
			}
		}
		if err != nil {
			var ne interface{ Timeout() bool }
			if errors.As(err, &ne) && ne.Timeout() {
				f.mu.Lock()
				st := f.pays[id]
				f.mu.Unlock()
				if st != payActive {
					status = stateString(st)
					break
				}
				continue // just a poll tick; keep reading
			}
			break // EOF (POST complete) or client gone
		}
	}
	f.mu.Lock()
	if st := f.pays[id]; st != payActive {
		status = stateString(st)
		delete(f.pays, id)
	}
	f.mu.Unlock()
	// Clear the deadline so the response writes cleanly.
	rc.SetReadDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payReply{Status: status, Paid: credited})
}

func stateString(st payState) string {
	switch st {
	case payAdmitted:
		return "admitted"
	case payEvicted:
		return "evicted"
	}
	return "continue"
}

// Stats is the JSON shape of /stats.
type Stats struct {
	Uptime        string     `json:"uptime"`
	Served        uint64     `json:"served"`
	PaymentBytes  int64      `json:"payment_bytes"`
	PaymentMbps   float64    `json:"payment_mbps"`
	GoingRate     int64      `json:"going_rate_bytes"`
	Contenders    int        `json:"contenders"`
	ThinnerTotals core.Stats `json:"thinner"`
}

// Snapshot returns current counters.
func (f *Front) Snapshot() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	up := time.Since(f.started)
	return Stats{
		Uptime:        up.Truncate(time.Millisecond).String(),
		Served:        f.served,
		PaymentBytes:  f.paymentBytes,
		PaymentMbps:   float64(f.paymentBytes) * 8 / up.Seconds() / 1e6,
		GoingRate:     f.th.GoingRate(),
		Contenders:    f.th.Ledger().Eligible(),
		ThinnerTotals: f.th.Stats(),
	}
}

func (f *Front) handleStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.Snapshot())
}

// Close stops the thinner's background timers.
func (f *Front) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.th.Stop()
}
