package web

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/config"
	"speakup/internal/core"
	"speakup/internal/metrics"
)

func postJSON(t *testing.T, url, body string) (int, string, error) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return resp.StatusCode, b.String(), nil
}

// TestControlConfigGetAndApply checks the read/modify cycle: GET
// reports the effective config, POST applies a patch atomically, and
// the next GET reflects it.
func TestControlConfigGetAndApply(t *testing.T) {
	_, srv, _ := newTestFront(t, 10*time.Millisecond)

	code, body := get(t, srv.URL+"/control/config")
	if code != http.StatusOK || !strings.Contains(body, `"orphan_timeout":"500ms"`) {
		t.Fatalf("GET /control/config: %d %q", code, body)
	}

	code, body, err := postJSON(t, srv.URL+"/control/config",
		`{"orphan_timeout":"2s","sweep_interval":"50ms"}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("POST: %d %q %v", code, body, err)
	}
	var applied config.Thinner
	if err := json.Unmarshal([]byte(body), &applied); err != nil {
		t.Fatalf("POST reply not a thinner section: %v in %q", err, body)
	}
	if applied.OrphanTimeout.D() != 2*time.Second || applied.SweepInterval.D() != 50*time.Millisecond {
		t.Fatalf("patch not applied: %+v", applied)
	}
	// The untouched field kept its default.
	if applied.InactivityTimeout.D() != 30*time.Second {
		t.Fatalf("zero field did not mean unchanged: %+v", applied)
	}
}

// TestControlConfigRejections checks invalid bodies and unsafe changes
// fail with 400 and change nothing.
func TestControlConfigRejections(t *testing.T) {
	front, srv, _ := newTestFront(t, 10*time.Millisecond)
	before := front.ThinnerConfig()

	for _, tc := range []struct{ name, body, wantErr string }{
		{"shards", `{"shards":64}`, "shard count is fixed"},
		{"unknown field", `{"orphan_timeut":"1s"}`, "unknown field"},
		{"negative", `{"sweep_interval":"-1s"}`, "negative"},
		{"not json", `cadence=fast`, "invalid character"},
		{"shards with rider", `{"shards":64,"orphan_timeout":"9s"}`, "shard count is fixed"},
	} {
		code, body, err := postJSON(t, srv.URL+"/control/config", tc.body)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if code != http.StatusBadRequest || !strings.Contains(body, tc.wantErr) {
			t.Errorf("%s: got %d %q, want 400 with %q", tc.name, code, body, tc.wantErr)
		}
	}
	if after := front.ThinnerConfig(); after != before {
		t.Fatalf("rejected POSTs leaked config changes: %+v -> %+v", before, after)
	}
}

// TestLiveReconfigUnderLoad is the control-plane race test: payers
// stream payment, requests queue, the sweeper runs, and concurrent
// /control/config applies — valid and invalid — land mid-flight. Run
// under -race this pins that live reconfiguration is safe; the final
// checks pin that it actually took effect and that invalid patches
// were rejected without partial application.
func TestLiveReconfigUnderLoad(t *testing.T) {
	front, srv, _ := newTestFront(t, 30*time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Hold the origin busy and keep contenders paying throughout.
	for i := 0; i < 4; i++ {
		id := i + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				tryGet(fmt.Sprintf("%s/request?id=%d", srv.URL, id))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := bytes.Repeat([]byte("x"), 32<<10)
			for ctx.Err() == nil {
				resp, err := http.Post(fmt.Sprintf("%s/pay?id=%d", srv.URL, id),
					"application/octet-stream", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}

	// Concurrent reconfigurations: two writers alternating valid
	// patches, one writer hammering invalid ones.
	var applies atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			patches := []string{
				`{"sweep_interval":"20ms","orphan_timeout":"300ms"}`,
				`{"sweep_interval":"80ms","inactivity_timeout":"10s"}`,
			}
			for i := 0; ctx.Err() == nil; i++ {
				code, body, err := postJSON(t, srv.URL+"/control/config", patches[i%len(patches)])
				if err == nil && code != http.StatusOK {
					t.Errorf("valid patch rejected: %d %q", code, body)
					return
				}
				if err == nil {
					applies.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			code, _, err := postJSON(t, srv.URL+"/control/config", `{"shards":1024}`)
			if err == nil && code != http.StatusBadRequest {
				t.Errorf("shard change accepted under load: %d", code)
				return
			}
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	cancel()
	wg.Wait()

	if applies.Load() < 2 {
		t.Fatalf("only %d reconfigurations applied", applies.Load())
	}
	cfg := front.ThinnerConfig()
	if d := cfg.SweepInterval.D(); d != 20*time.Millisecond && d != 80*time.Millisecond {
		t.Fatalf("final sweep interval %v is not one of the applied patches", d)
	}
	if cfg.Shards != 0 && cfg.Shards != front.Table().Shards() {
		t.Fatalf("shard config drifted: %+v", cfg)
	}
	// The thinner survived: a fresh request is still served.
	code, _, err := tryGet(srv.URL + "/request?id=9999")
	if err != nil || (code != http.StatusOK && code != http.StatusPaymentRequired) {
		t.Fatalf("front unhealthy after reconfig storm: %d %v", code, err)
	}
}

// TestTelemetryStream checks /telemetry emits parseable NDJSON
// snapshots at the requested cadence while traffic flows, and that
// the gauges move.
func TestTelemetryStream(t *testing.T) {
	_, srv, _ := newTestFront(t, 20*time.Millisecond)

	// Generate some activity first: one direct admission.
	get(t, srv.URL+"/request?id=1")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/telemetry?interval=30ms", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var snaps []metrics.Snapshot
	for len(snaps) < 4 && sc.Scan() {
		var s metrics.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		snaps = append(snaps, s)
	}
	if len(snaps) < 4 {
		t.Fatalf("stream ended after %d snapshots: %v", len(snaps), sc.Err())
	}
	first, last := snaps[0], snaps[len(snaps)-1]
	if first.Admitted == 0 || first.AdmittedDirect == 0 {
		t.Fatalf("snapshot missing the admission: %+v", first)
	}
	if last.UptimeMS <= first.UptimeMS {
		t.Fatalf("uptime did not advance: %d -> %d", first.UptimeMS, last.UptimeMS)
	}

	// Bad interval is rejected.
	code, body := get(t, srv.URL+"/telemetry?interval=sideways")
	if code != http.StatusBadRequest {
		t.Fatalf("bad interval: %d %q", code, body)
	}
}

// TestTelemetryEndsOnClose checks Close terminates open streams
// instead of leaking them.
func TestTelemetryEndsOnClose(t *testing.T) {
	origin := &slowOrigin{delay: 5 * time.Millisecond}
	front := NewFront(origin, Config{})
	srv := httptest.NewServer(front)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/telemetry?interval=20ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		done <- sc.Err()
	}()
	time.Sleep(60 * time.Millisecond)
	front.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("telemetry stream did not end on Close")
	}
}

// TestControlConfigHash checks the convergence identity fleet rollout
// verifies against: /control/config (GET and POST replies) and /stats
// carry the canonical config hash, and a POST moves it.
func TestControlConfigHash(t *testing.T) {
	front, srv, _ := newTestFront(t, 10*time.Millisecond)

	_, body := get(t, srv.URL+"/control/config")
	var st config.ThinnerStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("GET body: %v in %q", err, body)
	}
	want := config.HashThinner(front.ThinnerConfig())
	if st.ConfigHash != want || st.Thinner != front.ThinnerConfig() {
		t.Fatalf("GET status = %+v, want hash %s over the live config", st, want)
	}
	if _, body := get(t, srv.URL+"/stats"); !strings.Contains(body, want) {
		t.Fatalf("/stats missing config hash %s: %q", want, body)
	}

	_, body, err := postJSON(t, srv.URL+"/control/config", `{"orphan_timeout":"2s"}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("POST reply: %v in %q", err, body)
	}
	moved := config.HashThinner(front.ThinnerConfig())
	if st.ConfigHash != moved || moved == want {
		t.Fatalf("POST hash = %s, want the moved hash %s (was %s)", st.ConfigHash, moved, want)
	}
	if _, body := get(t, srv.URL+"/stats"); !strings.Contains(body, moved) {
		t.Fatalf("/stats still carries the stale hash: %q", body)
	}
}

// TestControlConfigRefusedDuringBrownout pins the rollout-safety
// contract: while the origin is stalled a reconfiguration is refused
// with 503 + Retry-After (a retryable verdict, not a 400), reads stay
// live, and once the ladder leaves HealthStalled the same patch
// applies.
func TestControlConfigRefusedDuringBrownout(t *testing.T) {
	var stallArmed atomic.Bool
	release := make(chan struct{})
	origin := OriginFunc(func(id core.RequestID) ([]byte, error) {
		if stallArmed.CompareAndSwap(true, false) {
			<-release
		}
		return []byte("ok"), nil
	})
	front := NewFront(origin, Config{
		PayPollInterval:  5 * time.Millisecond,
		OriginStallAfter: 100 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout: 300 * time.Millisecond,
			SweepInterval: 25 * time.Millisecond,
			Shards:        4,
		},
	})
	srv := httptest.NewServer(front)
	defer front.Close()
	defer srv.Close()
	before := front.ThinnerConfig()

	stallArmed.Store(true)
	reqDone := make(chan struct{})
	go func() {
		tryGet(srv.URL + "/request?id=1")
		close(reqDone)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for front.Health().Origin != "stalled" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if front.Health().Origin != "stalled" {
		close(release)
		t.Fatal("watchdog never declared the stall")
	}

	resp, err := http.Post(srv.URL+"/control/config", "application/json",
		strings.NewReader(`{"orphan_timeout":"2s"}`))
	if err != nil {
		close(release)
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(b.String(), "browned out") {
		close(release)
		t.Fatalf("mid-brownout POST: %d %q, want 503", resp.StatusCode, b.String())
	}
	if resp.Header.Get("Retry-After") == "" {
		close(release)
		t.Fatal("503 carried no Retry-After: clients cannot tell retryable from fatal")
	}
	if front.ThinnerConfig() != before {
		close(release)
		t.Fatalf("refused POST leaked a config change: %+v", front.ThinnerConfig())
	}
	// Reads stay live during the brownout.
	if code, body := get(t, srv.URL+"/control/config"); code != http.StatusOK ||
		!strings.Contains(body, config.HashThinner(before)) {
		close(release)
		t.Fatalf("mid-brownout GET: %d %q", code, body)
	}

	// Thaw; once the ladder leaves stalled, the same patch applies
	// (recovering does not block the control path).
	close(release)
	deadline = time.Now().Add(10 * time.Second)
	applied := false
	for !applied && time.Now().Before(deadline) {
		code, _, err := postJSON(t, srv.URL+"/control/config", `{"orphan_timeout":"2s"}`)
		if err != nil {
			t.Fatal(err)
		}
		if code == http.StatusOK {
			applied = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !applied {
		t.Fatal("patch never applied after recovery")
	}
	if got := front.ThinnerConfig().OrphanTimeout.D(); got != 2*time.Second {
		t.Fatalf("post-recovery config: orphan timeout %v, want 2s", got)
	}
	<-reqDone
}
