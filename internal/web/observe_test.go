package web

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/trace"
)

// newTracedFront is newTestFront with lifecycle tracing armed at
// sample 1 (every id), so single requests reliably produce traces.
func newTracedFront(t *testing.T, delay time.Duration) (*Front, *httptest.Server) {
	t.Helper()
	origin := &slowOrigin{delay: delay}
	front := NewFront(origin, Config{
		PayPollInterval: 10 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout: 500 * time.Millisecond,
			SweepInterval: 100 * time.Millisecond,
		},
		Trace: trace.Config{Sample: 1},
	})
	srv := httptest.NewServer(front)
	t.Cleanup(func() {
		srv.Close()
		front.Close()
	})
	return front, srv
}

// promSample is one parsed exposition line: name, label pairs, value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm parses Prometheus text exposition format far enough to
// validate our own output: HELP/TYPE metadata per family plus every
// sample line. It fails the test on any line it cannot parse.
func parseProm(t *testing.T, body string) (help, typ map[string]string, samples []promSample) {
	t.Helper()
	help = make(map[string]string)
	typ = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, h, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line: %q", line)
			}
			help[name] = h
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		nameAndLabels, raw, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := promSample{name: nameAndLabels, labels: map[string]string{}, value: v}
		if name, rest, ok := strings.Cut(nameAndLabels, "{"); ok {
			s.name = name
			rest = strings.TrimSuffix(rest, "}")
			for _, pair := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				s.labels[k] = strings.Trim(v, `"`)
			}
		}
		samples = append(samples, s)
	}
	return help, typ, samples
}

// histFamily strips the _bucket/_sum/_count suffix a histogram sample
// carries, returning the family name and which series it belongs to.
func histFamily(name string) (family, series string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f, suf
		}
	}
	return name, ""
}

func TestMetricsExposition(t *testing.T) {
	_, srv := newTracedFront(t, 5*time.Millisecond)
	// One served request so the counters and the wait-to-admit
	// histogram have something in them.
	get(t, srv.URL+"/request?id=7")

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	bodyB := make([]byte, 1<<20)
	n, _ := resp.Body.Read(bodyB)
	resp.Body.Close()
	body := string(bodyB[:n])
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}

	help, typ, samples := parseProm(t, body)
	if len(samples) == 0 {
		t.Fatal("no samples in /metrics output")
	}

	// Every sample's family must carry HELP and TYPE metadata, and
	// histogram series must be declared as histograms.
	for _, s := range samples {
		family, series := histFamily(s.name)
		if series != "" && typ[family] != "histogram" {
			// A _count suffix on a plain counter is fine only if the
			// full name is its own family.
			if _, ok := typ[s.name]; ok {
				family = s.name
			}
		}
		if help[family] == "" {
			t.Errorf("sample %s: family %s has no HELP line", s.name, family)
		}
		if typ[family] == "" {
			t.Errorf("sample %s: family %s has no TYPE line", s.name, family)
		}
	}

	// The deployment gauges and trace counters must be present.
	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	for _, want := range []string{
		"speakup_admitted_total", "speakup_uptime_seconds", "speakup_gomaxprocs",
		"speakup_wire_ingest_bytes_total", "speakup_trace_sample_n", "speakup_trace_completed_total",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("missing metric %s", want)
		}
	}
	if v := byName["speakup_uptime_seconds"][0].value; v <= 0 {
		t.Errorf("uptime = %v, want > 0", v)
	}

	// Histogram integrity: le values ascend and end at +Inf, bucket
	// counts are cumulative (monotone non-decreasing), and the +Inf
	// bucket equals the family's _count sample.
	families := map[string]bool{}
	for name, kind := range typ {
		if kind == "histogram" {
			families[name] = true
		}
	}
	if !families["speakup_wait_to_admit_seconds"] {
		t.Fatal("wait_to_admit histogram not exported")
	}
	for family := range families {
		buckets := byName[family+"_bucket"]
		if len(buckets) < 2 {
			t.Errorf("%s: only %d buckets", family, len(buckets))
			continue
		}
		sort.SliceStable(buckets, func(i, j int) bool {
			return promLE(t, buckets[i]) < promLE(t, buckets[j])
		})
		last := buckets[len(buckets)-1]
		if !math.IsInf(promLE(t, last), 1) {
			t.Errorf("%s: last bucket le=%v, want +Inf", family, promLE(t, last))
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].value < buckets[i-1].value {
				t.Errorf("%s: bucket le=%v count %v < previous %v (not cumulative)",
					family, promLE(t, buckets[i]), buckets[i].value, buckets[i-1].value)
			}
		}
		counts := byName[family+"_count"]
		if len(counts) != 1 {
			t.Errorf("%s: %d _count samples, want 1", family, len(counts))
			continue
		}
		if last.value != counts[0].value {
			t.Errorf("%s: +Inf bucket %v != _count %v", family, last.value, counts[0].value)
		}
	}

	// The served request was a direct admit; its wait must have landed.
	if c := byName["speakup_wait_to_admit_seconds_count"]; len(c) == 0 || c[0].value < 1 {
		t.Errorf("wait_to_admit count = %v, want >= 1", c)
	}
}

func promLE(t *testing.T, s promSample) float64 {
	t.Helper()
	raw := s.labels["le"]
	if raw == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("bucket %s: bad le %q", s.name, raw)
	}
	return v
}

func TestTraceEndpoint(t *testing.T) {
	// Tracing off: /trace is 404, the knob is the front config.
	_, plain, _ := newTestFront(t, time.Millisecond)
	if code, _ := get(t, plain.URL+"/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace with tracing off -> %d, want 404", code)
	}

	front, srv := newTracedFront(t, time.Millisecond)
	get(t, srv.URL+"/request?id=5")
	get(t, srv.URL+"/request?id=6")
	waitForCompleted(t, front, 2)

	code, body := get(t, srv.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace -> %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		t.Fatalf("got %d trace lines, want >= 2\n%s", len(lines), body)
	}
	var rec struct {
		ID        uint64 `json:"id"`
		Verdict   string `json:"verdict"`
		Transport string `json:"transport"`
		ArriveNS  int64  `json:"arrive_ns"`
		SettleNS  int64  `json:"settle_ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", lines[0], err)
	}
	// Newest first: the id=6 request settled last.
	if rec.ID != 6 || rec.Verdict != "admit_direct" {
		t.Fatalf("newest trace = %+v, want id=6 verdict=admit_direct", rec)
	}
	if rec.SettleNS < rec.ArriveNS {
		t.Fatalf("settle %d before arrive %d", rec.SettleNS, rec.ArriveNS)
	}

	// id filter returns only that request's trace.
	_, body = get(t, srv.URL+"/trace?id=5")
	lines = strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 1 {
		t.Fatalf("id filter returned %d lines, want 1\n%s", len(lines), body)
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.ID != 5 {
		t.Fatalf("filtered trace = %+v err=%v, want id=5", rec, err)
	}

	// n bounds the count; bad n is a client error.
	_, body = get(t, srv.URL+"/trace?n=1")
	if got := len(strings.Split(strings.TrimSpace(body), "\n")); got != 1 {
		t.Fatalf("n=1 returned %d lines", got)
	}
	if code, _ := get(t, srv.URL+"/trace?n=zero"); code != http.StatusBadRequest {
		t.Fatalf("bad n -> %d, want 400", code)
	}
}

// waitForCompleted polls the tracer until n traces settle: the settle
// runs on the server's request goroutine after the response is
// written, so a client can observe its 200 a beat earlier.
func waitForCompleted(t *testing.T, front *Front, n uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for front.Tracer().Completed() < n {
		if time.Now().After(deadline) {
			t.Fatalf("tracer completed %d, want %d", front.Tracer().Completed(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsObservabilityFields(t *testing.T) {
	_, srv, _ := newTestFront(t, time.Millisecond)
	get(t, srv.URL+"/request?id=1")
	_, body := get(t, srv.URL+"/stats")
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatalf("bad stats JSON: %v", err)
	}
	for _, key := range []string{
		"uptime_seconds", "gomaxprocs",
		"wire_conns", "wire_frames", "wire_ingest_bytes",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats missing %q\n%s", key, body)
		}
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", st.UptimeSeconds)
	}
	if st.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d, want >= 1", st.GOMAXPROCS)
	}
}
