package web

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/core"
)

// BenchmarkFrontPayThroughput measures end-to-end payment ingest over
// real loopback sockets: each parallel worker holds one open POST /pay
// stream and writes one PayChunk-sized chunk per iteration. Bytes/sec
// is the front's payment-sink capacity — the number speak-up cares
// about, since the thinner must absorb vastly more payment traffic
// than the origin serves (§3, §6).
//
// Run with -cpu to see ingest scale with cores; benchjson records the
// result in BENCH_PR3.json against the pre-refactor global-lock front.
func BenchmarkFrontPayThroughput(b *testing.B) {
	const chunk = 16 << 10
	// An origin that never finishes keeps the thinner busy so payment
	// channels stay open; timeouts are pushed out so nothing is evicted
	// mid-measurement.
	block := make(chan struct{})
	origin := OriginFunc(func(id core.RequestID) ([]byte, error) {
		<-block
		return nil, nil
	})
	front := NewFront(origin, Config{
		PayChunk: chunk,
		Thinner: core.Config{
			OrphanTimeout:     time.Hour,
			InactivityTimeout: time.Hour,
			SweepInterval:     time.Hour,
		},
	})
	srv := httptest.NewServer(front)
	// Cleanup order matters: unblock the origin first so the held
	// /request handler can return, or srv.Close deadlocks waiting on it.
	defer front.Close()
	defer srv.Close()
	defer close(block)
	// Occupy the origin so the front is in its overloaded regime.
	go http.Get(srv.URL + "/request?id=1")
	time.Sleep(20 * time.Millisecond)

	var ids atomic.Uint64
	ids.Store(1) // id 1 is the in-service request
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	payload := make([]byte, chunk)

	b.SetBytes(chunk)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ids.Add(1)
		pr, pw := io.Pipe()
		req, err := http.NewRequest(http.MethodPost,
			srv.URL+"/pay?id="+strconv.FormatUint(id, 10), pr)
		if err != nil {
			b.Error(err)
			return
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		for pb.Next() {
			if _, err := pw.Write(payload); err != nil {
				b.Error(err)
				break
			}
		}
		pw.Close()
		<-done
	})
}
