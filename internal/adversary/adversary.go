// Package adversary implements strategy-driven attackers for both
// stacks: the deterministic simulator (internal/clients via the
// scenario layer) and the live load generator (internal/loadgen over
// real sockets). The paper's robustness claim (§6-§7) is that speak-up
// holds not just against fixed-rate floods but against attackers who
// adapt — cheat on payment, time their bursts, mimic good clients —
// so the attacker itself must be programmable.
//
// A Strategy decides, from observed feedback (admissions, denials,
// the current price), everything one attacking client controls:
// request timing, the outstanding-request window, payment sizing, and
// per-request work. Strategies keyed by name are plain data (Spec),
// so sweep grids, scenario configs, and command-line flags can all
// declare them; internal/exp/exp_adversary.go scans the registry into
// a robustness-frontier table.
//
// Strategies must be safe for concurrent use (the live load generator
// calls them from many goroutines) and deterministic when driven from
// a single goroutine with a seeded rng (the simulator's event loop),
// which is why all mutable state lives in atomics and all randomness
// comes in through Gap's rng parameter.
package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Outcome is the feedback one request feeds back into its strategy.
type Outcome struct {
	// Served reports admission + service; !Served && !Denied is an
	// explicit failure (eviction, OFF-mode drop, abort).
	Served bool
	// Denied marks a request that died in the client's backlog (or was
	// dropped at a full window) without ever being issued.
	Denied bool
	// Price is the last observed winning bid in bytes (the thinner's
	// admission price, a public observable); 0 when unknown.
	Price int64
	// Paid is the payment bytes this request pushed.
	Paid int64
	// Now is the completion time (virtual in the simulator, elapsed
	// wall time in the live load generator).
	Now time.Duration
}

// Strategy drives one attacking client. The simulator calls Gap and
// Window on its single event-loop goroutine; the live load generator
// calls PostSize and Observe from per-request goroutines, so
// implementations keep mutable state in atomics.
type Strategy interface {
	// Name identifies the profile, e.g. "onoff".
	Name() string
	// Gap returns the gap from now until the next generated request.
	// All randomness must come from rng so the simulator stays a pure
	// function of its seed.
	Gap(now time.Duration, rng *rand.Rand) time.Duration
	// Window returns the outstanding-request cap in force at now
	// (0 suspends issuing entirely, e.g. the OFF phase of a pulse).
	Window(now time.Duration) int
	// PostSize sizes the next payment POST for a request that has
	// already paid `paid` bytes; def is the protocol default (1 MB).
	// Returning <= 0 stops paying while keeping the request open —
	// the defector's move.
	PostSize(now time.Duration, paid int64, def int) int
	// Work is the per-request service cost the client demands of the
	// server (0 = the server default). Heterogeneous-request attacks
	// (§5) set it above the good clients' cost.
	Work() time.Duration
	// Observe feeds one finished (or denied) request back.
	Observe(o Outcome)
}

// Spec names a strategy and its knobs. It is plain data so scenario
// configs, sweep grids, and flags can declare attackers without
// touching constructors. Zero fields take per-profile defaults.
type Spec struct {
	// Name selects the profile; see Names for the registry.
	Name string
	// Aggressiveness scales the profile's nominal demand — request
	// rate and window — linearly. 0 means 1.
	Aggressiveness float64
	// Lambda overrides the profile's base Poisson rate (requests/s).
	Lambda float64
	// Window overrides the profile's base outstanding cap.
	Window int
	// Work is the per-request service cost demanded from the server
	// (0 = server default).
	Work time.Duration
	// Period is the pulse/phase period for onoff and adaptive
	// (default 10s).
	Period time.Duration
	// Duty is onoff's ON fraction of each period, in (0, 1]
	// (default 0.25).
	Duty float64
}

// profile is one registry entry.
type profile struct {
	lambda float64 // default base rate
	window int     // default outstanding cap
	doc    string
	build  func(Spec, *Cohort) Strategy
}

// profiles is populated in init: the build closures reach Spec
// methods that read the map back, which a composite-literal
// initializer would report as an initialization cycle.
var profiles = map[string]profile{}

func init() {
	profiles["poisson"] = profile{
		lambda: 40, window: 20,
		doc:   "fixed-rate flood: the paper's §7.1 bad client (Poisson λ=40, w=20, full payment)",
		build: func(s Spec, _ *Cohort) Strategy { return &fixed{spec: s} },
	}
	profiles["mimic"] = profile{
		lambda: 2, window: 1,
		doc:   "good-client impersonation at scale (λ=2, w=1, honest payment) — §8.1's smart bots, under the profiling radar",
		build: func(s Spec, _ *Cohort) Strategy { return &fixed{spec: s} },
	}
	profiles["onoff"] = profile{
		lambda: 40, window: 20,
		doc:   "shrew-style pulsing: the ON fraction (Duty) of each Period bursts at λ/Duty, then goes silent",
		build: func(s Spec, _ *Cohort) Strategy { return newOnOff(s) },
	}
	profiles["defector"] = profile{
		lambda: 40, window: 20,
		doc:   "pays only up to a probe of the minimum winning bid: shaves the probe below each observed win, doubles it after losses",
		build: func(s Spec, _ *Cohort) Strategy { return newDefector(s) },
	}
	profiles["flood"] = profile{
		lambda: 40, window: 64,
		doc:   "many concurrent request ids with tiny (1 KB) payments, stressing the thinner's waiter bookkeeping",
		build: func(s Spec, _ *Cohort) Strategy { return &fixed{spec: s, post: floodPost} },
	}
	profiles["adaptive"] = profile{
		lambda: 40, window: 20,
		doc:   "retunes rate/window/burst phase from served-vs-denied feedback; the cohort shares a fixed bandwidth budget and coupon-collects winning phases",
		build: newAdaptive,
	}
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for name := range profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Doc returns a one-line description of a registered strategy ("" if
// unknown).
func Doc(name string) string { return profiles[name].doc }

// Validate reports an unknown name or out-of-range knobs.
func (s Spec) Validate() error {
	if _, ok := profiles[s.Name]; !ok {
		return fmt.Errorf("adversary: unknown strategy %q (have %s)",
			s.Name, strings.Join(Names(), ", "))
	}
	if s.Aggressiveness < 0 {
		return fmt.Errorf("adversary: %s: Aggressiveness must be >= 0, got %g", s.Name, s.Aggressiveness)
	}
	if s.Lambda < 0 {
		return fmt.Errorf("adversary: %s: Lambda must be >= 0, got %g", s.Name, s.Lambda)
	}
	if s.Window < 0 {
		return fmt.Errorf("adversary: %s: Window must be >= 0, got %d", s.Name, s.Window)
	}
	if s.Work < 0 {
		return fmt.Errorf("adversary: %s: Work must be >= 0, got %v", s.Name, s.Work)
	}
	if s.Period < 0 {
		return fmt.Errorf("adversary: %s: Period must be >= 0, got %v", s.Name, s.Period)
	}
	if s.Duty < 0 || s.Duty > 1 {
		return fmt.Errorf("adversary: %s: Duty must be in (0, 1], got %g", s.Name, s.Duty)
	}
	return nil
}

func (s Spec) withDefaults() Spec {
	p := profiles[s.Name]
	if s.Aggressiveness == 0 {
		s.Aggressiveness = 1
	}
	if s.Lambda == 0 {
		s.Lambda = p.lambda
	}
	if s.Window == 0 {
		s.Window = p.window
	}
	if s.Period == 0 {
		s.Period = 10 * time.Second
	}
	if s.Duty == 0 {
		s.Duty = 0.25
	}
	return s
}

// New builds a fresh strategy instance for one client. cohort may be
// nil for strategies that do not coordinate (adaptive then runs a
// private single-member cohort). It panics on specs Validate rejects;
// validate first when the spec comes from user input.
func (s Spec) New(cohort *Cohort) Strategy {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	s = s.withDefaults()
	return profiles[s.Name].build(s, cohort)
}

// rate is the aggressiveness-scaled request rate (defaults applied).
func (s Spec) rate() float64 { return s.Lambda * s.Aggressiveness }

// win is the aggressiveness-scaled outstanding cap, at least 1.
func (s Spec) win() int {
	w := int(float64(s.Window)*s.Aggressiveness + 0.5)
	if w < 1 {
		w = 1
	}
	return w
}

// expGap draws an exponential inter-arrival gap at the given rate.
func expGap(rng *rand.Rand, lambda float64) time.Duration {
	if lambda <= 0 {
		return time.Hour
	}
	return time.Duration(rng.ExpFloat64() / lambda * float64(time.Second))
}

// floodPost is the flood profile's tiny payment size.
const floodPost = 1 << 10

// fixed is the stateless family: a Poisson process at a fixed rate and
// window. poisson and mimic differ only in their defaults; flood also
// caps each POST at floodPost bytes.
type fixed struct {
	spec Spec
	post int // 0 = protocol default
}

func (f *fixed) Name() string { return f.spec.Name }

func (f *fixed) Gap(_ time.Duration, rng *rand.Rand) time.Duration {
	return expGap(rng, f.spec.rate())
}

func (f *fixed) Window(time.Duration) int { return f.spec.win() }

func (f *fixed) PostSize(_ time.Duration, _ int64, def int) int {
	if f.post > 0 && f.post < def {
		return f.post
	}
	return def
}

func (f *fixed) Work() time.Duration { return f.spec.Work }

func (f *fixed) Observe(Outcome) {}
