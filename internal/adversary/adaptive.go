package adversary

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// adaptive is the probing botnet member: it watches its own
// served-vs-denied ratio and retunes. When starved it rotates its
// burst phase to a slot the cohort has not yet won (coupon-collection
// of the defense's weak moments), grows its window, and claims more
// rate from the cohort's shared bandwidth budget; when winning
// comfortably it releases rate back to the pool for starved members.
// The cohort's aggregate demand therefore stays fixed while its
// distribution chases whatever the defense leaves open.
type adaptive struct {
	spec   Spec
	cohort *Cohort

	phase      atomic.Int32
	rateMilli  atomic.Int64 // current personal rate, milli-requests/s
	window     atomic.Int32
	wins, lost atomic.Uint32 // outcomes since the last retune
}

// Retune thresholds: reconsider every retuneEvery outcomes; below
// starvedFrac served rotate-and-claim, above happyFrac release.
const (
	retuneEvery = 8
	starvedFrac = 0.3
	happyFrac   = 0.7
)

func newAdaptive(s Spec, c *Cohort) Strategy {
	if c == nil {
		c = NewCohort(s, 1)
	}
	a := &adaptive{spec: s, cohort: c}
	a.phase.Store(int32(c.Join()))
	a.rateMilli.Store(c.Claim(milliRate(s.rate())))
	a.window.Store(int32(s.win()))
	return a
}

func (a *adaptive) Name() string { return a.spec.Name }

// Gap draws an exponential gap at the current claimed rate, then
// defers arrivals that would land outside the member's burst-phase
// slot to that slot's next occurrence.
func (a *adaptive) Gap(now time.Duration, rng *rand.Rand) time.Duration {
	t := now + expGap(rng, float64(a.rateMilli.Load())/1000)
	period := a.spec.Period
	slot := period / CohortSlots
	start := time.Duration(a.phase.Load()) * slot
	if pos := t % period; pos < start || pos >= start+slot {
		base := t - pos
		if pos >= start {
			base += period
		}
		t = base + start
	}
	if t <= now {
		t = now + time.Nanosecond
	}
	return t - now
}

func (a *adaptive) Window(time.Duration) int { return int(a.window.Load()) }

func (a *adaptive) PostSize(_ time.Duration, _ int64, def int) int { return def }

func (a *adaptive) Work() time.Duration { return a.spec.Work }

func (a *adaptive) Observe(o Outcome) {
	if o.Served {
		a.wins.Add(1)
		a.cohort.MarkWon(int(a.phase.Load()))
	} else {
		a.lost.Add(1)
	}
	w, l := a.wins.Load(), a.lost.Load()
	if w+l < retuneEvery {
		return
	}
	// Concurrent observers may each reset and retune once; the loss of
	// a few counts between Load and Store is harmless noise.
	a.wins.Store(0)
	a.lost.Store(0)
	switch frac := float64(w) / float64(w+l); {
	case frac < starvedFrac:
		// Starved: probe an uncollected burst phase, widen the window,
		// and claim whatever rate the cohort pool can spare.
		a.phase.Store(int32(a.cohort.NextPhase(int(a.phase.Load()))))
		if grown := a.window.Load() * 2; grown <= int32(4*a.spec.win()) {
			a.window.Store(grown)
		}
		a.rateMilli.Add(a.cohort.Claim(a.rateMilli.Load() / 2))
	case frac > happyFrac:
		// Winning comfortably: shrink back toward base demand and give
		// the spare rate to starved cohort members.
		if shrunk := a.window.Load() / 2; shrunk >= int32(a.spec.win()) {
			a.window.Store(shrunk)
		}
		// CAS so concurrent releases cannot stack and push the rate
		// below the base/2 floor.
		base := milliRate(a.spec.rate())
		for {
			have := a.rateMilli.Load()
			give := have / 4
			if give <= 0 || have-give < base/2 {
				break
			}
			if a.rateMilli.CompareAndSwap(have, have-give) {
				a.cohort.Release(give)
				break
			}
		}
	}
}
