package adversary

import "sync/atomic"

// CohortSlots is the number of burst-phase slots a cohort's period is
// divided into for coupon-collection (see the adaptive strategy).
const CohortSlots = 8

// Cohort coordinates the strategy instances of one attacking group.
// It models a botnet with a *fixed aggregate bandwidth budget*: the
// pool holds members × rate requests/s, members claim their share on
// join, and adaptive members reallocate — a starved member can only
// speed up with rate that a comfortable member released, so the
// cohort as a whole never exceeds its budget (the paper's threat
// model: attackers are bandwidth-bound, not rate-bound).
//
// It also tracks which of the CohortSlots burst-phase slots have ever
// produced a win — the adversarial coupon-collection of Fleck et
// al.'s reconnaissance model: members probe distinct phases and
// rotate toward the uncollected ones until every phase has been won,
// then start over (the defense may have adapted).
//
// All state is atomic: the simulator drives a cohort from one
// goroutine (deterministically), the live load generator from many.
type Cohort struct {
	members atomic.Int32
	pool    atomic.Int64 // unclaimed rate, milli-requests/s
	won     [CohortSlots]atomic.Bool
	wins    atomic.Uint64 // cohort-wide served count (reporting)
}

// NewCohort creates the shared state for a group of `members` clients
// running spec. The bandwidth budget is members × the spec's scaled
// rate; each member claims its base share when its strategy joins.
func NewCohort(spec Spec, members int) *Cohort {
	if members < 1 {
		members = 1
	}
	spec = spec.withDefaults()
	c := &Cohort{}
	c.pool.Store(int64(members) * milliRate(spec.rate()))
	return c
}

// Join registers one member and returns its starting phase slot,
// assigned round-robin so the cohort covers all slots.
func (c *Cohort) Join() int {
	return int(c.members.Add(1)-1) % CohortSlots
}

// Claim takes up to wantMilli of unclaimed rate from the pool and
// returns what was granted.
func (c *Cohort) Claim(wantMilli int64) int64 {
	if wantMilli <= 0 {
		return 0
	}
	for {
		have := c.pool.Load()
		grant := wantMilli
		if grant > have {
			grant = have
		}
		if grant <= 0 {
			return 0
		}
		if c.pool.CompareAndSwap(have, have-grant) {
			return grant
		}
	}
}

// Release returns rate to the pool.
func (c *Cohort) Release(milli int64) {
	if milli > 0 {
		c.pool.Add(milli)
	}
}

// MarkWon records a win in the given phase slot.
func (c *Cohort) MarkWon(slot int) {
	c.wins.Add(1)
	c.won[slot%CohortSlots].Store(true)
}

// Wins returns the cohort-wide served count.
func (c *Cohort) Wins() uint64 { return c.wins.Load() }

// NextPhase returns the next uncollected phase slot after cur. When
// every slot has been won the collection resets — the defense may
// have adapted, so the cohort starts probing over.
func (c *Cohort) NextPhase(cur int) int {
	for i := 1; i <= CohortSlots; i++ {
		s := (cur + i) % CohortSlots
		if !c.won[s].Load() {
			return s
		}
	}
	for i := range c.won {
		c.won[i].Store(false)
	}
	return (cur + 1) % CohortSlots
}

// milliRate converts requests/s to the pool's milli-units.
func milliRate(r float64) int64 { return int64(r*1000 + 0.5) }
