package adversary

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// defector games the payment channel (§3.4): it refuses to pay beyond
// a per-request probe of the minimum winning bid. After a win it
// shaves the probe to 7/8 of the observed price — trying to win the
// next auction for less — and after a loss it doubles the probe. A
// correctly priced auction forces the probe back up to the true
// market price, so the defector ends up paying what everyone else
// pays; the strategy exists to verify exactly that.
type defector struct {
	spec  Spec
	probe atomic.Int64 // current per-request payment cap, bytes
}

// Probe bounds: start at 256 KB, never shave below 4 KB, never
// escalate past 64 MB.
const (
	defectorStart = 256 << 10
	defectorFloor = 4 << 10
	defectorCeil  = 64 << 20
)

func newDefector(s Spec) Strategy {
	d := &defector{spec: s}
	d.probe.Store(defectorStart)
	return d
}

func (d *defector) Name() string { return d.spec.Name }

func (d *defector) Gap(_ time.Duration, rng *rand.Rand) time.Duration {
	return expGap(rng, d.spec.rate())
}

func (d *defector) Window(time.Duration) int { return d.spec.win() }

// PostSize pays up to the probe, then stops cold: the request stays
// open (camping on its bid) and the thinner's inactivity timeout is
// what should eventually clear it if the bid never wins.
func (d *defector) PostSize(_ time.Duration, paid int64, def int) int {
	rem := d.probe.Load() - paid
	if rem <= 0 {
		return 0
	}
	if rem < int64(def) {
		return int(rem)
	}
	return def
}

func (d *defector) Work() time.Duration { return d.spec.Work }

func (d *defector) Observe(o Outcome) {
	if o.Denied {
		return
	}
	if o.Served {
		won := o.Price
		if won <= 0 {
			won = o.Paid
		}
		if won > 0 {
			d.probe.Store(clamp64(won*7/8, defectorFloor, defectorCeil))
		}
		return
	}
	// Outbid, evicted, or aborted after actually bidding: the probe
	// was too low. Failures that never paid (transport errors, busy
	// drops) carry no auction signal — escalating on them would let a
	// flaky link inflate the probe to the ceiling.
	if o.Paid > 0 {
		d.probe.Store(clamp64(d.probe.Load()*2, defectorFloor, defectorCeil))
	}
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
