package adversary

import (
	"math/rand"
	"testing"
	"time"
)

func TestNamesRegistry(t *testing.T) {
	names := Names()
	want := []string{"adaptive", "defector", "flood", "mimic", "onoff", "poisson"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q (sorted)", i, names[i], n)
		}
		if Doc(n) == "" {
			t.Errorf("strategy %q has no doc line", n)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Name: "onoff"}, true},
		{Spec{Name: "flood", Aggressiveness: 2.5}, true},
		{Spec{Name: "shrew"}, false},              // unknown name
		{Spec{Name: ""}, false},                   // empty name
		{Spec{Name: "mimic", Lambda: -1}, false},  // negative rate
		{Spec{Name: "mimic", Window: -2}, false},  // negative window
		{Spec{Name: "onoff", Duty: 1.5}, false},   // duty out of range
		{Spec{Name: "adaptive", Aggressiveness: -1}, false},
		{Spec{Name: "defector", Work: -time.Second}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v: validation passed, want error", c.spec)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New on an unknown strategy did not panic")
		}
	}()
	Spec{Name: "nope"}.New(nil)
}

// TestGapDeterminism: same seed, same gap sequence — the contract the
// simulator's golden tests rely on.
func TestGapDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := Spec{Name: name}.New(nil)
		b := Spec{Name: name}.New(nil)
		ra, rb := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
		var now time.Duration
		for i := 0; i < 200; i++ {
			ga, gb := a.Gap(now, ra), b.Gap(now, rb)
			if ga != gb {
				t.Fatalf("%s: gap %d diverged: %v vs %v", name, i, ga, gb)
			}
			if ga <= 0 {
				t.Fatalf("%s: non-positive gap %v", name, ga)
			}
			now += ga
		}
	}
}

// TestOnOffPulses: arrivals only land in the ON span, the window
// collapses to zero in the OFF span, and aggressiveness scales the
// burst.
func TestOnOffPulses(t *testing.T) {
	spec := Spec{Name: "onoff", Period: 10 * time.Second, Duty: 0.25}
	s := spec.New(nil)
	rng := rand.New(rand.NewSource(1))
	onLen := 2500 * time.Millisecond
	var now time.Duration
	arrivals := 0
	for now < 120*time.Second {
		now += s.Gap(now, rng)
		if pos := now % (10 * time.Second); pos >= onLen {
			t.Fatalf("arrival at %v lands in the OFF span (pos %v)", now, pos)
		}
		arrivals++
	}
	if arrivals < 40*100/2 { // nominal λ=40 over 120s, generous slack
		t.Fatalf("only %d arrivals in 120s; burst rate not sustained", arrivals)
	}
	if w := s.Window(5 * time.Second); w != 0 {
		t.Fatalf("window in OFF span = %d, want 0", w)
	}
	if w := s.Window(1 * time.Second); w != 20 {
		t.Fatalf("window in ON span = %d, want 20", w)
	}
}

// TestDefectorProbesMinimumBid: wins shave the probe toward the
// observed price; losses escalate it; payment stops at the probe.
func TestDefectorProbesMinimumBid(t *testing.T) {
	d := Spec{Name: "defector"}.New(nil)
	def := 1 << 20

	// Fresh probe starts at 256 KB: first POST is capped there.
	if got := d.PostSize(0, 0, def); got != defectorStart {
		t.Fatalf("initial post = %d, want %d", got, defectorStart)
	}
	// Paid up to the probe: defect (stop paying).
	if got := d.PostSize(0, defectorStart, def); got != 0 {
		t.Fatalf("post after reaching probe = %d, want 0", got)
	}
	// A win at price 400 KB shaves the probe to 7/8 of it.
	d.Observe(Outcome{Served: true, Price: 400 << 10})
	wantProbe := int64(400<<10) * 7 / 8
	if got := d.PostSize(0, 0, def); int64(got) != wantProbe {
		t.Fatalf("post after win = %d, want %d", got, wantProbe)
	}
	// Two auction losses (bid and lost: Paid > 0) double it twice
	// (probe 350K -> 1400K; read it back with a default bigger than
	// the probe so the cap doesn't mask it).
	d.Observe(Outcome{Served: false, Paid: wantProbe})
	d.Observe(Outcome{Served: false, Paid: wantProbe * 2})
	if got := d.PostSize(0, 0, 8<<20); int64(got) < wantProbe*4-1 {
		t.Fatalf("probe after two losses = %d, want ~%d", got, wantProbe*4)
	}
	// Denials (never issued) and zero-paid failures (transport errors,
	// busy drops — no auction signal) must not move the probe.
	before := d.PostSize(0, 0, def)
	d.Observe(Outcome{Denied: true})
	d.Observe(Outcome{Served: false, Paid: 0})
	if got := d.PostSize(0, 0, def); got != before {
		t.Fatalf("no-signal outcome moved the probe: %d -> %d", before, got)
	}
}

func TestFloodTinyPosts(t *testing.T) {
	f := Spec{Name: "flood"}.New(nil)
	if got := f.PostSize(0, 0, 1<<20); got != floodPost {
		t.Fatalf("flood post = %d, want %d", got, floodPost)
	}
	if w := f.Window(0); w != 64 {
		t.Fatalf("flood window = %d, want 64", w)
	}
	agg := Spec{Name: "flood", Aggressiveness: 2}.New(nil)
	if w := agg.Window(0); w != 128 {
		t.Fatalf("flood x2 window = %d, want 128", w)
	}
}

// TestCohortBudgetConserved: claims never exceed the pool, and
// release/claim round-trips conserve the total.
func TestCohortBudgetConserved(t *testing.T) {
	spec := Spec{Name: "adaptive", Lambda: 10}
	c := NewCohort(spec, 4) // pool = 4 * 10 req/s = 40_000 milli
	total := int64(40_000)
	var claimed int64
	for i := 0; i < 4; i++ {
		claimed += c.Claim(10_000)
	}
	if claimed != total {
		t.Fatalf("claimed %d of %d", claimed, total)
	}
	if got := c.Claim(1); got != 0 {
		t.Fatalf("claim on an empty pool granted %d", got)
	}
	c.Release(5_000)
	if got := c.Claim(10_000); got != 5_000 {
		t.Fatalf("claim after release granted %d, want 5000", got)
	}
}

// TestCohortCouponCollection: NextPhase visits uncollected slots and
// resets once every slot has been won.
func TestCohortCouponCollection(t *testing.T) {
	c := NewCohort(Spec{Name: "adaptive"}, 1)
	seen := map[int]bool{0: true}
	cur := 0
	for i := 0; i < CohortSlots-1; i++ {
		c.MarkWon(cur)
		cur = c.NextPhase(cur)
		if seen[cur] {
			t.Fatalf("NextPhase revisited slot %d before collecting all", cur)
		}
		seen[cur] = true
	}
	if len(seen) != CohortSlots {
		t.Fatalf("collected %d slots, want %d", len(seen), CohortSlots)
	}
	// All slots won: the collection resets and probing starts over.
	c.MarkWon(cur)
	next := c.NextPhase(cur)
	if next != (cur+1)%CohortSlots {
		t.Fatalf("post-reset phase = %d, want %d", next, (cur+1)%CohortSlots)
	}
	if c.Wins() != CohortSlots {
		t.Fatalf("wins = %d, want %d", c.Wins(), CohortSlots)
	}
}

// TestAdaptiveRetunes: a starved member rotates phase and claims rate
// a comfortable member released; the cohort budget bounds the sum.
func TestAdaptiveRetunes(t *testing.T) {
	spec := Spec{Name: "adaptive", Lambda: 10}
	c := NewCohort(spec, 2)
	starved := spec.New(c).(*adaptive)
	happy := spec.New(c).(*adaptive)

	// Pool is empty (both members hold their base share): starvation
	// alone cannot grow the rate.
	phase0 := starved.phase.Load()
	for i := 0; i < retuneEvery; i++ {
		starved.Observe(Outcome{Served: false})
	}
	if starved.phase.Load() == phase0 {
		t.Fatal("starved member did not rotate its burst phase")
	}
	if got := starved.rateMilli.Load(); got != 10_000 {
		t.Fatalf("starved member grew rate to %d with an empty pool", got)
	}
	if got := starved.window.Load(); got != 40 {
		t.Fatalf("starved window = %d, want doubled 40", got)
	}

	// The happy member wins and releases; the starved member can now
	// claim the surplus — but the cohort total stays within budget.
	for i := 0; i < retuneEvery; i++ {
		happy.Observe(Outcome{Served: true})
	}
	for i := 0; i < retuneEvery; i++ {
		starved.Observe(Outcome{Served: false})
	}
	sum := starved.rateMilli.Load() + happy.rateMilli.Load() + c.pool.Load()
	if sum != 20_000 {
		t.Fatalf("cohort rate not conserved: %d milli, want 20000", sum)
	}
	if starved.rateMilli.Load() <= 10_000 {
		t.Fatal("starved member never claimed the released rate")
	}
}
