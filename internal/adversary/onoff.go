package adversary

import (
	"math/rand"
	"time"
)

// onoff is the shrew-style pulsing attacker: it concentrates its
// nominal rate λ into the ON fraction (Duty) of each Period, bursting
// at λ/Duty, then goes completely silent. Against rate-profiling
// defenses the average rate looks benign; against an auction the
// synchronized bursts try to spike the price while the attacker is
// paying and leave quiet windows otherwise. Every onoff client shares
// phase zero, so a cohort pulses in lockstep — synchronization is the
// point of the attack.
type onoff struct {
	spec  Spec
	burst float64       // ON-phase request rate (rate/duty)
	onLen time.Duration // ON span at the start of each period
}

func newOnOff(s Spec) Strategy {
	return &onoff{
		spec:  s,
		burst: s.rate() / s.Duty,
		onLen: time.Duration(float64(s.Period) * s.Duty),
	}
}

func (o *onoff) Name() string { return o.spec.Name }

// Gap draws a burst-rate exponential gap and, whenever the arrival
// would land in the OFF span, defers it to the start of the next
// period (where ON begins).
func (o *onoff) Gap(now time.Duration, rng *rand.Rand) time.Duration {
	t := now + expGap(rng, o.burst)
	if pos := t % o.spec.Period; pos >= o.onLen {
		t += o.spec.Period - pos
	}
	if t <= now {
		t = now + time.Nanosecond
	}
	return t - now
}

// Window collapses to 0 during the OFF span so completions do not
// refill from the backlog between bursts.
func (o *onoff) Window(now time.Duration) int {
	if now%o.spec.Period >= o.onLen {
		return 0
	}
	return o.spec.win()
}

func (o *onoff) PostSize(_ time.Duration, _ int64, def int) int { return def }

func (o *onoff) Work() time.Duration { return o.spec.Work }

func (o *onoff) Observe(Outcome) {}
