// Package server emulates the protected server behind the thinner.
//
// The paper's prototype emulates the server inside the thinner: it
// processes one request at a time, with service time selected uniformly
// at random from [0.9/c, 1.1/c] for capacity c (§6). For §5 the server
// additionally exports SUSPEND, RESUME, and ABORT, preserving the
// remaining work of suspended requests — the interface the paper
// assumes of transaction managers and application servers.
package server

import (
	"fmt"
	"math/rand"
	"time"

	"speakup/internal/core"
)

// Config parameterizes a Server.
type Config struct {
	// Capacity is c in requests/second. Required.
	Capacity float64
	// Jitter is the half-width of the service-time distribution as a
	// fraction of the mean: U[(1-Jitter)/c, (1+Jitter)/c]. Default 0.1,
	// matching the paper. Set negative for constant service times.
	Jitter float64
	// Work, when non-nil, overrides the per-request service time —
	// used for heterogeneous-difficulty experiments (§5).
	Work func(id core.RequestID) time.Duration
	// Seed seeds the service-time RNG.
	Seed int64
}

// Stats counts server activity.
type Stats struct {
	Served    uint64
	Aborted   uint64
	Suspends  uint64
	Resumes   uint64
	Stalls    uint64 // injected stall windows (fault plans)
	Crashes   uint64 // injected crash-restart events
	Lost      uint64 // in-flight requests destroyed by a crash
	BusyTime  time.Duration
	TotalWork time.Duration // service time of completed requests
}

// Server is the emulated protected resource.
type Server struct {
	clock core.Clock
	cfg   Config
	rng   *rand.Rand

	busy        bool
	current     core.RequestID
	startedAt   time.Duration
	pendingWork time.Duration // total work of the in-service request
	finish      func()        // cancels the completion timer
	finishAt    time.Duration // when the completion timer fires (stalls push it)
	stallUntil  time.Duration // the origin is frozen until this instant
	suspended   map[core.RequestID]time.Duration
	stats       Stats

	// Done fires when a request completes service.
	Done func(id core.RequestID)
	// Failed fires when a crash destroys the in-flight request: the
	// client never gets a response and the thinner must release its
	// busy latch. Nil loses the notification (only fault plans crash).
	Failed func(id core.RequestID)
	// Observer, if set, receives the server time a request actually
	// consumed — its full work on completion, or the partial service it
	// burned before an Abort. Experiments use it to attribute server
	// time to client classes.
	Observer func(id core.RequestID, consumed time.Duration)

	workOf map[core.RequestID]time.Duration

	// completeFn is the completion callback handed to clock.After,
	// built once so serving a request does not allocate a fresh closure
	// (state it needs lives in current/pendingWork/startedAt).
	completeFn func()
}

// New creates an idle server.
func New(clock core.Clock, cfg Config) *Server {
	if cfg.Capacity <= 0 && cfg.Work == nil {
		panic("server: Capacity must be positive (or Work set)")
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.1
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	s := &Server{
		clock:     clock,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		suspended: make(map[core.RequestID]time.Duration),
		workOf:    make(map[core.RequestID]time.Duration),
	}
	s.completeFn = s.complete
	return s
}

// Busy reports whether a request is in service.
func (s *Server) Busy() bool { return s.busy }

// Current returns the request in service, if any.
func (s *Server) Current() (core.RequestID, bool) { return s.current, s.busy }

// Stats returns a copy of the activity counters.
func (s *Server) Stats() Stats { return s.stats }

// serviceTime draws the work for a fresh request.
func (s *Server) serviceTime(id core.RequestID) time.Duration {
	if s.cfg.Work != nil {
		return s.cfg.Work(id)
	}
	mean := time.Duration(float64(time.Second) / s.cfg.Capacity)
	if s.cfg.Jitter == 0 {
		return mean
	}
	lo := time.Duration(float64(mean) * (1 - s.cfg.Jitter))
	hi := time.Duration(float64(mean) * (1 + s.cfg.Jitter))
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)+1))
}

// Start begins serving a fresh request. Starting while busy panics:
// the thinner exists precisely to prevent that.
func (s *Server) Start(id core.RequestID) {
	if s.busy {
		panic(fmt.Sprintf("server: Start(%d) while serving %d", id, s.current))
	}
	work := s.serviceTime(id)
	s.workOf[id] = work
	s.run(id, work)
}

func (s *Server) run(id core.RequestID, work time.Duration) {
	s.busy = true
	s.current = id
	now := s.clock.Now()
	s.startedAt = now
	s.pendingWork = work
	delay := work
	if s.stallUntil > now {
		// The origin is mid-stall (or restarting after a crash): work
		// only begins once it thaws.
		delay += s.stallUntil - now
	}
	s.finishAt = now + delay
	s.finish = s.clock.After(delay, s.completeFn)
}

// complete finishes the in-service request. It reads the request from
// the server fields rather than a closure: between run and firing,
// only Suspend can change them, and Suspend cancels the timer.
func (s *Server) complete() {
	id := s.current
	s.stats.Served++
	s.stats.TotalWork += s.pendingWork
	s.stats.BusyTime += s.clock.Now() - s.startedAt
	s.busy = false
	s.finish = nil
	total := s.workOf[id]
	delete(s.workOf, id)
	if s.Observer != nil {
		s.Observer(id, total)
	}
	if s.Done != nil {
		s.Done(id)
	}
}

// Suspend pauses the in-service request, remembering its remaining
// work. Suspending a request that is not in service panics.
func (s *Server) Suspend(id core.RequestID) {
	if !s.busy || s.current != id {
		panic(fmt.Sprintf("server: Suspend(%d) not in service", id))
	}
	elapsed := s.clock.Now() - s.startedAt
	s.finish()
	s.finish = nil
	s.busy = false
	s.stats.Suspends++
	s.stats.BusyTime += elapsed
	remaining := s.pendingWork - elapsed
	if remaining < 0 {
		remaining = 0
	}
	s.suspended[id] = remaining
}

// Resume continues a suspended request.
func (s *Server) Resume(id core.RequestID) {
	if s.busy {
		panic(fmt.Sprintf("server: Resume(%d) while busy", id))
	}
	remaining, ok := s.suspended[id]
	if !ok {
		panic(fmt.Sprintf("server: Resume(%d) not suspended", id))
	}
	delete(s.suspended, id)
	s.stats.Resumes++
	s.run(id, remaining)
}

// Abort discards a suspended request.
func (s *Server) Abort(id core.RequestID) {
	remaining, ok := s.suspended[id]
	if !ok {
		panic(fmt.Sprintf("server: Abort(%d) not suspended", id))
	}
	delete(s.suspended, id)
	consumed := s.workOf[id] - remaining
	delete(s.workOf, id)
	s.stats.Aborted++
	if s.Observer != nil && consumed > 0 {
		s.Observer(id, consumed)
	}
}

// SuspendedCount returns how many requests are parked.
func (s *Server) SuspendedCount() int { return len(s.suspended) }

// Stalled reports whether the origin is currently frozen by an
// injected stall or crash-restart window.
func (s *Server) Stalled() bool { return s.clock.Now() < s.stallUntil }

// Stall freezes the origin until now+d (fault injection): the
// in-flight request's completion is postponed by the added stall, and
// requests started inside the window only begin work when it thaws.
// Overlapping stalls extend to the latest deadline.
func (s *Server) Stall(d time.Duration) {
	now := s.clock.Now()
	until := now + d
	if until <= s.stallUntil {
		return
	}
	prev := s.stallUntil
	if prev < now {
		prev = now
	}
	added := until - prev
	s.stallUntil = until
	s.stats.Stalls++
	if s.busy {
		s.finish()
		s.finishAt += added
		s.finish = s.clock.After(s.finishAt-now, s.completeFn)
	}
}

// Crash kills the origin (fault injection): the in-flight request, if
// any, is destroyed — its client is notified through Failed, its
// partial service is charged via Observer — and the origin restarts
// after downFor of downtime (a stall window). Suspended §5 requests
// survive: their state lives in the transaction manager, not the
// crashed worker.
func (s *Server) Crash(downFor time.Duration) {
	now := s.clock.Now()
	s.stats.Crashes++
	if until := now + downFor; until > s.stallUntil {
		s.stallUntil = until
	}
	if !s.busy {
		return
	}
	id := s.current
	s.finish()
	s.finish = nil
	s.busy = false
	s.stats.Lost++
	s.stats.BusyTime += now - s.startedAt
	consumed := now - s.startedAt
	total := s.workOf[id]
	delete(s.workOf, id)
	if consumed > total {
		consumed = total // stall time is not service time
	}
	if s.Observer != nil && consumed > 0 {
		s.Observer(id, consumed)
	}
	if s.Failed != nil {
		s.Failed(id)
	}
}
