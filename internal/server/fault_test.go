package server

import (
	"testing"
	"time"

	"speakup/internal/core"
)

// TestStallPostponesCompletion freezes the origin mid-request: the
// finish must slide out by exactly the added stall, and work started
// inside the window must wait for the thaw.
func TestStallPostponesCompletion(t *testing.T) {
	loop, s, done := newSrv(10) // mean 100ms, U[90ms, 110ms]
	s.Start(1)
	baseline := s.finishAt
	loop.Run(20 * time.Millisecond)
	s.Stall(500 * time.Millisecond)
	if !s.Stalled() {
		t.Fatal("origin not stalled")
	}
	loop.RunAll()
	if len(*done) != 1 {
		t.Fatalf("done = %d, want 1", len(*done))
	}
	if got := loop.Now(); got != baseline+500*time.Millisecond {
		t.Fatalf("finished at %v, want %v (service + full stall)", got, baseline+500*time.Millisecond)
	}
	if s.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", s.Stats().Stalls)
	}

	// A request started mid-stall begins work only at the thaw.
	s.Stall(300 * time.Millisecond)
	stallEnd := loop.Now() + 300*time.Millisecond
	s.Start(2)
	loop.RunAll()
	if got := loop.Now(); got < stallEnd+90*time.Millisecond {
		t.Fatalf("request started mid-stall finished at %v, want >= %v", got, stallEnd+90*time.Millisecond)
	}
}

// TestStallOverlapExtends checks overlapping stalls extend to the
// furthest deadline instead of stacking.
func TestStallOverlapExtends(t *testing.T) {
	loop, s, done := newSrv(10)
	s.Start(1)
	base := s.finishAt
	s.Stall(400 * time.Millisecond)
	s.Stall(200 * time.Millisecond) // inside the first window: no-op
	if s.Stats().Stalls != 1 {
		t.Fatalf("shorter overlapping stall counted: stalls = %d", s.Stats().Stalls)
	}
	s.Stall(600 * time.Millisecond) // extends by 200ms past the first
	loop.RunAll()
	if len(*done) != 1 {
		t.Fatalf("done = %d, want 1", len(*done))
	}
	if got := loop.Now(); got != base+600*time.Millisecond {
		t.Fatalf("finished at %v, want %v", got, base+600*time.Millisecond)
	}
}

// TestCrashDestroysInFlight kills the origin mid-request: the client
// is notified through Failed (not Done), partial service is charged
// via Observer, and the next request waits out the restart.
func TestCrashDestroysInFlight(t *testing.T) {
	loop, s, done := newSrv(10)
	var failed []core.RequestID
	var charged time.Duration
	s.Failed = func(id core.RequestID) { failed = append(failed, id) }
	s.Observer = func(id core.RequestID, consumed time.Duration) { charged += consumed }
	s.Start(1)
	loop.Run(50 * time.Millisecond)
	s.Crash(time.Second)
	if s.Busy() {
		t.Fatal("server still busy after crash")
	}
	loop.RunAll()
	if len(*done) != 0 {
		t.Fatalf("crashed request completed: done = %v", *done)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed = %v, want [1]", failed)
	}
	if charged != 50*time.Millisecond {
		t.Fatalf("partial service charged %v, want 50ms", charged)
	}
	st := s.Stats()
	if st.Crashes != 1 || st.Lost != 1 || st.Served != 0 {
		t.Fatalf("stats = %+v, want 1 crash, 1 lost, 0 served", st)
	}

	// Restart: a request issued during downtime runs after the window.
	s.Start(2)
	loop.RunAll()
	if len(*done) != 1 || (*done)[0] != 2 {
		t.Fatalf("post-restart done = %v, want [2]", *done)
	}
	if got := loop.Now(); got < 1050*time.Millisecond+90*time.Millisecond {
		t.Fatalf("post-restart request finished at %v, before downtime ended", got)
	}
}

// TestCrashIdleOnlyStalls crashes an idle origin: nothing is lost,
// but the restart window still delays the next request.
func TestCrashIdleOnlyStalls(t *testing.T) {
	loop, s, done := newSrv(10)
	s.Crash(time.Second)
	if st := s.Stats(); st.Crashes != 1 || st.Lost != 0 {
		t.Fatalf("stats = %+v, want 1 crash, 0 lost", st)
	}
	s.Start(1)
	loop.RunAll()
	if len(*done) != 1 {
		t.Fatalf("done = %d, want 1", len(*done))
	}
	if got := loop.Now(); got < 1090*time.Millisecond {
		t.Fatalf("finished at %v, want >= 1.09s (downtime + min service)", got)
	}
}

// TestCrashSparesSuspended pins the §5 semantics: suspended requests
// live in the transaction manager, so a crash must not destroy them.
func TestCrashSparesSuspended(t *testing.T) {
	loop, s, done := newSrv(10)
	s.Start(1)
	loop.Run(30 * time.Millisecond)
	s.Suspend(1)
	s.Crash(500 * time.Millisecond)
	if s.SuspendedCount() != 1 {
		t.Fatalf("suspended count = %d after crash, want 1", s.SuspendedCount())
	}
	s.Resume(1)
	loop.RunAll()
	if len(*done) != 1 || (*done)[0] != 1 {
		t.Fatalf("done = %v, want [1]", *done)
	}
}
