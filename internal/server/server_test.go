package server

import (
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/sim"
	"speakup/internal/simclock"
)

func newSrv(capacity float64) (*sim.Loop, *Server, *[]core.RequestID) {
	loop := sim.NewLoop(1)
	var done []core.RequestID
	s := New(simclock.New(loop), Config{Capacity: capacity, Seed: 2})
	s.Done = func(id core.RequestID) { done = append(done, id) }
	return loop, s, &done
}

func TestServiceTimeWithinJitterBounds(t *testing.T) {
	loop, s, done := newSrv(10) // mean 100ms, U[90ms, 110ms]
	for i := 0; i < 50; i++ {
		start := loop.Now()
		s.Start(core.RequestID(i))
		loop.RunAll()
		took := loop.Now() - start
		if took < 90*time.Millisecond || took > 110*time.Millisecond {
			t.Fatalf("service time %v outside [90ms,110ms]", took)
		}
	}
	if len(*done) != 50 {
		t.Fatalf("done = %d, want 50", len(*done))
	}
}

func TestThroughputMatchesCapacity(t *testing.T) {
	loop, s, done := newSrv(100)
	var feed func(id core.RequestID)
	feed = func(id core.RequestID) {
		s.Start(id)
	}
	s.Done = func(id core.RequestID) {
		*done = append(*done, id)
		feed(id + 1)
	}
	feed(0)
	loop.Run(10 * time.Second)
	// 100 req/s for 10s with no idle time: ~1000 served.
	if n := len(*done); n < 950 || n > 1050 {
		t.Fatalf("served %d in 10s at c=100", n)
	}
}

func TestStartWhileBusyPanics(t *testing.T) {
	_, s, _ := newSrv(10)
	s.Start(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	s.Start(2)
}

func TestSuspendResumePreservesWork(t *testing.T) {
	loop := sim.NewLoop(1)
	s := New(simclock.New(loop), Config{Capacity: 10, Jitter: -1, Seed: 1}) // constant 100ms
	var doneAt time.Duration
	s.Done = func(id core.RequestID) { doneAt = loop.Now() }
	s.Start(1)
	loop.Run(40 * time.Millisecond)
	s.Suspend(1)
	if s.Busy() {
		t.Fatal("busy after suspend")
	}
	loop.Run(1 * time.Second) // parked for 960ms
	s.Resume(1)
	loop.Run(10 * time.Second)
	// 40ms done + suspended until t=1s + 60ms remaining = 1.06s.
	if doneAt != 1060*time.Millisecond {
		t.Fatalf("done at %v, want 1.06s", doneAt)
	}
	st := s.Stats()
	if st.Suspends != 1 || st.Resumes != 1 || st.Served != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAbortDiscardsSuspended(t *testing.T) {
	loop := sim.NewLoop(1)
	s := New(simclock.New(loop), Config{Capacity: 10, Seed: 1})
	served := 0
	s.Done = func(id core.RequestID) { served++ }
	s.Start(1)
	loop.Run(10 * time.Millisecond)
	s.Suspend(1)
	s.Abort(1)
	loop.Run(time.Second)
	if served != 0 {
		t.Fatal("aborted request completed")
	}
	if s.SuspendedCount() != 0 {
		t.Fatal("suspended table not cleaned")
	}
	if s.Stats().Aborted != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSuspendNotCurrentPanics(t *testing.T) {
	loop, s, _ := newSrv(10)
	s.Start(1)
	_ = loop
	defer func() {
		if recover() == nil {
			t.Fatal("Suspend of non-current did not panic")
		}
	}()
	s.Suspend(2)
}

func TestResumeUnknownPanics(t *testing.T) {
	_, s, _ := newSrv(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Resume of unknown id did not panic")
		}
	}()
	s.Resume(5)
}

func TestWorkOverride(t *testing.T) {
	loop := sim.NewLoop(1)
	s := New(simclock.New(loop), Config{
		Capacity: 10,
		Work: func(id core.RequestID) time.Duration {
			return time.Duration(id) * time.Millisecond
		},
		Seed: 1,
	})
	var doneAt time.Duration
	s.Done = func(id core.RequestID) { doneAt = loop.Now() }
	s.Start(7)
	loop.RunAll()
	if doneAt != 7*time.Millisecond {
		t.Fatalf("work override ignored: done at %v", doneAt)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	loop := sim.NewLoop(1)
	s := New(simclock.New(loop), Config{Capacity: 10, Jitter: -1, Seed: 1})
	s.Done = func(id core.RequestID) {}
	s.Start(1)
	loop.RunAll()
	if s.Stats().BusyTime != 100*time.Millisecond {
		t.Fatalf("busy time = %v", s.Stats().BusyTime)
	}
}
