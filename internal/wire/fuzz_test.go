package wire

import (
	"bytes"
	"testing"
)

// fuzzSink tallies callbacks; the event log captures order and
// arguments so two decoders can be compared exactly.
type fuzzSink struct {
	log      bytes.Buffer
	credited int64
}

func (s *fuzzSink) Open(ch uint64) {
	s.log.WriteString("O")
	s.log.WriteByte(byte(ch))
}

func (s *fuzzSink) Credit(ch uint64, n int, first bool) {
	// Spans differ by segmentation, so only the per-channel running
	// total is order-comparable — fold spans into the credited sum and
	// log frame-initial markers per channel.
	s.credited += int64(n)
	if first {
		s.log.WriteString("C")
		s.log.WriteByte(byte(ch))
	}
}

func (s *fuzzSink) Close(ch uint64) {
	s.log.WriteString("X")
	s.log.WriteByte(byte(ch))
}

// FuzzFrameDecoder hammers the incremental decoder with arbitrary
// byte streams: it must never panic, never credit more bytes than it
// was fed, and — fed the identical stream whole or one byte at a time
// — produce the identical frames, credits, events, and error. Crashes
// here would be remotely triggerable by any wire client.
func FuzzFrameDecoder(f *testing.F) {
	seed := func(frames ...[]byte) []byte {
		var b []byte
		for _, fr := range frames {
			b = append(b, fr...)
		}
		return b
	}
	// A clean conversation: OPEN, two CREDITs, CLOSE.
	f.Add(seed(frame(OpOpen, 1, nil), frame(OpCredit, 1, make([]byte, 64)),
		frame(OpCredit, 1, make([]byte, 3)), frame(OpClose, 1, nil)))
	// Interleaved channels.
	f.Add(seed(frame(OpCredit, 1, []byte("aa")), frame(OpCredit, 2, []byte("bbb")),
		frame(OpCredit, 1, []byte("c"))))
	// Truncated mid-payload and mid-header.
	f.Add(seed(frame(OpCredit, 7, make([]byte, 100)))[:HeaderSize+10])
	f.Add(seed(frame(OpOpen, 3, nil))[:5])
	// Oversized declared length.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, OpCredit, 0, 0, 0, 0, 0, 0, 0, 1})
	// Unknown opcode.
	f.Add(seed(frame(0x42, 9, nil)))
	// Empty CREDIT and a server-direction opcode.
	f.Add(seed(frame(OpCredit, 5, nil), frame(OpAdmit, 5, nil)))

	f.Fuzz(func(t *testing.T, data []byte) {
		whole := &Decoder{}
		ws := &fuzzSink{}
		werr := whole.Feed(data, ws)

		if ws.credited > int64(len(data)) {
			t.Fatalf("over-credit: %d bytes credited from a %d-byte stream", ws.credited, len(data))
		}

		bywise := &Decoder{}
		bs := &fuzzSink{}
		var berr error
		for i := range data {
			if berr = bywise.Feed(data[i:i+1], bs); berr != nil {
				break
			}
		}

		if (werr == nil) != (berr == nil) {
			t.Fatalf("segmentation changed the verdict: whole=%v bytewise=%v", werr, berr)
		}
		if werr != nil && werr.Error() != berr.Error() {
			t.Fatalf("segmentation changed the error: %q vs %q", werr, berr)
		}
		if ws.credited != bs.credited {
			t.Fatalf("segmentation changed credits: %d vs %d", ws.credited, bs.credited)
		}
		if whole.Frames() != bywise.Frames() {
			t.Fatalf("segmentation changed frame count: %d vs %d", whole.Frames(), bywise.Frames())
		}
		if !bytes.Equal(ws.log.Bytes(), bs.log.Bytes()) {
			t.Fatalf("segmentation changed events: %q vs %q", ws.log.Bytes(), bs.log.Bytes())
		}
	})
}
