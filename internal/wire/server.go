package wire

import (
	"bufio"
	"net"
	"sync"
	"time"

	"speakup/internal/core"
	"speakup/internal/metrics"
	"speakup/internal/trace"
)

// Backend is the front the wire listener feeds — the same arrival
// protocol, bid table, auction, and brownout ladder the HTTP listener
// uses. web.Front implements it (asserted in the speakup facade).
type Backend interface {
	// Arrive registers w (a core.Waiter) as id's waiter and announces
	// the arrival to the thinner under the front's control lock,
	// returning the pinned shed/duplicate/held verdict.
	Arrive(id core.RequestID, w any) core.ArriveVerdict
	// Channel resolves id's payment channel at the front's clock.
	Channel(id core.RequestID) *core.PayChan
	// ReleaseWaiter drops w's registration for id if still current.
	ReleaseWaiter(id core.RequestID, w any)
	// Now reads the front's clock; credits are stamped with it so both
	// transports age channels on one epoch.
	Now() time.Duration
}

// ServerConfig tunes a wire Server.
type ServerConfig struct {
	// Registry receives the wire connection gauge and per-read
	// frame/byte tallies (nil: no telemetry). Pass the front's own
	// registry so /telemetry covers both listeners.
	Registry *metrics.Registry
	// Tracer receives sampled credit events (nil: no tracing). Pass
	// the front's own tracer (web.Front.Tracer) so an id paying over
	// both transports lands in one co-sampled lifecycle record.
	Tracer *trace.Tracer
	// ReadBuf is the per-connection read-buffer size. One socket Read
	// into it drains many frames through the decoder. Default 256 KB.
	ReadBuf int
	// EventQueue bounds the per-connection server→client event queue.
	// A client that stops draining events overflows it and is
	// disconnected (events may be delivered from the thinner's control
	// path, which must never block on a slow client). Default 256.
	EventQueue int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ReadBuf == 0 {
		c.ReadBuf = 256 << 10
	}
	if c.EventQueue == 0 {
		c.EventQueue = 256
	}
	return c
}

// Server accepts wire-protocol connections and drives a Backend.
type Server struct {
	be  Backend
	cfg ServerConfig

	mu     sync.Mutex
	conns  map[*conn]struct{}
	lns    map[net.Listener]struct{}
	closed bool
}

// NewServer creates a server for be. Serve it on any listener.
func NewServer(be Backend, cfg ServerConfig) *Server {
	return &Server{
		be:    be,
		cfg:   cfg.withDefaults(),
		conns: make(map[*conn]struct{}),
		lns:   make(map[net.Listener]struct{}),
	}
}

// Serve accepts connections on ln until ln fails or the server is
// closed. It returns nil after Close, mirroring http.Server's
// ErrServerClosed contract in spirit.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.serve()
	}
}

// Close stops every listener passed to Serve and tears down all open
// connections (their waiters are released as the readers unwind).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.teardown()
	}
}

func (s *Server) drop(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// event is one queued server→client frame.
type event struct {
	op      byte
	ch      uint64
	payload []byte
}

// connChan is the reader-goroutine-owned state of one channel id on
// one connection.
type connChan struct {
	pc *core.PayChan
	// w is the waiter registered by OPEN, nil for pay-only (orphan)
	// channels or after CLOSE released it.
	w *connWaiter
	// notified records that this channel resolution already got its
	// terminal orphan event, so a flood of post-settle CREDIT spans
	// produces one event, not thousands.
	notified bool
}

// conn is one wire connection: a reader goroutine that owns the
// decoder and channel map, and a writer goroutine that coalesces
// queued events into batched, flushed writes.
type conn struct {
	srv *Server
	nc  net.Conn

	out       chan event
	closed    chan struct{}
	closeOnce sync.Once

	// Reader-owned state below (the Sink implementation).
	chans    map[uint64]*connChan
	now      time.Duration // refreshed once per socket read
	credited int64         // bytes credited during the current read
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:    s,
		nc:     nc,
		out:    make(chan event, s.cfg.EventQueue),
		closed: make(chan struct{}),
		chans:  make(map[uint64]*connChan),
	}
}

func (c *conn) teardown() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.nc.Close()
	})
}

// send enqueues one event without ever blocking: Deliver may run on
// the thinner's control path, and a client that stops reading must
// not wedge auctions. Overflow drops the whole connection.
func (c *conn) send(op byte, ch uint64, payload []byte) {
	select {
	case c.out <- event{op: op, ch: ch, payload: payload}:
	case <-c.closed:
	default:
		c.teardown()
	}
}

// Canonical event payloads, mirroring the HTTP front's error bodies.
var (
	evictBody  = []byte("evicted: payment channel timed out")
	rejectBody = []byte("duplicate request id: a request with this id is already waiting")
	shedBody   = []byte("origin brownout: auctions paused, retry shortly")
)

// connWaiter adapts a conn to core.Waiter for one channel id. Deliver
// runs on front goroutines (admit's origin worker, the sweep), never
// the conn's own; it only touches the event queue.
type connWaiter struct {
	c  *conn
	ch uint64
}

// Deliver implements core.Waiter: the held request's outcome becomes
// a server→client event.
func (w *connWaiter) Deliver(body []byte) {
	if body == nil {
		w.c.send(OpEvict, w.ch, evictBody)
		return
	}
	w.c.send(OpAdmit, w.ch, body)
}

func (c *conn) serve() {
	defer c.srv.drop(c)
	reg := c.srv.cfg.Registry
	if reg != nil {
		reg.RecordWireConn(1)
		defer reg.RecordWireConn(-1)
	}
	go c.writeLoop()

	buf := make([]byte, c.srv.cfg.ReadBuf)
	dec := &Decoder{}
	var lastFrames uint64
	for {
		n, err := c.nc.Read(buf)
		if n > 0 {
			// One clock read and one registry update per socket read:
			// the batch is the unit of accounting, not the frame.
			c.now = c.srv.be.Now()
			c.credited = 0
			ferr := dec.Feed(buf[:n], c)
			if reg != nil {
				reg.RecordWireRead(dec.Frames()-lastFrames, c.credited)
				lastFrames = dec.Frames()
			}
			if ferr != nil {
				break // protocol violation: drop the connection
			}
		}
		if err != nil {
			break
		}
		select {
		case <-c.closed:
			err = net.ErrClosed
		default:
		}
		if err != nil {
			break
		}
	}
	c.teardown()
	// Mid-connection disconnect drains waiters: every still-registered
	// waiter is released so held requests do not strand until
	// RequestTimeout (the HTTP analog is the request context
	// canceling). Channels keep their balances and settle by timeout,
	// exactly as when an HTTP client vanishes.
	for id, cc := range c.chans {
		if cc.w != nil {
			c.srv.be.ReleaseWaiter(core.RequestID(id), cc.w)
			cc.w = nil
		}
	}
}

func (c *conn) state(ch uint64) *connChan {
	cc := c.chans[ch]
	if cc == nil {
		cc = &connChan{}
		c.chans[ch] = cc
	}
	return cc
}

// Open implements Sink: the re-issued request arrives. Verdicts map
// exactly onto the HTTP front's 409/503 replies.
func (c *conn) Open(ch uint64) {
	cc := c.state(ch)
	w := &connWaiter{c: c, ch: ch}
	switch c.srv.be.Arrive(core.RequestID(ch), w) {
	case core.ArriveOK:
		cc.w = w
		cc.pc = nil // next credit resolves the (possibly fresh) channel
		cc.notified = false
	case core.ArriveDuplicate:
		c.send(OpReject, ch, rejectBody)
	case core.ArriveShed:
		c.send(OpShed, ch, shedBody)
	}
}

// Credit implements Sink: n payload bytes of a CREDIT frame landed.
// The cached channel makes the steady state one atomic add per span;
// a frame-initial span re-resolves a settled channel the way every
// fresh HTTP POST /pay does.
func (c *conn) Credit(ch uint64, n int, first bool) {
	cc := c.state(ch)
	if cc.pc == nil || (first && cc.pc.State() != core.ChanActive) {
		cc.pc = c.srv.be.Channel(core.RequestID(ch))
		cc.notified = false
	}
	if n > 0 {
		if cc.pc.Credit(int64(n), c.now) {
			c.credited += int64(n)
			c.srv.cfg.Tracer.OnCredit(ch, int64(n), c.now, trace.TransportWire)
			return
		}
		// The channel settled mid-frame. An OPENed channel's outcome
		// arrives through its waiter; a pay-only channel has no waiter,
		// so tell the payer once to stop streaming (the HTTP /pay
		// response's "admitted"/"evicted" status).
		if cc.w == nil && !cc.notified {
			if cc.pc.State() == core.ChanEvicted {
				c.send(OpEvict, ch, evictBody)
			} else {
				c.send(OpAdmit, ch, nil)
			}
			cc.notified = true
		}
	}
}

// Close implements Sink: the client abandoned the request. The waiter
// registration is dropped (if still current); the payment channel and
// its balance stay, settling by timeout like any orphan.
func (c *conn) Close(ch uint64) {
	cc := c.chans[ch]
	if cc == nil {
		return
	}
	if cc.w != nil {
		c.srv.be.ReleaseWaiter(core.RequestID(ch), cc.w)
		cc.w = nil
	}
}

func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var hdr [HeaderSize]byte
	for {
		var ev event
		select {
		case <-c.closed:
			return
		case ev = <-c.out:
		}
		// Coalesce: drain everything queued into the buffered writer,
		// then flush once when the queue goes idle. A sweep evicting a
		// thousand channels on this conn costs one flush, not a
		// thousand small writes.
		for {
			PutHeader(hdr[:], ev.op, ev.ch, len(ev.payload))
			if _, err := bw.Write(hdr[:]); err != nil {
				c.teardown()
				return
			}
			if len(ev.payload) > 0 {
				if _, err := bw.Write(ev.payload); err != nil {
					c.teardown()
					return
				}
			}
			select {
			case ev = <-c.out:
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			c.teardown()
			return
		}
	}
}
