package wire

import (
	"encoding/binary"
	"strings"
	"testing"
)

// recSink records every decoder callback in order, as comparable
// strings, plus running totals.
type recSink struct {
	events   []string
	credited int64
	opens    int
	closes   int
}

func (s *recSink) Open(ch uint64) {
	s.opens++
	s.events = append(s.events, "open")
}

func (s *recSink) Credit(ch uint64, n int, first bool) {
	s.credited += int64(n)
}

func (s *recSink) Close(ch uint64) {
	s.closes++
	s.events = append(s.events, "close")
}

func frame(op byte, ch uint64, payload []byte) []byte {
	b := make([]byte, HeaderSize+len(payload))
	PutHeader(b, op, ch, len(payload))
	copy(b[HeaderSize:], payload)
	return b
}

func TestPutHeaderRoundTrip(t *testing.T) {
	var b [HeaderSize]byte
	PutHeader(b[:], OpCredit, 0xdeadbeefcafe, 12345)
	if got := binary.BigEndian.Uint32(b[0:4]); got != 12345 {
		t.Fatalf("length = %d, want 12345", got)
	}
	if b[4] != OpCredit {
		t.Fatalf("opcode = %#x, want %#x", b[4], OpCredit)
	}
	if got := binary.BigEndian.Uint64(b[5:13]); got != 0xdeadbeefcafe {
		t.Fatalf("channel = %#x, want 0xdeadbeefcafe", got)
	}
}

// TestDecoderSegmentationInvariance feeds the same byte stream whole,
// one byte at a time, and in awkward 7-byte slabs: the decoded frame
// count, credited total, and event order must not depend on how the
// socket happened to chop the stream.
func TestDecoderSegmentationInvariance(t *testing.T) {
	var stream []byte
	stream = append(stream, frame(OpOpen, 1, nil)...)
	stream = append(stream, frame(OpCredit, 1, make([]byte, 100))...)
	stream = append(stream, frame(OpCredit, 2, make([]byte, 7))...) // interleaved pay-only channel
	stream = append(stream, frame(OpCredit, 1, nil)...)             // empty CREDIT is legal
	stream = append(stream, frame(OpClose, 1, nil)...)

	feed := func(chunk int) *recSink {
		d := &Decoder{}
		s := &recSink{}
		for i := 0; i < len(stream); i += chunk {
			end := min(i+chunk, len(stream))
			if err := d.Feed(stream[i:end], s); err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
		}
		if d.Frames() != 5 {
			t.Fatalf("chunk %d: frames = %d, want 5", chunk, d.Frames())
		}
		return s
	}

	want := feed(len(stream))
	for _, chunk := range []int{1, 7, 13, 64} {
		got := feed(chunk)
		if got.credited != want.credited || got.opens != want.opens || got.closes != want.closes {
			t.Fatalf("chunk %d: %+v, want %+v", chunk, got, want)
		}
	}
	if want.credited != 107 {
		t.Fatalf("credited = %d, want 107", want.credited)
	}
}

// TestDecoderPartialFrameAlreadyPaid: a CREDIT frame split across
// reads credits the received span immediately — the defining property
// that makes partially received payments count.
func TestDecoderPartialFrameAlreadyPaid(t *testing.T) {
	d := &Decoder{}
	s := &recSink{}
	f := frame(OpCredit, 9, make([]byte, 1000))
	if err := d.Feed(f[:HeaderSize+400], s); err != nil {
		t.Fatal(err)
	}
	if s.credited != 400 {
		t.Fatalf("credited after partial frame = %d, want 400", s.credited)
	}
	if d.Frames() != 0 {
		t.Fatalf("frames = %d, want 0 (frame incomplete)", d.Frames())
	}
	if err := d.Feed(f[HeaderSize+400:], s); err != nil {
		t.Fatal(err)
	}
	if s.credited != 1000 || d.Frames() != 1 {
		t.Fatalf("credited=%d frames=%d, want 1000/1", s.credited, d.Frames())
	}
}

func TestDecoderViolationsAreSticky(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"unknown opcode", frame(0x7f, 1, nil), "unknown client opcode"},
		{"server opcode from client", frame(OpAdmit, 1, nil), "unknown client opcode"},
		{"oversized length", frame(OpCredit, 1, nil)[:HeaderSize], "exceeds cap"},
		{"payload on OPEN", frame(OpOpen, 1, nil), "no payload"},
		{"payload on CLOSE", frame(OpClose, 1, nil), "no payload"},
	}
	// Patch the declared lengths for the cases that need them.
	binary.BigEndian.PutUint32(cases[2].b[0:4], 1<<31)
	binary.BigEndian.PutUint32(cases[3].b[0:4], 5)
	binary.BigEndian.PutUint32(cases[4].b[0:4], 5)

	for _, tc := range cases {
		d := &Decoder{}
		s := &recSink{}
		err := d.Feed(tc.b, s)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
		// Sticky: a later, perfectly valid feed still fails.
		if err2 := d.Feed(frame(OpCredit, 1, []byte("x")), s); err2 != err {
			t.Fatalf("%s: error not sticky: %v then %v", tc.name, err, err2)
		}
		if s.credited != 0 {
			t.Fatalf("%s: credited %d bytes after violation", tc.name, s.credited)
		}
	}
}

func TestDecoderMaxPayloadOverride(t *testing.T) {
	d := &Decoder{MaxPayload: 10}
	s := &recSink{}
	if err := d.Feed(frame(OpCredit, 1, make([]byte, 10)), s); err != nil {
		t.Fatalf("at-cap frame rejected: %v", err)
	}
	err := d.Feed(frame(OpCredit, 1, make([]byte, 11)), s)
	if err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("over-cap frame accepted: %v", err)
	}
}
