// Cross-transport semantics: the binary wire front and the HTTP front
// share one web.Front, and these tests pin that the verdicts a client
// observes — duplicate rejection, mid-stream eviction, brownout shed,
// waiter drain on disconnect — are identical in meaning and message
// across both. Run under -race in CI (the wire-race job).
package wire_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/core"
	"speakup/internal/web"
	"speakup/internal/wire"
)

// dualFront stands up one web.Front behind both listeners.
type dualFront struct {
	front *web.Front
	hsrv  *httptest.Server
	waddr string
}

func newDualFront(t *testing.T, origin web.Origin, cfg web.Config) *dualFront {
	t.Helper()
	front := web.NewFront(origin, cfg)
	hsrv := httptest.NewServer(front)
	wsrv := wire.NewServer(front, wire.ServerConfig{Registry: front.Registry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go wsrv.Serve(ln)
	t.Cleanup(func() {
		wsrv.Close()
		hsrv.Close()
		front.Close()
	})
	return &dualFront{front: front, hsrv: hsrv, waddr: ln.Addr().String()}
}

func delayOrigin(delay time.Duration) web.Origin {
	return web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		time.Sleep(delay)
		return []byte(fmt.Sprintf("served %d", id)), nil
	})
}

func testConfig() web.Config {
	return web.Config{
		PayPollInterval: 10 * time.Millisecond,
		RequestTimeout:  10 * time.Second,
		Thinner: core.Config{
			OrphanTimeout:     300 * time.Millisecond,
			InactivityTimeout: 400 * time.Millisecond,
			SweepInterval:     25 * time.Millisecond,
		},
	}
}

// occupy parks one request on the origin so everything after it
// contends through the auction.
func (d *dualFront) occupy(id int) {
	go http.Get(fmt.Sprintf("%s/request?id=%d", d.hsrv.URL, id))
	time.Sleep(50 * time.Millisecond)
}

func httpGet(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), nil
}

// TestWirePaymentWinsService is the happy path end to end: OPEN +
// CREDIT over the binary transport wins the auction and the origin's
// response comes back as an ADMIT event.
func TestWirePaymentWinsService(t *testing.T) {
	d := newDualFront(t, delayOrigin(150*time.Millisecond), testConfig())
	d.occupy(1)

	wc, err := wire.Dial(d.waddr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	res, err := wc.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Credit(2, 200_000); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-res:
		if r.Status != wire.StatusAdmitted || string(r.Body) != "served 2" {
			t.Fatalf("result = %v %q, want admitted %q", r.Status, r.Body, "served 2")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wire channel never admitted")
	}
	if paid := d.front.Table().TotalCredited(); paid < 200_000 {
		t.Fatalf("credited %d bytes, want >= 200000", paid)
	}
}

// TestCrossTransportDuplicate pins 409 parity both directions: an id
// waiting on one transport is a duplicate on the other, and the
// rejection carries the same message either way.
func TestCrossTransportDuplicate(t *testing.T) {
	d := newDualFront(t, delayOrigin(150*time.Millisecond), testConfig())
	d.occupy(1)

	// HTTP waiter holds id 7; a wire OPEN for 7 must be REJECTed.
	httpDone := make(chan string, 1)
	go func() {
		_, body, _ := httpGet(d.hsrv.URL + "/request?id=7&wait=1")
		httpDone <- body
	}()
	time.Sleep(50 * time.Millisecond)

	wc, err := wire.Dial(d.waddr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	res7, err := wc.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-res7:
		if r.Status != wire.StatusRejected {
			t.Fatalf("wire OPEN of HTTP-held id: %v, want rejected", r.Status)
		}
		wireMsg := strings.TrimSpace(string(r.Body))

		// Wire waiter holds id 8; an HTTP wait for 8 must 409 with the
		// identical message.
		if _, err := wc.Open(8); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
		code, body, err := httpGet(d.hsrv.URL + "/request?id=8&wait=1")
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusConflict {
			t.Fatalf("HTTP wait on wire-held id: %d, want 409", code)
		}
		if got := strings.TrimSpace(body); got != wireMsg {
			t.Fatalf("messages diverge: HTTP %q vs wire %q", got, wireMsg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wire duplicate OPEN never resolved")
	}
	<-httpDone // waiter 7 resolves (served or evicted) before teardown
}

// TestCrossTransportEviction pins 503-eviction parity: a waiter that
// stops paying while the origin stays busy is evicted mid-stream on
// both transports with the same message.
func TestCrossTransportEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the real-time inactivity timeout; skipped with -short")
	}
	d := newDualFront(t, delayOrigin(1200*time.Millisecond), testConfig())
	d.occupy(1)

	// Both waiters pay once, then go silent.
	httpDone := make(chan [2]string, 1)
	go func() {
		code, body, _ := httpGet(d.hsrv.URL + "/request?id=21&wait=1")
		httpDone <- [2]string{fmt.Sprint(code), body}
	}()
	time.Sleep(30 * time.Millisecond)
	http.Post(d.hsrv.URL+"/pay?id=21", "application/octet-stream",
		strings.NewReader(strings.Repeat("x", 5000)))

	wc, err := wire.Dial(d.waddr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	res, err := wc.Open(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Credit(20, 5000); err != nil {
		t.Fatal(err)
	}

	var wireMsg string
	select {
	case r := <-res:
		if r.Status != wire.StatusEvicted {
			t.Fatalf("wire result = %v %q, want evicted", r.Status, r.Body)
		}
		wireMsg = strings.TrimSpace(string(r.Body))
	case <-time.After(5 * time.Second):
		t.Fatal("wire channel never evicted")
	}
	select {
	case hr := <-httpDone:
		if hr[0] != "503" {
			t.Fatalf("HTTP waiter got %s %q, want 503", hr[0], hr[1])
		}
		if got := strings.TrimSpace(hr[1]); got != wireMsg {
			t.Fatalf("eviction messages diverge: HTTP %q vs wire %q", got, wireMsg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("HTTP waiter never evicted")
	}
}

// TestWireDisconnectDrainsWaiters pins the disconnect contract: when
// a wire connection dies mid-stream, every waiter it registered is
// released immediately (the HTTP analog is the request context
// canceling), so no held request strands until RequestTimeout.
func TestWireDisconnectDrainsWaiters(t *testing.T) {
	d := newDualFront(t, delayOrigin(800*time.Millisecond), testConfig())
	d.occupy(1)
	base := d.front.Table().Waiters()

	wc, err := wire.Dial(d.waddr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := wc.Open(core.RequestID(30 + i)); err != nil {
			t.Fatal(err)
		}
		if err := wc.Credit(core.RequestID(30+i), 1000); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "waiters registered", func() bool {
		return d.front.Table().Waiters() == base+n
	})

	wc.Close() // abrupt mid-conn disconnect
	waitFor(t, "waiters drained", func() bool {
		return d.front.Table().Waiters() == base
	})
	// The channels themselves survive with their balances and settle by
	// timeout, exactly like an HTTP payer that vanished.
	if d.front.Table().Balance(30) != 1000 {
		t.Fatalf("balance dropped with the waiter: %d", d.front.Table().Balance(30))
	}
}

// TestCrossTransportShed pins brownout parity: while the origin is
// stalled, both transports shed new arrivals with the same message
// (HTTP: 503 + Retry-After; wire: SHED).
func TestCrossTransportShed(t *testing.T) {
	var stallArmed atomic.Bool
	release := make(chan struct{})
	defer close(release)
	origin := web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		if stallArmed.CompareAndSwap(true, false) {
			<-release
		}
		return []byte("ok"), nil
	})
	cfg := testConfig()
	cfg.OriginStallAfter = 100 * time.Millisecond
	d := newDualFront(t, origin, cfg)

	stallArmed.Store(true)
	go http.Get(d.hsrv.URL + "/request?id=1") // hangs in the origin
	waitFor(t, "stall declared", func() bool {
		return d.front.Health().Origin == "stalled"
	})

	wc, err := wire.Dial(d.waddr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	res, err := wc.Open(40)
	if err != nil {
		t.Fatal(err)
	}
	var wireMsg string
	select {
	case r := <-res:
		if r.Status != wire.StatusShed {
			t.Fatalf("wire arrival during stall: %v, want shed", r.Status)
		}
		wireMsg = strings.TrimSpace(string(r.Body))
	case <-time.After(5 * time.Second):
		t.Fatal("wire arrival never shed")
	}

	code, body, err := httpGet(d.hsrv.URL + "/request?id=41&wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP arrival during stall: %d, want 503", code)
	}
	if got := strings.TrimSpace(body); got != wireMsg {
		t.Fatalf("shed messages diverge: HTTP %q vs wire %q", got, wireMsg)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
