// Package wire implements speak-up's binary framed payment transport:
// a length-prefixed protocol over persistent TCP in which one
// connection multiplexes many payment channels. It exists because the
// thinner's whole job is absorbing payment bytes "as fast as the
// hardware allows" (paper §3), and HTTP chunked encoding taxes every
// chunk with framing, header parsing, and a goroutine per POST while
// the BidTable credit itself is a few atomics.
//
// Frame layout (big-endian), identical in both directions:
//
//	offset size  field
//	0      4     payload length (bytes; 0 permitted)
//	4      1     opcode
//	5      8     channel id (the request id)
//	13     -     payload
//
// Client→server opcodes: OPEN declares the re-issued request (the
// HTTP front's GET /request?wait=1) and must carry no payload; CREDIT
// carries payment bytes — the payload content is ignored, its length
// is the payment, credited incrementally as the bytes land so a
// partially received frame has already paid; CLOSE abandons the
// request (HTTP: canceling the held GET), also payload-free.
//
// Server→client opcodes mirror the HTTP front's pinned status codes:
// ADMIT (200; payload = the origin's response body, or empty when a
// never-OPENed channel settles), EVICT (503 eviction), REJECT (409
// duplicate id), SHED (503 + Retry-After brownout).
//
// Reads are batched: the server drains whatever one socket Read
// returns through an incremental Decoder, so many small CREDIT frames
// cost one syscall, and per-read tallies land on the metrics registry
// once. Server→client events are coalesced per connection: a writer
// goroutine drains an event queue through one buffered writer and
// flushes when the queue goes idle.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Opcodes. Client→server ops sit in 0x01-0x0f, server→client events
// in 0x11-0x1f, so a direction error is unmistakable on the wire.
const (
	OpOpen   byte = 0x01
	OpCredit byte = 0x02
	OpClose  byte = 0x03

	OpAdmit  byte = 0x11
	OpEvict  byte = 0x12
	OpReject byte = 0x13
	OpShed   byte = 0x14
)

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 13

// MaxPayload caps a frame's declared payload length. CREDIT payloads
// arrive in pieces and never materialize, so the cap exists to bound
// event payloads and reject absurd length prefixes early, not to size
// buffers.
const MaxPayload = 16 << 20

// PutHeader encodes a frame header into b, which must hold at least
// HeaderSize bytes.
func PutHeader(b []byte, op byte, ch uint64, payloadLen int) {
	binary.BigEndian.PutUint32(b[0:4], uint32(payloadLen))
	b[4] = op
	binary.BigEndian.PutUint64(b[5:13], ch)
}

// Sink receives the decoded stream. The server's per-connection state
// implements it; the fuzz harness substitutes a counting sink.
type Sink interface {
	// Open reports an OPEN frame for channel ch.
	Open(ch uint64)
	// Credit reports n payload bytes of a CREDIT frame for ch landing.
	// first marks the first span of a frame (its header was just
	// decoded); a frame split across reads reports several spans, and
	// an empty CREDIT reports one (first, n=0) span.
	Credit(ch uint64, n int, first bool)
	// Close reports a CLOSE frame for channel ch.
	Close(ch uint64)
}

// Decoder is the incremental frame decoder: feed it the bytes of each
// socket read and it invokes the sink as frames complete. A partial
// header is buffered across feeds; CREDIT payload bytes are never
// buffered at all — they are reported span by span and discarded,
// which is what makes one decoder serve arbitrarily large payment
// frames with a fixed-size read buffer.
//
// Protocol violations (unknown opcode, oversized length, payload on a
// payload-free opcode) return an error, and the error is sticky:
// every later Feed returns it again, so a caller cannot accidentally
// resynchronize mid-stream.
type Decoder struct {
	// MaxPayload overrides the package cap when positive (tests).
	MaxPayload int

	hdr     [HeaderSize]byte
	hdrLen  int
	op      byte
	ch      uint64
	payLeft int    // undelivered payload bytes of the current frame
	inFrame bool   // header decoded, payload (possibly empty) pending
	frames  uint64 // completed frames
	err     error
}

// Frames returns the number of completed frames decoded so far.
func (d *Decoder) Frames() uint64 { return d.frames }

func (d *Decoder) cap() int {
	if d.MaxPayload > 0 {
		return d.MaxPayload
	}
	return MaxPayload
}

// Feed consumes b, dispatching completed frames and payload spans to
// sink. It returns the decoder's sticky error on protocol violations.
func (d *Decoder) Feed(b []byte, sink Sink) error {
	if d.err != nil {
		return d.err
	}
	for len(b) > 0 || (d.inFrame && d.payLeft == 0) {
		if !d.inFrame {
			n := copy(d.hdr[d.hdrLen:], b)
			d.hdrLen += n
			b = b[n:]
			if d.hdrLen < HeaderSize {
				return nil // partial header: wait for the next read
			}
			d.hdrLen = 0
			length := int(binary.BigEndian.Uint32(d.hdr[0:4]))
			d.op = d.hdr[4]
			d.ch = binary.BigEndian.Uint64(d.hdr[5:13])
			if length > d.cap() {
				d.err = fmt.Errorf("wire: frame payload %d exceeds cap %d", length, d.cap())
				return d.err
			}
			switch d.op {
			case OpOpen, OpClose:
				if length != 0 {
					d.err = fmt.Errorf("wire: opcode %#x must carry no payload, declared %d bytes", d.op, length)
					return d.err
				}
			case OpCredit:
			default:
				d.err = fmt.Errorf("wire: unknown client opcode %#x", d.op)
				return d.err
			}
			d.payLeft = length
			d.inFrame = true
			if d.op == OpCredit {
				span := min(d.payLeft, len(b))
				sink.Credit(d.ch, span, true)
				d.payLeft -= span
				b = b[span:]
			}
		} else if d.payLeft > 0 {
			span := min(d.payLeft, len(b))
			sink.Credit(d.ch, span, false)
			d.payLeft -= span
			b = b[span:]
		}
		if d.inFrame && d.payLeft == 0 {
			d.inFrame = false
			d.frames++
			switch d.op {
			case OpOpen:
				sink.Open(d.ch)
			case OpClose:
				sink.Close(d.ch)
			}
		}
	}
	return nil
}
