package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"speakup/internal/core"
)

// Status classifies one server→client event, mirroring the HTTP
// status the same outcome carries on the other listener.
type Status int

const (
	// StatusAdmitted: served; Result.Body holds the origin's response
	// (HTTP 200).
	StatusAdmitted Status = iota
	// StatusEvicted: the payment channel timed out (HTTP 503).
	StatusEvicted
	// StatusRejected: duplicate request id (HTTP 409).
	StatusRejected
	// StatusShed: origin brownout, retry shortly (HTTP 503 +
	// Retry-After).
	StatusShed
	// StatusError: the connection failed before a verdict arrived.
	StatusError
)

// String names the status for reports.
func (s Status) String() string {
	switch s {
	case StatusAdmitted:
		return "admitted"
	case StatusEvicted:
		return "evicted"
	case StatusRejected:
		return "rejected"
	case StatusShed:
		return "shed"
	}
	return "error"
}

// Result is the terminal outcome of one opened channel.
type Result struct {
	Status Status
	Body   []byte
	Err    error
}

// Client speaks the wire protocol over one persistent connection,
// multiplexing any number of payment channels. Methods are safe for
// concurrent use; each opened channel's outcome arrives on its own
// buffered result channel.
type Client struct {
	nc net.Conn

	wmu  sync.Mutex // serializes frame writes
	junk []byte     // zero-fill CREDIT payload source

	mu     sync.Mutex
	calls  map[uint64]chan Result
	err    error
	closed bool
}

// Dial connects a wire client to a server address.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (tests use net.Pipe-like
// transports; Dial is the usual entry).
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:    nc,
		junk:  make([]byte, 1<<20),
		calls: make(map[uint64]chan Result),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; every pending call resolves with
// StatusError.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(net.ErrClosed)
	return err
}

// fail resolves every pending call with an error, once.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	calls := c.calls
	c.calls = nil
	c.mu.Unlock()
	for _, ch := range calls {
		select {
		case ch <- Result{Status: StatusError, Err: err}:
		default:
		}
	}
}

// Err returns the connection's terminal error, nil while it is alive.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Client) writeFrame(op byte, ch uint64, payload []byte) error {
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], op, ch, len(payload))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var err error
	if len(payload) > 0 {
		// writev: header and payload in one syscall, no concatenation.
		bufs := net.Buffers{hdr[:], payload}
		_, err = bufs.WriteTo(c.nc)
	} else {
		_, err = c.nc.Write(hdr[:])
	}
	return err
}

// Open declares the re-issued request for id and returns the channel
// its terminal outcome will arrive on (buffered: never blocks the
// reader). Opening an id that is already pending on this client is an
// error — the server would 409 it anyway.
func (c *Client) Open(id core.RequestID) (<-chan Result, error) {
	res := make(chan Result, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if _, dup := c.calls[uint64(id)]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: channel %d already open on this client", id)
	}
	c.calls[uint64(id)] = res
	c.mu.Unlock()
	if err := c.writeFrame(OpOpen, uint64(id), nil); err != nil {
		c.fail(err)
		return nil, err
	}
	return res, nil
}

// Credit streams n payment bytes for id as one or more CREDIT frames
// (1 MB max each). The payload content is junk by design — only its
// length pays.
func (c *Client) Credit(id core.RequestID, n int) error {
	for n > 0 {
		k := min(n, len(c.junk))
		if err := c.writeFrame(OpCredit, uint64(id), c.junk[:k]); err != nil {
			c.fail(err)
			return err
		}
		n -= k
	}
	return nil
}

// CloseChannel abandons id's request: the server releases the waiter
// and the pending call resolves locally with StatusError.
func (c *Client) CloseChannel(id core.RequestID) error {
	c.mu.Lock()
	ch := c.calls[uint64(id)]
	delete(c.calls, uint64(id))
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- Result{Status: StatusError, Err: errors.New("wire: channel closed by client")}:
		default:
		}
	}
	return c.writeFrame(OpClose, uint64(id), nil)
}

// readLoop parses server→client events and resolves their calls.
// Events for unknown channels (a late EVICT after CloseChannel, an
// orphan settle for a pay-only channel) are dropped.
func (c *Client) readLoop() {
	var hdr [HeaderSize]byte
	for {
		if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		length := int(binary.BigEndian.Uint32(hdr[0:4]))
		op := hdr[4]
		ch := binary.BigEndian.Uint64(hdr[5:13])
		if length > MaxPayload {
			c.fail(fmt.Errorf("wire: event payload %d exceeds cap %d", length, MaxPayload))
			return
		}
		var body []byte
		if length > 0 {
			body = make([]byte, length)
			if _, err := io.ReadFull(c.nc, body); err != nil {
				c.fail(err)
				return
			}
		}
		var st Status
		switch op {
		case OpAdmit:
			st = StatusAdmitted
		case OpEvict:
			st = StatusEvicted
		case OpReject:
			st = StatusRejected
		case OpShed:
			st = StatusShed
		default:
			c.fail(fmt.Errorf("wire: unknown server opcode %#x", op))
			return
		}
		c.mu.Lock()
		res := c.calls[ch]
		delete(c.calls, ch)
		c.mu.Unlock()
		if res != nil {
			select {
			case res <- Result{Status: st, Body: body}:
			default:
			}
		}
	}
}
