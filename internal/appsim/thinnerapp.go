package appsim

import (
	"fmt"

	"speakup/internal/core"
	"speakup/internal/server"
	"speakup/internal/tcpsim"
	"speakup/internal/trace"
)

// Mode selects the front-end policy.
type Mode int

// Front-end policies.
const (
	// ModeOff is the no-defense baseline: drop when busy.
	ModeOff Mode = iota
	// ModeAuction is speak-up's §3.3 explicit payment channel.
	ModeAuction
	// ModeRandomDrop is speak-up's §3.2 random drops + aggressive retries.
	ModeRandomDrop
	// ModeHetero is the §5 quantum-auction scheduler.
	ModeHetero
	// ModeProfiling is the §8.1 detect-and-block baseline: per-address
	// rate profiles, no payment.
	ModeProfiling
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAuction:
		return "auction"
	case ModeRandomDrop:
		return "random-drop"
	case ModeHetero:
		return "hetero"
	case ModeProfiling:
		return "profiling"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ThinnerApp binds a front-end policy and the emulated server to a TCP
// stack, implementing the thinner's side of the protocol.
type ThinnerApp struct {
	stack *tcpsim.Stack
	sizes Sizes
	mode  Mode

	auction *core.Thinner
	off     *core.PassThrough
	rdrop   *core.RandomDrop
	hetero  *core.HeteroThinner
	prof    *core.Profiler
	srv     *server.Server

	reqConns map[core.RequestID]*tcpsim.Conn   // request connection per id
	payConns map[core.RequestID][]*tcpsim.Conn // payment connection(s) per id

	// OnAdmit observes every admission (id, winning bid in bytes).
	OnAdmit func(id core.RequestID, paid int64)
	// OnWaste observes evicted payment channels (id, wasted bytes).
	OnWaste func(id core.RequestID, paid int64)
}

// ThinnerConfig assembles a ThinnerApp.
type ThinnerConfig struct {
	Mode  Mode
	Sizes Sizes
	// Thinner configures the auction policy (ModeAuction).
	Thinner core.Config
	// RandomDrop configures the §3.2 policy (ModeRandomDrop); its
	// Capacity defaults to the server capacity.
	RandomDrop core.RandomDropConfig
	// Hetero configures the §5 policy (ModeHetero).
	Hetero core.HeteroConfig
	// Profiler configures the §8.1 baseline (ModeProfiling).
	Profiler core.ProfilerConfig
	// Trace, if non-nil, attaches a request-lifecycle tracer to the
	// auction thinner (ModeAuction only). Pure observation: attaching
	// one must not change a single simulated event, which the golden
	// tests pin byte-for-byte.
	Trace *trace.Tracer
}

// NewThinnerApp wires the policy, server, and stack together. The
// server's Done callback is taken over by the app.
func NewThinnerApp(stack *tcpsim.Stack, clock core.Clock, srv *server.Server, cfg ThinnerConfig) *ThinnerApp {
	a := &ThinnerApp{
		stack:    stack,
		sizes:    cfg.Sizes.withDefaults(),
		mode:     cfg.Mode,
		srv:      srv,
		reqConns: make(map[core.RequestID]*tcpsim.Conn),
		payConns: make(map[core.RequestID][]*tcpsim.Conn),
	}
	switch cfg.Mode {
	case ModeOff:
		a.off = core.NewPassThrough()
		a.off.Admit = func(id core.RequestID) { a.admit(id, 0) }
		a.off.Drop = func(id core.RequestID) { a.replyAndForget(id, kindBusy, a.sizes.Busy) }
		srv.Done = func(id core.RequestID) {
			a.respond(id)
			a.off.ServerDone()
		}
		srv.Failed = func(id core.RequestID) {
			a.failRequest(id)
			a.off.ServerDone()
		}
	case ModeAuction:
		a.auction = core.NewThinner(clock, cfg.Thinner)
		a.auction.Trace = cfg.Trace
		a.auction.Admit = a.admit
		a.auction.Evict = func(id core.RequestID, paid int64, wasted bool) {
			if wasted {
				a.closePayment(id)
				if a.OnWaste != nil {
					a.OnWaste(id, paid)
				}
			}
		}
		// Brownout shed: answer busy instead of stranding the client as
		// a silent waiter; a retrying client backs off and re-offers.
		a.auction.Shed = func(id core.RequestID) { a.replyAndForget(id, kindBusy, a.sizes.Busy) }
		srv.Done = func(id core.RequestID) {
			a.respond(id)
			a.auction.ServerDone()
		}
		srv.Failed = func(id core.RequestID) {
			// Crash: the in-flight request is gone; the closed
			// connection tells the client. ServerDone releases the busy
			// latch — the brownout ladder defers the next auction until
			// the origin is back.
			a.failRequest(id)
			a.auction.ServerDone()
		}
	case ModeRandomDrop:
		rd := cfg.RandomDrop
		a.rdrop = core.NewRandomDrop(clock, rd)
		a.rdrop.Admit = func(id core.RequestID) { a.admit(id, 0) }
		a.rdrop.Retry = func(id core.RequestID) { a.reply(id, kindRetry, a.sizes.Retry) }
		srv.Done = func(id core.RequestID) {
			a.respond(id)
			a.rdrop.ServerDone()
		}
		srv.Failed = func(id core.RequestID) {
			a.failRequest(id)
			a.rdrop.ServerDone()
		}
	case ModeHetero:
		a.hetero = core.NewHeteroThinner(clock, cfg.Hetero)
		a.hetero.Start = func(id core.RequestID) { srv.Start(id) }
		a.hetero.Suspend = func(id core.RequestID) { srv.Suspend(id) }
		a.hetero.Resume = func(id core.RequestID) { srv.Resume(id) }
		a.hetero.Abort = func(id core.RequestID) {
			srv.Abort(id)
			a.closePayment(id)
			// Tell the client by closing its request connection.
			if conn, ok := a.reqConns[id]; ok {
				conn.Close()
				delete(a.reqConns, id)
			}
		}
		a.hetero.Done = func(id core.RequestID, paid int64) {
			a.closePayment(id)
			if a.OnAdmit != nil {
				a.OnAdmit(id, paid)
			}
			a.respond(id)
		}
		srv.Done = func(id core.RequestID) { a.hetero.ServerDone(id) }
	case ModeProfiling:
		pc := cfg.Profiler
		if pc.BaselineRate == 0 {
			pc.BaselineRate = 2 // the good-client profile (λ=2)
		}
		a.prof = core.NewProfiler(clock, pc)
		a.prof.Admit = func(id core.RequestID) { a.admit(id, 0) }
		a.prof.Drop = func(id core.RequestID) { a.replyAndForget(id, kindBusy, a.sizes.Busy) }
		srv.Done = func(id core.RequestID) {
			a.respond(id)
			a.prof.ServerDone()
		}
		srv.Failed = func(id core.RequestID) {
			a.failRequest(id)
			a.prof.ServerDone()
		}
	default:
		panic("appsim: unknown mode")
	}
	stack.Listen(a.accept)
	return a
}

// Auction exposes the auction policy (nil in other modes).
func (a *ThinnerApp) Auction() *core.Thinner { return a.auction }

// Off exposes the pass-through baseline (nil in other modes).
func (a *ThinnerApp) Off() *core.PassThrough { return a.off }

// Profiler exposes the §8.1 baseline (nil in other modes).
func (a *ThinnerApp) Profiler() *core.Profiler { return a.prof }

// Hetero exposes the §5 policy (nil in other modes).
func (a *ThinnerApp) Hetero() *core.HeteroThinner { return a.hetero }

// RandomDrop exposes the §3.2 policy (nil in other modes).
func (a *ThinnerApp) RandomDrop() *core.RandomDrop { return a.rdrop }

// Server exposes the emulated server.
func (a *ThinnerApp) Server() *server.Server { return a.srv }

// admit starts service and closes the winner's payment channels (the
// thinner terminates request (2) when request (1) is admitted).
func (a *ThinnerApp) admit(id core.RequestID, paid int64) {
	a.closePayment(id)
	if a.OnAdmit != nil {
		a.OnAdmit(id, paid)
	}
	a.srv.Start(id)
}

// respond sends the final response on the request connection.
func (a *ThinnerApp) respond(id core.RequestID) {
	if conn, ok := a.reqConns[id]; ok {
		if !conn.Closed() {
			conn.Write(a.sizes.Response, &msg{kind: kindResponse, id: id})
		}
		delete(a.reqConns, id)
	}
}

// reply sends a small control message on the request connection.
func (a *ThinnerApp) reply(id core.RequestID, kind msgKind, size int) {
	if conn, ok := a.reqConns[id]; ok && !conn.Closed() {
		conn.Write(size, &msg{kind: kind, id: id})
	}
}

// replyAndForget replies and drops the request state (OFF-mode drop).
func (a *ThinnerApp) replyAndForget(id core.RequestID, kind msgKind, size int) {
	a.reply(id, kind, size)
	delete(a.reqConns, id)
}

// failRequest tears down a request the origin lost in a crash: the
// closed request connection is how the client learns.
func (a *ThinnerApp) failRequest(id core.RequestID) {
	a.closePayment(id)
	if conn, ok := a.reqConns[id]; ok {
		if !conn.Closed() {
			conn.Close()
		}
		delete(a.reqConns, id)
	}
}

// closePayment tears down all payment channels for id.
func (a *ThinnerApp) closePayment(id core.RequestID) {
	for _, conn := range a.payConns[id] {
		if !conn.Closed() {
			conn.Close()
		}
	}
	delete(a.payConns, id)
}

// accept handles a new inbound connection: its records drive the
// protocol.
func (a *ThinnerApp) accept(conn *tcpsim.Conn) {
	// Payment bytes may arrive long before the first full POST record
	// completes, so the channel is registered on first bytes — eviction
	// must be able to close it mid-POST.
	registered := false
	conn.OnBytes = func(n int, meta any) {
		m, ok := meta.(*msg)
		if !ok || m.kind != kindPost {
			return
		}
		if !registered {
			a.registerPayConn(m.id, conn)
			registered = true
		}
		switch a.mode {
		case ModeAuction:
			a.auction.PaymentReceived(m.id, int64(n))
		case ModeHetero:
			a.hetero.PaymentReceived(m.id, int64(n))
		}
	}
	conn.OnRecord = func(meta any) {
		m, ok := meta.(*msg)
		if !ok {
			return
		}
		switch m.kind {
		case kindInitial:
			a.reqConns[m.id] = conn
			a.initialArrived(m.id, core.Address(conn.Remote()))
		case kindRequest:
			a.requestArrived(m.id)
		case kindPost:
			// Full POST delivered without a win: ask for another.
			if !conn.Closed() {
				conn.Write(a.sizes.Continue, &msg{kind: kindContinue, id: m.id})
			}
		}
	}
}

func (a *ThinnerApp) registerPayConn(id core.RequestID, conn *tcpsim.Conn) {
	for _, c := range a.payConns[id] {
		if c == conn {
			return
		}
	}
	a.payConns[id] = append(a.payConns[id], conn)
}

// initialArrived handles the client's first GET. from is the client's
// network address, used only by the profiling baseline (speak-up
// itself never keys on addresses — §2.2).
func (a *ThinnerApp) initialArrived(id core.RequestID, from core.Address) {
	switch a.mode {
	case ModeOff:
		a.off.RequestArrived(id)
	case ModeProfiling:
		a.prof.RequestArrived(id, from)
	case ModeRandomDrop:
		a.rdrop.RequestArrived(id)
	case ModeAuction:
		if !a.auction.Busy() {
			a.auction.RequestArrived(id) // direct admit
			return
		}
		// Busy: return the JavaScript; the client will issue the actual
		// request (1) and the payment POST (2).
		a.reply(id, kindPlease, a.sizes.Please)
	case ModeHetero:
		a.reply(id, kindPlease, a.sizes.Please)
	}
}

// requestArrived handles the re-issued actual request (1).
func (a *ThinnerApp) requestArrived(id core.RequestID) {
	switch a.mode {
	case ModeAuction:
		a.auction.RequestArrived(id)
	case ModeHetero:
		a.hetero.RequestArrived(id)
	case ModeRandomDrop:
		a.rdrop.RequestArrived(id)
	}
}
