package appsim

import (
	"time"

	"speakup/internal/metrics"
	"speakup/internal/netsim"
	"speakup/internal/sim"
	"speakup/internal/tcpsim"
)

// WebServerApp is the separate web server S of the Figure 9 bystander
// experiment: it answers GETs with a file of the requested size.
type WebServerApp struct {
	stack *tcpsim.Stack
}

// NewWebServerApp installs the file server on a stack.
func NewWebServerApp(stack *tcpsim.Stack) *WebServerApp {
	a := &WebServerApp{stack: stack}
	stack.Listen(func(conn *tcpsim.Conn) {
		conn.OnRecord = func(meta any) {
			m, ok := meta.(*msg)
			if !ok || m.kind != kindGet {
				return
			}
			if !conn.Closed() {
				conn.Write(m.n, &msg{kind: kindFile, id: m.id})
			}
		}
	})
	return a
}

// BystanderApp emulates the paper's wget host H: it downloads a file
// of fixed size from the web server repeatedly (a new connection per
// download, like wget) and records end-to-end latencies.
type BystanderApp struct {
	loop     *sim.Loop
	stack    *tcpsim.Stack
	server   netsim.NodeID
	fileSize int
	reqSize  int

	nextID    uint64
	started   time.Duration
	Latencies metrics.Sample
	Completed int

	// MaxDownloads stops after this many (0 = unlimited).
	MaxDownloads int
}

// NewBystanderApp creates the downloader; call Start to begin.
func NewBystanderApp(stack *tcpsim.Stack, server netsim.NodeID, fileSize int) *BystanderApp {
	return &BystanderApp{
		loop:     stack.Net().Loop(),
		stack:    stack,
		server:   server,
		fileSize: fileSize,
		reqSize:  200,
	}
}

// Start begins the download loop.
func (b *BystanderApp) Start() { b.download() }

func (b *BystanderApp) download() {
	if b.MaxDownloads > 0 && b.Completed >= b.MaxDownloads {
		return
	}
	b.nextID++
	id := b.nextID
	b.started = b.loop.Now()
	conn := b.stack.Dial(b.server, nil)
	conn.Write(b.reqSize, &msg{kind: kindGet, id: 0, n: b.fileSize})
	conn.OnRecord = func(meta any) {
		m, ok := meta.(*msg)
		if !ok || m.kind != kindFile {
			return
		}
		b.Latencies.AddDuration(b.loop.Now() - b.started)
		b.Completed++
		conn.Close()
		b.download()
	}
	_ = id
}
