package appsim

import (
	"time"

	"speakup/internal/clients"
	"speakup/internal/core"
	"speakup/internal/netsim"
	"speakup/internal/sim"
	"speakup/internal/tcpsim"
)

// RequestOutcome reports one finished request to the scenario.
type RequestOutcome struct {
	ID      core.RequestID
	Served  bool
	Latency time.Duration // issue -> response
	// PayTime is the time spent uploading dummy bytes (first POST byte
	// written to payment channel termination); 0 if the request never
	// paid. This is the paper's Figure 4 metric.
	PayTime time.Duration
	// PaidBytes counts payment bytes this client pushed into its TCP
	// stack for the request (client-side view; the thinner-side price
	// is reported via ThinnerApp.OnAdmit).
	PaidBytes int64
}

// ClientApp drives one workload client through the protocol.
type ClientApp struct {
	loop    *sim.Loop
	stack   *tcpsim.Stack
	thinner netsim.NodeID
	sizes   Sizes
	cfg     ClientAppConfig

	Workload *clients.Client
	reqs     map[core.RequestID]*clientReq

	// OnOutcome observes every finished request (served or failed).
	OnOutcome func(RequestOutcome)
}

// Payer sizes payment POSTs dynamically; adversary strategies
// (internal/adversary) implement it. PostSize returns the next POST
// size for a request that has paid `paid` bytes so far, given the
// protocol default def; <= 0 stops paying while keeping the request
// open (the defector's move — the thinner's timeouts must clean up).
type Payer interface {
	PostSize(now time.Duration, paid int64, def int) int
}

// ClientAppConfig tunes protocol behaviour.
type ClientAppConfig struct {
	// PayConns is the number of parallel payment connections opened
	// per request (§3.4 gaming; default 1).
	PayConns int
	// MaxRetryPipeline caps outstanding §3.2 retries. Default 32.
	MaxRetryPipeline int
	// Payer, if non-nil, sizes each payment POST; nil pays the
	// protocol default (Sizes.Post) until terminated.
	Payer Payer
}

func (c ClientAppConfig) withDefaults() ClientAppConfig {
	if c.PayConns == 0 {
		c.PayConns = 1
	}
	if c.MaxRetryPipeline == 0 {
		c.MaxRetryPipeline = 32
	}
	return c
}

type clientReq struct {
	id       core.RequestID
	issuedAt time.Duration
	reqConn  *tcpsim.Conn
	payConns []*tcpsim.Conn
	paying   bool
	payStart time.Duration
	payEnd   time.Duration
	paid     int64
	retries  int // §3.2 outstanding retries
}

// NewClientApp binds a workload client to a stack. The workload's
// Issue callback is taken over by the app.
func NewClientApp(stack *tcpsim.Stack, workload *clients.Client, thinner netsim.NodeID, sizes Sizes, cfg ClientAppConfig) *ClientApp {
	a := &ClientApp{
		loop:     stack.Net().Loop(),
		stack:    stack,
		thinner:  thinner,
		sizes:    sizes.withDefaults(),
		cfg:      cfg.withDefaults(),
		Workload: workload,
		reqs:     make(map[core.RequestID]*clientReq),
	}
	workload.Issue = a.issue
	workload.Abandon = a.abandon
	return a
}

// abandon tears down a deadline-expired request's half-open exchange;
// finish reports the failure to the workload, which may retry it.
func (a *ClientApp) abandon(id core.RequestID) {
	if r, ok := a.reqs[id]; ok {
		a.finish(r, false)
		return
	}
	a.Workload.RequestFailed(id)
}

// issue opens the request connection and sends the initial GET.
func (a *ClientApp) issue(id core.RequestID) {
	r := &clientReq{id: id, issuedAt: a.loop.Now()}
	a.reqs[id] = r
	r.reqConn = a.stack.Dial(a.thinner, nil)
	r.reqConn.Write(a.sizes.Initial, &msg{kind: kindInitial, id: id})
	r.reqConn.OnRecord = func(meta any) { a.onReqConnRecord(r, meta) }
	r.reqConn.OnClose = func() {
		// Thinner aborted us (§5) or tore down: count as failure.
		if _, live := a.reqs[id]; live {
			a.finish(r, false)
		}
	}
}

func (a *ClientApp) onReqConnRecord(r *clientReq, meta any) {
	m, ok := meta.(*msg)
	if !ok {
		return
	}
	switch m.kind {
	case kindPlease:
		// Issue the actual request (1) and the payment POST(s) (2).
		r.reqConn.Write(a.sizes.Request, &msg{kind: kindRequest, id: r.id})
		a.openPayment(r)
	case kindResponse:
		a.finish(r, true)
	case kindBusy:
		a.finish(r, false)
	case kindRetry:
		// §3.2: pipeline congestion-controlled retries. Top up two per
		// reply until the cap, keeping the pipe full without waiting.
		if r.retries > 0 {
			r.retries--
		}
		for r.retries < a.cfg.MaxRetryPipeline {
			r.reqConn.Write(a.sizes.Request, &msg{kind: kindRequest, id: r.id})
			r.retries += 1
			if r.retries >= 2 { // growth batch per reply
				break
			}
		}
	}
}

// openPayment dials the payment channel(s) and starts POSTing.
func (a *ClientApp) openPayment(r *clientReq) {
	if r.paying {
		return
	}
	r.paying = true
	r.payStart = a.loop.Now()
	// One metadata record serves every POST of the request: receivers
	// only read kind/id, so repeated payments (hundreds per request at
	// 1 MB each) need not allocate a msg apiece.
	postMsg := &msg{kind: kindPost, id: r.id}
	for i := 0; i < a.cfg.PayConns; i++ {
		conn := a.stack.Dial(a.thinner, nil)
		r.payConns = append(r.payConns, conn)
		post := func() {
			if conn.Closed() {
				return
			}
			size := a.sizes.Post
			if a.cfg.Payer != nil {
				size = a.cfg.Payer.PostSize(a.loop.Now(), r.paid, a.sizes.Post)
				if size <= 0 {
					return // defect: stop paying, keep the request open
				}
			}
			conn.Write(size, postMsg)
			r.paid += int64(size)
		}
		post()
		conn.OnRecord = func(meta any) {
			m, ok := meta.(*msg)
			if ok && m.kind == kindContinue {
				post()
			}
		}
		conn.OnClose = func() {
			// Thinner terminated the channel (win or eviction): stop
			// sending immediately. In-flight bytes still drain.
			r.paid -= conn.AbortPending()
			if r.payEnd == 0 {
				r.payEnd = a.loop.Now()
			}
		}
	}
}

// finish closes the request's connections and reports the outcome.
func (a *ClientApp) finish(r *clientReq, served bool) {
	delete(a.reqs, r.id)
	if r.payEnd == 0 && r.paying {
		r.payEnd = a.loop.Now()
	}
	for _, conn := range r.payConns {
		if !conn.Closed() {
			r.paid -= conn.AbortPending()
			conn.Close()
		}
	}
	if !r.reqConn.Closed() {
		r.reqConn.Close()
	}
	out := RequestOutcome{
		ID:        r.id,
		Served:    served,
		Latency:   a.loop.Now() - r.issuedAt,
		PaidBytes: r.paid,
	}
	if r.paying {
		out.PayTime = r.payEnd - r.payStart
	}
	if served {
		a.Workload.RequestServed(r.id)
	} else {
		a.Workload.RequestFailed(r.id)
	}
	if a.OnOutcome != nil {
		a.OnOutcome(out)
	}
}
