// Package appsim models speak-up's application-layer protocol over the
// simulated TCP stack: the HTTP exchange the paper's prototype drives
// with JavaScript (§6).
//
// A request proceeds as in the paper. The client sends its request to
// the thinner's well-known URL. If the server is free the request goes
// straight through. Otherwise the thinner replies with "please pay"
// (the JavaScript), and the client issues two HTTP requests: (1) the
// actual request, whose response the thinner delays, and (2) a large
// HTTP POST of dummy bytes — the payment channel. If the POST
// completes before the client wins an auction, the thinner asks for
// another POST; the quiescent gap between POSTs emerges from the
// exchange. When the client wins, the thinner terminates the payment
// channel and forwards the request to the emulated server; the
// response returns on the request connection.
package appsim

import "speakup/internal/core"

// msgKind labels protocol messages. They ride as tcpsim record
// metadata; sizes are configurable via Sizes.
type msgKind uint8

const (
	kindInitial  msgKind = iota // client -> thinner: first GET
	kindPlease                  // thinner -> client: please pay (the JavaScript)
	kindRequest                 // client -> thinner: the actual request (1)
	kindPost                    // client -> thinner: payment POST bytes (2)
	kindContinue                // thinner -> client: POST done, send another
	kindResponse                // thinner -> client: served response
	kindBusy                    // thinner -> client: dropped (OFF mode)
	kindRetry                   // thinner -> client: please retry (§3.2)
	kindGet                     // bystander -> web server: file request (Fig 9)
	kindFile                    // web server -> bystander: file payload
)

// msg is the record metadata for one protocol message.
type msg struct {
	kind msgKind
	id   core.RequestID
	n    int // auxiliary: file size for kindGet
}

// Sizes configures on-the-wire message sizes in bytes. Zero fields
// take the defaults, which follow the paper's prototype (§6: one
// megabyte POSTs, small control messages).
type Sizes struct {
	Initial  int // default 200
	Please   int // default 150
	Request  int // default 200
	Post     int // default 1 MB (1_000_000)
	Continue int // default 150
	Response int // default 1000
	Busy     int // default 150
	Retry    int // default 150
}

func (s Sizes) withDefaults() Sizes {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&s.Initial, 200)
	def(&s.Please, 150)
	def(&s.Request, 200)
	def(&s.Post, 1_000_000)
	def(&s.Continue, 150)
	def(&s.Response, 1000)
	def(&s.Busy, 150)
	def(&s.Retry, 150)
	return s
}

// DefaultSizes returns the paper-default message sizes.
func DefaultSizes() Sizes { return Sizes{}.withDefaults() }
