package appsim

import (
	"fmt"
	"testing"
	"time"

	"speakup/internal/clients"
	"speakup/internal/core"
	"speakup/internal/netsim"
	"speakup/internal/server"
	"speakup/internal/sim"
	"speakup/internal/simclock"
	"speakup/internal/tcpsim"
)

func TestDebugBadClientChannels(t *testing.T) {
	loop := sim.NewLoop(1)
	n := netsim.New(loop)
	sw := n.AddNode("switch", nil)
	tn := n.AddNode("thinner", nil)
	n.Connect(sw, tn, 1e9, 250*time.Microsecond, 256*1500)
	// 5 bad clients, 100ms one-way (200ms RTT)
	var nodes []netsim.NodeID
	for i := 0; i < 5; i++ {
		cn := n.AddNode("c", nil)
		n.Connect(cn, sw, 2e6, 100*time.Millisecond, 50*1500)
		nodes = append(nodes, cn)
	}
	n.ComputeRoutes()
	clock := simclock.New(loop)
	srv := server.New(clock, server.Config{Capacity: 2, Seed: 7})
	ts := tcpsim.NewStack(n, tn, tcpsim.Options{})
	NewThinnerApp(ts, clock, srv, ThinnerConfig{Mode: ModeAuction})
	var nextID uint64
	gen := func() core.RequestID { nextID++; return core.RequestID(nextID) }
	var apps []*ClientApp
	for i, cn := range nodes {
		cs := tcpsim.NewStack(n, cn, tcpsim.Options{})
		wl := clients.New(clock, clients.Config{Lambda: 40, Window: 20, Seed: int64(i + 5)}, gen)
		app := NewClientApp(cs, wl, tn, Sizes{}, ClientAppConfig{})
		apps = append(apps, app)
		wl.Start()
	}
	loop.Run(25 * time.Second)
	app := apps[0]
	fmt.Printf("client0: %d live reqs\n", len(app.reqs))
	i := 0
	var totPaid int64
	for id, r := range app.reqs {
		if i < 8 {
			var st string
			for _, pc := range r.payConns {
				st += fmt.Sprintf(" [est=%v closed=%v sent=%.0fKB out=%d pend=%.0fKB cwnd=%.0f rto=%v tmo=%d]",
					pc.Established(), pc.Closed(), float64(pc.BytesSent)/1000, pc.Outstanding(), float64(pc.PendingBytes())/1000, pc.Cwnd(), pc.RTO(), pc.Timeouts)
			}
			fmt.Printf("  req %d: paying=%v paid=%.0fKB conns=%d%s\n", id, r.paying, float64(r.paid)/1000, len(r.payConns), st)
		}
		i++
		totPaid += r.paid
	}
	fmt.Printf("client0 total live paid: %.1fMB (max 6.25MB)\n", float64(totPaid)/1e6)
}
