package appsim

import (
	"testing"
	"time"

	"speakup/internal/clients"
	"speakup/internal/core"
	"speakup/internal/netsim"
	"speakup/internal/server"
	"speakup/internal/sim"
	"speakup/internal/simclock"
	"speakup/internal/tcpsim"
)

// rig is a hand-built mini deployment: n clients on 2 Mbit/s access
// links into a 100 Mbit/s trunk, a thinner, and an emulated server.
type rig struct {
	loop    *sim.Loop
	net     *netsim.Network
	thinner *ThinnerApp
	srv     *server.Server
	apps    []*ClientApp
	wls     []*clients.Client

	outcomes []RequestOutcome
	admits   map[core.RequestID]int64
}

type rigConfig struct {
	mode       Mode
	capacity   float64
	nClients   int
	clientCfg  clients.Config
	postBytes  int
	accessRate float64
}

func newRig(t *testing.T, cfg rigConfig) *rig {
	t.Helper()
	if cfg.accessRate == 0 {
		cfg.accessRate = 2e6
	}
	if cfg.postBytes == 0 {
		cfg.postBytes = 1_000_000
	}
	loop := sim.NewLoop(42)
	n := netsim.New(loop)
	r := &rig{loop: loop, net: n, admits: make(map[core.RequestID]int64)}

	sw := n.AddNode("switch", nil)
	tn := n.AddNode("thinner", nil)
	n.Connect(sw, tn, 100e6, 250*time.Microsecond, 256*1500)

	var clientNodes []netsim.NodeID
	for i := 0; i < cfg.nClients; i++ {
		cn := n.AddNode("client", nil)
		n.Connect(cn, sw, cfg.accessRate, 250*time.Microsecond, 50*1500)
		clientNodes = append(clientNodes, cn)
	}
	n.ComputeRoutes()

	clock := simclock.New(loop)
	r.srv = server.New(clock, server.Config{Capacity: cfg.capacity, Seed: 7})
	tstack := tcpsim.NewStack(n, tn, tcpsim.Options{})
	r.thinner = NewThinnerApp(tstack, clock, r.srv, ThinnerConfig{
		Mode:  cfg.mode,
		Sizes: Sizes{Post: cfg.postBytes},
		RandomDrop: core.RandomDropConfig{
			Capacity: cfg.capacity, Seed: 3,
		},
	})
	r.thinner.OnAdmit = func(id core.RequestID, paid int64) { r.admits[id] = paid }

	var nextID uint64
	gen := func() core.RequestID { nextID++; return core.RequestID(nextID) }
	for i, cn := range clientNodes {
		cstack := tcpsim.NewStack(n, cn, tcpsim.Options{})
		ccfg := cfg.clientCfg
		ccfg.Seed = int64(100 + i)
		wl := clients.New(clock, ccfg, gen)
		app := NewClientApp(cstack, wl, tn, Sizes{Post: cfg.postBytes}, ClientAppConfig{})
		app.OnOutcome = func(o RequestOutcome) { r.outcomes = append(r.outcomes, o) }
		r.apps = append(r.apps, app)
		r.wls = append(r.wls, wl)
	}
	return r
}

func (r *rig) start() { // begin all workloads
	for _, wl := range r.wls {
		wl.Start()
	}
}

func (r *rig) served() int {
	n := 0
	for _, o := range r.outcomes {
		if o.Served {
			n++
		}
	}
	return n
}

func TestSingleClientLightLoadServedDirectly(t *testing.T) {
	r := newRig(t, rigConfig{
		mode: ModeAuction, capacity: 100, nClients: 1,
		clientCfg: clients.Config{Lambda: 2, Window: 1, Good: true},
	})
	r.start()
	r.loop.Run(30 * time.Second)
	if got := r.served(); got < 40 {
		t.Fatalf("served %d requests in 30s at lambda=2, want ~60", got)
	}
	// Light load: no payment should ever be needed.
	for _, o := range r.outcomes {
		if o.PaidBytes != 0 {
			t.Fatalf("light-load request paid %d bytes", o.PaidBytes)
		}
	}
	st := r.thinner.Auction().Stats()
	if st.Auctions != 0 {
		t.Fatalf("auctions held under light load: %d", st.Auctions)
	}
}

func TestOverloadTriggersPayments(t *testing.T) {
	// One client generating 20 req/s against capacity 2: most requests
	// must pay, and some get served.
	r := newRig(t, rigConfig{
		mode: ModeAuction, capacity: 2, nClients: 3,
		clientCfg: clients.Config{Lambda: 10, Window: 4, Good: true},
	})
	r.start()
	r.loop.Run(30 * time.Second)
	if got := r.served(); got < 30 {
		t.Fatalf("served %d, want close to capacity*30=60", got)
	}
	paidSome := false
	for _, o := range r.outcomes {
		if o.Served && o.PaidBytes > 0 {
			paidSome = true
			break
		}
	}
	if !paidSome {
		t.Fatal("no served request paid despite overload")
	}
	st := r.thinner.Auction().Stats()
	if st.Auctions == 0 {
		t.Fatal("no auctions under overload")
	}
	if st.PaidBytes == 0 {
		t.Fatal("thinner recorded no winning bids")
	}
}

func TestAuctionPricesApproachUpperBound(t *testing.T) {
	// 5 clients x 2 Mbit/s all saturating against c=5: the §3.3 price
	// bound is (G+B)/c = 10e6/8/5 = 250 KB per request.
	r := newRig(t, rigConfig{
		mode: ModeAuction, capacity: 5, nClients: 5,
		clientCfg: clients.Config{Lambda: 20, Window: 8, Good: true},
	})
	r.start()
	r.loop.Run(60 * time.Second)
	var sum float64
	var n int
	for id, paid := range r.admits {
		_ = id
		if paid > 0 {
			sum += float64(paid)
			n++
		}
	}
	if n < 50 {
		t.Fatalf("only %d paid admissions", n)
	}
	avg := sum / float64(n)
	upper := 10e6 / 8 / 5 // bytes per request
	if avg > upper*1.15 {
		t.Fatalf("average price %.0f exceeds upper bound %.0f", avg, upper)
	}
	if avg < upper*0.3 {
		t.Fatalf("average price %.0f implausibly below bound %.0f (clients not saturating?)", avg, upper)
	}
}

func TestOffModeDropsWhenBusy(t *testing.T) {
	r := newRig(t, rigConfig{
		mode: ModeOff, capacity: 2, nClients: 3,
		clientCfg: clients.Config{Lambda: 10, Window: 4, Good: true},
	})
	r.start()
	r.loop.Run(30 * time.Second)
	served, failed := 0, 0
	for _, o := range r.outcomes {
		if o.Served {
			served++
		} else {
			failed++
		}
		if o.PaidBytes != 0 {
			t.Fatal("OFF mode must never trigger payments")
		}
	}
	if served == 0 || failed == 0 {
		t.Fatalf("served=%d failed=%d, want both nonzero", served, failed)
	}
	// Service rate bounded by capacity.
	if served > 2*30+10 {
		t.Fatalf("served %d exceeds capacity", served)
	}
}

func TestRandomDropModeServesUnderOverload(t *testing.T) {
	r := newRig(t, rigConfig{
		mode: ModeRandomDrop, capacity: 5, nClients: 3,
		clientCfg: clients.Config{Lambda: 10, Window: 4, Good: true},
	})
	r.start()
	r.loop.Run(30 * time.Second)
	if got := r.served(); got < 60 {
		t.Fatalf("served %d with c=5 over 30s, want ~150ish", got)
	}
	st := r.thinner.RandomDrop().Stats()
	if st.Evicted == 0 {
		t.Fatal("no retries issued under overload")
	}
}

func TestPaymentTimeMeasured(t *testing.T) {
	r := newRig(t, rigConfig{
		mode: ModeAuction, capacity: 2, nClients: 2,
		clientCfg: clients.Config{Lambda: 5, Window: 2, Good: true},
	})
	r.start()
	r.loop.Run(30 * time.Second)
	var withPay int
	for _, o := range r.outcomes {
		if o.Served && o.PayTime > 0 {
			withPay++
			if o.PayTime > 30*time.Second {
				t.Fatalf("absurd pay time %v", o.PayTime)
			}
		}
	}
	if withPay == 0 {
		t.Fatal("no served request recorded a payment time")
	}
}

func TestWinnerPaymentChannelTerminated(t *testing.T) {
	// After the run, no client should still be paying: all channels
	// get closed on wins/evictions, and stats should show waste only
	// within reason.
	r := newRig(t, rigConfig{
		mode: ModeAuction, capacity: 2, nClients: 2,
		clientCfg: clients.Config{Lambda: 5, Window: 2, Good: true},
	})
	r.start()
	r.loop.Run(20 * time.Second)
	for _, wl := range r.wls {
		wl.Stop()
	}
	r.loop.Run(60 * time.Second) // drain
	// All outcomes reported; ledger near-empty (only in-flight stragglers).
	if n := r.thinner.Auction().Table().Size(); n > 4 {
		t.Fatalf("ledger still holds %d entries after drain", n)
	}
}

func TestBystanderDownloadsBaseline(t *testing.T) {
	// Web server + bystander alone on a 1 Mbit/s, 100 ms link: a 50 KB
	// download should take ~0.6-1.5s (slow start dominated).
	loop := sim.NewLoop(9)
	n := netsim.New(loop)
	h := n.AddNode("H", nil)
	s := n.AddNode("S", nil)
	n.Connect(h, s, 1e6, 100*time.Millisecond, 50*1500)
	n.ComputeRoutes()
	hs := tcpsim.NewStack(n, h, tcpsim.Options{})
	ss := tcpsim.NewStack(n, s, tcpsim.Options{})
	NewWebServerApp(ss)
	by := NewBystanderApp(hs, s, 50_000)
	by.MaxDownloads = 10
	by.Start()
	loop.Run(120 * time.Second)
	if by.Completed != 10 {
		t.Fatalf("completed %d/10 downloads", by.Completed)
	}
	mean := by.Latencies.Mean()
	if mean < 0.4 || mean > 3 {
		t.Fatalf("mean 50KB download latency %.2fs, want ~0.6-1.5s", mean)
	}
}

func TestHeteroModeServesAndCharges(t *testing.T) {
	loop := sim.NewLoop(11)
	n := netsim.New(loop)
	sw := n.AddNode("switch", nil)
	tn := n.AddNode("thinner", nil)
	n.Connect(sw, tn, 100e6, 250*time.Microsecond, 256*1500)
	cn := n.AddNode("client", nil)
	n.Connect(cn, sw, 2e6, 250*time.Microsecond, 50*1500)
	n.ComputeRoutes()

	clock := simclock.New(loop)
	srv := server.New(clock, server.Config{Capacity: 2, Seed: 5})
	ts := tcpsim.NewStack(n, tn, tcpsim.Options{})
	app := NewThinnerApp(ts, clock, srv, ThinnerConfig{
		Mode:   ModeHetero,
		Hetero: core.HeteroConfig{Tau: 100 * time.Millisecond},
	})
	var admitted []core.RequestID
	app.OnAdmit = func(id core.RequestID, paid int64) { admitted = append(admitted, id) }

	var nextID uint64
	gen := func() core.RequestID { nextID++; return core.RequestID(nextID) }
	wl := clients.New(clock, clients.Config{Lambda: 5, Window: 2, Seed: 3}, gen)
	cs := tcpsim.NewStack(n, cn, tcpsim.Options{})
	capp := NewClientApp(cs, wl, tn, Sizes{}, ClientAppConfig{})
	var served int
	capp.OnOutcome = func(o RequestOutcome) {
		if o.Served {
			served++
		}
	}
	wl.Start()
	loop.Run(30 * time.Second)
	if served < 20 {
		t.Fatalf("hetero mode served %d, want ~60 (capacity-bound)", served)
	}
	if len(admitted) != served {
		t.Fatalf("admissions %d != served %d", len(admitted), served)
	}
}
