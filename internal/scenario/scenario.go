// Package scenario assembles complete speak-up deployments inside the
// simulator — clients, access links, optional shared bottlenecks, the
// thinner, and the emulated server — runs them, and aggregates the
// metrics the paper's evaluation reports (§7): server allocation,
// fraction of good requests served, payment times, and prices.
//
// The standard topology mirrors the paper's Emulab setup: every client
// sits behind its own access link into a LAN switch; the switch
// connects to the thinner over a gigabit trunk (the paper's thinner
// had gigabit interfaces, so the shaped access links are the only
// bottlenecks). Client groups may instead sit behind a shared
// bottleneck link (§7.6), and a bystander web transfer can share that
// bottleneck (§7.7).
package scenario

import (
	"fmt"
	"time"

	"speakup/internal/adversary"
	"speakup/internal/appsim"
	"speakup/internal/clients"
	"speakup/internal/core"
	"speakup/internal/faults"
	"speakup/internal/metrics"
	"speakup/internal/netsim"
	"speakup/internal/server"
	"speakup/internal/sim"
	"speakup/internal/simclock"
	"speakup/internal/tcpsim"
	"speakup/internal/trace"
)

// ClientGroup describes a set of identical clients.
type ClientGroup struct {
	// Name labels the group in results (defaults to good-N/bad-N).
	Name string
	// Count is the number of clients.
	Count int
	// Good selects the workload defaults: good clients use λ=2, w=1;
	// bad clients use λ=40, w=20 (§7.1). Mutually exclusive with
	// Strategy, which defines attacker behaviour on its own.
	Good bool
	// Strategy names an adversary profile driving this group's
	// clients ("onoff", "mimic", "defector", "flood", "adaptive",
	// "poisson" — see internal/adversary); empty keeps the fixed
	// Poisson(Lambda)/Window behaviour selected by Good. Lambda,
	// Window, and Work become overrides of the profile's defaults.
	Strategy string
	// Aggressiveness scales the named Strategy's nominal demand
	// (request rate and window); 0 means 1. Only valid with Strategy.
	Aggressiveness float64
	// Bandwidth is the access-link rate in bits/s. Default 2 Mbit/s.
	Bandwidth float64
	// LinkDelay is the one-way access-link delay. Default 250µs (LAN).
	LinkDelay time.Duration
	// Lambda overrides the Poisson rate (0 = default by Good).
	Lambda float64
	// Window overrides the outstanding-request window (0 = default).
	Window int
	// Bottleneck places the group behind cfg.Bottlenecks[Bottleneck-1];
	// 0 means directly on the LAN.
	Bottleneck int
	// PayConns opens parallel payment connections per request (§3.4
	// gaming; default 1).
	PayConns int
	// Work fixes this group's per-request service time (0 = the
	// server default U[0.9/c, 1.1/c]). Used for heterogeneous-request
	// experiments (§5): attackers send intentionally hard requests.
	Work time.Duration

	// RetryBudget re-issues failed requests up to this many times with
	// jittered exponential backoff (RetryBase/RetryCap; zeros take the
	// faults-package defaults). Zero fails immediately — the original
	// model. Fault scenarios harden their clients with this.
	RetryBudget int
	RetryBase   time.Duration
	RetryCap    time.Duration
	// Deadline abandons a request still outstanding after this long,
	// tearing down its connections and freeing the client's window
	// slot (the abandoned attempt retries if budget remains). Zero
	// disables per-request deadlines.
	Deadline time.Duration
}

func (g ClientGroup) withDefaults(idx int) ClientGroup {
	if g.Bandwidth == 0 {
		g.Bandwidth = 2e6
	}
	if g.LinkDelay == 0 {
		g.LinkDelay = 250 * time.Microsecond
	}
	// With a Strategy, zero Lambda/Window mean "the profile's
	// defaults" and must survive to spec construction unfilled.
	if g.Strategy == "" {
		if g.Lambda == 0 {
			if g.Good {
				g.Lambda = 2
			} else {
				g.Lambda = 40
			}
		}
		if g.Window == 0 {
			if g.Good {
				g.Window = 1
			} else {
				g.Window = 20
			}
		}
	}
	if g.Name == "" {
		kind := "bad"
		switch {
		case g.Strategy != "":
			kind = g.Strategy
		case g.Good:
			kind = "good"
		}
		g.Name = fmt.Sprintf("%s-%d", kind, idx)
	}
	return g
}

// spec translates the group's strategy declaration for the adversary
// registry; zero overrides fall through to the profile's defaults.
func (g ClientGroup) spec() adversary.Spec {
	return adversary.Spec{
		Name:           g.Strategy,
		Aggressiveness: g.Aggressiveness,
		Lambda:         g.Lambda,
		Window:         g.Window,
		Work:           g.Work,
	}
}

// Bottleneck is a shared link between a set of clients and the LAN.
type Bottleneck struct {
	Rate       float64
	Delay      time.Duration
	QueueBytes int // default 50 full-size packets
}

// Bystander adds the Figure 9 web host H: it shares bottleneck 1 with
// the clients there and repeatedly downloads FileSize bytes from a
// separate web server on the LAN.
type Bystander struct {
	FileSize     int
	MaxDownloads int // 0 = unlimited
	Bandwidth    float64
	LinkDelay    time.Duration
}

// Config describes one experiment run.
type Config struct {
	Seed     int64
	Duration time.Duration
	// Warmup discards request outcomes before this offset (default 0:
	// measure everything, like the paper).
	Warmup   time.Duration
	Capacity float64 // server capacity c in requests/s
	Mode     appsim.Mode
	Groups   []ClientGroup

	Bottlenecks []Bottleneck
	BystanderH  *Bystander

	// Trunk is the LAN between switch and thinner. Defaults: 1 Gbit/s
	// (the paper's thinner had gigabit interfaces, so client access
	// links are the only bottlenecks), 250µs, 256 packets of queue.
	TrunkRate  float64
	TrunkDelay time.Duration
	TrunkQueue int
	// AccessQueue is each access link's queue in bytes (default 50
	// packets).
	AccessQueue int

	Sizes appsim.Sizes
	// Thinner tunes the auction policy; Hetero, RandomDrop, and
	// Profiler tune their modes.
	Thinner    core.Config
	Hetero     core.HeteroConfig
	RandomDrop core.RandomDropConfig
	Profiler   core.ProfilerConfig

	// Trace attaches a request-lifecycle tracer (internal/trace) to
	// the auction thinner. Observation only — a run with tracing on is
	// event-for-event identical to one without, which the
	// tracing-noop golden test enforces. Not part of the declarative
	// schema (internal/config); set it programmatically.
	Trace *trace.Tracer

	// Faults is the deterministic fault-injection plan (internal/faults):
	// link loss/jitter/partitions and origin stalls/crashes scheduled
	// through the event loop. Empty (the default) injects nothing and
	// adds no events, keeping fault-free runs byte-identical.
	Faults faults.Plan

	// Transport selects the listener live load generators drive: ""
	// or "http" (the default GET/POST front) or "wire" (the binary
	// framed payment transport; requires thinnerd's -wire-addr). The
	// simulator models payment at the message level and ignores it.
	Transport string
}

func (c Config) withDefaults() Config {
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.TrunkRate == 0 {
		c.TrunkRate = 1e9
	}
	if c.TrunkDelay == 0 {
		c.TrunkDelay = 250 * time.Microsecond
	}
	if c.TrunkQueue == 0 {
		c.TrunkQueue = 256 * 1500
	}
	if c.AccessQueue == 0 {
		c.AccessQueue = 100 * 1500
	}
	// Copy before defaulting: callers may hand the same Groups,
	// Bottlenecks, or BystanderH to several Configs (sweep grids do),
	// and concurrent Runs must not write defaults into shared memory.
	c.Groups = append([]ClientGroup(nil), c.Groups...)
	for i := range c.Groups {
		c.Groups[i] = c.Groups[i].withDefaults(i)
	}
	c.Bottlenecks = append([]Bottleneck(nil), c.Bottlenecks...)
	for i := range c.Bottlenecks {
		if c.Bottlenecks[i].QueueBytes == 0 {
			c.Bottlenecks[i].QueueBytes = 50 * 1500
		}
	}
	if c.BystanderH != nil {
		b := *c.BystanderH
		c.BystanderH = &b
	}
	c.Faults = append(faults.Plan(nil), c.Faults...)
	return c
}

// Validate reports configuration errors that Run would otherwise hit
// as panics deep inside topology construction: a non-positive server
// capacity, group bottleneck references out of range, a bystander
// without a bottleneck to share, and bad adversary declarations
// (unknown strategy names, invalid strategy knobs, or a group that
// sets both Good and Strategy — the latter used to silently keep the
// good-client λ/w defaults while running attacker code). The sweep
// engine validates every grid cell before fanning work out to its
// workers.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("scenario: Capacity must be positive, got %g", c.Capacity)
	}
	switch c.Transport {
	case "", "http", "wire":
	default:
		return fmt.Errorf("scenario: Transport must be \"http\" or \"wire\", got %q", c.Transport)
	}
	for i, g := range c.Groups {
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("#%d", i)
		}
		if g.Bottleneck < 0 || g.Bottleneck > len(c.Bottlenecks) {
			return fmt.Errorf("scenario: group %q references bottleneck %d, have %d",
				name, g.Bottleneck, len(c.Bottlenecks))
		}
		if g.Strategy != "" {
			if g.Good {
				return fmt.Errorf("scenario: group %q sets both Good and Strategy %q; adversary strategies define bad-client behaviour — drop one",
					name, g.Strategy)
			}
			if err := g.spec().Validate(); err != nil {
				return fmt.Errorf("scenario: group %q: %v", name, err)
			}
		} else if g.Aggressiveness != 0 {
			return fmt.Errorf("scenario: group %q sets Aggressiveness %g without a Strategy",
				name, g.Aggressiveness)
		}
	}
	if c.BystanderH != nil && len(c.Bottlenecks) == 0 {
		return fmt.Errorf("scenario: BystanderH requires a bottleneck")
	}
	if len(c.Faults) > 0 {
		// Fault targets name groups by their (possibly defaulted) name.
		names := make(map[string]bool, len(c.Groups)*2)
		for i, g := range c.Groups {
			if g.Name != "" {
				names[g.Name] = true
			}
			names[g.withDefaults(i).Name] = true
		}
		if err := c.Faults.Validate(names, len(c.Bottlenecks)); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if c.Mode == appsim.ModeHetero {
			for _, ev := range c.Faults {
				if ev.Kind == faults.OriginStall || ev.Kind == faults.OriginCrash {
					return fmt.Errorf("scenario: %s faults are not supported in hetero mode (suspend/resume accounting assumes an unfrozen origin)", ev.Kind)
				}
			}
		}
	}
	return nil
}

// GroupResult aggregates one group's outcomes.
type GroupResult struct {
	Name      string
	Good      bool
	Clients   int
	Generated uint64
	Issued    uint64
	Served    uint64
	Failed    uint64
	Denied    uint64
	Retried   uint64 // failed attempts re-issued under the retry budget
	Abandoned uint64 // attempts that hit the per-request deadline

	Latencies metrics.Sample // served requests, seconds
	PayTimes  metrics.Sample // served requests that paid, seconds
	Prices    metrics.Sample // thinner-side winning bids, bytes
	PaidBytes int64          // client-side payment bytes pushed
	// ServedWork is the total server time this group consumed —
	// completed requests plus partial service burned before aborts
	// (the resource that matters under §5 attacks).
	ServedWork time.Duration
}

// Offered returns issued + denied: the demand actually presented.
func (g *GroupResult) Offered() uint64 { return g.Issued + g.Denied }

// FractionServed returns Served/Offered (0 when no demand).
func (g *GroupResult) FractionServed() float64 {
	if g.Offered() == 0 {
		return 0
	}
	return float64(g.Served) / float64(g.Offered())
}

// Result is a completed run.
type Result struct {
	Config   Config
	Groups   []GroupResult
	Duration time.Duration

	ServedGood, ServedBad uint64
	// GoodAllocation is the fraction of processed requests that were
	// good — the paper's "fraction of server allocated to good
	// clients".
	GoodAllocation float64
	// FractionGoodServed is the paper's "fraction of good requests
	// served" (served / offered).
	FractionGoodServed float64

	ThinnerStats core.Stats
	ServerStats  server.Stats

	// BystanderLatencies holds Figure 9 download times (seconds).
	BystanderLatencies *metrics.Sample

	Events uint64 // simulator events processed (for reporting)
}

// Run builds the deployment, simulates it for cfg.Duration, and
// returns aggregated results. It panics on configurations Validate
// rejects.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	loop := sim.NewLoop(cfg.Seed)
	loop.Grow(4096) // pre-size the event arena: no growth during the run
	n := netsim.New(loop)
	clock := simclock.New(loop)

	// --- topology ---
	// Link references are captured as they are built so a fault plan
	// can aim at them by name; with no plan the captures are unused.
	targets := faultTargets{access: make(map[string][]*netsim.Link)}
	sw := n.AddNode("switch", nil)
	tn := n.AddNode("thinner", nil)
	t1, t2 := n.Connect(sw, tn, cfg.TrunkRate, cfg.TrunkDelay, cfg.TrunkQueue)
	targets.trunk = []*netsim.Link{t1, t2}

	inner := make([]netsim.NodeID, len(cfg.Bottlenecks))
	for i, b := range cfg.Bottlenecks {
		inner[i] = n.AddNode(fmt.Sprintf("bottleneck-%d", i+1), nil)
		b1, b2 := n.Connect(inner[i], sw, b.Rate, b.Delay, b.QueueBytes)
		targets.bottleneck = append(targets.bottleneck, []*netsim.Link{b1, b2})
	}

	type clientSlot struct {
		group int
		node  netsim.NodeID
	}
	var slots []clientSlot
	for gi, g := range cfg.Groups {
		for i := 0; i < g.Count; i++ {
			cn := n.AddNode(fmt.Sprintf("%s-c%d", g.Name, i), nil)
			attach := sw
			if g.Bottleneck > 0 {
				attach = inner[g.Bottleneck-1]
			}
			a1, a2 := n.Connect(cn, attach, g.Bandwidth, g.LinkDelay, cfg.AccessQueue)
			targets.access[g.Name] = append(targets.access[g.Name], a1, a2)
			slots = append(slots, clientSlot{group: gi, node: cn})
		}
	}

	var webNode, bystanderNode netsim.NodeID
	if cfg.BystanderH != nil {
		b := cfg.BystanderH
		if b.Bandwidth == 0 {
			b.Bandwidth = 2e6
		}
		if b.LinkDelay == 0 {
			b.LinkDelay = 250 * time.Microsecond
		}
		webNode = n.AddNode("webserver", nil)
		n.Connect(webNode, sw, 100e6, 250*time.Microsecond, cfg.TrunkQueue)
		bystanderNode = n.AddNode("bystander", nil)
		n.Connect(bystanderNode, inner[0], b.Bandwidth, b.LinkDelay, cfg.AccessQueue)
	}
	n.ComputeRoutes()

	// --- adversary strategies ---
	// One cohort per strategy group (shared bandwidth budget and
	// coupon-collection state); one strategy instance per client,
	// created in the slots loop below. None of this allocates or runs
	// when no group names a Strategy, so strategy-free configs remain
	// byte-identical to the pre-adversary engine.
	hasStrategy := false
	for _, g := range cfg.Groups {
		if g.Strategy != "" {
			hasStrategy = true
		}
	}
	var cohorts []*adversary.Cohort
	var stratOf map[core.RequestID]adversary.Strategy // live ids of strategy clients
	if hasStrategy {
		cohorts = make([]*adversary.Cohort, len(cfg.Groups))
		for gi, g := range cfg.Groups {
			if g.Strategy != "" {
				cohorts[gi] = adversary.NewCohort(g.spec(), g.Count)
			}
		}
		stratOf = make(map[core.RequestID]adversary.Strategy)
	}
	var lastPrice int64 // last winning bid: the public price observable

	// --- thinner + server ---
	owner := make(map[core.RequestID]int) // id -> group index
	srvCfg := server.Config{Capacity: cfg.Capacity, Seed: cfg.Seed + 9999}
	groupHasWork := false
	for _, g := range cfg.Groups {
		if g.Work > 0 {
			groupHasWork = true
		}
	}
	if groupHasWork {
		fallback := time.Duration(float64(time.Second) / cfg.Capacity)
		srvCfg.Work = func(id core.RequestID) time.Duration {
			if st, ok := stratOf[id]; ok {
				if w := st.Work(); w > 0 {
					return w
				}
			}
			if gi, ok := owner[id]; ok && cfg.Groups[gi].Work > 0 {
				return cfg.Groups[gi].Work
			}
			return fallback
		}
	}
	srv := server.New(clock, srvCfg)
	tstack := tcpsim.NewStack(n, tn, tcpsim.Options{})
	rdCfg := cfg.RandomDrop
	if rdCfg.Capacity == 0 {
		rdCfg.Capacity = cfg.Capacity
	}
	thApp := appsim.NewThinnerApp(tstack, clock, srv, appsim.ThinnerConfig{
		Mode:       cfg.Mode,
		Sizes:      cfg.Sizes,
		Thinner:    cfg.Thinner,
		RandomDrop: rdCfg,
		Hetero:     cfg.Hetero,
		Profiler:   cfg.Profiler,
		Trace:      cfg.Trace,
	})

	// --- fault plan ---
	if len(cfg.Faults) > 0 {
		scheduleFaults(loop, cfg, targets, srv, thApp)
	}

	// --- clients ---
	res := &Result{Config: cfg, Duration: cfg.Duration}
	res.Groups = make([]GroupResult, len(cfg.Groups))
	for gi, g := range cfg.Groups {
		res.Groups[gi] = GroupResult{Name: g.Name, Good: g.Good, Clients: g.Count}
	}

	var nextID uint64
	genFor := func(group int, strat adversary.Strategy) func() core.RequestID {
		return func() core.RequestID {
			nextID++
			id := core.RequestID(nextID)
			owner[id] = group
			if strat != nil {
				stratOf[id] = strat
			}
			return id
		}
	}

	thApp.OnAdmit = func(id core.RequestID, paid int64) {
		lastPrice = paid
		if loop.Now() < cfg.Warmup {
			return
		}
		if gi, ok := owner[id]; ok {
			res.Groups[gi].Prices.Add(float64(paid))
		}
	}
	srv.Observer = func(id core.RequestID, work time.Duration) {
		if loop.Now() < cfg.Warmup {
			return
		}
		if gi, ok := owner[id]; ok {
			res.Groups[gi].ServedWork += work
		}
	}

	var workloads []*clients.Client
	for si, slot := range slots {
		g := cfg.Groups[slot.group]
		var strat adversary.Strategy
		if g.Strategy != "" {
			strat = g.spec().New(cohorts[slot.group])
		}
		stack := tcpsim.NewStack(n, slot.node, tcpsim.Options{})
		wl := clients.New(clock, clients.Config{
			Lambda:       g.Lambda,
			Window:       g.Window,
			Good:         g.Good,
			Seed:         cfg.Seed*1_000_003 + int64(si),
			Pacer:        strat,
			RetryBudget:  g.RetryBudget,
			RetryBackoff: faults.Backoff{Base: g.RetryBase, Cap: g.RetryCap},
			Deadline:     g.Deadline,
		}, genFor(slot.group, strat))
		app := appsim.NewClientApp(stack, wl, tn, cfg.Sizes, appsim.ClientAppConfig{
			PayConns: g.PayConns,
			Payer:    strat,
		})
		gi := slot.group
		if strat != nil {
			wl.OnDenial = func(id core.RequestID) {
				strat.Observe(adversary.Outcome{Denied: true, Now: clock.Now()})
				delete(owner, id)
				delete(stratOf, id)
			}
		}
		app.OnOutcome = func(o appsim.RequestOutcome) {
			if strat != nil {
				strat.Observe(adversary.Outcome{
					Served: o.Served,
					Price:  lastPrice,
					Paid:   o.PaidBytes,
					Now:    loop.Now(),
				})
				delete(stratOf, o.ID)
			}
			if loop.Now() < cfg.Warmup {
				delete(owner, o.ID)
				return
			}
			gr := &res.Groups[gi]
			if o.Served {
				gr.Served++
				gr.Latencies.AddDuration(o.Latency)
				if o.PayTime > 0 {
					gr.PayTimes.AddDuration(o.PayTime)
				}
			} else {
				gr.Failed++
			}
			gr.PaidBytes += o.PaidBytes
			delete(owner, o.ID)
		}
		workloads = append(workloads, wl)
	}

	// --- bystander ---
	var bystander *appsim.BystanderApp
	if cfg.BystanderH != nil {
		NewWebServer := appsim.NewWebServerApp
		wstack := tcpsim.NewStack(n, webNode, tcpsim.Options{})
		NewWebServer(wstack)
		bstack := tcpsim.NewStack(n, bystanderNode, tcpsim.Options{})
		bystander = appsim.NewBystanderApp(bstack, webNode, cfg.BystanderH.FileSize)
		bystander.MaxDownloads = cfg.BystanderH.MaxDownloads
		bystander.Start()
	}

	// --- run ---
	for _, wl := range workloads {
		wl.Start()
	}
	loop.Run(cfg.Duration)

	// --- aggregate ---
	for i, wl := range workloads {
		gi := slots[i].group
		st := wl.Stats()
		gr := &res.Groups[gi]
		gr.Generated += st.Generated
		gr.Issued += st.Issued
		gr.Denied += st.Denied
		gr.Retried += st.Retried
		gr.Abandoned += st.Abandoned
	}
	var offeredGood uint64
	for _, gr := range res.Groups {
		if gr.Good {
			res.ServedGood += gr.Served
			offeredGood += gr.Offered()
		} else {
			res.ServedBad += gr.Served
		}
	}
	if total := res.ServedGood + res.ServedBad; total > 0 {
		res.GoodAllocation = float64(res.ServedGood) / float64(total)
	}
	if offeredGood > 0 {
		res.FractionGoodServed = float64(res.ServedGood) / float64(offeredGood)
	}
	switch cfg.Mode {
	case appsim.ModeAuction:
		res.ThinnerStats = thApp.Auction().Stats()
	case appsim.ModeOff:
		res.ThinnerStats = thApp.Off().Stats()
	case appsim.ModeHetero:
		res.ThinnerStats = thApp.Hetero().Stats()
	case appsim.ModeRandomDrop:
		res.ThinnerStats = thApp.RandomDrop().Stats()
	case appsim.ModeProfiling:
		res.ThinnerStats = thApp.Profiler().Stats()
	}
	res.ServerStats = srv.Stats()
	if bystander != nil {
		res.BystanderLatencies = &bystander.Latencies
	}
	res.Events = loop.Processed()
	return res
}
