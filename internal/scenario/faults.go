package scenario

import (
	"strconv"
	"strings"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/faults"
	"speakup/internal/netsim"
	"speakup/internal/server"
	"speakup/internal/sim"
)

// faultTargets maps the fault plan's symbolic targets onto the links
// Run built. Access links are keyed by (defaulted) group name; every
// entry holds both directions of each duplex pair.
type faultTargets struct {
	trunk      []*netsim.Link
	access     map[string][]*netsim.Link
	bottleneck [][]*netsim.Link
}

func (t faultTargets) resolve(target string) []*netsim.Link {
	if target == faults.TargetTrunk {
		return t.trunk
	}
	if g, ok := strings.CutPrefix(target, faults.TargetAccessPrefix); ok {
		return t.access[g]
	}
	if s, ok := strings.CutPrefix(target, faults.TargetBottleneckPrefix); ok {
		n, _ := strconv.Atoi(s)
		if n >= 1 && n <= len(t.bottleneck) {
			return t.bottleneck[n-1]
		}
	}
	return nil // Validate rejected anything unresolvable before Run
}

// scheduleFaults arms the plan on the event loop. Everything here is
// a cold path: closures per event are fine, and each link fault draws
// from its own per-event seeded RNG so the plan is a pure function of
// (scenario seed, event index, event seed). Overlapping windows on
// the same link are last-writer-wins; each revert clears the link.
func scheduleFaults(loop *sim.Loop, cfg Config, t faultTargets, srv *server.Server, thApp *appsim.ThinnerApp) {
	for i, ev := range cfg.Faults {
		ev := ev
		seed := cfg.Seed ^ (int64(i+1) * 0x6a09e667f3bcc909) ^ ev.Seed
		switch ev.Kind {
		case faults.LinkLoss, faults.LinkJitter, faults.Partition:
			links := t.resolve(ev.Target)
			var fs netsim.FaultState
			switch ev.Kind {
			case faults.LinkLoss:
				fs.Loss = ev.Magnitude
			case faults.LinkJitter:
				fs.Jitter = time.Duration(ev.Magnitude * float64(time.Second))
			case faults.Partition:
				fs.Down = true
			}
			loop.Schedule(ev.At, func() {
				for k, l := range links {
					l.SetFault(fs, seed+int64(k))
				}
			})
			loop.Schedule(ev.At+ev.Duration, func() {
				for _, l := range links {
					l.ClearFault()
				}
			})
		case faults.OriginStall:
			loop.Schedule(ev.At, func() {
				srv.Stall(ev.Duration)
				if th := thApp.Auction(); th != nil {
					th.SetOriginStalled(true)
				}
			})
			loop.Schedule(ev.At+ev.Duration, func() {
				if th := thApp.Auction(); th != nil {
					th.SetOriginStalled(false)
				}
			})
		case faults.OriginCrash:
			loop.Schedule(ev.At, func() {
				// Brown out first: Crash fires srv.Failed, whose
				// ServerDone must see HealthStalled and defer the
				// auction until the origin restarts.
				if th := thApp.Auction(); th != nil {
					th.SetOriginStalled(true)
				}
				srv.Crash(ev.Duration)
			})
			loop.Schedule(ev.At+ev.Duration, func() {
				if th := thApp.Auction(); th != nil {
					th.SetOriginStalled(false)
				}
			})
		}
	}
}
