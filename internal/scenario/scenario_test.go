package scenario

import (
	"strings"
	"testing"
	"time"

	"speakup/internal/adversary"
	"speakup/internal/appsim"
	"speakup/internal/core"
)

// mix builds the standard 2 Mbit/s-per-client mix with ng good and nb
// bad clients.
func mix(ng, nb int) []ClientGroup {
	return []ClientGroup{
		{Count: ng, Good: true},
		{Count: nb, Good: false},
	}
}

func TestSpeakupProportionalAllocation(t *testing.T) {
	// 5 good + 5 bad, equal bandwidth, overloaded server: speak-up
	// should split the server roughly evenly (G/(G+B) = 0.5).
	res := Run(Config{
		Seed: 1, Duration: 60 * time.Second, Capacity: 20,
		Mode: appsim.ModeAuction, Groups: mix(5, 5),
	})
	if res.GoodAllocation < 0.35 || res.GoodAllocation > 0.65 {
		t.Fatalf("good allocation = %.3f, want ~0.5", res.GoodAllocation)
	}
	// The server must be kept busy (overload).
	total := res.ServedGood + res.ServedBad
	if total < uint64(0.8*20*60) {
		t.Fatalf("only %d requests served; server idling", total)
	}
}

func TestOffModeBadClientsDominate(t *testing.T) {
	res := Run(Config{
		Seed: 1, Duration: 60 * time.Second, Capacity: 20,
		Mode: appsim.ModeOff, Groups: mix(5, 5),
	})
	// Bad clients issue ~20x more requests; random service should give
	// the good clients a small share.
	if res.GoodAllocation > 0.25 {
		t.Fatalf("good allocation without speak-up = %.3f, want << 0.5", res.GoodAllocation)
	}
}

func TestSpeakupBeatsOff(t *testing.T) {
	on := Run(Config{Seed: 2, Duration: 45 * time.Second, Capacity: 20,
		Mode: appsim.ModeAuction, Groups: mix(5, 5)})
	off := Run(Config{Seed: 2, Duration: 45 * time.Second, Capacity: 20,
		Mode: appsim.ModeOff, Groups: mix(5, 5)})
	if on.GoodAllocation <= off.GoodAllocation {
		t.Fatalf("speak-up (%.3f) must beat OFF (%.3f)", on.GoodAllocation, off.GoodAllocation)
	}
	if on.GoodAllocation < 2*off.GoodAllocation {
		t.Fatalf("speak-up gain too small: %.3f vs %.3f", on.GoodAllocation, off.GoodAllocation)
	}
}

func TestAdequateCapacityServesAllGood(t *testing.T) {
	// c well above c_id = g(1+B/G): 5 good clients offer ~10 req/s,
	// B=G so c_id=20; c=40 leaves slack for the adversarial advantage.
	res := Run(Config{
		Seed: 3, Duration: 60 * time.Second, Capacity: 40,
		Mode: appsim.ModeAuction, Groups: mix(5, 5),
	})
	if res.FractionGoodServed < 0.9 {
		t.Fatalf("fraction good served = %.3f at c=2*c_id, want ~1", res.FractionGoodServed)
	}
}

func TestUnderprovisionedProportionalShare(t *testing.T) {
	// c = c_id/2: good clients should get roughly half their demand.
	res := Run(Config{
		Seed: 4, Duration: 60 * time.Second, Capacity: 10,
		Mode: appsim.ModeAuction, Groups: mix(5, 5),
	})
	if res.FractionGoodServed < 0.25 || res.FractionGoodServed > 0.75 {
		t.Fatalf("fraction good served = %.3f at c=c_id/2, want ~0.5", res.FractionGoodServed)
	}
}

func TestBandwidthProportionalAcrossGroups(t *testing.T) {
	// Two all-good groups, one with 3x the bandwidth of the other,
	// both saturating: allocation should track bandwidth share.
	res := Run(Config{
		Seed: 5, Duration: 60 * time.Second, Capacity: 5,
		Mode: appsim.ModeAuction,
		Groups: []ClientGroup{
			{Name: "slow", Count: 3, Good: true, Bandwidth: 0.5e6, Lambda: 10, Window: 4},
			{Name: "fast", Count: 3, Good: true, Bandwidth: 1.5e6, Lambda: 10, Window: 4},
		},
	})
	slow, fast := res.Groups[0].Served, res.Groups[1].Served
	if slow == 0 || fast == 0 {
		t.Fatalf("starvation: slow=%d fast=%d", slow, fast)
	}
	ratio := float64(fast) / float64(slow)
	if ratio < 1.8 || ratio > 4.5 {
		t.Fatalf("fast/slow service ratio = %.2f, want ~3 (bandwidth-proportional)", ratio)
	}
}

func TestSharedBottleneckCrowdsOutGood(t *testing.T) {
	// Good and bad behind a 4 Mbit/s bottleneck plus direct clients:
	// the bottlenecked good clients suffer; server keeps serving.
	res := Run(Config{
		Seed: 6, Duration: 45 * time.Second, Capacity: 20,
		Mode:        appsim.ModeAuction,
		Bottlenecks: []Bottleneck{{Rate: 4e6, Delay: time.Millisecond}},
		Groups: []ClientGroup{
			{Name: "bn-good", Count: 2, Good: true, Bottleneck: 1},
			{Name: "bn-bad", Count: 2, Good: false, Bottleneck: 1},
			{Name: "direct-good", Count: 2, Good: true},
			{Name: "direct-bad", Count: 2, Good: false},
		},
	})
	bnGood := &res.Groups[0]
	directGood := &res.Groups[2]
	if directGood.FractionServed() == 0 {
		t.Fatal("direct good clients starved entirely")
	}
	// Bottlenecked good clients do worse than direct ones.
	if bnGood.FractionServed() > directGood.FractionServed() {
		t.Fatalf("bottlenecked good (%.3f) outperformed direct good (%.3f)",
			bnGood.FractionServed(), directGood.FractionServed())
	}
}

func TestBystanderLatencyInflation(t *testing.T) {
	// Fig 9 shape at small scale: downloads through a bottleneck shared
	// with speak-up uploads take several times longer than alone.
	base := Run(Config{
		Seed: 7, Duration: 60 * time.Second, Capacity: 2,
		Mode:        appsim.ModeAuction,
		Bottlenecks: []Bottleneck{{Rate: 1e6, Delay: 100 * time.Millisecond}},
		Groups: []ClientGroup{
			// No clients behind the bottleneck: bystander rides alone.
			{Name: "direct-good", Count: 2, Good: true},
		},
		BystanderH: &Bystander{FileSize: 16_000},
	})
	loaded := Run(Config{
		Seed: 7, Duration: 60 * time.Second, Capacity: 2,
		Mode:        appsim.ModeAuction,
		Bottlenecks: []Bottleneck{{Rate: 1e6, Delay: 100 * time.Millisecond}},
		Groups: []ClientGroup{
			{Name: "bn-good", Count: 4, Good: true, Bottleneck: 1},
			{Name: "direct-good", Count: 2, Good: true},
		},
		BystanderH: &Bystander{FileSize: 16_000},
	})
	if base.BystanderLatencies.N() == 0 || loaded.BystanderLatencies.N() == 0 {
		t.Fatalf("bystander completed no downloads: base=%d loaded=%d",
			base.BystanderLatencies.N(), loaded.BystanderLatencies.N())
	}
	b, l := base.BystanderLatencies.Mean(), loaded.BystanderLatencies.Mean()
	if l < 1.5*b {
		t.Fatalf("no collateral damage: base %.3fs vs loaded %.3fs", b, l)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 8, Duration: 20 * time.Second, Capacity: 10,
		Mode: appsim.ModeAuction, Groups: mix(2, 2)}
	a, b := Run(cfg), Run(cfg)
	if a.ServedGood != b.ServedGood || a.ServedBad != b.ServedBad {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d",
			a.ServedGood, a.ServedBad, b.ServedGood, b.ServedBad)
	}
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
}

func TestWarmupDiscardsEarlyOutcomes(t *testing.T) {
	full := Run(Config{Seed: 9, Duration: 30 * time.Second, Capacity: 10,
		Mode: appsim.ModeAuction, Groups: mix(2, 2)})
	warm := Run(Config{Seed: 9, Duration: 30 * time.Second, Capacity: 10,
		Warmup: 15 * time.Second,
		Mode:   appsim.ModeAuction, Groups: mix(2, 2)})
	if warm.ServedGood+warm.ServedBad >= full.ServedGood+full.ServedBad {
		t.Fatal("warmup did not discard early outcomes")
	}
}

func TestPricesReportedUnderOverload(t *testing.T) {
	res := Run(Config{Seed: 10, Duration: 45 * time.Second, Capacity: 10,
		Mode: appsim.ModeAuction, Groups: mix(3, 3)})
	good := &res.Groups[0]
	if good.Prices.N() == 0 {
		t.Fatal("no good-client prices recorded")
	}
	// Price cannot exceed what a 2 Mbit/s client can pay in a run.
	if good.Prices.Max() > 2e6/8*45 {
		t.Fatalf("price %v exceeds physical limit", good.Prices.Max())
	}
	if good.PayTimes.N() == 0 {
		t.Fatal("no payment times recorded")
	}
}

func TestRandomDropModeAlsoProtects(t *testing.T) {
	if testing.Short() {
		t.Skip("45s-virtual random-drop run; skipped with -short")
	}
	res := Run(Config{Seed: 11, Duration: 45 * time.Second, Capacity: 20,
		Mode: appsim.ModeRandomDrop, Groups: mix(5, 5)})
	// §3.2 should also produce a large good share (price r = (B+G)/c
	// retries; good clients can afford it).
	if res.GoodAllocation < 0.25 {
		t.Fatalf("random-drop good allocation = %.3f, want substantial", res.GoodAllocation)
	}
}

func TestValidateAdversaryGroups(t *testing.T) {
	base := Config{Capacity: 10, Groups: []ClientGroup{{Count: 1, Good: true}}}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	cases := []struct {
		name  string
		group ClientGroup
		want  string // substring of the expected error; "" = valid
	}{
		{"known strategy", ClientGroup{Count: 1, Strategy: "flood"}, ""},
		{"strategy with knobs", ClientGroup{Count: 1, Strategy: "onoff", Aggressiveness: 2}, ""},
		{"unknown strategy", ClientGroup{Count: 1, Strategy: "shrew"}, "unknown strategy"},
		{"good plus strategy", ClientGroup{Count: 1, Good: true, Strategy: "mimic"}, "both Good and Strategy"},
		{"negative aggressiveness", ClientGroup{Count: 1, Strategy: "flood", Aggressiveness: -1}, "Aggressiveness"},
		{"aggressiveness without strategy", ClientGroup{Count: 1, Aggressiveness: 2}, "without a Strategy"},
		{"negative lambda", ClientGroup{Count: 1, Strategy: "poisson", Lambda: -3}, "Lambda"},
	}
	for _, c := range cases {
		cfg := base
		cfg.Groups = []ClientGroup{{Count: 1, Good: true}, c.group}
		err := cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestStrategyGroupRuns drives every registered strategy through the
// full simulator stack against a good-client population and checks
// the run stays sane: attackers generate and are served something,
// good clients are not wiped out, and the group name defaults to the
// strategy.
func TestStrategyGroupRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack strategy runs; skipped with -short")
	}
	for _, name := range adversary.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := Run(Config{
				Seed: 5, Duration: 20 * time.Second, Capacity: 20,
				Mode: appsim.ModeAuction,
				Groups: []ClientGroup{
					{Count: 3, Good: true},
					{Count: 3, Strategy: name},
				},
			})
			atk := &res.Groups[1]
			if atk.Name != name+"-1" {
				t.Errorf("attacker group name = %q, want %q", atk.Name, name+"-1")
			}
			if atk.Generated == 0 || atk.Issued == 0 {
				t.Fatalf("%s generated %d / issued %d requests", name, atk.Generated, atk.Issued)
			}
			good := &res.Groups[0]
			if good.Served == 0 {
				t.Fatalf("%s wiped out the good clients entirely", name)
			}
			// Speak-up's core robustness claim: no strategy at equal
			// bandwidth should push the good clients far below their
			// bandwidth-proportional half.
			if res.GoodAllocation < 0.25 {
				t.Errorf("%s: good allocation %.3f, want >= 0.25 at equal bandwidth",
					name, res.GoodAllocation)
			}
		})
	}
}

// TestDefectorPaysLessButWinsLess: the defector's whole point is to
// underpay; the auction's whole point is that underpaying loses.
func TestDefectorPaysLessButWinsLess(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack strategy run; skipped with -short")
	}
	run := func(strategy string) *Result {
		return Run(Config{
			Seed: 8, Duration: 30 * time.Second, Capacity: 20,
			Mode: appsim.ModeAuction,
			Groups: []ClientGroup{
				{Count: 3, Good: true},
				{Count: 3, Strategy: strategy},
			},
		})
	}
	honest := run("poisson")
	cheat := run("defector")
	honestBad, cheatBad := &honest.Groups[1], &cheat.Groups[1]
	if cheatBad.PaidBytes >= honestBad.PaidBytes {
		t.Errorf("defector paid %d >= honest flood %d", cheatBad.PaidBytes, honestBad.PaidBytes)
	}
	if cheat.GoodAllocation < honest.GoodAllocation-0.05 {
		t.Errorf("defection improved the attack: good allocation %.3f vs %.3f honest",
			cheat.GoodAllocation, honest.GoodAllocation)
	}
}

// TestOnOffPulsesInScenario: the pulsing attacker's served requests
// all complete near the ON spans; the simulator sees real silence.
func TestOnOffPulsesInScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack strategy run; skipped with -short")
	}
	res := Run(Config{
		Seed: 9, Duration: 30 * time.Second, Capacity: 20,
		Mode: appsim.ModeAuction,
		Groups: []ClientGroup{
			{Count: 3, Good: true},
			{Count: 3, Strategy: "onoff"},
		},
	})
	atk := &res.Groups[1]
	if atk.Issued == 0 {
		t.Fatal("onoff never issued")
	}
	// A 0.25-duty pulser offers ~the same λ as poisson but compressed
	// into bursts; the backlog-denial count must reflect burst
	// overflow (arrivals above the burst window).
	if atk.Generated < 100 {
		t.Fatalf("onoff generated only %d arrivals", atk.Generated)
	}
}

// TestShardCountInvariance pins the PR 5 index contract the goldens
// rest on: auction winners and timeout evictions are computed from the
// bid table's incremental indexes (per-shard price heaps + tournament,
// orphan lists + inactivity wheel), and none of that may depend on how
// channels are sharded. A defector-heavy mix forces the eviction
// machinery to fire, and every statistic must be identical across
// shard counts.
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation; skipped in -short")
	}
	run := func(shards int) *Result {
		return Run(Config{
			Seed: 11, Duration: 90 * time.Second, Capacity: 10,
			Mode: appsim.ModeAuction,
			Groups: []ClientGroup{
				{Count: 3, Good: true},
				{Count: 3, Good: false, Strategy: "defector", Aggressiveness: 1},
				{Count: 2, Good: false, Strategy: "flood", Aggressiveness: 1},
			},
			Thinner: core.Config{Shards: shards},
		})
	}
	base := run(1)
	if base.ThinnerStats.Evicted == 0 {
		t.Fatal("mix produced no evictions; the invariance check is vacuous")
	}
	for _, shards := range []int{8, 64} {
		got := run(shards)
		if got.ServedGood != base.ServedGood || got.ServedBad != base.ServedBad ||
			got.Events != base.Events || got.ThinnerStats != base.ThinnerStats {
			t.Fatalf("shards=%d diverged from shards=1:\n  %+v vs\n  %+v (events %d vs %d)",
				shards, got.ThinnerStats, base.ThinnerStats, got.Events, base.Events)
		}
	}
}
