package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets covers HistBase to HistBase·2³¹ (~50µs to ~30h) in
// power-of-two steps.
const HistBuckets = 32

// HistBase is the upper bound of bucket 0.
const HistBase = 50 * time.Microsecond

// Hist is a lock-free log₂-bucketed latency recorder: Observe is two
// atomic adds, safe from any goroutine, so recording on a server hot
// path never serializes the traffic being measured. Quantiles resolve
// to the upper bound of the matching bucket (factor-of-two resolution
// — plenty for "did p99 blow up" questions); Max is exact.
//
// It is the server-side sibling of the load generator's client-side
// latency histogram (internal/loadgen aliases this type), and the
// shape /metrics renders as a Prometheus histogram.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // ns
	maxNs   atomic.Int64 // exact worst sample
}

// HistIndex returns the bucket index for a duration (exported for the
// exposition renderer and tests; bounds are HistBase << index).
func HistIndex(d time.Duration) int {
	if d <= HistBase {
		return 0
	}
	i := bits.Len64(uint64((d - 1) / HistBase)) // ceil(log2(d/base))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[HistIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Max returns the exact worst sample observed, or 0 with no samples —
// the tail beyond any bucketed quantile, which is what flood-mode
// admission-latency regressions show up in first.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Count returns the number of samples.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the total of all samples.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average sample, or 0 with no samples.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Bucket returns the count in bucket i (not cumulative).
func (h *Hist) Bucket(i int) uint64 { return h.buckets[i].Load() }

// Quantile returns the upper bound of the bucket containing the p-th
// quantile (0 < p <= 1), or 0 with no samples.
func (h *Hist) Quantile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	// Nearest-rank with ceiling: p=0.99 over 10 samples must look at
	// the 10th, not the 9th — truncating would hide the worst sample,
	// the one tail quantiles exist to catch.
	rank := uint64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := 0; i < HistBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return HistBase << uint(i)
		}
	}
	return HistBase << (HistBuckets - 1)
}

// LatencyHists are the server-side request-lifecycle latency
// histograms the observability layer records into: how long winners
// waited, how steadily contenders paid, how long an auction costs the
// control path, and how old channels were when the sweep evicted them.
// WaitToAdmit, CreditGap, and TimeToEvict are fed from sampled trace
// records (internal/trace), so they populate only when tracing is on;
// AuctionLatency is fed by the thinner core on every auction whenever
// a metrics registry is attached.
type LatencyHists struct {
	// WaitToAdmit: request arrival to auction win (or direct admit).
	WaitToAdmit Hist
	// CreditGap: interarrival time between consecutive payment credits
	// on one channel — the payment stream's steadiness.
	CreditGap Hist
	// AuctionLatency: wall time of one winner selection + settle on
	// the control path (the PR 5 indexed-auction cost, live).
	AuctionLatency Hist
	// TimeToEvict: first activity to timeout eviction — how long dead
	// channels camped in the table before the sweep reclaimed them.
	TimeToEvict Hist
}
