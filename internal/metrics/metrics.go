// Package metrics provides the measurement utilities shared by the
// simulation scenarios, the real-socket load generator, and the
// benchmark harness: streaming samples with exact percentiles, rate
// counters over time windows, and fixed-width table rendering matching
// the rows the paper reports.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Sample accumulates float64 observations and answers summary queries.
// The zero value is ready to use. Percentiles are exact (the sample set
// is retained); experiments here are small enough that this is cheap.
type Sample struct {
	xs     []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// AddDuration records a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted sample, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	// The 1e-9 slack keeps ranks stable when p was itself computed as
	// 100*k/n and floating-point rounding nudged it just above k.
	rank := int(math.Ceil(p/100*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.xs[rank-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Counter is a monotonically increasing event/byte counter.
type Counter struct{ v float64 }

// Add increases the counter by x (negative x panics: counters only go up).
func (c *Counter) Add(x float64) {
	if x < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.v += x
}

// Inc increases the counter by 1.
func (c *Counter) Inc() { c.v++ }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v }

// Rate returns the counter value divided by the elapsed duration in
// seconds (0 if elapsed <= 0).
func (c *Counter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return c.v / elapsed.Seconds()
}

// Series records (time, value) points, e.g. per-interval throughput.
type Series struct {
	T []time.Duration
	V []float64
}

// Add appends one point.
func (s *Series) Add(t time.Duration, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.V) }

// MeanAfter returns the mean of values at times >= t0, skipping a
// warm-up prefix (0 for an empty selection).
func (s *Series) MeanAfter(t0 time.Duration) float64 {
	var sum float64
	var n int
	for i, t := range s.T {
		if t >= t0 {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BitsPerSecond converts a byte count over a duration to bits/s.
func BitsPerSecond(bytes float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return bytes * 8 / d.Seconds()
}

// Mbps converts a byte count over a duration to Mbits/s.
func Mbps(bytes float64, d time.Duration) float64 {
	return BitsPerSecond(bytes, d) / 1e6
}
