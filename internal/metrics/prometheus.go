package metrics

import (
	"fmt"
	"io"
)

// Prometheus text exposition (version 0.0.4) for the registry and its
// latency histograms. The renderer is hand-rolled rather than pulling
// in a client library: the format is a few line shapes, and the
// dependency budget here is zero.
//
// Conventions: every metric is prefixed speakup_, counters end in
// _total, histograms are rendered in seconds with the log₂ bucket
// bounds (HistBase << i), cumulative counts, and a terminal +Inf
// bucket equal to _count — the monotonicity the exposition-format
// tests assert.

// PromMeta describes one metric line's metadata.
type promKind string

const (
	promCounter   promKind = "counter"
	promGauge     promKind = "gauge"
	promHistogram promKind = "histogram"
)

// promWriter accumulates exposition lines; errors are sticky so call
// sites stay linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) meta(name, help string, kind promKind) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Counter emits one counter metric with HELP/TYPE metadata.
func (p *promWriter) counter(name, help string, v float64) {
	p.meta(name, help, promCounter)
	p.printf("%s %g\n", name, v)
}

// Gauge emits one gauge metric with HELP/TYPE metadata.
func (p *promWriter) gauge(name, help string, v float64) {
	p.meta(name, help, promGauge)
	p.printf("%s %g\n", name, v)
}

// Histogram emits one Hist as a Prometheus histogram in seconds:
// cumulative le buckets, +Inf, _sum, _count. Trailing empty buckets
// beyond the last occupied one are collapsed into +Inf so an idle
// histogram is four lines, not thirty-six.
func (p *promWriter) histogram(name, help string, h *Hist) {
	p.meta(name, help, promHistogram)
	last := 0
	for i := 0; i < HistBuckets; i++ {
		if h.Bucket(i) != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Bucket(i)
		p.printf("%s_bucket{le=\"%g\"} %d\n", name, (HistBase << uint(i)).Seconds(), cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	p.printf("%s_sum %g\n", name, h.Sum().Seconds())
	p.printf("%s_count %d\n", name, h.Count())
}

// WritePrometheus renders the registry — every counter and gauge the
// thinner records plus the four request-lifecycle histograms — in
// Prometheus text exposition format. It never blocks recording: each
// value is an independent atomic load, the same non-consistent cut
// Snapshot takes. The front's /metrics handler appends its own
// deployment gauges (uptime, ingest, table sizes) with
// WritePrometheusGauge after calling this.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	p := &promWriter{w: w}
	p.counter("speakup_admitted_total", "Requests handed to the origin (direct + auction wins).", float64(s.Admitted))
	p.counter("speakup_admitted_direct_total", "Admissions with no auction (origin was free).", float64(s.AdmittedDirect))
	p.counter("speakup_auctions_total", "Auctions held.", float64(s.Auctions))
	p.counter("speakup_evicted_total", "Payment channels terminated by timeout.", float64(s.Evicted))
	p.counter("speakup_shed_total", "Arrivals refused during origin brownouts.", float64(s.Shed))
	p.counter("speakup_brownouts_total", "Times the origin-health ladder left ok.", float64(s.Brownouts))
	p.counter("speakup_paid_bytes_total", "Payment bytes of auction winners (the prices).", float64(s.PaidBytes))
	p.counter("speakup_wasted_bytes_total", "Payment bytes forfeited by evicted channels.", float64(s.WastedBytes))
	p.gauge("speakup_going_price_bytes", "Winning bid of the most recent auction.", float64(s.GoingPrice))
	p.gauge("speakup_last_winner_id", "Request id of the most recent auction winner.", float64(s.LastWinner))
	p.gauge("speakup_health", "Origin-health ladder state (0 ok, 1 stalled, 2 recovering).", float64(s.Health))
	p.gauge("speakup_wire_conns", "Open binary payment-transport connections.", float64(s.WireConns))
	p.counter("speakup_wire_frames_total", "Frames decoded by the wire listener.", float64(s.WireFrames))
	p.counter("speakup_wire_ingest_bytes_total", "Payment bytes credited over the wire transport.", float64(s.WireIngestBytes))
	p.histogram("speakup_wait_to_admit_seconds", "Request arrival to admission (sampled traces).", &r.lat.WaitToAdmit)
	p.histogram("speakup_credit_gap_seconds", "Interarrival time between payment credits on one channel (sampled traces).", &r.lat.CreditGap)
	p.histogram("speakup_auction_latency_seconds", "Wall time of one winner selection and settle.", &r.lat.AuctionLatency)
	p.histogram("speakup_time_to_evict_seconds", "Channel first activity to timeout eviction (sampled traces).", &r.lat.TimeToEvict)
	return p.err
}

// WritePrometheusGauge emits one free-standing gauge in the same
// format — the seam the front uses for deployment gauges the registry
// cannot see (uptime, ingest totals, table sizes).
func WritePrometheusGauge(w io.Writer, name, help string, v float64) error {
	p := &promWriter{w: w}
	p.gauge(name, help, v)
	return p.err
}

// WritePrometheusCounter emits one free-standing counter.
func WritePrometheusCounter(w io.Writer, name, help string, v float64) error {
	p := &promWriter{w: w}
	p.counter(name, help, v)
	return p.err
}
