package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSampleMean(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %v, want 2.5", s.Mean())
	}
	if s.Sum() != 10 {
		t.Fatalf("sum = %v, want 10", s.Sum())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleAddAfterPercentile(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	if s.Percentile(50) != 1 {
		t.Fatalf("p50 of {1,5} = %v, want 1 (nearest rank)", s.Percentile(50))
	}
	s.Add(0) // must re-sort
	if s.Min() != 0 {
		t.Fatalf("min after re-add = %v", s.Min())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {90, 90}, {99, 99}, {100, 100}, {150, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("duration sample mean = %v, want 1.5", s.Mean())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %v, want 5", c.Value())
	}
	if got := c.Rate(2 * time.Second); got != 2.5 {
		t.Fatalf("rate = %v, want 2.5", got)
	}
	if c.Rate(0) != 0 {
		t.Fatal("rate over zero elapsed must be 0")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestSeriesMeanAfter(t *testing.T) {
	var s Series
	s.Add(0, 100) // warm-up point
	s.Add(10*time.Second, 2)
	s.Add(20*time.Second, 4)
	if got := s.MeanAfter(5 * time.Second); got != 3 {
		t.Fatalf("MeanAfter = %v, want 3", got)
	}
	if got := s.MeanAfter(time.Hour); got != 0 {
		t.Fatalf("MeanAfter beyond range = %v, want 0", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestBitsPerSecond(t *testing.T) {
	if got := BitsPerSecond(1e6, time.Second); got != 8e6 {
		t.Fatalf("BitsPerSecond = %v", got)
	}
	if got := Mbps(1e6, time.Second); got != 8 {
		t.Fatalf("Mbps = %v", got)
	}
	if BitsPerSecond(1, 0) != 0 {
		t.Fatal("zero duration must yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "col", "value")
	tb.AddRow("a", 1.5)
	tb.AddRow("bb", 0.25)
	out := tb.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "a ") || !strings.Contains(out, "bb") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "1.5") || !strings.Contains(out, "0.25") {
		t.Fatalf("missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:   "1.5",
		2.0:   "2",
		0.25:  "0.25",
		0:     "0",
		0.001: "0.001",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: mean is within [min, max] and percentile is monotone in p.
func TestQuickSampleInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		ok := true
		for _, x := range xs {
			// Metric values in this repo are rates, byte counts, and
			// seconds; bound inputs so the running sum cannot overflow.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			s.Add(x)
			ok = ok && !math.IsNaN(s.Mean())
		}
		if s.N() == 0 {
			return true
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return ok
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile(100p/n of rank k) agrees with sorting.
func TestQuickPercentileMatchesSort(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			s.Add(float64(v))
		}
		sort.Float64s(xs)
		for k := 1; k <= len(xs); k++ {
			p := 100 * float64(k) / float64(len(xs))
			if s.Percentile(p) != xs[k-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
