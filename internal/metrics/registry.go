package metrics

import "sync/atomic"

// Registry accumulates thinner activity for telemetry. Both thinner
// stacks feed the same registry type: the simulator's virtual-time
// thinner and the live HTTP front attach one to core.Thinner (nil —
// the default — costs nothing), and the live front's /telemetry
// endpoint streams Snapshot lines from it.
//
// All fields are atomics: the recording side runs on the thinner's
// control path while snapshots are taken from arbitrary telemetry
// goroutines. Counters are monotone; GoingPrice and LastWinner are
// last-value gauges.
type Registry struct {
	admitted       atomic.Uint64
	admittedDirect atomic.Uint64
	auctions       atomic.Uint64
	evicted        atomic.Uint64
	paidBytes      atomic.Int64
	wastedBytes    atomic.Int64
	goingPrice     atomic.Int64
	lastWinner     atomic.Uint64
	shed           atomic.Uint64
	brownouts      atomic.Uint64
	health         atomic.Int32

	// Wire-transport counters (internal/wire): the binary front
	// records its connection gauge and per-read frame/byte tallies
	// here so /telemetry covers both listeners.
	wireConns  atomic.Int64
	wireFrames atomic.Uint64
	wireBytes  atomic.Int64

	// lat holds the request-lifecycle latency histograms; /metrics
	// renders them as Prometheus histograms. All-atomic like the
	// counters above.
	lat LatencyHists
}

// Latency returns the registry's request-lifecycle histograms. The
// thinner core observes auction latency here; the trace layer
// (internal/trace) feeds the sampled wait/credit-gap/evict ones.
func (r *Registry) Latency() *LatencyHists { return &r.lat }

// RecordAdmit counts one admission. paid is the winning bid in bytes;
// auctioned distinguishes auction wins from direct admissions to a
// free origin (which carry no auction and usually no payment).
func (r *Registry) RecordAdmit(id uint64, paid int64, auctioned bool) {
	r.admitted.Add(1)
	r.paidBytes.Add(paid)
	if auctioned {
		r.auctions.Add(1)
		r.goingPrice.Store(paid)
		r.lastWinner.Store(id)
	} else {
		r.admittedDirect.Add(1)
	}
}

// RecordEvict counts one timed-out payment channel; paid is the
// balance the channel forfeits.
func (r *Registry) RecordEvict(id uint64, paid int64) {
	r.evicted.Add(1)
	r.wastedBytes.Add(paid)
}

// RecordShed counts one request refused during an origin brownout.
func (r *Registry) RecordShed(id uint64) { r.shed.Add(1) }

// RecordBrownout counts one entry into a degraded health state and
// moves the health gauge (core.HealthState numbering).
func (r *Registry) RecordBrownout(state int32) {
	r.brownouts.Add(1)
	r.health.Store(state)
}

// RecordHealth moves the health gauge without counting a brownout —
// used for the recovering→ok transitions.
func (r *Registry) RecordHealth(state int32) { r.health.Store(state) }

// RecordWireConn moves the open wire-connection gauge by delta
// (+1 on accept, -1 on teardown).
func (r *Registry) RecordWireConn(delta int64) { r.wireConns.Add(delta) }

// RecordWireRead accumulates one batched read's decode results:
// frames completed and payment bytes credited. Called once per
// socket Read, not per frame, to keep the hot path cheap.
func (r *Registry) RecordWireRead(frames uint64, creditedBytes int64) {
	if frames > 0 {
		r.wireFrames.Add(frames)
	}
	if creditedBytes > 0 {
		r.wireBytes.Add(creditedBytes)
	}
}

// Snapshot is one telemetry observation — the NDJSON line shape of
// thinnerd's /telemetry stream. The registry fills the thinner
// counters; the snapshotting side (the live front) fills the
// deployment gauges (uptime, ingest, table sizes), which the registry
// cannot see.
type Snapshot struct {
	UptimeMS       int64   `json:"uptime_ms"`
	Admitted       uint64  `json:"admitted"`
	AdmittedDirect uint64  `json:"admitted_direct"`
	Auctions       uint64  `json:"auctions"`
	Evicted        uint64  `json:"evicted"`
	PaidBytes      int64   `json:"paid_bytes"`
	WastedBytes    int64   `json:"wasted_bytes"`
	GoingPrice     int64   `json:"going_price_bytes"`
	LastWinner     uint64  `json:"last_winner_id"`
	Shed           uint64  `json:"shed"`
	Brownouts      uint64  `json:"brownouts"`
	Health         int32   `json:"health"` // core.HealthState: 0 ok, 1 stalled, 2 recovering
	IngestBytes    int64   `json:"ingest_bytes"`
	IngestMbps     float64 `json:"ingest_mbps"`
	OpenChannels   int     `json:"open_channels"`
	Contenders     int     `json:"contenders"`
	// Wire-transport slice of the ingest: open binary connections,
	// frames decoded, and payment bytes credited over internal/wire.
	// IngestBytes minus WireIngestBytes is the HTTP share.
	WireConns       int64  `json:"wire_conns"`
	WireFrames      uint64 `json:"wire_frames"`
	WireIngestBytes int64  `json:"wire_ingest_bytes"`
}

// Snapshot reads the registry's counters. Each field is individually
// atomic; the set is not a consistent cut, which telemetry tolerates.
func (r *Registry) Snapshot() Snapshot {
	return Snapshot{
		Admitted:        r.admitted.Load(),
		AdmittedDirect:  r.admittedDirect.Load(),
		Auctions:        r.auctions.Load(),
		Evicted:         r.evicted.Load(),
		PaidBytes:       r.paidBytes.Load(),
		WastedBytes:     r.wastedBytes.Load(),
		GoingPrice:      r.goingPrice.Load(),
		LastWinner:      r.lastWinner.Load(),
		Shed:            r.shed.Load(),
		Brownouts:       r.brownouts.Load(),
		Health:          r.health.Load(),
		WireConns:       r.wireConns.Load(),
		WireFrames:      r.wireFrames.Load(),
		WireIngestBytes: r.wireBytes.Load(),
	}
}
