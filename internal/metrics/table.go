package metrics

import (
	"fmt"
	"strings"
)

// Table renders fixed-width text tables; the benchmark harness uses it
// to print the same rows/series the paper's figures report.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
