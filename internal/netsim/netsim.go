// Package netsim simulates a packet-switched network on top of the
// discrete-event engine in internal/sim.
//
// The model is deliberately simple and physical: hosts and switches are
// nodes; a Link is a unidirectional pipe with a fixed rate (bits/s), a
// fixed propagation delay, and a drop-tail queue bounded in bytes.
// Packets serialize onto a link one at a time (store-and-forward) and
// arrive at the far node after the propagation delay. Nodes forward
// packets hop-by-hop along shortest-path routes computed once from the
// topology. This is the substitution for the paper's Emulab testbed:
// rates, delays, queueing, and loss — the quantities speak-up's
// evaluation depends on — are modeled per-packet.
//
// The per-packet path is allocation-free in steady state: packets come
// from a per-Network free list (NewPacket / Send recycles them after
// final delivery or drop), link queues are reusing ring buffers, and
// the transmit/propagate hops are typed sim events rather than
// closures. Consequently the network owns every packet passed to Send:
// handlers may read the packet (and keep its Payload) but must not
// retain the *Packet itself past the callback.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"speakup/internal/sim"
)

// NodeID identifies a node within one Network.
type NodeID int

// Packet is one datagram in flight. Size is the total on-the-wire size
// in bytes. Payload carries the upper-layer segment (e.g. a TCP
// segment); netsim never inspects it. Obtain packets with NewPacket
// where throughput matters: the network recycles delivered and dropped
// packets into a free list.
type Packet struct {
	Size     int
	Src, Dst NodeID
	Payload  any
}

// Handler receives packets addressed to a node. The network reclaims
// the packet when the handler returns: keep Payload if needed, never
// the *Packet.
type Handler func(pkt *Packet)

type node struct {
	id      NodeID
	name    string
	handler Handler
	// routes[dst] is the outgoing link for packets to dst; built by
	// ComputeRoutes.
	routes []*Link
	links  []*Link // outgoing links (for route computation)
}

// LinkStats counts traffic through one unidirectional link.
type LinkStats struct {
	PktsSent     uint64
	BytesSent    uint64
	PktsDropped  uint64
	BytesDropped uint64
	// PktsLost/BytesLost count packets destroyed by an injected fault
	// (loss or partition) — distinct from drop-tail queue drops.
	PktsLost  uint64
	BytesLost uint64
}

// pktRing is a reusing FIFO of packets: a power-of-two circular buffer
// indexed by monotonically increasing head/tail counters. Unlike the
// old append/reslice queue it never strands popped *Packet pointers in
// the backing array (slots are nilled on pop) and reuses its storage
// forever, so a busy link stops allocating once the ring has grown to
// the high-water mark.
type pktRing struct {
	buf  []*Packet
	head uint64 // next pop
	tail uint64 // next push
}

func (r *pktRing) len() int { return int(r.tail - r.head) }

func (r *pktRing) push(p *Packet) {
	if int(r.tail-r.head) == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail&uint64(len(r.buf)-1)] = p
	r.tail++
}

func (r *pktRing) pop() *Packet {
	if r.head == r.tail {
		return nil
	}
	i := r.head & uint64(len(r.buf)-1)
	p := r.buf[i]
	r.buf[i] = nil // release the reference: no retained-pointer leak
	r.head++
	return p
}

func (r *pktRing) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]*Packet, n)
	// Re-linearize the old contents at the front.
	for i, k := 0, r.head; k != r.tail; i, k = i+1, k+1 {
		buf[i] = r.buf[k&uint64(len(r.buf)-1)]
	}
	r.tail -= r.head
	r.head = 0
	r.buf = buf
}

// Link is a unidirectional pipe between two nodes.
type Link struct {
	net   *Network
	name  string
	from  NodeID
	to    NodeID
	rate  float64 // bits per second
	delay time.Duration
	qcap  int // max queued bytes behind the packet in service; <=0 means unbounded

	queued int // bytes waiting (excludes packet in service)
	q      pktRing
	busy   bool

	// fault, when non-nil, impairs the link (internal/faults plans
	// arm it via SetFault). It stays nil on healthy links so the
	// steady-state packet path never branches on fault state beyond
	// one nil check and never touches an RNG.
	fault *linkFault

	Stats LinkStats
}

// FaultState describes the impairments injected on one link.
type FaultState struct {
	// Loss is the probability a packet entering the link is destroyed.
	Loss float64
	// Jitter is the maximum extra propagation delay, drawn uniformly
	// per packet. Delivery order on the link is preserved.
	Jitter time.Duration
	// Down partitions the link: every packet is destroyed.
	Down bool
}

type linkFault struct {
	FaultState
	rng *rand.Rand
	// lastArrival is the latest scheduled delivery time; jittered
	// deliveries are clamped to it so the link never reorders.
	lastArrival time.Duration
}

// SetFault arms (or replaces) the link's injected fault; the RNG for
// loss/jitter draws is seeded from seed so a fault plan is a pure
// function of its seeds. A zero FaultState clears the fault entirely,
// restoring the allocation- and RNG-free healthy path.
func (l *Link) SetFault(fs FaultState, seed int64) {
	if fs == (FaultState{}) {
		l.fault = nil
		return
	}
	f := &linkFault{FaultState: fs}
	if fs.Loss > 0 || fs.Jitter > 0 {
		f.rng = rand.New(rand.NewSource(seed))
	}
	if old := l.fault; old != nil {
		f.lastArrival = old.lastArrival
	}
	l.fault = f
}

// ClearFault restores the link to health.
func (l *Link) ClearFault() { l.SetFault(FaultState{}, 0) }

// Faulted reports whether an injected fault is currently armed.
func (l *Link) Faulted() bool { return l.fault != nil }

// Name returns the link's human-readable name.
func (l *Link) Name() string { return l.name }

// QueuedBytes returns the bytes currently waiting in the queue.
func (l *Link) QueuedBytes() int { return l.queued }

// QueueCap returns the capacity (in slots) of the queue's backing ring
// buffer; tests use it to assert queue memory stays bounded.
func (l *Link) QueueCap() int { return len(l.q.buf) }

// Rate returns the link rate in bits per second.
func (l *Link) Rate() float64 { return l.rate }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// Network is a set of nodes and links sharing one event loop.
type Network struct {
	loop  *sim.Loop
	nodes []*node
	links []*Link

	pktFree []*Packet // recycled packets

	// Trace, when non-nil, observes packet events: "send" (enqueued on
	// a link), "drop" (drop-tail), "recv" (delivered to final handler).
	// The packet is reclaimed after a "drop"/"recv" callback returns.
	Trace func(event string, l *Link, pkt *Packet)
}

// New creates an empty network on the given loop.
func New(loop *sim.Loop) *Network {
	return &Network{loop: loop}
}

// Loop returns the underlying event loop.
func (n *Network) Loop() *sim.Loop { return n.loop }

// NewPacket returns a zeroed packet from the network's free list (or a
// fresh one). Packets given to Send return to the list automatically
// on final delivery or drop.
func (n *Network) NewPacket() *Packet {
	if k := len(n.pktFree); k > 0 {
		p := n.pktFree[k-1]
		n.pktFree = n.pktFree[:k-1]
		return p
	}
	return &Packet{}
}

// reclaim recycles a packet whose journey has ended. The Payload
// reference is dropped so the pool never pins upper-layer segments.
func (n *Network) reclaim(pkt *Packet) {
	*pkt = Packet{}
	n.pktFree = append(n.pktFree, pkt)
}

// AddNode creates a node. The handler receives packets whose Dst is
// this node; it may be nil for pure switches.
func (n *Network) AddNode(name string, h Handler) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, &node{id: id, name: name, handler: h})
	return id
}

// SetHandler replaces a node's packet handler. It allows hosts to be
// created before the protocol endpoints that live on them.
func (n *Network) SetHandler(id NodeID, h Handler) { n.nodes[id].handler = h }

// NodeName returns the node's name.
func (n *Network) NodeName(id NodeID) string { return n.nodes[id].name }

// AddLink creates a unidirectional link from -> to with the given rate
// (bits/s), propagation delay, and queue capacity in bytes (<=0 means
// unbounded). Most callers want Connect, which builds both directions.
func (n *Network) AddLink(from, to NodeID, rate float64, delay time.Duration, queueBytes int) *Link {
	if rate <= 0 {
		panic("netsim: link rate must be positive")
	}
	l := &Link{
		net:   n,
		name:  fmt.Sprintf("%s->%s", n.nodes[from].name, n.nodes[to].name),
		from:  from,
		to:    to,
		rate:  rate,
		delay: delay,
		qcap:  queueBytes,
	}
	n.links = append(n.links, l)
	n.nodes[from].links = append(n.nodes[from].links, l)
	return l
}

// Connect builds a duplex link (two unidirectional links with the same
// parameters) and returns them as (a->b, b->a).
func (n *Network) Connect(a, b NodeID, rate float64, delay time.Duration, queueBytes int) (*Link, *Link) {
	return n.AddLink(a, b, rate, delay, queueBytes),
		n.AddLink(b, a, rate, delay, queueBytes)
}

// ComputeRoutes builds shortest-path (hop count) routes between all
// node pairs via BFS. Call it once after the topology is assembled;
// sending a packet with no route panics, since that is a model bug.
func (n *Network) ComputeRoutes() {
	for _, src := range n.nodes {
		src.routes = make([]*Link, len(n.nodes))
		// BFS from src over outgoing links.
		visited := make([]bool, len(n.nodes))
		visited[src.id] = true
		type hop struct {
			node  NodeID
			first *Link // first link on the path from src
		}
		queue := make([]hop, 0, len(n.nodes))
		for _, l := range src.links {
			if !visited[l.to] {
				visited[l.to] = true
				src.routes[l.to] = l
				queue = append(queue, hop{l.to, l})
			}
		}
		for len(queue) > 0 {
			h := queue[0]
			queue = queue[1:]
			for _, l := range n.nodes[h.node].links {
				if !visited[l.to] {
					visited[l.to] = true
					src.routes[l.to] = h.first
					queue = append(queue, hop{l.to, h.first})
				}
			}
		}
	}
}

// Send injects a packet at its source node; it is routed hop-by-hop to
// pkt.Dst and handed to that node's handler. The network owns pkt from
// this point: it is recycled after delivery or drop.
func (n *Network) Send(pkt *Packet) {
	if pkt.Size <= 0 {
		panic("netsim: packet size must be positive")
	}
	n.forward(n.nodes[pkt.Src], pkt)
}

func (n *Network) forward(at *node, pkt *Packet) {
	if at.id == pkt.Dst {
		if n.Trace != nil {
			n.Trace("recv", nil, pkt)
		}
		if at.handler != nil {
			at.handler(pkt)
		}
		n.reclaim(pkt)
		return
	}
	if at.routes == nil {
		panic("netsim: ComputeRoutes not called")
	}
	l := at.routes[pkt.Dst]
	if l == nil {
		panic(fmt.Sprintf("netsim: no route from %s to %s", at.name, n.nodes[pkt.Dst].name))
	}
	l.enqueue(pkt)
}

func (l *Link) enqueue(pkt *Packet) {
	if f := l.fault; f != nil && (f.Down || (f.Loss > 0 && f.rng.Float64() < f.Loss)) {
		l.Stats.PktsLost++
		l.Stats.BytesLost += uint64(pkt.Size)
		if l.net.Trace != nil {
			l.net.Trace("drop", l, pkt)
		}
		l.net.reclaim(pkt)
		return
	}
	if l.busy {
		if l.qcap > 0 && l.queued+pkt.Size > l.qcap {
			l.Stats.PktsDropped++
			l.Stats.BytesDropped += uint64(pkt.Size)
			if l.net.Trace != nil {
				l.net.Trace("drop", l, pkt)
			}
			l.net.reclaim(pkt)
			return
		}
		l.queued += pkt.Size
		l.q.push(pkt)
		return
	}
	l.transmit(pkt)
}

// transmit starts serializing pkt onto the wire. The tx-done and
// propagation hops are typed events (linkTxDone, linkDeliver)
// dispatched by the loop, not closures: nothing here allocates.
func (l *Link) transmit(pkt *Packet) {
	l.busy = true
	if l.net.Trace != nil {
		l.net.Trace("send", l, pkt)
	}
	tx := time.Duration(float64(pkt.Size) * 8 / l.rate * float64(time.Second))
	if tx < time.Nanosecond {
		tx = time.Nanosecond
	}
	l.net.loop.AfterTimer(tx, linkTxDone, l, pkt)
}

// linkTxDone fires when the last bit of pkt leaves the link's sender:
// the packet starts propagating and the link is free to serialize the
// next queued packet.
func linkTxDone(env, arg any) {
	l := env.(*Link)
	pkt := arg.(*Packet)
	l.Stats.PktsSent++
	l.Stats.BytesSent += uint64(pkt.Size)
	delay := l.delay
	if f := l.fault; f != nil && f.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(f.Jitter) + 1))
		// Clamp to the latest scheduled arrival: jitter stretches the
		// pipe but never reorders it (the sim TCP assumes FIFO links).
		now := l.net.loop.Now()
		if now+delay < f.lastArrival {
			delay = f.lastArrival - now
		}
		f.lastArrival = now + delay
	}
	l.net.loop.AfterTimer(delay, linkDeliver, l, pkt)
	if next := l.q.pop(); next != nil {
		l.queued -= next.Size
		l.transmit(next)
	} else {
		l.busy = false
	}
}

// linkDeliver fires when pkt reaches the link's far node.
func linkDeliver(env, arg any) {
	l := env.(*Link)
	pkt := arg.(*Packet)
	l.net.forward(l.net.nodes[l.to], pkt)
}

// Links returns all links, in creation order (useful for stats).
func (n *Network) Links() []*Link { return n.links }
