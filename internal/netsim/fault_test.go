package netsim

import (
	"testing"
	"time"

	"speakup/internal/sim"
)

// faultPair builds a <-> b and returns the a->b link for fault
// injection plus an arrival recorder at b.
func faultPair(t *testing.T) (*Network, NodeID, NodeID, *Link, *[]sim.Time) {
	t.Helper()
	loop := sim.NewLoop(1)
	n := New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", nil)
	ab, _ := n.Connect(a, b, 8e6, 2*time.Millisecond, 1<<20)
	n.ComputeRoutes()
	arrivals := &[]sim.Time{}
	n.SetHandler(b, func(p *Packet) { *arrivals = append(*arrivals, loop.Now()) })
	return n, a, b, ab, arrivals
}

func TestLinkFaultLossDropsAndCounts(t *testing.T) {
	n, a, b, ab, arrivals := faultPair(t)
	ab.SetFault(FaultState{Loss: 1}, 1)
	if !ab.Faulted() {
		t.Fatal("link not marked faulted")
	}
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Size: 1000, Src: a, Dst: b})
	}
	n.Loop().RunAll()
	if len(*arrivals) != 0 {
		t.Fatalf("%d packets survived Loss=1", len(*arrivals))
	}
	if ab.Stats.PktsLost != 10 || ab.Stats.BytesLost != 10_000 {
		t.Fatalf("loss accounting = %d pkts / %d bytes, want 10 / 10000",
			ab.Stats.PktsLost, ab.Stats.BytesLost)
	}
}

func TestLinkFaultPartitionRevert(t *testing.T) {
	n, a, b, ab, arrivals := faultPair(t)
	ab.SetFault(FaultState{Down: true}, 1)
	n.Send(&Packet{Size: 1000, Src: a, Dst: b})
	n.Loop().RunAll()
	if len(*arrivals) != 0 {
		t.Fatal("packet crossed a partitioned link")
	}
	ab.ClearFault()
	if ab.Faulted() {
		t.Fatal("ClearFault left the link faulted")
	}
	n.Send(&Packet{Size: 1000, Src: a, Dst: b})
	n.Loop().RunAll()
	if len(*arrivals) != 1 {
		t.Fatalf("after revert: %d arrivals, want 1", len(*arrivals))
	}
}

// TestLinkFaultJitterKeepsOrder floods a jittered link and checks the
// FIFO invariant the sim TCP stack depends on: delivery times never go
// backwards, and payload order is preserved.
func TestLinkFaultJitterKeepsOrder(t *testing.T) {
	loop := sim.NewLoop(1)
	n := New(loop)
	a := n.AddNode("a", nil)
	var order []int
	var times []sim.Time
	b := n.AddNode("b", func(p *Packet) {
		order = append(order, p.Payload.(int))
		times = append(times, loop.Now())
	})
	ab, _ := n.Connect(a, b, 8e6, 2*time.Millisecond, 1<<20)
	n.ComputeRoutes()
	ab.SetFault(FaultState{Jitter: 10 * time.Millisecond}, 42)
	for i := 0; i < 200; i++ {
		n.Send(&Packet{Size: 1000, Src: a, Dst: b, Payload: i})
	}
	loop.RunAll()
	if len(order) != 200 {
		t.Fatalf("delivered %d packets, want 200", len(order))
	}
	jittered := false
	base := 3 * time.Millisecond // 1ms serialization + 2ms propagation
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered at %d: got payload %d", i, v)
		}
		if i > 0 && times[i] < times[i-1] {
			t.Fatalf("arrival time went backwards at %d: %v < %v", i, times[i], times[i-1])
		}
		if times[i] > sim.Time(i)*time.Millisecond+base {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("jitter fault added no delay to any of 200 packets")
	}
}

// TestLinkFaultZeroStateClears pins the golden-safety contract: arming
// a zero FaultState is identical to never touching the link.
func TestLinkFaultZeroStateClears(t *testing.T) {
	_, _, _, ab, _ := faultPair(t)
	ab.SetFault(FaultState{}, 99)
	if ab.Faulted() {
		t.Fatal("zero FaultState left a fault armed")
	}
}
