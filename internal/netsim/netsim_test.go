package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"speakup/internal/sim"
)

// twoNodes builds a <-> b with the given parameters and returns the
// network plus received-packet counters for each side. (Counters, not
// packet slices: the network recycles packets after the handler
// returns, so handlers must not retain them.)
func twoNodes(t *testing.T, rate float64, delay time.Duration, qcap int) (*Network, NodeID, NodeID, *int, *int) {
	t.Helper()
	loop := sim.NewLoop(1)
	n := New(loop)
	var atA, atB int
	a := n.AddNode("a", func(p *Packet) { atA++ })
	b := n.AddNode("b", func(p *Packet) { atB++ })
	n.Connect(a, b, rate, delay, qcap)
	n.ComputeRoutes()
	return n, a, b, &atA, &atB
}

func TestDeliveryTiming(t *testing.T) {
	// 1000 bytes at 8 Mbit/s = 1 ms serialization; +2 ms propagation.
	n, a, b, _, atB := twoNodes(t, 8e6, 2*time.Millisecond, 0)
	var arrived sim.Time
	n.SetHandler(b, func(p *Packet) { arrived = n.Loop().Now() })
	n.Send(&Packet{Size: 1000, Src: a, Dst: b})
	n.Loop().RunAll()
	if want := 3 * time.Millisecond; arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
	_ = atB
}

func TestSerializationBackToBack(t *testing.T) {
	// Two packets: the second must arrive one serialization time after
	// the first (pipelined through shared propagation).
	n, a, b, _, _ := twoNodes(t, 8e6, 2*time.Millisecond, 1<<20)
	var arrivals []sim.Time
	n.SetHandler(b, func(p *Packet) { arrivals = append(arrivals, n.Loop().Now()) })
	n.Send(&Packet{Size: 1000, Src: a, Dst: b})
	n.Send(&Packet{Size: 1000, Src: a, Dst: b})
	n.Loop().RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	if arrivals[0] != 3*time.Millisecond || arrivals[1] != 4*time.Millisecond {
		t.Fatalf("arrivals %v, want [3ms 4ms]", arrivals)
	}
}

func TestFIFOOrder(t *testing.T) {
	n, a, b, _, _ := twoNodes(t, 1e6, time.Millisecond, 1<<20)
	var got []int
	n.SetHandler(b, func(p *Packet) { got = append(got, p.Payload.(int)) })
	for i := 0; i < 20; i++ {
		n.Send(&Packet{Size: 100, Src: a, Dst: b, Payload: i})
	}
	n.Loop().RunAll()
	if len(got) != 20 {
		t.Fatalf("got %d packets", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestDropTail(t *testing.T) {
	// Queue capacity 1500 bytes: first packet in service, second+third
	// queued until full, fourth dropped.
	n, a, b, _, atB := twoNodes(t, 8e4, time.Millisecond, 1500)
	for i := 0; i < 4; i++ {
		n.Send(&Packet{Size: 750, Src: a, Dst: b})
	}
	n.Loop().RunAll()
	if *atB != 3 {
		t.Fatalf("delivered %d, want 3 (1 in service + 2 queued)", *atB)
	}
	l := n.Links()[0]
	if l.Stats.PktsDropped != 1 || l.Stats.BytesDropped != 750 {
		t.Fatalf("drop stats = %+v", l.Stats)
	}
	if l.Stats.PktsSent != 3 || l.Stats.BytesSent != 2250 {
		t.Fatalf("sent stats = %+v", l.Stats)
	}
}

func TestUnboundedQueueNeverDrops(t *testing.T) {
	n, a, b, _, atB := twoNodes(t, 8e4, time.Millisecond, 0)
	for i := 0; i < 200; i++ {
		n.Send(&Packet{Size: 1500, Src: a, Dst: b})
	}
	n.Loop().RunAll()
	if *atB != 200 {
		t.Fatalf("delivered %d, want 200", *atB)
	}
}

func TestDuplexIndependence(t *testing.T) {
	// Traffic a->b must not consume b->a capacity.
	n, a, b, atA, atB := twoNodes(t, 8e6, time.Millisecond, 0)
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Size: 1000, Src: a, Dst: b})
		n.Send(&Packet{Size: 1000, Src: b, Dst: a})
	}
	n.Loop().RunAll()
	if *atA != 10 || *atB != 10 {
		t.Fatalf("delivered %d/%d, want 10/10", *atA, *atB)
	}
	// Both directions finish at the same time: 10 packets * 1ms + 1ms.
	if now := n.Loop().Now(); now != 11*time.Millisecond {
		t.Fatalf("finished at %v, want 11ms", now)
	}
}

func TestMultiHopRouting(t *testing.T) {
	loop := sim.NewLoop(1)
	n := New(loop)
	var got int
	c1 := n.AddNode("c1", nil)
	c2 := n.AddNode("c2", nil)
	sw := n.AddNode("sw", nil)
	th := n.AddNode("th", func(p *Packet) { got++ })
	n.Connect(c1, sw, 8e6, time.Millisecond, 0)
	n.Connect(c2, sw, 8e6, time.Millisecond, 0)
	n.Connect(sw, th, 8e6, time.Millisecond, 0)
	n.ComputeRoutes()
	n.Send(&Packet{Size: 500, Src: c1, Dst: th})
	n.Send(&Packet{Size: 500, Src: c2, Dst: th})
	// Reverse path: thinner replies to c1.
	var back int
	n.SetHandler(c1, func(p *Packet) { back++ })
	n.Send(&Packet{Size: 500, Src: th, Dst: c1})
	loop.RunAll()
	if got != 2 {
		t.Fatalf("thinner received %d, want 2", got)
	}
	if back != 1 {
		t.Fatalf("reverse delivery failed: %d", back)
	}
}

func TestSharedTrunkContention(t *testing.T) {
	// Two clients, each on a fast access link, share one slow trunk:
	// total delivery time is governed by the trunk.
	loop := sim.NewLoop(1)
	n := New(loop)
	var count int
	c1 := n.AddNode("c1", nil)
	c2 := n.AddNode("c2", nil)
	sw := n.AddNode("sw", nil)
	th := n.AddNode("th", func(p *Packet) { count++ })
	n.Connect(c1, sw, 80e6, 0, 0)
	n.Connect(c2, sw, 80e6, 0, 0)
	n.Connect(sw, th, 8e6, 0, 1<<20) // trunk: 1ms per 1000B packet
	n.ComputeRoutes()
	for i := 0; i < 5; i++ {
		n.Send(&Packet{Size: 1000, Src: c1, Dst: th})
		n.Send(&Packet{Size: 1000, Src: c2, Dst: th})
	}
	loop.RunAll()
	if count != 10 {
		t.Fatalf("delivered %d, want 10", count)
	}
	// 10 packets over the 8 Mbit/s trunk = 10 ms (plus 12.5us*... on
	// access links, negligible ordering offset under 1ms resolution).
	if now := loop.Now(); now < 10*time.Millisecond || now > 11*time.Millisecond {
		t.Fatalf("finished at %v, want ~10ms (trunk-bound)", now)
	}
}

func TestNoRoutePanics(t *testing.T) {
	loop := sim.NewLoop(1)
	n := New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", nil)
	n.AddLink(a, b, 1e6, 0, 0) // one direction only
	n.ComputeRoutes()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unroutable packet")
		}
	}()
	n.Send(&Packet{Size: 100, Src: b, Dst: a})
	loop.RunAll()
}

func TestComputeRoutesRequired(t *testing.T) {
	loop := sim.NewLoop(1)
	n := New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", nil)
	n.Connect(a, b, 1e6, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without ComputeRoutes")
		}
	}()
	n.Send(&Packet{Size: 100, Src: a, Dst: b})
}

func TestTraceHooks(t *testing.T) {
	n, a, b, _, _ := twoNodes(t, 8e4, time.Millisecond, 800)
	events := map[string]int{}
	n.Trace = func(ev string, l *Link, p *Packet) { events[ev]++ }
	for i := 0; i < 3; i++ {
		n.Send(&Packet{Size: 800, Src: a, Dst: b})
	}
	n.Loop().RunAll()
	if events["send"] != 2 || events["recv"] != 2 || events["drop"] != 1 {
		t.Fatalf("trace events = %v", events)
	}
}

func TestLocalDelivery(t *testing.T) {
	// Src == Dst: delivered synchronously to the handler.
	n, a, _, atA, _ := twoNodes(t, 1e6, 0, 0)
	n.Send(&Packet{Size: 10, Src: a, Dst: a})
	if *atA != 1 {
		t.Fatal("local packet not delivered")
	}
}

func TestThroughputMatchesRate(t *testing.T) {
	// Saturate a 2 Mbit/s link for 1s of virtual time; delivered bytes
	// must match the rate closely.
	loop := sim.NewLoop(1)
	n := New(loop)
	var bytes int
	a := n.AddNode("a", nil)
	b := n.AddNode("b", func(p *Packet) { bytes += p.Size })
	n.Connect(a, b, 2e6, time.Millisecond, 3000)
	n.ComputeRoutes()
	var feed func()
	feed = func() {
		n.Send(&Packet{Size: 1500, Src: a, Dst: b})
		loop.After(6*time.Millisecond, feed) // 1500B @2Mbit/s = 6ms
	}
	loop.After(0, feed)
	loop.Run(time.Second)
	got := float64(bytes) * 8
	if got < 1.9e6 || got > 2.01e6 {
		t.Fatalf("throughput %.0f bits in 1s, want ~2e6", got)
	}
}

// Property: conservation — packets sent = delivered + dropped + still
// queued or in flight, for random packet batches on a bounded queue.
func TestQuickConservation(t *testing.T) {
	f := func(sizes []uint16, qcap uint16) bool {
		loop := sim.NewLoop(3)
		n := New(loop)
		delivered := 0
		a := n.AddNode("a", nil)
		b := n.AddNode("b", func(p *Packet) { delivered++ })
		n.Connect(a, b, 1e6, time.Millisecond, int(qcap))
		n.ComputeRoutes()
		sent := 0
		for _, s := range sizes {
			size := int(s)%3000 + 1
			n.Send(&Packet{Size: size, Src: a, Dst: b})
			sent++
		}
		loop.RunAll()
		l := n.Links()[0]
		return delivered+int(l.Stats.PktsDropped) == sent &&
			int(l.Stats.PktsSent) == delivered
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery order equals send order (FIFO) regardless of
// sizes, when the queue is unbounded.
func TestQuickFIFOUnbounded(t *testing.T) {
	f := func(sizes []uint16) bool {
		loop := sim.NewLoop(4)
		n := New(loop)
		var got []int
		a := n.AddNode("a", nil)
		b := n.AddNode("b", func(p *Packet) { got = append(got, p.Payload.(int)) })
		n.Connect(a, b, 1e6, time.Millisecond, 0)
		n.ComputeRoutes()
		for i, s := range sizes {
			n.Send(&Packet{Size: int(s)%2000 + 1, Src: a, Dst: b, Payload: i})
		}
		loop.RunAll()
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Regression for the old `l.q = l.q[1:]` queue: popped *Packet
// pointers stayed reachable through the backing array, and the array
// itself grew with every append. The ring buffer must (a) keep its
// backing storage at the traffic high-water mark, not the traffic
// volume, and (b) nil out popped slots so drained queues retain no
// packets.
func TestQueueMemoryBounded(t *testing.T) {
	loop := sim.NewLoop(1)
	n := New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", func(p *Packet) {})
	n.Connect(a, b, 8e6, time.Millisecond, 0) // 1ms per 1000B packet
	n.ComputeRoutes()
	l := n.Links()[0]

	// Feed 5000 packets in bursts of 4 per serialization time: the
	// queue occupancy oscillates around ~3, never near 5000.
	sent := 0
	var feed func()
	feed = func() {
		for i := 0; i < 4; i++ {
			pkt := n.NewPacket()
			pkt.Size, pkt.Src, pkt.Dst = 1000, a, b
			n.Send(pkt)
			sent++
		}
		if sent < 5000 {
			loop.After(4*time.Millisecond, feed)
		}
	}
	loop.After(0, feed)
	loop.RunAll()

	if l.Stats.PktsSent != 5000 {
		t.Fatalf("sent %d packets, want 5000", l.Stats.PktsSent)
	}
	if cap := l.QueueCap(); cap > 64 {
		t.Fatalf("ring buffer grew to %d slots for a ~4-deep queue: unbounded queue memory", cap)
	}
	for i, p := range l.q.buf {
		if p != nil {
			t.Fatalf("drained ring retains packet at slot %d: retained-pointer leak", i)
		}
	}
}

func TestRingGrowPreservesFIFOAcrossWrap(t *testing.T) {
	var r pktRing
	mk := func(i int) *Packet { return &Packet{Size: i + 1} }
	// Interleave pushes and pops so head/tail wrap before a grow.
	next, want := 0, 0
	check := func(p *Packet) {
		if p == nil || p.Size != want+1 {
			t.Fatalf("pop = %v, want size %d", p, want+1)
		}
		want++
	}
	for i := 0; i < 12; i++ {
		r.push(mk(next))
		next++
	}
	for i := 0; i < 10; i++ {
		check(r.pop())
	}
	for i := 0; i < 40; i++ { // forces a grow while head > 0
		r.push(mk(next))
		next++
	}
	for r.len() > 0 {
		check(r.pop())
	}
	if want != next {
		t.Fatalf("popped %d of %d", want, next)
	}
	if r.pop() != nil {
		t.Fatal("pop from empty ring != nil")
	}
}

// Delivered and dropped packets must return to the free list and come
// back out of NewPacket: steady-state traffic reuses a fixed packet
// population.
func TestPacketsRecycled(t *testing.T) {
	loop := sim.NewLoop(1)
	n := New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", func(p *Packet) {})
	n.Connect(a, b, 8e6, time.Millisecond, 0)
	n.ComputeRoutes()

	for round := 0; round < 50; round++ {
		pkt := n.NewPacket()
		pkt.Size, pkt.Src, pkt.Dst = 1000, a, b
		n.Send(pkt)
		loop.RunAll()
	}
	if free := len(n.pktFree); free != 1 {
		t.Fatalf("free list holds %d packets after 50 sequential sends, want 1 (recycled)", free)
	}
	// A recycled packet comes back zeroed.
	p := n.NewPacket()
	if p.Size != 0 || p.Payload != nil || p.Src != 0 || p.Dst != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", p)
	}
}
