package netsim

import (
	"testing"
	"time"

	"speakup/internal/sim"
)

// Steady-state regression fence for the packet hot path: once the
// packet pool, ring buffers, and event arena are warm, pushing a
// packet through a link — enqueue, serialize, propagate, deliver,
// reclaim — must not allocate at all.

func TestLinkTransmitDeliverZeroAlloc(t *testing.T) {
	loop := sim.NewLoop(1)
	loop.Grow(64)
	n := New(loop)
	a := n.AddNode("a", nil)
	delivered := 0
	b := n.AddNode("b", func(p *Packet) { delivered++ })
	n.Connect(a, b, 8e6, time.Millisecond, 0)
	n.ComputeRoutes()

	send := func() {
		pkt := n.NewPacket()
		pkt.Size, pkt.Src, pkt.Dst = 1000, a, b
		n.Send(pkt)
		loop.RunAll()
	}
	send() // warm the pool
	if avg := testing.AllocsPerRun(1000, send); avg != 0 {
		t.Fatalf("packet transmit+delivery allocates %.1f objects/op, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}

// Queued traffic exercises the ring buffer as well: bursts deep enough
// to queue must also be allocation-free once the ring has grown.
func TestQueuedBurstZeroAlloc(t *testing.T) {
	loop := sim.NewLoop(1)
	loop.Grow(64)
	n := New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", func(p *Packet) {})
	n.Connect(a, b, 8e6, time.Millisecond, 0)
	n.ComputeRoutes()

	burst := func() {
		for i := 0; i < 8; i++ { // 7 of these queue behind the first
			pkt := n.NewPacket()
			pkt.Size, pkt.Src, pkt.Dst = 1000, a, b
			n.Send(pkt)
		}
		loop.RunAll()
	}
	burst() // warm pool + ring
	if avg := testing.AllocsPerRun(500, burst); avg != 0 {
		t.Fatalf("queued burst allocates %.1f objects/op, want 0", avg)
	}
}

// Drops must be allocation-free too (the dropped packet returns to the
// pool).
func TestDropZeroAlloc(t *testing.T) {
	loop := sim.NewLoop(1)
	loop.Grow(64)
	n := New(loop)
	a := n.AddNode("a", nil)
	b := n.AddNode("b", func(p *Packet) {})
	n.Connect(a, b, 8e6, time.Millisecond, 1000) // tiny queue: bursts drop
	n.ComputeRoutes()

	burst := func() {
		for i := 0; i < 4; i++ {
			pkt := n.NewPacket()
			pkt.Size, pkt.Src, pkt.Dst = 1000, a, b
			n.Send(pkt)
		}
		loop.RunAll()
	}
	burst()
	if avg := testing.AllocsPerRun(500, burst); avg != 0 {
		t.Fatalf("drop path allocates %.1f objects/op, want 0", avg)
	}
	if n.Links()[0].Stats.PktsDropped == 0 {
		t.Fatal("expected drops")
	}
}
