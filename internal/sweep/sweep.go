// Package sweep fans grids of scenario configurations across a worker
// pool. Every figure in the paper's evaluation is a sweep: the same
// deployment re-run over a parameter axis (capacity, window, file
// size, client mix). Each scenario.Run is an independent,
// deterministic, seed-keyed computation, so a grid is embarrassingly
// parallel: the engine hands cells to GOMAXPROCS workers and collects
// results keyed by grid index, producing bit-for-bit the same output
// slice whether it ran on one worker or many.
//
// Experiment drivers (internal/exp) declare their runs with a Grid,
// execute them with an Engine, and read results back by the indices
// Grid.Add returned. cmd/repro exposes the worker count as -parallel
// and wires Engine.Progress to live per-run output.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"speakup/internal/metrics"
	"speakup/internal/scenario"
)

// Run is one cell of a sweep grid: a named scenario configuration.
type Run struct {
	// Name labels the cell in progress output and summary tables,
	// e.g. "fig2/f=0.5/on".
	Name   string
	Config scenario.Config
}

// Result pairs a grid cell with its completed scenario run.
type Result struct {
	// Index is the cell's position in the grid; the engine returns
	// results ordered by it.
	Index int
	// Name echoes the cell's label.
	Name string
	// Result is the completed scenario run.
	Result *scenario.Result
	// Elapsed is the wall-clock time this cell took.
	Elapsed time.Duration
}

// Progress observes completed runs: done cells so far out of total,
// and the result that just finished. The engine serializes calls, but
// they arrive in completion order, not grid order.
type Progress func(done, total int, r Result)

// Grid accumulates the cells of a sweep. The zero value is ready to
// use. Drivers record the index Add returns and use it to read the
// matching Result back after the sweep.
type Grid struct {
	runs []Run
}

// Add appends a named configuration and returns its grid index.
func (g *Grid) Add(name string, cfg scenario.Config) int {
	g.runs = append(g.runs, Run{Name: name, Config: cfg})
	return len(g.runs) - 1
}

// Len returns the number of cells.
func (g *Grid) Len() int { return len(g.runs) }

// Runs returns the accumulated cells in insertion order.
func (g *Grid) Runs() []Run { return g.runs }

// Engine executes sweep grids over a bounded worker pool.
type Engine struct {
	// Workers is the number of concurrent scenario runs. <= 0 means
	// runtime.GOMAXPROCS(0); 1 degenerates to a serial sweep.
	Workers int
	// Progress, if non-nil, is called after each run completes.
	Progress Progress
}

// Sweep runs every cell of the grid and returns results ordered by
// grid index. Each cell is seeded by its own Config.Seed and shares no
// state with its neighbors, so the returned slice is identical for any
// worker count.
func (e Engine) Sweep(grid []Run) []Result {
	results := make([]Result, len(grid))
	if len(grid) == 0 {
		return results
	}
	// Reject bad cells before any worker starts: a panic inside a
	// worker goroutine would crash the process without saying which
	// cell was at fault.
	for _, r := range grid {
		if err := r.Config.Validate(); err != nil {
			panic(fmt.Sprintf("sweep: cell %q: %v", r.Name, err))
		}
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(grid) {
		workers = len(grid)
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done + Progress calls
		done int
	)
	cells := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range cells {
				start := time.Now()
				r := scenario.Run(grid[i].Config)
				results[i] = Result{
					Index:   i,
					Name:    grid[i].Name,
					Result:  r,
					Elapsed: time.Since(start),
				}
				if e.Progress != nil {
					mu.Lock()
					done++
					e.Progress(done, len(grid), results[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range grid {
		cells <- i
	}
	close(cells)
	wg.Wait()
	return results
}

// Sweep runs the grid with default (GOMAXPROCS) parallelism.
func (g *Grid) Sweep() []Result { return Engine{}.Sweep(g.runs) }

// Summary renders an aggregate table of a completed sweep: one row per
// cell (events processed, headline allocations, per-cell wall time)
// plus a totals row. The totals row sums per-cell wall time — the
// compute the sweep burned, which exceeds real elapsed time when cells
// ran in parallel. It is the engine's generic report; figure-specific
// tables stay with their experiments.
func Summary(title string, rs []Result) *metrics.Table {
	t := metrics.NewTable(title,
		"run", "events", "served good", "served bad", "good alloc", "cell wall (s)")
	var (
		events    uint64
		good, bad uint64
		cpu       time.Duration
	)
	for _, r := range rs {
		t.AddRow(r.Name, r.Result.Events, r.Result.ServedGood, r.Result.ServedBad,
			r.Result.GoodAllocation, r.Elapsed.Seconds())
		events += r.Result.Events
		good += r.Result.ServedGood
		bad += r.Result.ServedBad
		cpu += r.Elapsed
	}
	t.AddRow("total", events, good, bad, "", cpu.Seconds())
	return t
}
