package sweep

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"speakup/internal/appsim"
	"speakup/internal/scenario"
)

// testGrid builds a small but non-trivial grid: two modes crossed with
// two capacities, short runs so the suite stays fast even under -race.
func testGrid() []Run {
	var g Grid
	for _, mode := range []appsim.Mode{appsim.ModeAuction, appsim.ModeOff} {
		for _, c := range []float64{10, 20} {
			g.Add(fmt.Sprintf("%s/c=%g", mode, c), scenario.Config{
				Seed: 7, Duration: 5 * time.Second, Capacity: c,
				Mode: mode,
				Groups: []scenario.ClientGroup{
					{Count: 3, Good: true},
					{Count: 3, Good: false},
				},
			})
		}
	}
	return g.Runs()
}

// stripElapsed zeroes the wall-clock field, the only part of a Result
// that legitimately differs between executions of the same grid.
func stripElapsed(rs []Result) []Result {
	out := make([]Result, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := testGrid()
	serial := stripElapsed(Engine{Workers: 1}.Sweep(grid))
	parallel := stripElapsed(Engine{Workers: 8}.Sweep(grid))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("1-worker and 8-worker sweeps differ:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	// And both must differ from nothing: the runs actually served work.
	for i, r := range serial {
		if r.Result == nil || r.Result.Events == 0 {
			t.Fatalf("cell %d (%s) ran no events", i, r.Name)
		}
	}
}

func TestSweepOrderedByGridIndex(t *testing.T) {
	grid := testGrid()
	rs := Engine{Workers: 4}.Sweep(grid)
	if len(rs) != len(grid) {
		t.Fatalf("got %d results for %d cells", len(rs), len(grid))
	}
	for i, r := range rs {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if r.Name != grid[i].Name {
			t.Errorf("result %d named %q, want %q", i, r.Name, grid[i].Name)
		}
	}
}

func TestSweepProgressCountsEveryCell(t *testing.T) {
	grid := testGrid()
	var mu sync.Mutex
	var dones []int
	seen := map[string]bool{}
	e := Engine{Workers: 4, Progress: func(done, total int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		if total != len(grid) {
			t.Errorf("total = %d, want %d", total, len(grid))
		}
		dones = append(dones, done)
		seen[r.Name] = true
	}}
	e.Sweep(grid)
	if len(dones) != len(grid) {
		t.Fatalf("progress called %d times, want %d", len(dones), len(grid))
	}
	// done is a monotonically increasing 1..n counter: the engine
	// serializes progress calls.
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence %v not 1..%d", dones, len(grid))
		}
	}
	for _, r := range grid {
		if !seen[r.Name] {
			t.Errorf("no progress call for %q", r.Name)
		}
	}
}

// TestSweepSharedConfigSlices is the regression test for the
// shared-backing-array race: several cells legitimately reference the
// same Groups slice (exp.Sec81SmartBots does), and scenario.Run must
// apply defaults to private copies rather than writing into the
// shared memory concurrently. Run under -race this fails loudly if
// that copy is ever removed.
func TestSweepSharedConfigSlices(t *testing.T) {
	shared := []scenario.ClientGroup{
		{Count: 2, Good: true},
		{Count: 2, Good: false},
	}
	bottlenecks := []scenario.Bottleneck{{Rate: 2e6, Delay: time.Millisecond}}
	var g Grid
	for _, c := range []float64{10, 20, 30} {
		g.Add(fmt.Sprintf("shared/c=%g", c), scenario.Config{
			Seed: 5, Duration: 5 * time.Second, Capacity: c,
			Mode: appsim.ModeAuction, Groups: shared, Bottlenecks: bottlenecks,
		})
	}
	serial := stripElapsed(Engine{Workers: 1}.Sweep(g.Runs()))
	parallel := stripElapsed(Engine{Workers: 8}.Sweep(g.Runs()))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sweeps over shared config slices differ by worker count")
	}
	// Defaults must not leak back into the caller's slices.
	if shared[0].Bandwidth != 0 || shared[0].Lambda != 0 || shared[0].Name != "" {
		t.Fatalf("Run wrote defaults into the caller's shared Groups slice: %+v", shared[0])
	}
	if bottlenecks[0].QueueBytes != 0 {
		t.Fatalf("Run wrote defaults into the caller's Bottlenecks slice: %+v", bottlenecks[0])
	}
}

func TestSweepEmptyGrid(t *testing.T) {
	if rs := (Engine{}).Sweep(nil); len(rs) != 0 {
		t.Fatalf("empty grid returned %d results", len(rs))
	}
}

func TestSweepRejectsInvalidCell(t *testing.T) {
	var g Grid
	g.Add("bad-cell", scenario.Config{ // no Capacity
		Seed: 1, Duration: time.Second,
		Groups: []scenario.ClientGroup{{Count: 1, Good: true}},
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("invalid cell did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "bad-cell") {
			t.Fatalf("panic %v does not name the cell", r)
		}
	}()
	g.Sweep()
}

func TestGridAddReturnsIndices(t *testing.T) {
	var g Grid
	cfg := scenario.Config{Capacity: 1}
	if i := g.Add("a", cfg); i != 0 {
		t.Fatalf("first index = %d", i)
	}
	if i := g.Add("b", cfg); i != 1 {
		t.Fatalf("second index = %d", i)
	}
	if g.Len() != 2 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestSummaryTable(t *testing.T) {
	grid := testGrid()
	rs := Engine{Workers: 2}.Sweep(grid)
	tab := Summary("sweep summary", rs).String()
	for _, r := range rs {
		if !strings.Contains(tab, r.Name) {
			t.Errorf("summary missing row for %q:\n%s", r.Name, tab)
		}
	}
	if !strings.Contains(tab, "total") {
		t.Errorf("summary missing totals row:\n%s", tab)
	}
}
