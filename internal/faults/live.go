package faults

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnFaults parameterizes the live fault-injecting listener wrapper.
// The zero value injects nothing.
type ConnFaults struct {
	// DropProb is the probability an accepted connection is closed
	// immediately — the client sees a connect-then-reset.
	DropProb float64
	// ResetProb is the per-read probability the connection is torn
	// down mid-stream — payment POSTs die between chunks.
	ResetProb float64
	// Delay stalls each read by up to this long (uniform), simulating
	// a congested or lossy path without killing the conn.
	Delay time.Duration
	// Seed makes the injected faults reproducible across runs.
	Seed int64
}

// Enabled reports whether any fault is armed.
func (f ConnFaults) Enabled() bool {
	return f.DropProb > 0 || f.ResetProb > 0 || f.Delay > 0
}

// WrapListener wraps l so accepted connections suffer the configured
// faults. With a zero ConnFaults the listener is returned unchanged.
func WrapListener(l net.Listener, f ConnFaults) net.Listener {
	if !f.Enabled() {
		return l
	}
	return &faultListener{Listener: l, cfg: f}
}

type faultListener struct {
	net.Listener
	cfg  ConnFaults
	conn atomic.Int64 // per-connection RNG stream selector
}

func (fl *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := fl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		// Each connection draws from its own seeded stream: fault
		// placement depends only on (Seed, accept order, read count),
		// not on goroutine scheduling.
		rng := rand.New(rand.NewSource(fl.cfg.Seed ^ (fl.conn.Add(1) * 0x6a09e667f3bcc909)))
		if fl.cfg.DropProb > 0 && rng.Float64() < fl.cfg.DropProb {
			c.Close() // connect-then-drop: the client's dial succeeded for nothing
			continue
		}
		return &faultConn{Conn: c, cfg: fl.cfg, rng: rng}, nil
	}
}

// faultConn injects read-side faults. Reads are serialized by mu: the
// HTTP server reads each connection from one goroutine at a time, but
// the wrapper must not assume it.
type faultConn struct {
	net.Conn
	cfg ConnFaults
	mu  sync.Mutex
	rng *rand.Rand
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	sleep := time.Duration(0)
	reset := false
	if c.cfg.Delay > 0 {
		sleep = time.Duration(c.rng.Int63n(int64(c.cfg.Delay) + 1))
	}
	if c.cfg.ResetProb > 0 && c.rng.Float64() < c.cfg.ResetProb {
		reset = true
	}
	c.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if reset {
		// Tear the transport down mid-stream: subsequent reads and
		// writes fail, exactly like a payment stream dying under load.
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	return c.Conn.Read(p)
}
