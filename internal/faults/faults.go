// Package faults is the deterministic fault-injection plan shared by
// both thinner stacks. A Plan is a schedule of Events — fault kind ×
// target × window × magnitude — declared in a scenario file (the
// internal/config schema) and executed by the simulator's event loop,
// so the same seed and plan always reproduce the same outage. The
// package also carries the two live-side pieces: a fault-injecting
// net.Listener wrapper for thinnerd (live.go) and the bounded,
// jittered exponential Backoff policy that hardened clients (sim and
// cmd/loadgen alike) use to ride out the injected failures.
//
// A nil or empty Plan is the common case and is free: no code path in
// netsim, server, or core consults fault state unless a plan armed it,
// which is what keeps the figure goldens byte-identical when no plan
// is configured.
package faults

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind names one class of injected failure.
type Kind string

const (
	// LinkLoss drops packets entering the target link with probability
	// Magnitude (0..1) for the event window.
	LinkLoss Kind = "link-loss"
	// LinkJitter adds uniform random extra propagation delay of up to
	// Magnitude seconds per packet on the target link. Delivery order
	// on the link is preserved (jitter never reorders).
	LinkJitter Kind = "link-jitter"
	// Partition drops every packet on the target link for the window —
	// a hard cut. Magnitude is ignored.
	Partition Kind = "partition"
	// OriginStall freezes the origin server for the window: the
	// in-flight request's completion is postponed by the stall, and the
	// thinner browns out (auctions pause, arrivals shed).
	OriginStall Kind = "origin-stall"
	// OriginCrash kills the origin at At: the in-flight request is
	// lost (the client sees a failure) and the origin restarts after
	// Duration of downtime. Magnitude is ignored.
	OriginCrash Kind = "origin-crash"
)

// Link targets, shared with the scenario topology. Origin events take
// no target.
const (
	// TargetTrunk is the shared thinner uplink (both directions).
	TargetTrunk = "trunk"
	// TargetAccessPrefix + a group name targets that group's access
	// links (both directions, every client in the group).
	TargetAccessPrefix = "access:"
	// TargetBottleneckPrefix + a 1-based index targets that shared
	// bottleneck's links (both directions).
	TargetBottleneckPrefix = "bottleneck:"
)

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// Target selects what the fault hits. Link kinds require one of
	// TargetTrunk, "access:<group>", or "bottleneck:<n>"; origin kinds
	// must leave it empty.
	Target string
	// At is the injection time, relative to the run start.
	At time.Duration
	// Duration is the fault window; the fault reverts at At+Duration.
	// Required for every kind (a crash's Duration is its downtime).
	Duration time.Duration
	// Magnitude is the kind-specific intensity: drop probability for
	// LinkLoss, max extra delay in seconds for LinkJitter, unused
	// otherwise.
	Magnitude float64
	// Seed perturbs the event's private RNG stream (loss and jitter
	// draws) independently of the scenario seed. Optional.
	Seed int64
}

// windowed reports whether the event reverts at At+Duration.
func (e Event) needsMagnitude() bool { return e.Kind == LinkLoss || e.Kind == LinkJitter }

// isLinkKind reports whether the event targets a link.
func (e Event) isLinkKind() bool {
	return e.Kind == LinkLoss || e.Kind == LinkJitter || e.Kind == Partition
}

// Validate checks one event against the scenario's shape: groups is
// the set of client-group names, bottlenecks the number of declared
// shared bottlenecks.
func (e Event) Validate(groups map[string]bool, bottlenecks int) error {
	switch e.Kind {
	case LinkLoss, LinkJitter, Partition, OriginStall, OriginCrash:
	default:
		return fmt.Errorf("faults: unknown kind %q", e.Kind)
	}
	if e.At < 0 {
		return fmt.Errorf("faults: %s at %v: negative injection time", e.Kind, e.At)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("faults: %s: duration must be positive (the fault window)", e.Kind)
	}
	if e.isLinkKind() {
		if err := validTarget(e.Target, groups, bottlenecks); err != nil {
			return fmt.Errorf("faults: %s: %w", e.Kind, err)
		}
	} else if e.Target != "" {
		return fmt.Errorf("faults: %s: origin faults take no target (got %q)", e.Kind, e.Target)
	}
	switch e.Kind {
	case LinkLoss:
		if e.Magnitude <= 0 || e.Magnitude > 1 {
			return fmt.Errorf("faults: link-loss magnitude %v: want a drop probability in (0, 1]", e.Magnitude)
		}
	case LinkJitter:
		if e.Magnitude <= 0 {
			return fmt.Errorf("faults: link-jitter magnitude %v: want max extra delay in seconds > 0", e.Magnitude)
		}
	}
	return nil
}

func validTarget(target string, groups map[string]bool, bottlenecks int) error {
	if target == TargetTrunk {
		return nil
	}
	if g, ok := cutPrefix(target, TargetAccessPrefix); ok {
		if !groups[g] {
			return fmt.Errorf("target %q: no client group named %q", target, g)
		}
		return nil
	}
	if s, ok := cutPrefix(target, TargetBottleneckPrefix); ok {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 || n > bottlenecks {
			return fmt.Errorf("target %q: want bottleneck:1..%d", target, bottlenecks)
		}
		return nil
	}
	return fmt.Errorf("target %q: want %q, %q<group>, or %q<n>",
		target, TargetTrunk, TargetAccessPrefix, TargetBottleneckPrefix)
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// Plan is a schedule of fault events. The zero value (nil) means "no
// faults" and costs nothing.
type Plan []Event

// Validate checks every event; see Event.Validate.
func (p Plan) Validate(groups map[string]bool, bottlenecks int) error {
	for i, e := range p {
		if err := e.Validate(groups, bottlenecks); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Backoff is a bounded, jittered exponential retry policy ("equal
// jitter"): attempt n sleeps uniformly in [d/2, d) for
// d = min(Cap, Base·2ⁿ). The half-floor keeps retries from
// synchronizing at zero while the jitter half decorrelates a fleet of
// clients retrying into the same brownout.
type Backoff struct {
	// Base is the attempt-0 ceiling. Default 200ms.
	Base time.Duration
	// Cap bounds the exponential growth. Default 5s.
	Cap time.Duration
}

// WithDefaults fills zero fields with the package defaults.
func (b Backoff) WithDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 200 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 5 * time.Second
	}
	return b
}

// Delay draws the sleep before retry attempt n (0-based) from rng.
// The caller owns rng so simulation retries draw from the client's
// deterministic stream and live retries from a wall-clock-seeded one.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.WithDefaults()
	d := b.Base
	for i := 0; i < attempt && d < b.Cap; i++ {
		d *= 2
	}
	if d > b.Cap {
		d = b.Cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)))
}
