package faults

import (
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"
)

func TestEventValidate(t *testing.T) {
	groups := map[string]bool{"good": true, "bad": true}
	ok := []Event{
		{Kind: LinkLoss, Target: TargetTrunk, Duration: time.Second, Magnitude: 0.5},
		{Kind: LinkLoss, Target: "access:good", Duration: time.Second, Magnitude: 1},
		{Kind: LinkJitter, Target: "bottleneck:2", Duration: time.Second, Magnitude: 0.05},
		{Kind: Partition, Target: "access:bad", Duration: time.Second},
		{Kind: OriginStall, Duration: time.Second, At: 3 * time.Second},
		{Kind: OriginCrash, Duration: time.Second},
	}
	for i, e := range ok {
		if err := e.Validate(groups, 2); err != nil {
			t.Errorf("event %d (%s): unexpected error %v", i, e.Kind, err)
		}
	}
	bad := []struct {
		e    Event
		want string
	}{
		{Event{Kind: "meteor", Duration: time.Second}, "unknown kind"},
		{Event{Kind: LinkLoss, Target: TargetTrunk, Magnitude: 0.5}, "duration"},
		{Event{Kind: LinkLoss, Target: TargetTrunk, Duration: time.Second, Magnitude: 0}, "drop probability"},
		{Event{Kind: LinkLoss, Target: TargetTrunk, Duration: time.Second, Magnitude: 1.5}, "drop probability"},
		{Event{Kind: LinkJitter, Target: TargetTrunk, Duration: time.Second}, "extra delay"},
		{Event{Kind: Partition, Target: "access:nobody", Duration: time.Second}, "no client group"},
		{Event{Kind: Partition, Target: "bottleneck:3", Duration: time.Second}, "bottleneck:1..2"},
		{Event{Kind: Partition, Target: "elsewhere", Duration: time.Second}, "want"},
		{Event{Kind: OriginStall, Target: TargetTrunk, Duration: time.Second}, "no target"},
		{Event{Kind: OriginStall, Duration: time.Second, At: -time.Second}, "negative"},
	}
	for i, tc := range bad {
		err := tc.e.Validate(groups, 2)
		if err == nil {
			t.Errorf("case %d (%s): expected error containing %q, got nil", i, tc.e.Kind, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
	// Plan.Validate locates the offending event.
	p := Plan{ok[0], bad[0].e}
	if err := p.Validate(groups, 2); err == nil || !strings.Contains(err.Error(), "fault 1") {
		t.Errorf("plan error %v does not locate fault 1", err)
	}
}

// TestBackoffBounds checks the equal-jitter contract: attempt n sleeps
// in [d/2, d) for d = min(Cap, Base*2^n), never zero, never past Cap.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 12; attempt++ {
		d := b.Base << attempt
		if d > b.Cap || d <= 0 { // <= 0 guards shift overflow
			d = b.Cap
		}
		for i := 0; i < 200; i++ {
			got := b.Delay(attempt, rng)
			if got < d/2 || got >= d {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, got, d/2, d)
			}
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := Backoff{}.WithDefaults()
	if b.Base != 200*time.Millisecond || b.Cap != 5*time.Second {
		t.Fatalf("defaults = %+v", b)
	}
	rng := rand.New(rand.NewSource(1))
	if d := (Backoff{}).Delay(0, rng); d < 100*time.Millisecond || d >= 200*time.Millisecond {
		t.Fatalf("zero-value Delay(0) = %v, want [100ms, 200ms)", d)
	}
}

func TestWrapListenerZeroPassthrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := WrapListener(ln, ConnFaults{Seed: 7}); got != ln {
		t.Fatalf("zero ConnFaults must return the listener unchanged, got %T", got)
	}
}

// TestWrapListenerDrop arms DropProb=1: every accepted connection is
// closed before the server sees it, and the client observes EOF/reset.
func TestWrapListenerDrop(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, ConnFaults{DropProb: 1, Seed: 1})
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept() // blocks forever: every conn is dropped
		if err == nil {
			accepted <- c
		}
	}()
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("read succeeded on a dropped connection")
		}
		c.Close()
	}
	select {
	case <-accepted:
		t.Fatal("a connection survived DropProb=1")
	default:
	}
}

// TestWrapListenerReset arms ResetProb=1: the first read tears the
// connection down and the client's write side dies mid-stream.
func TestWrapListenerReset(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, ConnFaults{ResetProb: 1, Seed: 1})
	defer ln.Close()
	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer c.Close()
		_, err = c.Read(make([]byte, 64))
		errc <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("payment chunk"))
	if err := <-errc; err != net.ErrClosed {
		t.Fatalf("server read error = %v, want net.ErrClosed", err)
	}
}

// TestWrapListenerDelay checks delayed reads still deliver the bytes.
func TestWrapListenerDelay(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, ConnFaults{Delay: 5 * time.Millisecond, Seed: 1})
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		got <- b
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("hello"))
	c.Close()
	select {
	case b := <-got:
		if string(b) != "hello" {
			t.Fatalf("read %q through delaying conn, want %q", b, "hello")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed read never completed")
	}
}
