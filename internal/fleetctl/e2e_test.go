package fleetctl

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speakup/internal/config"
	"speakup/internal/core"
	"speakup/internal/faults"
	"speakup/internal/web"
)

// These tests drive real thinnerd fronts (web.Front over httptest)
// through full rollouts: the happy path, a forced mid-rollout origin
// brownout that must trigger automatic rollback, and an unreachable
// front that must be retried through. CI runs them under -race.

func fastOrigin() web.Origin {
	return web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		return []byte("ok"), nil
	})
}

// startFront boots one front with its own shard count (heterogeneous
// fleets exercise the per-front target hashes).
func startFront(t *testing.T, origin web.Origin, stallAfter time.Duration, shards int) (*web.Front, string) {
	t.Helper()
	front := web.NewFront(origin, web.Config{
		PayPollInterval:  5 * time.Millisecond,
		OriginStallAfter: stallAfter,
		Thinner: core.Config{
			OrphanTimeout:     500 * time.Millisecond,
			InactivityTimeout: time.Second,
			SweepInterval:     25 * time.Millisecond,
			Shards:            shards,
		},
	})
	srv := httptest.NewServer(front)
	t.Cleanup(func() {
		srv.Close()
		front.Close()
	})
	return front, srv.URL
}

// eventHook is an io.Writer the journal tees into; it fires a
// callback once when a journal line contains every substring of a
// rule. Tests use it to inject failures at exact protocol points.
type eventHook struct {
	mu    sync.Mutex
	rules []*hookRule
}

type hookRule struct {
	subs  []string
	fired bool
	fn    func()
}

func (h *eventHook) on(fn func(), subs ...string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rules = append(h.rules, &hookRule{subs: subs, fn: fn})
}

func (h *eventHook) Write(p []byte) (int, error) {
	line := string(p)
	h.mu.Lock()
	var fire []func()
	for _, r := range h.rules {
		if r.fired {
			continue
		}
		match := true
		for _, s := range r.subs {
			if !strings.Contains(line, s) {
				match = false
				break
			}
		}
		if match {
			r.fired = true
			fire = append(fire, r.fn)
		}
	}
	h.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
	return len(p), nil
}

func TestFleetRolloutHappyPath(t *testing.T) {
	var fronts []*web.Front
	var urls []string
	for _, shards := range []int{4, 8, 8} {
		f, u := startFront(t, fastOrigin(), 0, shards)
		fronts = append(fronts, f)
		urls = append(urls, u)
	}
	patch := config.Thinner{
		OrphanTimeout: config.Duration(4 * time.Second),
		SweepInterval: config.Duration(50 * time.Millisecond),
	}
	var jbuf bytes.Buffer
	run := func() *Report {
		c, err := New(Config{
			Fronts: urls, Patch: patch,
			Soak: 250 * time.Millisecond, Probe: 60 * time.Millisecond,
			PushTimeout: 2 * time.Second, TelemetryInterval: 50 * time.Millisecond,
			Backoff: faults.Backoff{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond},
			Journal: &jbuf,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v\n%s", err, rep.Summary())
		}
		return rep
	}

	rep := run()
	if rep.Outcome != OutcomeConverged {
		t.Fatalf("outcome = %s, want converged\n%s", rep.Outcome, rep.Summary())
	}
	// 3 fronts, canary 1, factor 2: exactly the planned [1, 2] waves.
	if rep.Waves != 2 || rep.PlannedWaves != 2 {
		t.Fatalf("waves = %d/%d, want 2/2", rep.Waves, rep.PlannedWaves)
	}
	for i, fr := range rep.Fronts {
		if !fr.Converged || fr.Skipped || !fr.Pushed {
			t.Fatalf("front %d not pushed+converged: %+v", i, fr)
		}
		if fr.FinalHash != fr.TargetHash || fr.FinalHash == fr.PriorHash {
			t.Fatalf("front %d hashes: %+v", i, fr)
		}
	}
	// Heterogeneous shard counts mean per-front target hashes.
	if rep.Fronts[0].TargetHash == rep.Fronts[1].TargetHash {
		t.Fatal("4-shard and 8-shard fronts share a target hash")
	}
	// The live configs really moved: patched fields at the patch
	// values, untouched fields (and shards) intact.
	for i, f := range fronts {
		got := f.ThinnerConfig()
		if got.OrphanTimeout != patch.OrphanTimeout || got.SweepInterval != patch.SweepInterval {
			t.Fatalf("front %d live config %+v missed the patch", i, got)
		}
		if got.InactivityTimeout != config.Duration(time.Second) {
			t.Fatalf("front %d unpatched field moved: %+v", i, got)
		}
	}
	if fronts[0].ThinnerConfig().Shards == fronts[1].ThinnerConfig().Shards {
		t.Fatal("rollout flattened the fleet's shard counts")
	}

	// Re-running a converged rollout is a no-op: every front skips.
	rep2 := run()
	if rep2.Outcome != OutcomeConverged {
		t.Fatalf("re-run outcome = %s\n%s", rep2.Outcome, rep2.Summary())
	}
	for i, fr := range rep2.Fronts {
		if !fr.Skipped || fr.Pushed {
			t.Fatalf("re-run front %d not idempotent: %+v", i, fr)
		}
	}
}

func TestFleetRolloutBrownoutRollback(t *testing.T) {
	// Front 0's origin can be armed to hang exactly one Serve call
	// until release — the stall-armed pattern from the web brownout
	// test, here fired mid-rollout by a journal hook.
	var stallArmed atomic.Bool
	release := make(chan struct{})
	var releaseOnce sync.Once
	thaw := func() { releaseOnce.Do(func() { close(release) }) }
	defer thaw()
	stallOrigin := web.OriginFunc(func(id core.RequestID) ([]byte, error) {
		if stallArmed.CompareAndSwap(true, false) {
			<-release
		}
		return []byte("ok"), nil
	})

	front0, url0 := startFront(t, stallOrigin, 100*time.Millisecond, 4)
	_, url1 := startFront(t, fastOrigin(), 0, 8)
	_, url2 := startFront(t, fastOrigin(), 0, 8)
	urls := []string{url0, url1, url2}

	// Wave 1 patches the canary (front 0) and soaks clean. When wave
	// 2's soak opens, hang front 0's origin: its watchdog declares the
	// stall, the soak guardrail must breach, and the controller must
	// roll all three fronts back. The origin thaws only once rollback
	// begins, so the rollback POST to front 0 first eats mid-brownout
	// 503s and has to retry through them.
	blockedReq := make(chan error, 1)
	hook := &eventHook{}
	hook.on(func() {
		stallArmed.Store(true)
		go func() {
			resp, err := http.Get(url0 + "/request?id=999")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			blockedReq <- err
		}()
	}, `"event":"soak_start"`, `"wave":2`)
	// Thaw only once the rollback has actually eaten a mid-brownout 503
	// from the stalled canary: the restore must retry through the very
	// brownout that triggered it.
	hook.on(thaw, `"event":"rollback_retry"`, `"front":"`+url0+`"`)

	var jbuf bytes.Buffer
	c, err := New(Config{
		Fronts: urls,
		Patch:  config.Thinner{OrphanTimeout: config.Duration(4 * time.Second)},
		Soak:   2 * time.Second, Probe: 100 * time.Millisecond,
		PushTimeout: time.Second, RetryBudget: 4,
		Backoff:           faults.Backoff{Base: 50 * time.Millisecond, Cap: 300 * time.Millisecond},
		TelemetryInterval: 50 * time.Millisecond,
		Journal:           io.MultiWriter(hook, &jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v\n%s\njournal:\n%s", err, rep.Summary(), jbuf.String())
	}
	if rep.Outcome != OutcomeRolledBack {
		t.Fatalf("outcome = %s, want rolled-back\n%s\njournal:\n%s", rep.Outcome, rep.Summary(), jbuf.String())
	}
	if rep.Waves != 2 {
		t.Fatalf("halted at wave %d, want 2", rep.Waves)
	}
	if !strings.Contains(rep.Breach, url0) {
		t.Fatalf("breach %q does not name the stalled front %s", rep.Breach, url0)
	}
	for i, fr := range rep.Fronts {
		if !fr.Pushed {
			t.Fatalf("front %d never pushed: %+v", i, fr)
		}
		if !fr.RolledBack || fr.Failure != "" {
			t.Fatalf("front %d not rolled back: %+v", i, fr)
		}
		if fr.FinalHash != fr.PriorHash {
			t.Fatalf("front %d final hash %s, want prior %s", i, short(fr.FinalHash), short(fr.PriorHash))
		}
	}
	// The rollback fought through at least one mid-brownout 503 on the
	// stalled canary.
	if !strings.Contains(jbuf.String(), "rollback_retry") {
		t.Fatalf("rollback never retried through the brownout:\n%s", jbuf.String())
	}
	// Live configs are back at pre-rollout values.
	if got := front0.ThinnerConfig().OrphanTimeout; got != config.Duration(500*time.Millisecond) {
		t.Fatalf("front 0 orphan timeout %v after rollback, want the pre-rollout 500ms", got)
	}

	// The request that caused the stall drains; no stranded waiters or
	// leaked channels on the recovered canary.
	select {
	case err := <-blockedReq:
		if err != nil {
			t.Fatalf("stalling request failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalling request stranded after recovery")
	}
	deadline := time.Now().Add(10 * time.Second)
	for (front0.Table().Waiters() > 0 || front0.Table().Size() > 0) && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := front0.Table().Waiters(); n > 0 {
		t.Fatalf("%d waiters stranded on the rolled-back canary", n)
	}
	if n := front0.Table().Size(); n > 0 {
		t.Fatalf("%d channels leaked on the rolled-back canary", n)
	}
}

func TestFleetRolloutUnreachableFrontRetry(t *testing.T) {
	_, url0 := startFront(t, fastOrigin(), 0, 4)
	_, url1 := startFront(t, fastOrigin(), 0, 8)

	// Front 2 owns a listening socket from the start (connects land in
	// the accept backlog) but only begins serving after a delay: every
	// early config call hangs until its PushTimeout and must be
	// retried, not declared fatal.
	lateFront := web.NewFront(fastOrigin(), web.Config{
		PayPollInterval: 5 * time.Millisecond,
		Thinner: core.Config{
			OrphanTimeout:     500 * time.Millisecond,
			InactivityTimeout: time.Second,
			SweepInterval:     25 * time.Millisecond,
			Shards:            8,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		lateFront.Close()
	})
	go func() {
		time.Sleep(600 * time.Millisecond)
		http.Serve(ln, lateFront)
	}()
	url2 := "http://" + ln.Addr().String()

	var jbuf bytes.Buffer
	c, err := New(Config{
		Fronts: []string{url0, url1, url2},
		Patch:  config.Thinner{OrphanTimeout: config.Duration(4 * time.Second)},
		Soak:   200 * time.Millisecond, Probe: 60 * time.Millisecond,
		PushTimeout: 200 * time.Millisecond, RetryBudget: 8,
		Backoff:           faults.Backoff{Base: 100 * time.Millisecond, Cap: 300 * time.Millisecond},
		TelemetryInterval: 50 * time.Millisecond,
		Journal:           &jbuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v\n%s\njournal:\n%s", err, rep.Summary(), jbuf.String())
	}
	if rep.Outcome != OutcomeConverged {
		t.Fatalf("outcome = %s, want converged\n%s", rep.Outcome, rep.Summary())
	}
	var late *FrontReport
	for i := range rep.Fronts {
		if rep.Fronts[i].URL == url2 {
			late = &rep.Fronts[i]
		}
	}
	if late == nil || !late.Converged {
		t.Fatalf("late front never converged: %+v\n%s", late, rep.Summary())
	}
	if late.Attempts < 2 {
		t.Fatalf("late front converged in %d attempt(s): the outage was never exercised", late.Attempts)
	}
	if got := lateFront.ThinnerConfig().OrphanTimeout; got != config.Duration(4*time.Second) {
		t.Fatalf("late front orphan timeout %v, want the patched 4s", got)
	}
}
