package fleetctl

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"speakup/internal/config"
)

// Outcome is how a rollout ended.
type Outcome string

const (
	// OutcomeConverged: every front reports the target config hash.
	OutcomeConverged Outcome = "converged"
	// OutcomeQuorum: the quorum policy accepted the rollout with some
	// fronts failed; the converged fraction is at or above Config.Quorum.
	OutcomeQuorum Outcome = "converged-quorum"
	// OutcomeRolledBack: a guardrail breached (or the abort policy
	// fired) and every patched front was restored to its pre-rollout
	// config; the fleet is back at the prior hashes.
	OutcomeRolledBack Outcome = "rolled-back"
	// OutcomeFailed: the rollout could not complete its protocol — a
	// capture failed under the abort policy, a patch was rejected as
	// invalid, or a rollback push never converged. The fleet may be in
	// a mixed state; Run returns a non-nil error alongside.
	OutcomeFailed Outcome = "failed"
)

// FrontReport is one front's rollout accounting.
type FrontReport struct {
	URL string `json:"url"`
	// Wave is the 1-based wave the front was assigned to (0: never
	// planned, e.g. a capture failure under the quorum policy).
	Wave int `json:"wave,omitempty"`
	// PriorHash is the captured pre-rollout config hash — the rollback
	// identity. TargetHash is the hash of the captured config with the
	// rollout patch merged over it (per-front: fronts with different
	// shard counts have different target hashes for the same patch).
	PriorHash  string `json:"prior_hash,omitempty"`
	TargetHash string `json:"target_hash,omitempty"`
	// FinalHash is the last config hash the controller observed.
	FinalHash string `json:"final_hash,omitempty"`
	// Skipped: the front was already at the target hash; no POST sent.
	Skipped bool `json:"skipped,omitempty"`
	// Pushed: at least one patch POST was attempted (a timed-out POST
	// may still have applied, so rollback covers every pushed front).
	Pushed bool `json:"pushed,omitempty"`
	// Converged: the front verifiably reached the target hash.
	Converged bool `json:"converged,omitempty"`
	// RolledBack: the front was verifiably restored to PriorHash.
	RolledBack bool `json:"rolled_back,omitempty"`
	// Attempts counts config POSTs/GETs spent on this front.
	Attempts int `json:"attempts,omitempty"`
	// Failure is the front's terminal error, "" when healthy.
	Failure string `json:"failure,omitempty"`
}

// Report is a completed rollout's account: what Run decided and why.
type Report struct {
	Outcome Outcome `json:"outcome"`
	// Patch is the thinner patch the rollout fanned out.
	Patch config.Thinner `json:"patch"`
	// PlannedWaves and Waves count planned vs actually executed waves.
	PlannedWaves int `json:"planned_waves"`
	Waves        int `json:"waves"`
	// Breach is the guardrail reason that halted the rollout ("" when
	// none breached).
	Breach string        `json:"breach,omitempty"`
	Fronts []FrontReport `json:"fronts"`
}

// Summary renders a one-paragraph human account of the rollout.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rollout %s: %d/%d waves", r.Outcome, r.Waves, r.PlannedWaves)
	if r.Breach != "" {
		fmt.Fprintf(&b, " (breach: %s)", r.Breach)
	}
	b.WriteString("\n")
	for _, f := range r.Fronts {
		state := "untouched"
		switch {
		case f.Failure != "":
			state = "FAILED: " + f.Failure
		case f.RolledBack:
			state = "rolled back to " + short(f.PriorHash)
		case f.Skipped:
			state = "already at " + short(f.TargetHash)
		case f.Converged:
			state = "converged to " + short(f.TargetHash)
		case f.Pushed:
			state = "pushed, unverified"
		}
		fmt.Fprintf(&b, "  %-40s wave %d  %s\n", f.URL, f.Wave, state)
	}
	return b.String()
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// Entry is one NDJSON journal line: every decision the controller
// takes — captures, wave starts, pushes, soak verdicts, guardrail
// breaches, rollbacks — lands as one Entry so a rollout is auditable
// after the fact (and a test can hook the stream to orchestrate
// failures at exact protocol points).
type Entry struct {
	TS    time.Time `json:"ts"`
	Event string    `json:"event"`
	// Wave is 1-based in the journal; 0 (omitted) means "not wave-scoped".
	Wave    int      `json:"wave,omitempty"`
	Front   string   `json:"front,omitempty"`
	Fronts  []string `json:"fronts,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	Hash    string   `json:"hash,omitempty"`
	Target  string   `json:"target,omitempty"`
	Reason  string   `json:"reason,omitempty"`
	Outcome Outcome  `json:"outcome,omitempty"`
	Err     string   `json:"err,omitempty"`
}

// journal serializes Entry lines onto one writer. Pushes within a
// wave run concurrently, so every write goes through the mutex; a nil
// writer journals nowhere at zero cost.
type journal struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newJournal(w io.Writer) *journal {
	j := &journal{}
	if w != nil {
		j.enc = json.NewEncoder(w)
	}
	return j
}

func (j *journal) log(e Entry) {
	if j.enc == nil {
		return
	}
	e.TS = time.Now().UTC()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.enc.Encode(e)
}
