package fleetctl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"speakup/internal/fleetwatch"
)

// Observation is one patched front's state at a soak probe tick: the
// direct /healthz answer plus whatever the telemetry watcher has seen.
// It is a plain value so evaluateGuardrails stays a pure function a
// unit test can drive without servers.
type Observation struct {
	Front string
	// HealthzErr is the probe's transport error ("" when it answered).
	HealthzErr string
	// Status and Origin are the /healthz fields ("ok"/"degraded" and
	// the brownout-ladder rung).
	Status string
	Origin string
	// TelemetryHealth is the watcher's view of the same ladder ("" when
	// the front has not reported telemetry yet) — a second, independent
	// signal path: a front whose control socket still answers but whose
	// telemetry says stalled is browned out all the same.
	TelemetryHealth string
	// ShedDelta is how many arrivals the front shed since the soak
	// window opened (0 when no telemetry baseline exists yet).
	ShedDelta int64
}

// evaluateGuardrails returns the first breach among the observations,
// or "" when the fleet looks healthy. Breach conditions, in order of
// severity: the front's healthz is unreachable, the front reports
// degraded, either signal path says the origin is stalled, or the
// front shed more arrivals than the guardrail allows. A recovering
// origin is NOT a breach — that is the ladder doing its job — and a
// negative shedGuardrail disables the shed check.
func evaluateGuardrails(obs []Observation, shedGuardrail int64) string {
	for _, o := range obs {
		switch {
		case o.HealthzErr != "":
			return fmt.Sprintf("%s: healthz unreachable: %s", o.Front, o.HealthzErr)
		case o.Status != "ok":
			return fmt.Sprintf("%s: healthz %q (origin %s)", o.Front, o.Status, o.Origin)
		case o.Origin == "stalled":
			return fmt.Sprintf("%s: origin stalled", o.Front)
		case o.TelemetryHealth == "stalled":
			return fmt.Sprintf("%s: telemetry reports origin stalled", o.Front)
		case shedGuardrail >= 0 && o.ShedDelta > shedGuardrail:
			return fmt.Sprintf("%s: shed %d arrivals during soak (guardrail %d)", o.Front, o.ShedDelta, shedGuardrail)
		}
	}
	return ""
}

// soak watches the patched fronts for the configured window and
// returns a breach reason, or "" when the window closed clean. The
// guardrail scope is deliberately the patched fronts only: an
// unreachable front the rollout has not touched yet is a push problem
// for its own wave, not evidence against the config change.
func (c *Controller) soak(ctx context.Context, waveNo int, patched []*frontState) string {
	c.jr.log(Entry{Event: "soak_start", Wave: waveNo, Fronts: urlsOf(patched)})
	start := time.Now()
	deadline := start.Add(c.cfg.Soak)
	shedBase := c.shedBaseline(patched)
	admitBase := c.admittedTotal()
	ticker := time.NewTicker(c.cfg.Probe)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return "soak interrupted: " + ctx.Err().Error()
		case now := <-ticker.C:
			obs := c.observe(ctx, patched, shedBase)
			if breach := evaluateGuardrails(obs, c.cfg.ShedGuardrail); breach != "" {
				return breach
			}
			if now.Before(deadline) {
				continue
			}
			// Window closed clean; the fleet-wide good-service floor is
			// judged over the whole window, not per tick.
			if c.cfg.MinAdmitRate > 0 {
				elapsed := time.Since(start).Seconds()
				rate := float64(c.admittedTotal()-admitBase) / elapsed
				if rate < c.cfg.MinAdmitRate {
					return fmt.Sprintf("fleet admit rate %.2f/s below floor %.2f/s over %.1fs soak",
						rate, c.cfg.MinAdmitRate, elapsed)
				}
			}
			return ""
		}
	}
}

// observe probes every patched front's /healthz concurrently and
// joins in the telemetry watcher's latest view.
func (c *Controller) observe(ctx context.Context, patched []*frontState, shedBase map[string]int64) []Observation {
	states := map[string]fleetwatch.FrontState{}
	for _, st := range c.watcher.States() {
		states[st.URL] = st
	}
	obs := make([]Observation, len(patched))
	var wg sync.WaitGroup
	for i, f := range patched {
		wg.Add(1)
		go func(i int, f *frontState) {
			defer wg.Done()
			o := Observation{Front: f.url}
			hz, err := c.getHealthz(ctx, f.url)
			if err != nil {
				o.HealthzErr = err.Error()
			} else {
				o.Status, o.Origin = hz.Status, hz.Origin
			}
			if st, ok := states[f.url]; ok && !st.LastSeen.IsZero() {
				o.TelemetryHealth = st.Health
				if base, ok := shedBase[f.url]; ok {
					o.ShedDelta = int64(st.Snapshot.Shed) - base
				}
			}
			obs[i] = o
		}(i, f)
	}
	wg.Wait()
	return obs
}

// healthzReply is the slice of /healthz the controller reads.
type healthzReply struct {
	Status string `json:"status"`
	Origin string `json:"origin"`
}

func (c *Controller) getHealthz(ctx context.Context, url string) (healthzReply, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return healthzReply{}, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return healthzReply{}, err
	}
	defer resp.Body.Close()
	var h healthzReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&h); err != nil {
		return healthzReply{}, fmt.Errorf("bad healthz body: %w", err)
	}
	return h, nil
}

// shedBaseline records each patched front's shed counter at soak
// start so the guardrail judges the window's delta, not history. A
// front with no telemetry yet gets no baseline (and so no delta): a
// counter first observed mid-window cannot be attributed to it.
func (c *Controller) shedBaseline(patched []*frontState) map[string]int64 {
	base := map[string]int64{}
	for _, st := range c.watcher.States() {
		if st.LastSeen.IsZero() {
			continue
		}
		for _, f := range patched {
			if f.url == st.URL {
				base[f.url] = int64(st.Snapshot.Shed)
			}
		}
	}
	return base
}

// admittedTotal sums admissions over every front that has reported.
func (c *Controller) admittedTotal() uint64 {
	var total uint64
	for _, st := range c.watcher.States() {
		if !st.LastSeen.IsZero() {
			total += st.Snapshot.Admitted
		}
	}
	return total
}
