package fleetctl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"speakup/internal/config"
)

func mkController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waveSizes(waves [][]*frontState) []int {
	out := make([]int, len(waves))
	for i, w := range waves {
		out[i] = len(w)
	}
	return out
}

func TestPlanWaves(t *testing.T) {
	urls := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = "http://f" + string(rune('a'+i))
		}
		return out
	}
	cases := []struct {
		name   string
		fronts int
		cfg    Config
		want   []int
	}{
		{"canary-then-doubling", 7, Config{}, []int{1, 2, 4}},
		{"remainder-wave", 6, Config{}, []int{1, 2, 3}},
		{"single-front", 1, Config{}, []int{1}},
		{"big-canary", 5, Config{CanarySize: 3}, []int{3, 2}},
		{"factor-three", 13, Config{WaveFactor: 3}, []int{1, 3, 9}},
		{"max-wave-cap", 9, Config{MaxWaveSize: 3}, []int{1, 2, 3, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Fronts = urls(tc.fronts)
			c := mkController(t, tc.cfg)
			got := waveSizes(c.planWaves())
			if len(got) != len(tc.want) {
				t.Fatalf("waves = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("waves = %v, want %v", got, tc.want)
				}
			}
			// Wave numbers are 1-based and cover every front exactly once.
			seen := 0
			for wi, wave := range c.planWaves() {
				for _, f := range wave {
					if f.wave != wi+1 {
						t.Fatalf("front %s wave = %d, want %d", f.url, f.wave, wi+1)
					}
					seen++
				}
			}
			if seen != tc.fronts {
				t.Fatalf("planned %d fronts, want %d", seen, tc.fronts)
			}
		})
	}
}

func TestPlanWavesSkipsFailedCaptures(t *testing.T) {
	c := mkController(t, Config{Fronts: []string{"http://a", "http://b", "http://c", "http://d"}})
	c.fronts[1].failure = "capture: connection refused"
	waves := c.planWaves()
	total := 0
	for _, w := range waves {
		for _, f := range w {
			if f.url == "http://b" {
				t.Fatal("failed-capture front was planned into a wave")
			}
			total++
		}
	}
	if total != 3 {
		t.Fatalf("planned %d fronts, want 3", total)
	}
	if c.fronts[1].wave != 0 {
		t.Fatalf("failed front wave = %d, want 0 (never planned)", c.fronts[1].wave)
	}
}

func TestEvaluateGuardrails(t *testing.T) {
	ok := Observation{Front: "http://a", Status: "ok", Origin: "ok", TelemetryHealth: "ok"}
	cases := []struct {
		name      string
		obs       []Observation
		shed      int64
		wantMatch string // "" = no breach
	}{
		{"all-healthy", []Observation{ok, ok}, 0, ""},
		{"no-observations", nil, 0, ""},
		{"healthz-unreachable", []Observation{ok, {Front: "http://b", HealthzErr: "connection refused"}}, 0, "unreachable"},
		{"degraded", []Observation{{Front: "http://a", Status: "degraded", Origin: "stalled"}}, 0, "degraded"},
		{"origin-stalled", []Observation{{Front: "http://a", Status: "ok", Origin: "stalled"}}, 0, "origin stalled"},
		{"telemetry-stalled", []Observation{{Front: "http://a", Status: "ok", Origin: "ok", TelemetryHealth: "stalled"}}, 0, "telemetry"},
		// The ladder doing its job is not a breach.
		{"recovering-is-fine", []Observation{{Front: "http://a", Status: "ok", Origin: "recovering", TelemetryHealth: "recovering"}}, 0, ""},
		// No telemetry yet (empty TelemetryHealth) is not a breach either.
		{"no-telemetry-yet", []Observation{{Front: "http://a", Status: "ok", Origin: "ok"}}, 0, ""},
		{"any-shed-breaches-at-zero", []Observation{{Front: "http://a", Status: "ok", Origin: "ok", ShedDelta: 1}}, 0, "shed"},
		{"shed-under-threshold", []Observation{{Front: "http://a", Status: "ok", Origin: "ok", ShedDelta: 5}}, 10, ""},
		{"shed-over-threshold", []Observation{{Front: "http://a", Status: "ok", Origin: "ok", ShedDelta: 11}}, 10, "shed"},
		{"shed-disabled", []Observation{{Front: "http://a", Status: "ok", Origin: "ok", ShedDelta: 9999}}, -1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := evaluateGuardrails(tc.obs, tc.shed)
			if tc.wantMatch == "" && got != "" {
				t.Fatalf("unexpected breach: %q", got)
			}
			if tc.wantMatch != "" && !strings.Contains(got, tc.wantMatch) {
				t.Fatalf("breach = %q, want match %q", got, tc.wantMatch)
			}
		})
	}
}

func TestJournalNDJSON(t *testing.T) {
	var buf bytes.Buffer
	j := newJournal(&buf)
	j.log(Entry{Event: "wave_start", Wave: 2, Fronts: []string{"http://a"}})
	j.log(Entry{Event: "push", Front: "http://a", Attempt: 1, Hash: "abc"})

	sc := bufio.NewScanner(&buf)
	var lines []Entry
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("journal line not JSON: %v (%s)", err, sc.Text())
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("%d journal lines, want 2", len(lines))
	}
	if lines[0].Event != "wave_start" || lines[0].Wave != 2 || lines[0].TS.IsZero() {
		t.Fatalf("first entry: %+v", lines[0])
	}
	if lines[1].Front != "http://a" || lines[1].Hash != "abc" {
		t.Fatalf("second entry: %+v", lines[1])
	}
	// A nil writer journals nowhere without panicking.
	newJournal(nil).log(Entry{Event: "noop"})
}

func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New(Config{Fronts: []string{"http://a", "http://a/"}}); err == nil {
		t.Fatal("duplicate front (after trailing-slash trim) accepted")
	}
}

func TestPolicyHolds(t *testing.T) {
	c := mkController(t, Config{Fronts: []string{"http://a", "http://b", "http://c", "http://d", "http://e"},
		Policy: PolicyQuorum, Quorum: 0.8})
	if !c.policyHolds() {
		t.Fatal("healthy fleet must hold")
	}
	c.fronts[0].failure = "push: timeout"
	if !c.policyHolds() { // 4/5 = 0.8 meets the quorum exactly
		t.Fatal("quorum 0.8 with 4/5 convergeable must hold")
	}
	c.fronts[1].failure = "push: timeout"
	if c.policyHolds() { // 3/5 = 0.6 < 0.8
		t.Fatal("quorum must break at 3/5")
	}

	a := mkController(t, Config{Fronts: []string{"http://a", "http://b"}}) // default abort
	a.fronts[0].failure = "push: timeout"
	if a.policyHolds() {
		t.Fatal("abort policy must break on any failure")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.CanarySize != 1 || cfg.WaveFactor != 2 || cfg.Policy != PolicyAbort {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Soak != 5*time.Second || cfg.Probe != time.Second || cfg.RetryBudget != 4 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Quorum != 0.8 || cfg.Client == nil {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestReportSummary(t *testing.T) {
	r := &Report{
		Outcome: OutcomeRolledBack, Waves: 2, PlannedWaves: 3,
		Breach: "http://a: origin stalled",
		Patch:  config.Thinner{Shards: 8},
		Fronts: []FrontReport{
			{URL: "http://a", Wave: 1, PriorHash: strings.Repeat("a", 64), Pushed: true, RolledBack: true},
			{URL: "http://b", Wave: 2, TargetHash: strings.Repeat("b", 64), Skipped: true},
			{URL: "http://c", Wave: 2, Failure: "rollback: exhausted"},
		},
	}
	s := r.Summary()
	for _, want := range []string{"rolled-back", "2/3 waves", "origin stalled",
		"rolled back to " + strings.Repeat("a", 12), "already at " + strings.Repeat("b", 12), "FAILED"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
