// Package fleetctl is the write half of fleet control: it takes one
// scenario file's thinner section and rolls it out across N thinnerd
// fronts as /control/config patches in health-gated waves — canary
// first, then expanding batches — verifying convergence by config
// hash after each wave. Between waves the controller soaks: it
// watches every patched front's /healthz and telemetry (via the
// fleetwatch subscriber) for a configurable window, and if any
// patched front reports a brownout, sheds past a guardrail, or the
// fleet's good-service rate collapses, the rollout halts and every
// already-patched front is automatically rolled back to its captured
// pre-rollout config, converging the fleet back to the prior hashes.
//
// The protocol is defensive at every step:
//
//   - Pushes are idempotent: a front already at its target hash is
//     skipped, and re-running a converged rollout touches nothing.
//   - Every push carries the full merged target section (not the bare
//     patch), so a concurrent writer cannot leave a front half-moved;
//     convergence is re-verified by hash after every wave.
//   - Each front gets bounded retry/backoff with per-call timeouts; a
//     front that answers 503 (including the mid-brownout reconfig
//     rejection) is retried, a 400 is a fatal patch error.
//   - Partial failure follows the configured policy: abort-and-
//     rollback (default) halts on the first exhausted front, quorum
//     tolerates failures while the convergeable fraction stays at or
//     above Config.Quorum.
//   - Every decision is journaled as NDJSON for audit.
package fleetctl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"speakup/internal/config"
	"speakup/internal/faults"
	"speakup/internal/fleetwatch"
)

// Policy selects how a rollout treats fronts whose pushes fail after
// the retry budget (unreachable hosts, persistent rejections).
type Policy string

const (
	// PolicyAbort (default): any exhausted front halts the rollout and
	// rolls back everything already patched.
	PolicyAbort Policy = "abort"
	// PolicyQuorum: failed fronts are recorded and the rollout
	// continues while the fraction of fronts still convergeable is at
	// least Config.Quorum; dropping below it triggers rollback.
	PolicyQuorum Policy = "quorum"
)

// Config tunes a rollout Controller.
type Config struct {
	// Fronts are the thinnerd base URLs in rollout order (the first
	// CanarySize fronts form the canary wave).
	Fronts []string
	// Patch is the thinner section to fan out; zero fields mean
	// "unchanged" (the /control/config POST contract). Typically the
	// thinner section of a scenario file.
	Patch config.Thinner
	// CanarySize is wave 0's size. Default 1.
	CanarySize int
	// WaveFactor multiplies each subsequent wave's size. Default 2
	// (1, 2, 4, ... fronts).
	WaveFactor int
	// MaxWaveSize caps any single wave. 0: unlimited.
	MaxWaveSize int
	// Soak is the observation window after each wave (the last wave
	// included) during which guardrails can still roll the fleet back.
	// Default 5s.
	Soak time.Duration
	// Probe is the health-poll cadence within a soak window. Default
	// Soak/5, floored at 50ms.
	Probe time.Duration
	// PushTimeout bounds each config GET/POST and healthz probe.
	// Default 5s.
	PushTimeout time.Duration
	// RetryBudget is the per-front retry count for captures and
	// pushes. Default 4. Rollback pushes get twice this budget: they
	// must outlast the brownout that triggered them.
	RetryBudget int
	// Backoff paces retries (bounded jittered exponential).
	Backoff faults.Backoff
	// Policy is the partial-failure policy. Default PolicyAbort.
	Policy Policy
	// Quorum is the minimum convergeable fraction under PolicyQuorum.
	// Default 0.8.
	Quorum float64
	// ShedGuardrail breaches a soak when any patched front sheds more
	// than this many arrivals during the window. 0 (default) means any
	// shed breaches; negative disables the guardrail.
	ShedGuardrail int64
	// MinAdmitRate breaches a soak when the fleet-wide admission rate
	// (admitted/sec summed over reporting fronts) falls below it. 0
	// disables — the right setting depends on offered load, so it is
	// opt-in.
	MinAdmitRate float64
	// TelemetryInterval is the cadence requested from each front's
	// /telemetry stream. Default 500ms.
	TelemetryInterval time.Duration
	// Journal receives the NDJSON decision journal (nil: no journal).
	Journal io.Writer
	// Client issues all HTTP calls. Default: a fresh http.Client (per-
	// call timeouts come from PushTimeout contexts).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.CanarySize <= 0 {
		c.CanarySize = 1
	}
	if c.WaveFactor <= 1 {
		c.WaveFactor = 2
	}
	if c.Soak <= 0 {
		c.Soak = 5 * time.Second
	}
	if c.Probe <= 0 {
		c.Probe = c.Soak / 5
	}
	if c.Probe < 50*time.Millisecond {
		c.Probe = 50 * time.Millisecond
	}
	if c.PushTimeout <= 0 {
		c.PushTimeout = 5 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 4
	}
	if c.Policy == "" {
		c.Policy = PolicyAbort
	}
	if c.Quorum <= 0 || c.Quorum > 1 {
		c.Quorum = 0.8
	}
	if c.TelemetryInterval <= 0 {
		c.TelemetryInterval = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// frontState is one front's mutable rollout state.
type frontState struct {
	url        string
	wave       int // 1-based journal numbering
	prior      config.Thinner
	priorHash  string
	target     config.Thinner
	targetHash string
	finalHash  string
	skipped    bool
	pushed     bool
	converged  bool
	rolledBack bool
	attempts   int
	failure    string
}

// Controller executes one staged rollout. Create with New, call Run
// once.
type Controller struct {
	cfg     Config
	jr      *journal
	mu      sync.Mutex // guards fronts' mutable fields across push goroutines
	fronts  []*frontState
	watcher *fleetwatch.Watcher
}

// New creates a controller for cfg. It validates the front list but
// performs no I/O until Run.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Fronts) == 0 {
		return nil, errors.New("fleetctl: no fronts")
	}
	if cfg.Policy != PolicyAbort && cfg.Policy != PolicyQuorum {
		return nil, fmt.Errorf("fleetctl: unknown policy %q (want %q or %q)", cfg.Policy, PolicyAbort, PolicyQuorum)
	}
	seen := map[string]bool{}
	c := &Controller{cfg: cfg, jr: newJournal(cfg.Journal)}
	for _, u := range cfg.Fronts {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			return nil, fmt.Errorf("fleetctl: empty or duplicate front %q", u)
		}
		seen[u] = true
		c.fronts = append(c.fronts, &frontState{url: u})
	}
	return c, nil
}

// Plan returns the wave partition Run would use if every capture
// succeeds — front URLs per wave, canary first. It performs no I/O,
// so a CLI dry-run can print the plan without touching the fleet.
func (c *Controller) Plan() [][]string {
	waves := c.planWaves()
	out := make([][]string, len(waves))
	for i, w := range waves {
		out[i] = urlsOf(w)
	}
	return out
}

// Run executes the rollout: capture, staged waves with soak windows,
// and — on a guardrail breach or a fatal push failure — automatic
// rollback of every patched front. The returned Report is non-nil
// whenever the protocol ran; the error is non-nil only when the fleet
// may be left inconsistent (capture aborted, invalid patch, or a
// rollback that could not converge). A clean rollback returns
// OutcomeRolledBack with a nil error: the controller did its job.
func (c *Controller) Run(ctx context.Context) (*Report, error) {
	c.watcher = fleetwatch.New(fleetwatch.Config{
		Fronts:   c.urls(),
		Interval: c.cfg.TelemetryInterval,
		Backoff:  c.cfg.Backoff,
		Client:   c.cfg.Client,
	})
	c.watcher.Start(ctx)
	defer c.watcher.Stop()

	if err := c.capture(ctx); err != nil {
		return c.report(OutcomeFailed, 0, 0, ""), err
	}

	waves := c.planWaves()
	c.jr.log(Entry{Event: "plan", Fronts: c.urls(), Reason: fmt.Sprintf(
		"policy=%s canary=%d factor=%d waves=%d soak=%s patch=%s",
		c.cfg.Policy, c.cfg.CanarySize, c.cfg.WaveFactor, len(waves), c.cfg.Soak, patchString(c.cfg.Patch))})

	var patched []*frontState // every front a POST was attempted on
	for wi, wave := range waves {
		waveNo := wi + 1
		c.jr.log(Entry{Event: "wave_start", Wave: waveNo, Fronts: urlsOf(wave)})
		fatal := c.pushWave(ctx, waveNo, wave, &patched)
		if fatal != "" {
			return c.haltAndRollback(ctx, waveNo, patched, "push: "+fatal)
		}
		if !c.policyHolds() {
			return c.haltAndRollback(ctx, waveNo, patched, c.policyBreach())
		}
		c.jr.log(Entry{Event: "wave_converged", Wave: waveNo, Fronts: urlsOf(wave)})

		if breach := c.soak(ctx, waveNo, patched); breach != "" {
			return c.haltAndRollback(ctx, waveNo, patched, breach)
		}
		c.jr.log(Entry{Event: "soak_ok", Wave: waveNo})
	}

	outcome := OutcomeConverged
	if c.failedFronts() > 0 {
		outcome = OutcomeQuorum
	}
	c.jr.log(Entry{Event: "done", Outcome: outcome})
	return c.report(outcome, len(waves), len(waves), ""), nil
}

func (c *Controller) urls() []string {
	out := make([]string, len(c.fronts))
	for i, f := range c.fronts {
		out[i] = f.url
	}
	return out
}

func urlsOf(fs []*frontState) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.url
	}
	return out
}

func patchString(t config.Thinner) string {
	b, _ := json.Marshal(t)
	return string(b)
}

// capture GETs every front's pre-rollout config (with retries) and
// computes its per-front merged target + hash. Under PolicyAbort any
// capture failure aborts the rollout before anything is mutated;
// under PolicyQuorum failed fronts are excluded from the waves and
// counted against the quorum.
func (c *Controller) capture(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, f := range c.fronts {
		wg.Add(1)
		go func(f *frontState) {
			defer wg.Done()
			st, err := c.getConfigRetry(ctx, f, c.cfg.RetryBudget)
			c.mu.Lock()
			defer c.mu.Unlock()
			if err != nil {
				f.failure = "capture: " + err.Error()
				c.jr.log(Entry{Event: "capture_failed", Front: f.url, Err: err.Error()})
				return
			}
			f.prior = st.Thinner
			f.priorHash = st.ConfigHash
			f.target = config.MergeThinner(st.Thinner, c.cfg.Patch)
			f.targetHash = config.HashThinner(f.target)
			f.finalHash = st.ConfigHash
			c.jr.log(Entry{Event: "capture", Front: f.url, Hash: f.priorHash, Target: f.targetHash})
		}(f)
	}
	wg.Wait()
	if n := c.failedFronts(); n > 0 {
		if c.cfg.Policy == PolicyAbort {
			return fmt.Errorf("fleetctl: %d front(s) unreachable at capture (policy abort; nothing was pushed)", n)
		}
		if !c.policyHolds() {
			return fmt.Errorf("fleetctl: %d front(s) unreachable at capture, quorum %.2f unreachable before any push", n, c.cfg.Quorum)
		}
	}
	return nil
}

// planWaves slices the captured (non-failed) fronts into canary-first
// expanding batches.
func (c *Controller) planWaves() [][]*frontState {
	var live []*frontState
	for _, f := range c.fronts {
		if f.failure == "" {
			live = append(live, f)
		}
	}
	var waves [][]*frontState
	size := c.cfg.CanarySize
	for len(live) > 0 {
		if c.cfg.MaxWaveSize > 0 && size > c.cfg.MaxWaveSize {
			size = c.cfg.MaxWaveSize
		}
		if size > len(live) {
			size = len(live)
		}
		wave := live[:size]
		live = live[size:]
		for _, f := range wave {
			f.wave = len(waves) + 1
		}
		waves = append(waves, wave)
		size *= c.cfg.WaveFactor
	}
	return waves
}

// pushWave pushes one wave's fronts concurrently and then re-verifies
// each front's hash with a GET. It returns a non-empty fatal reason
// when a patch was rejected as invalid (400): retrying a rejected
// patch elsewhere would just break more fronts.
func (c *Controller) pushWave(ctx context.Context, waveNo int, wave []*frontState, patched *[]*frontState) (fatal string) {
	var wg sync.WaitGroup
	for _, f := range wave {
		c.mu.Lock()
		if f.priorHash == f.targetHash {
			f.skipped = true
			f.converged = true
			c.jr.log(Entry{Event: "skip", Wave: waveNo, Front: f.url, Hash: f.priorHash,
				Reason: "already at target hash"})
			c.mu.Unlock()
			continue
		}
		f.pushed = true
		*patched = append(*patched, f)
		c.mu.Unlock()
		wg.Add(1)
		go func(f *frontState) {
			defer wg.Done()
			err := c.pushConfig(ctx, waveNo, f, f.target, f.targetHash, c.cfg.RetryBudget, "push")
			c.mu.Lock()
			defer c.mu.Unlock()
			if err != nil {
				f.failure = "push: " + err.Error()
				c.jr.log(Entry{Event: "push_failed", Wave: waveNo, Front: f.url, Err: err.Error()})
				return
			}
			f.converged = true
		}(f)
	}
	wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range wave {
		if strings.Contains(f.failure, errFatalPatch.Error()) {
			return f.failure
		}
	}
	return ""
}

// errFatalPatch marks a 400 from /control/config: the patch itself is
// invalid, so no amount of retrying (here or on other fronts) helps.
var errFatalPatch = errors.New("patch rejected as invalid")

// pushConfig drives one front to the given config: POST the full
// merged section (idempotent, self-healing against concurrent
// writers), verify the response hash, and re-verify with a GET. 503s
// — the mid-brownout reconfig rejection included — time-outs, and
// transport errors retry on the backoff ladder; 400 is fatal.
func (c *Controller) pushConfig(ctx context.Context, waveNo int, f *frontState, to config.Thinner, toHash string, budget int, kind string) error {
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(f.url))))
	var lastErr error
	for attempt := 0; attempt <= budget; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.cfg.Backoff.Delay(attempt-1, rng)):
			}
		}
		c.mu.Lock()
		f.attempts++
		c.mu.Unlock()
		st, code, err := c.postConfig(ctx, f.url, to)
		switch {
		case err == nil && st.ConfigHash == toHash:
			// Verify convergence with a fresh GET: the push's effect must
			// be observable, not just claimed in the POST response.
			got, gerr := c.getConfig(ctx, f.url)
			if gerr == nil && got.ConfigHash == toHash {
				c.mu.Lock()
				f.finalHash = got.ConfigHash
				c.mu.Unlock()
				c.jr.log(Entry{Event: kind, Wave: waveNo, Front: f.url, Attempt: attempt + 1, Hash: toHash})
				return nil
			}
			if gerr != nil {
				lastErr = fmt.Errorf("verify: %w", gerr)
			} else {
				lastErr = fmt.Errorf("verify: hash %s, want %s (concurrent writer?)", short(got.ConfigHash), short(toHash))
			}
		case err == nil && code == http.StatusBadRequest:
			return fmt.Errorf("%w: %s", errFatalPatch, strings.TrimSpace(st.raw))
		case err == nil && retryableStatus(code):
			lastErr = fmt.Errorf("front answered %d: %s", code, strings.TrimSpace(st.raw))
		case err == nil:
			return fmt.Errorf("front answered %d: %s", code, strings.TrimSpace(st.raw))
		default:
			lastErr = err
		}
		c.jr.log(Entry{Event: kind + "_retry", Wave: waveNo, Front: f.url, Attempt: attempt + 1, Err: lastErr.Error()})
	}
	return fmt.Errorf("retry budget exhausted after %d attempts: %w", budget+1, lastErr)
}

func retryableStatus(code int) bool {
	switch code {
	case http.StatusServiceUnavailable, http.StatusTooManyRequests,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// configReply is a decoded /control/config response plus the raw body
// for error reporting.
type configReply struct {
	config.ThinnerStatus
	raw string
}

func (c *Controller) getConfig(ctx context.Context, url string) (configReply, error) {
	return c.doConfig(ctx, http.MethodGet, url, nil)
}

func (c *Controller) postConfig(ctx context.Context, url string, t config.Thinner) (configReply, int, error) {
	body, err := json.Marshal(t)
	if err != nil {
		return configReply{}, 0, err
	}
	return c.doConfigCode(ctx, http.MethodPost, url, body)
}

func (c *Controller) doConfig(ctx context.Context, method, url string, body []byte) (configReply, error) {
	r, code, err := c.doConfigCode(ctx, method, url, body)
	if err != nil {
		return r, err
	}
	if code != http.StatusOK {
		return r, fmt.Errorf("front answered %d: %s", code, strings.TrimSpace(r.raw))
	}
	return r, nil
}

func (c *Controller) doConfigCode(ctx context.Context, method, url string, body []byte) (configReply, int, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.PushTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(cctx, method, url+"/control/config", rd)
	if err != nil {
		return configReply{}, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return configReply{}, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return configReply{}, resp.StatusCode, err
	}
	out := configReply{raw: string(raw)}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out.ThinnerStatus); err != nil {
			return out, resp.StatusCode, fmt.Errorf("bad config body: %w", err)
		}
	}
	return out, resp.StatusCode, nil
}

// getConfigRetry is the capture-phase GET with the push retry ladder.
func (c *Controller) getConfigRetry(ctx context.Context, f *frontState, budget int) (configReply, error) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(f.url)<<8)))
	var lastErr error
	for attempt := 0; attempt <= budget; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return configReply{}, ctx.Err()
			case <-time.After(c.cfg.Backoff.Delay(attempt-1, rng)):
			}
		}
		c.mu.Lock()
		f.attempts++
		c.mu.Unlock()
		st, err := c.getConfig(ctx, f.url)
		if err == nil {
			return st, nil
		}
		lastErr = err
	}
	return configReply{}, fmt.Errorf("retry budget exhausted after %d attempts: %w", budget+1, lastErr)
}

// policyHolds reports whether the rollout may continue given the
// failed-front count: abort tolerates none, quorum tolerates up to a
// (1-Quorum) fraction of the fleet.
func (c *Controller) policyHolds() bool {
	failed := c.failedFronts()
	if failed == 0 {
		return true
	}
	if c.cfg.Policy == PolicyAbort {
		return false
	}
	convergeable := len(c.fronts) - failed
	return float64(convergeable) >= c.cfg.Quorum*float64(len(c.fronts))
}

func (c *Controller) policyBreach() string {
	failed := c.failedFronts()
	if c.cfg.Policy == PolicyAbort {
		return fmt.Sprintf("policy abort: %d front(s) failed", failed)
	}
	return fmt.Sprintf("policy quorum: %d/%d fronts failed, below quorum %.2f",
		failed, len(c.fronts), c.cfg.Quorum)
}

func (c *Controller) failedFronts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, f := range c.fronts {
		if f.failure != "" {
			n++
		}
	}
	return n
}

// haltAndRollback stops the rollout at wave waveNo and restores every
// patched front to its captured pre-rollout config.
func (c *Controller) haltAndRollback(ctx context.Context, waveNo int, patched []*frontState, breach string) (*Report, error) {
	c.jr.log(Entry{Event: "guardrail_breach", Wave: waveNo, Reason: breach})
	c.jr.log(Entry{Event: "rollback_start", Wave: waveNo, Fronts: urlsOf(patched)})
	var wg sync.WaitGroup
	for _, f := range patched {
		wg.Add(1)
		go func(f *frontState) {
			defer wg.Done()
			// Rollback outranks whatever failure got the front here: clear
			// it so the restore's own outcome is what the report carries.
			// Twice the push budget: a rollback must outlast the brownout
			// that triggered it (503s retry on the same ladder).
			err := c.pushConfig(ctx, waveNo, f, f.prior, f.priorHash, 2*c.cfg.RetryBudget, "rollback")
			c.mu.Lock()
			defer c.mu.Unlock()
			if err != nil {
				f.failure = "rollback: " + err.Error()
				c.jr.log(Entry{Event: "rollback_failed", Front: f.url, Err: err.Error()})
				return
			}
			f.failure = ""
			f.converged = false
			f.rolledBack = true
		}(f)
	}
	wg.Wait()
	c.mu.Lock()
	var stranded []string
	for _, f := range patched {
		if !f.rolledBack {
			stranded = append(stranded, f.url)
		}
	}
	c.mu.Unlock()
	if len(stranded) > 0 {
		c.jr.log(Entry{Event: "done", Outcome: OutcomeFailed, Reason: breach,
			Err: "rollback incomplete: " + strings.Join(stranded, ", ")})
		return c.report(OutcomeFailed, waveNo, 0, breach),
			fmt.Errorf("fleetctl: rollback incomplete on %d front(s): %s", len(stranded), strings.Join(stranded, ", "))
	}
	c.jr.log(Entry{Event: "done", Outcome: OutcomeRolledBack, Reason: breach})
	return c.report(OutcomeRolledBack, waveNo, 0, breach), nil
}

func (c *Controller) report(outcome Outcome, waves, planned int, breach string) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	if planned == 0 {
		// Recompute from assignments (rollback/failure paths).
		for _, f := range c.fronts {
			if f.wave > planned {
				planned = f.wave
			}
		}
	}
	r := &Report{Outcome: outcome, Patch: c.cfg.Patch, Waves: waves, PlannedWaves: planned, Breach: breach}
	for _, f := range c.fronts {
		r.Fronts = append(r.Fronts, FrontReport{
			URL: f.url, Wave: f.wave,
			PriorHash: f.priorHash, TargetHash: f.targetHash, FinalHash: f.finalHash,
			Skipped: f.skipped, Pushed: f.pushed, Converged: f.converged,
			RolledBack: f.rolledBack, Attempts: f.attempts, Failure: f.failure,
		})
	}
	return r
}
